package ugf_test

// Extended golden matrix: whole-outcome hashes for the configuration
// corners the generated property suite (internal/simtest) surfaced as
// untouched by the original 60-case table — the omission and ζ(2)-sampled
// UGF adversaries, crash-heavy budgets (F = N/2), the protocols outside
// the paper's headline five, and runs with the StatsEvery interval series
// enabled. Where golden_test.go pins six summary fields per case, each
// row here pins an FNV-64a hash of the run's entire deterministic outcome
// (o.StripWall(), JSON-encoded) — every Stats counter, the interval
// series, the delay histograms, and the per-process message counts all
// feed the hash, so an engine change that shifts any of them by one
// lands here even if M(O) and T_end happen to survive.
//
// Seeds derive from the case index like the base table (offset 5000), so
// the matrix is append-only. Regenerate with:
//
//	UGF_GOLDEN_PRINT=1 go test -run TestGoldenExtPrint -v .

import (
	"fmt"
	"os"
	"testing"

	"github.com/ugf-sim/ugf"
)

type goldenExtCase struct {
	proto      string
	adv        string
	n, f       int
	statsEvery ugf.Step
	// PR 7 fault-model columns; zero values leave pre-fault cases
	// byte-identical (Outcome's fault fields are omitempty).
	faults      string // ParseFaultPlan spec, "" for none
	stallWindow int64  // Config.StallWindow (events), 0 for off
	// PR 9 topology columns; zero values leave pre-topology cases
	// byte-identical (complete graph, no event cutoff).
	topology  string // ParseTopology spec, "" for complete
	maxEvents int64  // Config.MaxEvents, 0 for unbounded
}

// goldenExtMatrix crosses the under-covered protocols with the
// under-covered adversaries at a crash-heavy budget, alternating the
// interval series on and off. Append only.
func goldenExtMatrix() []goldenExtCase {
	pairs := []struct {
		adv        string
		statsEvery ugf.Step
	}{
		{adv: "omission", statsEvery: 16},
		{adv: "omission", statsEvery: 0},
		{adv: "ugf-sampled", statsEvery: 16},
		{adv: "ugf", statsEvery: 8},
	}
	var cases []goldenExtCase
	for _, size := range []struct{ n, f int }{{16, 8}, {48, 24}} {
		for _, proto := range []string{"push", "pull", "doubling", "adaptive", "budget-capped"} {
			for _, pa := range pairs {
				cases = append(cases, goldenExtCase{
					proto: proto, adv: pa.adv, n: size.n, f: size.f, statsEvery: pa.statsEvery,
				})
			}
		}
	}
	// PR 5 appendix: the interned-payload and pooled-path corners of the
	// zero-alloc engine rewrite, at N ∈ {64, 1000}. SEARS fans one shared
	// payload out to ⌈√N·ln N⌉ recipients per step (the Outbox dedup path),
	// broadcast fans a single payload to N−1 recipients in one step (one
	// intern slot, maximal fan-out), EARS reuses one boxed payload across
	// quiet steps, push-pull interleaves zero-size pull requests with batch
	// payloads (staging-table alternation), and round-robin under omission
	// exercises the dropped-send slot reclamation. The hashes were generated
	// on the pre-rewrite engine (PR 4 state) and must never change.
	cases = append(cases,
		goldenExtCase{proto: "sears", adv: "none", n: 64, f: 21, statsEvery: 16},
		goldenExtCase{proto: "sears", adv: "ugf", n: 64, f: 21, statsEvery: 8},
		goldenExtCase{proto: "ears", adv: "none", n: 64, f: 21, statsEvery: 0},
		goldenExtCase{proto: "ears", adv: "omission", n: 64, f: 21, statsEvery: 16},
		goldenExtCase{proto: "push-pull", adv: "ugf-sampled", n: 64, f: 21, statsEvery: 8},
		goldenExtCase{proto: "broadcast", adv: "none", n: 64, f: 21, statsEvery: 16},
		goldenExtCase{proto: "round-robin", adv: "omission", n: 64, f: 21, statsEvery: 0},
		goldenExtCase{proto: "push-pull", adv: "none", n: 1000, f: 250, statsEvery: 32},
		goldenExtCase{proto: "sears", adv: "none", n: 1000, f: 250, statsEvery: 0},
		goldenExtCase{proto: "broadcast", adv: "omission", n: 1000, f: 250, statsEvery: 64},
	)
	// PR 7 appendix: the fault-model corners — lossy links (drop/dup/
	// corrupt rolls in the delivery path), the partition adversary's
	// class-blocked sends, and the crash-recovery lifecycle (amnesiac and
	// retained restarts, send-residue discard). Every case sets a stall
	// window so the hashes also pin the stall detector's no-false-positive
	// behaviour on runs that do make progress.
	cases = append(cases,
		goldenExtCase{proto: "push-pull", adv: "none", n: 32, f: 10, statsEvery: 16,
			faults: "drop=0.2,seed=11", stallWindow: 4096},
		goldenExtCase{proto: "push", adv: "none", n: 32, f: 10, statsEvery: 0,
			faults: "dup=0.25,seed=12", stallWindow: 4096},
		goldenExtCase{proto: "ears", adv: "none", n: 32, f: 10, statsEvery: 16,
			faults: "corrupt=0.2,seed=13", stallWindow: 4096},
		goldenExtCase{proto: "sears", adv: "ugf", n: 32, f: 10, statsEvery: 8,
			faults: "drop=0.1,dup=0.1,corrupt=0.1,seed=14", stallWindow: 4096},
		goldenExtCase{proto: "push-pull", adv: "partition", n: 32, f: 10, statsEvery: 16,
			stallWindow: 8192},
		goldenExtCase{proto: "round-robin", adv: "partition", n: 24, f: 8, statsEvery: 0,
			faults: "drop=0.05,seed=15", stallWindow: 8192},
		goldenExtCase{proto: "push-pull", adv: "crash-recovery", n: 32, f: 10, statsEvery: 16,
			stallWindow: 4096},
		goldenExtCase{proto: "round-robin", adv: "crash-recovery", n: 24, f: 8, statsEvery: 8,
			faults: "dup=0.1,seed=16", stallWindow: 4096},
	)
	// PR 9 appendix: the communication-graph corners — sparse topologies
	// (ring, k-regular, seeded expander, bounded-degree radio) under the
	// budgeted rewire adversary, the partition adversary, and lossy links.
	// Every case sets both a stall window and an event cutoff: sparse
	// graphs can make gathering impossible while neighbor traffic keeps
	// the stall signature moving, so MaxEvents is the hard bound the
	// hashes pin (HorizonHit paths included).
	cases = append(cases,
		goldenExtCase{proto: "push-pull", adv: "rewire", n: 32, f: 10, statsEvery: 16,
			topology: "ring", stallWindow: 4096, maxEvents: 20000},
		goldenExtCase{proto: "ears", adv: "rewire", n: 32, f: 10, statsEvery: 0,
			topology: "k-regular,k=4", stallWindow: 4096, maxEvents: 20000},
		goldenExtCase{proto: "push", adv: "partition", n: 24, f: 8, statsEvery: 8,
			topology: "ring", stallWindow: 4096, maxEvents: 16000},
		goldenExtCase{proto: "round-robin", adv: "rewire", n: 24, f: 8, statsEvery: 0,
			topology: "expander,k=4,seed=7", stallWindow: 4096, maxEvents: 16000},
		goldenExtCase{proto: "sears", adv: "none", n: 32, f: 10, statsEvery: 16,
			topology: "radio,k=3,seed=9", stallWindow: 4096, maxEvents: 20000},
		goldenExtCase{proto: "push-pull", adv: "partition", n: 32, f: 10, statsEvery: 16,
			faults: "drop=0.1,seed=17", topology: "k-regular,k=6", stallWindow: 8192, maxEvents: 24000},
		goldenExtCase{proto: "ears", adv: "rewire", n: 24, f: 8, statsEvery: 8,
			topology: "radio,k=2,seed=21", stallWindow: 4096, maxEvents: 16000},
		goldenExtCase{proto: "push-pull", adv: "rewire", n: 48, f: 16, statsEvery: 32,
			topology: "expander,k=6,seed=5", stallWindow: 8192, maxEvents: 32000},
	)
	return cases
}

func goldenExtConfig(t testing.TB, c goldenExtCase, idx, workers int) ugf.Config {
	t.Helper()
	proto, ok := ugf.ProtocolByName(c.proto)
	if !ok {
		t.Fatalf("unknown protocol %q", c.proto)
	}
	adv, ok := ugf.AdversaryByName(c.adv)
	if !ok {
		t.Fatalf("unknown adversary %q", c.adv)
	}
	fp, err := ugf.ParseFaultPlan(c.faults)
	if err != nil {
		t.Fatalf("fault spec %q: %v", c.faults, err)
	}
	topo, err := ugf.ParseTopology(c.topology)
	if err != nil {
		t.Fatalf("topology spec %q: %v", c.topology, err)
	}
	return ugf.Config{
		N: c.n, F: c.f, Protocol: proto, Adversary: adv,
		Seed:           uint64(5000 + idx),
		Workers:        workers,
		StatsEvery:     c.statsEvery,
		KeepPerProcess: true,
		Faults:         fp,
		StallWindow:    c.stallWindow,
		Topology:       topo,
		MaxEvents:      c.maxEvents,
	}
}

// outcomeHash is ugf.OutcomeHash: the FNV-64a hash of the outcome's
// deterministic projection, JSON-encoded. JSON (unlike %+v, which would
// stop at Outcome's String method) renders every exported field of the
// outcome and its nested Stats — counters, interval series, delay
// histograms, per-process counts — so the hash moves with any of them;
// FNV-64a keeps the pinned table one short hex word per case. The table
// below was pinned by a local copy of the same function and survived the
// migration byte for byte.
func outcomeHash(t testing.TB, o ugf.Outcome) string {
	t.Helper()
	return ugf.OutcomeHash(o)
}

func TestGoldenExtOutcomes(t *testing.T) {
	cases := goldenExtMatrix()
	if len(cases) != len(goldenExtHashes) {
		t.Fatalf("matrix has %d cases but table has %d hashes — regenerate with UGF_GOLDEN_PRINT=1",
			len(cases), len(goldenExtHashes))
	}
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			for i, c := range cases {
				o, err := ugf.Run(goldenExtConfig(t, c, i, workers))
				if err != nil {
					t.Fatalf("case %d (%s/%s N=%d): %v", i, c.proto, c.adv, c.n, err)
				}
				if got := outcomeHash(t, o); got != goldenExtHashes[i] {
					t.Errorf("case %d (%s/%s N=%d F=%d statsEvery=%d seed=%d): outcome hash %s, want %s",
						i, c.proto, c.adv, c.n, c.f, c.statsEvery, 5000+i, got, goldenExtHashes[i])
				}
			}
		})
	}
}

// TestGoldenExtPrint regenerates the hash table; see the file comment.
func TestGoldenExtPrint(t *testing.T) {
	if os.Getenv("UGF_GOLDEN_PRINT") == "" {
		t.Skip("set UGF_GOLDEN_PRINT=1 to regenerate the extended golden table")
	}
	for i, c := range goldenExtMatrix() {
		o, err := ugf.Run(goldenExtConfig(t, c, i, 1))
		if err != nil {
			t.Fatal(err)
		}
		note := ""
		if c.faults != "" {
			note = " faults=" + c.faults
		}
		if c.stallWindow != 0 {
			note += fmt.Sprintf(" stallWindow=%d", c.stallWindow)
		}
		if c.topology != "" {
			note += fmt.Sprintf(" topology=%s maxEvents=%d", c.topology, c.maxEvents)
		}
		fmt.Printf("\t%q, // %d: %s/%s N=%d F=%d statsEvery=%d%s\n",
			outcomeHash(t, o), i, c.proto, c.adv, c.n, c.f, c.statsEvery, note)
	}
}

// goldenExtHashes holds outcomeHash per case, in goldenExtMatrix order.
var goldenExtHashes = []string{
	"9b206dd207353cfa", // 0: push/omission N=16 F=8 statsEvery=16
	"6b2f3424b6743a6b", // 1: push/omission N=16 F=8 statsEvery=0
	"fd49beaa18ebf8b1", // 2: push/ugf-sampled N=16 F=8 statsEvery=16
	"e2347068c69e8cb0", // 3: push/ugf N=16 F=8 statsEvery=8
	"7d8ad2eff6daac54", // 4: pull/omission N=16 F=8 statsEvery=16
	"765f001bb7d308f5", // 5: pull/omission N=16 F=8 statsEvery=0
	"f26bafc10fa0e2e5", // 6: pull/ugf-sampled N=16 F=8 statsEvery=16
	"f0006b9aa0097d55", // 7: pull/ugf N=16 F=8 statsEvery=8
	"5fa80e6244ea6de2", // 8: doubling/omission N=16 F=8 statsEvery=16
	"521105e3a50b9a3e", // 9: doubling/omission N=16 F=8 statsEvery=0
	"5aff88c9cfb9d351", // 10: doubling/ugf-sampled N=16 F=8 statsEvery=16
	"a90f76c15a3e53c7", // 11: doubling/ugf N=16 F=8 statsEvery=8
	"0483045360f2894b", // 12: adaptive/omission N=16 F=8 statsEvery=16
	"6c434433517710a3", // 13: adaptive/omission N=16 F=8 statsEvery=0
	"f5b75285be2c25a4", // 14: adaptive/ugf-sampled N=16 F=8 statsEvery=16
	"f1066edb005d7fc5", // 15: adaptive/ugf N=16 F=8 statsEvery=8
	"9c863c1acd677e73", // 16: budget-capped/omission N=16 F=8 statsEvery=16
	"fa1b968055211fc9", // 17: budget-capped/omission N=16 F=8 statsEvery=0
	"4160a1770bf84eb9", // 18: budget-capped/ugf-sampled N=16 F=8 statsEvery=16
	"71932c29be6750c9", // 19: budget-capped/ugf N=16 F=8 statsEvery=8
	"ca1c498e8becc337", // 20: push/omission N=48 F=24 statsEvery=16
	"1e31fc0ab6439c08", // 21: push/omission N=48 F=24 statsEvery=0
	"887449dcdb94329c", // 22: push/ugf-sampled N=48 F=24 statsEvery=16
	"b08dc1fd9a4ee199", // 23: push/ugf N=48 F=24 statsEvery=8
	"35c22592fd37bbcf", // 24: pull/omission N=48 F=24 statsEvery=16
	"4db439150bcc6342", // 25: pull/omission N=48 F=24 statsEvery=0
	"a46d276d2b4659b2", // 26: pull/ugf-sampled N=48 F=24 statsEvery=16
	"8a0a54db55f3cca5", // 27: pull/ugf N=48 F=24 statsEvery=8
	"b99e14af1d680a73", // 28: doubling/omission N=48 F=24 statsEvery=16
	"0fe579a101c0fde3", // 29: doubling/omission N=48 F=24 statsEvery=0
	"3aa8b3e581d6e1f4", // 30: doubling/ugf-sampled N=48 F=24 statsEvery=16
	"da190c837f00b018", // 31: doubling/ugf N=48 F=24 statsEvery=8
	"adf7d999f5a9119b", // 32: adaptive/omission N=48 F=24 statsEvery=16
	"2fad686bdb310074", // 33: adaptive/omission N=48 F=24 statsEvery=0
	"495878e97a1223fd", // 34: adaptive/ugf-sampled N=48 F=24 statsEvery=16
	"445f970e8b5d2294", // 35: adaptive/ugf N=48 F=24 statsEvery=8
	"75fa7b4600bdc26b", // 36: budget-capped/omission N=48 F=24 statsEvery=16
	"53c11a259f934aa8", // 37: budget-capped/omission N=48 F=24 statsEvery=0
	"ab33563a077ebbe0", // 38: budget-capped/ugf-sampled N=48 F=24 statsEvery=16
	"eb0facabf50c721b", // 39: budget-capped/ugf N=48 F=24 statsEvery=8
	"c27c8079e8287995", // 40: sears/none N=64 F=21 statsEvery=16
	"99273fb2a74a60f6", // 41: sears/ugf N=64 F=21 statsEvery=8
	"b06a8bdfa55ef4ad", // 42: ears/none N=64 F=21 statsEvery=0
	"479eaad99b662f88", // 43: ears/omission N=64 F=21 statsEvery=16
	"7392138e1c7445c3", // 44: push-pull/ugf-sampled N=64 F=21 statsEvery=8
	"0e8a330b3eb7ec1a", // 45: broadcast/none N=64 F=21 statsEvery=16
	"66377140a335ba0d", // 46: round-robin/omission N=64 F=21 statsEvery=0
	"235c67e8195c17c9", // 47: push-pull/none N=1000 F=250 statsEvery=32
	"0213ffc521c06095", // 48: sears/none N=1000 F=250 statsEvery=0
	"2d152eaed869245b", // 49: broadcast/omission N=1000 F=250 statsEvery=64
	"30d2023ed4c2f18f", // 50: push-pull/none N=32 F=10 statsEvery=16 faults=drop=0.2,seed=11 stallWindow=4096
	"0918ba44943dd96b", // 51: push/none N=32 F=10 statsEvery=0 faults=dup=0.25,seed=12 stallWindow=4096
	"e4e2779c3f730b89", // 52: ears/none N=32 F=10 statsEvery=16 faults=corrupt=0.2,seed=13 stallWindow=4096
	"56c0f175118f5dc8", // 53: sears/ugf N=32 F=10 statsEvery=8 faults=drop=0.1,dup=0.1,corrupt=0.1,seed=14 stallWindow=4096
	"c74e4163f4a49c29", // 54: push-pull/partition N=32 F=10 statsEvery=16 stallWindow=8192
	"0edd4204c1c322e7", // 55: round-robin/partition N=24 F=8 statsEvery=0 faults=drop=0.05,seed=15 stallWindow=8192
	"2b717ecebb5ef967", // 56: push-pull/crash-recovery N=32 F=10 statsEvery=16 stallWindow=4096
	"98e5fbdbbee326d3", // 57: round-robin/crash-recovery N=24 F=8 statsEvery=8 faults=dup=0.1,seed=16 stallWindow=4096
	"3d5268169320819e", // 58: push-pull/rewire N=32 F=10 statsEvery=16 stallWindow=4096 topology=ring maxEvents=20000
	"dfc74adb77bb9a1a", // 59: ears/rewire N=32 F=10 statsEvery=0 stallWindow=4096 topology=k-regular,k=4 maxEvents=20000
	"af17247b722ee12d", // 60: push/partition N=24 F=8 statsEvery=8 stallWindow=4096 topology=ring maxEvents=16000
	"b3bef915ab95f8a3", // 61: round-robin/rewire N=24 F=8 statsEvery=0 stallWindow=4096 topology=expander,k=4,seed=7 maxEvents=16000
	"50da236ddd966a99", // 62: sears/none N=32 F=10 statsEvery=16 stallWindow=4096 topology=radio,k=3,seed=9 maxEvents=20000
	"f987f15839e45b82", // 63: push-pull/partition N=32 F=10 statsEvery=16 faults=drop=0.1,seed=17 stallWindow=8192 topology=k-regular,k=6 maxEvents=24000
	"b320c4a7e83e6f52", // 64: ears/rewire N=24 F=8 statsEvery=8 stallWindow=4096 topology=radio,k=2,seed=21 maxEvents=16000
	"a25a02a62eac51a9", // 65: push-pull/rewire N=48 F=16 statsEvery=32 stallWindow=8192 topology=expander,k=6,seed=5 maxEvents=32000
}
