package ugf_test

import (
	"reflect"
	"testing"

	"github.com/ugf-sim/ugf"
)

func TestFacadeRun(t *testing.T) {
	o, err := ugf.Run(ugf.Config{
		N: 30, F: 9,
		Protocol:  ugf.PushPull{},
		Adversary: ugf.UGF{FixedK: 1, FixedL: 1},
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.N != 30 || o.Adversary != "ugf" {
		t.Fatalf("unexpected outcome: %+v", o)
	}
	if o.Strategy == "" {
		t.Error("UGF outcome missing strategy label")
	}
}

func TestProtocolRegistryRoundTrip(t *testing.T) {
	names := ugf.ProtocolNames()
	if len(names) < 7 {
		t.Fatalf("only %d protocols registered: %v", len(names), names)
	}
	for _, name := range names {
		p, ok := ugf.ProtocolByName(name)
		if !ok {
			t.Fatalf("%q not found", name)
		}
		if p.Name() != name {
			t.Errorf("%q maps to %q", name, p.Name())
		}
	}
	if _, ok := ugf.ProtocolByName("bogus"); ok {
		t.Error("bogus protocol found")
	}
}

func TestAdversaryRegistry(t *testing.T) {
	for _, name := range ugf.AdversaryNames() {
		adv, ok := ugf.AdversaryByName(name)
		if !ok {
			t.Fatalf("%q not found", name)
		}
		if name == "none" {
			if adv != nil {
				t.Error("\"none\" must map to nil")
			}
			continue
		}
		if adv == nil {
			t.Fatalf("%q is nil", name)
		}
		// Every named adversary must drive a run end to end.
		o, err := ugf.Run(ugf.Config{
			N: 20, F: 6, Protocol: ugf.EARS{}, Adversary: adv, Seed: 3,
			MaxEvents: 10_000_000,
		})
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if o.HorizonHit {
			t.Errorf("%q: run cut off", name)
		}
	}
	if _, ok := ugf.AdversaryByName("bogus"); ok {
		t.Error("bogus adversary found")
	}
}

func TestFacadeDeterminism(t *testing.T) {
	cfg := ugf.Config{
		N: 25, F: 7, Protocol: ugf.SEARS{}, Adversary: ugf.UGF{}, Seed: 99,
		KeepPerProcess: true,
	}
	a, err := ugf.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ugf.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.StripWall(), b.StripWall()) {
		t.Fatal("facade run not deterministic")
	}
}

func TestNewOutbox(t *testing.T) {
	ob := ugf.NewOutbox(0, 4)
	ob.Send(2, fakePayload{})
	if ob.Len() != 1 {
		t.Fatalf("Len = %d", ob.Len())
	}
	msgs := ob.Drain()
	if len(msgs) != 1 || msgs[0].To != 2 || msgs[0].From != 0 {
		t.Fatalf("Drain = %v", msgs)
	}
}

type fakePayload struct{}

func (fakePayload) Kind() string { return "fake" }
