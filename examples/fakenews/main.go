// Fake-news containment: the motivating scenario of the paper's
// introduction. A social platform's processes spread rumors with an
// epidemic protocol (EARS); a moderation system that can suspend (crash)
// or throttle (delay) a bounded number of accounts plays the Universal
// Gossip Fighter and tries to hamper the spread.
//
// The program sweeps the moderation budget F and shows how containment
// strength scales: the dissemination is forced from logarithmic time and
// quasi-linear traffic toward linear time or quadratic traffic.
//
//	go run ./examples/fakenews
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/ugf-sim/ugf"
	"github.com/ugf-sim/ugf/internal/plot"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/stats"
)

func main() {
	const (
		network = 150 // accounts in the network
		runs    = 12  // repetitions per budget
	)

	table := &plot.Table{
		Title: fmt.Sprintf("Containing an epidemic rumor (EARS, N = %d accounts, %d runs)",
			network, runs),
		Columns: []string{
			"moderation budget F", "median rounds T(O)", "vs baseline",
			"median traffic M(O)", "vs baseline",
		},
	}

	baselineT, baselineM := measure(network, 0, nil, runs)
	table.AddRow("none (baseline)", baselineT, "1.0x", baselineM, "1.0x")

	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		f := int(frac * network)
		t, m := measure(network, f, ugf.UGF{FixedK: 1, FixedL: 1}, runs)
		table.AddRow(
			fmt.Sprintf("%d accounts (%.0f%%)", f, frac*100),
			t, fmt.Sprintf("%.1fx", t/baselineT),
			m, fmt.Sprintf("%.1fx", m/baselineM),
		)
	}

	if err := table.Text(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("The moderator needs no knowledge of the spreading protocol: UGF draws one")
	fmt.Println("of its strategies at random each run, and on average the rumor's spread is")
	fmt.Println("slowed or its cost inflated regardless of how the protocol behaves.")
}

// measure returns the median time and message complexity of runs
// repetitions of EARS under the given adversary.
func measure(n, f int, adv ugf.Adversary, runs int) (medT, medM float64) {
	results, err := runner.Execute([]runner.Spec{{
		Name: "fakenews",
		Base: ugf.Config{N: n, F: f, Protocol: ugf.EARS{}, Adversary: adv},
		Runs: runs, BaseSeed: 42,
	}}, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	outs := results[0].Outcomes
	return stats.Median(runner.Times(outs)), stats.Median(runner.Messages(outs))
}
