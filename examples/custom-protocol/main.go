// Custom protocol: how to implement your own all-to-all gossip protocol
// against the library's engine — and what happens when UGF attacks it.
//
// The protocol implemented here is a minimal random walk: every process
// forwards everything it knows to one uniformly random process per local
// step. Two details make it a *valid* all-to-all protocol (and both are
// lessons in miniature — a first draft without them livelocks):
//
//  1. Completion needs a timeout. "Sleep once I know all N gossips" never
//     triggers when the adversary crashes processes whose gossips are
//     gone, so a process also sleeps after a quiet window with no news —
//     and wakes when news arrives (Definition IV.2 of the paper).
//
//  2. Sleeping processes must answer laggards. A process that finished
//     while a peer is still missing gossips would otherwise absorb that
//     peer's messages forever without helping it — the peer starves.
//
//     go run ./examples/custom-protocol
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/ugf-sim/ugf"
)

// walkProtocol implements ugf.Protocol.
type walkProtocol struct{}

func (walkProtocol) Name() string { return "random-walk" }

func (walkProtocol) New(envs []ugf.Env) []ugf.Process {
	procs := make([]ugf.Process, len(envs))
	for i, env := range envs {
		p := &walkProc{
			env:    env,
			known:  make(map[ugf.ProcID]bool, env.N),
			window: 4 * int(math.Ceil(math.Log2(float64(env.N+1)))),
		}
		p.known[env.ID] = true
		procs[i] = p
	}
	return procs
}

// walkPayload carries the sender's entire gossip set. Payloads are shared
// between recipients, so the slice must be treated as immutable.
type walkPayload struct {
	gossips []ugf.ProcID
}

func (walkPayload) Kind() string { return "walk" }

// walkProc implements ugf.Process.
type walkProc struct {
	env    ugf.Env
	known  map[ugf.ProcID]bool
	quiet  int
	window int
}

func (p *walkProc) Step(now ugf.Step, delivered []ugf.Message, out *ugf.Outbox) {
	news := false
	var lagging []ugf.ProcID
	for _, m := range delivered {
		pl := m.Payload.(walkPayload)
		for _, g := range pl.gossips {
			if !p.known[g] {
				p.known[g] = true
				news = true
			}
		}
		if len(pl.gossips) < len(p.known) {
			lagging = append(lagging, m.From)
		}
	}
	if news {
		p.quiet = 0
	} else {
		p.quiet++
	}
	if p.env.N == 1 {
		return
	}
	if p.Asleep() {
		// Rule 2: help starving peers even while asleep.
		snapshot := p.snapshot()
		for _, q := range lagging {
			out.Send(q, walkPayload{gossips: snapshot})
		}
		return
	}
	to := ugf.ProcID(p.env.RNG.IntnExcept(p.env.N, int(p.env.ID)))
	out.Send(to, walkPayload{gossips: p.snapshot()})
}

func (p *walkProc) snapshot() []ugf.ProcID {
	out := make([]ugf.ProcID, 0, len(p.known))
	for g := range p.known {
		out = append(out, g)
	}
	return out
}

// Asleep: everything known, or nothing new for a full quiet window
// (rule 1). The engine re-runs Step when mail arrives, so news wakes the
// process back up.
func (p *walkProc) Asleep() bool {
	return len(p.known) == p.env.N || p.quiet >= p.window
}

func (p *walkProc) Knows(g ugf.ProcID) bool { return p.known[g] }

func main() {
	const n, f, seed = 80, 24, 11

	for _, scenario := range []struct {
		label string
		adv   ugf.Adversary
	}{
		{"no adversary      ", nil},
		{"UGF (universal)   ", ugf.UGF{FixedK: 1, FixedL: 1}},
		{"strategy 1 only   ", ugf.Strategy1{}},
		{"strategy 2.1.0    ", ugf.Strategy2K0{}},
		{"strategy 2.1.1    ", ugf.Strategy2KL{}},
	} {
		o, err := ugf.Run(ugf.Config{
			N: n, F: f,
			Protocol:  walkProtocol{},
			Adversary: scenario.adv,
			Seed:      seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s T=%8.1f  M=%8d  gathered=%-5v strategy=%s\n",
			scenario.label, o.Time, o.Messages, o.Gathered, o.Strategy)
	}

	fmt.Println()
	fmt.Println("UGF was written years before this protocol existed — universality means it")
	fmt.Println("never needed to know. The timeout that makes the protocol terminate under")
	fmt.Println("crashes is also what the delay strategies exploit: quiet processes give up")
	fmt.Println("waiting, and the delayed gossips must wake the whole system again later.")
}
