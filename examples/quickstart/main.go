// Quickstart: run one gossip dissemination with no adversary and one under
// attack by the Universal Gossip Fighter, and compare the paper's two
// complexity measures.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/ugf-sim/ugf"
)

func main() {
	const (
		n    = 100
		f    = 30 // the paper's experimental setting F = 0.3N
		seed = 7
	)

	baseline, err := ugf.Run(ugf.Config{
		N: n, F: f,
		Protocol: ugf.PushPull{},
		Seed:     seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	attacked, err := ugf.Run(ugf.Config{
		N: n, F: f,
		Protocol: ugf.PushPull{},
		// FixedK/FixedL = 1 and τ = F is the configuration of the
		// paper's experimental section (V-A3).
		Adversary: ugf.UGF{FixedK: 1, FixedL: 1},
		Seed:      seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Push-Pull gossip dissemination, N =", n, "processes:")
	fmt.Println()
	fmt.Println("  without adversary: ", baseline)
	fmt.Println("  under UGF attack:  ", attacked)
	fmt.Println()
	fmt.Printf("UGF drew strategy %s and made the dissemination %.1fx slower in time\n",
		attacked.Strategy, ratio(attacked.Time, baseline.Time))
	fmt.Printf("and %.1fx more expensive in messages — while the protocol never learned\n",
		ratio(float64(attacked.Messages), float64(baseline.Messages)))
	fmt.Println("which of UGF's strategies it was facing.")
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
