// Theorem 1 in practice: a protocol that tries to undercut quadratic
// message complexity by a factor α pays for it under UGF — with time, or
// with failed disseminations.
//
// The program sweeps α over the budget-capped EARS family (per-process
// send budget ⌈(N−1)/α⌉) under UGF and prints the measured trade-off.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/ugf-sim/ugf"
	"github.com/ugf-sim/ugf/internal/plot"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/stats"
)

func main() {
	const (
		n    = 80
		f    = 24
		runs = 16
	)

	table := &plot.Table{
		Title: fmt.Sprintf(
			"Message budget vs dissemination quality under UGF (N=%d, F=%d, %d runs)", n, f, runs),
		Columns: []string{"α", "budget/process", "median M(O)", "M/N²", "median T(O)", "gathering"},
	}

	for _, alpha := range []int{1, 2, 4, 8, 16} {
		proto := ugf.BudgetCapped{Alpha: alpha}
		results, err := runner.Execute([]runner.Spec{{
			Name: fmt.Sprintf("alpha=%d", alpha),
			Base: ugf.Config{
				N: n, F: f,
				Protocol:  proto,
				Adversary: ugf.UGF{FixedK: 1, FixedL: 1},
			},
			Runs: runs, BaseSeed: 2022,
		}}, 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		outs := results[0].Outcomes
		medM := stats.Median(runner.Messages(outs))
		medT := stats.Median(runner.Times(outs))
		table.AddRow(
			alpha,
			proto.Budget(n),
			medM,
			fmt.Sprintf("%.3f", medM/float64(n*n)),
			medT,
			fmt.Sprintf("%.0f%%", 100*runner.GatheredRate(outs)),
		)
	}

	if err := table.Text(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Reading the table: larger α shrinks message volume as intended, but under")
	fmt.Println("UGF the saved messages were exactly the redundancy that carried the rumor")
	fmt.Println("past the attack — rumor gathering decays, which is the empirical face of")
	fmt.Println("Theorem 1's E[T] = Ω(αF) or E[M] = Ω(N + F²/log²_τ(αF)) dichotomy.")
}
