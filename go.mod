module github.com/ugf-sim/ugf

go 1.22
