// Package ugf is a laptop-scale reproduction of "The Universal Gossip
// Fighter" (Gorbunova, Guerraoui, Kermarrec, Kucherenko, Pinot —
// IPPS 2022): a discrete-step simulator for partially synchronous,
// crash-prone message-passing systems, the all-to-all gossip protocols the
// paper evaluates, and the paper's contribution — the Universal Gossip
// Fighter (UGF), an adaptive adversary that slows the dissemination of
// *any* all-to-all gossip protocol without knowing which protocol it is
// attacking.
//
// This package is the public facade: it re-exports the simulation engine
// (internal/sim), the protocols (internal/gossip), UGF and its component
// strategies (internal/core), and the contrast adversaries
// (internal/adversary) under one import.
//
// # Quick start
//
//	outcome, err := ugf.Run(ugf.Config{
//		N:         100,
//		F:         30,
//		Protocol:  ugf.PushPull{},
//		Adversary: ugf.UGF{FixedK: 1, FixedL: 1}, // the paper's setting
//		Seed:      1,
//	})
//	if err != nil { ... }
//	fmt.Println(outcome) // M(O), T(O), strategy drawn, rumor gathering, …
//
// A run is a pure function of (Config, Seed): rerunning the same
// configuration reproduces the outcome bit for bit, including under
// parallel stepping (Config.Workers).
//
// # Implementing your own protocol or adversary
//
// Protocols implement Protocol/Process (see the sim package for the
// execution-model contract), adversaries implement Adversary/
// AdversaryInstance. The examples/custom-protocol program walks through a
// complete protocol implementation.
//
// # Reproducing the paper
//
// cmd/ugfbench regenerates every figure and table (DESIGN.md §3 maps each
// to its experiment id); cmd/ugfsim runs and traces single scenarios.
package ugf

import (
	"io"

	"github.com/ugf-sim/ugf/internal/adversary"
	"github.com/ugf-sim/ugf/internal/core"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/params"
	"github.com/ugf-sim/ugf/internal/service"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/sim/trace"
	"github.com/ugf-sim/ugf/internal/spec"
)

// Simulation engine types (see internal/sim for full documentation).
type (
	// Config fully describes one run; Run(Config) is deterministic.
	Config = sim.Config
	// Outcome is the measured result of a run: M(O), T(O), T_end, rumor
	// gathering, crash count, and the adversary's strategy label.
	Outcome = sim.Outcome
	// Protocol builds the per-process state machines of a run.
	Protocol = sim.Protocol
	// Process is one process's protocol state machine.
	Process = sim.Process
	// Env is the identity/constants/randomness a Process is built with.
	Env = sim.Env
	// Outbox collects the sends of one local step.
	Outbox = sim.Outbox
	// Message is a payload in transit.
	Message = sim.Message
	// Payload is protocol-defined message content.
	Payload = sim.Payload
	// Adversary builds per-run adversary instances.
	Adversary = sim.Adversary
	// AdversaryInstance is the online, adaptive attack state.
	AdversaryInstance = sim.AdversaryInstance
	// View is the adversary's read-only window onto the system.
	View = sim.View
	// Control is the adversary's crash/delay write access.
	Control = sim.Control
	// SendRecord is the adversary-visible record of one send.
	SendRecord = sim.SendRecord
	// ProcID identifies a process (and the gossip it originated).
	ProcID = sim.ProcID
	// Step counts global time steps.
	Step = sim.Step
	// TraceSink receives engine events.
	TraceSink = sim.TraceSink
	// TraceEvent is one observable engine event.
	TraceEvent = sim.TraceEvent
	// TraceKind classifies trace events.
	TraceKind = sim.TraceKind
	// KindMask is a bit set of TraceKinds for trace filtering.
	KindMask = sim.KindMask
	// Recorder is an in-memory TraceSink for tests and small runs; stream
	// large runs to disk with NewJSONLTrace/CreateJSONLTrace instead.
	Recorder = sim.Recorder
	// FuncSink adapts a function to the TraceSink interface.
	FuncSink = sim.FuncSink
	// Snapshot is a point on the dissemination curve (Config.Sample).
	Snapshot = sim.Snapshot
	// Stats is the engine's always-on per-run observability block (see
	// Outcome.Stats): scheduler, message, lifecycle and adversary counters,
	// all deterministic except Stats.Wall.
	Stats = sim.Stats
	// KindCount is one payload-kind counter of Stats.MessagesByKind.
	KindCount = sim.KindCount
	// IntervalStats is one window of the optional per-interval series
	// (Config.StatsEvery).
	IntervalStats = sim.IntervalStats
	// WallStats is a run's wall-clock cost by phase.
	WallStats = sim.WallStats
	// FaultPlan is a deterministic per-link fault model (Config.Faults):
	// seeded probabilistic drop, duplication, and detected corruption of
	// messages in the network, bit-identical across serial, parallel, and
	// sharded execution.
	FaultPlan = sim.FaultPlan
	// LinkFault is the verdict of one FaultPlan roll.
	LinkFault = sim.LinkFault
	// Topology names a communication graph for Config.Topology; nil (or
	// kind "complete") is the paper's all-to-all network.
	Topology = sim.Topology
	// Graph is a run's live communication-graph edge set.
	Graph = sim.Graph
	// JSONLTrace is the streaming JSONL TraceSink of sim/trace: full traces
	// of large runs go to disk instead of RAM.
	JSONLTrace = trace.JSONL
	// TraceRecord is the decoded form of one JSONL trace line.
	TraceRecord = trace.Record
	// TraceFilter selects trace events by kind, process, and step window.
	TraceFilter = trace.Filter
)

// Trace event kinds (sim.TraceSend etc. re-exported).
const (
	TraceSend      = sim.TraceSend
	TraceArrive    = sim.TraceArrive
	TraceLocalStep = sim.TraceLocalStep
	TraceCrash     = sim.TraceCrash
	TraceSleep     = sim.TraceSleep
	TraceWake      = sim.TraceWake
	TraceAdversary = sim.TraceAdversary
	TraceEnd       = sim.TraceEnd
	TraceRecover   = sim.TraceRecover
	TraceDrop      = sim.TraceDrop
)

// Link-fault verdicts (sim.FaultNone etc. re-exported).
const (
	FaultNone      = sim.FaultNone
	FaultDrop      = sim.FaultDrop
	FaultDuplicate = sim.FaultDuplicate
	FaultCorrupt   = sim.FaultCorrupt
)

// ParseFaultPlan parses a fault spec such as
// "drop=0.1,dup=0.05,corrupt=0.01,seed=7" into a FaultPlan for
// Config.Faults. An empty spec yields nil (no faults).
func ParseFaultPlan(s string) (*FaultPlan, error) { return sim.ParseFaultPlan(s) }

// ParseTopology parses a topology spec such as "ring", "k-regular,k=4",
// "expander,k=4,seed=9", or "radio,k=3,seed=2" into a Topology for
// Config.Topology. An empty spec yields nil (the complete graph).
func ParseTopology(s string) (*Topology, error) { return sim.ParseTopology(s) }

// AllKinds is the KindMask accepting every trace kind.
const AllKinds = sim.AllKinds

// MaskOf builds a KindMask from the given kinds.
func MaskOf(kinds ...TraceKind) KindMask { return sim.MaskOf(kinds...) }

// ParseTraceKind resolves a kind name ("send", "arrive", …) to its
// TraceKind — the inverse of TraceKind.String, for CLI filter flags.
func ParseTraceKind(name string) (TraceKind, bool) { return sim.ParseTraceKind(name) }

// NewJSONLTrace returns a streaming JSONL trace sink writing to w; the
// caller keeps ownership of w.
func NewJSONLTrace(w io.Writer) *JSONLTrace { return trace.NewJSONL(w) }

// CreateJSONLTrace opens (truncating) the file at path and returns a JSONL
// trace sink that owns it: Close flushes and closes the file.
func CreateJSONLTrace(path string) (*JSONLTrace, error) { return trace.Create(path) }

// ReadTrace decodes a JSONL trace stream back into records.
func ReadTrace(r io.Reader) ([]TraceRecord, error) { return trace.Read(r) }

// MultiTrace fans every event out to all sinks, in order.
func MultiTrace(sinks ...TraceSink) TraceSink { return trace.Multi(sinks...) }

// CloseTrace closes a sink if it is closable (JSONL and filtered sinks
// are) and is a no-op otherwise.
func CloseTrace(s TraceSink) error { return trace.CloseSink(s) }

// The all-to-all gossip protocols of the paper's evaluation plus the
// baselines and extensions (see internal/gossip).
type (
	// PushPull is the pull-request/push protocol of Section V-A2(a).
	PushPull = gossip.PushPull
	// Push is the classic push-only protocol of Karp et al. [19].
	Push = gossip.Push
	// Pull is the classic pull-only protocol of Karp et al. [19].
	Pull = gossip.Pull
	// EARS is Epidemic Asynchronous Rumor Spreading [14].
	EARS = gossip.EARS
	// SEARS is Spamming EARS [14]: constant time, quadratic messages.
	SEARS = gossip.SEARS
	// RoundRobin is the deliberately inefficient protocol of Example 1.
	RoundRobin = gossip.RoundRobin
	// Broadcast is the trivial one-round, N² message protocol.
	Broadcast = gossip.Broadcast
	// Doubling is deterministic recursive-doubling dissemination:
	// N·⌈log₂N⌉ messages, ⌈log₂N⌉ rounds, zero crash tolerance.
	Doubling = gossip.Doubling
	// BudgetCapped is the N²/α-message protocol family of the Theorem 1
	// trade-off experiment.
	BudgetCapped = gossip.BudgetCapped
	// Adaptive is a Push-Pull variant that tries to adapt to the
	// adversary — the ablation target for UGF's randomization.
	Adaptive = gossip.Adaptive
)

// The adversaries.
type (
	// UGF is the Universal Gossip Fighter, Algorithm 1 — the paper's
	// contribution. The zero value is the paper's experimental setting
	// except for exponents, which it samples; set FixedK/FixedL to 1 for
	// the exact Section V-A3 configuration.
	UGF = core.UGF
	// Strategy1 always crashes the controlled set C.
	Strategy1 = core.Strategy1
	// Strategy2K0 isolates one process of C and crashes its receivers.
	Strategy2K0 = core.Strategy2K0
	// Strategy2KL delays C's local steps (τᵏ) and deliveries (τᵏ⁺ˡ).
	Strategy2KL = core.Strategy2KL
	// Oblivious pre-commits its crashes — the weak adversary of [14].
	Oblivious = adversary.Oblivious
	// Omission drops C's messages instead of delaying them (Sec. VII).
	Omission = adversary.Omission
	// Partition splits the membership into communication classes for
	// windows of steps, healing between windows.
	Partition = adversary.Partition
	// CrashRecovery crashes up to ⌊F/2⌋ processes and later recovers each,
	// mixing amnesiac and state-retaining restarts.
	CrashRecovery = adversary.CrashRecovery
	// Rewire obliviously mutates the communication graph within a fixed
	// edge-edit budget (Config.Topology's dynamic-network adversary).
	Rewire = adversary.Rewire
)

// Run executes one simulation to quiescence (or cutoff) and returns its
// Outcome. It is sim.Run re-exported.
func Run(cfg Config) (Outcome, error) { return sim.Run(cfg) }

// NewOutbox returns a standalone Outbox for driving Process
// implementations in tests.
func NewOutbox(from ProcID, n int) Outbox { return sim.NewOutbox(from, n) }

// ProtocolByName looks a protocol up by its registry name ("push-pull",
// "push", "pull", "ears", "sears", "round-robin", "broadcast", "doubling",
// "adaptive", "budget-capped"), configured with the paper's experimental
// parameters.
func ProtocolByName(name string) (Protocol, bool) { return gossip.ByName(name) }

// ProtocolNames lists the registered protocol names.
func ProtocolNames() []string { return gossip.Names() }

// AdversaryByName looks an adversary up by name: "none" (nil), "ugf"
// (the paper's fixed k = l = 1 setting), "ugf-sampled" (ζ(2)-sampled
// exponents), "strategy-1", "strategy-2.1.0", "strategy-2.1.1",
// "oblivious", "omission", "partition", "crash-recovery", or "rewire".
// It is adversary.ByName re-exported, mirroring ProtocolByName.
func AdversaryByName(name string) (Adversary, bool) { return adversary.ByName(name) }

// AdversaryNames lists the names AdversaryByName accepts.
func AdversaryNames() []string { return adversary.Names() }

// Canonical run specifications and the sweep service (see internal/spec
// and internal/service). A Spec is the serializable, versioned, validated
// description of one run — the currency of the result cache, the HTTP job
// API, and the distributed sweep runtime.
type (
	// Spec names a protocol and adversary from the registries, overlays
	// parameter diffs, and fixes N/F/seed and the run limits. Spec.Config
	// is the one blessed path from a serialized description to a runnable
	// Config; SpecFromConfig is its inverse for registry-built configs.
	Spec = spec.Spec
	// SpecError is the structured validation error every Spec rejection
	// carries: the offending field, the parameter within it, and a message.
	SpecError = spec.Error
	// ParamSchema describes one tunable parameter of a registered protocol
	// or adversary: wire name, kind, default, and bounds.
	ParamSchema = params.Schema
	// SweepClient speaks the sweep service's HTTP job API: submit spec
	// grids, stream results, fetch cached runs, and work leases.
	SweepClient = service.Client
)

// SpecVersion is the current spec schema version; Spec.Validate rejects
// higher versions.
const SpecVersion = spec.Version

// ParseSpec decodes and validates a JSON spec, rejecting unknown fields.
// Failures are *SpecError values naming the offending field.
func ParseSpec(data []byte) (Spec, error) { return spec.ParseSpec(data) }

// Fingerprint returns the spec's content-addressed identity: the FNV-64a
// hash of its canonical JSON, stable under field reordering, default
// elision, and parameter spelling. It is the repo's ONE fingerprint
// implementation — the result cache, the run journal, and the HTTP API
// all key off it.
func Fingerprint(s Spec) string { return s.Fingerprint() }

// SpecFromConfig extracts the canonical Spec of a registry-built Config —
// the inverse of Spec.Config. Configs carrying protocol or adversary
// types outside the registries are not spec-expressible and return an
// error.
func SpecFromConfig(cfg Config) (Spec, error) { return spec.FromConfig(cfg) }

// OutcomeHash collapses an outcome's deterministic projection (every
// field except Stats.Wall) to a 16-hex-digit FNV-64a hash — the equality
// under which reproducibility is asserted.
func OutcomeHash(o Outcome) string { return spec.OutcomeHash(o) }

// NewSweepClient returns a client for the sweep coordinator at baseURL
// (the address ugfbench -serve listens on).
func NewSweepClient(baseURL string) *SweepClient { return service.NewClient(baseURL) }

// ProtocolSchemas lists each registered protocol's parameter schemas by
// name — what a client needs to construct valid Specs without guessing.
func ProtocolSchemas() map[string][]ParamSchema {
	out := make(map[string][]ParamSchema)
	for _, e := range gossip.Entries() {
		out[e.Name] = e.Params
	}
	return out
}

// AdversarySchemas lists each registered adversary's parameter schemas by
// name, mirroring ProtocolSchemas.
func AdversarySchemas() map[string][]ParamSchema {
	out := make(map[string][]ParamSchema)
	for _, e := range adversary.Entries() {
		out[e.Name] = e.Params
	}
	return out
}

// BuildProtocol constructs a registered protocol with a parameter overlay
// applied over the registry default — ProtocolByName plus validated
// parameterization.
func BuildProtocol(name string, p map[string]float64) (Protocol, error) {
	return gossip.Build(name, p)
}

// BuildAdversary constructs a registered adversary with a parameter
// overlay, mirroring BuildProtocol. Building "none" yields nil.
func BuildAdversary(name string, p map[string]float64) (Adversary, error) {
	return adversary.Build(name, p)
}
