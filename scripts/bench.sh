#!/usr/bin/env sh
# bench.sh — run the engine benchmarks and record a JSON baseline.
#
# Usage:
#   scripts/bench.sh [out.json] [benchtime] [baseline.json]
#
# Runs the scheduler-sensitive engine benchmarks (BenchmarkEngineLargeN,
# BenchmarkEngineDelayHeavy, BenchmarkRingTopology, and the big-N scale
# runs BenchmarkEngineBigN in internal/sim, plus the end-to-end benches
# at the repo root) with allocation reporting, and writes the parsed
# results as JSON rows to the output file (default BENCH_4.json, the
# post-topology-layer baseline).
# Each benchmark runs BENCH_COUNT times (default 3) and the minimum ns/op
# is recorded — the standard noise-robust reading. The big-N runs are one
# iteration each regardless of benchtime: a 10⁶-process run is its own
# steady state. With a baseline file (default BENCH_2.json when present),
# each row additionally carries baseline_ns_per_op / delta_pct and
# baseline_allocs_per_op / allocs_delta_pct — the changes versus the
# baseline row of the same name (default baseline BENCH_3.json when
# present; the topology benches are new in BENCH_4 and carry no
# baseline columns). Time deltas across machines (or across a
# busy machine's moods) are indicative only; allocation counts are
# deterministic and comparable anywhere. scripts/bench_gate.sh benchmarks
# both sides in one invocation and is the authoritative regression check.
set -eu

out="${1:-BENCH_4.json}"
benchtime="${2:-10x}"
baseline="${3-BENCH_3.json}"
count="${BENCH_COUNT:-3}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

cd "$(dirname "$0")/.."
[ -f "$baseline" ] || baseline=""

go test ./internal/sim/ -run '^$' -bench 'Benchmark(Engine(LargeN|DelayHeavy)|RingTopology)' \
	-benchtime "$benchtime" -count "$count" -timeout 1800s | tee "$tmp"
go test ./internal/sim/ -run '^$' -bench 'BenchmarkEngineBigN' \
	-benchtime 1x -count "$count" -timeout 1800s | tee -a "$tmp"
go test . -run '^$' -bench 'Benchmark(EngineParallel|ProtocolRun|Strategy2KLDelayHeavy)' \
	-benchtime "$benchtime" -count "$count" -timeout 1800s | tee -a "$tmp"

# Parse `name  iters  N ns/op  N B/op  N allocs/op` lines into JSON rows
# (minimum ns/op per name across the -count repetitions), joining against
# the baseline file's one-row-per-line format when given.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v basefile="$baseline" '
BEGIN {
	if (basefile != "") {
		while ((getline line < basefile) > 0) {
			if (match(line, /"name": "[^"]+"/)) {
				name = substr(line, RSTART + 9, RLENGTH - 10)
				if (match(line, /"ns_per_op": [0-9.]+/))
					base[name] = substr(line, RSTART + 13, RLENGTH - 13)
				if (match(line, /"allocs_per_op": [0-9.]+/))
					baseAllocs[name] = substr(line, RSTART + 17, RLENGTH - 17)
			}
		}
		close(basefile)
	}
}
/^Benchmark/ {
	ns = bytes = allocs = "null"
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (!($1 in minNs)) { order[n++] = $1 }
	if (!($1 in minNs) || (ns != "null" && ns + 0 < minNs[$1] + 0)) {
		minNs[$1] = ns; rowIter[$1] = $2; rowBytes[$1] = bytes; rowAllocs[$1] = allocs
	}
}
END {
	print "["
	for (i = 0; i < n; i++) {
		name = order[i]; ns = minNs[name]
		if (i) printf ",\n"
		printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
			name, rowIter[name], ns, rowBytes[name], rowAllocs[name]
		if ((name in base) && ns != "null" && base[name] > 0)
			printf ", \"baseline_ns_per_op\": %s, \"delta_pct\": %.2f", base[name], 100 * (ns - base[name]) / base[name]
		if ((name in baseAllocs) && rowAllocs[name] != "null" && baseAllocs[name] > 0)
			printf ", \"baseline_allocs_per_op\": %s, \"allocs_delta_pct\": %.2f", \
				baseAllocs[name], 100 * (rowAllocs[name] - baseAllocs[name]) / baseAllocs[name]
		printf ", \"date\": \"%s\"}", date
	}
	print "\n]"
}
' "$tmp" > "$out"

echo "wrote $out"
