#!/usr/bin/env sh
# bench.sh — run the engine benchmarks and record a JSON baseline.
#
# Usage:
#   scripts/bench.sh [out.json] [benchtime]
#
# Runs the scheduler-sensitive engine benchmarks (BenchmarkEngineLargeN,
# BenchmarkEngineDelayHeavy in internal/sim, and the end-to-end benches at
# the repo root) with allocation reporting, and writes the parsed results
# as JSON rows to the output file (default BENCH_0.json). Compare runs
# with `benchstat` or by diffing the JSON.
set -eu

out="${1:-BENCH_0.json}"
benchtime="${2:-10x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

cd "$(dirname "$0")/.."

go test ./internal/sim/ -run '^$' -bench 'BenchmarkEngine(LargeN|DelayHeavy)' \
	-benchtime "$benchtime" -timeout 1800s | tee "$tmp"
go test . -run '^$' -bench 'Benchmark(EngineParallel|ProtocolRun|Strategy2KLDelayHeavy)' \
	-benchtime "$benchtime" -timeout 1800s | tee -a "$tmp"

# Parse `name  iters  N ns/op  N B/op  N allocs/op` lines into JSON rows.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { print "[" }
/^Benchmark/ {
	ns = bytes = allocs = "null"
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"date\": \"%s\"}", $1, $2, ns, bytes, allocs, date
}
END { print "\n]" }
' "$tmp" > "$out"

echo "wrote $out"
