#!/usr/bin/env sh
# bench.sh — run the engine benchmarks and record a JSON baseline.
#
# Usage:
#   scripts/bench.sh [out.json] [benchtime] [baseline.json]
#
# Runs the scheduler-sensitive engine benchmarks (BenchmarkEngineLargeN,
# BenchmarkEngineDelayHeavy in internal/sim, and the end-to-end benches at
# the repo root) with allocation reporting, and writes the parsed results
# as JSON rows to the output file (default BENCH_0.json). Each benchmark
# runs BENCH_COUNT times (default 3) and the minimum ns/op is recorded —
# the standard noise-robust reading. With a baseline file (a previous run
# of this script), each row additionally carries baseline_ns_per_op and
# delta_pct — the ns/op change versus the baseline row of the same name.
# Deltas across machines (or across a busy machine's moods) are
# indicative only; scripts/bench_gate.sh benchmarks both sides in one
# invocation and is the authoritative regression check.
set -eu

out="${1:-BENCH_0.json}"
benchtime="${2:-10x}"
baseline="${3:-}"
count="${BENCH_COUNT:-3}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

cd "$(dirname "$0")/.."

go test ./internal/sim/ -run '^$' -bench 'BenchmarkEngine(LargeN|DelayHeavy)' \
	-benchtime "$benchtime" -count "$count" -timeout 1800s | tee "$tmp"
go test . -run '^$' -bench 'Benchmark(EngineParallel|ProtocolRun|Strategy2KLDelayHeavy)' \
	-benchtime "$benchtime" -count "$count" -timeout 1800s | tee -a "$tmp"

# Parse `name  iters  N ns/op  N B/op  N allocs/op` lines into JSON rows
# (minimum ns/op per name across the -count repetitions), joining against
# the baseline file's one-row-per-line format when given.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v basefile="$baseline" '
BEGIN {
	if (basefile != "") {
		while ((getline line < basefile) > 0) {
			if (match(line, /"name": "[^"]+"/)) {
				name = substr(line, RSTART + 9, RLENGTH - 10)
				if (match(line, /"ns_per_op": [0-9.]+/))
					base[name] = substr(line, RSTART + 13, RLENGTH - 13)
			}
		}
		close(basefile)
	}
}
/^Benchmark/ {
	ns = bytes = allocs = "null"
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (!($1 in minNs)) { order[n++] = $1 }
	if (!($1 in minNs) || (ns != "null" && ns + 0 < minNs[$1] + 0)) {
		minNs[$1] = ns; rowIter[$1] = $2; rowBytes[$1] = bytes; rowAllocs[$1] = allocs
	}
}
END {
	print "["
	for (i = 0; i < n; i++) {
		name = order[i]; ns = minNs[name]
		if (i) printf ",\n"
		printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
			name, rowIter[name], ns, rowBytes[name], rowAllocs[name]
		if ((name in base) && ns != "null" && base[name] > 0)
			printf ", \"baseline_ns_per_op\": %s, \"delta_pct\": %.2f", base[name], 100 * (ns - base[name]) / base[name]
		printf ", \"date\": \"%s\"}", date
	}
	print "\n]"
}
' "$tmp" > "$out"

echo "wrote $out"
