#!/usr/bin/env sh
# verify.sh — full pre-merge verification: vet, tests, race detector.
#
# Tier-1 (fast): go build ./... && go test ./...
# This script is the stronger gate referenced from ROADMAP.md; run it
# before merging engine or runner changes.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -timeout 10m ./...
go test -race -timeout 20m ./...

# Full differential/property sweep (internal/simtest): engine vs the
# naive reference engine, serial vs parallel, serial vs sharded commits,
# same-seed determinism, and online trace validation, over 600 generated
# configs per property — above the 224 a plain non-short `go test` uses
# and far above the 48 of tier-1's -short mode. Roughly a quarter of the
# generated configs carry an active fault plan (lossy links, partitions,
# crash-recovery scripts) and another quarter a non-complete topology
# (ring, k-regular, expander, radio — with edge-edit scripts and the
# rewire adversary in the mix), each paired with a stall window and an
# event cutoff, so the sweep covers the fault pipeline, the edge-liveness
# send path, and stall-safe termination on every property.
UGF_PROPERTY_CONFIGS=600 go test -count=1 -timeout 20m -run 'TestProperty' ./internal/simtest/

# Sharded-commit race band: the shards property again, under the race
# detector, on a reduced config band. The plain sweep above proves the
# merge is outcome-preserving; this run is what actually exercises the
# shard lanes' no-shared-mutable-state claim (CI runs the same band).
UGF_PROPERTY_CONFIGS=80 go test -race -count=1 -timeout 15m -run 'TestPropertyShardsMatchSerial' ./internal/simtest/

# Live-transport oracle band: the full internal/live suite already ran in
# the -race pass above (bit-exact live ≡ sim equality, audited traces,
# TCP parity); this adds the reduced statistical-compatibility band —
# disjoint seed sets through both runtimes, tolerance + chi-squared on
# the outcome distributions — under the race detector with its own name
# on the failure.
go test -race -short -count=1 -timeout 10m -run 'TestLiveMatchesSimStatistically' ./internal/simtest/
