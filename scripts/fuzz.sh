#!/usr/bin/env sh
# fuzz.sh — run every native fuzz target for a fixed time each.
#
#   scripts/fuzz.sh [fuzztime]
#
# fuzztime defaults to 20s (the CI fuzz-smoke budget); the nightly job
# passes 120s (7 targets x 120s = 14 minutes). Checked-in seed corpora
# live in each package's testdata/fuzz/<FuzzName>/; go test runs those
# even without -fuzz, so plain `go test ./...` is already a corpus
# regression test. A crashing input is minimized and written to the same
# directory — check it in to turn the crash into a permanent regression
# test (see DESIGN.md section 9 for the reproduction workflow).
set -eux

cd "$(dirname "$0")/.."

FUZZTIME="${1:-20s}"

go test -fuzz='^FuzzEngineVsOracle$' -fuzztime="$FUZZTIME" -run '^$' ./internal/simtest
go test -fuzz='^FuzzFaultPlan$'       -fuzztime="$FUZZTIME" -run '^$' ./internal/simtest
go test -fuzz='^FuzzTopologySpec$'    -fuzztime="$FUZZTIME" -run '^$' ./internal/simtest
go test -fuzz='^FuzzTraceRoundTrip$' -fuzztime="$FUZZTIME" -run '^$' ./internal/sim/trace
go test -fuzz='^FuzzJournalTornTail$' -fuzztime="$FUZZTIME" -run '^$' ./internal/runner
go test -fuzz='^FuzzZetaSampler$'     -fuzztime="$FUZZTIME" -run '^$' ./internal/xrand
go test -fuzz='^FuzzWireCodec$'       -fuzztime="$FUZZTIME" -run '^$' ./internal/live/wire
