#!/usr/bin/env sh
# bench_gate.sh — fail if anything regressed the sparse-scheduling hot
# path — wall time beyond the noise budget, or allocations at all beyond
# theirs.
#
# Usage:
#   scripts/bench_gate.sh [max_regression_pct]
#
# Environment:
#   BASELINE_REF   git ref to compare against (default: the last commit
#                  before the observability counters, 6c991fe)
#   BENCHTIME      go test -benchtime value (default 10x)
#   BENCH_COUNT    repetitions; the gate takes the minimum ns/op of each
#                  side, which is robust to scheduling noise (default 5)
#   ALLOC_BUDGET   max allocs/op regression percentage (default 2;
#                  allocation counts are deterministic, so this budget is
#                  slack for environment drift, not for noise)
#
# The gate checks BenchmarkEngineLargeN/ring/N=10000 — one active process
# among 10k sleepers, so per-event bookkeeping cost has nowhere to hide —
# by benchmarking HEAD and BASELINE_REF on the same machine in the same
# invocation (a git worktree holds the baseline checkout). The two sides
# run in BENCH_COUNT *alternating* rounds and each side keeps its minimum
# ns/op: alternation cancels slow machine drift (a busy window hits both
# sides), the minimum cancels per-round scheduling noise. Absolute
# numbers from different machines are never compared. allocs/op is gated
# alongside ns/op: the zero-alloc steady state of the memory rewrite means
# any new per-event allocation shows up here as a percentage jump.
set -eu

budget="${1:-5}"
alloc_budget="${ALLOC_BUDGET:-2}"
ref="${BASELINE_REF:-6c991fe}"
benchtime="${BENCHTIME:-10x}"
count="${BENCH_COUNT:-5}"
bench='BenchmarkEngineLargeN/ring/N=10000'

cd "$(dirname "$0")/.."
worktree="$(mktemp -d)"
trap 'git worktree remove --force "$worktree" 2>/dev/null || true; rm -rf "$worktree"' EXIT

git worktree add --detach "$worktree" "$ref" >/dev/null

one_round() {
	# One "ns/op allocs/op" sample of $bench in the package at $1.
	(cd "$1" && go test ./internal/sim/ -run '^$' -bench "$bench" \
		-benchtime "$benchtime" -timeout 1800s) |
		awk '/^Benchmark/ {
			ns = allocs = "-"
			for (i = 3; i < NF; i++) {
				if ($(i+1) == "ns/op") ns = $i
				if ($(i+1) == "allocs/op") allocs = $i
			}
			print ns, allocs; exit
		}'
}

echo "bench_gate: $bench, HEAD vs $ref, -benchtime $benchtime, $count alternating rounds"
head_ns="" base_ns="" head_allocs="" base_allocs=""
i=0
while [ "$i" -lt "$count" ]; do
	set -- $(one_round .)
	h="$1" head_allocs="$2"
	set -- $(one_round "$worktree")
	b="$1" base_allocs="$2"
	echo "bench_gate: round $((i + 1)): head $h ns/op $head_allocs allocs/op, base $b ns/op $base_allocs allocs/op"
	[ -n "$head_ns" ] && [ "$(echo "$h $head_ns" | awk '{print ($1 < $2)}')" = 0 ] || head_ns="$h"
	[ -n "$base_ns" ] && [ "$(echo "$b $base_ns" | awk '{print ($1 < $2)}')" = 0 ] || base_ns="$b"
	i=$((i + 1))
done

awk -v head="$head_ns" -v base="$base_ns" -v budget="$budget" \
	-v headAllocs="$head_allocs" -v baseAllocs="$base_allocs" -v allocBudget="$alloc_budget" 'BEGIN {
	fail = 0
	delta = 100 * (head - base) / base
	printf "bench_gate: time   baseline %.0f ns/op, head %.0f ns/op, delta %+.2f%% (budget +%s%%)\n",
		base, head, delta, budget
	if (delta > budget) {
		print "bench_gate: FAIL — hot path wall time regressed beyond the budget"
		fail = 1
	}
	if (headAllocs != "-" && baseAllocs != "-" && baseAllocs > 0) {
		adelta = 100 * (headAllocs - baseAllocs) / baseAllocs
		printf "bench_gate: allocs baseline %d allocs/op, head %d allocs/op, delta %+.2f%% (budget +%s%%)\n",
			baseAllocs, headAllocs, adelta, allocBudget
		if (adelta > allocBudget) {
			print "bench_gate: FAIL — hot path allocations regressed beyond the budget"
			fail = 1
		}
	}
	if (fail) exit 1
	print "bench_gate: OK"
}'
