#!/usr/bin/env sh
# bench_gate.sh — fail if anything regressed an engine hot path — wall
# time beyond the noise budget, or allocations at all beyond theirs.
#
# Usage:
#   scripts/bench_gate.sh [max_regression_pct]
#
# Environment:
#   BASELINE_REF   git ref to compare against (default: the last commit
#                  before the observability counters, 6c991fe)
#   BENCHTIME      go test -benchtime value (default 10x)
#   BENCH_COUNT    repetitions; the gate takes the minimum ns/op of each
#                  side, which is robust to scheduling noise (default 5)
#   ALLOC_BUDGET   max allocs/op regression percentage (default 2;
#                  allocation counts are deterministic, so this budget is
#                  slack for environment drift, not for noise)
#   BENCHES        space-separated benchmark names to gate (default: the
#                  three hot paths below)
#
# The gated benchmarks cover the three regimes where per-event
# bookkeeping cost has nowhere to hide:
#
#   BenchmarkEngineLargeN/ring/N=10000     one active process among 10k
#                                          sleepers — sparse scheduling
#   BenchmarkEngineLargeN/stagger/N=10000  every process on its own step
#                                          grid — bucket churn and
#                                          intern-table turnover
#   BenchmarkEngineDelayHeavy/N=5000       Strategy 2.k.l delay rewrites
#                                          — calendar spread and the
#                                          delay-heavy commit path
#
# Each is benchmarked on HEAD and BASELINE_REF on the same machine in the
# same invocation (a git worktree holds the baseline checkout). The two
# sides run in BENCH_COUNT *alternating* rounds and each side keeps its
# minimum ns/op: alternation cancels slow machine drift (a busy window
# hits both sides), the minimum cancels per-round scheduling noise.
# Absolute numbers from different machines are never compared. allocs/op
# is gated alongside ns/op: the zero-alloc steady state of the memory
# rewrite means any new per-event allocation shows up here as a
# percentage jump.
set -eu

budget="${1:-5}"
alloc_budget="${ALLOC_BUDGET:-2}"
ref="${BASELINE_REF:-6c991fe}"
benchtime="${BENCHTIME:-10x}"
count="${BENCH_COUNT:-5}"
benches="${BENCHES:-BenchmarkEngineLargeN/ring/N=10000 BenchmarkEngineLargeN/stagger/N=10000 BenchmarkEngineDelayHeavy/N=5000}"

cd "$(dirname "$0")/.."
worktree="$(mktemp -d)"
samples="$(mktemp)"
trap 'git worktree remove --force "$worktree" 2>/dev/null || true; rm -rf "$worktree" "$samples"' EXIT

git worktree add --detach "$worktree" "$ref" >/dev/null

one_round() {
	# One "ns/op allocs/op" sample of bench $2 in the package at $1.
	(cd "$1" && go test ./internal/sim/ -run '^$' -bench "$2\$" \
		-benchtime "$benchtime" -timeout 1800s) |
		awk '/^Benchmark/ {
			ns = allocs = "-"
			for (i = 3; i < NF; i++) {
				if ($(i+1) == "ns/op") ns = $i
				if ($(i+1) == "allocs/op") allocs = $i
			}
			print ns, allocs; exit
		}'
}

echo "bench_gate: HEAD vs $ref, -benchtime $benchtime, $count alternating rounds"
i=0
while [ "$i" -lt "$count" ]; do
	for bench in $benches; do
		set -- $(one_round . "$bench")
		echo "$bench head $1 $2" >>"$samples"
		h="$1 ns/op $2 allocs/op"
		set -- $(one_round "$worktree" "$bench")
		echo "$bench base $1 $2" >>"$samples"
		echo "bench_gate: round $((i + 1)) $bench: head $h, base $1 ns/op $2 allocs/op"
	done
	i=$((i + 1))
done

awk -v budget="$budget" -v allocBudget="$alloc_budget" '
{
	key = $1 SUBSEP $2
	if (!(key in ns) || $3 + 0 < ns[key] + 0) ns[key] = $3
	if (!(key in al) || ($4 != "-" && $4 + 0 < al[key] + 0)) al[key] = $4
	if (!($1 in seen)) { order[n++] = $1; seen[$1] = 1 }
}
END {
	fail = 0
	for (i = 0; i < n; i++) {
		b = order[i]
		head = ns[b SUBSEP "head"]; base = ns[b SUBSEP "base"]
		headAllocs = al[b SUBSEP "head"]; baseAllocs = al[b SUBSEP "base"]
		delta = 100 * (head - base) / base
		printf "bench_gate: %s\n", b
		printf "bench_gate:   time   baseline %.0f ns/op, head %.0f ns/op, delta %+.2f%% (budget +%s%%)\n",
			base, head, delta, budget
		if (delta > budget) {
			print "bench_gate:   FAIL — hot path wall time regressed beyond the budget"
			fail = 1
		}
		if (headAllocs != "-" && baseAllocs != "-" && baseAllocs > 0) {
			adelta = 100 * (headAllocs - baseAllocs) / baseAllocs
			printf "bench_gate:   allocs baseline %d allocs/op, head %d allocs/op, delta %+.2f%% (budget +%s%%)\n",
				baseAllocs, headAllocs, adelta, allocBudget
			if (adelta > allocBudget) {
				print "bench_gate:   FAIL — hot path allocations regressed beyond the budget"
				fail = 1
			}
		}
	}
	if (fail) exit 1
	print "bench_gate: OK"
}' "$samples"
