package ugf_test

import (
	"testing"

	"github.com/ugf-sim/ugf"
)

// TestFullMatrix runs every registered protocol against every registered
// adversary at a small size: the whole public surface must terminate
// cleanly in every combination.
func TestFullMatrix(t *testing.T) {
	for _, protoName := range ugf.ProtocolNames() {
		proto, _ := ugf.ProtocolByName(protoName)
		for _, advName := range ugf.AdversaryNames() {
			adv, _ := ugf.AdversaryByName(advName)
			name := protoName + "/" + advName
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				for seed := uint64(0); seed < 3; seed++ {
					o, err := ugf.Run(ugf.Config{
						N: 24, F: 8,
						Protocol:  proto,
						Adversary: adv,
						Seed:      seed,
						MaxEvents: 20_000_000,
					})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if o.HorizonHit {
						t.Errorf("seed %d: did not quiesce: %+v", seed, o)
					}
					if o.Crashed > 8 {
						t.Errorf("seed %d: crash budget exceeded: %d", seed, o.Crashed)
					}
					if o.Messages < 0 || o.Time < 0 {
						t.Errorf("seed %d: negative complexity: %+v", seed, o)
					}
				}
			})
		}
	}
}

// TestMatrixGatheringContract: the paper's evaluated protocols must
// achieve rumor gathering under every delay-only adversary (crash
// adversaries may legitimately remove the gossips' holders, and Push/
// Doubling/BudgetCapped make no such promise — see their type comments).
func TestMatrixGatheringContract(t *testing.T) {
	safeAdvs := map[string][]string{
		// One-shot senders tolerate arbitrary delays but not drops: a
		// dropped message is never retried. Only the EARS family — which
		// keeps sending until it holds spread evidence — also survives a
		// budgeted omission attack (the Section VII extension's point).
		"push-pull":   {"none", "strategy-2.1.1"},
		"pull":        {"none", "strategy-2.1.1"},
		"adaptive":    {"none", "strategy-2.1.1"},
		"round-robin": {"none", "strategy-2.1.1"},
		"broadcast":   {"none", "strategy-2.1.1"},
		"ears":        {"none", "strategy-2.1.1", "omission"},
		"sears":       {"none", "strategy-2.1.1", "omission"},
	}
	for protoName, advNames := range safeAdvs {
		proto, _ := ugf.ProtocolByName(protoName)
		for _, advName := range advNames {
			adv, _ := ugf.AdversaryByName(advName)
			name := protoName + "/" + advName
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				fails := 0
				for seed := uint64(0); seed < 5; seed++ {
					o, err := ugf.Run(ugf.Config{
						N: 21, F: 6,
						Protocol:  proto,
						Adversary: adv,
						Seed:      seed,
						MaxEvents: 20_000_000,
					})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if !o.Gathered {
						fails++
					}
				}
				if fails > 0 {
					t.Errorf("gathering failed on %d/5 delay-only runs", fails)
				}
			})
		}
	}
}
