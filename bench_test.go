package ugf_test

// The bench harness: one benchmark per figure panel and table of the
// paper (DESIGN.md §3 maps ids to artifacts), plus the ablation benches
// DESIGN.md §8 calls out. Each experiment benchmark executes its full
// experiment at quick fidelity per iteration and reports the headline
// medians as custom metrics; `ugfbench -fidelity full` regenerates the
// paper-scale versions.

import (
	"testing"

	"github.com/ugf-sim/ugf"
	"github.com/ugf-sim/ugf/internal/experiments"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/stats"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(experiments.Config{
			Fidelity: experiments.Quick,
			BaseSeed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatal("empty report")
		}
	}
}

// Figure 3 panels.

func BenchmarkFig3aPushPullTime(b *testing.B) { benchExperiment(b, "fig3a") }
func BenchmarkFig3bEARSTime(b *testing.B)     { benchExperiment(b, "fig3b") }
func BenchmarkFig3cPushPullMsg(b *testing.B)  { benchExperiment(b, "fig3c") }
func BenchmarkFig3dEARSMsg(b *testing.B)      { benchExperiment(b, "fig3d") }
func BenchmarkFig3eSEARSMsg(b *testing.B)     { benchExperiment(b, "fig3e") }

// In-text tables and extensions.

func BenchmarkTableFSweep(b *testing.B)     { benchExperiment(b, "fsweep") }
func BenchmarkTableExample1(b *testing.B)   { benchExperiment(b, "example1") }
func BenchmarkTableLemma45(b *testing.B)    { benchExperiment(b, "lemma45") }
func BenchmarkTableLemma1(b *testing.B)     { benchExperiment(b, "lemma1") }
func BenchmarkTableTradeoff(b *testing.B)   { benchExperiment(b, "tradeoff") }
func BenchmarkTableStrategies(b *testing.B) { benchExperiment(b, "strategies") }
func BenchmarkTableOblivious(b *testing.B)  { benchExperiment(b, "oblivious") }
func BenchmarkTableAdaptation(b *testing.B) { benchExperiment(b, "adaptation") }
func BenchmarkTableOmission(b *testing.B)   { benchExperiment(b, "omission") }
func BenchmarkTableTuning(b *testing.B)     { benchExperiment(b, "tuning") }

// benchAttack measures one (protocol, adversary) pair at a fixed size and
// reports the medians as custom metrics.
func benchAttack(b *testing.B, n, f int, proto ugf.Protocol, adv ugf.Adversary) {
	var medT, medM float64
	for i := 0; i < b.N; i++ {
		results, err := runner.Execute([]runner.Spec{{
			Name: "bench",
			Base: ugf.Config{N: n, F: f, Protocol: proto, Adversary: adv},
			Runs: 8, BaseSeed: uint64(i + 1),
		}}, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		outs := results[0].Outcomes
		medT = stats.Median(runner.Times(outs))
		medM = stats.Median(runner.Messages(outs))
	}
	b.ReportMetric(medT, "T-median")
	b.ReportMetric(medM, "M-median")
}

// Ablation 1 (DESIGN.md §8): ζ(2)-sampled exponents vs the paper's fixed
// k = l = 1. Sampling occasionally draws far larger delays, trading a
// heavier tail for the indistinguishability guarantees of Lemmas 4–5.
func BenchmarkAblationZeta(b *testing.B) {
	const n, f = 60, 18
	b.Run("fixed-k1l1", func(b *testing.B) {
		benchAttack(b, n, f, ugf.EARS{}, ugf.UGF{FixedK: 1, FixedL: 1})
	})
	b.Run("zeta-sampled", func(b *testing.B) {
		benchAttack(b, n, f, ugf.EARS{}, ugf.UGF{})
	})
}

// Ablation 2: the online receiver-crashing of Strategy 2.k.0 vs the same
// crash volume committed obliviously. The adaptive part is what isolates
// ρ̂ — pre-committed crashes hit mostly irrelevant processes.
func BenchmarkAblationOnline(b *testing.B) {
	const n, f = 60, 18
	b.Run("online-2.1.0", func(b *testing.B) {
		benchAttack(b, n, f, ugf.EARS{}, ugf.Strategy2K0{})
	})
	b.Run("oblivious", func(b *testing.B) {
		benchAttack(b, n, f, ugf.EARS{}, ugf.Oblivious{})
	})
}

// Ablation 3: deterministic parallel stepping vs serial execution of the
// same run (identical outcomes; throughput differs with core count).
func BenchmarkEngineParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "serial", 2: "workers-2", 4: "workers-4", 8: "workers-8"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := ugf.Run(ugf.Config{
					N: 300, F: 0, Protocol: ugf.SEARS{}, Seed: uint64(i + 1),
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStrategy2KLDelayHeavy is the end-to-end face of the engine's
// skipped-step scheduling: Strategy 2.k.l rewrites the controlled set's
// local-step times to τᵏ and delivery times to τᵏ⁺ˡ (τ = F), so the run
// spans a huge global-step range in which almost every step is inert.
// Engine scheduling, not protocol work, dominates. The in-package
// counterpart with scripted delays is sim.BenchmarkEngineDelayHeavy.
func BenchmarkStrategy2KLDelayHeavy(b *testing.B) {
	for _, n := range []int{200, 500} {
		b.Run(map[int]string{200: "N=200", 500: "N=500"}[n], func(b *testing.B) {
			b.ReportAllocs()
			f := n / 3
			for i := 0; i < b.N; i++ {
				if _, err := ugf.Run(ugf.Config{
					N: n, F: f, Protocol: ugf.EARS{}, Adversary: ugf.Strategy2KL{K: 1, L: 1},
					Seed: uint64(i + 1),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Baseline single-run costs per protocol.
func BenchmarkProtocolRun(b *testing.B) {
	protos := []ugf.Protocol{ugf.PushPull{}, ugf.EARS{}, ugf.SEARS{}, ugf.RoundRobin{}, ugf.Broadcast{}}
	for _, proto := range protos {
		proto := proto
		b.Run(proto.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ugf.Run(ugf.Config{N: 200, F: 60, Protocol: proto, Seed: uint64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
