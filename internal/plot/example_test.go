package plot_test

import (
	"os"

	"github.com/ugf-sim/ugf/internal/plot"
)

func ExampleTable_markdown() {
	t := &plot.Table{
		Title:   "demo",
		Columns: []string{"N", "T(O)"},
	}
	t.AddRow(10, 4.5)
	t.AddRow(100, 49.5)
	_ = t.Markdown(os.Stdout)
	// Output:
	// ### demo
	//
	// | N | T(O) |
	// | --- | --- |
	// | 10 | 4.500 |
	// | 100 | 49.5 |
}
