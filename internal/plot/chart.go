package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve of a chart. Ys[i] pairs with the chart's
// Xs[i]; NaN marks a missing point.
type Series struct {
	Name string
	Ys   []float64
}

// Chart is an ASCII line chart: the terminal rendition of one panel of
// the paper's Figure 3.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Series []Series
	// Width and Height are the plot-area dimensions in characters;
	// 0 means 64×20.
	Width, Height int
	// LogY plots the y axis in log₁₀ scale (useful when one series is
	// quadratic and another logarithmic).
	LogY bool
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Render draws the chart. It never fails; charts with no drawable points
// render an empty frame.
func (c Chart) Render() string {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}

	xMin, xMax := minMax(c.Xs)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		lo, hi := minMax(s.Ys)
		yMin = math.Min(yMin, lo)
		yMax = math.Max(yMax, hi)
	}
	if c.LogY {
		if yMin <= 0 {
			yMin = 0.1
		}
		yMin, yMax = math.Log10(yMin), math.Log10(math.Max(yMax, yMin*10))
	}
	if math.IsInf(yMin, 1) || xMin == xMax {
		// Nothing to draw.
		yMin, yMax = 0, 1
		if xMin == xMax {
			xMax = xMin + 1
		}
	}
	if yMin == yMax {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		return int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
	}
	row := func(y float64) int {
		if c.LogY {
			if y <= 0 {
				return height - 1
			}
			y = math.Log10(y)
		}
		r := int(math.Round((y - yMin) / (yMax - yMin) * float64(height-1)))
		return height - 1 - clampInt(r, 0, height-1)
	}

	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		for i, y := range s.Ys {
			if i >= len(c.Xs) || math.IsNaN(y) {
				continue
			}
			r, cl := row(y), col(c.Xs[i])
			grid[r][cl] = mark
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop, yBot := yMax, yMin
	if c.LogY {
		yTop, yBot = math.Pow(10, yMax), math.Pow(10, yMin)
	}
	labelTop := FormatFloat(yTop)
	labelBot := FormatFloat(yBot)
	pad := len(labelTop)
	if len(labelBot) > pad {
		pad = len(labelBot)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, labelTop)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, labelBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", pad), width-len(FormatFloat(xMax)), FormatFloat(xMin), FormatFloat(xMax))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s%s\n", strings.Repeat(" ", pad), c.XLabel, c.YLabel, logSuffix(c.LogY))
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", pad), markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func logSuffix(logY bool) string {
	if logY {
		return " (log scale)"
	}
	return ""
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
