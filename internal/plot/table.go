// Package plot renders experiment results as Markdown tables, CSV files,
// and ASCII line charts — the textual equivalents of the paper's figures,
// suitable for terminals, logs, and EXPERIMENTS.md.
package plot

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with FormatCell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = FormatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

// FormatCell renders a cell value compactly: integers verbatim, floats
// with adaptive precision, everything else via fmt.
func FormatCell(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return FormatFloat(x)
	case float32:
		return FormatFloat(float64(x))
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64:
		return fmt.Sprintf("%d", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// FormatFloat renders a float compactly: integral values without a
// fraction, small values with three significant decimals, large values
// with one.
func FormatFloat(x float64) string {
	switch {
	case x == float64(int64(x)) && x < 1e15 && x > -1e15:
		return strconv.FormatInt(int64(x), 10)
	case x != 0 && (x < 0.01 && x > -0.01 || x >= 1e7 || x <= -1e7):
		return strconv.FormatFloat(x, 'g', 3, 64)
	case x < 10 && x > -10:
		return strconv.FormatFloat(x, 'f', 3, 64)
	default:
		return strconv.FormatFloat(x, 'f', 1, 64)
	}
}

// Markdown writes the table as GitHub-flavored Markdown.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table (header plus rows) as RFC 4180 CSV.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Text renders a fixed-width plain-text view for terminals.
func (t *Table) Text(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
