package plot

import (
	"math"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{Title: "demo", Columns: []string{"N", "T", "M"}}
	t.AddRow(10, 1.5, int64(100))
	t.AddRow(20, 3.25, int64(400))
	return t
}

func TestTableMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().Markdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### demo", "| N | T | M |", "| --- | --- | --- |", "| 10 | 1.500 | 100 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().CSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if lines[0] != "N,T,M" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "10,1.500,100" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestTableText(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().Text(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "3.250") {
		t.Errorf("text table incomplete:\n%s", out)
	}
	// Columns aligned: every data row has the same length.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines[2]) == 0 {
		t.Error("missing separator")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{5, "5"},
		{-3, "-3"},
		{0, "0"},
		{1.5, "1.500"},
		{123.456, "123.5"},
		{0.001234, "0.00123"},
		{1.25e9, "1250000000"}, // integral values print without a fraction
		{1.25e9 + 0.5, "1.25e+09"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatCell(t *testing.T) {
	if FormatCell("x") != "x" {
		t.Error("string cell")
	}
	if FormatCell(7) != "7" {
		t.Error("int cell")
	}
	if FormatCell(int64(9)) != "9" {
		t.Error("int64 cell")
	}
	if FormatCell(float32(2)) != "2" {
		t.Error("float32 cell")
	}
	if FormatCell(true) != "true" {
		t.Error("fallback cell")
	}
}

func TestChartRender(t *testing.T) {
	ch := Chart{
		Title:  "time vs N",
		XLabel: "N",
		YLabel: "T",
		Xs:     []float64{10, 20, 30, 40},
		Series: []Series{
			{Name: "baseline", Ys: []float64{1, 2, 3, 4}},
			{Name: "ugf", Ys: []float64{5, 10, 15, 20}},
		},
	}
	out := ch.Render()
	for _, want := range []string{"time vs N", "* baseline", "o ugf", "x: N", "y: T"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("chart has no plotted points")
	}
}

func TestChartLogScale(t *testing.T) {
	ch := Chart{
		Xs:     []float64{1, 2, 3},
		Series: []Series{{Name: "s", Ys: []float64{1, 100, 10000}}},
		LogY:   true,
	}
	out := ch.Render()
	if !strings.Contains(out, "log scale") && !strings.Contains(out, "s") {
		t.Errorf("log chart rendering broken:\n%s", out)
	}
}

func TestChartDegenerate(t *testing.T) {
	// Empty, constant-x, NaN-laden charts must render without panicking.
	charts := []Chart{
		{},
		{Xs: []float64{5, 5}, Series: []Series{{Name: "c", Ys: []float64{1, 1}}}},
		{Xs: []float64{1, 2}, Series: []Series{{Name: "n", Ys: []float64{math.NaN(), math.NaN()}}}},
		{Xs: []float64{1, 2}, Series: []Series{{Name: "z", Ys: []float64{3, 3}}}},
	}
	for i, ch := range charts {
		if out := ch.Render(); out == "" {
			t.Errorf("chart %d rendered empty", i)
		}
	}
}

func TestChartCustomSize(t *testing.T) {
	ch := Chart{
		Xs:     []float64{1, 2},
		Series: []Series{{Name: "s", Ys: []float64{1, 2}}},
		Width:  20, Height: 5,
	}
	out := ch.Render()
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 5 {
		t.Errorf("plot rows = %d, want 5", plotLines)
	}
}
