// Package core implements the paper's primary contribution: the Universal
// Gossip Fighter (Algorithm 1 of "The Universal Gossip Fighter",
// IPPS 2022), together with its three component strategies as standalone
// adversaries (the "max UGF" series of Figure 3).
//
// UGF is an adaptive adversary (Definition II.5) that needs no knowledge
// of the gossip protocol it attacks. It splits the processes into a
// controlled set C (a uniform sample of F/2 processes) and the rest, and
// commits — randomly, so that the protocol cannot adapt (Section IV-A) —
// to one of:
//
//   - Strategy 1 (probability q₁): crash all of C. Effective when Π∖C
//     communicates slowly, forcing high time complexity.
//   - Strategy 2.k.0 (probability (1−q₁)q₂): slow C down to local step
//     time τᵏ, isolate one survivor ρ̂ ∈ C by crashing the rest of C, and
//     then crash, online, every process ρ̂ sends to — until the crash
//     budget F runs out. Effective when C communicates slowly.
//   - Strategy 2.k.l (probability (1−q₁)(1−q₂)): slow C down to local
//     step time τᵏ and delivery time τᵏ⁺ˡ. Effective when C communicates
//     quickly, forcing high message complexity.
//
// The exponents k and l are drawn from the ζ(2) law P(K=k) = 6/(π²k²)
// (Remark 2), which is what gives Lemmas 4 and 5 their 1/⌈log_τ t⌉ tail
// bounds and, through them, Theorem 1:
//
//	E[T(EXE)] = Ω(αF)  or  E[M(EXE)] = Ω(N + F²/log²_τ(αF)).
package core

import (
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// Default probability parameters: the "safe choice" of Section III-B that
// makes the three strategy families equiprobable (q₁ = 1/3, q₂ = 1/2).
const (
	DefaultQ1 = 1.0 / 3.0
	DefaultQ2 = 1.0 / 2.0
)

// DefaultMaxDelay bounds the delays τᵏ and τᵏ⁺ˡ that sampled exponents may
// produce. The ζ(2) law is heavy-tailed (E[k] diverges), so an unbounded
// draw would occasionally schedule delays beyond any usable horizon; the
// exponent cap truncates and renormalizes the law (xrand.Zeta2Capped),
// preserving its 1/k² shape on the retained support. Experiments that pin
// k = l = 1 (the paper's Section V-A3 setting) are unaffected.
const DefaultMaxDelay sim.Step = 1 << 20

// UGF is the Universal Gossip Fighter, Algorithm 1. The zero value runs
// the paper's experimental configuration: q₁ = 1/3, q₂ = 1/2, τ = F, and
// sampled exponents.
type UGF struct {
	// Q1 is the probability of Strategy 1; 0 means DefaultQ1.
	Q1 float64
	// Q2 is the probability of Strategy 2.k.0 given a type-2 strategy;
	// 0 means DefaultQ2.
	Q2 float64
	// Tau is the delay parameter τ > 1; 0 means max(F, 2), the paper's
	// experimental setting τ = F.
	Tau sim.Step
	// FixedK pins the exponent k instead of sampling it (> 0 to enable).
	// The paper's experiments use FixedK = FixedL = 1.
	FixedK int
	// FixedL pins the exponent l instead of sampling it (> 0 to enable).
	FixedL int
	// MaxExponent caps sampled exponents; 0 derives the cap from
	// DefaultMaxDelay and τ.
	MaxExponent int
}

// Name implements sim.Adversary.
func (UGF) Name() string { return "ugf" }

// New implements sim.Adversary.
func (u UGF) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	return &ugfInstance{u: u, n: n, f: f, rng: rng}
}

type ugfInstance struct {
	u     UGF
	n, f  int
	rng   *xrand.RNG
	inner sim.AdversaryInstance
	label string
}

// Init implements sim.AdversaryInstance: run the randomization scheme of
// Algorithm 1 and hand control to the drawn strategy.
func (g *ugfInstance) Init(view sim.View, ctl sim.Control) {
	tau := g.u.Tau
	if tau == 0 {
		tau = sim.Step(g.f)
	}
	if tau < 2 {
		tau = 2
	}
	cSize := g.f / 2
	if cSize == 0 {
		// Without a crash budget of at least 2 there is no set C to
		// control; UGF degenerates to a no-op.
		g.inner = idleStrategy{}
		g.label = "idle"
		return
	}
	c := sampleC(g.rng, g.n, cSize)
	choice := SampleChoice(g.rng, Params{
		Q1: g.u.Q1, Q2: g.u.Q2,
		FixedK: g.u.FixedK, FixedL: g.u.FixedL,
		MaxExponent: g.u.MaxExponent, Tau: tau,
	})
	g.label = choice.Label()
	switch choice.Kind {
	case KindStrategy1:
		g.inner = &strategy1Instance{c: c}
	case KindStrategy2K0:
		g.inner = &strategy2k0Instance{c: c, k: choice.K, tau: tau, rng: g.rng}
	default:
		g.inner = &strategy2klInstance{c: c, k: choice.K, l: choice.L, tau: tau}
	}
	g.inner.Init(view, ctl)
}

// Observe implements sim.AdversaryInstance.
func (g *ugfInstance) Observe(now sim.Step, events []sim.SendRecord, view sim.View, ctl sim.Control) {
	g.inner.Observe(now, events, view, ctl)
}

// Label implements sim.AdversaryInstance.
func (g *ugfInstance) Label() string { return g.label }

// sampleC draws the controlled set C: a uniform sample of size processes.
func sampleC(rng *xrand.RNG, n, size int) []sim.ProcID {
	idx := rng.SampleInts(n, size)
	c := make([]sim.ProcID, size)
	for i, v := range idx {
		c[i] = sim.ProcID(v)
	}
	return c
}

// ControlledSet replays the draw of C that any of this package's
// adversaries makes first thing on the given stream: a uniform sample of
// F/2 processes. Combined with sim.AdversaryRNG it lets tooling
// reconstruct, offline, which processes a run's adversary controlled —
// the indistinguishability experiment needs this to restrict its
// comparison to Π∖C.
func ControlledSet(rng *xrand.RNG, n, f int) []sim.ProcID {
	return sampleC(rng, n, f/2)
}

// powStep computes tau^e, saturating at limit to keep delays addressable
// within the simulation horizon.
func powStep(tau sim.Step, e int, limit sim.Step) sim.Step {
	v := sim.Step(1)
	for i := 0; i < e; i++ {
		if v > limit/tau {
			return limit
		}
		v *= tau
	}
	return v
}

// idleStrategy is the degenerate no-op used when F < 2.
type idleStrategy struct{}

func (idleStrategy) Init(sim.View, sim.Control) {}
func (idleStrategy) Observe(sim.Step, []sim.SendRecord, sim.View, sim.Control) {
}
func (idleStrategy) Label() string { return "idle" }
