package core

import (
	"reflect"
	"strings"
	"testing"

	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

func run(t *testing.T, cfg sim.Config) sim.Outcome {
	t.Helper()
	o, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if o.HorizonHit {
		t.Fatalf("run hit horizon: %+v", o)
	}
	return o
}

func TestStrategy1CrashesHalfBudget(t *testing.T) {
	o := run(t, sim.Config{
		N: 20, F: 6, Protocol: gossip.PushPull{}, Adversary: Strategy1{}, Seed: 1,
	})
	if o.Crashed != 3 {
		t.Errorf("Crashed = %d, want F/2 = 3", o.Crashed)
	}
	if o.Strategy != "1" {
		t.Errorf("Strategy = %q, want \"1\"", o.Strategy)
	}
	if !o.Gathered {
		t.Error("survivors must still gather")
	}
	// Crash-only strategy never touches delays.
	if o.DeltaMax != 1 || o.DelayMax != 1 {
		t.Errorf("δ=%d d=%d, want 1,1", o.DeltaMax, o.DelayMax)
	}
}

func TestStrategy2K0IsolatesAndCrashesReceivers(t *testing.T) {
	o := run(t, sim.Config{
		N: 20, F: 8, Protocol: gossip.EARS{}, Adversary: Strategy2K0{}, Seed: 2,
	})
	// Initial crashes: |C|−1 = 3; then receivers of ρ̂'s sends until the
	// budget F = 8 is gone. EARS keeps ρ̂ sending, so the budget should be
	// fully consumed.
	if o.Crashed != 8 {
		t.Errorf("Crashed = %d, want full budget 8", o.Crashed)
	}
	if o.Strategy != "2.1.0" {
		t.Errorf("Strategy = %q, want \"2.1.0\"", o.Strategy)
	}
	// ρ̂ survives with δ = τ = F, so the correct-process maxima must show it.
	if o.DeltaMax != 8 {
		t.Errorf("DeltaMax = %d, want τ = 8", o.DeltaMax)
	}
	if o.DelayMax != 1 {
		t.Errorf("DelayMax = %d, want 1 (2.k.0 does not delay deliveries)", o.DelayMax)
	}
}

func TestStrategy2K0ForcesLinearTimeOnEARS(t *testing.T) {
	// The headline mechanism of Fig. 3b: ρ̂ needs ~F/2 local steps of τ
	// global steps each before its gossip escapes, so T = Ω(F).
	const n, f = 60, 18
	for seed := uint64(0); seed < 3; seed++ {
		o := run(t, sim.Config{
			N: n, F: f, Protocol: gossip.EARS{}, Adversary: Strategy2K0{}, Seed: seed,
		})
		if o.Time < float64(f)/4 {
			t.Errorf("seed %d: T = %.2f, want Ω(F) with F = %d", seed, o.Time, f)
		}
	}
}

func TestStrategy2KLDelaysWithoutCrashing(t *testing.T) {
	o := run(t, sim.Config{
		N: 20, F: 8, Protocol: gossip.EARS{}, Adversary: Strategy2KL{}, Seed: 3,
	})
	if o.Crashed != 0 {
		t.Errorf("Crashed = %d, want 0", o.Crashed)
	}
	if o.Strategy != "2.1.1" {
		t.Errorf("Strategy = %q, want \"2.1.1\"", o.Strategy)
	}
	if o.DeltaMax != 8 {
		t.Errorf("DeltaMax = %d, want τ = F = 8", o.DeltaMax)
	}
	if o.DelayMax != 64 {
		t.Errorf("DelayMax = %d, want τ² = 64", o.DelayMax)
	}
	if !o.Gathered {
		t.Error("delay-only attack must not prevent gathering")
	}
}

func TestStrategy2KLInflatesMessages(t *testing.T) {
	// Fig. 3c mechanism: under Strategy 2.1.1 every process in Π∖C burns
	// a pull request on every member of C (and C answers), adding at
	// least ~N·F/2 messages on top of the baseline.
	const n, f = 60, 18
	const runs = 5
	var base, attacked int64
	for seed := uint64(0); seed < runs; seed++ {
		b := run(t, sim.Config{N: n, F: f, Protocol: gossip.PushPull{}, Seed: seed})
		a := run(t, sim.Config{N: n, F: f, Protocol: gossip.PushPull{}, Adversary: Strategy2KL{}, Seed: seed})
		base += b.Messages
		attacked += a.Messages
	}
	if extra := attacked - base; extra < runs*int64(n)*int64(f)/2 {
		t.Errorf("Strategy 2.1.1 added only %d messages over baseline %d, want ≥ %d",
			extra, base, runs*int64(n)*int64(f)/2)
	}
}

func TestStrategiesIdleWithoutBudget(t *testing.T) {
	for _, adv := range []sim.Adversary{Strategy1{}, Strategy2K0{}, Strategy2KL{}, UGF{}} {
		o := run(t, sim.Config{N: 10, F: 1, Protocol: gossip.PushPull{}, Adversary: adv, Seed: 4})
		if o.Crashed != 0 {
			t.Errorf("%s: crashed %d processes with F/2 = 0", adv.Name(), o.Crashed)
		}
		if o.DeltaMax != 1 || o.DelayMax != 1 {
			t.Errorf("%s: touched delays with F/2 = 0", adv.Name())
		}
	}
}

func TestUGFLabels(t *testing.T) {
	seen := map[string]bool{}
	for seed := uint64(0); seed < 60; seed++ {
		o := run(t, sim.Config{
			N: 20, F: 6, Protocol: gossip.PushPull{}, Adversary: UGF{FixedK: 1, FixedL: 1}, Seed: seed,
		})
		seen[o.Strategy] = true
		switch o.Strategy {
		case "1", "2.1.0", "2.1.1":
		default:
			t.Fatalf("unexpected strategy label %q", o.Strategy)
		}
		if o.Adversary != "ugf" {
			t.Fatalf("Adversary = %q", o.Adversary)
		}
	}
	for _, want := range []string{"1", "2.1.0", "2.1.1"} {
		if !seen[want] {
			t.Errorf("strategy %q never drawn in 60 runs", want)
		}
	}
}

func TestUGFSampledLabelsParse(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		o := run(t, sim.Config{
			N: 20, F: 6, Protocol: gossip.PushPull{}, Adversary: UGF{Tau: 3}, Seed: seed,
		})
		if o.Strategy != "1" && !strings.HasPrefix(o.Strategy, "2.") {
			t.Fatalf("unexpected label %q", o.Strategy)
		}
	}
}

func TestUGFRespectsBudget(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		n := 10 + int(seed%5)*10
		f := n / 3
		o := run(t, sim.Config{
			N: n, F: f, Protocol: gossip.EARS{}, Adversary: UGF{FixedK: 1, FixedL: 1}, Seed: seed,
		})
		if o.Crashed > f {
			t.Fatalf("seed %d: crashed %d > F = %d", seed, o.Crashed, f)
		}
	}
}

func TestUGFDeterministic(t *testing.T) {
	cfg := sim.Config{N: 30, F: 9, Protocol: gossip.EARS{}, Adversary: UGF{}, Seed: 17}
	a := run(t, cfg)
	b := run(t, cfg)
	if !reflect.DeepEqual(a.StripWall(), b.StripWall()) {
		t.Fatalf("UGF run not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestUGFDisruptsEveryProtocol(t *testing.T) {
	// The paper's main empirical takeaway (Section V-B1): under UGF every
	// protocol ends with linear time or quadratic messages — and usually
	// both complexities rise well above baseline. Median over seeds of the
	// per-seed max of (T/N, M/N²) must clear a threshold no baseline run
	// approaches.
	const n, f = 50, 15
	protos := []sim.Protocol{gossip.PushPull{}, gossip.EARS{}, gossip.SEARS{}}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			t.Parallel()
			disrupted := 0
			const runs = 9
			for seed := uint64(0); seed < runs; seed++ {
				o := run(t, sim.Config{
					N: n, F: f, Protocol: proto, Seed: seed,
					Adversary: UGF{FixedK: 1, FixedL: 1},
				})
				timeScore := o.Time / float64(n)
				msgScore := float64(o.Messages) / float64(n*n)
				if timeScore > 0.05 || msgScore > 0.2 {
					disrupted++
				}
			}
			if disrupted < runs/2 {
				t.Errorf("UGF disrupted only %d/%d runs of %s", disrupted, runs, proto.Name())
			}
		})
	}
}

func TestSampleCSizesAndUniqueness(t *testing.T) {
	rng := xrand.New(7)
	c := sampleC(rng, 50, 10)
	if len(c) != 10 {
		t.Fatalf("|C| = %d, want 10", len(c))
	}
	seen := map[sim.ProcID]bool{}
	for _, p := range c {
		if p < 0 || p >= 50 {
			t.Fatalf("C member %d out of range", p)
		}
		if seen[p] {
			t.Fatalf("duplicate C member %d", p)
		}
		seen[p] = true
	}
}
