package core

import (
	"math"
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

func TestSampleChoiceDefaultMix(t *testing.T) {
	// With the default q₁ = 1/3, q₂ = 1/2 the three families are
	// equiprobable (Section III-B).
	rng := xrand.New(1)
	const draws = 120000
	counts := map[Kind]int{}
	for i := 0; i < draws; i++ {
		counts[SampleChoice(rng, Params{Tau: 10}).Kind]++
	}
	for kind, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-1.0/3) > 0.01 {
			t.Errorf("%v drawn with rate %.4f, want ~1/3", kind, got)
		}
	}
}

func TestSampleChoiceCustomMix(t *testing.T) {
	rng := xrand.New(2)
	const draws = 120000
	p := Params{Q1: 0.5, Q2: 0.8, Tau: 10}
	counts := map[Kind]int{}
	for i := 0; i < draws; i++ {
		counts[SampleChoice(rng, p).Kind]++
	}
	wants := map[Kind]float64{
		KindStrategy1:   0.5,
		KindStrategy2K0: 0.5 * 0.8,
		KindStrategy2KL: 0.5 * 0.2,
	}
	for kind, want := range wants {
		got := float64(counts[kind]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%v rate %.4f, want %.2f", kind, got, want)
		}
	}
}

func TestSampleChoiceFixedExponents(t *testing.T) {
	rng := xrand.New(3)
	p := Params{FixedK: 1, FixedL: 1, Tau: 30}
	for i := 0; i < 2000; i++ {
		c := SampleChoice(rng, p)
		switch c.Kind {
		case KindStrategy2K0:
			if c.K != 1 {
				t.Fatalf("fixed k ignored: %+v", c)
			}
		case KindStrategy2KL:
			if c.K != 1 || c.L != 1 {
				t.Fatalf("fixed k/l ignored: %+v", c)
			}
		}
	}
}

func TestSampleChoiceExponentTail(t *testing.T) {
	// Sampled exponents must follow the ζ(2) law: P(K ≥ k) ≳ 6/(π²k)
	// (Lemma 4's tail), up to the cap.
	rng := xrand.New(4)
	p := Params{Q1: 0.0001, Q2: 0.0001, Tau: 2} // nearly always 2.k.l
	const draws = 100000
	tail3 := 0
	total := 0
	for i := 0; i < draws; i++ {
		c := SampleChoice(rng, p)
		if c.Kind != KindStrategy2KL {
			continue
		}
		total++
		if c.K >= 3 {
			tail3++
		}
	}
	got := float64(tail3) / float64(total)
	bound := xrand.Zeta2TailLowerBound(3) // 6/(π²·3) ≈ 0.2026
	if got < bound-0.01 {
		t.Errorf("P(K ≥ 3) = %.4f below the Lemma 4 bound %.4f", got, bound)
	}
}

func TestSampleChoiceRespectsCap(t *testing.T) {
	rng := xrand.New(5)
	p := Params{Q1: 0.0001, Q2: 0.5, Tau: 2, MaxExponent: 4}
	for i := 0; i < 5000; i++ {
		c := SampleChoice(rng, p)
		if c.K > 4 || c.L > 4 {
			t.Fatalf("exponent beyond cap: %+v", c)
		}
	}
}

func TestChoiceLabels(t *testing.T) {
	cases := []struct {
		c    Choice
		want string
	}{
		{Choice{Kind: KindStrategy1}, "1"},
		{Choice{Kind: KindStrategy2K0, K: 3}, "2.3.0"},
		{Choice{Kind: KindStrategy2KL, K: 1, L: 2}, "2.1.2"},
	}
	for _, c := range cases {
		if got := c.c.Label(); got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.c, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindStrategy1, KindStrategy2K0, KindStrategy2KL, Kind(99)} {
		if k.String() == "" {
			t.Errorf("empty String for kind %d", uint8(k))
		}
	}
}

func TestAutoMaxExponent(t *testing.T) {
	cases := []struct {
		tau  sim.Step
		want int
	}{
		{2, 10},      // 2^(2·10) = 2^20 = DefaultMaxDelay
		{1024, 1},    // 1024² = 2^20 exactly
		{1 << 11, 1}, // 2^22 > 2^20 → floor at 1
		{0, 10},      // τ < 2 clamps to 2
	}
	for _, c := range cases {
		if got := autoMaxExponent(c.tau); got != c.want {
			t.Errorf("autoMaxExponent(%d) = %d, want %d", c.tau, got, c.want)
		}
	}
}

func TestPowStep(t *testing.T) {
	if got := powStep(3, 4, 1<<40); got != 81 {
		t.Errorf("3^4 = %d, want 81", got)
	}
	if got := powStep(10, 0, 1<<40); got != 1 {
		t.Errorf("10^0 = %d, want 1", got)
	}
	if got := powStep(1000, 10, 1<<20); got != 1<<20 {
		t.Errorf("saturating pow = %d, want %d", got, 1<<20)
	}
	// Saturation must not overflow on huge bases either.
	if got := powStep(1<<40, 5, DefaultMaxDelay); got != DefaultMaxDelay {
		t.Errorf("huge-base pow = %d, want saturation", got)
	}
}
