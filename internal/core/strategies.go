package core

import (
	"fmt"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// The three strategies of Algorithm 1, each available as a standalone
// adversary that always applies it (with its own uniform draw of C).
// Figure 3's "max UGF" series are exactly these: Strategy 1 is the
// maximal time-complexity attack on Push-Pull, Strategy 2.1.0 on EARS,
// and Strategy 2.1.1 the maximal message-complexity attack on all three
// protocols.

// Strategy1 always applies Strategy 1: crash every process of a uniform
// F/2-sample C at the start of the run.
type Strategy1 struct{}

// Name implements sim.Adversary.
func (Strategy1) Name() string { return "strategy-1" }

// New implements sim.Adversary.
func (Strategy1) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	if f/2 == 0 {
		return idleStrategy{}
	}
	return &strategy1Instance{c: sampleC(rng, n, f/2)}
}

type strategy1Instance struct {
	c []sim.ProcID
}

func (s *strategy1Instance) Init(view sim.View, ctl sim.Control) {
	for _, p := range s.c {
		ctl.Crash(p)
	}
}

func (s *strategy1Instance) Observe(sim.Step, []sim.SendRecord, sim.View, sim.Control) {}

func (s *strategy1Instance) Label() string { return "1" }

// Strategy2K0 always applies Strategy 2.k.0: slow every process of C down
// to local-step time τᵏ, crash all of C except one uniformly drawn
// survivor ρ̂, and from then on crash — online, within the budget F —
// every correct process ρ̂ sends a message to. If ρ̂ spreads slowly this
// isolates it for ~τᵏ·F/2 global steps, forcing linear time complexity.
type Strategy2K0 struct {
	// K is the exponent k ≥ 1; 0 means 1 (the experimental setting).
	K int
	// Tau is τ > 1; 0 means max(F, 2).
	Tau sim.Step
}

// Name implements sim.Adversary.
func (s Strategy2K0) Name() string { return "strategy-2.k.0" }

// New implements sim.Adversary.
func (s Strategy2K0) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	if f/2 == 0 {
		return idleStrategy{}
	}
	k, tau := defaultKTau(s.K, s.Tau, f)
	return &strategy2k0Instance{c: sampleC(rng, n, f/2), k: k, tau: tau, rng: rng}
}

type strategy2k0Instance struct {
	c   []sim.ProcID
	k   int
	tau sim.Step
	rng *xrand.RNG
	hat sim.ProcID
}

func (s *strategy2k0Instance) Init(view sim.View, ctl sim.Control) {
	delta := powStep(s.tau, s.k, DefaultMaxDelay)
	for _, p := range s.c {
		ctl.SetDelta(p, delta)
	}
	s.hat = s.c[s.rng.Intn(len(s.c))]
	for _, p := range s.c {
		if p != s.hat {
			ctl.Crash(p)
		}
	}
}

// Observe implements the online loop of Algorithm 1: crash the receiver
// of every message ρ̂ sends, while the budget lasts. A send recorded at
// step t delivers at t+d ≥ t+1 and Observe runs before deliveries, so the
// crash always lands in time.
func (s *strategy2k0Instance) Observe(now sim.Step, events []sim.SendRecord, view sim.View, ctl sim.Control) {
	for _, ev := range events {
		if ev.From == s.hat && !view.Crashed(ev.To) {
			ctl.Crash(ev.To)
		}
	}
}

func (s *strategy2k0Instance) Label() string { return fmt.Sprintf("2.%d.0", s.k) }

// Strategy2KL always applies Strategy 2.k.l with l ≥ 1: slow every
// process of C down to local-step time τᵏ and delivery time τᵏ⁺ˡ. No
// crashes — the rest of the system keeps asking C for its gossips and
// keeps being answered at a τᵏ⁺ˡ delay, inflating the message complexity.
type Strategy2KL struct {
	// K is the exponent k ≥ 1; 0 means 1 (the experimental setting).
	K int
	// L is the exponent l ≥ 1; 0 means 1 (the experimental setting).
	L int
	// Tau is τ > 1; 0 means max(F, 2).
	Tau sim.Step
}

// Name implements sim.Adversary.
func (s Strategy2KL) Name() string { return "strategy-2.k.l" }

// New implements sim.Adversary.
func (s Strategy2KL) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	if f/2 == 0 {
		return idleStrategy{}
	}
	k, tau := defaultKTau(s.K, s.Tau, f)
	l := s.L
	if l <= 0 {
		l = 1
	}
	return &strategy2klInstance{c: sampleC(rng, n, f/2), k: k, l: l, tau: tau}
}

type strategy2klInstance struct {
	c    []sim.ProcID
	k, l int
	tau  sim.Step
}

func (s *strategy2klInstance) Init(view sim.View, ctl sim.Control) {
	delta := powStep(s.tau, s.k, DefaultMaxDelay)
	delay := powStep(s.tau, s.k+s.l, DefaultMaxDelay)
	for _, p := range s.c {
		ctl.SetDelta(p, delta)
		ctl.SetDelay(p, delay)
	}
}

func (s *strategy2klInstance) Observe(sim.Step, []sim.SendRecord, sim.View, sim.Control) {}

func (s *strategy2klInstance) Label() string { return fmt.Sprintf("2.%d.%d", s.k, s.l) }

func defaultKTau(k int, tau sim.Step, f int) (int, sim.Step) {
	if k <= 0 {
		k = 1
	}
	if tau == 0 {
		tau = sim.Step(f)
	}
	if tau < 2 {
		tau = 2
	}
	return k, tau
}
