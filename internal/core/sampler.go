package core

import (
	"fmt"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// Kind identifies which of Algorithm 1's strategy families a draw of the
// randomization scheme committed to.
type Kind uint8

// Strategy families of Algorithm 1.
const (
	KindStrategy1   Kind = iota // crash all of C
	KindStrategy2K0             // isolate ρ̂, crash its receivers online
	KindStrategy2KL             // delay C's local steps and deliveries
)

func (k Kind) String() string {
	switch k {
	case KindStrategy1:
		return "strategy-1"
	case KindStrategy2K0:
		return "strategy-2.k.0"
	case KindStrategy2KL:
		return "strategy-2.k.l"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Params configures one draw of the randomization scheme. The zero value
// uses the paper defaults (q₁ = 1/3, q₂ = 1/2, sampled exponents, cap
// derived from τ).
type Params struct {
	Q1, Q2         float64
	FixedK, FixedL int
	// MaxExponent caps sampled exponents: 0 derives the cap from τ and
	// DefaultMaxDelay; a negative value disables the cap entirely and
	// samples the untruncated ζ(2) law — required when validating the
	// Lemma 4/5 tail bounds, which the truncated law deliberately
	// undershoots for t beyond the cap.
	MaxExponent int
	Tau         sim.Step
}

// Choice is the outcome of one draw: the strategy family plus the drawn
// exponents (K is set for both type-2 families; L only for 2.k.l).
type Choice struct {
	Kind Kind
	K, L int
}

// Label renders the paper's strategy notation: "1", "2.k.0" or "2.k.l"
// with the drawn values substituted.
func (c Choice) Label() string {
	switch c.Kind {
	case KindStrategy1:
		return "1"
	case KindStrategy2K0:
		return fmt.Sprintf("2.%d.0", c.K)
	default:
		return fmt.Sprintf("2.%d.%d", c.K, c.L)
	}
}

// SampleChoice performs the randomization scheme of Algorithm 1 (also
// Figure 2): Strategy 1 with probability q₁; otherwise draw k from the
// ζ(2) law and pick 2.k.0 with probability q₂ or 2.k.l (l again ζ(2))
// with probability 1−q₂.
//
// It is exported — separately from the UGF adversary — so the `lemma45`
// experiment can Monte-Carlo the sampler and compare its tails against
// the lower bounds of Lemmas 4 and 5.
func SampleChoice(rng *xrand.RNG, p Params) Choice {
	q1, q2 := p.Q1, p.Q2
	if q1 == 0 {
		q1 = DefaultQ1
	}
	if q2 == 0 {
		q2 = DefaultQ2
	}
	if rng.Bernoulli(q1) {
		return Choice{Kind: KindStrategy1}
	}
	maxExp := p.MaxExponent
	if maxExp == 0 {
		maxExp = autoMaxExponent(p.Tau)
	}
	drawExp := func() int {
		if maxExp < 0 {
			return rng.Zeta2()
		}
		return rng.Zeta2Capped(maxExp)
	}
	k := p.FixedK
	if k <= 0 {
		k = drawExp()
	}
	if rng.Bernoulli(q2) {
		return Choice{Kind: KindStrategy2K0, K: k}
	}
	l := p.FixedL
	if l <= 0 {
		l = drawExp()
	}
	return Choice{Kind: KindStrategy2KL, K: k, L: l}
}

// autoMaxExponent returns the largest e ≥ 1 with τ^(2e) ≤ DefaultMaxDelay,
// so that even the combined delay τᵏ⁺ˡ of two capped draws stays within
// DefaultMaxDelay.
func autoMaxExponent(tau sim.Step) int {
	if tau < 2 {
		tau = 2
	}
	e := 0
	v := sim.Step(1)
	for v <= DefaultMaxDelay/(tau*tau) {
		v *= tau * tau
		e++
	}
	if e < 1 {
		e = 1
	}
	return e
}
