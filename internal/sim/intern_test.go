package sim

import "testing"

// Regression tests for the fan-out payload dedup. Before the intern table,
// Outbox.Drain and the engine's commit path re-wrapped the shared payload
// value into every per-destination Message, so a broadcast of one payload
// to N−1 recipients carried N−1 separate interface copies through the
// calendar. Now the Outbox stages the value once and the engine interns it
// into a single run-table slot, however many drafts reference it.

// countingPayload counts Kind resolutions: one per intern-memo *miss*, not
// one per send or even per sender, is the contract.
type countingPayload struct {
	kindCalls *int
}

func (c countingPayload) Kind() string {
	*c.kindCalls++
	return "counted"
}

func TestOutboxFanoutStagesOnce(t *testing.T) {
	ob := NewOutbox(3, 64)
	shared := benchPayload
	for to := 0; to < 32; to++ {
		if to != 3 {
			ob.Send(ProcID(to), shared)
		}
	}
	if got := ob.distinct(); got != 1 {
		t.Fatalf("fan-out of one payload staged %d entries, want 1", got)
	}
	if got := ob.Len(); got != 31 {
		t.Fatalf("Len = %d, want 31", got)
	}
	msgs := ob.Drain()
	for i, m := range msgs {
		if !samePayload(m.Payload, shared) {
			t.Fatalf("message %d carries a re-wrapped payload", i)
		}
	}
	// Alternating payloads still dedup per run of the memo.
	ob.reset(3, 64)
	a, b := Payload(testPayload{kind: "a"}), Payload(testPayload{kind: "b"})
	for to := 0; to < 8; to++ {
		ob.Send(ProcID(16+to), a)
	}
	for to := 0; to < 8; to++ {
		ob.Send(ProcID(32+to), b)
	}
	if got := ob.distinct(); got != 2 {
		t.Fatalf("two fan-out runs staged %d entries, want 2", got)
	}
}

// fanoutProto broadcasts one pre-boxed payload from every process to all
// others in its first local step, then sleeps — the maximal shared-payload
// fan-out.
type fanoutProto struct {
	pl Payload
}

func (fanoutProto) Name() string { return "fanout" }

func (fp fanoutProto) New(envs []Env) []Process {
	return BuildEach(envs, func(env Env) Process {
		return &fanoutProc{env: env, pl: fp.pl}
	})
}

type fanoutProc struct {
	env  Env
	pl   Payload
	done bool
}

func (p *fanoutProc) Step(now Step, delivered []Message, out *Outbox) {
	if !p.done {
		p.done = true
		for q := 0; q < p.env.N; q++ {
			if q != int(p.env.ID) {
				out.Send(ProcID(q), p.pl)
			}
		}
	}
}

func (p *fanoutProc) Asleep() bool        { return p.done }
func (p *fanoutProc) Knows(g ProcID) bool { return g == p.env.ID }

func TestEngineInternsFanoutOnce(t *testing.T) {
	const n = 48
	kindCalls := 0
	e, err := newEngine(Config{N: n, Protocol: fanoutProto{pl: countingPayload{kindCalls: &kindCalls}}})
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: every process broadcasts the same pre-boxed value. n·(n−1)
	// messages enter the calendar, but the intern memo collapses every
	// sender's staged payload onto one table slot.
	if !e.stepOnce() {
		t.Fatal("fan-out step did not run")
	}
	if got := e.ptab.live(); got != 1 {
		t.Errorf("after fan-out commit: %d live payload slots, want 1 (identical payload, one slot for all senders)", got)
	}
	if kindCalls != 1 {
		t.Errorf("Kind resolved %d times, want 1 (once per intern-memo miss, not per sender)", kindCalls)
	}
	// Drain the run; every slot must be recycled once its copies land.
	for !e.quiescent() {
		if !e.stepOnce() {
			break
		}
	}
	if got := e.ptab.live(); got != 0 {
		t.Errorf("after quiescence: %d live payload slots, want 0", got)
	}
	o := e.outcome()
	if want := int64(n * (n - 1)); o.Messages != want {
		t.Errorf("Messages = %d, want %d", o.Messages, want)
	}
	if kindCalls != 1 {
		t.Errorf("Kind resolved %d times by run end, want 1", kindCalls)
	}
}
