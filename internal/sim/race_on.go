//go:build race

package sim

// raceEnabled reports whether this binary was built with the race
// detector. See race_off.go.
const raceEnabled = true
