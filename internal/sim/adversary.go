package sim

import "github.com/ugf-sim/ugf/internal/xrand"

// Adversary constructs per-run adversary instances, mirroring Protocol.
// One Adversary value describes a strategy family; New creates the mutable
// per-run state.
type Adversary interface {
	// Name returns a short stable identifier ("ugf", "strategy-1", …).
	Name() string
	// New creates the adversary state for one run. n and f are the system
	// size and the crash budget; rng is the adversary's private stream.
	New(n, f int, rng *xrand.RNG) AdversaryInstance
}

// AdversaryInstance is the online, adaptive part of Definition II.5: it is
// shown the state of the system and may crash processes (within the budget
// F, enforced by Control) and rewrite local-step and delivery times.
type AdversaryInstance interface {
	// Init runs once, before global step 1. This is where UGF draws its
	// strategy, samples the controlled set C, and applies initial crashes
	// or delays (Algorithm 1 up to the online loop).
	Init(view View, ctl Control)

	// Observe runs at the start of every active global step — every step
	// at which a delivery or a local step can occur — before the step's
	// deliveries. events lists every send since the previous Observe call,
	// which is exactly the online knowledge Strategy 2.k.0 needs: a send
	// recorded at step t has DeliverAt ≥ t+1, so the receiver can still be
	// crashed here, before its delivery.
	//
	// Steps at which provably nothing can happen (no delivery due, no
	// schedulable local step) are skipped by the engine; an adaptive
	// adversary gains no information from them, since the observable state
	// is unchanged.
	Observe(now Step, events []SendRecord, view View, ctl Control)

	// Label identifies the strategy the instance committed to during this
	// run (for example "1", "2.1.0", "2.3.2"), or "" when the notion does
	// not apply. Experiments group outcomes by label to reproduce the
	// per-strategy ("max UGF") series of Figure 3.
	Label() string
}

// System is the engine surface View and Control operate on. It exists so
// that adversaries — whose Init/Observe signatures take the concrete View
// and Control types — can drive more than one engine implementation: the
// production engine here and the naive differential-testing reference in
// sim/oracle both implement it. Implementations own the semantics of each
// operation (budget enforcement, re-anchoring, intervention counting);
// View and Control are thin, stable wrappers.
type System interface {
	// NumProcs returns N, CrashBudget returns F.
	NumProcs() int
	CrashBudget() int
	// Now returns the current global step (0 during adversary Init).
	Now() Step
	// Crashed reports whether p has been crashed; Asleep whether p is
	// currently asleep (false for crashed processes).
	Crashed(p ProcID) bool
	Asleep(p ProcID) bool
	// SentCount returns M_ρ of the execution prefix.
	SentCount(p ProcID) int64
	// Delta and Delay return p's current δ_ρ and d_ρ.
	Delta(p ProcID) Step
	Delay(p ProcID) Step
	// CrashCount returns the number of processes currently crashed;
	// CrashesEver the cumulative crash events, which is what the budget F
	// is enforced against (a crash–recover–crash cycle costs two).
	CrashCount() int
	CrashesEver() int
	// Crash fails p now (Definition II.5), reporting whether it happened;
	// it must refuse out-of-range, already-crashed, and budget-exhausted
	// requests. Recover brings a crashed p back (amnesia resets volatile
	// protocol state, see Forgetter), refusing out-of-range and
	// not-crashed requests. SetDelta/SetDelay rewrite δ_p/d_p (≥ 1,
	// panicking otherwise); SetOmitFrom toggles omission of p's sends.
	Crash(p ProcID) bool
	Recover(p ProcID, amnesia bool) bool
	SetDelta(p ProcID, v Step)
	SetDelay(p ProcID, v Step)
	SetOmitFrom(p ProcID, omit bool)
	// SetClass assigns p to partition class c (≥ 0; every process starts
	// in class 0): the network blocks messages between distinct classes.
	// DropLink and HealLink down/restore the directed link from → to;
	// messages on a downed link are dropped at send (Stats.DroppedLink).
	SetClass(p ProcID, c int)
	DropLink(from, to ProcID)
	HealLink(from, to ProcID)
	// EdgeLive reports whether the undirected communication-graph edge
	// (a, b) is live (always true without a topology or edge edits).
	// AddEdge/RemoveEdge rewire the graph, reporting whether it changed;
	// changes count in Stats.TopologyRewrites. All three panic on
	// out-of-range processes.
	EdgeLive(a, b ProcID) bool
	AddEdge(a, b ProcID) bool
	RemoveEdge(a, b ProcID) bool
}

// View is the adversary's read-only window onto the system state P_t.
// The zero value is unusable; views are handed out by the run's engine.
type View struct {
	sys System
}

// NewView wraps an engine implementation in the adversary-facing read
// view. Engines call it when invoking AdversaryInstance.Init/Observe.
func NewView(sys System) View { return View{sys: sys} }

// N returns the total number of processes.
func (v View) N() int { return v.sys.NumProcs() }

// F returns the crash budget.
func (v View) F() int { return v.sys.CrashBudget() }

// Now returns the current global step (0 during Init).
func (v View) Now() Step { return v.sys.Now() }

// Crashed reports whether p has been crashed.
func (v View) Crashed(p ProcID) bool { return v.sys.Crashed(p) }

// Asleep reports whether p is currently asleep (false for crashed
// processes, which are not asleep but gone).
func (v View) Asleep(p ProcID) bool { return v.sys.Asleep(p) }

// SentCount returns the number of messages p has sent so far — M_ρ of the
// execution prefix, which Strategy 2.k.0's t_{F/2} threshold is defined on.
func (v View) SentCount(p ProcID) int64 { return v.sys.SentCount(p) }

// Delta returns p's current local step time δ_ρ.
func (v View) Delta(p ProcID) Step { return v.sys.Delta(p) }

// Delay returns p's current delivery time d_ρ.
func (v View) Delay(p ProcID) Step { return v.sys.Delay(p) }

// CorrectCount returns the number of processes that have not crashed.
func (v View) CorrectCount() int { return v.sys.NumProcs() - v.sys.CrashCount() }

// EdgeLive reports whether the undirected communication-graph edge
// (a, b) is live: a send either way across a dead edge is blocked at
// send time. Without a Config.Topology (and before any edge edits)
// every pair is connected.
func (v View) EdgeLive(a, b ProcID) bool { return v.sys.EdgeLive(a, b) }

// Control is the adversary's write access to the system: crashes and
// delay rewrites. It enforces the crash budget F.
type Control struct {
	sys System
}

// NewControl wraps an engine implementation in the adversary-facing write
// handle, mirroring NewView.
func NewControl(sys System) Control { return Control{sys: sys} }

// Crash fails process p immediately: it takes no further local steps and
// every undelivered message bound for it is discarded. Crash reports
// whether the crash happened; it returns false when p is out of range,
// already crashed, or the budget F is exhausted.
func (c Control) Crash(p ProcID) bool { return c.sys.Crash(p) }

// Recover brings a crashed process back to life: it resumes local steps
// at Now + δ_p. Messages that were in flight to p when it crashed stay
// lost — the network already discarded them — and messages sent to p
// while it was down were dropped at send; only post-recovery traffic
// reaches it. With amnesia true the process also loses its volatile
// state, resetting to its initial knowledge if its protocol implements
// Forgetter; with amnesia false it resumes with its pre-crash state (the
// stable-storage model). Recover reports whether it happened; it returns
// false when p is out of range or not crashed. Recovery does not refund
// the crash budget: F bounds cumulative crash events.
func (c Control) Recover(p ProcID, amnesia bool) bool { return c.sys.Recover(p, amnesia) }

// SetDelta rewrites δ_p to v (≥ 1) and re-anchors p's local-step schedule
// at the current step: p's next local step is Now + v.
func (c Control) SetDelta(p ProcID, v Step) { c.sys.SetDelta(p, v) }

// SetDelay rewrites d_p to v (≥ 1). Only messages sent after the rewrite
// are affected; in-flight messages keep the delivery time stamped at send.
func (c Control) SetDelay(p ProcID, v Step) { c.sys.SetDelay(p, v) }

// BudgetLeft returns how many more crash events the budget allows.
// Recoveries do not refund it: F bounds cumulative crashes, so a
// crash–recover–crash cycle consumes two.
func (c Control) BudgetLeft() int { return c.sys.CrashBudget() - c.sys.CrashesEver() }

// SetClass assigns p to partition class c (≥ 0). Every process starts in
// class 0; the network drops any message whose sender and receiver are in
// different classes at send time (counted in Stats.DroppedLink). Setting
// every process back to one class heals the partition.
func (c Control) SetClass(p ProcID, class int) { c.sys.SetClass(p, class) }

// DropLink downs the directed link from → to: messages sent on it are
// dropped at send (counted in Stats.DroppedLink) until HealLink restores
// it. In-flight messages are unaffected. Down a pair symmetrically with
// two calls.
func (c Control) DropLink(from, to ProcID) { c.sys.DropLink(from, to) }

// HealLink restores the directed link from → to.
func (c Control) HealLink(from, to ProcID) { c.sys.HealLink(from, to) }

// AddEdge inserts the undirected communication-graph edge (a, b),
// reporting whether the graph changed. Inserting into a complete graph
// with no prior removals is a no-op. Each change counts in
// Stats.TopologyRewrites.
func (c Control) AddEdge(a, b ProcID) bool { return c.sys.AddEdge(a, b) }

// RemoveEdge deletes the undirected edge (a, b), reporting whether the
// graph changed. Only future sends are blocked; in-flight messages keep
// their stamped delivery. Each change counts in Stats.TopologyRewrites.
func (c Control) RemoveEdge(a, b ProcID) bool { return c.sys.RemoveEdge(a, b) }

// RewireEdges replaces the live edge (a, b) with (a, to) — the
// edge-rewiring move of the oblivious dynamic-network adversary. It
// refuses (returning false, touching nothing) unless (a, b) is live,
// (a, to) is absent, and a ≠ to; a successful rewire is a removal plus
// an insertion and counts as two topology rewrites.
func (c Control) RewireEdges(a, b, to ProcID) bool {
	if a == b || a == to || !c.sys.EdgeLive(a, b) || c.sys.EdgeLive(a, to) {
		return false
	}
	c.sys.RemoveEdge(a, b)
	c.sys.AddEdge(a, to)
	return true
}

// SetOmitFrom controls message omission for p: while enabled, every
// message p sends is counted in M(O) and visible in the send records, but
// never delivered — the network silently drops it. This models the
// stronger omission adversary the paper raises as future work
// (Section VII); the delay-only adversaries never use it.
func (c Control) SetOmitFrom(p ProcID, omit bool) { c.sys.SetOmitFrom(p, omit) }
