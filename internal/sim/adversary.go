package sim

import "github.com/ugf-sim/ugf/internal/xrand"

// Adversary constructs per-run adversary instances, mirroring Protocol.
// One Adversary value describes a strategy family; New creates the mutable
// per-run state.
type Adversary interface {
	// Name returns a short stable identifier ("ugf", "strategy-1", …).
	Name() string
	// New creates the adversary state for one run. n and f are the system
	// size and the crash budget; rng is the adversary's private stream.
	New(n, f int, rng *xrand.RNG) AdversaryInstance
}

// AdversaryInstance is the online, adaptive part of Definition II.5: it is
// shown the state of the system and may crash processes (within the budget
// F, enforced by Control) and rewrite local-step and delivery times.
type AdversaryInstance interface {
	// Init runs once, before global step 1. This is where UGF draws its
	// strategy, samples the controlled set C, and applies initial crashes
	// or delays (Algorithm 1 up to the online loop).
	Init(view View, ctl Control)

	// Observe runs at the start of every active global step — every step
	// at which a delivery or a local step can occur — before the step's
	// deliveries. events lists every send since the previous Observe call,
	// which is exactly the online knowledge Strategy 2.k.0 needs: a send
	// recorded at step t has DeliverAt ≥ t+1, so the receiver can still be
	// crashed here, before its delivery.
	//
	// Steps at which provably nothing can happen (no delivery due, no
	// schedulable local step) are skipped by the engine; an adaptive
	// adversary gains no information from them, since the observable state
	// is unchanged.
	Observe(now Step, events []SendRecord, view View, ctl Control)

	// Label identifies the strategy the instance committed to during this
	// run (for example "1", "2.1.0", "2.3.2"), or "" when the notion does
	// not apply. Experiments group outcomes by label to reproduce the
	// per-strategy ("max UGF") series of Figure 3.
	Label() string
}

// View is the adversary's read-only window onto the system state P_t.
// The zero value is unusable; views are handed out by the engine.
type View struct {
	e *engine
}

// N returns the total number of processes.
func (v View) N() int { return v.e.n }

// F returns the crash budget.
func (v View) F() int { return v.e.cfg.F }

// Now returns the current global step (0 during Init).
func (v View) Now() Step { return v.e.now }

// Crashed reports whether p has been crashed.
func (v View) Crashed(p ProcID) bool { return v.e.crashed[p] }

// Asleep reports whether p is currently asleep (false for crashed
// processes, which are not asleep but gone).
func (v View) Asleep(p ProcID) bool { return !v.e.crashed[p] && !v.e.awake[p] }

// SentCount returns the number of messages p has sent so far — M_ρ of the
// execution prefix, which Strategy 2.k.0's t_{F/2} threshold is defined on.
func (v View) SentCount(p ProcID) int64 { return v.e.sent[p] }

// Delta returns p's current local step time δ_ρ.
func (v View) Delta(p ProcID) Step { return v.e.delta[p] }

// Delay returns p's current delivery time d_ρ.
func (v View) Delay(p ProcID) Step { return v.e.delay[p] }

// CorrectCount returns the number of processes that have not crashed.
func (v View) CorrectCount() int { return v.e.n - v.e.crashCount }

// Control is the adversary's write access to the system: crashes and
// delay rewrites. It enforces the crash budget F.
type Control struct {
	e *engine
}

// Crash fails process p immediately: it takes no further local steps and
// every undelivered message bound for it is discarded. Crash reports
// whether the crash happened; it returns false when p is out of range,
// already crashed, or the budget F is exhausted.
func (c Control) Crash(p ProcID) bool {
	e := c.e
	if p < 0 || int(p) >= e.n || e.crashed[p] || e.crashCount >= e.cfg.F {
		return false
	}
	e.crashProcess(p)
	return true
}

// SetDelta rewrites δ_p to v (≥ 1) and re-anchors p's local-step schedule
// at the current step: p's next local step is Now + v.
func (c Control) SetDelta(p ProcID, v Step) {
	e := c.e
	if p < 0 || int(p) >= e.n {
		panic("sim: SetDelta on process out of range")
	}
	if v < 1 {
		panic("sim: SetDelta with non-positive step time")
	}
	e.st.DeltaRewrites++
	e.delta[p] = v
	e.anchor[p] = e.now
	if e.sched.scheduledAt(p) != noSchedule {
		// Schedulable process: its next boundary moved to now + v.
		// Crashed or sleeping processes stay out of the index; a later
		// wake-up arrival reads the rewritten anchor/δ.
		e.sched.scheduleProc(p, e.now+v)
	}
	e.trace(TraceEvent{Kind: TraceAdversary, Step: e.now, Proc: p, Note: "delta"})
}

// SetDelay rewrites d_p to v (≥ 1). Only messages sent after the rewrite
// are affected; in-flight messages keep the delivery time stamped at send.
func (c Control) SetDelay(p ProcID, v Step) {
	e := c.e
	if p < 0 || int(p) >= e.n {
		panic("sim: SetDelay on process out of range")
	}
	if v < 1 {
		panic("sim: SetDelay with non-positive delivery time")
	}
	e.st.DelayRewrites++
	e.delay[p] = v
	e.trace(TraceEvent{Kind: TraceAdversary, Step: e.now, Proc: p, Note: "delay"})
}

// BudgetLeft returns how many more processes may be crashed.
func (c Control) BudgetLeft() int { return c.e.cfg.F - c.e.crashCount }

// SetOmitFrom controls message omission for p: while enabled, every
// message p sends is counted in M(O) and visible in the send records, but
// never delivered — the network silently drops it. This models the
// stronger omission adversary the paper raises as future work
// (Section VII); the delay-only adversaries never use it.
func (c Control) SetOmitFrom(p ProcID, omit bool) {
	e := c.e
	if p < 0 || int(p) >= e.n {
		panic("sim: SetOmitFrom on process out of range")
	}
	e.st.OmitRewrites++
	e.omitted[p] = omit
	e.trace(TraceEvent{Kind: TraceAdversary, Step: e.now, Proc: p, Note: "omit"})
}
