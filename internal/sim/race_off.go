//go:build !race

package sim

// raceEnabled reports whether this binary was built with the race
// detector. The allocation-regression tests consult it: race
// instrumentation allocates on paths that are allocation-free in normal
// builds, so the zero-alloc assertions only hold — and only run — without
// -race.
const raceEnabled = false
