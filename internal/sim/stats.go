package sim

import (
	"math/bits"
	"sort"
	"time"
)

// Stats is the engine's always-on observability block: cheap counters
// maintained inline by the stepping loop and returned with every Outcome.
// Counting is pure observation — it never touches a random stream or a
// scheduling decision — so enabling, reading, or extending Stats cannot
// change simulation outcomes, and every counter is bit-identical between
// serial and parallel stepping (all counting happens in the serial commit
// phases). Only Wall depends on the host machine.
//
// The counters are designed to cost a handful of integer operations per
// engine event and to allocate nothing during the run: payload kinds are
// counted through a small linear-probed slice (protocols use a handful of
// kinds), and the optional interval series is appended to a pre-grown
// slice.
type Stats struct {
	// Events is the number of engine events processed: local steps plus
	// sends (the quantity Config.MaxEvents cuts off on).
	Events int64
	// ActiveSteps is the number of distinct global steps at which anything
	// happened — the engine skips provably inert steps, so this is the
	// true iteration count of the stepping loop, not Quiescence.
	ActiveSteps int64
	// LocalSteps is the number of protocol local steps executed.
	LocalSteps int64
	// Sends is the number of messages sent (== Outcome.Messages).
	Sends int64
	// Deliveries is the number of messages handed to a mailbox. It is ≤
	// Sends: messages to crashed processes and omitted sends never arrive.
	Deliveries int64
	// DroppedCrashed counts messages dropped because the receiver had
	// crashed — at send time or while the message was in flight.
	DroppedCrashed int64
	// OmittedSends counts sends suppressed by an omission adversary
	// (Control.SetOmitFrom); they count in Sends but are never delivered.
	OmittedSends int64
	// DroppedLink counts sends lost in the network: blocked by a downed
	// link or a partition class boundary, or dropped by the fault plan's
	// loss roll. Like omitted sends they count in Sends but never arrive.
	// The fault-model counters are omitempty so fault-free outcomes keep
	// their existing JSON encoding bit for bit (the golden matrices hash
	// it).
	DroppedLink int64 `json:",omitempty"`
	// DupDeliveries counts the extra copies delivered by the fault plan's
	// duplication roll. Each is also counted in Deliveries.
	DupDeliveries int64 `json:",omitempty"`
	// CorruptDrops counts messages corrupted in transit and discarded by
	// the receiver at delivery (detected loss; protocols never observe a
	// corrupted payload).
	CorruptDrops int64 `json:",omitempty"`
	// BlockedSends counts sends blocked at send time because the
	// communication graph (Config.Topology plus adversary rewiring) has
	// no live edge between sender and receiver. They count in Sends but
	// never enter the network. omitempty keeps topology-free outcomes'
	// JSON encoding — and hence the golden matrices — byte-identical.
	BlockedSends int64 `json:",omitempty"`

	// HeapPushes and HeapPops count operations on the scheduler's
	// event-time heap — the engine's scheduling work, independent of
	// protocol cost.
	HeapPushes int64
	HeapPops   int64

	// MaxInFlight is the high-water mark of messages simultaneously in
	// flight (sent, not yet delivered or dropped).
	MaxInFlight int64
	// MaxPending is the high-water mark of messages sitting in mailboxes
	// (delivered, not yet consumed by a local step).
	MaxPending int64

	// Sleeps and Wakes count falling-asleep and waking-up transitions.
	Sleeps int64
	Wakes  int64

	// Adversary interventions by type. Crashes counts crash events, which
	// with recoveries can exceed Outcome.Crashed (the processes still down
	// at the end); without recoveries the two are equal. Recoveries counts
	// Control.Recover events and LinkRewrites the link-state interventions
	// (SetClass, DropLink, HealLink).
	Crashes       int64
	Recoveries    int64 `json:",omitempty"`
	DeltaRewrites int64
	DelayRewrites int64
	OmitRewrites  int64
	LinkRewrites  int64 `json:",omitempty"`
	// TopologyRewrites counts communication-graph edge edits
	// (AddEdge/RemoveEdge changes; a RewireEdges success is two).
	TopologyRewrites int64 `json:",omitempty"`

	// MessagesByKind breaks Sends down by Payload.Kind(), sorted by kind.
	MessagesByKind []KindCount

	// Intervals is the optional per-interval series; empty unless
	// Config.StatsEvery was set.
	Intervals []IntervalStats

	// Wall holds the real-time cost of the run's phases. It is the one
	// non-deterministic part of Stats: exclude it when comparing runs.
	Wall WallStats
}

// StripWall returns a copy of s with the wall times zeroed — the
// deterministic projection of the block, equal bit for bit across reruns
// of the same (Config, Seed) and across serial and parallel stepping.
func (s Stats) StripWall() Stats {
	s.Wall = WallStats{}
	return s
}

// KindCount is one payload-kind counter of Stats.MessagesByKind.
type KindCount struct {
	Kind  string
	Count int64
}

// WallStats breaks a run's wall-clock time down by phase.
type WallStats struct {
	// Init covers engine construction: allocating per-process state and
	// building the protocol's N state machines.
	Init time.Duration
	// Run covers the stepping loop — deliveries, local steps, adversary
	// observation — from the first event to quiescence or cutoff.
	Run time.Duration
	// Finalize covers outcome extraction, dominated by the O(N²)
	// rumor-gathering check.
	Finalize time.Duration

	// ShardCommit is the accumulated wall time each shard lane spent in
	// the parallel step+commit phase, indexed by lane; empty unless the
	// run took the sharded path (Workers > 1). The new fields are
	// omitempty so serial outcomes — and StripWall projections — keep
	// their existing JSON encoding bit for bit (the golden matrices hash
	// it).
	ShardCommit []time.Duration `json:",omitempty"`
	// ShardMerge is the accumulated wall time of the serial merge that
	// follows the parallel phase.
	ShardMerge time.Duration `json:",omitempty"`
	// ShardImbalance is max/mean over ShardCommit — 1.0 is a perfectly
	// balanced partition; large values say the contiguous process-range
	// split is mismatched to where the work is.
	ShardImbalance float64 `json:",omitempty"`
}

// delayHistBuckets is the size of the per-interval delivery-delay
// histogram: bucket i counts sends whose delivery delay d (in global
// steps) has bit length i+1, i.e. 2^i ≤ d < 2^(i+1), with the last bucket
// absorbing everything larger. 48 buckets cover every delay an adversary
// can express before Step overflows.
const delayHistBuckets = 48

// IntervalStats is one point of the optional dissemination/delay series
// (Config.StatsEvery): activity counters for the global-step window
// [Start, End), plus the system state at the window's close. The series
// is the cheap, O(1)-per-event stand-in for Config.Sample's O(N²)
// coverage snapshots — AwakeCorrect decaying to zero traces the
// dissemination's settling, and DelayHist exposes how hard the adversary
// is stretching deliveries.
type IntervalStats struct {
	// Start and End delimit the window: Start ≤ t < End.
	Start, End Step
	// Sends, Deliveries, Sleeps, Wakes, Crashes and Recoveries count the
	// window's events, same meanings as the run-wide counters. Recoveries
	// is omitempty so recovery-free series keep their JSON encoding.
	Sends      int64
	Deliveries int64
	Sleeps     int64
	Wakes      int64
	Crashes    int64
	Recoveries int64 `json:",omitempty"`
	// AwakeCorrect and InFlight are the system state when the window
	// closed.
	AwakeCorrect int
	InFlight     int64
	// DelayHist is the log₂ histogram of the delivery delays of the
	// window's sends (see delayHistBuckets).
	DelayHist [delayHistBuckets]int64
}

// delayBucket maps a delivery delay to its DelayHist bucket.
func delayBucket(d Step) int {
	b := bits.Len64(uint64(d)) - 1
	if b < 0 {
		b = 0
	}
	if b >= delayHistBuckets {
		b = delayHistBuckets - 1
	}
	return b
}

// active reports whether the window counted anything.
func (iv *IntervalStats) active() bool {
	return iv.Sends != 0 || iv.Deliveries != 0 || iv.Sleeps != 0 ||
		iv.Wakes != 0 || iv.Crashes != 0 || iv.Recoveries != 0
}

// Merge folds other into s: counters add, high-water marks take the
// maximum, per-kind counts combine, and wall times accumulate. Interval
// series are not merged — they describe one run's timeline — so s keeps
// its own. Use it to aggregate the Stats of a sweep's outcomes.
func (s *Stats) Merge(other *Stats) {
	s.Events += other.Events
	s.ActiveSteps += other.ActiveSteps
	s.LocalSteps += other.LocalSteps
	s.Sends += other.Sends
	s.Deliveries += other.Deliveries
	s.DroppedCrashed += other.DroppedCrashed
	s.OmittedSends += other.OmittedSends
	s.DroppedLink += other.DroppedLink
	s.DupDeliveries += other.DupDeliveries
	s.CorruptDrops += other.CorruptDrops
	s.BlockedSends += other.BlockedSends
	s.HeapPushes += other.HeapPushes
	s.HeapPops += other.HeapPops
	if other.MaxInFlight > s.MaxInFlight {
		s.MaxInFlight = other.MaxInFlight
	}
	if other.MaxPending > s.MaxPending {
		s.MaxPending = other.MaxPending
	}
	s.Sleeps += other.Sleeps
	s.Wakes += other.Wakes
	s.Crashes += other.Crashes
	s.Recoveries += other.Recoveries
	s.DeltaRewrites += other.DeltaRewrites
	s.DelayRewrites += other.DelayRewrites
	s.OmitRewrites += other.OmitRewrites
	s.LinkRewrites += other.LinkRewrites
	s.TopologyRewrites += other.TopologyRewrites
	for _, kc := range other.MessagesByKind {
		found := false
		for i := range s.MessagesByKind {
			if s.MessagesByKind[i].Kind == kc.Kind {
				s.MessagesByKind[i].Count += kc.Count
				found = true
				break
			}
		}
		if !found {
			s.MessagesByKind = append(s.MessagesByKind, kc)
		}
	}
	sortKinds(s.MessagesByKind)
	s.Wall.Init += other.Wall.Init
	s.Wall.Run += other.Wall.Run
	s.Wall.Finalize += other.Wall.Finalize
	s.Wall.ShardMerge += other.Wall.ShardMerge
	for i, d := range other.Wall.ShardCommit {
		if i < len(s.Wall.ShardCommit) {
			s.Wall.ShardCommit[i] += d
		} else {
			s.Wall.ShardCommit = append(s.Wall.ShardCommit, d)
		}
	}
	if other.Wall.ShardImbalance > s.Wall.ShardImbalance {
		s.Wall.ShardImbalance = other.Wall.ShardImbalance
	}
}

func sortKinds(kinds []KindCount) {
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].Kind < kinds[j].Kind })
}
