package sim

import (
	"sync/atomic"
	"time"
)

// Sharded commit phase.
//
// The serial commit loop (commitOne) is the engine's bottleneck on dense
// steps: stepping already runs in parallel, but every send still funnels
// through one goroutine for payload interning, refcounting, and calendar
// insertion. The sharded path partitions each due set into contiguous
// process ranges — one shard lane per worker — and fuses Step with the
// commit *effects* on the worker goroutines, leaving only a cheap
// deterministic merge on the main goroutine.
//
// Why the effects shard cleanly:
//
//   - Mailbox consumption, anchors, sent/lastSend, pendingCount: strictly
//     p-local, and each process belongs to exactly one shard.
//   - Payload interning and refcounts: each lane owns a private
//     payloadTable; calendar refs pack (table, slot) into an int64, so a
//     delivery releases into whichever table interned it. No shared slots.
//   - Calendar insertion: lanes buffer surviving sends as run-length
//     encoded (deliverAt, count) runs over a flat message slice; the merge
//     bulk-appends them. A process's drafts share one delivery step
//     (t + d_p), so runs are long.
//   - Crash/omission flags, δ, d: read-only during local steps (the
//     adversary writes only in Observe, before deliveries).
//   - inflightTo[to] crosses shards (any process may be a recipient), so
//     it is the one atomic in the phase.
//   - Stats: each lane accumulates counter deltas; the merge folds them in
//     shard order. Every counter is a sum (order-free), and the two
//     high-water marks are monotone within a commit phase — in-flight only
//     grows during commits, so the end-of-phase value *is* the phase
//     maximum, exactly what the serial loop's per-send check records.
//
// The merge then runs the order-sensitive tail — Committer.Commit,
// sleep/wake, rescheduling — serially in ascending process order
// (finishOne, shared with commitOne). Shard boundaries never change any
// observable ordering: lanes are folded in shard order, which is ascending
// process order of the underlying due set, so sendLog order, calendar
// bucket contents, heap push/pop counts, and RNG consumption (none in the
// commit phase) are bit-identical to serial execution for any partition.
// The workers≡serial and shards properties in internal/simtest pin this.
//
// Traced runs take the older parallel-step path instead: traces interleave
// send events per process in commit order, which the fused phase does not
// reproduce. Outcomes are identical either way; only event emission timing
// differs.

// maxShardLanes caps how many lanes a run ever allocates, whatever
// Config.Workers says. Packed refs reserve 31 bits for the table index,
// but hundreds of lanes already exceed any plausible core count.
const maxShardLanes = 256

// calRun is one run of lane messages sharing a delivery step.
type calRun struct {
	at Step
	n  int32
}

// shardLane is one shard's private commit state: a payload table, the
// buffered calendar appends, and the counter deltas the merge folds. Lanes
// persist for the life of the run — calendar refs keep pointing into a
// lane's table long after the step that created them.
type shardLane struct {
	ptab payloadTable

	msgs []imessage // surviving sends, in (process, draft) order
	runs []calRun   // run-length encoding of msgs by delivery step

	sendLog  []SendRecord
	kinds    []KindCount // lane-local kind counts, folded and zeroed by merge
	lastKind int

	localSteps    int64
	events        int64
	sends         int64
	dropped       int64
	omitted       int64
	droppedLink   int64
	blockedSends  int64
	pendingDelta  int64
	inflightDelta int64
	intSends      int64
	delayHist     [delayHistBuckets]int64

	res  []int32 // per-process scratch: staging index → lane slot
	kres []int32 // staging index → lane kind index
	cnt  []int32 // staging index → surviving copies

	wall time.Duration // accumulated parallel-phase wall time

	_ [64]byte // keep adjacent lanes' hot counters off one cache line
}

// kindIndex is the lane-local twin of engine.kindIndex: kinds register in
// the lane's namespace during the parallel phase and fold into the global
// table at merge.
func (ln *shardLane) kindIndex(k string) int32 {
	if ln.lastKind < len(ln.kinds) && ln.kinds[ln.lastKind].Kind == k {
		return int32(ln.lastKind)
	}
	for i := range ln.kinds {
		if ln.kinds[i].Kind == k {
			ln.lastKind = i
			return int32(i)
		}
	}
	ln.kinds = append(ln.kinds, KindCount{Kind: k})
	ln.lastKind = len(ln.kinds) - 1
	return int32(ln.lastKind)
}

// pushMsg buffers one surviving send, extending the current run when the
// delivery step repeats.
func (ln *shardLane) pushMsg(at Step, m imessage) {
	ln.msgs = append(ln.msgs, m)
	if n := len(ln.runs); n > 0 && ln.runs[n-1].at == at {
		ln.runs[n-1].n++
	} else {
		ln.runs = append(ln.runs, calRun{at: at, n: 1})
	}
}

// ensureLanes grows the lane set to shards entries. Lanes are append-only:
// a ref minted by table i must resolve for the rest of the run, so a later
// step with fewer due processes simply uses a prefix of the lanes.
func (e *engine) ensureLanes(shards int) {
	for len(e.lanes) < shards {
		e.lanes = append(e.lanes, shardLane{})
		ln := &e.lanes[len(e.lanes)-1]
		ln.ptab.init(e.n/shards + 1)
	}
}

// stepCommitSharded runs the local steps of due at step t with the fused
// parallel step+commit phase followed by the serial merge. Callers have
// checked workers > 1, a due set worth splitting, and no trace sink.
func (e *engine) stepCommitSharded(t Step, due []ProcID) {
	shards := e.workers
	if m := len(due) / 2; shards > m {
		shards = m
	}
	if shards > maxShardLanes {
		shards = maxShardLanes
	}
	e.ensureLanes(shards)
	chunk := (len(due) + shards - 1) / shards
	for s := 0; s < shards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > len(due) {
			hi = len(due)
		}
		if lo >= hi {
			break
		}
		e.wg.Add(1)
		go func(s int, part []ProcID) {
			defer e.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					e.panicMu.Lock()
					e.panics = append(e.panics, r)
					e.panicMu.Unlock()
				}
			}()
			start := time.Now()
			ln := &e.lanes[s]
			table := int64(s + 1)
			for _, p := range part {
				e.stepOne(t, p)
				e.prepareOne(t, p, ln, table)
			}
			ln.wall += time.Since(start)
		}(s, due[lo:hi])
	}
	e.wg.Wait()
	if len(e.panics) > 0 {
		panic(e.panics[0])
	}
	start := time.Now()
	e.mergeLanes(t, due, shards)
	e.mergeWall += time.Since(start)
}

// prepareOne is the parallel-phase half of commitOne: every effect of p's
// local step that is p-local or lane-local. It mirrors commitOne's
// structure line for line; the review invariant is that each serial
// statement is either here (against lane state) or in mergeLanes/finishOne
// (against shared state), never both.
func (e *engine) prepareOne(t Step, p ProcID, ln *shardLane, table int64) {
	e.pt.anchor[p] = t
	ln.pendingDelta += e.pt.pendingCount[p]
	e.pt.pendingCount[p] = 0
	e.pt.clearMail(p)
	ln.events++
	ln.localSteps++

	ob := &e.outboxes[p]
	res, kres, cnt := ln.res[:0], ln.kres[:0], ln.cnt[:0]
	for _, pl := range ob.staged {
		slot, fresh := ln.ptab.intern(pl)
		if fresh {
			kind := "?"
			if pl != nil {
				kind = pl.Kind()
			}
			ln.ptab.memoKind = ln.kindIndex(kind)
		}
		res = append(res, slot)
		kres = append(kres, ln.ptab.memoKind)
		cnt = append(cnt, 0)
	}
	ln.res, ln.kres, ln.cnt = res, kres, cnt
	omitted := e.pt.omitted(p)
	delay := e.pt.delay[p]
	deliverAt := t + delay
	statsOn := e.statsEvery > 0
	for _, d := range ob.drafts {
		to := ProcID(d.to)
		ln.sends++
		e.pt.sent[p]++
		e.pt.lastSend[p] = t
		ln.events++
		ln.kinds[kres[d.pi]].Count++
		if statsOn {
			ln.intSends++
			ln.delayHist[delayBucket(delay)]++
		}
		if e.adv != nil {
			ln.sendLog = append(ln.sendLog, SendRecord{From: p, To: to, SentAt: t, DeliverAt: deliverAt})
		}
		if e.graph != nil && !e.graph.Live(p, to) {
			// Same check, same position as commitOne: the graph is
			// read-only during commits (edges change only in Observe), so
			// lanes consult it without synchronization.
			ln.blockedSends++
			continue
		}
		if e.pt.crashed(to) || omitted {
			if e.pt.crashed(to) {
				ln.dropped++
			} else {
				ln.omitted++
			}
			continue
		}
		if e.linkActive && e.linkBlocked(p, to) {
			ln.droppedLink++
			continue
		}
		fault := FaultNone
		if e.faults != nil {
			// Roll is a pure hash of the same inputs the serial loop
			// feeds it — sent[p] is p-local, so the lane's post-increment
			// value matches serial execution exactly.
			fault = e.faults.Roll(p, to, t, e.pt.sent[p])
			if fault == FaultDrop {
				ln.droppedLink++
				continue
			}
		}
		ref := table<<32 | int64(res[d.pi])
		if fault == FaultCorrupt {
			ref |= refCorruptBit
		}
		ln.pushMsg(deliverAt, imessage{from: int32(p), to: d.to, ref: ref, sentAt: t})
		cnt[d.pi]++
		// The one cross-shard write: any process can be the recipient.
		atomic.AddInt64(&e.pt.inflightTo[to], 1)
		ln.inflightDelta++
		if fault == FaultDuplicate {
			ln.pushMsg(deliverAt, imessage{from: int32(p), to: d.to,
				ref: table<<32 | int64(res[d.pi]) | refDupBit, sentAt: t})
			cnt[d.pi]++
			atomic.AddInt64(&e.pt.inflightTo[to], 1)
			ln.inflightDelta++
		}
	}
	for i, slot := range res {
		if cnt[i] > 0 {
			ln.ptab.addRefs(slot, cnt[i])
		} else {
			ln.ptab.sweep(slot)
		}
	}
	ob.clear()
}

// mergeLanes folds the lanes into shared engine state in shard order —
// ascending process order — then runs the order-sensitive per-process tail
// serially. This is the only code that touches shared state between the
// parallel phase and the next event, so its fold order fully determines
// (and preserves) the serial engine's observable behavior.
func (e *engine) mergeLanes(t Step, due []ProcID, shards int) {
	statsOn := e.statsEvery > 0
	for s := 0; s < shards; s++ {
		ln := &e.lanes[s]
		e.st.LocalSteps += ln.localSteps
		e.eventCount += ln.events
		e.msgTotal += ln.sends
		e.st.DroppedCrashed += ln.dropped
		e.st.OmittedSends += ln.omitted
		e.st.DroppedLink += ln.droppedLink
		e.st.BlockedSends += ln.blockedSends
		e.totalPending -= ln.pendingDelta
		e.inflight += ln.inflightDelta
		e.inflightToCorrect += ln.inflightDelta
		if statsOn {
			e.interval.Sends += ln.intSends
			for i, v := range ln.delayHist {
				if v != 0 {
					e.interval.DelayHist[i] += v
					ln.delayHist[i] = 0
				}
			}
		}
		for i := range ln.kinds {
			if c := ln.kinds[i].Count; c != 0 {
				e.kinds[e.kindIndex(ln.kinds[i].Kind)].Count += c
				ln.kinds[i].Count = 0
			}
		}
		if len(ln.sendLog) > 0 {
			e.sendLog = append(e.sendLog, ln.sendLog...)
			ln.sendLog = ln.sendLog[:0]
		}
		base := 0
		for _, run := range ln.runs {
			if e.cal.addRun(run.at, ln.msgs[base:base+int(run.n)]) {
				e.sched.scheduleDelivery(run.at)
			}
			base += int(run.n)
		}
		ln.msgs = ln.msgs[:0]
		ln.runs = ln.runs[:0]
		ln.localSteps, ln.events, ln.sends = 0, 0, 0
		ln.dropped, ln.omitted, ln.droppedLink, ln.blockedSends = 0, 0, 0, 0
		ln.pendingDelta, ln.inflightDelta, ln.intSends = 0, 0, 0
	}
	// In-flight only grows during a commit phase, so the folded end value
	// is the phase maximum — identical to the serial per-send check.
	if e.inflight > e.st.MaxInFlight {
		e.st.MaxInFlight = e.inflight
	}
	for _, p := range due {
		e.finishOne(t, p)
	}
}

// shardWall summarizes the run's sharded-phase timing for WallStats:
// per-lane commit wall, merge wall, and the max/mean imbalance ratio.
func (e *engine) shardWall() (commit []time.Duration, merge time.Duration, imbalance float64) {
	if len(e.lanes) == 0 {
		return nil, 0, 0
	}
	commit = make([]time.Duration, len(e.lanes))
	var sum, max time.Duration
	for i := range e.lanes {
		w := e.lanes[i].wall
		commit[i] = w
		sum += w
		if w > max {
			max = w
		}
	}
	if sum > 0 {
		mean := float64(sum) / float64(len(commit))
		imbalance = float64(max) / mean
	}
	return commit, e.mergeWall, imbalance
}
