package sim_test

// Big-N engine benchmarks: the scale tier above BenchmarkEngineLargeN.
// These run the reusable engine-scale workloads of internal/simtest —
// O(1) state per process, bounded event budgets — so the numbers are
// pure engine cost: scheduling, payload interning, delivery, mailbox
// churn. scripts/bench.sh runs them at -benchtime 1x (a single run per
// benchmark is already 10⁵–10⁷ events) and records them in the BENCH_*
// baselines; the README Scale section quotes them.
//
// ring/100k is the sparse extreme: one active process among 100k
// sleepers, 100k sequential hops. pushpull/1M is the dense extreme: a
// million processes exchanging pull requests and answers, ~10M events,
// with sleeping processes woken by late pulls. Peak memory is the
// headline: the per-run B/op of pushpull/1M is the number the < 8 GB
// RSS acceptance bar of PR 5 is checked against.

import (
	"fmt"
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/simtest"
)

func benchBigN(b *testing.B, n, workers int, proto sim.Protocol) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o, err := sim.Run(sim.Config{N: n, Protocol: proto, Seed: uint64(i + 1), Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if o.HorizonHit {
			b.Fatal("big-N run hit horizon")
		}
		b.ReportMetric(float64(o.Stats.Events), "events/op")
	}
}

// BenchmarkEngineBigN is the scale capability delivered by PR 5:
// ring/100k and pushpull/1M single-run costs. The shards=4 variant runs
// the same million-process workload through the sharded commit phase —
// identical outcome, dense due sets split across four lanes — so the
// BENCH_* baselines record what sharding costs (single-core) or buys
// (multi-core) at the dense extreme.
func BenchmarkEngineBigN(b *testing.B) {
	b.Run(fmt.Sprintf("ring/N=%d", 100_000), func(b *testing.B) {
		benchBigN(b, 100_000, 0, simtest.Ring{Laps: 1})
	})
	b.Run(fmt.Sprintf("pushpull/N=%d", 1_000_000), func(b *testing.B) {
		benchBigN(b, 1_000_000, 0, simtest.PullServe{Pulls: 4})
	})
	b.Run(fmt.Sprintf("pushpull/N=%d/shards=4", 1_000_000), func(b *testing.B) {
		benchBigN(b, 1_000_000, 4, simtest.PullServe{Pulls: 4})
	})
}
