package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/sim/trace"
)

type fuzzPayload string

func (p fuzzPayload) Kind() string { return string(p) }

// jsonRoundTrip is what a string should look like after the standard
// library encodes and decodes it — the reference the hand-rolled encoder
// must agree with (invalid UTF-8 is replaced, not preserved, exactly as
// encoding/json replaces it).
func jsonRoundTrip(t *testing.T, s string) string {
	enc, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("json.Marshal(%q): %v", s, err)
	}
	var out string
	if err := json.Unmarshal(enc, &out); err != nil {
		t.Fatalf("json.Unmarshal(%s): %v", enc, err)
	}
	return out
}

// FuzzTraceRoundTrip throws arbitrary field values at the hand-rolled
// JSONL encoder and asserts the stream stays parseable and lossless:
// every line Read returns must reproduce the event's fields, with the two
// documented normalizations — a negative peer is omitted on the wire (and
// decodes as 0), and payload/note strings survive exactly as
// encoding/json would round-trip them. The fast-path/fallback split in
// appendJSONString (ASCII direct copy vs json.Marshal) is exactly the
// kind of seam a fuzzer is for.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(uint8(0), int64(1), 5, 7, "push", "")
	f.Add(uint8(1), int64(2), 7, 5, "pull-req", "")
	f.Add(uint8(7), int64(999), -1, -1, "", "quiescence")
	f.Add(uint8(6), int64(3), 0, -1, "", "delta")
	f.Add(uint8(0), int64(0), 0, 0, `quo"te\and`+"\x7f", "ünïcødé")
	f.Add(uint8(200), int64(-5), -99, 12, "\xff\xfe", "\x00control\x1f")
	f.Fuzz(func(t *testing.T, kindRaw uint8, step int64, proc, other int, payload, note string) {
		ev := sim.TraceEvent{
			Kind:  sim.TraceKind(kindRaw % uint8(sim.NumTraceKinds)),
			Step:  sim.Step(step),
			Proc:  sim.ProcID(proc),
			Other: sim.ProcID(other),
			Note:  note,
		}
		if payload != "" {
			ev.Payload = fuzzPayload(payload)
		}

		var buf bytes.Buffer
		j := trace.NewJSONL(&buf)
		j.Event(ev)
		j.Event(ev) // twice: the per-line scratch buffer must not leak state
		if err := j.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if j.Events() != 2 {
			t.Fatalf("Events() = %d, want 2", j.Events())
		}

		recs, err := trace.Read(&buf)
		if err != nil {
			t.Fatalf("encoder produced an unparseable stream: %v\nstream: %q", err, buf.String())
		}
		if len(recs) != 2 {
			t.Fatalf("wrote 2 events, read %d records", len(recs))
		}
		for _, rec := range recs {
			if rec.Kind != ev.Kind.String() {
				t.Errorf("kind: got %q want %q", rec.Kind, ev.Kind.String())
			}
			if rec.Step != int64(ev.Step) {
				t.Errorf("step: got %d want %d", rec.Step, ev.Step)
			}
			if rec.Proc != int(ev.Proc) {
				t.Errorf("proc: got %d want %d", rec.Proc, ev.Proc)
			}
			wantOther := int(ev.Other)
			if wantOther < 0 {
				wantOther = 0 // omitted on the wire, zero after decode
			}
			if rec.Other != wantOther {
				t.Errorf("other: got %d want %d", rec.Other, wantOther)
			}
			if payload != "" {
				if want := jsonRoundTrip(t, payload); rec.Payload != want {
					t.Errorf("payload: got %q want %q", rec.Payload, want)
				}
			} else if rec.Payload != "" {
				t.Errorf("payload: got %q want empty", rec.Payload)
			}
			if note != "" {
				if want := jsonRoundTrip(t, note); rec.Note != want {
					t.Errorf("note: got %q want %q", rec.Note, want)
				}
			} else if rec.Note != "" {
				t.Errorf("note: got %q want empty", rec.Note)
			}
		}
	})
}
