// Package trace provides streaming, filtering and fan-out TraceSinks for
// the simulation engine.
//
// The engine's in-memory Recorder keeps every event alive until the run
// ends, which caps it at small runs: a 10k-process dissemination emits
// tens of millions of events. The JSONL sink here streams events through
// a fixed-size buffer to any io.Writer instead, so a full trace costs RAM
// proportional to the buffer, not the run — traces that cannot fit in
// memory fit on disk. Filter drops uninteresting events before they are
// encoded, and Multi fans one engine feed out to several consumers.
//
// All sinks are synchronous, like every TraceSink: the engine calls Event
// from its stepping loop. The JSONL sink therefore never blocks on
// anything but the underlying writer.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/ugf-sim/ugf/internal/sim"
)

// JSONL streams trace events as JSON Lines: one self-contained object per
// event, in engine order. Writes go through a bufio.Writer, so the
// per-event cost is an in-memory append; call Flush (or Close) to push
// buffered lines out. Write errors are sticky: the first one is kept,
// subsequent events are dropped, and Err/Flush/Close report it — the sink
// never panics into the engine's stepping loop.
type JSONL struct {
	bw     *bufio.Writer
	owned  io.Closer // closed by Close when the sink owns the writer (Create)
	err    error
	buf    []byte // per-line scratch, reused across events
	events int64
}

// NewJSONL returns a JSONL sink writing to w. The caller keeps ownership
// of w; Close flushes but does not close it.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{bw: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 128)}
}

// Create opens (truncating) the file at path and returns a JSONL sink
// that owns it: Close flushes the buffer and closes the file.
func Create(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	j := NewJSONL(f)
	j.owned = f
	return j, nil
}

// Event implements sim.TraceSink.
func (j *JSONL) Event(ev sim.TraceEvent) {
	if j.err != nil {
		return
	}
	b := j.buf[:0]
	b = append(b, `{"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","step":`...)
	b = strconv.AppendInt(b, int64(ev.Step), 10)
	b = append(b, `,"proc":`...)
	b = strconv.AppendInt(b, int64(ev.Proc), 10)
	if ev.Other >= 0 {
		b = append(b, `,"other":`...)
		b = strconv.AppendInt(b, int64(ev.Other), 10)
	}
	if ev.Payload != nil {
		b = append(b, `,"payload":`...)
		b = appendJSONString(b, ev.Payload.Kind())
	}
	if ev.Note != "" {
		b = append(b, `,"note":`...)
		b = appendJSONString(b, ev.Note)
	}
	b = append(b, '}', '\n')
	j.buf = b
	if _, err := j.bw.Write(b); err != nil {
		j.err = err
		return
	}
	j.events++
}

// Events returns the number of events written so far.
func (j *JSONL) Events() int64 { return j.events }

// Err returns the first write error, if any.
func (j *JSONL) Err() error { return j.err }

// Flush pushes buffered lines to the underlying writer.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	j.err = j.bw.Flush()
	return j.err
}

// Close flushes the buffer and, when the sink owns its writer (Create),
// closes it. It returns the first error encountered over the sink's life.
func (j *JSONL) Close() error {
	err := j.Flush()
	if j.owned != nil {
		cerr := j.owned.Close()
		j.owned = nil
		if err == nil {
			err = cerr
		}
	}
	return err
}

// appendJSONString appends s as a JSON string literal. Payload kinds and
// engine notes are short ASCII identifiers, so the fast path is a direct
// copy; anything unusual falls back to encoding/json.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			enc, err := json.Marshal(s)
			if err != nil {
				return append(b, `"?"`...)
			}
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// Record is the decoded form of one JSONL trace line.
type Record struct {
	Kind    string `json:"kind"`
	Step    int64  `json:"step"`
	Proc    int    `json:"proc"`
	Other   int    `json:"other,omitempty"`
	Payload string `json:"payload,omitempty"`
	Note    string `json:"note,omitempty"`
}

// Read decodes a JSONL trace stream back into records, for tools and
// tests. It streams, so traces larger than memory still decode — just not
// into a slice you can hold; for those, wrap r in your own bufio.Scanner.
func Read(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var recs []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return recs, nil
		} else if err != nil {
			return recs, fmt.Errorf("trace: line %d: %w", len(recs)+1, err)
		}
		recs = append(recs, rec)
	}
}

// Filter selects a subset of trace events: a kind mask, a process set,
// and a step window. The zero value selects everything.
type Filter struct {
	// Kinds is the accepted kind set; 0 means all kinds.
	Kinds sim.KindMask
	// Procs restricts events to those whose Proc or Other is listed;
	// empty means all processes. Run-level events (Proc < 0, e.g. the end
	// marker) always pass.
	Procs []sim.ProcID
	// MinStep and MaxStep bound the step window, inclusive; MaxStep 0
	// means unbounded.
	MinStep, MaxStep sim.Step
}

// Match reports whether the filter accepts ev.
func (f Filter) Match(ev sim.TraceEvent) bool {
	if f.Kinds != 0 && !f.Kinds.Has(ev.Kind) {
		return false
	}
	if ev.Step < f.MinStep || (f.MaxStep > 0 && ev.Step > f.MaxStep) {
		return false
	}
	if len(f.Procs) > 0 && ev.Proc >= 0 {
		for _, p := range f.Procs {
			if ev.Proc == p || ev.Other == p {
				return true
			}
		}
		return false
	}
	return true
}

// Sink wraps next so it only receives events the filter accepts. Large
// process sets are compiled to a bitmap so the per-event cost stays O(1).
func (f Filter) Sink(next sim.TraceSink) sim.TraceSink {
	fs := &filterSink{f: f, next: next}
	if len(f.Procs) > bitmapThreshold {
		fs.procs = make(map[sim.ProcID]bool, len(f.Procs))
		for _, p := range f.Procs {
			fs.procs[p] = true
		}
	}
	return fs
}

// bitmapThreshold is the process-set size above which Filter.Sink swaps
// the linear scan for a set lookup.
const bitmapThreshold = 8

type filterSink struct {
	f     Filter
	procs map[sim.ProcID]bool
	next  sim.TraceSink
}

func (fs *filterSink) Event(ev sim.TraceEvent) {
	if fs.procs != nil {
		f := fs.f
		if f.Kinds != 0 && !f.Kinds.Has(ev.Kind) {
			return
		}
		if ev.Step < f.MinStep || (f.MaxStep > 0 && ev.Step > f.MaxStep) {
			return
		}
		if ev.Proc >= 0 && !fs.procs[ev.Proc] && !fs.procs[ev.Other] {
			return
		}
	} else if !fs.f.Match(ev) {
		return
	}
	fs.next.Event(ev)
}

// Close closes the wrapped sink, if it is closable.
func (fs *filterSink) Close() error { return CloseSink(fs.next) }

// Multi fans every event out to all sinks, in order. Closing the returned
// sink closes each closable member, keeping the first error.
func Multi(sinks ...sim.TraceSink) sim.TraceSink {
	return multiSink(sinks)
}

type multiSink []sim.TraceSink

func (m multiSink) Event(ev sim.TraceEvent) {
	for _, s := range m {
		s.Event(ev)
	}
}

func (m multiSink) Close() error {
	var first error
	for _, s := range m {
		if err := CloseSink(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CloseSink closes s if it is closable (JSONL, filtered or multi sinks,
// file-backed custom sinks) and is a no-op otherwise. Run drivers call it
// once a run's sink is out of use.
func CloseSink(s sim.TraceSink) error {
	if c, ok := s.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
