package trace_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/sim/trace"
)

func runTraced(t *testing.T, sink sim.TraceSink) sim.Outcome {
	t.Helper()
	o, err := sim.Run(sim.Config{
		N: 12, F: 3, Protocol: gossip.PushPull{}, Seed: 5, Trace: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestJSONLRoundTrip(t *testing.T) {
	rec := &sim.Recorder{}
	var buf bytes.Buffer
	jl := trace.NewJSONL(&buf)
	runTraced(t, trace.Multi(rec, jl))
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(rec.Events) {
		t.Fatalf("decoded %d records, recorder saw %d events", len(recs), len(rec.Events))
	}
	if jl.Events() != int64(len(recs)) {
		t.Errorf("sink counted %d events, decoded %d", jl.Events(), len(recs))
	}
	for i, ev := range rec.Events {
		got := recs[i]
		if got.Kind != ev.Kind.String() || got.Step != int64(ev.Step) || got.Proc != int(ev.Proc) {
			t.Fatalf("record %d = %+v, want event %+v", i, got, ev)
		}
		if ev.Payload != nil && got.Payload != ev.Payload.Kind() {
			t.Fatalf("record %d payload = %q, want %q", i, got.Payload, ev.Payload.Kind())
		}
		if ev.Other >= 0 && got.Other != int(ev.Other) {
			t.Fatalf("record %d other = %d, want %d", i, got.Other, ev.Other)
		}
	}
	last := recs[len(recs)-1]
	if last.Kind != "end" || last.Note == "" {
		t.Errorf("last record = %+v, want the end marker with a note", last)
	}
}

func TestJSONLDoesNotChangeOutcomes(t *testing.T) {
	plain := runTraced(t, nil)
	var buf bytes.Buffer
	jl := trace.NewJSONL(&buf)
	traced := runTraced(t, jl)
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.StripWall(), traced.StripWall()) {
		t.Fatalf("JSONL sink changed the outcome:\n%+v\n%+v", plain, traced)
	}
}

func TestCreateWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	jl, err := trace.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runTraced(t, jl)
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != jl.Events() || len(recs) == 0 {
		t.Fatalf("file holds %d records, sink wrote %d", len(recs), jl.Events())
	}
}

func TestJSONLStickyError(t *testing.T) {
	jl := trace.NewJSONL(failWriter{})
	ev := sim.TraceEvent{Kind: sim.TraceSend, Proc: 0, Other: 1}
	for i := 0; i < 100_000; i++ { // enough to overflow the 64k buffer
		jl.Event(ev)
	}
	if jl.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if err := jl.Close(); err == nil {
		t.Fatal("Close must report the sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, os.ErrClosed }

func TestFilterMatch(t *testing.T) {
	ev := func(k sim.TraceKind, step sim.Step, proc, other sim.ProcID) sim.TraceEvent {
		return sim.TraceEvent{Kind: k, Step: step, Proc: proc, Other: other}
	}
	cases := []struct {
		name string
		f    trace.Filter
		ev   sim.TraceEvent
		want bool
	}{
		{"zero accepts all", trace.Filter{}, ev(sim.TraceSend, 3, 1, 2), true},
		{"kind hit", trace.Filter{Kinds: sim.MaskOf(sim.TraceSend)}, ev(sim.TraceSend, 3, 1, 2), true},
		{"kind miss", trace.Filter{Kinds: sim.MaskOf(sim.TraceCrash)}, ev(sim.TraceSend, 3, 1, 2), false},
		{"proc hit on Proc", trace.Filter{Procs: []sim.ProcID{1}}, ev(sim.TraceSend, 3, 1, 2), true},
		{"proc hit on Other", trace.Filter{Procs: []sim.ProcID{2}}, ev(sim.TraceSend, 3, 1, 2), true},
		{"proc miss", trace.Filter{Procs: []sim.ProcID{7}}, ev(sim.TraceSend, 3, 1, 2), false},
		{"run-level bypasses proc set", trace.Filter{Procs: []sim.ProcID{7}}, ev(sim.TraceEnd, 9, -1, -1), true},
		{"below MinStep", trace.Filter{MinStep: 5}, ev(sim.TraceSend, 3, 1, 2), false},
		{"above MaxStep", trace.Filter{MaxStep: 2}, ev(sim.TraceSend, 3, 1, 2), false},
		{"inside window", trace.Filter{MinStep: 2, MaxStep: 4}, ev(sim.TraceSend, 3, 1, 2), true},
	}
	for _, c := range cases {
		if got := c.f.Match(c.ev); got != c.want {
			t.Errorf("%s: Match = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestFilterSinkAgreesWithMatch: the compiled (map-backed) fast path for
// large process sets must accept exactly the events Match accepts.
func TestFilterSinkAgreesWithMatch(t *testing.T) {
	bigSet := make([]sim.ProcID, 10) // above the map threshold
	for i := range bigSet {
		bigSet[i] = sim.ProcID(i * 3)
	}
	f := trace.Filter{
		Kinds:   sim.MaskOf(sim.TraceSend, sim.TraceArrive),
		Procs:   bigSet,
		MinStep: 1, MaxStep: 40,
	}
	var viaSink []sim.TraceEvent
	sink := f.Sink(sim.FuncSink(func(ev sim.TraceEvent) { viaSink = append(viaSink, ev) }))
	rec := &sim.Recorder{}
	runTraced(t, trace.Multi(rec, sink))
	var viaMatch []sim.TraceEvent
	for _, ev := range rec.Events {
		if f.Match(ev) {
			viaMatch = append(viaMatch, ev)
		}
	}
	if len(viaSink) == 0 {
		t.Fatal("filter let nothing through; broaden the test filter")
	}
	if !reflect.DeepEqual(viaSink, viaMatch) {
		t.Fatalf("fast path kept %d events, Match kept %d", len(viaSink), len(viaMatch))
	}
}

func TestFilteredJSONLKeepsOnlyRequestedKinds(t *testing.T) {
	var buf bytes.Buffer
	jl := trace.NewJSONL(&buf)
	sink := trace.Filter{Kinds: sim.MaskOf(sim.TraceSend)}.Sink(jl)
	o := runTraced(t, sink)
	if err := trace.CloseSink(sink); err != nil { // closes through to the JSONL sink
		t.Fatal(err)
	}
	recs, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != o.Messages {
		t.Fatalf("kept %d records, want one per send (%d)", len(recs), o.Messages)
	}
	for _, r := range recs {
		if r.Kind != "send" {
			t.Fatalf("unexpected kind %q in filtered trace", r.Kind)
		}
	}
}

func TestMultiFansOutInOrder(t *testing.T) {
	var a, b []sim.TraceKind
	m := trace.Multi(
		sim.FuncSink(func(ev sim.TraceEvent) { a = append(a, ev.Kind) }),
		sim.FuncSink(func(ev sim.TraceEvent) { b = append(b, ev.Kind) }),
	)
	runTraced(t, m)
	if len(a) == 0 || !reflect.DeepEqual(a, b) {
		t.Fatalf("sinks diverged: %d vs %d events", len(a), len(b))
	}
}

func TestMultiCloseClosesMembers(t *testing.T) {
	dir := t.TempDir()
	j1, err := trace.Create(filepath.Join(dir, "a.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := trace.Create(filepath.Join(dir, "b.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	m := trace.Multi(j1, j2)
	m.Event(sim.TraceEvent{Kind: sim.TraceEnd, Proc: -1, Other: -1, Note: "quiescence"})
	if err := trace.CloseSink(m); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"a.jsonl", "b.jsonl"} {
		data, err := os.ReadFile(filepath.Join(dir, p))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), `"kind":"end"`) {
			t.Errorf("%s not flushed on close: %q", p, data)
		}
	}
}

func TestCloseSinkNoopForPlainSinks(t *testing.T) {
	if err := trace.CloseSink(&sim.Recorder{}); err != nil {
		t.Fatalf("CloseSink on a non-closer: %v", err)
	}
	if err := trace.CloseSink(nil); err != nil {
		t.Fatalf("CloseSink(nil): %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	recs, err := trace.Read(strings.NewReader("{\"kind\":\"send\",\"step\":1,\"proc\":0}\nnot json\n"))
	if err == nil {
		t.Fatal("garbage line not reported")
	}
	if len(recs) != 1 {
		t.Fatalf("kept %d records before the bad line, want 1", len(recs))
	}
}

func TestJSONLEscapesUnusualStrings(t *testing.T) {
	var buf bytes.Buffer
	jl := trace.NewJSONL(&buf)
	jl.Event(sim.TraceEvent{Kind: sim.TraceEnd, Proc: -1, Other: -1, Note: "weird \"note\"\nwith η"})
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Note != "weird \"note\"\nwith η" {
		t.Fatalf("escape round-trip failed: %+v", recs)
	}
}
