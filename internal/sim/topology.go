package sim

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/ugf-sim/ugf/internal/xrand"
)

// Communication-graph topologies.
//
// A Topology restricts which process pairs may exchange messages: a send
// whose (from, to) edge is not live at send time is counted in M(O) and
// Stats.BlockedSends but never enters the calendar — exactly the
// semantics of the partition/link checks, one layer earlier. The default
// (nil Topology, or kind "complete") is the all-to-all graph of the
// paper and is bit-identical to every pre-topology run.
//
// Graph construction is a pure function of (Topology, N): the seeded
// kinds derive their randomness from Topology.Seed through the
// seedDomainTopo chain, never from Config.Seed, so re-seeding a run
// keeps the graph fixed while re-rolling everything else. Construction
// is total in N — degenerate parameters (K ≥ N, duplicate or self
// edges) skip the offending edges instead of failing, so every
// (Topology, N) pair that validates also builds.

// seedDomainTopo tags graph-construction draws in the seed-derivation
// chain, alongside seedDomainProc/seedDomainAdv/seedDomainFault.
const seedDomainTopo uint64 = 4

// Topology names a communication graph for Config.Topology.
type Topology struct {
	// Kind selects the graph family: "complete" (or "", the default:
	// all-to-all), "ring" (cycle 0–1–…–(N−1)–0), "k-regular" (circulant
	// graph with offsets 1..K/2), "expander" (union of K/2 seeded random
	// Hamiltonian cycles — a standard randomized expander construction),
	// or "radio" (sparse bounded-degree graph: each process draws K
	// random neighbor candidates, an edge lands only while both
	// endpoints are under degree K — the ad-hoc radio-network model; may
	// be disconnected).
	Kind string
	// K is the degree parameter of k-regular/expander (even, ≥ 2) and
	// the degree bound of radio (≥ 1). Ring and complete ignore it.
	K int
	// Seed drives the randomized constructions (expander, radio).
	Seed uint64
}

// Active reports whether the topology restricts anything: nil and
// complete graphs are inactive, and engines skip the per-send edge check
// entirely.
func (t *Topology) Active() bool {
	return t != nil && t.Kind != "" && t.Kind != "complete"
}

// Validate reports whether the topology is well-formed. Validation is
// N-independent: parameters too large for a given N degrade (edges are
// skipped), never fail.
func (t *Topology) Validate() error {
	switch t.Kind {
	case "", "complete", "ring":
		return nil
	case "k-regular", "expander":
		if t.K < 2 || t.K%2 != 0 {
			return fmt.Errorf("sim: topology %s: K = %d, need even K ≥ 2", t.Kind, t.K)
		}
		return nil
	case "radio":
		if t.K < 1 {
			return fmt.Errorf("sim: topology radio: K = %d, need K ≥ 1", t.K)
		}
		return nil
	default:
		return fmt.Errorf("sim: unknown topology kind %q (complete|ring|k-regular|expander|radio)", t.Kind)
	}
}

// String renders the topology in the form ParseTopology accepts, with
// every parameter the kind consumes spelled out — ParseTopology fills
// defaults eagerly, so parse∘String is the identity.
func (t *Topology) String() string {
	switch t.Kind {
	case "", "complete":
		return "complete"
	case "ring":
		return "ring"
	case "k-regular":
		return fmt.Sprintf("k-regular,k=%d", t.K)
	default: // expander, radio: seeded kinds always print their seed
		return fmt.Sprintf("%s,k=%d,seed=%d", t.Kind, t.K, t.Seed)
	}
}

// ParseTopology parses a comma-separated topology spec such as "ring",
// "k-regular,k=4", "expander,k=4,seed=9", or "radio,k=3,seed=2" into a
// Topology for Config.Topology. The first element is the kind; k= and
// seed= follow in any order. Missing parameters take the kind's default
// (k=4 for k-regular/expander, k=3 for radio). An empty spec yields nil
// (the complete graph).
func ParseTopology(s string) (*Topology, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	t := &Topology{Kind: strings.TrimSpace(parts[0])}
	for _, part := range parts[1:] {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("sim: topology spec %q: want key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "k":
			k, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("sim: topology k %q: %v", val, err)
			}
			t.K = k
		case "seed":
			u, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("sim: topology seed %q: %v", val, err)
			}
			t.Seed = u
		default:
			return nil, fmt.Errorf("sim: topology spec: unknown key %q", key)
		}
	}
	if t.K == 0 {
		switch t.Kind {
		case "k-regular", "expander":
			t.K = 4
		case "radio":
			t.K = 3
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	// Normalize: zero the parameters the kind ignores. String prints only
	// the parameters a kind consumes, so without this a spec carrying a
	// stray k/seed ("complete,k=5", "ring,k=7") would break the
	// parse∘String identity.
	switch t.Kind {
	case "", "complete":
		t = &Topology{Kind: "complete"}
	case "ring":
		t.K, t.Seed = 0, 0
	case "k-regular":
		t.Seed = 0
	}
	return t, nil
}

// Graph is the run's live communication graph: the undirected edge set
// the send path consults. Both engines (sim and sim/oracle) share this
// type and its constructor — like FaultPlan.Roll, it is a deliberate
// sharing point, so the edge set cannot drift between them. Reads
// (Live) are lock-free; the adversary mutates edges only inside Observe,
// which runs serially before any commit, so shard lanes read the maps
// concurrently without synchronization.
//
// Two representations: a materialized sparse edge set (non-complete
// kinds), or a complete-base delta that stores only removed edges (a
// complete topology that an adversary starts rewiring). Both are keyed
// by the packed undirected pair min<<32|max.
type Graph struct {
	// edges is the live edge set when the base graph is sparse; nil in
	// complete-base mode.
	edges map[int64]struct{}
	// removed holds the deleted edges of a complete base graph; nil in
	// sparse mode.
	removed map[int64]struct{}
}

// edgeKey packs an undirected pair into a map key.
func edgeKey(a, b ProcID) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(b)
}

// NewGraph builds the initial live edge set of topology t over n
// processes. A nil or complete topology yields a complete-base graph
// with no removals; engines may keep graph state nil until the first
// edge edit instead, which is equivalent and skips the send-path check.
func NewGraph(t *Topology, n int) *Graph {
	if !t.Active() {
		return &Graph{removed: make(map[int64]struct{})}
	}
	g := &Graph{edges: make(map[int64]struct{})}
	addCycle := func(perm []int) {
		for i, a := range perm {
			b := perm[(i+1)%len(perm)]
			if a != b {
				g.edges[edgeKey(ProcID(a), ProcID(b))] = struct{}{}
			}
		}
	}
	switch t.Kind {
	case "ring":
		if n > 1 {
			ident := make([]int, n)
			for i := range ident {
				ident[i] = i
			}
			addCycle(ident)
		}
	case "k-regular":
		// Circulant graph: every process connects to the K/2 nearest
		// offsets on each side. Offsets ≥ N wrap onto existing edges and
		// collapse in the set.
		for off := 1; off <= t.K/2; off++ {
			for i := 0; i < n; i++ {
				j := (i + off) % n
				if i != j {
					g.edges[edgeKey(ProcID(i), ProcID(j))] = struct{}{}
				}
			}
		}
	case "expander":
		// Union of K/2 random Hamiltonian cycles — w.h.p. an expander.
		rng := xrand.New(xrand.Derive(t.Seed, seedDomainTopo))
		for c := 0; c < t.K/2; c++ {
			if n > 1 {
				addCycle(rng.Perm(n))
			}
		}
	case "radio":
		// Greedy bounded-degree construction: each process draws K
		// neighbor candidates; an edge lands only while both endpoints
		// are still under degree K. Deterministic in draw order, sparse,
		// and possibly disconnected — the radio-network regime.
		rng := xrand.New(xrand.Derive(t.Seed, seedDomainTopo))
		deg := make([]int, n)
		for i := 0; i < n && n > 1; i++ {
			for c := 0; c < t.K; c++ {
				j := rng.IntnExcept(n, i)
				if deg[i] >= t.K {
					break
				}
				if deg[j] >= t.K {
					continue
				}
				key := edgeKey(ProcID(i), ProcID(j))
				if _, dup := g.edges[key]; dup {
					continue
				}
				g.edges[key] = struct{}{}
				deg[i]++
				deg[j]++
			}
		}
	}
	return g
}

// Live reports whether the undirected edge (a, b) is in the graph.
// Self-loops are always live: a process can talk to itself on any
// topology.
func (g *Graph) Live(a, b ProcID) bool {
	if a == b {
		return true
	}
	key := edgeKey(a, b)
	if g.edges != nil {
		_, ok := g.edges[key]
		return ok
	}
	_, gone := g.removed[key]
	return !gone
}

// Add inserts the undirected edge (a, b), reporting whether the graph
// changed. Self-loops are no-ops.
func (g *Graph) Add(a, b ProcID) bool {
	if a == b {
		return false
	}
	key := edgeKey(a, b)
	if g.edges != nil {
		if _, ok := g.edges[key]; ok {
			return false
		}
		g.edges[key] = struct{}{}
		return true
	}
	if _, gone := g.removed[key]; !gone {
		return false
	}
	delete(g.removed, key)
	return true
}

// Remove deletes the undirected edge (a, b), reporting whether the
// graph changed.
func (g *Graph) Remove(a, b ProcID) bool {
	if a == b {
		return false
	}
	key := edgeKey(a, b)
	if g.edges != nil {
		if _, ok := g.edges[key]; !ok {
			return false
		}
		delete(g.edges, key)
		return true
	}
	if _, gone := g.removed[key]; gone {
		return false
	}
	g.removed[key] = struct{}{}
	return true
}
