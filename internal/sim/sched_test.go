package sim

import (
	"reflect"
	"testing"
)

func TestSchedulerDueOrderAndStaleness(t *testing.T) {
	var s scheduler
	s.init(6)

	// Schedule everyone at step 3, out of process order.
	for _, p := range []ProcID{4, 1, 5, 0, 3, 2} {
		s.scheduleProc(p, 3)
	}
	// Reschedule 3 to step 7 (its step-3 entry goes stale) and unschedule 5.
	s.scheduleProc(3, 7)
	s.unscheduleProc(5)

	if at, ok := s.next(); !ok || at != 3 {
		t.Fatalf("next = (%d, %v), want (3, true)", at, ok)
	}
	due := s.collectDue(3, nil)
	if want := []ProcID{0, 1, 2, 4}; !reflect.DeepEqual(due, want) {
		t.Fatalf("due at 3 = %v, want %v (ascending, stale and unscheduled dropped)", due, want)
	}
	for _, p := range due {
		if s.scheduledAt(p) != noSchedule {
			t.Errorf("process %d still scheduled after collectDue", p)
		}
	}

	if at, ok := s.next(); !ok || at != 7 {
		t.Fatalf("next = (%d, %v), want (7, true)", at, ok)
	}
	if due := s.collectDue(7, nil); !reflect.DeepEqual(due, []ProcID{3}) {
		t.Fatalf("due at 7 = %v, want [3]", due)
	}
	if _, ok := s.next(); ok {
		t.Fatal("scheduler not empty after draining")
	}
}

func TestSchedulerRescheduleBackAndForthDeduplicates(t *testing.T) {
	var s scheduler
	s.init(1)
	// Two live heap entries for (5, 0) after bouncing the schedule; the
	// due set must still contain process 0 exactly once.
	s.scheduleProc(0, 5)
	s.scheduleProc(0, 9)
	s.scheduleProc(0, 5)
	if due := s.collectDue(5, nil); !reflect.DeepEqual(due, []ProcID{0}) {
		t.Fatalf("due = %v, want [0] exactly once", due)
	}
	// The stale entry at 9 must not resurface the process.
	if due := s.collectDue(9, nil); len(due) != 0 {
		t.Fatalf("stale entry resurfaced: %v", due)
	}
}

func TestSchedulerDropsDeadBuckets(t *testing.T) {
	var s scheduler
	s.init(3)
	// Everything at step 4 is rescheduled or removed before step 4: the
	// scheduler must not surface 4 as an event time — an adversary would
	// otherwise observe a step at which provably nothing can happen.
	s.scheduleProc(0, 4)
	s.scheduleProc(1, 4)
	s.scheduleProc(0, 9)
	s.unscheduleProc(1)
	if at, ok := s.next(); !ok || at != 9 {
		t.Fatalf("next = (%d, %v), want (9, true) — dead bucket at 4 surfaced", at, ok)
	}
	// A delivery mark keeps its step alive even when the boundary bucket
	// at the same step is dead.
	s.scheduleProc(2, 5)
	s.unscheduleProc(2)
	s.scheduleDelivery(5)
	if at, ok := s.next(); !ok || at != 5 {
		t.Fatalf("next = (%d, %v), want (5, true) — delivery at 5 pending", at, ok)
	}
	if due := s.collectDue(5, nil); len(due) != 0 {
		t.Fatalf("due at 5 = %v, want none", due)
	}
	if at, ok := s.next(); !ok || at != 9 {
		t.Fatalf("next = (%d, %v), want (9, true)", at, ok)
	}
}

func TestSchedulerDueSetSorted(t *testing.T) {
	var s scheduler
	s.init(8)
	// Appends arrive out of order across "commit batches"; the due set
	// must still come out in ascending process order.
	for _, p := range []ProcID{6, 2, 7, 0, 5, 3} {
		s.scheduleProc(p, 11)
	}
	due := s.collectDue(11, nil)
	if want := []ProcID{0, 2, 3, 5, 6, 7}; !reflect.DeepEqual(due, want) {
		t.Fatalf("due = %v, want %v", due, want)
	}
}

func TestCalendarRecyclesBuckets(t *testing.T) {
	var c calendar
	c.init()
	msg := func(to int32) imessage { return imessage{from: 0, to: to, ref: 7} }

	if !c.add(10, msg(1)) {
		t.Fatal("first add must create the bucket")
	}
	if c.add(10, msg(2)) {
		t.Fatal("second add to same step must not re-create the bucket")
	}
	b := c.take(10)
	if len(b.msgs) != 2 || b.msgs[0].to != 1 || b.msgs[1].to != 2 {
		t.Fatalf("bucket = %v", b.msgs)
	}
	if c.take(10) != nil {
		t.Fatal("taken bucket still present")
	}
	c.release(b)

	// The next bucket must reuse the released storage.
	if !c.add(20, msg(3)) {
		t.Fatal("add after release must create a bucket")
	}
	b2 := c.take(20)
	if b2 != b {
		t.Error("released bucket was not recycled")
	}
	if b2.msgs[0].to != 3 {
		t.Fatalf("recycled bucket content = %v", b2.msgs)
	}
	c.release(b2)
}
