package sim

import (
	"fmt"
	"testing"
)

// ---- bench protocols -------------------------------------------------------

// benchPayload is pre-converted to the interface type so sends do not
// allocate: the benchmarks measure engine scheduling and delivery, and a
// per-send interface conversion would drown that signal in GC noise.
var benchPayload Payload = testPayload{kind: "bench"}

// tokenRingProto is the scheduler's worst case before the indexed event
// queue: exactly one process is active per global step (the token holder),
// while the other N-1 sleep. An engine that scans all N processes per step
// to find the next event pays O(N) per hop — O(N²) per lap — where the
// indexed scheduler pays O(log N) per hop.
type tokenRingProto struct {
	// laps is how many times the token circles the ring.
	laps int
}

func (tokenRingProto) Name() string { return "token-ring" }

func (tr tokenRingProto) New(envs []Env) []Process {
	laps := tr.laps
	if laps < 1 {
		laps = 1
	}
	return BuildEach(envs, func(env Env) Process {
		return &tokenRingProc{env: env, laps: laps}
	})
}

type tokenRingProc struct {
	env    Env
	laps   int
	passed int
	booted bool
}

func (p *tokenRingProc) Step(now Step, delivered []Message, out *Outbox) {
	forward := false
	if p.env.ID == 0 && !p.booted {
		p.booted = true
		forward = true
	}
	for range delivered {
		forward = true
	}
	if forward && p.passed < p.laps && p.env.N > 1 {
		p.passed++
		out.Send(ProcID((int(p.env.ID)+1)%p.env.N), benchPayload)
	}
}

func (p *tokenRingProc) Asleep() bool        { return p.env.ID != 0 || p.booted }
func (p *tokenRingProc) Knows(g ProcID) bool { return g == p.env.ID }

// staggerProto models the long tail of a gossip run: every process sends a
// few messages to deterministic pseudo-random targets, but processes fall
// asleep at staggered times, so late steps have only a handful of active
// processes among many sleepers. Payload handling is trivial, so the
// benchmark measures engine scheduling and delivery, not protocol work.
type staggerProto struct{}

func (staggerProto) Name() string { return "stagger" }

func (staggerProto) New(envs []Env) []Process {
	return BuildEach(envs, func(env Env) Process {
		// Process i stays busy for 1 + i%64 local steps: activity thins out
		// step by step instead of stopping all at once.
		return &staggerProc{env: env, rounds: 1 + int(env.ID)%64}
	})
}

type staggerProc struct {
	env    Env
	rounds int
	done   int
}

func (p *staggerProc) Step(now Step, delivered []Message, out *Outbox) {
	if p.done < p.rounds && p.env.N > 1 {
		p.done++
		out.Send(ProcID(p.env.RNG.IntnExcept(p.env.N, int(p.env.ID))), benchPayload)
	}
}

func (p *staggerProc) Asleep() bool        { return p.done >= p.rounds }
func (p *staggerProc) Knows(g ProcID) bool { return g == p.env.ID }

// ---- benchmarks ------------------------------------------------------------

// BenchmarkEngineLargeN measures raw engine scheduling cost at sizes far
// beyond the paper's N = 500, with no adversary. The token-ring workload is
// pure sparse scheduling; the stagger workload mixes a dense prefix with a
// sparse tail, like a real gossip dissemination curve.
func BenchmarkEngineLargeN(b *testing.B) {
	for _, n := range []int{1000, 5000, 10000} {
		b.Run(fmt.Sprintf("ring/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o, err := Run(Config{N: n, F: 0, Protocol: tokenRingProto{laps: 1}, Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				if o.HorizonHit {
					b.Fatal("ring run hit horizon")
				}
			}
		})
		b.Run(fmt.Sprintf("stagger/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o, err := Run(Config{N: n, F: 0, Protocol: staggerProto{}, Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				if o.HorizonHit {
					b.Fatal("stagger run hit horizon")
				}
			}
		})
	}
}

// BenchmarkRingTopology measures the send-path edge check on a sparse
// communication graph at 10k processes. The token-ring workload keeps
// every send on a live ring edge, so the bench isolates the Graph.Live
// map-hit cost added to each send; the blocked variant runs the stagger
// workload's random-target sends on the same ring, so nearly every send
// misses the edge set and exercises the blocked-send path (drop note,
// BlockedSends accounting, no calendar insertion).
func BenchmarkRingTopology(b *testing.B) {
	const n = 10000
	ring := &Topology{Kind: "ring"}
	b.Run("10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o, err := Run(Config{N: n, F: 0, Protocol: tokenRingProto{laps: 1}, Topology: ring, Seed: uint64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			if o.HorizonHit || o.Stats.BlockedSends != 0 {
				b.Fatalf("ring-topology run off course: horizon=%v blocked=%d", o.HorizonHit, o.Stats.BlockedSends)
			}
		}
	})
	b.Run("blocked/10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o, err := Run(Config{N: n, F: 0, Protocol: staggerProto{}, Topology: ring, Seed: uint64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			if o.HorizonHit || o.Stats.BlockedSends == 0 {
				b.Fatalf("blocked run off course: horizon=%v blocked=%d", o.HorizonHit, o.Stats.BlockedSends)
			}
		}
	})
}

// BenchmarkEngineDelayHeavy exercises skipped-step scheduling: an adversary
// rewrites half the processes to huge local-step and delivery times, so the
// run's global-step range is large but almost every step is inert. The cost
// of finding the next event dominates; delivery buckets churn constantly.
func BenchmarkEngineDelayHeavy(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			adv := advFunc{name: "delay-half", init: func(v View, c Control) {
				for p := 0; p < v.N(); p += 2 {
					c.SetDelta(ProcID(p), 1<<10)
					c.SetDelay(ProcID(p), 1<<14)
				}
			}}
			for i := 0; i < b.N; i++ {
				o, err := Run(Config{N: n, F: 1, Protocol: staggerProto{}, Adversary: adv, Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				if o.HorizonHit {
					b.Fatal("delay-heavy run hit horizon")
				}
			}
		})
	}
}
