package sim

// Allocation-regression tests: the zero-alloc contract of the PR 5 memory
// rewrite, pinned in tier-1 so a regression fails `go test ./...` rather
// than only the bench gate. The claim is about the *steady state*: after a
// run has warmed up — outbox staging, mailbox buffers, calendar buckets,
// scheduler heap, and payload-table slots have all reached their peak
// sizes — one engine step allocates nothing, provided the protocol hands
// Send pre-boxed payloads. testing.AllocsPerRun drives the extracted
// stepOnce directly.
//
// Skipped under -race (see race_off.go): race instrumentation allocates.

import "testing"

// pullEchoProto is the delivery-heavy counterpart to the token ring: every
// process sends `pulls` requests, one per local step, to deterministic
// pseudo-random peers, and answers each one — including while asleep. It
// keeps wake-ups, dense due sets, calendar churn, and fan-in delivery all
// active for hundreds of steps, with pre-boxed payloads and O(1) state.
type pullEchoProto struct{ pulls int }

func (pullEchoProto) Name() string { return "pull-echo" }

var (
	pullReqPayload  Payload = testPayload{kind: "pull-req"}
	pullRespPayload Payload = testPayload{kind: "pull-resp"}
)

func (pr pullEchoProto) New(envs []Env) []Process {
	return BuildEach(envs, func(env Env) Process {
		return &pullEchoProc{env: env, pulls: pr.pulls}
	})
}

type pullEchoProc struct {
	env   Env
	pulls int
}

func (p *pullEchoProc) Step(now Step, delivered []Message, out *Outbox) {
	for _, m := range delivered {
		if samePayload(m.Payload, pullReqPayload) {
			out.Send(m.From, pullRespPayload)
		}
	}
	if p.pulls > 0 && p.env.N > 1 {
		p.pulls--
		out.Send(ProcID(p.env.RNG.IntnExcept(p.env.N, int(p.env.ID))), pullReqPayload)
	}
}

func (p *pullEchoProc) Asleep() bool        { return p.pulls == 0 }
func (p *pullEchoProc) Knows(g ProcID) bool { return g == p.env.ID }

// measureSteadyStepAllocs warms an engine by `warm` active steps, then
// returns the average allocations of the next `measure` steps. It fails
// the test if the run quiesces before measurement ends — a drained run
// would trivially "allocate nothing".
func measureSteadyStepAllocs(t *testing.T, cfg Config, warm, measure int) float64 {
	t.Helper()
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < warm; i++ {
		if e.quiescent() || !e.stepOnce() {
			t.Fatalf("run drained after %d warm-up steps; warm/measure budget too large", i)
		}
	}
	// AllocsPerRun calls the function runs+1 times (one untimed warm-up
	// call of its own); every call must advance a real step.
	steps := 0
	allocs := testing.AllocsPerRun(measure-1, func() {
		if e.quiescent() || !e.stepOnce() {
			return
		}
		steps++
	})
	if steps < measure {
		t.Fatalf("run drained during measurement (%d of %d steps)", steps, measure)
	}
	return allocs
}

// TestStepLoopZeroAlloc pins 0 allocs per engine step in steady state, on
// the two workload extremes: the sparse token ring (one active process,
// one in-flight message) and the dense pull-echo exchange (every process
// active, fan-in deliveries, sleep/wake transitions).
func TestStepLoopZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation assertions do not hold under -race")
	}
	cases := []struct {
		name          string
		cfg           Config
		warm, measure int
	}{
		{
			name: "ring",
			cfg:  Config{N: 256, Protocol: tokenRingProto{laps: 64}},
			// 64 laps = 16384 hops; warm two laps, measure one.
			warm: 512, measure: 256,
		},
		{
			name: "pull-echo",
			cfg:  Config{N: 512, Protocol: pullEchoProto{pulls: 3000}},
			// ~3000 pull steps per process plus the echo tail. The long
			// warm-up matters: mailbox and bucket capacities grow to the
			// maximum fan-in any process ever sees, and with random targets
			// that running maximum keeps creeping for a while.
			warm: 2000, measure: 400,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if allocs := measureSteadyStepAllocs(t, tc.cfg, tc.warm, tc.measure); allocs != 0 {
				t.Errorf("steady-state step loop: %v allocs/step, want 0", allocs)
			}
		})
	}
}

// TestOutboxSendZeroAlloc pins 0 allocs on the Outbox Send/flush cycle
// once staging storage is warm, for both the distinct-payload path and the
// memoized fan-out path.
func TestOutboxSendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation assertions do not hold under -race")
	}
	ob := NewOutbox(0, 1024)
	fanout := func() {
		ob.reset(0, 1024)
		for to := 1; to <= 512; to++ {
			ob.Send(ProcID(to), benchPayload) // one shared payload, 512 drafts
		}
		if ob.distinct() != 1 {
			t.Fatal("fan-out of one payload staged more than one entry")
		}
	}
	alternate := func() {
		ob.reset(0, 1024)
		for to := 1; to <= 256; to++ {
			ob.Send(ProcID(to), pullReqPayload)
			ob.Send(ProcID(to+256), pullRespPayload)
		}
	}
	fanout() // grow staging before measuring
	if allocs := testing.AllocsPerRun(100, fanout); allocs != 0 {
		t.Errorf("fan-out Send cycle: %v allocs, want 0", allocs)
	}
	alternate()
	if allocs := testing.AllocsPerRun(100, alternate); allocs != 0 {
		t.Errorf("alternating Send cycle: %v allocs, want 0", allocs)
	}
}
