package sim

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/ugf-sim/ugf/internal/xrand"
)

// ---- test protocols -------------------------------------------------------

type testPayload struct {
	kind    string
	gossips []ProcID
}

func (p testPayload) Kind() string { return p.kind }

// floodProto: every process sends its own gossip to everyone at its first
// local step, then absorbs. If ack is set, a received gossip is answered
// with a single "ack" message (used to exercise sleep/wake).
type floodProto struct{ ack bool }

func (f floodProto) Name() string { return "flood" }

func (f floodProto) New(envs []Env) []Process {
	return BuildEach(envs, func(env Env) Process {
		fp := &floodProc{env: env, ack: f.ack, known: make([]bool, env.N)}
		fp.known[env.ID] = true
		return fp
	})
}

type floodProc struct {
	env    Env
	ack    bool
	known  []bool
	donned bool // has flooded
}

func (fp *floodProc) Step(now Step, delivered []Message, out *Outbox) {
	for _, m := range delivered {
		pl := m.Payload.(testPayload)
		for _, g := range pl.gossips {
			fp.known[g] = true
		}
		if fp.ack && pl.kind == "gossip" {
			out.Send(m.From, testPayload{kind: "ack"})
		}
	}
	if !fp.donned {
		fp.donned = true
		for q := 0; q < fp.env.N; q++ {
			if ProcID(q) != fp.env.ID {
				out.Send(ProcID(q), testPayload{kind: "gossip", gossips: []ProcID{fp.env.ID}})
			}
		}
	}
}

func (fp *floodProc) Asleep() bool        { return fp.donned }
func (fp *floodProc) Knows(g ProcID) bool { return fp.known[g] }

// silentProto: never sends anything; sleeps after its first step.
type silentProto struct{}

func (silentProto) Name() string { return "silent" }
func (silentProto) New(envs []Env) []Process {
	return BuildEach(envs, func(env Env) Process { return &silentProc{id: env.ID} })
}

type silentProc struct {
	id      ProcID
	stepped bool
}

func (s *silentProc) Step(now Step, delivered []Message, out *Outbox) { s.stepped = true }
func (s *silentProc) Asleep() bool                                    { return s.stepped }
func (s *silentProc) Knows(g ProcID) bool                             { return g == s.id }

// busyProto: sends one message to the next process at every local step and
// never sleeps. Used to exercise the horizon and event cutoffs.
type busyProto struct{}

func (busyProto) Name() string { return "busy" }
func (busyProto) New(envs []Env) []Process {
	return BuildEach(envs, func(env Env) Process { return &busyProc{env: env} })
}

type busyProc struct{ env Env }

func (b *busyProc) Step(now Step, delivered []Message, out *Outbox) {
	out.Send(ProcID((int(b.env.ID)+1)%b.env.N), testPayload{kind: "noise"})
}
func (b *busyProc) Asleep() bool        { return false }
func (b *busyProc) Knows(g ProcID) bool { return g == b.env.ID }

// chaosProto: a randomized protocol used for the serial/parallel
// equivalence property. Each process gossips to random targets for a
// random number of steps, sometimes replies to senders, then sleeps.
type chaosProto struct{}

func (chaosProto) Name() string { return "chaos" }
func (chaosProto) New(envs []Env) []Process {
	return BuildEach(envs, func(env Env) Process {
		cp := &chaosProc{env: env, known: make([]bool, env.N)}
		cp.known[env.ID] = true
		cp.rounds = 1 + env.RNG.Intn(5)
		return cp
	})
}

type chaosProc struct {
	env    Env
	known  []bool
	rounds int
	done   int
}

func (c *chaosProc) Step(now Step, delivered []Message, out *Outbox) {
	for _, m := range delivered {
		pl := m.Payload.(testPayload)
		for _, g := range pl.gossips {
			c.known[g] = true
		}
		if pl.kind == "gossip" && c.env.RNG.Bernoulli(0.3) {
			out.Send(m.From, testPayload{kind: "reply", gossips: c.snapshot()})
		}
	}
	if c.done < c.rounds {
		c.done++
		fanout := 1 + c.env.RNG.Intn(3)
		for i := 0; i < fanout && c.env.N > 1; i++ {
			to := ProcID(c.env.RNG.IntnExcept(c.env.N, int(c.env.ID)))
			out.Send(to, testPayload{kind: "gossip", gossips: c.snapshot()})
		}
	}
}

func (c *chaosProc) snapshot() []ProcID {
	var out []ProcID
	for g, ok := range c.known {
		if ok {
			out = append(out, ProcID(g))
		}
	}
	return out
}

func (c *chaosProc) Asleep() bool        { return c.done >= c.rounds }
func (c *chaosProc) Knows(g ProcID) bool { return c.known[g] }

// ---- test adversary -------------------------------------------------------

// advFunc is a scriptable adversary for tests.
type advFunc struct {
	name    string
	init    func(View, Control)
	observe func(Step, []SendRecord, View, Control)
}

func (a advFunc) Name() string { return a.name }
func (a advFunc) New(n, f int, rng *xrand.RNG) AdversaryInstance {
	return &advFuncInst{a: a}
}

type advFuncInst struct{ a advFunc }

func (ai *advFuncInst) Init(v View, c Control) {
	if ai.a.init != nil {
		ai.a.init(v, c)
	}
}
func (ai *advFuncInst) Observe(now Step, ev []SendRecord, v View, c Control) {
	if ai.a.observe != nil {
		ai.a.observe(now, ev, v, c)
	}
}
func (ai *advFuncInst) Label() string { return "" }

// ---- tests ----------------------------------------------------------------

func mustRun(t *testing.T, cfg Config) Outcome {
	t.Helper()
	o, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return o
}

func TestFloodGathersAndQuiesces(t *testing.T) {
	rec := &Recorder{}
	o := mustRun(t, Config{N: 5, F: 0, Protocol: floodProto{}, Seed: 1, Trace: rec, KeepPerProcess: true})
	if !o.Gathered {
		t.Error("flood did not gather")
	}
	if o.HorizonHit {
		t.Error("unexpected horizon hit")
	}
	if want := int64(5 * 4); o.Messages != want {
		t.Errorf("Messages = %d, want %d", o.Messages, want)
	}
	if o.TEnd != 1 {
		t.Errorf("TEnd = %d, want 1 (all sends happen at step 1)", o.TEnd)
	}
	if o.Quiescence != 2 {
		t.Errorf("Quiescence = %d, want 2", o.Quiescence)
	}
	if o.DeltaMax != 1 || o.DelayMax != 1 {
		t.Errorf("δ=%d d=%d, want 1,1", o.DeltaMax, o.DelayMax)
	}
	if o.Time != 0.5 {
		t.Errorf("Time = %v, want 0.5", o.Time)
	}
	for p, m := range o.PerProcessMsgs {
		if m != 4 {
			t.Errorf("process %d sent %d, want 4", p, m)
		}
	}
	if got := rec.Count(TraceSend); got != 20 {
		t.Errorf("trace sends = %d, want 20", got)
	}
	if got := rec.Count(TraceArrive); got != 20 {
		t.Errorf("trace arrivals = %d, want 20", got)
	}
}

func TestSilentProtocolOutcome(t *testing.T) {
	o := mustRun(t, Config{N: 3, F: 0, Protocol: silentProto{}, Seed: 1})
	if o.Gathered {
		t.Error("silent protocol cannot gather")
	}
	if o.Messages != 0 || o.TEnd != 0 || o.Time != 0 {
		t.Errorf("unexpected activity: %+v", o)
	}
	if o.Quiescence != 1 {
		t.Errorf("Quiescence = %d, want 1 (single local step)", o.Quiescence)
	}
}

func TestSingleProcess(t *testing.T) {
	o := mustRun(t, Config{N: 1, F: 0, Protocol: floodProto{}, Seed: 1})
	if !o.Gathered {
		t.Error("single process trivially gathers")
	}
	if o.Messages != 0 {
		t.Errorf("Messages = %d, want 0", o.Messages)
	}
}

func TestDeliveryDelay(t *testing.T) {
	rec := &Recorder{}
	adv := advFunc{name: "delay0", init: func(v View, c Control) { c.SetDelay(0, 5) }}
	mustRun(t, Config{N: 2, F: 1, Protocol: floodProto{}, Adversary: adv, Seed: 1, Trace: rec})
	// Process 0 sends at step 1; with d_0 = 5 its message must arrive at 6.
	found := false
	for _, ev := range rec.Events {
		if ev.Kind == TraceArrive && ev.Proc == 1 && ev.Other == 0 {
			found = true
			if ev.Step != 6 {
				t.Errorf("message 0->1 arrived at %d, want 6", ev.Step)
			}
		}
	}
	if !found {
		t.Fatal("message 0->1 never arrived")
	}
}

func TestDeltaSchedulesFirstStep(t *testing.T) {
	rec := &Recorder{}
	adv := advFunc{name: "slow0", init: func(v View, c Control) { c.SetDelta(0, 4) }}
	mustRun(t, Config{N: 2, F: 1, Protocol: floodProto{}, Adversary: adv, Seed: 1, Trace: rec})
	for _, ev := range rec.Events {
		if ev.Kind == TraceLocalStep && ev.Proc == 0 {
			if ev.Step != 4 {
				t.Errorf("process 0 first local step at %d, want 4", ev.Step)
			}
			break
		}
	}
}

func TestDeltaPhase(t *testing.T) {
	rec := &Recorder{}
	adv := advFunc{name: "slow0", init: func(v View, c Control) { c.SetDelta(0, 3) }}
	mustRun(t, Config{N: 2, F: 1, Protocol: busyProto{}, Adversary: adv, Seed: 1,
		Trace: rec, Horizon: 10})
	var steps []Step
	for _, ev := range rec.Events {
		if ev.Kind == TraceLocalStep && ev.Proc == 0 {
			steps = append(steps, ev.Step)
		}
	}
	want := []Step{3, 6, 9}
	if !reflect.DeepEqual(steps, want) {
		t.Errorf("process 0 local steps = %v, want %v", steps, want)
	}
}

func TestSetDeltaMidRunReanchors(t *testing.T) {
	rec := &Recorder{}
	adv := advFunc{name: "reslow", observe: func(now Step, ev []SendRecord, v View, c Control) {
		if now == 5 {
			c.SetDelta(0, 10)
		}
	}}
	mustRun(t, Config{N: 2, F: 1, Protocol: busyProto{}, Adversary: adv, Seed: 1,
		Trace: rec, Horizon: 40})
	var steps []Step
	for _, ev := range rec.Events {
		if ev.Kind == TraceLocalStep && ev.Proc == 0 {
			steps = append(steps, ev.Step)
		}
	}
	// δ=1 until the rewrite at step 5, so steps 1..4, then re-anchored at 5
	// with δ=10: 15, 25, 35.
	want := []Step{1, 2, 3, 4, 15, 25, 35}
	if !reflect.DeepEqual(steps, want) {
		t.Errorf("process 0 local steps = %v, want %v", steps, want)
	}
}

func TestCrashBudgetEnforced(t *testing.T) {
	var results []bool
	adv := advFunc{name: "greedy", init: func(v View, c Control) {
		for p := 0; p < v.N(); p++ {
			results = append(results, c.Crash(ProcID(p)))
		}
	}}
	o := mustRun(t, Config{N: 5, F: 2, Protocol: floodProto{}, Adversary: adv, Seed: 1})
	if o.Crashed != 2 {
		t.Errorf("Crashed = %d, want 2", o.Crashed)
	}
	want := []bool{true, true, false, false, false}
	if !reflect.DeepEqual(results, want) {
		t.Errorf("crash results = %v, want %v", results, want)
	}
}

func TestCrashIsIdempotent(t *testing.T) {
	adv := advFunc{name: "twice", init: func(v View, c Control) {
		if !c.Crash(0) {
			t.Error("first crash refused")
		}
		if c.Crash(0) {
			t.Error("second crash of same process accepted")
		}
		if c.BudgetLeft() != 1 {
			t.Errorf("BudgetLeft = %d, want 1", c.BudgetLeft())
		}
	}}
	mustRun(t, Config{N: 3, F: 2, Protocol: floodProto{}, Adversary: adv, Seed: 1})
}

func TestCrashBeforeDeliveryDropsMessage(t *testing.T) {
	rec := &Recorder{}
	adv := advFunc{name: "snipe", observe: func(now Step, ev []SendRecord, v View, c Control) {
		if now == 2 {
			c.Crash(1)
		}
	}}
	o := mustRun(t, Config{N: 2, F: 1, Protocol: floodProto{}, Adversary: adv, Seed: 1, Trace: rec})
	for _, ev := range rec.Events {
		if ev.Kind == TraceArrive && ev.Proc == 1 {
			t.Error("crashed process 1 still received a message")
		}
	}
	// Process 0's message to 1 was sent (counted) but dropped.
	if o.Messages != 2 {
		t.Errorf("Messages = %d, want 2", o.Messages)
	}
	// Process 1's message to 0, sent at step 1 before the crash, arrives.
	found := false
	for _, ev := range rec.Events {
		if ev.Kind == TraceArrive && ev.Proc == 0 && ev.Other == 1 {
			found = true
		}
	}
	if !found {
		t.Error("message from process crashed after sending was lost")
	}
}

func TestCrashedProcessTakesNoSteps(t *testing.T) {
	rec := &Recorder{}
	adv := advFunc{name: "kill0", init: func(v View, c Control) { c.Crash(0) }}
	mustRun(t, Config{N: 3, F: 1, Protocol: floodProto{}, Adversary: adv, Seed: 1, Trace: rec})
	for _, ev := range rec.Events {
		if ev.Kind == TraceLocalStep && ev.Proc == 0 {
			t.Fatal("crashed process took a local step")
		}
		if ev.Kind == TraceSend && ev.Proc == 0 {
			t.Fatal("crashed process sent a message")
		}
	}
}

func TestGatheringIgnoresCrashed(t *testing.T) {
	// Crash process 0 at the start: the two survivors must still gather
	// (each other's gossip only).
	adv := advFunc{name: "kill0", init: func(v View, c Control) { c.Crash(0) }}
	o := mustRun(t, Config{N: 3, F: 1, Protocol: floodProto{}, Adversary: adv, Seed: 1})
	if !o.Gathered {
		t.Error("survivors exchanged gossips but Gathered is false")
	}
}

func TestOmission(t *testing.T) {
	rec := &Recorder{}
	adv := advFunc{name: "omit0", init: func(v View, c Control) { c.SetOmitFrom(0, true) }}
	o := mustRun(t, Config{N: 2, F: 1, Protocol: floodProto{}, Adversary: adv, Seed: 1, Trace: rec})
	if o.Messages != 2 {
		t.Errorf("Messages = %d, want 2 (omitted sends still count)", o.Messages)
	}
	for _, ev := range rec.Events {
		if ev.Kind == TraceArrive && ev.Proc == 1 {
			t.Error("omitted message was delivered")
		}
	}
	if o.Gathered {
		t.Error("gathering impossible with omitted sender")
	}
}

func TestSleepWakeTransitions(t *testing.T) {
	rec := &Recorder{}
	mustRun(t, Config{N: 2, F: 0, Protocol: floodProto{ack: true}, Seed: 1, Trace: rec})
	// Both processes flood at 1 and sleep; gossip arrivals at 2 trigger an
	// ack send. The ack send happens from the "asleep" state (Def. IV.2
	// allows responding), so no wake event is required — but sleep events
	// must exist and the acks must flow.
	if got := rec.Count(TraceSleep); got != 2 {
		t.Errorf("sleep events = %d, want 2", got)
	}
	acks := 0
	for _, ev := range rec.Events {
		if ev.Kind == TraceSend && ev.Payload != nil && ev.Payload.Kind() == "ack" {
			acks++
		}
	}
	if acks != 2 {
		t.Errorf("acks sent = %d, want 2", acks)
	}
}

func TestHorizonCutoff(t *testing.T) {
	o := mustRun(t, Config{N: 3, F: 0, Protocol: busyProto{}, Seed: 1, Horizon: 100})
	if !o.HorizonHit {
		t.Fatal("busy protocol must hit the horizon")
	}
	if o.Quiescence > 100 {
		t.Errorf("run advanced to %d past horizon 100", o.Quiescence)
	}
}

func TestMaxEventsCutoff(t *testing.T) {
	o := mustRun(t, Config{N: 3, F: 0, Protocol: busyProto{}, Seed: 1, MaxEvents: 500})
	if !o.HorizonHit {
		t.Fatal("busy protocol must hit the event cutoff")
	}
}

func TestQuiescenceWaitsForInflight(t *testing.T) {
	adv := advFunc{name: "slowNet", init: func(v View, c Control) {
		c.SetDelay(0, 10)
		c.SetDelay(1, 10)
	}}
	o := mustRun(t, Config{N: 2, F: 1, Protocol: floodProto{}, Adversary: adv, Seed: 1})
	if o.Quiescence != 11 {
		t.Errorf("Quiescence = %d, want 11 (messages in flight until 11)", o.Quiescence)
	}
	if o.TEnd != 1 {
		t.Errorf("TEnd = %d, want 1", o.TEnd)
	}
	if o.DelayMax != 10 {
		t.Errorf("DelayMax = %d, want 10", o.DelayMax)
	}
	if want := 1.0 / 11.0; o.Time != want {
		t.Errorf("Time = %v, want %v", o.Time, want)
	}
}

func TestComplexityMaximaExcludeCrashed(t *testing.T) {
	adv := advFunc{name: "delayAndKill", init: func(v View, c Control) {
		c.SetDelay(0, 100)
		c.SetDelta(0, 100)
		c.Crash(0)
	}}
	o := mustRun(t, Config{N: 3, F: 1, Protocol: floodProto{}, Adversary: adv, Seed: 1})
	if o.DelayMax != 1 || o.DeltaMax != 1 {
		t.Errorf("δ=%d d=%d, want 1,1 — crashed processes must not count", o.DeltaMax, o.DelayMax)
	}
}

func TestLastSendExcludesCrashed(t *testing.T) {
	// Process 0 keeps sending until crashed at step 50; the flood
	// processes finish at step 1. TEnd must reflect only survivors.
	mixed := protoMix{}
	adv := advFunc{name: "lateKill", observe: func(now Step, ev []SendRecord, v View, c Control) {
		if now == 50 {
			c.Crash(0)
		}
	}}
	o := mustRun(t, Config{N: 3, F: 1, Protocol: mixed, Adversary: adv, Seed: 1})
	if o.TEnd != 1 {
		t.Errorf("TEnd = %d, want 1: sends by the crashed process must not count", o.TEnd)
	}
	if o.Messages < 50 {
		t.Errorf("Messages = %d, want ≥ 50 (crashed sender's messages count in M)", o.Messages)
	}
}

// protoMix: process 0 is busy (never sleeps), the rest flood once.
type protoMix struct{}

func (protoMix) Name() string { return "mix" }
func (protoMix) New(envs []Env) []Process {
	procs := make([]Process, len(envs))
	for i, env := range envs {
		if i == 0 {
			procs[i] = &busyProc{env: env}
		} else {
			fp := &floodProc{env: env, known: make([]bool, env.N)}
			fp.known[env.ID] = true
			procs[i] = fp
		}
	}
	return procs
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{N: 0, Protocol: floodProto{}},
		{N: 3, F: -1, Protocol: floodProto{}},
		{N: 3, F: 3, Protocol: floodProto{}},
		{N: 3, F: 0},
		{N: 3, F: 0, Protocol: floodProto{}, Horizon: -1},
		{N: 3, F: 0, Protocol: floodProto{}, MaxEvents: -1},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestProtocolArityChecked(t *testing.T) {
	bad := badArityProto{}
	if _, err := Run(Config{N: 3, F: 0, Protocol: bad}); err == nil {
		t.Fatal("protocol returning wrong process count accepted")
	}
}

type badArityProto struct{}

func (badArityProto) Name() string             { return "bad" }
func (badArityProto) New(envs []Env) []Process { return nil }

func TestOutboxSendValidation(t *testing.T) {
	var ob Outbox
	ob.reset(0, 3)
	mustPanic(t, "out of range", func() { ob.Send(3, testPayload{}) })
	mustPanic(t, "negative", func() { ob.Send(-1, testPayload{}) })
	mustPanic(t, "self-send", func() { ob.Send(0, testPayload{}) })
	ob.Send(1, testPayload{})
	if ob.Len() != 1 {
		t.Errorf("Len = %d, want 1", ob.Len())
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}

func TestSerialParallelEquivalence(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		base := Config{N: n, F: 0, Protocol: chaosProto{}, Seed: seed, KeepPerProcess: true}
		serial := base
		serial.Workers = 1
		parallel := base
		parallel.Workers = 8
		so, err := Run(serial)
		if err != nil {
			return false
		}
		po, err := Run(parallel)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(so.StripWall(), po.StripWall())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := Config{N: 17, F: 5, Protocol: chaosProto{}, Seed: 77, KeepPerProcess: true}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if !reflect.DeepEqual(a.StripWall(), b.StripWall()) {
		t.Fatalf("same config diverged:\n%+v\n%+v", a, b)
	}
}

func TestMessageAccountingIdentity(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%20 + 2
		o, err := Run(Config{N: n, F: 0, Protocol: chaosProto{}, Seed: seed, KeepPerProcess: true})
		if err != nil {
			return false
		}
		var sum int64
		for _, m := range o.PerProcessMsgs {
			sum += m
		}
		return sum == o.Messages
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerHeapOrdering(t *testing.T) {
	prop := func(vals []int64) bool {
		var s scheduler
		s.init(0)
		for _, v := range vals {
			s.scheduleDelivery(Step(v))
		}
		prev := schedEvent{at: math.MinInt64, mark: math.MinInt32}
		for range vals {
			ev := s.pop()
			if ev.less(prev) {
				return false
			}
			prev = ev
		}
		return len(s.heap) == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampling(t *testing.T) {
	var snaps []Snapshot
	o := mustRun(t, Config{
		N: 6, F: 0, Protocol: floodProto{}, Seed: 1,
		Sample: func(s Snapshot) { snaps = append(snaps, s) },
	})
	if len(snaps) == 0 {
		t.Fatal("no snapshots taken")
	}
	last := snaps[len(snaps)-1]
	if last.Coverage != 1 {
		t.Errorf("final coverage = %v, want 1 (flood gathers)", last.Coverage)
	}
	if last.Messages != o.Messages {
		t.Errorf("final snapshot M = %d, want %d", last.Messages, o.Messages)
	}
	// Coverage is monotone for flood (knowledge only grows, no crashes).
	prev := -1.0
	for _, s := range snaps {
		if s.Coverage < prev {
			t.Errorf("coverage regressed: %v after %v", s.Coverage, prev)
		}
		prev = s.Coverage
		if s.Coverage < 0 || s.Coverage > 1 {
			t.Errorf("coverage out of range: %v", s.Coverage)
		}
	}
}

func TestSamplingEvery(t *testing.T) {
	var steps []Step
	mustRun(t, Config{
		N: 4, F: 0, Protocol: busyProto{}, Seed: 1, Horizon: 50,
		Sample:      func(s Snapshot) { steps = append(steps, s.Now) },
		SampleEvery: 10,
	})
	if len(steps) < 4 {
		t.Fatalf("too few samples: %v", steps)
	}
	for i := 1; i < len(steps)-1; i++ {
		if steps[i]-steps[i-1] < 10 {
			t.Errorf("samples %d and %d closer than SampleEvery: %v", i-1, i, steps)
		}
	}
}

func TestSamplingSingleCorrect(t *testing.T) {
	// With fewer than two correct processes coverage is trivially 1.
	adv := advFunc{name: "killAllButOne", init: func(v View, c Control) {
		c.Crash(0)
	}}
	var last Snapshot
	mustRun(t, Config{
		N: 2, F: 1, Protocol: silentProto{}, Adversary: adv, Seed: 1,
		Sample: func(s Snapshot) { last = s },
	})
	if last.Coverage != 1 {
		t.Errorf("singleton coverage = %v, want 1", last.Coverage)
	}
	if last.Crashed != 1 {
		t.Errorf("snapshot crashed = %d, want 1", last.Crashed)
	}
}

func TestTraceEventStrings(t *testing.T) {
	evs := []TraceEvent{
		{Kind: TraceSend, Step: 3, Proc: 1, Other: 2, Payload: testPayload{kind: "x"}},
		{Kind: TraceCrash, Step: 5, Proc: 4},
		{Kind: TraceEnd, Step: 9, Proc: -1, Note: "quiescence"},
	}
	for _, ev := range evs {
		if ev.String() == "" {
			t.Errorf("empty String for %v", ev.Kind)
		}
	}
	if TraceKind(250).String() == "" {
		t.Error("unknown kind must still format")
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Protocol: "p", Adversary: "a", Strategy: "2.1.0", N: 10, F: 3}
	if s := o.String(); s == "" {
		t.Error("empty Outcome string")
	}
	o.Strategy = ""
	if s := o.String(); s == "" {
		t.Error("empty Outcome string without strategy")
	}
}

func BenchmarkEngineFlood(b *testing.B) {
	for _, n := range []int{100, 500} {
		b.Run(map[int]string{100: "N=100", 500: "N=500"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(Config{N: n, F: 0, Protocol: floodProto{}, Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
