package sim

import (
	"reflect"
	"testing"
)

// kindTotal sums MessagesByKind.
func kindTotal(kinds []KindCount) int64 {
	var sum int64
	for _, kc := range kinds {
		sum += kc.Count
	}
	return sum
}

// TestStatsInvariants pins the cross-field consistency contract of the
// always-on block on a representative adversarial run: the counters are
// maintained at different engine layers (scheduler, delivery, commit,
// adversary control), so their accounting identities catch a missed or
// double-counted site.
func TestStatsInvariants(t *testing.T) {
	o := mustRun(t, Config{N: 30, F: 10, Protocol: chaosProto{}, Adversary: chaosAdversary{}, Seed: 11})
	s := o.Stats
	if s.Sends != o.Messages {
		t.Errorf("Stats.Sends = %d, Outcome.Messages = %d — must agree", s.Sends, o.Messages)
	}
	if int(s.Crashes) != o.Crashed {
		t.Errorf("Stats.Crashes = %d, Outcome.Crashed = %d — must agree", s.Crashes, o.Crashed)
	}
	if got := s.Deliveries + s.DroppedCrashed + s.OmittedSends; got != s.Sends {
		t.Errorf("Deliveries(%d) + DroppedCrashed(%d) + OmittedSends(%d) = %d, want Sends = %d",
			s.Deliveries, s.DroppedCrashed, s.OmittedSends, got, s.Sends)
	}
	if got := kindTotal(s.MessagesByKind); got != s.Sends {
		t.Errorf("MessagesByKind sums to %d, want Sends = %d (%v)", got, s.Sends, s.MessagesByKind)
	}
	if s.Events != s.LocalSteps+s.Sends {
		t.Errorf("Events = %d, want LocalSteps(%d) + Sends(%d)", s.Events, s.LocalSteps, s.Sends)
	}
	if s.HeapPushes < s.HeapPops || s.HeapPops == 0 {
		t.Errorf("heap pushes %d / pops %d: pops must be positive and ≤ pushes", s.HeapPushes, s.HeapPops)
	}
	if s.ActiveSteps <= 0 || s.ActiveSteps > int64(o.Quiescence)+1 {
		t.Errorf("ActiveSteps = %d, want in (0, Quiescence+1 = %d]", s.ActiveSteps, int64(o.Quiescence)+1)
	}
	if s.MaxInFlight <= 0 || s.MaxPending <= 0 {
		t.Errorf("high-water marks MaxInFlight=%d MaxPending=%d, want > 0", s.MaxInFlight, s.MaxPending)
	}
	if s.Sleeps < int64(o.N-o.Crashed) {
		t.Errorf("Sleeps = %d: every surviving process must sleep at least once (N-Crashed = %d)",
			s.Sleeps, o.N-o.Crashed)
	}
	if s.Wall.Run <= 0 {
		t.Errorf("Wall.Run = %v, want > 0", s.Wall.Run)
	}
	for i := 1; i < len(s.MessagesByKind); i++ {
		if s.MessagesByKind[i-1].Kind >= s.MessagesByKind[i].Kind {
			t.Errorf("MessagesByKind not sorted: %v", s.MessagesByKind)
		}
	}
}

// TestStatsOmissionAccounting: omitted sends must land in OmittedSends,
// not Deliveries, and still count as Sends.
func TestStatsOmissionAccounting(t *testing.T) {
	omitAll := advFunc{
		name: "omit-all",
		init: func(v View, c Control) {
			for p := ProcID(0); int(p) < v.N(); p++ {
				c.SetOmitFrom(p, true)
			}
		},
	}
	o := mustRun(t, Config{N: 6, F: 0, Protocol: floodProto{}, Adversary: omitAll, Seed: 1})
	s := o.Stats
	if s.Sends == 0 || s.OmittedSends != s.Sends || s.Deliveries != 0 {
		t.Errorf("omit-all: Sends=%d OmittedSends=%d Deliveries=%d, want all sends omitted",
			s.Sends, s.OmittedSends, s.Deliveries)
	}
	if s.OmitRewrites != 6 {
		t.Errorf("OmitRewrites = %d, want 6", s.OmitRewrites)
	}
}

// TestStatsDeterministic: the whole block except Wall is a pure function
// of (Config, Seed), bit-identical across reruns and worker counts.
func TestStatsDeterministic(t *testing.T) {
	base := Config{N: 40, F: 13, Protocol: chaosProto{}, Adversary: chaosAdversary{}, Seed: 7}
	serial := mustRun(t, base)
	for name, cfg := range map[string]Config{
		"rerun":     base,
		"workers-4": {N: 40, F: 13, Protocol: chaosProto{}, Adversary: chaosAdversary{}, Seed: 7, Workers: 4},
	} {
		got := mustRun(t, cfg)
		if !reflect.DeepEqual(serial.Stats.StripWall(), got.Stats.StripWall()) {
			t.Errorf("%s: Stats diverged:\nserial %+v\ngot    %+v", name, serial.Stats, got.Stats)
		}
	}
}

// TestStatsSinkNeutrality: attaching trace sinks or interval statistics
// must not change the outcome or the run-wide counters — observation is
// pure.
func TestStatsSinkNeutrality(t *testing.T) {
	base := Config{N: 25, F: 8, Protocol: chaosProto{}, Adversary: chaosAdversary{}, Seed: 3}
	plain := mustRun(t, base)

	traced := base
	traced.Trace = &Recorder{}
	got := mustRun(t, traced)
	if !reflect.DeepEqual(plain.StripWall(), got.StripWall()) {
		t.Errorf("trace sink changed the outcome:\n%+v\n%+v", plain, got)
	}

	sampled := base
	sampled.StatsEvery = 4
	got = mustRun(t, sampled)
	if len(got.Stats.Intervals) == 0 {
		t.Fatal("StatsEvery set but no intervals recorded")
	}
	got.Stats.Intervals = nil
	if !reflect.DeepEqual(plain.StripWall(), got.StripWall()) {
		t.Errorf("interval stats changed the outcome:\n%+v\n%+v", plain, got)
	}
}

// TestStatsIntervals checks the optional series: windows are ordered and
// disjoint, every window counted something (inert windows are dropped),
// and the windows partition the run-wide activity counters exactly.
func TestStatsIntervals(t *testing.T) {
	o := mustRun(t, Config{
		N: 30, F: 10, Protocol: chaosProto{}, Adversary: chaosAdversary{},
		Seed: 5, StatsEvery: 8,
	})
	ivs := o.Stats.Intervals
	if len(ivs) == 0 {
		t.Fatal("no intervals")
	}
	var sends, deliveries, sleeps, wakes, crashes, hist int64
	for i, iv := range ivs {
		if iv.End <= iv.Start {
			t.Errorf("interval %d: empty window [%d, %d)", i, iv.Start, iv.End)
		}
		if i > 0 && iv.Start < ivs[i-1].End {
			t.Errorf("interval %d starts at %d, before previous end %d", i, iv.Start, ivs[i-1].End)
		}
		if !iv.active() {
			t.Errorf("interval %d recorded nothing — inert windows must be dropped", i)
		}
		sends += iv.Sends
		deliveries += iv.Deliveries
		sleeps += iv.Sleeps
		wakes += iv.Wakes
		crashes += iv.Crashes
		for _, c := range iv.DelayHist {
			hist += c
		}
	}
	s := o.Stats
	if sends != s.Sends || deliveries != s.Deliveries || sleeps != s.Sleeps ||
		wakes != s.Wakes || crashes != s.Crashes {
		t.Errorf("interval sums (S=%d D=%d sl=%d w=%d c=%d) ≠ run totals (S=%d D=%d sl=%d w=%d c=%d)",
			sends, deliveries, sleeps, wakes, crashes,
			s.Sends, s.Deliveries, s.Sleeps, s.Wakes, s.Crashes)
	}
	if hist != sends {
		t.Errorf("delay histogram counts %d sends, want %d", hist, sends)
	}
	if last := ivs[len(ivs)-1]; last.AwakeCorrect != 0 {
		t.Errorf("final interval AwakeCorrect = %d, want 0 after quiescence", last.AwakeCorrect)
	}
}

func TestDelayBucket(t *testing.T) {
	cases := []struct {
		d    Step
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1 << 20, 20}, {1<<62 + 5, delayHistBuckets - 1},
	}
	for _, c := range cases {
		if got := delayBucket(c.d); got != c.want {
			t.Errorf("delayBucket(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{
		Events: 10, Sends: 4, MaxInFlight: 7, MaxPending: 2,
		MessagesByKind: []KindCount{{"gossip", 3}, {"pull", 1}},
		Wall:           WallStats{Run: 5},
	}
	b := Stats{
		Events: 5, Sends: 2, MaxInFlight: 3, MaxPending: 9,
		MessagesByKind: []KindCount{{"ack", 1}, {"gossip", 1}},
		Wall:           WallStats{Run: 2},
	}
	a.Merge(&b)
	if a.Events != 15 || a.Sends != 6 {
		t.Errorf("counters did not add: %+v", a)
	}
	if a.MaxInFlight != 7 || a.MaxPending != 9 {
		t.Errorf("high-water marks must take the max: %+v", a)
	}
	want := []KindCount{{"ack", 1}, {"gossip", 4}, {"pull", 1}}
	if !reflect.DeepEqual(a.MessagesByKind, want) {
		t.Errorf("MessagesByKind = %v, want %v", a.MessagesByKind, want)
	}
	if a.Wall.Run != 7 {
		t.Errorf("Wall.Run = %v, want 7", a.Wall.Run)
	}
}

// BenchmarkStatsOverheadBaseline exists to compare against the seed's
// BenchmarkEngineLargeN numbers; the always-on counters must stay within
// the noise band (see scripts/bench_gate.sh for the enforced gate).
func BenchmarkStatsIntervalSeries(b *testing.B) {
	cfg := Config{N: 500, F: 150, Protocol: chaosProto{}, Adversary: chaosAdversary{}, Seed: 9, StatsEvery: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
