package sim

import (
	"reflect"
	"testing"
	"time"
)

// TestCancelImmediatePartialOutcome: a run whose Cancel channel is already
// closed stops at the first event boundary, before any step executes, and
// returns a valid (empty-prefix) Outcome with Cancelled and HorizonHit set
// — never an error. With the channel closed from the start the stopping
// point is deterministic, so the outcome must replay bit-identically.
func TestCancelImmediatePartialOutcome(t *testing.T) {
	done := make(chan struct{})
	close(done)
	rec := &Recorder{}
	cfg := Config{N: 4, F: 0, Protocol: busyProto{}, Seed: 3, Cancel: done, Trace: rec}
	o, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Cancelled || !o.HorizonHit {
		t.Fatalf("cancelled run: Cancelled=%v HorizonHit=%v, want true/true", o.Cancelled, o.HorizonHit)
	}
	if o.Messages != 0 || o.TEnd != 0 || o.Quiescence != 0 {
		t.Fatalf("closed-from-start cancel must stop before any event: %+v", o)
	}
	end := rec.Events[len(rec.Events)-1]
	if end.Kind != TraceEnd || end.Note != "cancelled" {
		t.Fatalf("trace end = %+v, want TraceEnd with note \"cancelled\"", end)
	}
	cfg.Trace = nil
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o.StripWall(), again.StripWall()) {
		t.Fatalf("closed-from-start cancellation not deterministic:\n%+v\n%+v", o, again)
	}
}

// TestMaxWallWatchdog: a non-quiescent protocol is stopped by the
// wall-clock watchdog long before its (enormous) event cutoff.
func TestMaxWallWatchdog(t *testing.T) {
	o, err := Run(Config{
		N: 8, F: 0, Protocol: busyProto{}, Seed: 1,
		MaxWall:   time.Millisecond,
		MaxEvents: 200_000_000, // backstop so a broken watchdog still terminates
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Cancelled || !o.HorizonHit {
		t.Fatalf("watchdog run: Cancelled=%v HorizonHit=%v, want true/true", o.Cancelled, o.HorizonHit)
	}
	if o.Messages == 0 {
		t.Fatal("watchdog fired before any work happened; expected a partial prefix")
	}
}

// TestHorizonHitGolden pins the exact outcome of a MaxEvents cutoff — the
// "golden case" for cut-off runs. Like the root golden matrix, any change
// to these values is a semantics change, not a perf change.
func TestHorizonHitGolden(t *testing.T) {
	cfg := Config{N: 4, F: 0, Protocol: busyProto{}, Seed: 7, MaxEvents: 1000}
	want := Outcome{
		Protocol:   "busy",
		Adversary:  "none",
		N:          4,
		F:          0,
		Seed:       7,
		TEnd:       126,
		Quiescence: 126,
		Messages:   504,
		Time:       63,
		DeltaMax:   1,
		DelayMax:   1,
		HorizonHit: true,
	}
	for _, workers := range []int{0, 4} {
		c := cfg
		c.Workers = workers
		got, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Sends != got.Messages || got.Stats.Events == 0 {
			t.Errorf("workers=%d: stats not populated: %+v", workers, got.Stats)
		}
		got.Stats = Stats{} // the golden row pins the measurement fields
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}
