package sim

// The production engine's System implementation: the adversary-facing
// surface of engine state, plus the write operations of Definition II.5.
// The read accessors are direct field reads; the write operations carry
// the engine-specific bookkeeping (scheduler reindexing, intervention
// counters, trace events) that the reference engine in sim/oracle
// implements its own way.

// NumProcs implements System.
func (e *engine) NumProcs() int { return e.n }

// CrashBudget implements System.
func (e *engine) CrashBudget() int { return e.cfg.F }

// Now implements System.
func (e *engine) Now() Step { return e.now }

// Crashed implements System.
func (e *engine) Crashed(p ProcID) bool { return e.pt.crashed(p) }

// Asleep implements System.
func (e *engine) Asleep(p ProcID) bool { return !e.pt.crashed(p) && !e.pt.awake(p) }

// SentCount implements System.
func (e *engine) SentCount(p ProcID) int64 { return e.pt.sent[p] }

// Delta implements System.
func (e *engine) Delta(p ProcID) Step { return e.pt.delta[p] }

// Delay implements System.
func (e *engine) Delay(p ProcID) Step { return e.pt.delay[p] }

// CrashCount implements System.
func (e *engine) CrashCount() int { return e.crashCount }

// CrashesEver implements System.
func (e *engine) CrashesEver() int { return e.crashesEver }

// Crash implements System: it enforces the range, already-crashed and
// budget guards, then fails the process immediately. The budget is
// enforced against cumulative crash events, so recoveries do not refund
// it.
func (e *engine) Crash(p ProcID) bool {
	if p < 0 || int(p) >= e.n || e.pt.crashed(p) || e.crashesEver >= e.cfg.F {
		return false
	}
	e.crashProcess(p)
	return true
}

// Recover implements System: it revives a crashed process at the current
// step. The process re-anchors its local-step schedule at now (first
// boundary now + δ_p); whether it resumes awake is the protocol's call —
// a process that had fallen asleep before crashing stays dormant until
// mail arrives. With amnesia, a Forgetter protocol resets the process to
// its initial knowledge first.
func (e *engine) Recover(p ProcID, amnesia bool) bool {
	if p < 0 || int(p) >= e.n || !e.pt.crashed(p) {
		return false
	}
	e.pt.clearCrashed(p)
	e.crashCount--
	e.everRecovered = true
	e.st.Recoveries++
	if e.statsEvery > 0 {
		e.interval.Recoveries++
	}
	e.pt.anchor[p] = e.now
	note := "retain"
	if amnesia {
		note = "amnesia"
		if f, ok := e.procs[p].(Forgetter); ok {
			f.Forget()
		}
	}
	if !e.procs[p].Asleep() {
		e.pt.setAwake(p, true)
		e.awakeCorrect++
		e.sched.scheduleProc(p, e.now+e.pt.delta[p])
	}
	e.trace(TraceEvent{Kind: TraceRecover, Step: e.now, Proc: p, Other: -1, Note: note})
	return true
}

// SetDelta implements System: rewrite δ_p and re-anchor p's local-step
// schedule at the current step.
func (e *engine) SetDelta(p ProcID, v Step) {
	if p < 0 || int(p) >= e.n {
		panic("sim: SetDelta on process out of range")
	}
	if v < 1 {
		panic("sim: SetDelta with non-positive step time")
	}
	e.st.DeltaRewrites++
	e.pt.delta[p] = v
	e.pt.anchor[p] = e.now
	if e.sched.scheduledAt(p) != noSchedule {
		// Schedulable process: its next boundary moved to now + v.
		// Crashed or sleeping processes stay out of the index; a later
		// wake-up arrival reads the rewritten anchor/δ.
		e.sched.scheduleProc(p, e.now+v)
	}
	e.trace(TraceEvent{Kind: TraceAdversary, Step: e.now, Proc: p, Note: "delta"})
}

// SetDelay implements System: only messages sent after the rewrite are
// affected; in-flight messages keep the delivery time stamped at send.
func (e *engine) SetDelay(p ProcID, v Step) {
	if p < 0 || int(p) >= e.n {
		panic("sim: SetDelay on process out of range")
	}
	if v < 1 {
		panic("sim: SetDelay with non-positive delivery time")
	}
	e.st.DelayRewrites++
	e.pt.delay[p] = v
	e.trace(TraceEvent{Kind: TraceAdversary, Step: e.now, Proc: p, Note: "delay"})
}

// SetOmitFrom implements System.
func (e *engine) SetOmitFrom(p ProcID, omit bool) {
	if p < 0 || int(p) >= e.n {
		panic("sim: SetOmitFrom on process out of range")
	}
	e.st.OmitRewrites++
	e.pt.setOmitted(p, omit)
	e.trace(TraceEvent{Kind: TraceAdversary, Step: e.now, Proc: p, Note: "omit"})
}

// SetClass implements System: partition-class assignment. The class
// array allocates lazily on first use, and the linkActive gate stays set
// for the rest of the run — healing a partition restores traffic, not
// the fault-free fast path.
func (e *engine) SetClass(p ProcID, c int) {
	if p < 0 || int(p) >= e.n {
		panic("sim: SetClass on process out of range")
	}
	if c < 0 {
		panic("sim: SetClass with negative class")
	}
	if e.class == nil {
		e.class = make([]int32, e.n)
	}
	e.st.LinkRewrites++
	e.class[p] = int32(c)
	e.linkActive = true
	e.trace(TraceEvent{Kind: TraceAdversary, Step: e.now, Proc: p, Note: "class"})
}

// DropLink implements System.
func (e *engine) DropLink(from, to ProcID) {
	if from < 0 || int(from) >= e.n || to < 0 || int(to) >= e.n {
		panic("sim: DropLink on process out of range")
	}
	if e.linkDown == nil {
		e.linkDown = make(map[int64]struct{})
	}
	e.st.LinkRewrites++
	e.linkDown[linkKey(from, to)] = struct{}{}
	e.linkActive = true
	e.trace(TraceEvent{Kind: TraceAdversary, Step: e.now, Proc: from, Note: "droplink"})
}

// EdgeLive implements System: whether the undirected communication-graph
// edge (a, b) is live. With no topology and no edge edits every pair is
// connected.
func (e *engine) EdgeLive(a, b ProcID) bool {
	if a < 0 || int(a) >= e.n || b < 0 || int(b) >= e.n {
		panic("sim: EdgeLive on process out of range")
	}
	return e.graph == nil || e.graph.Live(a, b)
}

// AddEdge implements System: insert the undirected edge (a, b),
// reporting whether the graph changed. On a change, the rewrite counts
// in Stats.TopologyRewrites and traces as an adversary event carrying
// both endpoints.
func (e *engine) AddEdge(a, b ProcID) bool {
	if a < 0 || int(a) >= e.n || b < 0 || int(b) >= e.n {
		panic("sim: AddEdge on process out of range")
	}
	e.ensureGraph()
	if !e.graph.Add(a, b) {
		return false
	}
	e.st.TopologyRewrites++
	e.trace(TraceEvent{Kind: TraceAdversary, Step: e.now, Proc: a, Other: b, Note: "addedge"})
	return true
}

// RemoveEdge implements System: delete the undirected edge (a, b),
// mirroring AddEdge. Only future sends are affected; messages already in
// flight keep their stamped delivery.
func (e *engine) RemoveEdge(a, b ProcID) bool {
	if a < 0 || int(a) >= e.n || b < 0 || int(b) >= e.n {
		panic("sim: RemoveEdge on process out of range")
	}
	e.ensureGraph()
	if !e.graph.Remove(a, b) {
		return false
	}
	e.st.TopologyRewrites++
	e.trace(TraceEvent{Kind: TraceAdversary, Step: e.now, Proc: a, Other: b, Note: "removeedge"})
	return true
}

// ensureGraph materializes the complete-base delta graph on the first
// edge edit of a run without a Config.Topology, so edge-free complete
// runs keep the nil fast path in the send loop.
func (e *engine) ensureGraph() {
	if e.graph == nil {
		e.graph = NewGraph(nil, e.n)
	}
}

// HealLink implements System.
func (e *engine) HealLink(from, to ProcID) {
	if from < 0 || int(from) >= e.n || to < 0 || int(to) >= e.n {
		panic("sim: HealLink on process out of range")
	}
	e.st.LinkRewrites++
	delete(e.linkDown, linkKey(from, to))
	e.trace(TraceEvent{Kind: TraceAdversary, Step: e.now, Proc: from, Note: "heallink"})
}
