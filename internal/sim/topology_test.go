package sim

import (
	"strings"
	"testing"
)

// TestParseTopologyRoundTrip pins parse∘String = identity on every kind,
// including the normalization of elided defaults and of parameters the
// kind ignores — the contract FuzzTopologySpec (internal/simtest)
// hammers with arbitrary inputs.
func TestParseTopologyRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want string // canonical String form, "" for nil
	}{
		{"", ""},
		{"  ", ""},
		{"complete", "complete"},
		{",", "complete"},
		{"complete,k=5,seed=9", "complete"},
		{"ring", "ring"},
		{"ring,k=7,seed=3", "ring"},
		{"k-regular", "k-regular,k=4"},
		{"k-regular,k=6", "k-regular,k=6"},
		{"k-regular,k=6,seed=9", "k-regular,k=6"},
		{"expander", "expander,k=4,seed=0"},
		{"expander,seed=7,k=2", "expander,k=2,seed=7"},
		{"radio", "radio,k=3,seed=0"},
		{"radio,k=1,seed=0xff", "radio,k=1,seed=255"},
		// k=0 is the zero value, indistinguishable from "not given": it
		// takes the kind's default rather than failing validation.
		{"k-regular,k=0", "k-regular,k=4"},
		{"radio,k=0", "radio,k=3,seed=0"},
	}
	for _, tc := range cases {
		topo, err := ParseTopology(tc.spec)
		if err != nil {
			t.Errorf("ParseTopology(%q): %v", tc.spec, err)
			continue
		}
		if tc.want == "" {
			if topo != nil {
				t.Errorf("ParseTopology(%q) = %+v, want nil", tc.spec, topo)
			}
			continue
		}
		if got := topo.String(); got != tc.want {
			t.Errorf("ParseTopology(%q).String() = %q, want %q", tc.spec, got, tc.want)
		}
		again, err := ParseTopology(topo.String())
		if err != nil {
			t.Errorf("%q: canonical form %q does not reparse: %v", tc.spec, topo.String(), err)
			continue
		}
		if *again != *topo {
			t.Errorf("%q: round trip changed the topology: %+v → %+v", tc.spec, topo, again)
		}
	}
}

// TestParseTopologyRejects pins the rejection surface: unknown kinds,
// odd or undersized degrees, malformed parameters.
func TestParseTopologyRejects(t *testing.T) {
	for _, spec := range []string{
		"warp",
		"k-regular,k=3",
		"expander,k=1",
		"radio,k=-1",
		"ring,k=nan",
		"ring,k",
		"ring,warp=1",
		"expander,seed=banana",
	} {
		if topo, err := ParseTopology(spec); err == nil {
			t.Errorf("ParseTopology(%q) = %+v, want error", spec, topo)
		}
	}
}

// TestNewGraphFamilies checks the constructed edge sets: exact shapes
// where the family is deterministic, structural bounds where it is
// seeded, and graceful degradation on degenerate N.
func TestNewGraphFamilies(t *testing.T) {
	degree := func(g *Graph, n int, p ProcID) int {
		d := 0
		for q := 0; q < n; q++ {
			if ProcID(q) != p && g.Live(p, ProcID(q)) {
				d++
			}
		}
		return d
	}

	t.Run("complete", func(t *testing.T) {
		g := NewGraph(nil, 5)
		for a := 0; a < 5; a++ {
			for b := 0; b < 5; b++ {
				if !g.Live(ProcID(a), ProcID(b)) {
					t.Errorf("complete graph: edge %d–%d not live", a, b)
				}
			}
		}
	})
	t.Run("ring", func(t *testing.T) {
		const n = 6
		g := NewGraph(&Topology{Kind: "ring"}, n)
		for i := 0; i < n; i++ {
			if got := degree(g, n, ProcID(i)); got != 2 {
				t.Errorf("ring: degree(%d) = %d, want 2", i, got)
			}
			if !g.Live(ProcID(i), ProcID((i+1)%n)) {
				t.Errorf("ring: edge %d–%d not live", i, (i+1)%n)
			}
		}
		if g.Live(0, 3) {
			t.Error("ring: chord 0–3 live")
		}
	})
	t.Run("k-regular", func(t *testing.T) {
		const n, k = 10, 4
		g := NewGraph(&Topology{Kind: "k-regular", K: k}, n)
		for i := 0; i < n; i++ {
			if got := degree(g, n, ProcID(i)); got != k {
				t.Errorf("k-regular: degree(%d) = %d, want %d", i, got, k)
			}
		}
	})
	t.Run("expander", func(t *testing.T) {
		const n, k = 16, 4
		g := NewGraph(&Topology{Kind: "expander", K: k, Seed: 7}, n)
		for i := 0; i < n; i++ {
			d := degree(g, n, ProcID(i))
			// Union of K/2 Hamiltonian cycles: exactly 2 per cycle, minus
			// coincidences — never more than K, never less than 2.
			if d < 2 || d > k {
				t.Errorf("expander: degree(%d) = %d, want in [2, %d]", i, d, k)
			}
		}
	})
	t.Run("radio", func(t *testing.T) {
		const n, k = 12, 3
		g := NewGraph(&Topology{Kind: "radio", K: k, Seed: 7}, n)
		edges := 0
		for i := 0; i < n; i++ {
			d := degree(g, n, ProcID(i))
			if d > k {
				t.Errorf("radio: degree(%d) = %d exceeds bound %d", i, d, k)
			}
			edges += d
		}
		if edges == 0 {
			t.Error("radio: no edges at all")
		}
	})
	t.Run("degenerate", func(t *testing.T) {
		// Parameters too large for N degrade, never fail: a 4-regular
		// request over 3 processes collapses onto the triangle.
		g := NewGraph(&Topology{Kind: "k-regular", K: 4}, 3)
		for a := 0; a < 3; a++ {
			for b := a + 1; b < 3; b++ {
				if !g.Live(ProcID(a), ProcID(b)) {
					t.Errorf("degenerate k-regular: edge %d–%d not live", a, b)
				}
			}
		}
		if g := NewGraph(&Topology{Kind: "ring"}, 1); g.Live(0, 0) != true {
			t.Error("N=1 ring: self-loop not live")
		}
	})
	t.Run("determinism", func(t *testing.T) {
		a := NewGraph(&Topology{Kind: "radio", K: 3, Seed: 42}, 20)
		b := NewGraph(&Topology{Kind: "radio", K: 3, Seed: 42}, 20)
		c := NewGraph(&Topology{Kind: "radio", K: 3, Seed: 43}, 20)
		same, diff := true, false
		for i := 0; i < 20; i++ {
			for j := i + 1; j < 20; j++ {
				if a.Live(ProcID(i), ProcID(j)) != b.Live(ProcID(i), ProcID(j)) {
					same = false
				}
				if a.Live(ProcID(i), ProcID(j)) != c.Live(ProcID(i), ProcID(j)) {
					diff = true
				}
			}
		}
		if !same {
			t.Error("same (Topology, N) built different graphs")
		}
		if !diff {
			t.Error("different seeds built the identical radio graph (possible, but at N=20 K=3 it means the seed is ignored)")
		}
	})
}

// TestGraphEdits pins Add/Remove change-reporting on both
// representations: the sparse edge set and the complete-base delta.
func TestGraphEdits(t *testing.T) {
	t.Run("sparse", func(t *testing.T) {
		g := NewGraph(&Topology{Kind: "ring"}, 4)
		if !g.Remove(0, 1) || g.Remove(0, 1) {
			t.Error("sparse Remove: want changed then no-op")
		}
		if g.Live(0, 1) || !g.Live(1, 0) == false {
			t.Error("sparse Remove did not kill the edge both ways")
		}
		if !g.Add(0, 2) || g.Add(2, 0) {
			t.Error("sparse Add: want changed then undirected no-op")
		}
		if g.Add(1, 1) || g.Remove(1, 1) {
			t.Error("self-loop edits must be no-ops")
		}
	})
	t.Run("complete-base", func(t *testing.T) {
		g := NewGraph(nil, 0) // complete base ignores n
		if g.Add(0, 1) {
			t.Error("complete base: Add of a live edge reported a change")
		}
		if !g.Remove(0, 1) || g.Remove(0, 1) {
			t.Error("complete base Remove: want changed then no-op")
		}
		if g.Live(0, 1) || g.Live(1, 0) {
			t.Error("complete base: removed edge still live")
		}
		if !g.Add(1, 0) || !g.Live(0, 1) {
			t.Error("complete base: re-Add did not restore the edge")
		}
	})
}

// TestTopologyValidateMessages pins that validation errors name the
// offending kind, so CLI and spec errors stay actionable.
func TestTopologyValidateMessages(t *testing.T) {
	err := (&Topology{Kind: "k-regular", K: 3}).Validate()
	if err == nil || !strings.Contains(err.Error(), "k-regular") {
		t.Errorf("want k-regular named in %v", err)
	}
	err = (&Topology{Kind: "warp"}).Validate()
	if err == nil || !strings.Contains(err.Error(), "warp") {
		t.Errorf("want unknown kind named in %v", err)
	}
}
