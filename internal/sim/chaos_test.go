package sim

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/ugf-sim/ugf/internal/xrand"
)

// chaosAdversary drives a random attack script derived from its stream:
// at random observed steps it crashes random processes, rewrites random
// δ/d values, and toggles omission — a failure-injection harness for the
// engine's bookkeeping invariants.
type chaosAdversary struct{}

func (chaosAdversary) Name() string { return "chaos-adv" }
func (chaosAdversary) New(n, f int, rng *xrand.RNG) AdversaryInstance {
	return &chaosAdvInst{n: n, rng: rng}
}

type chaosAdvInst struct {
	n   int
	rng *xrand.RNG
}

func (a *chaosAdvInst) Init(v View, ctl Control) {
	// Occasionally start with immediate damage.
	if a.rng.Bernoulli(0.3) {
		ctl.Crash(ProcID(a.rng.Intn(a.n)))
	}
}

func (a *chaosAdvInst) Observe(now Step, events []SendRecord, v View, ctl Control) {
	switch a.rng.Intn(10) {
	case 0:
		ctl.Crash(ProcID(a.rng.Intn(a.n)))
	case 1:
		ctl.SetDelta(ProcID(a.rng.Intn(a.n)), Step(1+a.rng.Intn(9)))
	case 2:
		ctl.SetDelay(ProcID(a.rng.Intn(a.n)), Step(1+a.rng.Intn(9)))
	case 3:
		ctl.SetOmitFrom(ProcID(a.rng.Intn(a.n)), a.rng.Bernoulli(0.5))
	case 4:
		// Target a recent sender or receiver — the adaptive pattern.
		if len(events) > 0 {
			ev := events[a.rng.Intn(len(events))]
			if a.rng.Bernoulli(0.5) {
				ctl.Crash(ev.To)
			} else {
				ctl.Crash(ev.From)
			}
		}
	}
}

func (a *chaosAdvInst) Label() string { return "chaos" }

// TestChaosInvariants runs randomized protocols under randomized attacks
// and asserts the engine's global invariants on every outcome.
func TestChaosInvariants(t *testing.T) {
	prop := func(seed uint64, nRaw, fRaw uint8) bool {
		n := int(nRaw)%25 + 2
		f := int(fRaw) % n
		rec := &Recorder{}
		o, err := Run(Config{
			N: n, F: f,
			Protocol:       chaosProto{},
			Adversary:      chaosAdversary{},
			Seed:           seed,
			MaxEvents:      2_000_000,
			Trace:          rec,
			KeepPerProcess: true,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Crash budget respected.
		if o.Crashed > f {
			t.Logf("seed %d: crashed %d > F=%d", seed, o.Crashed, f)
			return false
		}
		if got := rec.Count(TraceCrash); got != o.Crashed {
			t.Logf("seed %d: trace crashes %d != outcome %d", seed, got, o.Crashed)
			return false
		}
		// Message accounting identity.
		var sum int64
		for _, m := range o.PerProcessMsgs {
			sum += m
		}
		if sum != o.Messages {
			t.Logf("seed %d: ΣM_ρ=%d != M=%d", seed, sum, o.Messages)
			return false
		}
		if got := int64(rec.Count(TraceSend)); got != o.Messages {
			t.Logf("seed %d: trace sends %d != M=%d", seed, got, o.Messages)
			return false
		}
		// Arrivals never exceed sends, and none may involve a process
		// crashed at the time of the event.
		crashedAt := map[ProcID]Step{}
		for _, ev := range rec.Events {
			if ev.Kind == TraceCrash {
				crashedAt[ev.Proc] = ev.Step
			}
		}
		for _, ev := range rec.Events {
			switch ev.Kind {
			case TraceSend, TraceLocalStep:
				if at, dead := crashedAt[ev.Proc]; dead && ev.Step > at {
					t.Logf("seed %d: %v by process crashed at %d", seed, ev, at)
					return false
				}
			case TraceArrive:
				if at, dead := crashedAt[ev.Proc]; dead && ev.Step > at {
					t.Logf("seed %d: arrival at process crashed at %d: %v", seed, at, ev)
					return false
				}
			}
		}
		// Time ordering.
		if o.TEnd > o.Quiescence {
			t.Logf("seed %d: TEnd %d > quiescence %d", seed, o.TEnd, o.Quiescence)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestChaosDeterministicUnderAttack: the full (protocol × adversary)
// randomized stack must replay bit-identically, serial and parallel.
func TestChaosDeterministicUnderAttack(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%20 + 3
		base := Config{
			N: n, F: n / 2,
			Protocol:       chaosProto{},
			Adversary:      chaosAdversary{},
			Seed:           seed,
			MaxEvents:      2_000_000,
			KeepPerProcess: true,
		}
		a, err := Run(base)
		if err != nil {
			return false
		}
		par := base
		par.Workers = 4
		b, err := Run(par)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(a.StripWall(), b.StripWall())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestAdversaryRNGMatchesEngine: the exported AdversaryRNG must reproduce
// the stream the engine hands its adversary.
func TestAdversaryRNGMatchesEngine(t *testing.T) {
	var got uint64
	probe := advFunc{name: "probe"}
	_ = probe
	// Use a custom adversary that records its first draw.
	rec := recordFirstDraw{out: &got}
	if _, err := Run(Config{N: 3, F: 1, Protocol: silentProto{}, Adversary: rec, Seed: 1234}); err != nil {
		t.Fatal(err)
	}
	want := AdversaryRNG(1234).Uint64()
	if got != want {
		t.Fatalf("engine stream %d, AdversaryRNG %d", got, want)
	}
}

type recordFirstDraw struct{ out *uint64 }

func (recordFirstDraw) Name() string { return "record" }
func (r recordFirstDraw) New(n, f int, rng *xrand.RNG) AdversaryInstance {
	*r.out = rng.Uint64()
	return idleAdv{}
}

type idleAdv struct{}

func (idleAdv) Init(View, Control)                        {}
func (idleAdv) Observe(Step, []SendRecord, View, Control) {}
func (idleAdv) Label() string                             { return "" }
