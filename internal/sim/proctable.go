package sim

// procTable is the engine's per-process state in struct-of-arrays layout.
// The hot loops (deliver, commit, crash bookkeeping) each touch one or two
// attributes of many processes, so attributes live in parallel arrays
// rather than an array of process structs: a commit sweep walks tightly
// packed Steps instead of striding over 100+-byte records. The three
// boolean attributes are packed into one flags byte per process — at
// N = 10⁶ that is 1 MB instead of 3, and crashed/awake/omitted checks on
// the same process share a cache line.
//
// The Step-typed and int64-typed columns are carved out of one backing
// array per element type: a single allocation each, and columns that are
// read together stay adjacent in memory.
type procTable struct {
	flags []uint8

	delta    []Step // δ_p, the local-step interval
	delay    []Step // d_p, stamped on sends
	anchor   []Step // local-step phase anchor: boundaries at anchor + k·δ, k ≥ 1
	lastSend []Step
	// lastCrash is the step of p's most recent crash (0 when never
	// crashed; sends happen at steps ≥ 1, so 0 never matches). It cuts off
	// pre-crash residue after a recovery: a message sent before p's last
	// crash had its in-flight accounting zeroed by crashProcess, so the
	// delivery path must drop it — not hand it to the recovered process —
	// or the inflightTo/inflightToCorrect counters would go negative.
	lastCrash []Step

	sent         []int64
	pendingCount []int64
	inflightTo   []int64

	// mail holds the delivered-but-unstepped messages of each process —
	// the `delivered` slice its next Step call sees. Buffers are retained
	// across local steps (zeroed, then truncated) so steady-state delivery
	// appends into pre-grown storage.
	mail [][]Message

	// mailBlock is the arena behind small mailboxes: instead of taking
	// its own heap allocation, a mailbox carves storage out of the
	// current block — an exact one-entry slice on first touch, upgraded
	// to a mailChunk-entry chunk the first time it grows. The two-stage
	// carve adapts to the workload with no size threshold: sparse
	// workloads whose processes hold one message at a time (the 10k ring)
	// get exact-fit storage with zero headroom, dense ones (delay-heavy,
	// stagger) absorb their first growth steps without the per-mailbox
	// grow-and-copy ladder that used to dominate big-N allocation counts.
	// A mailbox that outgrows its chunk spills to a regular heap-grown
	// slice once and keeps it. Blocks stay live for the run; like the
	// Outbox's inline arrays, an abandoned or spilled chunk may pin a few
	// stale run-scoped payload boxes — deliberately not scrubbed.
	mailBlock []Message
}

// mailChunk is the capacity of an upgraded arena chunk; mailBlockLen is
// how many entries each arena block holds.
const (
	mailChunk    = 4
	mailBlockLen = 4096
)

const (
	flagAwake uint8 = 1 << iota
	flagCrashed
	flagOmitted
)

func (pt *procTable) init(n int) {
	pt.flags = make([]uint8, n)
	steps := make([]Step, 5*n)
	pt.delta, steps = steps[:n:n], steps[n:]
	pt.delay, steps = steps[:n:n], steps[n:]
	pt.anchor, steps = steps[:n:n], steps[n:]
	pt.lastSend, steps = steps[:n:n], steps[n:]
	pt.lastCrash = steps
	counts := make([]int64, 3*n)
	pt.sent, counts = counts[:n:n], counts[n:]
	pt.pendingCount, counts = counts[:n:n], counts[n:]
	pt.inflightTo = counts
	pt.mail = make([][]Message, n)
}

func (pt *procTable) awake(p ProcID) bool   { return pt.flags[p]&flagAwake != 0 }
func (pt *procTable) crashed(p ProcID) bool { return pt.flags[p]&flagCrashed != 0 }
func (pt *procTable) omitted(p ProcID) bool { return pt.flags[p]&flagOmitted != 0 }

func (pt *procTable) setAwake(p ProcID, v bool) {
	if v {
		pt.flags[p] |= flagAwake
	} else {
		pt.flags[p] &^= flagAwake
	}
}

func (pt *procTable) setCrashed(p ProcID)   { pt.flags[p] |= flagCrashed }
func (pt *procTable) clearCrashed(p ProcID) { pt.flags[p] &^= flagCrashed }

func (pt *procTable) setOmitted(p ProcID, v bool) {
	if v {
		pt.flags[p] |= flagOmitted
	} else {
		pt.flags[p] &^= flagOmitted
	}
}

// pushMail appends a delivered message to p's mailbox, carving small
// mailbox storage out of the arena (see mailBlock): one entry on first
// touch, a mailChunk-entry chunk on the first growth, the heap after
// that.
func (pt *procTable) pushMail(p ProcID, m Message) {
	buf := pt.mail[p]
	if n := len(buf); n == cap(buf) && n < mailChunk {
		if n == 0 {
			buf = pt.carveMail(1)
		} else {
			nb := pt.carveMail(mailChunk)[:n]
			copy(nb, buf)
			buf = nb
		}
	}
	pt.mail[p] = append(buf, m)
}

// carveMail cuts a fresh k-capacity, zero-length slice out of the
// current arena block, starting a new block when the current one is
// exhausted.
func (pt *procTable) carveMail(k int) []Message {
	if len(pt.mailBlock)+k > cap(pt.mailBlock) {
		pt.mailBlock = make([]Message, 0, mailBlockLen)
	}
	base := len(pt.mailBlock)
	pt.mailBlock = pt.mailBlock[:base+k]
	return pt.mailBlock[base : base : base+k]
}

// clearMail empties p's mailbox buffer, zeroing consumed entries so the
// retained storage does not pin delivered payloads past the local step.
func (pt *procTable) clearMail(p ProcID) {
	m := pt.mail[p]
	for i := range m {
		m[i] = Message{}
	}
	pt.mail[p] = m[:0]
}
