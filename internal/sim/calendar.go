package sim

// calendar holds the in-flight messages of a run, bucketed by delivery
// step. It is the storage half of the event index: the scheduler's heap
// holds one deliverySlot entry per live bucket, pushed when add creates
// the bucket.
//
// Bucket slices are recycled through a free list: take hands a bucket to
// the engine, release returns its storage. Once a run has warmed up —
// its live-bucket count and bucket sizes have peaked — delivery allocates
// nothing: map cells are reused by Go's runtime after deletion, and the
// free list supplies pre-grown slices.
type calendar struct {
	buckets map[Step][]Message
	free    [][]Message
}

func (c *calendar) init() {
	c.buckets = make(map[Step][]Message)
}

// add appends m to the bucket at step at, creating it if needed, and
// reports whether it was created — the caller's cue to push the bucket's
// deliverySlot entry onto the scheduler heap (exactly once per bucket).
func (c *calendar) add(at Step, m Message) (created bool) {
	b, ok := c.buckets[at]
	if !ok {
		created = true
		if n := len(c.free); n > 0 {
			b = c.free[n-1]
			c.free[n-1] = nil
			c.free = c.free[:n-1]
		}
	}
	c.buckets[at] = append(b, m)
	return created
}

// take removes and returns the bucket at step at, or nil. The caller must
// hand the slice back through release when done with it.
func (c *calendar) take(at Step) []Message {
	b, ok := c.buckets[at]
	if !ok {
		return nil
	}
	delete(c.buckets, at)
	return b
}

// release recycles a bucket obtained from take. Entries are zeroed so the
// free list does not pin delivered payloads past their run.
func (c *calendar) release(b []Message) {
	for i := range b {
		b[i] = Message{}
	}
	c.free = append(c.free, b[:0])
}
