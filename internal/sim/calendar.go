package sim

// imessage is an in-flight message in the calendar's internal form: sender
// and recipient as 4-byte indexes (newEngine guards N < 2³¹) and the
// payload as a packed run-table ref instead of a boxed interface value. Its
// delivery step is the key of the bucket holding it, so it is not stored.
// At 24 bytes against Message's 48 — and, crucially, with no pointers —
// the calendar's peak-in-flight storage halves and drops out of GC scans
// entirely. The engine materializes a Message (boxed payload and all) only
// at delivery, when the copy lands in the recipient's mailbox.
type imessage struct {
	from, to int32
	ref      int64 // packed payload ref: table index << 32 | slot (engine.go)
	sentAt   Step
}

// calBucket is the in-flight messages of one delivery step. Buckets live
// behind a pointer so that appending to one costs a single map lookup —
// the old value-slice map paid lookup + store per add, the hottest pair of
// map operations in the whole engine.
type calBucket struct {
	msgs []imessage
}

// calendar holds the in-flight messages of a run, bucketed by delivery
// step. It is the storage half of the event index: the scheduler's heap
// holds one delivery-mark entry per live bucket, pushed when add creates
// the bucket.
//
// Two things keep steady-state insertion cheap and allocation-free:
//
//   - A one-entry MRU cache (lastAt/lastB): a commit phase inserts runs of
//     messages with the same delivery step (every draft of a process shares
//     t + d_p, and processes overwhelmingly share d), so consecutive adds
//     skip the map entirely.
//
//   - Recycling with a growth floor: take hands a bucket to the engine,
//     release returns its storage, and maxLen tracks the largest bucket the
//     run has seen. A bucket that must grow jumps straight to that
//     high-water mark instead of doubling through it — a dense 10⁶-process
//     step otherwise re-pays the full realloc-and-copy ladder whenever the
//     free list is cold.
type calendar struct {
	buckets map[Step]*calBucket
	free    []*calBucket

	lastAt Step
	lastB  *calBucket

	maxLen int
}

func (c *calendar) init() {
	c.buckets = make(map[Step]*calBucket)
	c.lastB = nil
}

// add appends m to the bucket at step at, creating it if needed, and
// reports whether it was created — the caller's cue to push the bucket's
// delivery mark onto the scheduler heap (exactly once per bucket).
func (c *calendar) add(at Step, m imessage) (created bool) {
	b := c.lastB
	if b == nil || at != c.lastAt {
		var ok bool
		b, ok = c.buckets[at]
		if !ok {
			b = c.newBucket(at)
			created = true
		}
		c.lastAt, c.lastB = at, b
	}
	if len(b.msgs) == cap(b.msgs) {
		c.grow(b, 1)
	}
	b.msgs = append(b.msgs, m)
	return created
}

// addRun appends a run of messages sharing one delivery step, reserving
// the space in a single growth step. It is the shard merge's bulk
// insertion path; created has the same meaning as add's.
func (c *calendar) addRun(at Step, msgs []imessage) (created bool) {
	if len(msgs) == 0 {
		return false
	}
	b := c.lastB
	if b == nil || at != c.lastAt {
		var ok bool
		b, ok = c.buckets[at]
		if !ok {
			b = c.newBucket(at)
			created = true
		}
		c.lastAt, c.lastB = at, b
	}
	if cap(b.msgs)-len(b.msgs) < len(msgs) {
		c.grow(b, len(msgs))
	}
	b.msgs = append(b.msgs, msgs...)
	return created
}

// grow reallocates b's storage for need more entries: at least doubled, at
// least the run's high-water bucket length.
func (c *calendar) grow(b *calBucket, need int) {
	newCap := 2 * cap(b.msgs)
	if min := len(b.msgs) + need; newCap < min {
		newCap = min
	}
	if newCap < c.maxLen {
		newCap = c.maxLen
	}
	if newCap < 16 {
		newCap = 16
	}
	ns := make([]imessage, len(b.msgs), newCap)
	copy(ns, b.msgs)
	b.msgs = ns
}

// take removes and returns the bucket's messages at step at, or nil. The
// caller must hand the bucket back through release when done with it.
func (c *calendar) take(at Step) *calBucket {
	b, ok := c.buckets[at]
	if !ok {
		return nil
	}
	delete(c.buckets, at)
	if c.lastB == b {
		c.lastB = nil
	}
	if len(b.msgs) > c.maxLen {
		c.maxLen = len(b.msgs)
	}
	return b
}

// release recycles a bucket obtained from take.
func (c *calendar) release(b *calBucket) {
	b.msgs = b.msgs[:0]
	c.free = append(c.free, b)
}

// newBucket installs an empty bucket at step at, reusing freed storage.
func (c *calendar) newBucket(at Step) *calBucket {
	var b *calBucket
	if n := len(c.free); n > 0 {
		b = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		b = &calBucket{}
	}
	c.buckets[at] = b
	return b
}
