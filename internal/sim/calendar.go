package sim

// imessage is an in-flight message in the calendar's internal form: sender
// and recipient as 4-byte indexes (newEngine guards N < 2³¹) and the
// payload as a run-table ref instead of a boxed interface value. Its
// delivery step is the key of the bucket holding it, so it is not stored.
// At 24 bytes against Message's 48 — and, crucially, with no pointers —
// the calendar's peak-in-flight storage halves and drops out of GC scans
// entirely. The engine materializes a Message (boxed payload and all) only
// at delivery, when the copy lands in the recipient's mailbox.
type imessage struct {
	from, to int32
	ref      int32 // payload-table slot (intern.go)
	sentAt   Step
}

// calendar holds the in-flight messages of a run, bucketed by delivery
// step. It is the storage half of the event index: the scheduler's heap
// holds one delivery-mark entry per live bucket, pushed when add creates
// the bucket.
//
// Bucket slices are recycled through a free list: take hands a bucket to
// the engine, release returns its storage. Once a run has warmed up —
// its live-bucket count and bucket sizes have peaked — delivery allocates
// nothing: map cells are reused by Go's runtime after deletion, and the
// free list supplies pre-grown slices. Buckets are pointer-free, so
// recycling needs no zeroing.
type calendar struct {
	buckets map[Step][]imessage
	free    [][]imessage
}

func (c *calendar) init() {
	c.buckets = make(map[Step][]imessage)
}

// add appends m to the bucket at step at, creating it if needed, and
// reports whether it was created — the caller's cue to push the bucket's
// delivery mark onto the scheduler heap (exactly once per bucket).
func (c *calendar) add(at Step, m imessage) (created bool) {
	b, ok := c.buckets[at]
	if !ok {
		created = true
		if n := len(c.free); n > 0 {
			b = c.free[n-1]
			c.free[n-1] = nil
			c.free = c.free[:n-1]
		}
	}
	c.buckets[at] = append(b, m)
	return created
}

// take removes and returns the bucket at step at, or nil. The caller must
// hand the slice back through release when done with it.
func (c *calendar) take(at Step) []imessage {
	b, ok := c.buckets[at]
	if !ok {
		return nil
	}
	delete(c.buckets, at)
	return b
}

// release recycles a bucket obtained from take.
func (c *calendar) release(b []imessage) {
	c.free = append(c.free, b[:0])
}
