// Package oracle is a deliberately naive reference implementation of the
// simulation semantics of Section II-A, used as the differential-testing
// oracle for the production engine in internal/sim.
//
// Where the production engine earns its speed with an indexed event
// scheduler, pooled delivery buckets, and incrementally maintained
// counters, this engine recomputes everything the slow, obvious way:
// the next event time is found by an O(N) scan over all processes plus a
// scan over the in-flight map, schedulability and quiescence are decided
// by fresh scans, and the in-flight message set is a plain
// map[Step][]Message with no pooling. The two implementations share only
// the public sim types (Config, Outcome, Protocol, Adversary, System) and
// the seed-derivation contract (sim.ProcRNG, sim.AdversaryRNG); every
// scheduling and bookkeeping decision is made independently, so a
// divergence between them is evidence that one of the engines — in
// practice, the optimized one after a refactor — no longer implements the
// paper's semantics.
//
// Run must produce an Outcome bit-identical to sim.Run for every
// deterministic configuration, including all Stats counters except the
// three that are implementation artifacts rather than semantics:
// Stats.Wall (wall-clock), and Stats.HeapPushes/HeapPops (the production
// scheduler's heap traffic; this engine has no heap and leaves them 0).
// internal/simtest.DiffOutcomes normalizes exactly those fields.
//
// Outcome-neutral knobs are ignored: Workers (always serial), Trace,
// Sample, Cancel, and MaxWall. The oracle compares deterministic complete
// executions only.
package oracle

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"github.com/ugf-sim/ugf/internal/sim"
)

// Run executes one simulation to quiescence (or cutoff) under the naive
// reference semantics and returns its Outcome. It mirrors sim.Run's
// validation; see the package comment for the fields in which the result
// may legitimately differ from the production engine.
func Run(cfg sim.Config) (sim.Outcome, error) {
	e, err := newOracle(cfg)
	if err != nil {
		return sim.Outcome{}, err
	}
	e.run()
	return e.outcome(), nil
}

type oracle struct {
	cfg       sim.Config
	n         int
	horizon   sim.Step
	maxEvents int64

	now   sim.Step
	procs []sim.Process
	adv   sim.AdversaryInstance

	awake     []bool // false for sleeping AND crashed processes
	crashed   []bool
	omitted   []bool
	delta     []sim.Step
	delay     []sim.Step
	anchor    []sim.Step
	lastCrash []sim.Step // step of the most recent crash (0: never crashed)

	pending  [][]sim.Message
	inflight map[sim.Step][]omsg // the entire "calendar": one plain map

	sent     []int64
	lastSend []sim.Step
	sendLog  []sim.SendRecord
	outboxes []sim.Outbox

	// Fault-model state, mirroring the engine's semantics (not its code):
	// partition classes, downed directed links, and the per-message fault
	// plan. Rolls go through the shared pure hash sim.FaultPlan.Roll, the
	// one deliberate sharing point — the roll is part of the semantics (a
	// seeded fault pattern), not an engine implementation choice.
	faults   *sim.FaultPlan
	class    []int32
	linkDown map[int64]struct{}

	// graph is the live communication graph, built by the shared
	// sim.NewGraph constructor — like FaultPlan.Roll, the edge set is
	// part of the semantics (a seeded graph), not an implementation
	// choice, so both engines construct it identically. nil until a
	// topology or the first adversary edge edit requires one.
	graph *sim.Graph

	msgTotal    int64
	crashCount  int
	crashesEver int
	eventCount  int64
	inFlightCt  int64
	horizonHit  bool

	// Stall detection, mirroring the engine's event-window rule.
	stallWindow int64
	stallSig    int64
	stallBase   int64
	stalled     bool

	st         sim.Stats
	kinds      map[string]int64
	statsEvery sim.Step
	interval   sim.IntervalStats
}

// omsg is one in-flight message plus its fault markers: dup flags the
// extra copy of a duplicated delivery, corrupt a message the receiver
// will detect and discard at delivery.
type omsg struct {
	m            sim.Message
	dup, corrupt bool
}

// linkKey packs a directed link into the linkDown set's key.
func linkKey(from, to sim.ProcID) int64 {
	return int64(from)<<32 | int64(to)
}

func newOracle(cfg sim.Config) (*oracle, error) {
	switch {
	case cfg.N < 1:
		return nil, fmt.Errorf("oracle: N = %d, need N ≥ 1", cfg.N)
	case cfg.F < 0 || cfg.F >= cfg.N:
		return nil, fmt.Errorf("oracle: F = %d, need 0 ≤ F < N = %d", cfg.F, cfg.N)
	case cfg.Protocol == nil:
		return nil, errors.New("oracle: Config.Protocol is required")
	case cfg.Horizon < 0:
		return nil, fmt.Errorf("oracle: Horizon = %d, need ≥ 0", cfg.Horizon)
	case cfg.MaxEvents < 0:
		return nil, fmt.Errorf("oracle: MaxEvents = %d, need ≥ 0", cfg.MaxEvents)
	case cfg.StallWindow < 0:
		return nil, fmt.Errorf("oracle: StallWindow = %d, need ≥ 0", cfg.StallWindow)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.Topology != nil {
		if err := cfg.Topology.Validate(); err != nil {
			return nil, err
		}
	}
	n := cfg.N
	e := &oracle{
		cfg: cfg, n: n,
		horizon: cfg.Horizon, maxEvents: cfg.MaxEvents,
		awake: make([]bool, n), crashed: make([]bool, n), omitted: make([]bool, n),
		delta: make([]sim.Step, n), delay: make([]sim.Step, n), anchor: make([]sim.Step, n),
		lastCrash: make([]sim.Step, n),
		pending:   make([][]sim.Message, n),
		inflight:  make(map[sim.Step][]omsg),
		sent:      make([]int64, n), lastSend: make([]sim.Step, n),
		outboxes:    make([]sim.Outbox, n),
		kinds:       make(map[string]int64),
		statsEvery:  cfg.StatsEvery,
		stallWindow: cfg.StallWindow,
	}
	if cfg.Faults.Active() {
		plan := *cfg.Faults
		e.faults = &plan
	}
	if cfg.Topology.Active() {
		e.graph = sim.NewGraph(cfg.Topology, n)
	}
	if e.horizon == 0 {
		e.horizon = sim.DefaultHorizon
	}
	if e.maxEvents == 0 {
		e.maxEvents = sim.DefaultMaxEvents
	}
	envs := make([]sim.Env, n)
	for p := 0; p < n; p++ {
		e.awake[p] = true
		e.delta[p] = 1
		e.delay[p] = 1
		e.outboxes[p] = sim.NewOutbox(sim.ProcID(p), n)
		envs[p] = sim.Env{ID: sim.ProcID(p), N: n, F: cfg.F, RNG: sim.ProcRNG(cfg.Seed, sim.ProcID(p))}
	}
	e.procs = cfg.Protocol.New(envs)
	if len(e.procs) != n {
		return nil, fmt.Errorf("oracle: protocol %q built %d processes, want %d",
			cfg.Protocol.Name(), len(e.procs), n)
	}
	if cfg.Adversary != nil {
		e.adv = cfg.Adversary.New(n, cfg.F, sim.AdversaryRNG(cfg.Seed))
	}
	return e, nil
}

func (e *oracle) run() {
	if e.adv != nil {
		e.adv.Init(sim.NewView(e), sim.NewControl(e))
	}
	for !e.quiescent() {
		t, ok := e.nextEventTime()
		if !ok {
			e.horizonHit = true // unreachable, mirrored from the engine
			break
		}
		if t > e.horizon || e.eventCount > e.maxEvents {
			e.horizonHit = true
			break
		}
		if e.stallWindow > 0 {
			// Same progress-signature rule as the engine, checked at the
			// same point, over the same deterministic counters — the two
			// implementations stall on the identical event.
			sig := e.st.Deliveries + e.st.Sleeps + e.st.Wakes + e.st.Crashes + e.st.Recoveries
			if sig != e.stallSig {
				e.stallSig = sig
				e.stallBase = e.eventCount
			} else if e.eventCount-e.stallBase >= e.stallWindow {
				e.stalled = true
				e.horizonHit = true
				break
			}
		}
		e.now = t
		e.st.ActiveSteps++
		if e.statsEvery > 0 && t >= e.interval.Start+e.statsEvery {
			e.closeInterval(t)
		}
		if e.adv != nil {
			events := e.sendLog
			e.sendLog = nil
			e.adv.Observe(t, events, sim.NewView(e), sim.NewControl(e))
		}
		e.deliver(t)
		e.localSteps(t)
	}
	if e.statsEvery > 0 {
		e.closeInterval(e.now + 1)
	}
}

// quiescent recomputes the engine's three quiescence counters by scan:
// no correct process awake, no undelivered mailbox message, nothing in
// flight to a correct process.
func (e *oracle) quiescent() bool {
	for p := 0; p < e.n; p++ {
		if e.awake[p] || len(e.pending[p]) > 0 {
			return false
		}
	}
	for _, bucket := range e.inflight {
		for _, im := range bucket {
			// Pre-crash residue does not block quiescence: a message sent
			// before its receiver's last crash was discarded (with its
			// accounting) at crash time, even if the receiver has since
			// recovered — it only remains here until its delivery step
			// formally drops it.
			if !e.crashed[im.m.To] && im.m.SentAt >= e.lastCrash[im.m.To] {
				return false
			}
		}
	}
	return true
}

// nextEventTime scans all N processes for the earliest local-step
// boundary of a schedulable process, and the whole in-flight map for the
// earliest delivery. Buckets bound for crashed processes still count:
// their delivery step is an active step at which the adversary observes
// and the messages are dropped.
func (e *oracle) nextEventTime() (sim.Step, bool) {
	best, found := sim.Step(0), false
	take := func(t sim.Step) {
		if !found || t < best {
			best, found = t, true
		}
	}
	for p := 0; p < e.n; p++ {
		if e.schedulable(sim.ProcID(p)) {
			take(e.nextBoundary(sim.ProcID(p)))
		}
	}
	for at := range e.inflight {
		take(at)
	}
	return best, found
}

// schedulable: not crashed, and awake or holding undelivered mail.
func (e *oracle) schedulable(p sim.ProcID) bool {
	return !e.crashed[p] && (e.awake[p] || len(e.pending[p]) > 0)
}

// nextBoundary returns p's earliest local-step boundary strictly after
// the current step: anchor + k·δ with k ≥ 1.
func (e *oracle) nextBoundary(p sim.ProcID) sim.Step {
	a, d := e.anchor[p], e.delta[p]
	min := e.now + 1
	if a+d >= min {
		return a + d
	}
	k := (min - a + d - 1) / d
	return a + k*d
}

// boundaryAt reports whether p has a local-step boundary exactly at t.
func (e *oracle) boundaryAt(p sim.ProcID, t sim.Step) bool {
	a := e.anchor[p]
	return t > a && (t-a)%e.delta[p] == 0
}

func (e *oracle) deliver(t sim.Step) {
	bucket, ok := e.inflight[t]
	if !ok {
		return
	}
	delete(e.inflight, t)
	for _, im := range bucket {
		e.inFlightCt--
		m := im.m
		if e.crashed[m.To] || m.SentAt < e.lastCrash[m.To] {
			// Crashed receiver, or pre-crash residue reaching a process
			// that has since recovered: the network discarded it.
			e.st.DroppedCrashed++
			continue
		}
		if im.corrupt {
			// Detected at delivery and discarded unread.
			e.st.CorruptDrops++
			continue
		}
		e.st.Deliveries++
		if im.dup {
			e.st.DupDeliveries++
		}
		if e.statsEvery > 0 {
			e.interval.Deliveries++
		}
		e.pending[m.To] = append(e.pending[m.To], m)
	}
	if tp := e.totalPending(); tp > e.st.MaxPending {
		e.st.MaxPending = tp
	}
}

// linkBlocked reports whether the directed link from→to is severed, by a
// partition-class mismatch or an explicit DropLink.
func (e *oracle) linkBlocked(from, to sim.ProcID) bool {
	if e.class != nil && e.class[from] != e.class[to] {
		return true
	}
	if len(e.linkDown) == 0 {
		return false
	}
	_, down := e.linkDown[linkKey(from, to)]
	return down
}

func (e *oracle) totalPending() int64 {
	var tp int64
	for p := 0; p < e.n; p++ {
		tp += int64(len(e.pending[p]))
	}
	return tp
}

func (e *oracle) localSteps(t sim.Step) {
	var due []sim.ProcID
	for p := 0; p < e.n; p++ {
		if e.schedulable(sim.ProcID(p)) && e.boundaryAt(sim.ProcID(p), t) {
			due = append(due, sim.ProcID(p))
		}
	}
	// Same phase discipline as the engine: every Step call of the global
	// step runs before any Commit, so protocols with shared run state read
	// the previous step's published view.
	for _, p := range due {
		e.outboxes[p] = sim.NewOutbox(p, e.n)
		e.procs[p].Step(t, e.pending[p], &e.outboxes[p])
	}
	for _, p := range due {
		e.commitOne(t, p)
	}
}

func (e *oracle) commitOne(t sim.Step, p sim.ProcID) {
	e.anchor[p] = t
	e.pending[p] = nil
	e.eventCount++
	e.st.LocalSteps++

	for _, d := range e.outboxes[p].Drain() {
		e.msgTotal++
		e.sent[p]++
		e.lastSend[p] = t
		e.eventCount++
		kind := "?"
		if d.Payload != nil {
			kind = d.Payload.Kind()
		}
		e.kinds[kind]++
		if e.statsEvery > 0 {
			e.interval.Sends++
			e.interval.DelayHist[delayBucket(e.delay[p])]++
		}
		deliverAt := t + e.delay[p]
		if e.adv != nil {
			e.sendLog = append(e.sendLog, sim.SendRecord{From: p, To: d.To, SentAt: t, DeliverAt: deliverAt})
		}
		if e.graph != nil && !e.graph.Live(p, d.To) {
			// Same check, same position as the engine: a dead edge blocks
			// the send before any crash/omission/link verdict.
			e.st.BlockedSends++
			continue
		}
		if e.crashed[d.To] || e.omitted[p] {
			if e.crashed[d.To] {
				e.st.DroppedCrashed++
			} else {
				e.st.OmittedSends++
			}
			continue
		}
		if e.linkBlocked(p, d.To) {
			e.st.DroppedLink++
			continue
		}
		fault := sim.FaultNone
		if e.faults != nil {
			fault = e.faults.Roll(p, d.To, t, e.sent[p])
			if fault == sim.FaultDrop {
				e.st.DroppedLink++
				continue
			}
		}
		msg := sim.Message{From: p, To: d.To, SentAt: t, DeliverAt: deliverAt, Payload: d.Payload}
		e.inflight[deliverAt] = append(e.inflight[deliverAt], omsg{m: msg, corrupt: fault == sim.FaultCorrupt})
		e.inFlightCt++
		if e.inFlightCt > e.st.MaxInFlight {
			e.st.MaxInFlight = e.inFlightCt
		}
		if fault == sim.FaultDuplicate {
			e.inflight[deliverAt] = append(e.inflight[deliverAt], omsg{m: msg, dup: true})
			e.inFlightCt++
			if e.inFlightCt > e.st.MaxInFlight {
				e.st.MaxInFlight = e.inFlightCt
			}
		}
	}

	if c, ok := e.procs[p].(sim.Committer); ok {
		c.Commit(t)
	}

	asleep := e.procs[p].Asleep()
	switch {
	case asleep && e.awake[p]:
		e.awake[p] = false
		e.st.Sleeps++
		if e.statsEvery > 0 {
			e.interval.Sleeps++
		}
	case !asleep && !e.awake[p]:
		e.awake[p] = true
		e.st.Wakes++
		if e.statsEvery > 0 {
			e.interval.Wakes++
		}
	}
}

func (e *oracle) closeInterval(boundary sim.Step) {
	iv := &e.interval
	if iv.Sends != 0 || iv.Deliveries != 0 || iv.Sleeps != 0 || iv.Wakes != 0 || iv.Crashes != 0 || iv.Recoveries != 0 {
		iv.End = boundary
		iv.AwakeCorrect = e.awakeCount()
		iv.InFlight = e.inFlightCt
		e.st.Intervals = append(e.st.Intervals, *iv)
	}
	e.interval = sim.IntervalStats{Start: boundary}
}

func (e *oracle) awakeCount() int {
	n := 0
	for p := 0; p < e.n; p++ {
		if e.awake[p] {
			n++
		}
	}
	return n
}

// delayBucket mirrors the engine's log₂ delay histogram bucketing.
func delayBucket(d sim.Step) int {
	b := bits.Len64(uint64(d)) - 1
	if b < 0 {
		b = 0
	}
	if max := len(sim.IntervalStats{}.DelayHist) - 1; b > max {
		b = max
	}
	return b
}

func (e *oracle) outcome() sim.Outcome {
	o := sim.Outcome{
		Protocol:   e.cfg.Protocol.Name(),
		Adversary:  "none",
		N:          e.n,
		F:          e.cfg.F,
		Seed:       e.cfg.Seed,
		Quiescence: e.now,
		Messages:   e.msgTotal,
		Crashed:    e.crashCount,
		HorizonHit: e.horizonHit,
		Stalled:    e.stalled,
	}
	if e.cfg.Adversary != nil {
		o.Adversary = e.cfg.Adversary.Name()
		o.Strategy = e.adv.Label()
	}
	for p := 0; p < e.n; p++ {
		if e.crashed[p] {
			continue
		}
		if e.lastSend[p] > o.TEnd {
			o.TEnd = e.lastSend[p]
		}
		if e.delta[p] > o.DeltaMax {
			o.DeltaMax = e.delta[p]
		}
		if e.delay[p] > o.DelayMax {
			o.DelayMax = e.delay[p]
		}
	}
	if norm := o.DeltaMax + o.DelayMax; norm > 0 {
		o.Time = float64(o.TEnd) / float64(norm)
	}
	o.Gathered = e.gathered()
	if e.cfg.KeepPerProcess {
		o.PerProcessMsgs = append([]int64(nil), e.sent...)
	}
	st := e.st
	st.Events = e.eventCount
	st.Sends = e.msgTotal
	for kind, count := range e.kinds {
		st.MessagesByKind = append(st.MessagesByKind, sim.KindCount{Kind: kind, Count: count})
	}
	sort.Slice(st.MessagesByKind, func(i, j int) bool {
		return st.MessagesByKind[i].Kind < st.MessagesByKind[j].Kind
	})
	o.Stats = st
	return o
}

func (e *oracle) gathered() bool {
	for p := 0; p < e.n; p++ {
		if e.crashed[p] {
			continue
		}
		for q := 0; q < e.n; q++ {
			if q == p || e.crashed[q] {
				continue
			}
			if !e.procs[p].Knows(sim.ProcID(q)) {
				return false
			}
		}
	}
	return true
}

// The adversary-facing sim.System implementation. Semantics are mirrored
// from Definition II.5, not from the production engine's code: Crash
// enforces the budget and discards the victim's mailbox, SetDelta
// re-anchors the local-step schedule at the current step, SetDelay
// affects future sends only.

// NumProcs implements sim.System.
func (e *oracle) NumProcs() int { return e.n }

// CrashBudget implements sim.System.
func (e *oracle) CrashBudget() int { return e.cfg.F }

// Now implements sim.System.
func (e *oracle) Now() sim.Step { return e.now }

// Crashed implements sim.System.
func (e *oracle) Crashed(p sim.ProcID) bool { return e.crashed[p] }

// Asleep implements sim.System.
func (e *oracle) Asleep(p sim.ProcID) bool { return !e.crashed[p] && !e.awake[p] }

// SentCount implements sim.System.
func (e *oracle) SentCount(p sim.ProcID) int64 { return e.sent[p] }

// Delta implements sim.System.
func (e *oracle) Delta(p sim.ProcID) sim.Step { return e.delta[p] }

// Delay implements sim.System.
func (e *oracle) Delay(p sim.ProcID) sim.Step { return e.delay[p] }

// CrashCount implements sim.System.
func (e *oracle) CrashCount() int { return e.crashCount }

// CrashesEver implements sim.System.
func (e *oracle) CrashesEver() int { return e.crashesEver }

// Crash implements sim.System. The budget check runs against cumulative
// crash events, matching the engine: recoveries do not refund it.
func (e *oracle) Crash(p sim.ProcID) bool {
	if p < 0 || int(p) >= e.n || e.crashed[p] || e.crashesEver >= e.cfg.F {
		return false
	}
	e.crashed[p] = true
	e.crashCount++
	e.crashesEver++
	e.lastCrash[p] = e.now
	e.st.Crashes++
	if e.statsEvery > 0 {
		e.interval.Crashes++
	}
	e.awake[p] = false
	e.pending[p] = nil
	return true
}

// Recover implements sim.System: revive a crashed process at the current
// step, re-anchoring its local-step schedule. Messages sent to p before
// the crash stay lost (the lastCrash residue rule in deliver/quiescent);
// whether p resumes awake is the protocol's call, exactly as in the
// engine.
func (e *oracle) Recover(p sim.ProcID, amnesia bool) bool {
	if p < 0 || int(p) >= e.n || !e.crashed[p] {
		return false
	}
	e.crashed[p] = false
	e.crashCount--
	e.st.Recoveries++
	if e.statsEvery > 0 {
		e.interval.Recoveries++
	}
	e.anchor[p] = e.now
	if amnesia {
		if f, ok := e.procs[p].(sim.Forgetter); ok {
			f.Forget()
		}
	}
	if !e.procs[p].Asleep() {
		e.awake[p] = true
	}
	return true
}

// SetDelta implements sim.System.
func (e *oracle) SetDelta(p sim.ProcID, v sim.Step) {
	if p < 0 || int(p) >= e.n {
		panic("oracle: SetDelta on process out of range")
	}
	if v < 1 {
		panic("oracle: SetDelta with non-positive step time")
	}
	e.st.DeltaRewrites++
	e.delta[p] = v
	e.anchor[p] = e.now
}

// SetDelay implements sim.System.
func (e *oracle) SetDelay(p sim.ProcID, v sim.Step) {
	if p < 0 || int(p) >= e.n {
		panic("oracle: SetDelay on process out of range")
	}
	if v < 1 {
		panic("oracle: SetDelay with non-positive delivery time")
	}
	e.st.DelayRewrites++
	e.delay[p] = v
}

// SetOmitFrom implements sim.System.
func (e *oracle) SetOmitFrom(p sim.ProcID, omit bool) {
	if p < 0 || int(p) >= e.n {
		panic("oracle: SetOmitFrom on process out of range")
	}
	e.st.OmitRewrites++
	e.omitted[p] = omit
}

// SetClass implements sim.System: partition-class assignment, lazily
// allocated like the engine's.
func (e *oracle) SetClass(p sim.ProcID, c int) {
	if p < 0 || int(p) >= e.n {
		panic("oracle: SetClass on process out of range")
	}
	if c < 0 {
		panic("oracle: SetClass with negative class")
	}
	if e.class == nil {
		e.class = make([]int32, e.n)
	}
	e.st.LinkRewrites++
	e.class[p] = int32(c)
}

// DropLink implements sim.System.
func (e *oracle) DropLink(from, to sim.ProcID) {
	if from < 0 || int(from) >= e.n || to < 0 || int(to) >= e.n {
		panic("oracle: DropLink on process out of range")
	}
	if e.linkDown == nil {
		e.linkDown = make(map[int64]struct{})
	}
	e.st.LinkRewrites++
	e.linkDown[linkKey(from, to)] = struct{}{}
}

// HealLink implements sim.System.
func (e *oracle) HealLink(from, to sim.ProcID) {
	if from < 0 || int(from) >= e.n || to < 0 || int(to) >= e.n {
		panic("oracle: HealLink on process out of range")
	}
	e.st.LinkRewrites++
	delete(e.linkDown, linkKey(from, to))
}

// EdgeLive implements sim.System.
func (e *oracle) EdgeLive(a, b sim.ProcID) bool {
	if a < 0 || int(a) >= e.n || b < 0 || int(b) >= e.n {
		panic("oracle: EdgeLive on process out of range")
	}
	return e.graph == nil || e.graph.Live(a, b)
}

// AddEdge implements sim.System, mirroring the engine's lazy
// complete-base materialization and rewrite counting (no traces: the
// oracle never traces).
func (e *oracle) AddEdge(a, b sim.ProcID) bool {
	if a < 0 || int(a) >= e.n || b < 0 || int(b) >= e.n {
		panic("oracle: AddEdge on process out of range")
	}
	if e.graph == nil {
		e.graph = sim.NewGraph(nil, e.n)
	}
	if !e.graph.Add(a, b) {
		return false
	}
	e.st.TopologyRewrites++
	return true
}

// RemoveEdge implements sim.System.
func (e *oracle) RemoveEdge(a, b sim.ProcID) bool {
	if a < 0 || int(a) >= e.n || b < 0 || int(b) >= e.n {
		panic("oracle: RemoveEdge on process out of range")
	}
	if e.graph == nil {
		e.graph = sim.NewGraph(nil, e.n)
	}
	if !e.graph.Remove(a, b) {
		return false
	}
	e.st.TopologyRewrites++
	return true
}
