package oracle_test

import (
	"testing"

	"github.com/ugf-sim/ugf/internal/adversary"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/sim/oracle"
	"github.com/ugf-sim/ugf/internal/simtest"
)

// TestOracleMatchesEngine sweeps every registered protocol against every
// registered adversary at small N and asserts that the production engine
// and the naive reference engine produce identical outcomes (up to
// simtest.Normalize). The heavy randomized version of this comparison
// lives in internal/simtest; this sweep is the cheap deterministic core
// that runs under -short and pins every protocol×adversary pairing.
func TestOracleMatchesEngine(t *testing.T) {
	type dims struct {
		n, f       int
		seed       uint64
		statsEvery sim.Step
		keepPer    bool
	}
	cases := []dims{
		{n: 1, f: 0, seed: 1},
		{n: 3, f: 1, seed: 2, keepPer: true},
		{n: 11, f: 3, seed: 3, statsEvery: 64},
	}
	for _, pname := range gossip.Names() {
		for _, aname := range adversary.Names() {
			for _, d := range cases {
				cfg := sim.Config{
					N:              d.n,
					F:              d.f,
					Protocol:       gossip.MustByName(pname),
					Adversary:      adversary.MustByName(aname),
					Seed:           d.seed,
					StatsEvery:     d.statsEvery,
					KeepPerProcess: d.keepPer,
				}
				got, err := sim.Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s n=%d: engine: %v", pname, aname, d.n, err)
				}
				want, err := oracle.Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s n=%d: oracle: %v", pname, aname, d.n, err)
				}
				if diffs := simtest.DiffOutcomes(got, want); len(diffs) != 0 {
					t.Errorf("%s/%s n=%d f=%d seed=%d statsEvery=%d: engine and oracle diverge:",
						pname, aname, d.n, d.f, d.seed, d.statsEvery)
					for _, diff := range diffs {
						t.Errorf("  %s", diff)
					}
				}
			}
		}
	}
}

// TestOracleRejectsBadConfigs pins the oracle's config validation to the
// engine's: both must reject exactly the same configurations.
func TestOracleRejectsBadConfigs(t *testing.T) {
	proto := gossip.MustByName("push-pull")
	bad := []sim.Config{
		{N: 0, Protocol: proto},
		{N: 3, F: -1, Protocol: proto},
		{N: 3, F: 3, Protocol: proto},
		{N: 3},
		{N: 3, Protocol: proto, Horizon: -1},
		{N: 3, Protocol: proto, MaxEvents: -1},
	}
	for i, cfg := range bad {
		if _, err := sim.Run(cfg); err == nil {
			t.Errorf("case %d: engine accepted bad config %+v", i, cfg)
		}
		if _, err := oracle.Run(cfg); err == nil {
			t.Errorf("case %d: oracle accepted bad config %+v", i, cfg)
		}
	}
}
