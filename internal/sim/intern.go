package sim

import "unsafe"

// Payload interning.
//
// The delivery path used to carry the boxed Payload interface value inside
// every in-flight Message — 16 bytes of interface header per copy, pinned
// in calendar buckets for the full flight time, re-scanned by the GC, and
// re-boxed at every fan-out. The run's payload table replaces that with
// small-integer handles: the Outbox stages the distinct payload values of
// one local step, the commit phase interns each staged value into the table
// exactly once, and everything downstream — calendar buckets, delivery,
// drop accounting — moves 4-byte refs. The boxed value is materialized
// again only at the protocol boundary, when a delivery lands in a mailbox
// as a Message, so protocols (and the naive oracle, which never sees the
// table) are untouched.
//
// Slot lifetime: intern creates a slot with a zero reference count; the
// commit loop increments it once per calendar copy that survives the
// crash/omission drop checks; delivery (or the dropped-at-crashed path)
// decrements it, and the slot is recycled through the free list the moment
// its count returns to zero. Staged payloads whose every send was dropped
// are swept back immediately after the commit loop. A slot therefore lives
// exactly as long as calendar entries point at it, the table's footprint is
// bounded by the number of *distinct* payloads in flight (one slot for a
// broadcast fan-out of N−1 copies), and steady-state interning allocates
// nothing.

// nilPayloadRef is never stored; refs are always valid slot indexes. It is
// the "unresolved" marker of the commit phase's staging-index scratch.
const nilPayloadRef int32 = -1

// payloadSlot is one interned payload: the boxed value, its live calendar
// reference count, and the run-table index of its kind string (so per-send
// kind accounting is an integer increment, not a string probe).
type payloadSlot struct {
	val  Payload
	refs int32
	kind int32
}

// payloadTable is the per-run payload arena. The zero value is ready to
// use; it grows to the run's peak distinct-payloads-in-flight and then
// recycles slots through the free list.
type payloadTable struct {
	slots []payloadSlot
	free  []int32
}

// intern stores val in a fresh slot with a zero reference count and
// returns its ref. kind is the engine's kind-table index for val's Kind().
func (t *payloadTable) intern(val Payload, kind int32) int32 {
	var ref int32
	if n := len(t.free); n > 0 {
		ref = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.slots = append(t.slots, payloadSlot{})
		ref = int32(len(t.slots) - 1)
	}
	s := &t.slots[ref]
	s.val, s.refs, s.kind = val, 0, kind
	return ref
}

// incref records one more calendar copy of the slot.
func (t *payloadTable) incref(ref int32) { t.slots[ref].refs++ }

// release drops one calendar copy; the last release recycles the slot and
// unpins the boxed value.
func (t *payloadTable) release(ref int32) {
	s := &t.slots[ref]
	if s.refs--; s.refs <= 0 {
		s.val = nil
		t.free = append(t.free, ref)
	}
}

// sweep recycles a freshly interned slot that ended the commit loop with
// no calendar copies (every send of its payload was dropped).
func (t *payloadTable) sweep(ref int32) {
	if s := &t.slots[ref]; s.refs == 0 {
		s.val = nil
		t.free = append(t.free, ref)
	}
}

// val returns the boxed payload of a live slot.
func (t *payloadTable) val(ref int32) Payload { return t.slots[ref].val }

// kindOf returns the kind-table index of a live slot.
func (t *payloadTable) kindOf(ref int32) int32 { return t.slots[ref].kind }

// live reports how many slots are currently referenced — the distinct
// payloads in flight. Exposed for the intern-table regression tests.
func (t *payloadTable) live() int { return len(t.slots) - len(t.free) }

// samePayload reports whether two Payload interface values are *identical*:
// same dynamic type and same data word. It is the Outbox's dedup predicate.
// Identical headers imply equal values, so there are no false positives;
// separately boxed but equal values compare false, which merely costs a
// duplicate slot, never correctness. Pre-boxed package-level payloads (and
// all zero-size payloads, which share the runtime's zero base) are what
// make fan-outs collapse to one slot.
func samePayload(a, b Payload) bool {
	return *(*[2]uintptr)(unsafe.Pointer(&a)) == *(*[2]uintptr)(unsafe.Pointer(&b))
}
