package sim

import "unsafe"

// Payload interning.
//
// The delivery path used to carry the boxed Payload interface value inside
// every in-flight Message — 16 bytes of interface header per copy, pinned
// in calendar buckets for the full flight time, re-scanned by the GC, and
// re-boxed at every fan-out. The run's payload table replaces that with
// small-integer handles: the Outbox stages the distinct payload values of
// one local step, the commit phase interns each staged value into the table,
// and everything downstream — calendar buckets, delivery, drop accounting —
// moves integer refs. The boxed value is materialized again only at the
// protocol boundary, when a delivery lands in a mailbox as a Message, so
// protocols (and the naive oracle, which never sees the table) are
// untouched.
//
// Slot lifetime: intern resolves a staged value to a slot — reusing the
// most recently interned slot when the value is interface-identical to it
// (the cross-process twin of the Outbox's staging memo: a step in which
// every process broadcasts the same pre-boxed payload occupies one slot,
// not N) — and the commit loop adds the number of calendar copies that
// survived the crash/omission drop checks in one batched update per
// (payload, slot), not one increment per copy. Delivery (or the
// dropped-at-crashed path) decrements the count, and the slot is recycled
// through the free list the moment it returns to zero. Staged payloads
// whose every send was dropped are swept back immediately after the commit
// loop. A slot therefore lives exactly as long as calendar entries point at
// it, the table's footprint is bounded by the number of *distinct* payloads
// in flight, and steady-state interning allocates nothing.
//
// Each table also memoizes the kind-table index of its most recently
// interned value (memoKind): the owner resolves Payload.Kind() only on the
// interns that miss the memo, so per-send and even per-local-step kind
// accounting is an integer increment, not a string probe.

// payloadSlot is one interned payload: the boxed value and its live
// calendar reference count.
type payloadSlot struct {
	val  Payload
	refs int32
}

// payloadTable is a payload arena — the engine keeps one for serial commits
// and one per shard lane. Call init before use (it arms the memo and
// presizes the storage).
type payloadTable struct {
	slots []payloadSlot
	free  []int32

	// memoSlot is the slot of the most recently interned value, or -1, and
	// memoKind the kind-table index its owner resolved for it. intern
	// validates a hit against the slot's current value, so a slot that was
	// released (val nil) or recycled for another payload can never be
	// served stale.
	memoSlot int32
	memoKind int32
}

// internTablePresize bounds how much slot storage init reserves up front.
// A slot per process covers the bounded-fanout protocols at paper scale
// (the experiment grids top out in the low thousands), and the cap
// matters: presizing by N unconditionally puts tens of kilobytes of
// pointer-holding, GC-scanned slot storage on every big-N run — measured
// as a double-digit ring/10k wall regression — while beyond the cap the
// growth ladder amortizes to a handful of doublings per run.
const internTablePresize = 1 << 10

// init presizes the table for a run of n processes. Small runs used to pay
// the slot and free-list growth chain on every run (the round-robin
// benchmark regression); one right-sized allocation each is cheaper than
// the doubling sequence.
func (t *payloadTable) init(n int) {
	hint := n
	if hint > internTablePresize {
		hint = internTablePresize
	}
	if hint < 16 {
		hint = 16
	}
	t.slots = make([]payloadSlot, 0, hint)
	t.free = make([]int32, 0, hint)
	t.memoSlot = -1
}

// intern resolves val to a slot and reports whether the slot is fresh —
// the caller's cue to resolve val's kind and store it in memoKind. A memo
// hit returns the existing slot of an interface-identical live value; refs
// are untouched either way (the commit loop adds surviving copies in one
// batch via addRefs).
func (t *payloadTable) intern(val Payload) (slot int32, fresh bool) {
	if s := t.memoSlot; s >= 0 && val != nil && samePayload(val, t.slots[s].val) {
		return s, false
	}
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.slots = append(t.slots, payloadSlot{})
		slot = int32(len(t.slots) - 1)
	}
	s := &t.slots[slot]
	s.val, s.refs = val, 0
	if val != nil {
		t.memoSlot = slot
	} else {
		t.memoSlot = -1
	}
	return slot, true
}

// addRefs records n more calendar copies of the slot in one update.
func (t *payloadTable) addRefs(slot int32, n int32) { t.slots[slot].refs += n }

// release drops one calendar copy; the last release recycles the slot and
// unpins the boxed value.
func (t *payloadTable) release(slot int32) {
	s := &t.slots[slot]
	if s.refs--; s.refs <= 0 {
		s.val = nil
		if t.memoSlot == slot {
			t.memoSlot = -1
		}
		t.free = append(t.free, slot)
	}
}

// sweep recycles a slot that ended the commit loop with no calendar copies
// (every send of its payload was dropped).
func (t *payloadTable) sweep(slot int32) {
	if s := &t.slots[slot]; s.refs == 0 {
		s.val = nil
		if t.memoSlot == slot {
			t.memoSlot = -1
		}
		t.free = append(t.free, slot)
	}
}

// val returns the boxed payload of a live slot.
func (t *payloadTable) val(slot int32) Payload { return t.slots[slot].val }

// live reports how many slots are currently referenced — the distinct
// payloads in flight. Exposed for the intern-table regression tests.
func (t *payloadTable) live() int { return len(t.slots) - len(t.free) }

// samePayload reports whether two Payload interface values are *identical*:
// same dynamic type and same data word. It is the dedup predicate of both
// the Outbox staging memo and the table's intern memo. Identical headers
// imply equal values, so there are no false positives; separately boxed but
// equal values compare false, which merely costs a duplicate slot, never
// correctness. Pre-boxed package-level payloads (and all zero-size
// payloads, which share the runtime's zero base) are what make fan-outs
// collapse to one slot.
func samePayload(a, b Payload) bool {
	return *(*[2]uintptr)(unsafe.Pointer(&a)) == *(*[2]uintptr)(unsafe.Pointer(&b))
}
