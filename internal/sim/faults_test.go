package sim

import (
	"reflect"
	"testing"

	"github.com/ugf-sim/ugf/internal/xrand"
)

// ---- test adversaries -----------------------------------------------------

// isolateAdv puts every process in its own partition class during Init:
// the totally severed network. Nothing can ever be delivered.
type isolateAdv struct{}

func (isolateAdv) Name() string { return "isolate" }
func (isolateAdv) New(n, f int, rng *xrand.RNG) AdversaryInstance {
	return isolateInstance{}
}

type isolateInstance struct{}

func (isolateInstance) Init(view View, ctl Control) {
	for p := 0; p < view.N(); p++ {
		ctl.SetClass(ProcID(p), p)
	}
}
func (isolateInstance) Observe(Step, []SendRecord, View, Control) {}
func (isolateInstance) Label() string                             { return "" }

// outageAdv crashes victim at crashAt and recovers it at recoverAt; it
// records the Control return values for the test to assert on.
type outageAdv struct {
	victim             ProcID
	crashAt, recoverAt Step
	amnesia            bool
	crashOK, recoverOK *bool
	budgetAfter        *int
	recrash            bool // immediately try a second crash after recovery
	recrashOK          *bool
}

func (outageAdv) Name() string { return "outage" }
func (a outageAdv) New(n, f int, rng *xrand.RNG) AdversaryInstance {
	return &outageInstance{a: a}
}

type outageInstance struct {
	a       outageAdv
	crashed bool
	done    bool
}

func (oi *outageInstance) Init(View, Control) {}
func (oi *outageInstance) Observe(now Step, _ []SendRecord, view View, ctl Control) {
	if !oi.crashed && now >= oi.a.crashAt {
		ok := ctl.Crash(oi.a.victim)
		if oi.a.crashOK != nil {
			*oi.a.crashOK = ok
		}
		oi.crashed = true
	}
	if oi.crashed && !oi.done && now >= oi.a.recoverAt {
		ok := ctl.Recover(oi.a.victim, oi.a.amnesia)
		if oi.a.recoverOK != nil {
			*oi.a.recoverOK = ok
		}
		if oi.a.recrash {
			ok := ctl.Crash(oi.a.victim)
			if oi.a.recrashOK != nil {
				*oi.a.recrashOK = ok
			}
		}
		if oi.a.budgetAfter != nil {
			*oi.a.budgetAfter = ctl.BudgetLeft()
		}
		oi.done = true
	}
}
func (oi *outageInstance) Label() string { return "" }

// linkAdv downs the directed link from → to during Init and heals it at
// healAt (0: never).
type linkAdv struct {
	from, to ProcID
	healAt   Step
}

func (linkAdv) Name() string { return "link" }
func (a linkAdv) New(n, f int, rng *xrand.RNG) AdversaryInstance {
	return &linkInstance{a: a}
}

type linkInstance struct {
	a      linkAdv
	healed bool
}

func (li *linkInstance) Init(view View, ctl Control) {
	ctl.DropLink(li.a.from, li.a.to)
}
func (li *linkInstance) Observe(now Step, _ []SendRecord, view View, ctl Control) {
	if !li.healed && li.a.healAt > 0 && now >= li.a.healAt {
		ctl.HealLink(li.a.from, li.a.to)
		li.healed = true
	}
}
func (li *linkInstance) Label() string { return "" }

// ---- fault plan -----------------------------------------------------------

func TestFaultPlanParseRoundTrip(t *testing.T) {
	fp, err := ParseFaultPlan("drop=0.1, dup=0.05 ,corrupt=0.01,seed=7")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := &FaultPlan{Seed: 7, Drop: 0.1, Duplicate: 0.05, Corrupt: 0.01}
	if *fp != *want {
		t.Fatalf("parsed %+v, want %+v", fp, want)
	}
	again, err := ParseFaultPlan(fp.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", fp.String(), err)
	}
	if *again != *fp {
		t.Fatalf("round trip changed the plan: %+v → %q → %+v", fp, fp.String(), again)
	}
	if p, err := ParseFaultPlan("  "); err != nil || p != nil {
		t.Fatalf("blank spec: got (%v, %v), want (nil, nil)", p, err)
	}
	for _, bad := range []string{
		"drop", "warp=0.1", "drop=x", "seed=-1", "drop=-0.1", "drop=0.6,dup=0.6",
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

func TestFaultPlanRollIsPureAndBanded(t *testing.T) {
	fp := &FaultPlan{Seed: 42, Drop: 0.3, Duplicate: 0.2, Corrupt: 0.1}
	counts := map[LinkFault]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		v := fp.Roll(ProcID(i%7), ProcID(i%11), Step(i), int64(i))
		if v != fp.Roll(ProcID(i%7), ProcID(i%11), Step(i), int64(i)) {
			t.Fatal("Roll is not a pure function of its arguments")
		}
		counts[v]++
	}
	frac := func(f LinkFault) float64 { return float64(counts[f]) / trials }
	for _, c := range []struct {
		fault LinkFault
		want  float64
	}{
		{FaultDrop, 0.3}, {FaultDuplicate, 0.2}, {FaultCorrupt, 0.1}, {FaultNone, 0.4},
	} {
		if got := frac(c.fault); got < c.want-0.02 || got > c.want+0.02 {
			t.Errorf("fault %d frequency %.3f, want ≈ %.2f", c.fault, got, c.want)
		}
	}
}

func TestFaultPlanValidation(t *testing.T) {
	if err := (&FaultPlan{Drop: 0.5, Duplicate: 0.5, Corrupt: 0.1}).Validate(); err == nil {
		t.Error("probabilities summing over 1 validated")
	}
	if err := (&FaultPlan{Drop: -0.1}).Validate(); err == nil {
		t.Error("negative probability validated")
	}
	cfg := Config{N: 2, Protocol: silentProto{}, Faults: &FaultPlan{Drop: 2}}
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an invalid fault plan")
	}
	if _, err := Run(Config{N: 2, Protocol: silentProto{}, StallWindow: -1}); err == nil {
		t.Error("Run accepted a negative stall window")
	}
}

// ---- fault semantics ------------------------------------------------------

// TestDuplicateFaultDoublesDeliveries: with Duplicate = 1 every message is
// delivered twice, and the extra copies are all accounted in
// DupDeliveries.
func TestDuplicateFaultDoublesDeliveries(t *testing.T) {
	o, err := Run(Config{
		N: 6, Protocol: floodProto{}, Seed: 3,
		Faults: &FaultPlan{Duplicate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Stats.Sends == 0 {
		t.Fatal("flood sent nothing")
	}
	if o.Stats.Deliveries != 2*o.Stats.Sends {
		t.Errorf("Deliveries = %d, want 2×Sends = %d", o.Stats.Deliveries, 2*o.Stats.Sends)
	}
	if o.Stats.DupDeliveries != o.Stats.Sends {
		t.Errorf("DupDeliveries = %d, want Sends = %d", o.Stats.DupDeliveries, o.Stats.Sends)
	}
	if !o.Gathered {
		t.Error("duplicated flood failed to gather")
	}
}

// TestCorruptFaultDiscardsAtDelivery: with Corrupt = 1 every message
// travels the network but is discarded unread; nothing is ever delivered
// and the run still terminates.
func TestCorruptFaultDiscardsAtDelivery(t *testing.T) {
	o, err := Run(Config{
		N: 6, Protocol: floodProto{}, Seed: 3,
		Faults: &FaultPlan{Corrupt: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Stats.Deliveries != 0 {
		t.Errorf("Deliveries = %d, want 0 under total corruption", o.Stats.Deliveries)
	}
	if o.Stats.CorruptDrops != o.Stats.Sends {
		t.Errorf("CorruptDrops = %d, want Sends = %d", o.Stats.CorruptDrops, o.Stats.Sends)
	}
	if o.Gathered {
		t.Error("gathered with every message corrupted")
	}
	if o.HorizonHit {
		t.Error("corrupted flood failed to quiesce")
	}
}

// TestDropFaultLosesAtSend: with Drop = 1 every message is counted as
// sent but never enters the calendar.
func TestDropFaultLosesAtSend(t *testing.T) {
	o, err := Run(Config{
		N: 6, Protocol: floodProto{}, Seed: 3,
		Faults: &FaultPlan{Drop: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Stats.Deliveries != 0 || o.Stats.MaxInFlight != 0 {
		t.Errorf("Deliveries = %d MaxInFlight = %d, want 0/0 under total loss",
			o.Stats.Deliveries, o.Stats.MaxInFlight)
	}
	if o.Stats.DroppedLink != o.Stats.Sends {
		t.Errorf("DroppedLink = %d, want Sends = %d", o.Stats.DroppedLink, o.Stats.Sends)
	}
}

// TestDropLinkAndHeal: a downed directed link drops exactly the traffic
// it carries, and healing restores it.
func TestDropLinkAndHeal(t *testing.T) {
	// Never healed: 0 → 1 never arrives, so 1 never learns gossip 0.
	o, err := Run(Config{N: 3, Protocol: floodProto{}, Seed: 5, Adversary: linkAdv{from: 0, to: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if o.Stats.DroppedLink == 0 {
		t.Error("downed link dropped nothing")
	}
	if o.Gathered {
		t.Error("gathered despite a permanently downed link")
	}
	if o.Stats.LinkRewrites != 1 {
		t.Errorf("LinkRewrites = %d, want 1", o.Stats.LinkRewrites)
	}
}

// TestRecoverRetained: crash during dissemination, recover with state
// retained; the run must end with zero crashed processes and both
// lifecycle counters set.
func TestRecoverRetained(t *testing.T) {
	var crashOK, recoverOK bool
	o, err := Run(Config{
		N: 5, F: 1, Protocol: floodProto{ack: true}, Seed: 9,
		Adversary: outageAdv{victim: 2, crashAt: 1, recoverAt: 2, crashOK: &crashOK, recoverOK: &recoverOK},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !crashOK || !recoverOK {
		t.Fatalf("crashOK=%v recoverOK=%v, want both", crashOK, recoverOK)
	}
	if o.Crashed != 0 {
		t.Errorf("Outcome.Crashed = %d, want 0 after recovery", o.Crashed)
	}
	if o.Stats.Crashes != 1 || o.Stats.Recoveries != 1 {
		t.Errorf("Crashes=%d Recoveries=%d, want 1/1", o.Stats.Crashes, o.Stats.Recoveries)
	}
	if o.HorizonHit {
		t.Error("recovery run failed to quiesce")
	}
}

// TestRecoveryDoesNotRefundBudget: with F = 1, a crash–recover–crash
// sequence must refuse the second crash; CrashesEver backs the budget.
func TestRecoveryDoesNotRefundBudget(t *testing.T) {
	var recrashOK = true
	var budgetAfter = -1
	o, err := Run(Config{
		N: 4, F: 1, Protocol: floodProto{ack: true}, Seed: 11,
		Adversary: outageAdv{
			victim: 1, crashAt: 1, recoverAt: 3,
			recrash: true, recrashOK: &recrashOK, budgetAfter: &budgetAfter,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if recrashOK {
		t.Error("second crash accepted after recovery with F=1")
	}
	if budgetAfter != 0 {
		t.Errorf("BudgetLeft = %d after one crash with F=1, want 0", budgetAfter)
	}
	if o.Stats.Crashes != 1 || o.Crashed != 0 {
		t.Errorf("Crashes=%d Crashed=%d, want 1/0", o.Stats.Crashes, o.Crashed)
	}
}

// TestRecoverRefusals pins the refusal cases: out of range and not
// crashed.
func TestRecoverRefusals(t *testing.T) {
	e, err := newEngine(Config{N: 3, F: 1, Protocol: silentProto{}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.dispose()
	if e.Recover(0, false) {
		t.Error("Recover accepted a process that never crashed")
	}
	if e.Recover(-1, false) || e.Recover(3, false) {
		t.Error("Recover accepted an out-of-range process")
	}
	if !e.Crash(1) || !e.Recover(1, true) {
		t.Error("crash/recover of process 1 refused")
	}
	if e.Recover(1, true) {
		t.Error("Recover accepted an already-recovered process")
	}
}

// ---- stall detection ------------------------------------------------------

// TestStallDetectionFullPartition is the graceful-degradation regression:
// a never-sleeping protocol under a total partition makes no progress
// forever, and the stall detector must end the run as Stalled in a
// bounded number of events instead of spinning to MaxEvents — identically
// in serial and sharded execution.
func TestStallDetectionFullPartition(t *testing.T) {
	const window = 512
	cfg := Config{
		N: 8, Protocol: busyProto{}, Seed: 17,
		Adversary:   isolateAdv{},
		StallWindow: window,
	}
	o, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Stalled {
		t.Fatal("fully partitioned busy run did not report Stalled")
	}
	if !o.HorizonHit {
		t.Error("Stalled outcome must imply HorizonHit")
	}
	if o.Stats.Deliveries != 0 {
		t.Errorf("Deliveries = %d across a total partition", o.Stats.Deliveries)
	}
	// The detector fires within one active step of the window elapsing:
	// well under the default MaxEvents cutoff this run would otherwise hit.
	if limit := int64(window) + 64; o.Stats.Events > limit {
		t.Errorf("stalled after %d events, want ≤ %d", o.Stats.Events, limit)
	}
	for _, workers := range []int{2, 8} {
		scfg := cfg
		scfg.Workers = workers
		so, err := Run(scfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(o.StripWall(), so.StripWall()) {
			t.Errorf("workers=%d stalled outcome differs from serial", workers)
		}
	}
}

// TestStallWindowIgnoresProgress: a run that keeps making progress under
// an active stall window must terminate by quiescence, never Stalled.
func TestStallWindowIgnoresProgress(t *testing.T) {
	o, err := Run(Config{N: 16, Protocol: floodProto{ack: true}, Seed: 23, StallWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	if o.Stalled || o.HorizonHit {
		t.Errorf("Stalled=%v HorizonHit=%v on a quiescing run with a tight window",
			o.Stalled, o.HorizonHit)
	}
	if !o.Gathered {
		t.Error("flood failed to gather")
	}
}
