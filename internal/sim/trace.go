package sim

import "fmt"

// TraceKind classifies trace events.
type TraceKind uint8

// Trace event kinds emitted by the engine.
const (
	TraceSend      TraceKind = iota // Proc sent a message to Other
	TraceArrive                     // a message from Other arrived at Proc
	TraceLocalStep                  // Proc executed a local step
	TraceCrash                      // the adversary crashed Proc
	TraceSleep                      // Proc fell asleep
	TraceWake                       // Proc resumed after sleeping
	TraceAdversary                  // the adversary rewrote Proc's delta/delay (Note says which)
	TraceEnd                        // the run ended (Note: "quiescence", "stalled", "horizon" or "cancelled")
	TraceRecover                    // the adversary recovered crashed Proc (Note: "retain" or "amnesia")
	TraceDrop                       // a message from Other to Proc was dropped (Note says why)

	// traceKindCount is the number of trace kinds; keep it last.
	traceKindCount
)

// NumTraceKinds is the number of distinct TraceKind values.
const NumTraceKinds = int(traceKindCount)

var traceKindNames = [...]string{
	TraceSend:      "send",
	TraceArrive:    "arrive",
	TraceLocalStep: "step",
	TraceCrash:     "crash",
	TraceSleep:     "sleep",
	TraceWake:      "wake",
	TraceAdversary: "adversary",
	TraceEnd:       "end",
	TraceRecover:   "recover",
	TraceDrop:      "drop",
}

func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseTraceKind resolves a kind name ("send", "arrive", "step", "crash",
// "sleep", "wake", "adversary", "end", "recover", "drop") to its
// TraceKind. It is the inverse of TraceKind.String, for CLI filter flags.
func ParseTraceKind(name string) (TraceKind, bool) {
	for k, n := range traceKindNames {
		if n == name {
			return TraceKind(k), true
		}
	}
	return 0, false
}

// IsMessage reports whether the kind describes message traffic
// (TraceSend, TraceArrive, TraceDrop).
func (k TraceKind) IsMessage() bool {
	return k == TraceSend || k == TraceArrive || k == TraceDrop
}

// IsLifecycle reports whether the kind describes a process lifecycle
// transition (TraceSleep, TraceWake, TraceCrash, TraceRecover).
func (k TraceKind) IsLifecycle() bool {
	return k == TraceSleep || k == TraceWake || k == TraceCrash || k == TraceRecover
}

// IsAdversarial reports whether the kind is an adversary intervention
// (TraceCrash, TraceRecover, TraceAdversary).
func (k TraceKind) IsAdversarial() bool {
	return k == TraceCrash || k == TraceRecover || k == TraceAdversary
}

// KindMask is a bit set of TraceKinds, used by trace filters.
type KindMask uint16

// AllKinds is the mask accepting every trace kind.
const AllKinds = KindMask(1)<<traceKindCount - 1

// MaskOf builds a mask from the given kinds.
func MaskOf(kinds ...TraceKind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Has reports whether the mask contains k.
func (m KindMask) Has(k TraceKind) bool { return m&(1<<k) != 0 }

// String renders the mask as a comma-separated kind list.
func (m KindMask) String() string {
	if m == AllKinds {
		return "all"
	}
	s := ""
	for k := TraceKind(0); k < traceKindCount; k++ {
		if m.Has(k) {
			if s != "" {
				s += ","
			}
			s += k.String()
		}
	}
	return s
}

// TraceEvent is one observable engine event. Payload is set only for
// TraceSend and TraceArrive; Other is the peer process when meaningful
// and -1 otherwise.
type TraceEvent struct {
	Kind    TraceKind
	Step    Step
	Proc    ProcID
	Other   ProcID
	Payload Payload
	Note    string
}

func (ev TraceEvent) String() string {
	switch ev.Kind {
	case TraceSend, TraceArrive, TraceDrop:
		kind := "?"
		if ev.Payload != nil {
			kind = ev.Payload.Kind()
		}
		return fmt.Sprintf("t=%d %s %d<->%d %s", ev.Step, ev.Kind, ev.Proc, ev.Other, kind)
	case TraceAdversary, TraceEnd, TraceRecover:
		return fmt.Sprintf("t=%d %s p=%d %s", ev.Step, ev.Kind, ev.Proc, ev.Note)
	default:
		return fmt.Sprintf("t=%d %s p=%d", ev.Step, ev.Kind, ev.Proc)
	}
}

// TraceSink receives engine events. Implementations must be fast; the
// engine calls Event synchronously from the stepping loop. A nil sink in
// Config disables tracing entirely (zero overhead).
type TraceSink interface {
	Event(ev TraceEvent)
}

// Recorder is a TraceSink that appends every event to memory. It is meant
// for tests and for inspecting small runs programmatically; recording a
// large run allocates proportionally to its event count. For anything
// beyond a few million events, stream to disk instead with the JSONL sink
// of the sim/trace package (re-exported by the ugf facade), optionally
// behind a Filter.
type Recorder struct {
	Events []TraceEvent

	// counts is maintained by Event so Count is O(1), not O(events).
	counts [traceKindCount]int
}

// Event implements TraceSink.
func (r *Recorder) Event(ev TraceEvent) {
	r.Events = append(r.Events, ev)
	if int(ev.Kind) < len(r.counts) {
		r.counts[ev.Kind]++
	}
}

// Count returns the number of events of the given kind.
func (r *Recorder) Count(kind TraceKind) int {
	if int(kind) >= len(r.counts) {
		return 0
	}
	return r.counts[kind]
}

// FuncSink adapts a function to the TraceSink interface.
type FuncSink func(ev TraceEvent)

// Event implements TraceSink.
func (f FuncSink) Event(ev TraceEvent) { f(ev) }
