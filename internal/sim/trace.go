package sim

import "fmt"

// TraceKind classifies trace events.
type TraceKind uint8

// Trace event kinds emitted by the engine.
const (
	TraceSend      TraceKind = iota // Proc sent a message to Other
	TraceArrive                     // a message from Other arrived at Proc
	TraceLocalStep                  // Proc executed a local step
	TraceCrash                      // the adversary crashed Proc
	TraceSleep                      // Proc fell asleep
	TraceWake                       // Proc resumed after sleeping
	TraceAdversary                  // the adversary rewrote Proc's delta/delay (Note says which)
	TraceEnd                        // the run ended (Note: "quiescence" or "horizon")
)

var traceKindNames = [...]string{
	TraceSend:      "send",
	TraceArrive:    "arrive",
	TraceLocalStep: "step",
	TraceCrash:     "crash",
	TraceSleep:     "sleep",
	TraceWake:      "wake",
	TraceAdversary: "adversary",
	TraceEnd:       "end",
}

func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// TraceEvent is one observable engine event. Payload is set only for
// TraceSend and TraceArrive; Other is the peer process when meaningful
// and -1 otherwise.
type TraceEvent struct {
	Kind    TraceKind
	Step    Step
	Proc    ProcID
	Other   ProcID
	Payload Payload
	Note    string
}

func (ev TraceEvent) String() string {
	switch ev.Kind {
	case TraceSend, TraceArrive:
		kind := "?"
		if ev.Payload != nil {
			kind = ev.Payload.Kind()
		}
		return fmt.Sprintf("t=%d %s %d<->%d %s", ev.Step, ev.Kind, ev.Proc, ev.Other, kind)
	case TraceAdversary, TraceEnd:
		return fmt.Sprintf("t=%d %s p=%d %s", ev.Step, ev.Kind, ev.Proc, ev.Note)
	default:
		return fmt.Sprintf("t=%d %s p=%d", ev.Step, ev.Kind, ev.Proc)
	}
}

// TraceSink receives engine events. Implementations must be fast; the
// engine calls Event synchronously from the stepping loop. A nil sink in
// Config disables tracing entirely (zero overhead).
type TraceSink interface {
	Event(ev TraceEvent)
}

// Recorder is a TraceSink that appends every event to memory. It is meant
// for tests and for the ugfsim CLI on small runs; recording a large run
// will allocate proportionally to its event count.
type Recorder struct {
	Events []TraceEvent
}

// Event implements TraceSink.
func (r *Recorder) Event(ev TraceEvent) { r.Events = append(r.Events, ev) }

// Count returns the number of events of the given kind.
func (r *Recorder) Count(kind TraceKind) int {
	n := 0
	for _, ev := range r.Events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// FuncSink adapts a function to the TraceSink interface.
type FuncSink func(ev TraceEvent)

// Event implements TraceSink.
func (f FuncSink) Event(ev TraceEvent) { f(ev) }
