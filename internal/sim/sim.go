// Package sim implements the discrete-step, partially synchronous,
// crash-prone message-passing system of Section II of "The Universal Gossip
// Fighter" (IPPS 2022).
//
// # Execution model
//
// Time proceeds in global steps t = 1, 2, 3, …  Every process ρ has a local
// step time δ_ρ and a delivery time d_ρ, both measured in global steps and
// both rewritable online by an adversary. Process ρ takes a local step at
// the boundaries anchor_ρ + k·δ_ρ (k ≥ 1); the anchor starts at 0 and is
// reset whenever the adversary rewrites δ_ρ. At a local step the process
// first delivers every message that has arrived since its previous local
// step, then runs its protocol handler, which may emit sends; a message
// sent at step t by ρ arrives at step t + d_ρ (d_ρ read at send time).
//
// Crashed processes take no local steps and deliver nothing; messages they
// already sent still arrive. An adversary observes the system at the start
// of every step at which anything can happen and may crash up to F
// processes and rewrite any δ_ρ or d_ρ (Definition II.5).
//
// # Sleeping and quiescence
//
// A process that has nothing left to do reports itself asleep
// (Definition IV.2): it stops sending until a delivered message makes its
// protocol resume. A run ends at quiescence — every correct process asleep,
// no undelivered message bound for a correct process — or at the configured
// horizon, whichever comes first.
//
// # Determinism
//
// A run is a pure function of (Config, Seed). Every process, the adversary
// and the engine own independent deterministic random streams derived from
// the seed, so the parallel stepping mode (Config.Workers > 1) produces
// bit-identical outcomes to the serial one.
package sim

import "fmt"

// ProcID identifies a process; valid values are 0 … N-1. Because every
// process starts with exactly one unique gossip, ProcID doubles as the
// identifier of the gossip that process originated.
type ProcID int

// Step counts global steps. Step 0 is "before the execution starts";
// the first global step is 1.
type Step int64

// Payload is the protocol-defined content of a message.
//
// Payload values may be delivered to several recipients and are shared, not
// copied: implementations and receivers must treat a payload as immutable
// after it has been handed to Outbox.Send.
type Payload interface {
	// Kind returns a short stable label for the payload type, used in
	// traces and debugging output (for example "push" or "pull-req").
	Kind() string
}

// Message is a payload in transit between two processes.
type Message struct {
	From      ProcID
	To        ProcID
	SentAt    Step // global step at which the sender's local step emitted it
	DeliverAt Step // global step at which it arrives at the receiver
	Payload   Payload
}

// SendRecord is the adversary-visible record of one send event. It
// deliberately omits the payload: the adversaries of the paper react to
// who talks to whom and when, not to message contents.
type SendRecord struct {
	From      ProcID
	To        ProcID
	SentAt    Step
	DeliverAt Step
}

func (m Message) String() string {
	kind := "?"
	if m.Payload != nil {
		kind = m.Payload.Kind()
	}
	return fmt.Sprintf("%d->%d %s sent@%d arrive@%d", m.From, m.To, kind, m.SentAt, m.DeliverAt)
}
