package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/ugf-sim/ugf/internal/xrand"
)

// Link-fault injection.
//
// A FaultPlan describes a lossy network: every message that survives the
// crash/omission/link checks of the send path rolls one deterministic coin
// that decides whether the network drops it, duplicates its delivery, or
// corrupts it in transit. The roll is a pure hash of (plan seed, sender,
// receiver, send step, sender sequence number) — no generator state is
// consumed — so the serial commit loop, the sharded per-lane commit, and
// the naive oracle all reach the identical verdict for the identical send
// without sharing a stream. That is what lets faults ride through the
// parallel commit path untouched: lanes roll independently and still agree
// bit for bit with serial execution.
//
// Fault semantics, fixed across engine and oracle:
//
//   - Drop: the send counts in M(O) and the send log, but never enters the
//     calendar (Stats.DroppedLink).
//   - Duplicate: the network delivers the message twice at the same step;
//     the extra copy is flagged so stats (Stats.DupDeliveries) and traces
//     distinguish it. Both copies count as Deliveries.
//   - Corrupt: the message travels the network and occupies an in-flight
//     slot for its full delay, but the receiver detects the corruption at
//     delivery and discards it without reading it (the checksum model:
//     corruption is detected loss, never a forged payload —
//     Stats.CorruptDrops). Protocols never observe a corrupted payload.

// LinkFault is the verdict of one FaultPlan roll.
type LinkFault uint8

const (
	// FaultNone delivers the message normally.
	FaultNone LinkFault = iota
	// FaultDrop loses the message in the network.
	FaultDrop
	// FaultDuplicate delivers the message twice.
	FaultDuplicate
	// FaultCorrupt delivers a detectably-corrupted message, discarded by
	// the receiver.
	FaultCorrupt
)

// seedDomainFault tags the fault plan's hash rolls in the plan-seed
// derivation chain, mirroring the engine's seedDomainProc/seedDomainAdv.
const seedDomainFault uint64 = 3

// Exported derivation domains for transport-level interposers. The live
// runtime's network interposer (internal/live) rolls its verdicts from the
// same splitmix chain the fault plan uses, each family of decisions under
// its own domain tag so live-only injections (extra delay, per-step
// omission, crash schedules) can never collide with — or perturb — the
// link-fault rolls the simulator shares. DomainLinkFault is the fault
// plan's own tag, exported so alternative runtimes can document that
// FaultPlan.Roll and their rolls hang off one derivation tree.
const (
	DomainLinkFault uint64 = seedDomainFault
	DomainLiveDelay uint64 = 5
	DomainLiveOmit  uint64 = 6
	DomainLiveCrash uint64 = 7
)

// FaultRoll is the exported fault-hash seam: the deterministic uniform
// [0, 1) variate behind FaultPlan.Roll, as a pure function of (seed,
// domain, path). Every transport — the sim engine's commit lanes, the
// naive oracle, and the live runtime's interposer — derives its verdicts
// through this one function, which is what makes a fault pattern
// reproducible across execution substrates: same seed, same domain, same
// path, same verdict, no generator state anywhere.
func FaultRoll(seed, domain uint64, path ...uint64) float64 {
	args := make([]uint64, 0, 8)
	args = append(args, domain)
	args = append(args, path...)
	u := xrand.Derive(seed, args...)
	return float64(u>>11) / (1 << 53)
}

// FaultPlan is a deterministic per-link fault model (Config.Faults).
// Probabilities are per message; they must be non-negative and sum to at
// most 1. The zero plan injects nothing.
type FaultPlan struct {
	// Seed drives the per-message rolls. Two runs with the same Config
	// (including the same plan seed) see the identical fault pattern;
	// changing only Seed here re-rolls the faults without touching any
	// protocol or adversary randomness.
	Seed uint64
	// Drop is the probability a message is lost in the network.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Corrupt is the probability a message is corrupted in transit and
	// discarded at delivery.
	Corrupt float64
}

// Validate reports whether the plan's probabilities are well-formed.
func (fp *FaultPlan) Validate() error {
	switch {
	case math.IsNaN(fp.Drop) || math.IsNaN(fp.Duplicate) || math.IsNaN(fp.Corrupt):
		// NaN slips through ordered comparisons (every one is false), so it
		// would validate, never fire, and break String round-trips.
		return fmt.Errorf("sim: FaultPlan probabilities must not be NaN (drop=%v dup=%v corrupt=%v)",
			fp.Drop, fp.Duplicate, fp.Corrupt)
	case fp.Drop < 0 || fp.Duplicate < 0 || fp.Corrupt < 0:
		return fmt.Errorf("sim: FaultPlan probabilities must be ≥ 0 (drop=%v dup=%v corrupt=%v)",
			fp.Drop, fp.Duplicate, fp.Corrupt)
	case fp.Drop+fp.Duplicate+fp.Corrupt > 1:
		return fmt.Errorf("sim: FaultPlan probabilities sum to %v > 1",
			fp.Drop+fp.Duplicate+fp.Corrupt)
	}
	return nil
}

// Active reports whether the plan can ever inject a fault. A nil or
// all-zero plan is inactive, and engines skip the per-send roll entirely.
func (fp *FaultPlan) Active() bool {
	return fp != nil && (fp.Drop > 0 || fp.Duplicate > 0 || fp.Corrupt > 0)
}

// Roll returns the plan's verdict for one send: message number seq from
// from to to, sent at step sentAt. seq is the sender's post-increment send
// count, which makes the roll unique per message even when a process sends
// the same peer twice in one step. Roll is a pure function — callers on
// concurrent shard lanes may invoke it freely.
func (fp *FaultPlan) Roll(from, to ProcID, sentAt Step, seq int64) LinkFault {
	// The variate comes from the exported FaultRoll seam so the live
	// runtime's interposer, rolling the same (seed, domain, path), reaches
	// the identical verdict for the identical send.
	x := FaultRoll(fp.Seed, seedDomainFault,
		uint64(from), uint64(to), uint64(sentAt), uint64(seq))
	switch {
	case x < fp.Drop:
		return FaultDrop
	case x < fp.Drop+fp.Duplicate:
		return FaultDuplicate
	case x < fp.Drop+fp.Duplicate+fp.Corrupt:
		return FaultCorrupt
	}
	return FaultNone
}

// String renders the plan in the form ParseFaultPlan accepts.
func (fp *FaultPlan) String() string {
	return fmt.Sprintf("drop=%v,dup=%v,corrupt=%v,seed=%d",
		fp.Drop, fp.Duplicate, fp.Corrupt, fp.Seed)
}

// ParseFaultPlan parses a comma-separated fault spec such as
// "drop=0.1,dup=0.05,corrupt=0.01,seed=7". Every key is optional; unknown
// keys and malformed values are errors. An empty spec yields a nil plan
// (no faults).
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	fp := &FaultPlan{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("sim: fault spec %q: want key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			u, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("sim: fault spec seed %q: %v", val, err)
			}
			fp.Seed = u
		case "drop", "dup", "corrupt":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("sim: fault spec %s %q: %v", key, val, err)
			}
			switch key {
			case "drop":
				fp.Drop = f
			case "dup":
				fp.Duplicate = f
			case "corrupt":
				fp.Corrupt = f
			}
		default:
			return nil, fmt.Errorf("sim: fault spec: unknown key %q", key)
		}
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	return fp, nil
}

// Packed calendar refs (engine.payloadVal/releaseRef) reserve two high
// bits as per-copy fault markers: the duplicate bit flags the extra copy
// of a duplicated delivery, the corrupt bit a message discarded at
// delivery. Table indexes top out at maxShardLanes+1, far below bit 32,
// so the markers never collide with the (table, slot) packing. Every ref
// consumer masks them off before resolving.
const (
	refCorruptBit int64 = 1 << 61
	refDupBit     int64 = 1 << 62
	refFaultMask  int64 = refCorruptBit | refDupBit
)

// linkKey packs a directed link (from, to) into the linkDown set's key.
func linkKey(from, to ProcID) int64 {
	return int64(from)<<32 | int64(to)
}
