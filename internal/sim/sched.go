package sim

import (
	"math/bits"
	"slices"
)

// Indexed event scheduler.
//
// The engine advances a run event by event: the next global step at which
// anything can happen is the minimum over (a) the earliest in-flight
// delivery and (b) the earliest local-step boundary of any schedulable
// process — one that is neither crashed nor asleep with an empty mailbox.
// The scheduler maintains that minimum incrementally instead of rescanning
// all N processes per step.
//
// The structure is a two-level calendar: a binary min-heap holds one entry
// per *distinct* event time — a boundary-bucket marker, a delivery-bucket
// marker, or both — and each boundary bucket lists the processes scheduled
// at that time. Dense steps (thousands of processes due at once, the
// no-adversary regime where every δ_ρ = 1) therefore cost one heap pop
// plus O(due) bucket appends, while sparse steps (Strategy 2.k.l delaying
// processes by τᵏ⁺ˡ) cost O(log #times). Due sets come out sorted in
// ascending process order — the deterministic commit order the engine's
// parallel mode requires, and what keeps this rewrite outcome-preserving
// bit for bit against the scanning engine (see the golden-outcome tests).
//
// Rescheduling never edits buckets in place. Each process carries a single
// authoritative key, key[p] — the boundary it is currently scheduled at, or
// noSchedule — and (re)scheduling appends a fresh bucket entry; an entry
// whose time no longer matches its process's key is stale and is dropped at
// collection. Each bucket counts its live entries so that a fully stale
// bucket is discarded without ever surfacing as a phantom event time (an
// adversary must not observe a step at which nothing can happen). The
// invariant between engine events:
//
//	key[p] != noSchedule  ⟺  p is schedulable
//	                        (¬crashed[p] ∧ (awake[p] ∨ pendingCount[p] > 0))
//
// and for scheduled p, key[p] is p's earliest boundary after the current
// step. The engine maintains it at every transition: local-step commits,
// δ rewrites, crashes, sleep/wake, and mailbox arrivals. Bucket slices are
// recycled through a free list, so steady-state scheduling allocates
// nothing.

// Heap-entry tags. boundaryMark sorts before deliveryMark at equal times;
// the order is irrelevant (both are consumed by the same engine step) but
// must be fixed for determinism.
const (
	boundaryMark int32 = -2 // a boundary bucket of due processes opens
	deliveryMark int32 = -1 // a delivery bucket of in-flight messages opens
)

// noSchedule is the key of a process with no scheduled boundary.
const noSchedule Step = -1

// schedEvent is one heap entry: a bucket marker at step at.
type schedEvent struct {
	at   Step
	mark int32
}

// less orders entries by (at, mark), ascending.
func (a schedEvent) less(b schedEvent) bool {
	return a.at < b.at || (a.at == b.at && a.mark < b.mark)
}

// boundaryBucket is the set of processes scheduled at one step. procs may
// hold stale entries (processes rescheduled elsewhere since the append);
// live counts the current ones. Entries are 4-byte indexes rather than
// ProcIDs: the no-adversary dense regime keeps a bucket of all N processes
// alive, and at N = 10⁶ the halved entry width is 4 MB off the hot set.
type boundaryBucket struct {
	procs []int32
	live  int
}

// scheduler is the engine's event index. The zero value is unusable; call
// init first.
type scheduler struct {
	heap    []schedEvent
	key     []Step
	buckets map[Step]*boundaryBucket
	freed   []*boundaryBucket

	// 1-entry bucket cache: commits overwhelmingly reschedule runs of
	// processes to the same step (now + δ with a shared δ), and the cache
	// turns those repeated lookups into a comparison.
	cacheAt Step
	cache   *boundaryBucket

	// pushes/pops count heap operations for Outcome.Stats — the engine's
	// scheduling work, independent of protocol cost.
	pushes int64
	pops   int64

	// dueBits is sortDue's scratch bitmap, grown once to the widest
	// due-set span and reused for the rest of the run.
	dueBits []uint64
}

func (s *scheduler) init(n int) {
	s.heap = make([]schedEvent, 0, 16)
	s.key = make([]Step, n)
	for p := range s.key {
		s.key[p] = noSchedule
	}
	s.buckets = make(map[Step]*boundaryBucket)
	s.cache = nil
	s.cacheAt = noSchedule
}

// scheduleAll schedules every process's first boundary at step at, in one
// pass: one heap push, one bucket sized exactly N. It is newEngine's bulk
// replacement for N scheduleProc calls and leaves the scheduler in the
// identical state (same keys, same live count, same push count) without
// the per-process cache probes or the bucket's append-growth ladder —
// measurable at N = 10⁶, where the old loop's doublings alone moved
// megabytes.
func (s *scheduler) scheduleAll(at Step) {
	n := len(s.key)
	b := s.newBucket(at)
	s.push(schedEvent{at: at, mark: boundaryMark})
	if cap(b.procs) < n {
		b.procs = make([]int32, 0, n)
	}
	b.procs = b.procs[:n]
	for p := 0; p < n; p++ {
		s.key[p] = at
		b.procs[p] = int32(p)
	}
	b.live = n
}

// scheduleProc (re)schedules p's next local-step boundary at step at,
// superseding any previous schedule.
func (s *scheduler) scheduleProc(p ProcID, at Step) {
	old := s.key[p]
	if old == at {
		return // same boundary; the existing bucket entry stands
	}
	if old != noSchedule {
		s.bucketAt(old).live--
	}
	s.key[p] = at
	b := s.bucketAt(at)
	if b == nil {
		b = s.newBucket(at)
		s.push(schedEvent{at: at, mark: boundaryMark})
	}
	b.procs = append(b.procs, int32(p))
	b.live++
}

// unscheduleProc removes p from the schedule. Its bucket entry becomes
// stale and is dropped at collection.
func (s *scheduler) unscheduleProc(p ProcID) {
	if old := s.key[p]; old != noSchedule {
		s.bucketAt(old).live--
		s.key[p] = noSchedule
	}
}

// scheduledAt returns p's scheduled boundary, or noSchedule.
func (s *scheduler) scheduledAt(p ProcID) Step { return s.key[p] }

// scheduleDelivery records that the delivery bucket at step at opens then.
// Callers push at most once per bucket, and a delivery bucket always holds
// at least one message, so delivery marks are never stale.
func (s *scheduler) scheduleDelivery(at Step) {
	s.push(schedEvent{at: at, mark: deliveryMark})
}

// next returns the earliest step holding any event. It discards fully
// stale boundary buckets from the top of the heap — their step would
// otherwise surface as an event time at which nothing can happen — but
// observable state is untouched, so callers may treat it as read-only.
func (s *scheduler) next() (Step, bool) {
	for len(s.heap) > 0 {
		top := s.heap[0]
		if top.mark == boundaryMark {
			if b := s.bucketAt(top.at); b.live <= 0 {
				s.pop()
				s.dropBucket(top.at, b)
				continue
			}
		}
		return top.at, true
	}
	return 0, false
}

// collectDue pops every event at step t (or, defensively, earlier) and
// appends the due processes to due in ascending process order, clearing
// their keys — the commit phase reschedules the ones that stay awake.
// Delivery marks are popped and discarded; the engine has already drained
// the message bucket by the time collectDue runs.
func (s *scheduler) collectDue(t Step, due []ProcID) []ProcID {
	for len(s.heap) > 0 && s.heap[0].at <= t {
		ev := s.pop()
		if ev.mark != boundaryMark {
			continue
		}
		b := s.bucketAt(ev.at)
		for _, q := range b.procs {
			if p := ProcID(q); s.key[p] == ev.at {
				s.key[p] = noSchedule
				due = append(due, p)
			}
		}
		s.dropBucket(ev.at, b)
	}
	// Bucket appends interleave commit batches and mailbox wake-ups, so
	// the bucket is only near-sorted; the engine needs ascending order.
	// Commits append in ascending order, so the no-wake-up common case is
	// already sorted and skips the sort entirely.
	if !slices.IsSorted(due) {
		s.sortDue(due)
	}
	return due
}

// sortDue sorts a due set ascending. Process IDs are unique (collectDue
// clears each key as it collects), so a dense set sorts in linear time by
// scattering into a bitmap over the [min, max] span and sweeping the set
// bits back out — on wake-up-heavy workloads the comparison sort here was
// a measurable slice of the whole run. Sparse sets (span much wider than
// the set) fall back to the comparison sort.
func (s *scheduler) sortDue(due []ProcID) {
	if len(due) < 32 {
		slices.Sort(due)
		return
	}
	minP, maxP := due[0], due[0]
	for _, p := range due[1:] {
		if p < minP {
			minP = p
		}
		if p > maxP {
			maxP = p
		}
	}
	span := int(maxP-minP) + 1
	if span > 512*len(due) {
		slices.Sort(due)
		return
	}
	words := (span + 63) / 64
	if cap(s.dueBits) < words {
		s.dueBits = make([]uint64, words)
	}
	bm := s.dueBits[:words]
	for i := range bm {
		bm[i] = 0
	}
	for _, p := range due {
		off := uint(p - minP)
		bm[off>>6] |= 1 << (off & 63)
	}
	out := due[:0]
	for w, word := range bm {
		base := ProcID(w<<6) + minP
		for word != 0 {
			out = append(out, base+ProcID(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// bucketAt returns the boundary bucket at step at, or nil.
func (s *scheduler) bucketAt(at Step) *boundaryBucket {
	if at == s.cacheAt {
		return s.cache
	}
	b := s.buckets[at]
	if b != nil {
		s.cacheAt, s.cache = at, b
	}
	return b
}

// newBucket installs an empty bucket at step at, reusing freed storage.
func (s *scheduler) newBucket(at Step) *boundaryBucket {
	var b *boundaryBucket
	if n := len(s.freed); n > 0 {
		b = s.freed[n-1]
		s.freed[n-1] = nil
		s.freed = s.freed[:n-1]
	} else {
		b = &boundaryBucket{}
	}
	s.buckets[at] = b
	s.cacheAt, s.cache = at, b
	return b
}

// dropBucket removes the bucket at step at and recycles its storage.
func (s *scheduler) dropBucket(at Step, b *boundaryBucket) {
	delete(s.buckets, at)
	if s.cacheAt == at {
		s.cacheAt, s.cache = noSchedule, nil
	}
	b.procs = b.procs[:0]
	b.live = 0
	s.freed = append(s.freed, b)
}

func (s *scheduler) push(ev schedEvent) {
	s.pushes++
	s.heap = append(s.heap, ev)
	h := s.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (s *scheduler) pop() schedEvent {
	s.pops++
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	s.heap = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l].less(h[smallest]) {
			smallest = l
		}
		if r < len(h) && h[r].less(h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}
