package sim

import (
	"strings"
	"testing"
)

// TestViewAccessors drives a run with an adversary that asserts every
// View accessor against ground truth it establishes itself.
func TestViewAccessors(t *testing.T) {
	checked := false
	adv := advFunc{
		name: "inspector",
		init: func(v View, c Control) {
			if v.N() != 6 || v.F() != 2 {
				t.Errorf("N/F = %d/%d, want 6/2", v.N(), v.F())
			}
			if v.Now() != 0 {
				t.Errorf("Now at init = %d, want 0", v.Now())
			}
			c.SetDelta(3, 4)
			c.SetDelay(3, 9)
			c.Crash(5)
		},
		observe: func(now Step, ev []SendRecord, v View, c Control) {
			if checked {
				return
			}
			checked = true
			if v.Now() != now {
				t.Errorf("Now = %d, want %d", v.Now(), now)
			}
			if !v.Crashed(5) || v.Crashed(0) {
				t.Error("Crashed view wrong")
			}
			if v.CorrectCount() != 5 {
				t.Errorf("CorrectCount = %d, want 5", v.CorrectCount())
			}
			if v.Delta(3) != 4 || v.Delay(3) != 9 {
				t.Errorf("Delta/Delay = %d/%d, want 4/9", v.Delta(3), v.Delay(3))
			}
			if v.Delta(0) != 1 || v.Delay(0) != 1 {
				t.Error("untouched process delays changed")
			}
			if v.Asleep(0) {
				t.Error("process 0 asleep before its first step")
			}
			if v.Asleep(5) {
				t.Error("crashed process reported asleep")
			}
			if v.SentCount(0) != 0 {
				t.Errorf("SentCount before any step = %d", v.SentCount(0))
			}
		},
	}
	o := mustRun(t, Config{N: 6, F: 2, Protocol: floodProto{}, Adversary: adv, Seed: 1})
	if !checked {
		t.Fatal("observe never ran")
	}
	if o.Crashed != 1 {
		t.Errorf("Crashed = %d", o.Crashed)
	}
}

func TestViewSentCountTracksSends(t *testing.T) {
	var sawSent int64 = -1
	adv := advFunc{
		name: "counter",
		observe: func(now Step, ev []SendRecord, v View, c Control) {
			if now == 2 {
				sawSent = v.SentCount(0)
			}
		},
	}
	mustRun(t, Config{N: 4, F: 0, Protocol: floodProto{}, Adversary: adv, Seed: 1})
	// Process 0 flooded 3 messages at step 1; at step 2 the view must
	// reflect that.
	if sawSent != 3 {
		t.Errorf("SentCount at step 2 = %d, want 3", sawSent)
	}
}

func TestControlPanics(t *testing.T) {
	adv := advFunc{name: "bad", init: func(v View, c Control) {
		mustPanic(t, "SetDelta out of range", func() { c.SetDelta(99, 2) })
		mustPanic(t, "SetDelta zero", func() { c.SetDelta(0, 0) })
		mustPanic(t, "SetDelay out of range", func() { c.SetDelay(-1, 2) })
		mustPanic(t, "SetDelay zero", func() { c.SetDelay(0, 0) })
		mustPanic(t, "SetOmitFrom out of range", func() { c.SetOmitFrom(99, true) })
	}}
	mustRun(t, Config{N: 3, F: 0, Protocol: silentProto{}, Adversary: adv, Seed: 1})
}

func TestCrashOutOfRangeRefused(t *testing.T) {
	adv := advFunc{name: "wild", init: func(v View, c Control) {
		if c.Crash(-1) || c.Crash(99) {
			t.Error("out-of-range crash accepted")
		}
	}}
	o := mustRun(t, Config{N: 3, F: 2, Protocol: silentProto{}, Adversary: adv, Seed: 1})
	if o.Crashed != 0 {
		t.Errorf("Crashed = %d, want 0", o.Crashed)
	}
}

func TestFuncSink(t *testing.T) {
	var kinds []TraceKind
	sink := FuncSink(func(ev TraceEvent) { kinds = append(kinds, ev.Kind) })
	mustRun(t, Config{N: 2, F: 0, Protocol: floodProto{}, Seed: 1, Trace: sink})
	if len(kinds) == 0 {
		t.Fatal("FuncSink received nothing")
	}
	if kinds[len(kinds)-1] != TraceEnd {
		t.Errorf("last event %v, want end", kinds[len(kinds)-1])
	}
}

func TestMessageString(t *testing.T) {
	m := Message{From: 1, To: 2, SentAt: 3, DeliverAt: 4, Payload: testPayload{kind: "x"}}
	s := m.String()
	for _, want := range []string{"1->2", "x", "sent@3", "arrive@4"} {
		if !strings.Contains(s, want) {
			t.Errorf("Message.String() = %q missing %q", s, want)
		}
	}
	if noPayload := (Message{From: 1, To: 2}).String(); !strings.Contains(noPayload, "?") {
		t.Errorf("payload-less message string = %q", noPayload)
	}
}

func TestParallelPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("protocol panic in parallel worker was swallowed")
		}
	}()
	Run(Config{N: 32, F: 0, Protocol: panicProto{at: 17}, Seed: 1, Workers: 4})
}

// panicProto panics inside the Step of one process — used to verify that
// worker panics surface instead of deadlocking the engine.
type panicProto struct{ at ProcID }

func (panicProto) Name() string { return "panic" }
func (p panicProto) New(envs []Env) []Process {
	return BuildEach(envs, func(env Env) Process {
		return &panicProc{id: env.ID, at: p.at}
	})
}

type panicProc struct {
	id, at ProcID
}

func (p *panicProc) Step(now Step, delivered []Message, out *Outbox) {
	if p.id == p.at {
		panic("boom")
	}
}
func (p *panicProc) Asleep() bool        { return false }
func (p *panicProc) Knows(g ProcID) bool { return g == p.id }
