package sim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ugf-sim/ugf/internal/xrand"
)

// Config fully describes one run. A run is a pure function of its Config
// (including Seed); the Workers knob changes only how fast the run
// executes, never its outcome.
type Config struct {
	// N is the number of processes (≥ 1).
	N int
	// F is the adversary's crash budget, 0 ≤ F < N. Protocols may also
	// read F (EARS dimensions its inactivity window with it).
	F int
	// Protocol builds the per-process state machines. Required.
	Protocol Protocol
	// Adversary attacks the run; nil means no adversary (the paper's
	// baseline: every δ_ρ = d_ρ = 1 and no crashes).
	Adversary Adversary
	// Seed determines every random choice of the run.
	Seed uint64

	// Horizon cuts off runs that have not quiesced by this global step.
	// 0 means DefaultHorizon. Hitting it sets Outcome.HorizonHit.
	Horizon Step
	// MaxEvents cuts off runs after this many engine events (local steps
	// plus messages), guarding against non-quiescent protocols that stay
	// busy forever. 0 means DefaultMaxEvents. Hitting it sets HorizonHit.
	MaxEvents int64
	// Faults, when non-nil, is the run's link-fault plan: deterministic,
	// seeded drop/duplicate/corrupt-delivery rules applied per message
	// (see FaultPlan). The engine copies the plan at construction; nil
	// injects nothing.
	Faults *FaultPlan
	// Topology, when non-nil and not complete, restricts communication
	// to the edges of the named graph (see Topology): a send whose edge
	// is not live at send time counts in M(O) and Stats.BlockedSends but
	// is never delivered. nil (or "complete") is the paper's all-to-all
	// network, bit-identical to pre-topology runs. Adversaries may
	// rewire edges at Observe time (Control.AddEdge/RemoveEdge).
	Topology *Topology
	// StallWindow, when > 0, enables stall detection: a run that
	// processes StallWindow consecutive events with no delivery and no
	// lifecycle transition (sleep, wake, crash, recovery) stops with
	// Outcome.Stalled set — the bounded, deterministic termination of a
	// fully-partitioned or fully-lossy run that would otherwise spin to
	// Horizon/MaxEvents. 0 disables detection.
	StallWindow int64
	// Workers > 1 executes the local steps of each global step on that
	// many goroutines. Outcomes are bit-identical to serial execution.
	Workers int
	// Trace receives engine events; nil disables tracing.
	Trace TraceSink
	// KeepPerProcess retains the per-process message counters in the
	// Outcome (O(N) memory per outcome).
	KeepPerProcess bool
	// Sample, when non-nil, is called at most once every SampleEvery
	// global steps with a progress snapshot — the dissemination curve.
	// Computing a snapshot costs O(N²) Knows queries, so keep SampleEvery
	// coarse on large systems.
	Sample func(s Snapshot)
	// SampleEvery is the minimum global-step distance between snapshots;
	// 0 with a non-nil Sample means every active step.
	SampleEvery Step
	// StatsEvery, when > 0, records the per-interval activity series in
	// Outcome.Stats.Intervals: one IntervalStats per window of at least
	// StatsEvery global steps with any activity. Unlike Sample it costs
	// O(1) per event and nothing per process, so it is usable on runs
	// where a coverage snapshot would be prohibitive. 0 disables the
	// series; the run-wide counters of Outcome.Stats are always on.
	StatsEvery Step

	// MaxWall is a wall-clock watchdog: a run still going after this much
	// real time stops at the next event boundary with a valid partial
	// Outcome (Cancelled and HorizonHit set). 0 disables the watchdog.
	// Unlike every other field, MaxWall and Cancel make the *stopping
	// point* depend on real time, so cancelled outcomes are marked and
	// must be excluded from statistics — which HorizonHit already ensures.
	MaxWall time.Duration
	// Cancel, when non-nil, is polled at event boundaries (every
	// cancelPollEvery active steps); once it is closed the run stops with
	// a valid partial Outcome (Cancelled and HorizonHit set). Pass a
	// context's Done() channel for cooperative SIGINT handling.
	Cancel <-chan struct{}
}

// Snapshot is a point on the dissemination curve.
type Snapshot struct {
	// Now is the global step of the snapshot.
	Now Step
	// Coverage is the fraction of ordered correct pairs (p, q), p ≠ q,
	// where p knows q's gossip: 1 means rumor gathering is complete.
	Coverage float64
	// AwakeCorrect is the number of correct processes not asleep.
	AwakeCorrect int
	// Messages is M of the execution prefix.
	Messages int64
	// Crashed is the number of crashed processes.
	Crashed int
}

// Default cutoffs. The horizon is deliberately enormous: the engine skips
// inactive steps, so a large horizon costs nothing, and delay strategies
// with τᵏ⁺ˡ in the billions still complete.
const (
	DefaultHorizon   Step  = 1 << 50
	DefaultMaxEvents int64 = 1 << 30
)

// cancelPollEvery is the active-step granularity at which the run loop
// polls Config.Cancel and the MaxWall deadline. A power of two so that the
// check compiles to a mask; 256 keeps the overhead unmeasurable while
// bounding the reaction latency to a few hundred (cheap) events.
const cancelPollEvery = 256

// Domain tags for deterministic seed derivation (see xrand.Derive).
const (
	seedDomainProc uint64 = 1
	seedDomainAdv  uint64 = 2
)

// AdversaryRNG returns a generator positioned exactly like the stream the
// engine hands the adversary of a run with the given seed. It is exposed
// so tooling can replay adversary draws offline — the indistinguishability
// experiment uses it to reconstruct the controlled set C of a run.
func AdversaryRNG(seed uint64) *xrand.RNG {
	return xrand.New(xrand.Derive(seed, seedDomainAdv))
}

// ProcRNG returns a generator positioned exactly like the stream the
// engine hands process p of a run with the given seed. Like AdversaryRNG
// it is part of the run's determinism contract: any engine implementation
// that claims to reproduce this package's executions (sim/oracle) must
// seed its processes from these streams.
func ProcRNG(seed uint64, p ProcID) *xrand.RNG {
	return xrand.New(xrand.Derive(seed, seedDomainProc, uint64(p)))
}

// Run executes one simulation to quiescence (or cutoff) and returns its
// Outcome. The returned error reports configuration mistakes only; runs
// cut off by Horizon/MaxEvents return a valid Outcome with HorizonHit set,
// and runs stopped by Cancel/MaxWall additionally set Cancelled.
func Run(cfg Config) (Outcome, error) {
	t0 := time.Now()
	e, err := newEngine(cfg)
	if err != nil {
		return Outcome{}, err
	}
	t1 := time.Now()
	e.run()
	t2 := time.Now()
	o := e.outcome()
	// Wall times are measured per run phase, not per step, so the cost is
	// four clock reads per run — and they are the only Stats fields that
	// are not a pure function of (Config, Seed).
	w := WallStats{Init: t1.Sub(t0), Run: t2.Sub(t1), Finalize: time.Since(t2)}
	w.ShardCommit, w.ShardMerge, w.ShardImbalance = e.shardWall()
	o.Stats.Wall = w
	e.dispose()
	return o, nil
}

// dispose drops the engine's bulk storage before Run returns. The engine
// is garbage the moment Run's frame ends anyway, but a GC mark phase that
// spans two back-to-back runs (the benchmark and sweep steady state)
// would otherwise trace both generations of multi-megabyte engine state,
// inflating the pacer's heap goal; nil-ing the fat references bounds what
// such a cycle can see to the outcome being returned.
func (e *engine) dispose() {
	e.pt = procTable{}
	e.cal = calendar{}
	e.sched = scheduler{}
	e.ptab = payloadTable{}
	e.procs, e.outboxes, e.sendLog, e.lanes = nil, nil, nil, nil
	e.class, e.linkDown, e.graph = nil, nil, nil
}

type engine struct {
	cfg       Config
	n         int
	horizon   Step
	maxEvents int64

	now   Step
	procs []Process
	adv   AdversaryInstance

	pt    procTable    // per-process state, struct-of-arrays (proctable.go)
	cal   calendar     // in-flight messages, bucketed by delivery step
	sched scheduler    // indexed next-event queue (see sched.go)
	ptab  payloadTable // interned in-flight payloads (intern.go)

	sendLog  []SendRecord
	outboxes []Outbox
	dueBuf   []ProcID
	resolve  []int32 // commitOne scratch: staging index → payload-table slot
	kindRes  []int32 // commitOne scratch: staging index → kind-table index
	cntBuf   []int32 // commitOne scratch: staging index → surviving copies

	awakeCorrect      int
	totalPending      int64
	inflightToCorrect int64
	msgTotal          int64
	crashCount        int
	crashesEver       int
	eventCount        int64
	horizonHit        bool
	cancelled         bool
	lastSample        Step

	// Fault-model state (faults.go). faults is the run's (copied) fault
	// plan, nil when inactive. class and linkDown are the adversary's
	// partition classes and downed links; both are read-only outside
	// Observe, so shard lanes read them freely. linkActive is the hot
	// path's one-bool gate: it goes true the first time any link-state
	// write happens and never resets, so fault-free runs pay one
	// predictable branch per send. everRecovered gates the delivery path's
	// pre-crash-residue check the same way.
	faults        *FaultPlan
	class         []int32
	linkDown      map[int64]struct{}
	linkActive    bool
	everRecovered bool

	// graph is the live communication graph (topology.go), nil for the
	// complete graph with no edge edits — the hot path's one-nil-check
	// gate, like linkActive. A complete-base graph materializes lazily on
	// the first adversary edge edit. Edge writes happen only in Observe
	// (serial, before commits), so shard lanes read it concurrently.
	graph *Graph

	// Stall detection (Config.StallWindow): stallSig is the progress
	// signature — deliveries plus lifecycle transitions — at the last
	// event that advanced it, stallBase the event count then. The run
	// stalls when eventCount outruns stallBase by the window with the
	// signature unchanged.
	stallWindow int64
	stallSig    int64
	stallBase   int64
	stalled     bool

	// Observability (see stats.go). All counting happens in the serial
	// engine phases, so Stats is identical under parallel stepping.
	st         Stats
	kinds      []KindCount // per-payload-kind send counts
	lastKind   int         // MRU index into kinds: consecutive sends share kinds
	inflight   int64       // messages currently in the calendar
	statsEvery Step        // Config.StatsEvery
	interval   IntervalStats

	workers int
	wg      sync.WaitGroup
	panics  []any
	panicMu sync.Mutex

	// lanes are the shard lanes of the sharded commit phase (shard.go);
	// allocated on first use and persistent for the run — calendar refs
	// point into lane payload tables, so lanes never shrink. mergeWall
	// accumulates the serial merge's wall time for WallStats.
	lanes     []shardLane
	mergeWall time.Duration
}

// maxProcs bounds N so that process indexes fit the 4-byte fields of
// imessage and odraft.
const maxProcs = 1<<31 - 1

func newEngine(cfg Config) (*engine, error) {
	switch {
	case cfg.N < 1:
		return nil, fmt.Errorf("sim: N = %d, need N ≥ 1", cfg.N)
	case cfg.N > maxProcs:
		return nil, fmt.Errorf("sim: N = %d, need N < 2³¹", cfg.N)
	case cfg.F < 0 || cfg.F >= cfg.N:
		return nil, fmt.Errorf("sim: F = %d, need 0 ≤ F < N = %d", cfg.F, cfg.N)
	case cfg.Protocol == nil:
		return nil, errors.New("sim: Config.Protocol is required")
	case cfg.Horizon < 0:
		return nil, fmt.Errorf("sim: Horizon = %d, need ≥ 0", cfg.Horizon)
	case cfg.MaxEvents < 0:
		return nil, fmt.Errorf("sim: MaxEvents = %d, need ≥ 0", cfg.MaxEvents)
	case cfg.StallWindow < 0:
		return nil, fmt.Errorf("sim: StallWindow = %d, need ≥ 0", cfg.StallWindow)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.Topology != nil {
		if err := cfg.Topology.Validate(); err != nil {
			return nil, err
		}
	}
	n := cfg.N
	e := &engine{
		cfg:          cfg,
		n:            n,
		horizon:      cfg.Horizon,
		maxEvents:    cfg.MaxEvents,
		outboxes:     make([]Outbox, n),
		awakeCorrect: n,
		workers:      cfg.Workers,
		statsEvery:   cfg.StatsEvery,
		stallWindow:  cfg.StallWindow,
	}
	if cfg.Faults.Active() {
		plan := *cfg.Faults
		e.faults = &plan
	}
	if cfg.Topology.Active() {
		e.graph = NewGraph(cfg.Topology, n)
	}
	if e.horizon == 0 {
		e.horizon = DefaultHorizon
	}
	if e.maxEvents == 0 {
		e.maxEvents = DefaultMaxEvents
	}
	e.pt.init(n)
	e.cal.init()
	e.sched.init(n)
	e.ptab.init(n)
	e.sched.scheduleAll(1) // first boundary of every process: anchor 0 + δ 1
	envs := make([]Env, n)
	// One backing array for all process generators: each env points into
	// it, seeded to exactly the ProcRNG(seed, p) stream. Batching the
	// storage drops an allocation per process — at N=10⁶, a million boxed
	// RNGs — without touching the determinism contract.
	rngs := make([]xrand.RNG, n)
	for p := 0; p < n; p++ {
		e.pt.setAwake(ProcID(p), true)
		e.pt.delta[p] = 1
		e.pt.delay[p] = 1
		e.outboxes[p].reset(ProcID(p), n)
		rngs[p].Seed(xrand.Derive(cfg.Seed, seedDomainProc, uint64(p)))
		envs[p] = Env{
			ID:  ProcID(p),
			N:   n,
			F:   cfg.F,
			RNG: &rngs[p],
		}
	}
	e.procs = cfg.Protocol.New(envs)
	if len(e.procs) != n {
		return nil, fmt.Errorf("sim: protocol %q built %d processes, want %d",
			cfg.Protocol.Name(), len(e.procs), n)
	}
	if cfg.Adversary != nil {
		advRNG := xrand.New(xrand.Derive(cfg.Seed, seedDomainAdv))
		e.adv = cfg.Adversary.New(n, cfg.F, advRNG)
	}
	return e, nil
}

func (e *engine) run() {
	if e.adv != nil {
		e.adv.Init(NewView(e), NewControl(e))
	}
	watched := e.cfg.Cancel != nil || e.cfg.MaxWall > 0
	var deadline time.Time
	if e.cfg.MaxWall > 0 {
		deadline = time.Now().Add(e.cfg.MaxWall)
	}
	poll := 0
	for !e.quiescent() {
		if watched {
			if poll&(cancelPollEvery-1) == 0 && e.interrupted(deadline) {
				e.horizonHit = true
				e.cancelled = true
				break
			}
			poll++
		}
		if !e.stepOnce() {
			break
		}
	}
	if e.cfg.Sample != nil && (e.lastSample == 0 || e.lastSample != e.now) {
		e.cfg.Sample(e.snapshot()) // final point of the curve
	}
	if e.statsEvery > 0 {
		e.closeInterval(e.now + 1) // flush the open window
	}
	if e.cfg.Trace != nil {
		note := "quiescence"
		switch {
		case e.cancelled:
			note = "cancelled"
		case e.stalled:
			note = "stalled"
		case e.horizonHit:
			note = "horizon"
		}
		e.trace(TraceEvent{Kind: TraceEnd, Step: e.now, Proc: -1, Other: -1, Note: note})
	}
}

// stepOnce advances the run by one active global step — adversary
// observation, deliveries, local steps, sampling — and reports whether it
// did. It returns false at a horizon or event-budget cutoff (setting
// horizonHit) so run's loop stops. Callers must have checked quiescent
// first. It is extracted from run so the allocation-regression tests can
// drive the steady-state loop step by step under testing.AllocsPerRun;
// with tracing, sampling, intervals, and the adversary all absent, one
// call allocates nothing after warm-up — the property alloc_test.go pins.
func (e *engine) stepOnce() bool {
	t, ok := e.nextEventTime()
	if !ok {
		// Unreachable: a non-quiescent system always has either an
		// awake (hence schedulable) process, a pending mailbox, or a
		// message in flight. Treat it as a cutoff rather than hanging.
		e.horizonHit = true
		return false
	}
	if t > e.horizon || e.eventCount > e.maxEvents {
		e.horizonHit = true
		return false
	}
	if e.stallWindow > 0 {
		// Progress signature: a run moves forward only through deliveries
		// and lifecycle transitions. A system that churns through a full
		// event window of local steps and sends without any of them — the
		// partitioned/fully-lossy regime, where every send is dropped — can
		// never quiesce and is stopped here as Stalled instead of spinning
		// to Horizon/MaxEvents. The check is a pure function of the
		// deterministic counters, so engine and oracle stall on the
		// identical event.
		sig := e.st.Deliveries + e.st.Sleeps + e.st.Wakes + e.st.Crashes + e.st.Recoveries
		if sig != e.stallSig {
			e.stallSig = sig
			e.stallBase = e.eventCount
		} else if e.eventCount-e.stallBase >= e.stallWindow {
			e.stalled = true
			e.horizonHit = true
			return false
		}
	}
	e.now = t
	e.st.ActiveSteps++
	if e.statsEvery > 0 && t >= e.interval.Start+e.statsEvery {
		e.closeInterval(t)
	}
	if e.adv != nil {
		events := e.sendLog
		e.sendLog = e.sendLog[:0]
		e.adv.Observe(t, events, NewView(e), NewControl(e))
	}
	e.deliver(t)
	e.localSteps(t)
	if e.cfg.Sample != nil && t >= e.lastSample+e.cfg.SampleEvery {
		e.lastSample = t
		e.cfg.Sample(e.snapshot())
	}
	return true
}

// closeInterval seals the open stats window at boundary (exclusive) and
// opens the next one there. Windows with no activity are dropped: a
// delay-heavy run spends most of its global-step range in gaps where
// provably nothing happens, and recording those would bloat the series
// without information.
func (e *engine) closeInterval(boundary Step) {
	if e.interval.active() {
		e.interval.End = boundary
		e.interval.AwakeCorrect = e.awakeCorrect
		e.interval.InFlight = e.inflight
		e.st.Intervals = append(e.st.Intervals, e.interval)
	}
	e.interval = IntervalStats{Start: boundary}
}

// kindIndex resolves payload kind k to its index in the per-kind send
// counters, registering it on first sight. Kinds live in a small slice
// probed linearly with an MRU cache — protocols use a handful of kinds and
// consecutive interns overwhelmingly share one, so the common case is a
// single string comparison and no map or allocation. The string probe runs
// once per *interned payload* (commitOne's resolution loop); the per-send
// count is an integer increment against the returned index.
func (e *engine) kindIndex(k string) int32 {
	if e.lastKind < len(e.kinds) && e.kinds[e.lastKind].Kind == k {
		return int32(e.lastKind)
	}
	for i := range e.kinds {
		if e.kinds[i].Kind == k {
			e.lastKind = i
			return int32(i)
		}
	}
	e.kinds = append(e.kinds, KindCount{Kind: k})
	e.lastKind = len(e.kinds) - 1
	return int32(e.lastKind)
}

// interrupted reports whether the run should stop early: its Cancel
// channel is closed, or its MaxWall deadline has passed.
func (e *engine) interrupted(deadline time.Time) bool {
	if e.cfg.Cancel != nil {
		select {
		case <-e.cfg.Cancel:
			return true
		default:
		}
	}
	return !deadline.IsZero() && time.Now().After(deadline)
}

func (e *engine) quiescent() bool {
	return e.awakeCorrect == 0 && e.totalPending == 0 && e.inflightToCorrect == 0
}

// nextEventTime returns the earliest future global step at which anything
// can happen: a message arrival, or a local step of a process that is
// awake or has undelivered mail. Steps in between are provably inert and
// are skipped, which is what makes delays of τᵏ⁺ˡ steps affordable. The
// lookup is O(log N) against the scheduler's event index; no per-process
// scan happens here.
func (e *engine) nextEventTime() (Step, bool) {
	return e.sched.next()
}

// nextBoundary returns the earliest local-step boundary of p that is
// strictly after the current step.
func (e *engine) nextBoundary(p ProcID) Step {
	a, d := e.pt.anchor[p], e.pt.delta[p]
	min := e.now + 1
	if a+d >= min {
		return a + d
	}
	k := (min - a + d - 1) / d
	return a + k*d
}

// boundaryAt reports whether p has a local-step boundary exactly at t.
func (e *engine) boundaryAt(p ProcID, t Step) bool {
	a := e.pt.anchor[p]
	return t > a && (t-a)%e.pt.delta[p] == 0
}

// boundaryOnOrAfter returns p's earliest local-step boundary ≥ t, where t
// is the current step. Used when a mailbox arrival makes a sleeping
// process schedulable: its boundary may be this very step.
func (e *engine) boundaryOnOrAfter(p ProcID, t Step) Step {
	if e.boundaryAt(p, t) {
		return t
	}
	return e.nextBoundary(p)
}

// payloadVal resolves a packed calendar ref (table index << 32 | slot) to
// its boxed payload: table 0 is the serial-commit table, table s+1 the
// payload table of shard lane s. The high fault-marker bits (faults.go)
// are masked off first.
func (e *engine) payloadVal(ref int64) Payload {
	ref &^= refFaultMask
	if ti := ref >> 32; ti != 0 {
		return e.lanes[ti-1].ptab.val(int32(ref))
	}
	return e.ptab.val(int32(ref))
}

// releaseRef drops one calendar copy of a packed ref.
func (e *engine) releaseRef(ref int64) {
	ref &^= refFaultMask
	if ti := ref >> 32; ti != 0 {
		e.lanes[ti-1].ptab.release(int32(ref))
		return
	}
	e.ptab.release(int32(ref))
}

func (e *engine) deliver(t Step) {
	bucket := e.cal.take(t)
	if bucket == nil {
		return
	}
	for _, m := range bucket.msgs {
		e.inflight--
		to := ProcID(m.to)
		dup := m.ref&refDupBit != 0
		if e.pt.crashed(to) || (e.everRecovered && m.sentAt < e.pt.lastCrash[to]) {
			// inflightTo[to] was zeroed when to crashed; just drop. The
			// second clause is pre-crash residue: to has recovered, but
			// this message was sent before its last crash, so the network
			// already discarded it (and its accounting) at crash time.
			e.st.DroppedCrashed++
			if e.cfg.Trace != nil {
				note := "crashed"
				if dup {
					note = "crashed dup"
				}
				e.trace(TraceEvent{Kind: TraceDrop, Step: t, Proc: to, Other: ProcID(m.from),
					Payload: e.payloadVal(m.ref), Note: note})
			}
			e.releaseRef(m.ref)
			continue
		}
		if m.ref&refCorruptBit != 0 {
			// Corrupted in transit: the receiver detects and discards it
			// at delivery without reading it. Unlike the crashed drop, the
			// message's in-flight accounting is still live.
			e.st.CorruptDrops++
			e.pt.inflightTo[to]--
			e.inflightToCorrect--
			if e.cfg.Trace != nil {
				e.trace(TraceEvent{Kind: TraceDrop, Step: t, Proc: to, Other: ProcID(m.from),
					Payload: e.payloadVal(m.ref), Note: "corrupt"})
			}
			e.releaseRef(m.ref)
			continue
		}
		e.st.Deliveries++
		if dup {
			e.st.DupDeliveries++
		}
		if e.statsEvery > 0 {
			e.interval.Deliveries++
		}
		// Materialize the boxed Message here, at the protocol boundary —
		// the only point the payload ref becomes an interface value again.
		pl := e.payloadVal(m.ref)
		e.pt.pushMail(to, Message{
			From: ProcID(m.from), To: to, SentAt: m.sentAt, DeliverAt: t, Payload: pl,
		})
		e.releaseRef(m.ref)
		e.pt.pendingCount[to]++
		e.totalPending++
		e.pt.inflightTo[to]--
		e.inflightToCorrect--
		if e.sched.scheduledAt(to) == noSchedule {
			// Mail woke a sleeping process: index its next boundary.
			e.sched.scheduleProc(to, e.boundaryOnOrAfter(to, t))
		}
		if e.cfg.Trace != nil {
			note := ""
			if dup {
				note = "dup"
			}
			e.trace(TraceEvent{Kind: TraceArrive, Step: t, Proc: to, Other: ProcID(m.from), Payload: pl, Note: note})
		}
	}
	if e.totalPending > e.st.MaxPending {
		e.st.MaxPending = e.totalPending
	}
	e.cal.release(bucket)
}

func (e *engine) localSteps(t Step) {
	due := e.sched.collectDue(t, e.dueBuf[:0])
	e.dueBuf = due
	if len(due) == 0 {
		return
	}

	if e.workers > 1 && len(due) >= 2*e.workers {
		if e.cfg.Trace == nil {
			// Sharded step+commit (shard.go): the commit effects run on the
			// workers too, then merge serially. Tracing needs the exact
			// serial event interleaving, so traced runs keep the serial
			// commit below — outcomes are bit-identical either way.
			e.stepCommitSharded(t, due)
			return
		}
		e.stepParallel(t, due)
	} else {
		for _, p := range due {
			e.stepOne(t, p)
		}
	}

	// Commit phase: deterministic, in ascending process order.
	for _, p := range due {
		e.commitOne(t, p)
	}
}

// stepOne runs the protocol handler of p for its local step at t. It only
// touches p-local engine state, so distinct processes may step in parallel.
// p's outbox is already empty here: newEngine resets it once, and every
// commit path (commitOne, prepareOne) clears it after draining.
func (e *engine) stepOne(t Step, p ProcID) {
	e.procs[p].Step(t, e.pt.mail[p], &e.outboxes[p])
}

// commitOne publishes the effects of p's local step: mailbox consumption,
// sleep/wake transitions, and sends. Must run serially in process order —
// it is also the only phase that touches the serial payload table and the
// calendar, which is what keeps both lock-free under parallel stepping.
// (The sharded path replaces it with prepareOne + mergeLanes, shard.go.)
func (e *engine) commitOne(t Step, p ProcID) {
	if e.cfg.Trace != nil {
		e.trace(TraceEvent{Kind: TraceLocalStep, Step: t, Proc: p, Other: -1})
	}
	e.pt.anchor[p] = t
	e.totalPending -= e.pt.pendingCount[p]
	e.pt.pendingCount[p] = 0
	e.pt.clearMail(p)
	e.eventCount++
	e.st.LocalSteps++

	ob := &e.outboxes[p]
	// Resolve the staged payloads of this local step into run-table slots.
	// The table's identity memo collapses re-sends of the most recently
	// interned value to its existing slot, and carries the kind index with
	// it, so Kind() resolves only on memo misses. Staging order is
	// first-send order, so kinds register in the order sends first use them.
	res, kres, cnt := e.resolve[:0], e.kindRes[:0], e.cntBuf[:0]
	for _, pl := range ob.staged {
		slot, fresh := e.ptab.intern(pl)
		if fresh {
			kind := "?"
			if pl != nil {
				kind = pl.Kind()
			}
			e.ptab.memoKind = e.kindIndex(kind)
		}
		res = append(res, slot)
		kres = append(kres, e.ptab.memoKind)
		cnt = append(cnt, 0)
	}
	e.resolve, e.kindRes, e.cntBuf = res, kres, cnt
	omitted := e.pt.omitted(p)
	delay := e.pt.delay[p]
	deliverAt := t + delay
	for _, d := range ob.drafts {
		to := ProcID(d.to)
		e.msgTotal++
		e.pt.sent[p]++
		e.pt.lastSend[p] = t
		e.eventCount++
		e.kinds[kres[d.pi]].Count++
		if e.statsEvery > 0 {
			e.interval.Sends++
			e.interval.DelayHist[delayBucket(delay)]++
		}
		if e.adv != nil {
			// Only an adversary reads the send log; without one, appending
			// would grow an O(M) slice nobody drains.
			e.sendLog = append(e.sendLog, SendRecord{From: p, To: to, SentAt: t, DeliverAt: deliverAt})
		}
		if e.cfg.Trace != nil {
			e.trace(TraceEvent{Kind: TraceSend, Step: t, Proc: p, Other: to, Payload: ob.staged[d.pi]})
		}
		if e.graph != nil && !e.graph.Live(p, to) {
			// Off-graph send: counted in M(O) like every other send, but
			// the edge does not exist, so the network never carries it.
			// Checked before the crash/omission/link verdicts so a dead
			// edge always yields the "topology" drop, keeping the trace
			// auditor's edge accounting exact.
			e.st.BlockedSends++
			e.traceSendDrop(t, p, to, ob.staged[d.pi], "topology")
			continue
		}
		if e.pt.crashed(to) || omitted {
			// Counted in M(O), but undeliverable.
			if e.pt.crashed(to) {
				e.st.DroppedCrashed++
				e.traceSendDrop(t, p, to, ob.staged[d.pi], "crashed")
			} else {
				e.st.OmittedSends++
				e.traceSendDrop(t, p, to, ob.staged[d.pi], "omit")
			}
			continue
		}
		if e.linkActive && e.linkBlocked(p, to) {
			e.st.DroppedLink++
			e.traceSendDrop(t, p, to, ob.staged[d.pi], "link")
			continue
		}
		fault := FaultNone
		if e.faults != nil {
			fault = e.faults.Roll(p, to, t, e.pt.sent[p])
			if fault == FaultDrop {
				e.st.DroppedLink++
				e.traceSendDrop(t, p, to, ob.staged[d.pi], "loss")
				continue
			}
		}
		ref := int64(res[d.pi])
		if fault == FaultCorrupt {
			ref |= refCorruptBit
		}
		if e.cal.add(deliverAt, imessage{from: int32(p), to: d.to, ref: ref, sentAt: t}) {
			e.sched.scheduleDelivery(deliverAt)
		}
		cnt[d.pi]++
		e.inflight++
		if e.inflight > e.st.MaxInFlight {
			e.st.MaxInFlight = e.inflight
		}
		e.pt.inflightTo[to]++
		e.inflightToCorrect++
		if fault == FaultDuplicate {
			// Second copy of a duplicated delivery: same step, flagged so
			// delivery counts it as the duplicate.
			if e.cal.add(deliverAt, imessage{from: int32(p), to: d.to, ref: int64(res[d.pi]) | refDupBit, sentAt: t}) {
				e.sched.scheduleDelivery(deliverAt)
			}
			cnt[d.pi]++
			e.inflight++
			if e.inflight > e.st.MaxInFlight {
				e.st.MaxInFlight = e.inflight
			}
			e.pt.inflightTo[to]++
			e.inflightToCorrect++
		}
	}
	// One batched refcount update per staged payload — not one per copy —
	// and an immediate sweep of slots whose every send was dropped before
	// reaching the calendar.
	for i, slot := range res {
		if cnt[i] > 0 {
			e.ptab.addRefs(slot, cnt[i])
		} else {
			e.ptab.sweep(slot)
		}
	}
	ob.clear()

	e.finishOne(t, p)
}

// finishOne is the tail every commit shares — serial commitOne and the
// sharded merge both end each process's local step here: the protocol's
// Commit hook, the sleep/wake transition, and rescheduling. Runs serially,
// in ascending process order.
func (e *engine) finishOne(t Step, p ProcID) {
	if c, ok := e.procs[p].(Committer); ok {
		c.Commit(t)
	}

	asleep := e.procs[p].Asleep()
	switch {
	case asleep && e.pt.awake(p):
		e.pt.setAwake(p, false)
		e.awakeCorrect--
		e.st.Sleeps++
		if e.statsEvery > 0 {
			e.interval.Sleeps++
		}
		if e.cfg.Trace != nil {
			e.trace(TraceEvent{Kind: TraceSleep, Step: t, Proc: p, Other: -1})
		}
	case !asleep && !e.pt.awake(p):
		e.pt.setAwake(p, true)
		e.awakeCorrect++
		e.st.Wakes++
		if e.statsEvery > 0 {
			e.interval.Wakes++
		}
		if e.cfg.Trace != nil {
			e.trace(TraceEvent{Kind: TraceWake, Step: t, Proc: p, Other: -1})
		}
	}

	// Reindex: the mailbox is empty now, so p is schedulable iff awake.
	// collectDue cleared p's key when it put p in the due set.
	if e.pt.awake(p) {
		e.sched.scheduleProc(p, t+e.pt.delta[p])
	} else {
		e.sched.unscheduleProc(p)
	}
}

func (e *engine) stepParallel(t Step, due []ProcID) {
	workers := e.workers
	if workers > len(due) {
		workers = len(due)
	}
	chunk := (len(due) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(due) {
			hi = len(due)
		}
		if lo >= hi {
			break
		}
		e.wg.Add(1)
		go func(part []ProcID) {
			defer e.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					e.panicMu.Lock()
					e.panics = append(e.panics, r)
					e.panicMu.Unlock()
				}
			}()
			for _, p := range part {
				e.stepOne(t, p)
			}
		}(due[lo:hi])
	}
	e.wg.Wait()
	if len(e.panics) > 0 {
		panic(e.panics[0])
	}
}

// linkBlocked reports whether the network blocks sends from → to: the
// endpoints sit in different partition classes, or the adversary downed
// the directed link. Read-only during commits, so shard lanes call it
// concurrently.
func (e *engine) linkBlocked(from, to ProcID) bool {
	if e.class != nil && e.class[from] != e.class[to] {
		return true
	}
	if len(e.linkDown) > 0 {
		if _, down := e.linkDown[linkKey(from, to)]; down {
			return true
		}
	}
	return false
}

// traceSendDrop emits the drop event of a send suppressed at send time
// (crashed receiver, omission, link block, or loss roll). Only the serial
// commit path traces — sharded commits run untraced by construction.
func (e *engine) traceSendDrop(t Step, from, to ProcID, pl Payload, note string) {
	if e.cfg.Trace != nil {
		e.trace(TraceEvent{Kind: TraceDrop, Step: t, Proc: to, Other: from, Payload: pl, Note: note})
	}
}

func (e *engine) crashProcess(p ProcID) {
	e.pt.setCrashed(p)
	e.pt.lastCrash[p] = e.now
	e.crashCount++
	e.crashesEver++
	e.st.Crashes++
	if e.statsEvery > 0 {
		e.interval.Crashes++
	}
	if e.pt.awake(p) {
		e.pt.setAwake(p, false)
		e.awakeCorrect--
	}
	e.totalPending -= e.pt.pendingCount[p]
	e.pt.pendingCount[p] = 0
	e.pt.mail[p] = nil // drop the buffer: a crashed mailbox is never read again
	e.inflightToCorrect -= e.pt.inflightTo[p]
	e.pt.inflightTo[p] = 0
	e.sched.unscheduleProc(p)
	e.trace(TraceEvent{Kind: TraceCrash, Step: e.now, Proc: p, Other: -1})
}

func (e *engine) trace(ev TraceEvent) {
	if e.cfg.Trace != nil {
		e.cfg.Trace.Event(ev)
	}
}

func (e *engine) outcome() Outcome {
	o := Outcome{
		Protocol:   e.cfg.Protocol.Name(),
		Adversary:  "none",
		N:          e.n,
		F:          e.cfg.F,
		Seed:       e.cfg.Seed,
		Quiescence: e.now,
		Messages:   e.msgTotal,
		Crashed:    e.crashCount,
		HorizonHit: e.horizonHit,
		Stalled:    e.stalled,
		Cancelled:  e.cancelled,
	}
	if e.cfg.Adversary != nil {
		o.Adversary = e.cfg.Adversary.Name()
		o.Strategy = e.adv.Label()
	}
	for p := 0; p < e.n; p++ {
		if e.pt.crashed(ProcID(p)) {
			continue
		}
		if e.pt.lastSend[p] > o.TEnd {
			o.TEnd = e.pt.lastSend[p]
		}
		if e.pt.delta[p] > o.DeltaMax {
			o.DeltaMax = e.pt.delta[p]
		}
		if e.pt.delay[p] > o.DelayMax {
			o.DelayMax = e.pt.delay[p]
		}
	}
	if norm := o.DeltaMax + o.DelayMax; norm > 0 {
		o.Time = float64(o.TEnd) / float64(norm)
	}
	o.Gathered = e.gathered()
	if e.cfg.KeepPerProcess {
		o.PerProcessMsgs = append([]int64(nil), e.pt.sent...)
	}
	o.Stats = e.stats()
	return o
}

// stats seals the observability block: run-wide totals are copied from
// the engine's authoritative counters, the scheduler contributes its heap
// operation counts, and the per-kind send counters are sorted into a
// stable order. Wall times are stamped by Run, after this returns.
func (e *engine) stats() Stats {
	st := e.st
	st.Events = e.eventCount
	st.Sends = e.msgTotal
	st.HeapPushes = e.sched.pushes
	st.HeapPops = e.sched.pops
	st.MessagesByKind = append([]KindCount(nil), e.kinds...)
	sortKinds(st.MessagesByKind)
	return st
}

// snapshot computes a progress point for Config.Sample.
func (e *engine) snapshot() Snapshot {
	s := Snapshot{
		Now:          e.now,
		AwakeCorrect: e.awakeCorrect,
		Messages:     e.msgTotal,
		Crashed:      e.crashCount,
	}
	correct := e.n - e.crashCount
	if correct < 2 {
		s.Coverage = 1
		return s
	}
	known, pairs := 0, 0
	for p := 0; p < e.n; p++ {
		if e.pt.crashed(ProcID(p)) {
			continue
		}
		for q := 0; q < e.n; q++ {
			if q == p || e.pt.crashed(ProcID(q)) {
				continue
			}
			pairs++
			if e.procs[p].Knows(ProcID(q)) {
				known++
			}
		}
	}
	s.Coverage = float64(known) / float64(pairs)
	return s
}

// gathered checks rumor gathering (Definition II.1): every correct process
// knows the gossip of every correct process.
func (e *engine) gathered() bool {
	for p := 0; p < e.n; p++ {
		if e.pt.crashed(ProcID(p)) {
			continue
		}
		for q := 0; q < e.n; q++ {
			if q == p || e.pt.crashed(ProcID(q)) {
				continue
			}
			if !e.procs[p].Knows(ProcID(q)) {
				return false
			}
		}
	}
	return true
}
