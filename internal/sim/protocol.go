package sim

import "github.com/ugf-sim/ugf/internal/xrand"

// Env is everything a protocol instance may depend on: its identity, the
// system constants of Section II, and a private deterministic random
// stream. Protocols must draw randomness exclusively from Env.RNG — that is
// what makes parallel stepping deterministic.
type Env struct {
	ID  ProcID
	N   int // total number of processes
	F   int // maximum number of crashes the system is dimensioned for
	RNG *xrand.RNG
}

// Protocol constructs the process instances of one run. Implementations
// are stateless factories: one Protocol value may be shared by many
// concurrent runs, and all mutable state must live in the values New
// returns.
//
// New builds all N processes at once so that a protocol can set up state
// shared by the whole run — for example the append-only knowledge logs
// that EARS processes expose to each other. Such shared state must follow
// the engine's phase discipline: reads may happen during the (possibly
// parallel) Step phase, writes only inside Commit (see Committer).
type Protocol interface {
	// Name returns a short stable identifier ("push-pull", "ears", …).
	Name() string
	// New creates the state machines of one run; envs[i] describes
	// process i. The returned slice must have len(envs) entries.
	New(envs []Env) []Process
}

// BuildEach adapts a purely per-process constructor to Protocol.New's
// batch form, for protocols without shared run state.
func BuildEach(envs []Env, build func(Env) Process) []Process {
	procs := make([]Process, len(envs))
	for i, env := range envs {
		procs[i] = build(env)
	}
	return procs
}

// Committer is an optional Process extension for protocols with shared
// run state. When a process implements it, the engine calls Commit once
// after every local step of that process, serially and in ascending
// process order, once all Step calls of the global step have returned.
// Publication of anything other processes may read (log appends, shared
// indexes) must happen here, never inside Step — that is what keeps the
// parallel stepping mode race-free and bit-identical to serial execution.
type Committer interface {
	Commit(now Step)
}

// Forgetter is an optional Process extension for protocols whose
// processes can lose their volatile state. When the adversary recovers a
// crashed process with amnesia (Control.Recover with amnesia true) the
// engine calls Forget once, before the process takes any further local
// step: the process must reset to its initial knowledge — its own gossip
// only — as if freshly constructed, keeping its Env (identity, RNG
// position) as is. Processes that do not implement Forgetter recover with
// their pre-crash state retained (stable storage).
type Forgetter interface {
	Forget()
}

// Process is one process's protocol state machine, driven by the engine.
//
// Implementations are confined: during Step they may touch only their own
// state, the delivered messages (treating payloads as immutable), and their
// Env.RNG. They must not retain the Outbox past the call.
type Process interface {
	// Step runs one local step at global step now. delivered holds every
	// message that arrived since the previous local step, in arrival order
	// (possibly empty, for the process's very first steps). The process
	// emits sends through out.
	Step(now Step, delivered []Message, out *Outbox)

	// Asleep reports whether the process has fallen asleep in the sense of
	// Definition IV.2: it will not send anything at future local steps
	// unless a delivered message changes its state. The engine uses it for
	// quiescence detection and to skip the local steps of sleeping
	// processes with an empty mailbox (which are no-ops by definition).
	Asleep() bool

	// Knows reports whether the process currently holds the gossip
	// originated by process g. It backs the rumor-gathering check
	// (Definition II.1) performed at the end of a run.
	Knows(g ProcID) bool
}

// Outbox collects the sends of one local step. The engine stamps send and
// delivery times and routes the messages; processes only choose recipients
// and payloads.
//
// Internally the Outbox separates *which* payloads were sent from *where*:
// drafts hold (recipient, staging index) pairs, and the staging table holds
// each distinct payload value once. A fan-out that hands Send the same
// interface value for every recipient — the idiom all protocols here use —
// stages one table entry no matter how many drafts reference it, which is
// what previously re-wrapped the shared payload per destination and now
// lets the engine intern it into one run-table slot. Dedup is by interface
// identity (samePayload, intern.go) against the most recent staged payload;
// fan-out loops send runs of the same value, so one memo catches them.
type Outbox struct {
	from   ProcID
	n      int
	drafts []odraft
	staged []Payload // distinct payloads of this local step, in first-send order

	lastStaged Payload // memo: most recently staged payload …
	lastPI     int32   // … and its staging index, or -1

	// stagedArr and draftArr initially back staged and drafts: nearly
	// every local step stages a handful of distinct payloads and many
	// processes never send more than a few messages per step, so the
	// inline arrays make light outboxes allocation-free for the life of a
	// run. A step that outgrows one spills that slice onto the heap once;
	// clear keeps whatever backing a slice has, so a spill never repeats.
	// (After a spill stagedArr may pin up to 4 stale payload boxes —
	// tiny, run-scoped values, deliberately not scrubbed on the hot
	// path.)
	stagedArr [4]Payload
	draftArr  [4]odraft
}

// odraft is one queued send: the recipient and the staging index of its
// payload. Both fit in 4 bytes (newEngine guards N < 2³¹).
type odraft struct {
	to, pi int32
}

// NewOutbox returns an Outbox collecting sends from the given process in a
// system of n processes. The engine manages its own outboxes; this
// constructor exists for protocol unit tests, custom drivers, and the
// reference engine in sim/oracle.
func NewOutbox(from ProcID, n int) Outbox {
	var o Outbox
	o.reset(from, n)
	return o
}

// Drain returns the queued sends as (to, payload) messages, in Send order,
// and empties the outbox. Like NewOutbox it exists for tests and custom
// drivers; the production engine reads the drafts and staging table
// directly (commitOne) and never materializes this slice.
func (o *Outbox) Drain() []Message {
	msgs := make([]Message, len(o.drafts))
	for i, d := range o.drafts {
		msgs[i] = Message{From: o.from, To: ProcID(d.to), Payload: o.staged[d.pi]}
	}
	o.clear()
	return msgs
}

func (o *Outbox) reset(from ProcID, n int) {
	o.from = from
	o.n = n
	o.clear()
}

// clear empties the drafts and the staging table, nil-ing staged entries so
// the retained storage does not pin payloads past the local step.
func (o *Outbox) clear() {
	o.drafts = o.drafts[:0]
	for i := range o.staged {
		o.staged[i] = nil
	}
	o.staged = o.staged[:0]
	o.lastStaged = nil
	o.lastPI = -1
}

// Send queues one message to process to. It panics if to is out of range
// or the process addresses itself — both are protocol bugs, not runtime
// conditions.
func (o *Outbox) Send(to ProcID, payload Payload) {
	if to < 0 || int(to) >= o.n {
		panic("sim: send to process out of range")
	}
	if to == o.from {
		panic("sim: process sent a message to itself")
	}
	pi := o.lastPI
	if pi < 0 || !samePayload(payload, o.lastStaged) {
		if o.staged == nil {
			// Bind here rather than in reset: NewOutbox returns by value,
			// and binding before that copy would alias the wrong array.
			o.staged = o.stagedArr[:0]
		}
		o.staged = append(o.staged, payload)
		pi = int32(len(o.staged) - 1)
		o.lastStaged = payload
		o.lastPI = pi
	}
	if o.drafts == nil {
		o.drafts = o.draftArr[:0]
	}
	o.drafts = append(o.drafts, odraft{to: int32(to), pi: pi})
}

// Len reports how many messages have been queued this local step.
func (o *Outbox) Len() int { return len(o.drafts) }

// distinct reports how many payload values are staged — the slot count the
// engine will intern for this local step. Exposed for the fan-out dedup
// regression tests.
func (o *Outbox) distinct() int { return len(o.staged) }
