package sim

import "github.com/ugf-sim/ugf/internal/xrand"

// Env is everything a protocol instance may depend on: its identity, the
// system constants of Section II, and a private deterministic random
// stream. Protocols must draw randomness exclusively from Env.RNG — that is
// what makes parallel stepping deterministic.
type Env struct {
	ID  ProcID
	N   int // total number of processes
	F   int // maximum number of crashes the system is dimensioned for
	RNG *xrand.RNG
}

// Protocol constructs the process instances of one run. Implementations
// are stateless factories: one Protocol value may be shared by many
// concurrent runs, and all mutable state must live in the values New
// returns.
//
// New builds all N processes at once so that a protocol can set up state
// shared by the whole run — for example the append-only knowledge logs
// that EARS processes expose to each other. Such shared state must follow
// the engine's phase discipline: reads may happen during the (possibly
// parallel) Step phase, writes only inside Commit (see Committer).
type Protocol interface {
	// Name returns a short stable identifier ("push-pull", "ears", …).
	Name() string
	// New creates the state machines of one run; envs[i] describes
	// process i. The returned slice must have len(envs) entries.
	New(envs []Env) []Process
}

// BuildEach adapts a purely per-process constructor to Protocol.New's
// batch form, for protocols without shared run state.
func BuildEach(envs []Env, build func(Env) Process) []Process {
	procs := make([]Process, len(envs))
	for i, env := range envs {
		procs[i] = build(env)
	}
	return procs
}

// Committer is an optional Process extension for protocols with shared
// run state. When a process implements it, the engine calls Commit once
// after every local step of that process, serially and in ascending
// process order, once all Step calls of the global step have returned.
// Publication of anything other processes may read (log appends, shared
// indexes) must happen here, never inside Step — that is what keeps the
// parallel stepping mode race-free and bit-identical to serial execution.
type Committer interface {
	Commit(now Step)
}

// Process is one process's protocol state machine, driven by the engine.
//
// Implementations are confined: during Step they may touch only their own
// state, the delivered messages (treating payloads as immutable), and their
// Env.RNG. They must not retain the Outbox past the call.
type Process interface {
	// Step runs one local step at global step now. delivered holds every
	// message that arrived since the previous local step, in arrival order
	// (possibly empty, for the process's very first steps). The process
	// emits sends through out.
	Step(now Step, delivered []Message, out *Outbox)

	// Asleep reports whether the process has fallen asleep in the sense of
	// Definition IV.2: it will not send anything at future local steps
	// unless a delivered message changes its state. The engine uses it for
	// quiescence detection and to skip the local steps of sleeping
	// processes with an empty mailbox (which are no-ops by definition).
	Asleep() bool

	// Knows reports whether the process currently holds the gossip
	// originated by process g. It backs the rumor-gathering check
	// (Definition II.1) performed at the end of a run.
	Knows(g ProcID) bool
}

// Outbox collects the sends of one local step. The engine stamps send and
// delivery times and routes the messages; processes only choose recipients
// and payloads.
type Outbox struct {
	from   ProcID
	n      int
	drafts []draft
}

type draft struct {
	to      ProcID
	payload Payload
}

// NewOutbox returns an Outbox collecting sends from the given process in a
// system of n processes. The engine manages its own outboxes; this
// constructor exists for protocol unit tests and custom drivers.
func NewOutbox(from ProcID, n int) Outbox {
	var o Outbox
	o.reset(from, n)
	return o
}

// Drain returns the queued sends as (to, payload) messages and empties the
// outbox. Like NewOutbox it exists for tests and custom drivers.
func (o *Outbox) Drain() []Message {
	msgs := make([]Message, len(o.drafts))
	for i, d := range o.drafts {
		msgs[i] = Message{From: o.from, To: d.to, Payload: d.payload}
	}
	o.drafts = o.drafts[:0]
	return msgs
}

func (o *Outbox) reset(from ProcID, n int) {
	o.from = from
	o.n = n
	o.drafts = o.drafts[:0]
}

// Send queues one message to process to. It panics if to is out of range
// or the process addresses itself — both are protocol bugs, not runtime
// conditions.
func (o *Outbox) Send(to ProcID, payload Payload) {
	if to < 0 || int(to) >= o.n {
		panic("sim: send to process out of range")
	}
	if to == o.from {
		panic("sim: process sent a message to itself")
	}
	o.drafts = append(o.drafts, draft{to: to, payload: payload})
}

// Len reports how many messages have been queued this local step.
func (o *Outbox) Len() int { return len(o.drafts) }
