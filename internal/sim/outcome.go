package sim

import "fmt"

// Outcome summarizes one execution — the measurable projection of the
// paper's outcome O (Section II-B) plus bookkeeping used by the harness.
type Outcome struct {
	Protocol  string // Protocol.Name()
	Adversary string // Adversary.Name(), "none" without an adversary
	Strategy  string // AdversaryInstance.Label(), "" when not applicable
	N         int
	F         int
	Seed      uint64

	// TEnd is the last global step at which a process that is correct at
	// the end of the run sent a message — the completion time of
	// Definition II.4 under the quiescence semantics of this simulator
	// (a process completes the moment of its final falling-asleep, and it
	// sends up to that moment).
	TEnd Step
	// Quiescence is the global step at which the engine detected full
	// quiescence (every correct process asleep, nothing in flight to a
	// correct process). Always ≥ TEnd.
	Quiescence Step
	// Messages is M(O): the total number of messages sent by all
	// processes, crashed ones included, regardless of size (Def. II.3).
	Messages int64
	// Time is T(O) = TEnd / (DeltaMax + DelayMax) (Def. II.4).
	Time float64
	// DeltaMax and DelayMax are δ and d: the maximum local-step and
	// delivery times among processes that are correct at the end of the
	// run (consistent with Observations 1 and 2 of the paper).
	DeltaMax Step
	DelayMax Step

	// Crashed is the number of processes still crashed at the end of the
	// run. Without recoveries it equals the number the adversary crashed
	// (≤ F); Stats.Crashes and Stats.Recoveries count the events.
	Crashed int
	// Gathered reports rumor gathering (Def. II.1): every correct process
	// ended up knowing the gossip of every correct process.
	Gathered bool
	// HorizonHit is true when the run was cut off by Config.Horizon or
	// Config.MaxEvents instead of reaching quiescence. Outcomes with
	// HorizonHit set must not be fed into complexity statistics.
	HorizonHit bool
	// Stalled is true when stall detection (Config.StallWindow) stopped
	// the run: the system processed a full event window with no delivery
	// and no lifecycle transition, so it can make no further progress —
	// the deterministic termination of a fully-partitioned or fully-lossy
	// run. A stalled outcome is a classified non-failure, not a cutoff
	// artifact, but it is still not a complete execution; Stalled implies
	// HorizonHit, which keeps stalled runs out of complexity statistics.
	// The field is omitempty so stall-free outcomes keep their JSON
	// encoding bit for bit.
	Stalled bool `json:",omitempty"`
	// Cancelled is true when the run was stopped by Config.Cancel or the
	// Config.MaxWall watchdog. The outcome is a valid partial execution
	// prefix, but — unlike a Horizon/MaxEvents cutoff — the stopping point
	// depends on wall-clock time, so cancelled outcomes are never
	// journaled or replayed. Cancelled implies HorizonHit.
	Cancelled bool

	// PerProcessMsgs holds M_ρ(O) for each process, only when
	// Config.KeepPerProcess was set (it is O(N) memory per outcome).
	PerProcessMsgs []int64

	// Stats is the engine's always-on observability block: event, message,
	// scheduler and adversary-intervention counters, the optional interval
	// series (Config.StatsEvery), and per-phase wall times. Every field
	// except Stats.Wall is a pure function of (Config, Seed).
	Stats Stats
}

// StripWall returns a copy of o with the wall times of the Stats block
// zeroed. A run is a pure function of (Config, Seed) except for those
// wall times; compare StripWall results when asserting reproducibility.
func (o Outcome) StripWall() Outcome {
	o.Stats = o.Stats.StripWall()
	return o
}

func (o Outcome) String() string {
	return fmt.Sprintf("%s vs %s%s: N=%d F=%d M=%d T=%.2f (T_end=%d, δ=%d, d=%d, crashed=%d, gathered=%v)",
		o.Protocol, o.Adversary, strategySuffix(o.Strategy),
		o.N, o.F, o.Messages, o.Time, o.TEnd, o.DeltaMax, o.DelayMax, o.Crashed, o.Gathered)
}

func strategySuffix(s string) string {
	if s == "" {
		return ""
	}
	return "[" + s + "]"
}
