package cliflags

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"strings"
	"testing"
)

func newSet(t *testing.T) (*Common, *flag.FlagSet) {
	t.Helper()
	var c Common
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c.Register(fs)
	return &c, fs
}

// TestCanonicalAndAliasBindSameValue: both spellings set the same field,
// and only the deprecated one triggers a warning.
func TestCanonicalAndAliasBindSameValue(t *testing.T) {
	c, fs := newSet(t)
	if err := fs.Parse([]string{"-stall-window", "100", "-trace-kinds", "send"}); err != nil {
		t.Fatal(err)
	}
	if c.StallWindow != 100 || c.TraceKinds != "send" {
		t.Errorf("canonical spellings not bound: %+v", c)
	}
	var buf bytes.Buffer
	c.Warn(fs, &buf)
	if buf.Len() != 0 {
		t.Errorf("canonical spellings warned: %q", buf.String())
	}

	c2, fs2 := newSet(t)
	if err := fs2.Parse([]string{"-stallwindow", "200", "-tracekinds", "crash"}); err != nil {
		t.Fatal(err)
	}
	if c2.StallWindow != 200 || c2.TraceKinds != "crash" {
		t.Errorf("deprecated spellings not bound: %+v", c2)
	}
	buf.Reset()
	c2.Warn(fs2, &buf)
	warnings := buf.String()
	if !strings.Contains(warnings, "-stallwindow is deprecated; use -stall-window") ||
		!strings.Contains(warnings, "-tracekinds is deprecated; use -trace-kinds") {
		t.Errorf("deprecation pointers missing: %q", warnings)
	}
}

func TestValidate(t *testing.T) {
	c, fs := newSet(t)
	if err := fs.Parse([]string{"-stall-window", "-1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(false); err == nil {
		t.Error("negative stall window accepted")
	}

	c2, fs2 := newSet(t)
	if err := fs2.Parse([]string{"-trace-kinds", "send"}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Validate(false); err == nil {
		t.Error("-trace-kinds without -trace accepted")
	}
	if err := c2.Validate(true); err != nil {
		t.Errorf("-trace-kinds with -trace rejected: %v", err)
	}
}

func TestParseKindMask(t *testing.T) {
	if m, err := ParseKindMask(""); err != nil || m != 0 {
		t.Errorf("empty mask: %v, %v", m, err)
	}
	if _, err := ParseKindMask("send, crash"); err != nil {
		t.Errorf("valid kinds rejected: %v", err)
	}
	if _, err := ParseKindMask("zap"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestValidateLiveMode(t *testing.T) {
	parse := func(args ...string) *flag.FlagSet {
		t.Helper()
		c, fs := newSet(t)
		_ = c
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return fs
	}

	if err := ValidateLiveMode(parse()); err != nil {
		t.Errorf("no flags set: %v", err)
	}
	// Sim-only values at their defaults are fine; only explicit flags
	// conflict.
	if err := ValidateLiveMode(parse("-stats")); err != nil {
		t.Errorf("unrelated flag rejected: %v", err)
	}

	err := ValidateLiveMode(parse("-shards", "2"))
	if err == nil {
		t.Fatal("-shards accepted in live mode")
	}
	var conflict *ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("error %T is not a *ConflictError", err)
	}
	if conflict.Flag != "shards" || conflict.Mode != "-live" || conflict.Why == "" {
		t.Errorf("conflict fields: %+v", conflict)
	}
	if !strings.Contains(err.Error(), "-shards") || !strings.Contains(err.Error(), "-live") {
		t.Errorf("error text %q names neither flag nor mode", err)
	}
}
