// Package cliflags defines the flags ugfsim and ugfbench share, so the
// two CLIs spell common knobs the same way and validate them with the
// same code.
//
// Canonical spellings are hyphenated (-trace-kinds, -stall-window); the
// historical run-together spellings (-tracekinds, -stallwindow) remain
// registered as deprecated aliases that keep working but print a pointer
// to the new name on use. Flags whose types genuinely differ between the
// CLIs (-trace is a bool in ugfsim, an output directory in ugfbench)
// stay per-CLI.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"github.com/ugf-sim/ugf/internal/sim"
)

// Common holds the flag values shared by both CLIs. Register binds them;
// the zero value of every field is the flag's default.
type Common struct {
	Stats        bool   // -stats: print aggregated engine statistics
	TraceKinds   string // -trace-kinds: comma-separated trace kind filter
	Faults       string // -faults: link-fault plan overlay
	TopologySpec string // -topology: communication-graph topology
	StallWindow  int64  // -stall-window: events without progress before declaring a stall
	MaxEvents    int64  // -max-events: hard event cutoff per run
	Shards       int    // -shards: commit shards inside each run

	deprecated map[string]string // alias → canonical, for the post-Parse warning
}

// Register installs the shared flags on fs, canonical names and
// deprecated aliases alike. Call Warn after fs.Parse to report any
// deprecated spellings the command line actually used.
func (c *Common) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.Stats, "stats", false, "print aggregated engine statistics")
	fs.StringVar(&c.Faults, "faults", "", "overlay a link-fault plan on every run, e.g. drop=0.1,dup=0.05,seed=7 (empty: no faults)")
	fs.StringVar(&c.TopologySpec, "topology", "", "communication-graph topology: complete|ring|k-regular,k=K|expander,k=K,seed=S|radio,k=K,seed=S (empty: complete)")
	fs.IntVar(&c.Shards, "shards", 0, "commit shards inside each run (0: serial commits; outcomes identical)")
	fs.StringVar(&c.TraceKinds, "trace-kinds", "", "comma-separated trace kinds to keep when tracing (default: all): send,arrive,step,crash,sleep,wake,adversary,end,recover,drop")
	fs.Int64Var(&c.StallWindow, "stall-window", 0, "overlay a stall window: declare a stall after this many events without progress (0: off)")
	fs.Int64Var(&c.MaxEvents, "max-events", 0, "overlay a hard per-run event cutoff (0: none); pair with -stall-window on sparse topologies")

	// Deprecated aliases: the same variable bound under the old spelling,
	// so either name works and the last one on the command line wins.
	c.deprecated = map[string]string{
		"tracekinds":  "trace-kinds",
		"stallwindow": "stall-window",
	}
	fs.StringVar(&c.TraceKinds, "tracekinds", "", "deprecated alias for -trace-kinds")
	fs.Int64Var(&c.StallWindow, "stallwindow", 0, "deprecated alias for -stall-window")
}

// Warn prints one pointer per deprecated flag spelling that was set on
// the parsed fs. Call it right after fs.Parse.
func (c *Common) Warn(fs *flag.FlagSet, w io.Writer) {
	fs.Visit(func(f *flag.Flag) {
		if canonical, ok := c.deprecated[f.Name]; ok {
			fmt.Fprintf(w, "%s: -%s is deprecated; use -%s\n", fs.Name(), f.Name, canonical)
		}
	})
}

// Validate checks the shared values' ranges and cross-flag constraints.
// traceActive says whether the CLI's own -trace flag was set, for the
// "-trace-kinds requires -trace" rule.
func (c *Common) Validate(traceActive bool) error {
	if c.StallWindow < 0 {
		return fmt.Errorf("stall-window = %d, need ≥ 0", c.StallWindow)
	}
	if c.MaxEvents < 0 {
		return fmt.Errorf("max-events = %d, need ≥ 0", c.MaxEvents)
	}
	if c.Shards < 0 {
		return fmt.Errorf("shards = %d, need ≥ 0", c.Shards)
	}
	if c.TraceKinds != "" && !traceActive {
		return fmt.Errorf("-trace-kinds requires -trace")
	}
	return nil
}

// ConflictError reports a flag combination a CLI rejects, naming both
// sides so callers and tests can assert on the structure instead of the
// prose.
type ConflictError struct {
	Flag string // the rejected flag, without its dash
	Mode string // the mode it conflicts with, e.g. "-live"
	Why  string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("-%s conflicts with %s: %s", e.Flag, e.Mode, e.Why)
}

// liveSimOnly lists the flags that configure simulator machinery with no
// live-runtime counterpart. They are rejected rather than ignored: a
// command line that asks for commit shards or parallel runs and gets a
// serial live execution would silently measure the wrong thing.
var liveSimOnly = map[string]string{
	"shards":  "the live runtime has no sharded commit phase; its nodes are always concurrent",
	"workers": "live repetitions run serially, one networked system at a time",
}

// ValidateLiveMode rejects simulator-only flags that were explicitly set
// on the parsed fs alongside the live-transport mode. Call it after
// fs.Parse, only when -live was set; defaults are fine, only flags the
// command line actually named conflict.
func ValidateLiveMode(fs *flag.FlagSet) error {
	var err error
	fs.Visit(func(f *flag.Flag) {
		if why, ok := liveSimOnly[f.Name]; ok && err == nil {
			err = &ConflictError{Flag: f.Name, Mode: "-live", Why: why}
		}
	})
	return err
}

// KindMask parses the -trace-kinds value into a kind mask; empty input
// means all kinds (mask 0).
func (c *Common) KindMask() (sim.KindMask, error) {
	return ParseKindMask(c.TraceKinds)
}

// FaultPlan parses the -faults value; empty input yields a nil plan.
func (c *Common) FaultPlan() (*sim.FaultPlan, error) {
	return sim.ParseFaultPlan(c.Faults)
}

// Topology parses the -topology value; empty input yields nil (the
// complete graph).
func (c *Common) Topology() (*sim.Topology, error) {
	return sim.ParseTopology(c.TopologySpec)
}

// ParseKindMask converts a comma-separated trace-kind list into a kind
// mask; empty input means all kinds (mask 0).
func ParseKindMask(s string) (sim.KindMask, error) {
	var mask sim.KindMask
	if s == "" {
		return mask, nil
	}
	for _, name := range strings.Split(s, ",") {
		k, ok := sim.ParseTraceKind(strings.TrimSpace(name))
		if !ok {
			return 0, fmt.Errorf("unknown trace kind %q (have send, arrive, step, crash, sleep, wake, adversary, end, recover, drop)", name)
		}
		mask |= sim.MaskOf(k)
	}
	return mask, nil
}
