package stats

import "math"

// ChiSquareTwoSample tests whether two samples are drawn from the same
// distribution, by binning both over their combined range into bins
// equal-width cells and computing the two-sample chi-squared statistic
//
//	X² = Σ_i (√(N₂/N₁)·R_i − √(N₁/N₂)·S_i)² / (R_i + S_i)
//
// over the cells with any mass (R_i, S_i are the per-cell counts and the
// scaling corrects for unequal sample sizes). It returns the statistic,
// the degrees of freedom (occupied cells − 1), and the p-value — the
// probability of a statistic at least this large under the null. Small p
// rejects "same distribution". Degenerate inputs (an empty sample, or
// all mass in one cell) return df = 0 and p = 1: no evidence either way.
func ChiSquareTwoSample(xs, ys []float64, bins int) (stat float64, df int, p float64) {
	if len(xs) == 0 || len(ys) == 0 || bins < 2 {
		return 0, 0, 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	for _, v := range ys {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if !isFinite(lo) || !isFinite(hi) || lo == hi {
		return 0, 0, 1
	}
	cell := func(v float64) int {
		i := int(float64(bins) * (v - lo) / (hi - lo))
		if i >= bins {
			i = bins - 1
		}
		return i
	}
	r := make([]float64, bins)
	s := make([]float64, bins)
	for _, v := range xs {
		r[cell(v)]++
	}
	for _, v := range ys {
		s[cell(v)]++
	}
	k1 := math.Sqrt(float64(len(ys)) / float64(len(xs)))
	k2 := math.Sqrt(float64(len(xs)) / float64(len(ys)))
	occupied := 0
	for i := 0; i < bins; i++ {
		if r[i]+s[i] == 0 {
			continue
		}
		occupied++
		d := k1*r[i] - k2*s[i]
		stat += d * d / (r[i] + s[i])
	}
	if occupied < 2 {
		return stat, 0, 1
	}
	df = occupied - 1
	return stat, df, ChiSquareP(stat, df)
}

// ChiSquareP returns the upper tail of the chi-squared distribution with
// df degrees of freedom at stat: the probability that a chi-squared
// variable exceeds stat. It is Q(df/2, stat/2), the regularized upper
// incomplete gamma function.
func ChiSquareP(stat float64, df int) float64 {
	if df <= 0 || stat <= 0 || math.IsNaN(stat) {
		return 1
	}
	return gammaQ(float64(df)/2, stat/2)
}

// gammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a) for a > 0, x ≥ 0, using the series expansion of
// P(a, x) for x < a+1 and the continued fraction of Q(a, x) otherwise —
// the standard split that keeps both expansions in their fast-converging
// regimes.
func gammaQ(a, x float64) float64 {
	if x <= 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQFraction(a, x)
}

const (
	gammaIters = 400
	gammaEps   = 1e-14
)

// gammaPSeries evaluates P(a, x) = γ(a, x)/Γ(a) by its power series.
func gammaPSeries(a, x float64) float64 {
	sum := 1.0 / a
	term := sum
	for n := 1; n <= gammaIters; n++ {
		term *= x / (a + float64(n))
		sum += term
		if math.Abs(term) < math.Abs(sum)*gammaEps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQFraction evaluates Q(a, x) by the Lentz-form continued fraction
//
//	Q(a,x) = e^{-x} x^a / Γ(a) · 1/(x+1-a− 1·(1−a)/(x+3-a− …)).
func gammaQFraction(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaIters; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
