package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/ugf-sim/ugf/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnownSample(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.Count != 8 {
		t.Errorf("Count = %d", s.Count)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample std of this classic sample is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7); !almostEqual(s.Std, want, 1e-12) {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
	if !almostEqual(s.Q1, 4, 1e-12) {
		t.Errorf("Q1 = %v, want 4", s.Q1)
	}
	if !almostEqual(s.Q3, 5.5, 1e-12) {
		t.Errorf("Q3 = %v, want 5.5", s.Q3)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Error("empty-sample helpers must return 0")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Error("extreme quantiles wrong")
	}
	if Quantile(xs, -0.5) != 1 || Quantile(xs, 2) != 4 {
		t.Error("out-of-range quantiles must clamp")
	}
	if got := Quantile([]float64{10}, 0.73); got != 10 {
		t.Errorf("singleton quantile = %v", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuantileMonotone(t *testing.T) {
	rng := xrand.New(1)
	prop := func(seed uint64) bool {
		n := 1 + int(seed%40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return Quantile(xs, 0) == sorted[0] && Quantile(xs, 1) == sorted[n-1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanKahanPrecision(t *testing.T) {
	// 1e8 copies of 0.1 summed naively drift; Kahan must stay exact to
	// ~1e-8. Use a smaller but still telling case.
	xs := make([]float64, 1_000_000)
	for i := range xs {
		xs[i] = 0.1
	}
	if got := Mean(xs); !almostEqual(got, 0.1, 1e-15) {
		t.Errorf("Kahan mean = %.18f, want 0.1", got)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	f := LinearFit(xs, ys)
	if !almostEqual(f.Slope, 2, 1e-12) || !almostEqual(f.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", f)
	}
	if !almostEqual(f.R2, 1, 1e-12) {
		t.Errorf("R² = %v, want 1", f.R2)
	}
	if f.String() == "" {
		t.Error("empty Fit string")
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if f := LinearFit([]float64{5}, []float64{7}); f != (Fit{}) {
		t.Errorf("single-point fit = %+v", f)
	}
	// Vertical data: zero x-variance.
	f := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || !almostEqual(f.Intercept, 2, 1e-12) {
		t.Errorf("vertical fit = %+v", f)
	}
}

func TestLinearFitPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

func TestLogLogFitRecoversExponent(t *testing.T) {
	var xs, ys []float64
	for _, n := range []float64{10, 20, 50, 100, 200, 500} {
		xs = append(xs, n)
		ys = append(ys, 3.7*n*n) // exponent 2
	}
	f := LogLogFit(xs, ys)
	if !almostEqual(f.Slope, 2, 1e-9) {
		t.Errorf("exponent = %v, want 2", f.Slope)
	}
	if !almostEqual(math.Exp(f.Intercept), 3.7, 1e-6) {
		t.Errorf("coefficient = %v, want 3.7", math.Exp(f.Intercept))
	}
}

func TestLogLogFitSkipsNonPositive(t *testing.T) {
	f := LogLogFit([]float64{0, -1, 2, 4, 8}, []float64{5, 5, 4, 8, 16})
	if !almostEqual(f.Slope, 1, 1e-9) {
		t.Errorf("exponent = %v, want 1 after skipping bad points", f.Slope)
	}
	if f2 := LogLogFit([]float64{0}, []float64{1}); f2 != (Fit{}) {
		t.Errorf("all-skipped fit = %+v", f2)
	}
}

func TestBootstrapCICoversTruth(t *testing.T) {
	// Sample from a known distribution; the 95% CI for the median should
	// contain the sample median essentially always, and the population
	// median most of the time.
	rng := xrand.New(42)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 10
	}
	iv := MedianCI(xs, 0.95, 7)
	if !iv.Contains(Median(xs)) {
		t.Errorf("CI %+v does not contain the sample median %v", iv, Median(xs))
	}
	if !iv.Contains(10) && math.Abs(iv.Lo-10) > 1 && math.Abs(iv.Hi-10) > 1 {
		t.Errorf("CI %+v implausibly far from population median 10", iv)
	}
	if iv.Lo > iv.Hi {
		t.Errorf("inverted interval %+v", iv)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := MedianCI(xs, 0.95, 3)
	b := MedianCI(xs, 0.95, 3)
	if a != b {
		t.Errorf("non-deterministic CI: %+v vs %+v", a, b)
	}
}

func TestBootstrapCIEdges(t *testing.T) {
	if iv := BootstrapCI(nil, Median, 0.95, 100, 1); iv != (Interval{}) {
		t.Errorf("empty-sample CI = %+v", iv)
	}
	// Bad level falls back to 0.95 rather than panicking.
	iv := BootstrapCI([]float64{1, 2, 3}, Median, 7, 100, 1)
	if iv.Lo > iv.Hi {
		t.Errorf("bad-level CI inverted: %+v", iv)
	}
}
