package stats

import (
	"sort"

	"github.com/ugf-sim/ugf/internal/xrand"
)

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies inside the interval (inclusive).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// BootstrapCI computes a percentile-bootstrap confidence interval for an
// arbitrary sample statistic. level is the coverage (e.g. 0.95), resamples
// the number of bootstrap replicates, and seed makes the interval
// deterministic. An empty sample yields a zero interval.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, resamples int, seed uint64) Interval {
	if len(xs) == 0 || resamples < 1 {
		return Interval{}
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	rng := xrand.New(seed)
	replicates := make([]float64, resamples)
	scratch := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range scratch {
			scratch[i] = xs[rng.Intn(len(xs))]
		}
		replicates[r] = stat(scratch)
	}
	sort.Float64s(replicates)
	alpha := (1 - level) / 2
	return Interval{
		Lo: quantileSorted(replicates, alpha),
		Hi: quantileSorted(replicates, 1-alpha),
	}
}

// MedianCI is BootstrapCI specialized to the median — the statistic the
// paper plots (its shaded bands are Q1–Q3; the CI here quantifies the
// median's own sampling noise when comparing against the paper's curves).
func MedianCI(xs []float64, level float64, seed uint64) Interval {
	return BootstrapCI(xs, Median, level, 1000, seed)
}
