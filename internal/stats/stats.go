// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics (the paper reports medians with first
// and third quartiles over 50 runs), bootstrap confidence intervals, and
// log-log regression used to verify shape claims such as "quadratic in N"
// or "linear in F".
package stats

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics of one sample.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64 // sample standard deviation (n−1)
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Q1 = quantileSorted(sorted, 0.25)
	s.Median = quantileSorted(sorted, 0.5)
	s.Q3 = quantileSorted(sorted, 0.75)
	s.Mean = Mean(xs)
	s.Std = math.Sqrt(variance(xs, s.Mean))
	return s
}

// Mean returns the arithmetic mean (0 for an empty sample), using
// Kahan-compensated summation so that long low-variance samples do not
// lose precision.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return kahanSum(xs) / float64(len(xs))
}

func kahanSum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

func variance(xs []float64, mean float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// Median returns the sample median (0 for an empty sample).
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th sample quantile (0 ≤ q ≤ 1) with linear
// interpolation between order statistics (type-7, the R default).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
