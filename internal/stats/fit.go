package stats

import (
	"fmt"
	"math"
)

// Fit is an ordinary least-squares line fit y ≈ Intercept + Slope·x with
// its coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

func (f Fit) String() string {
	return fmt.Sprintf("slope=%.3f intercept=%.3f R²=%.3f", f.Slope, f.Intercept, f.R2)
}

// LinearFit fits y ≈ a + b·x by least squares. It panics if the slices
// have different lengths and returns a zero Fit for fewer than two points.
// Non-finite pairs (NaN or ±Inf in either coordinate, the markers of
// missing points in a partial series) are skipped rather than allowed to
// poison the regression.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("stats: LinearFit with mismatched lengths")
	}
	var fx, fy []float64
	for i := range xs {
		if isFinite(xs[i]) && isFinite(ys[i]) {
			fx = append(fx, xs[i])
			fy = append(fy, ys[i])
		}
	}
	xs, ys = fx, fy
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fit{}
	}
	meanX := Mean(xs)
	meanY := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - meanX
		dy := ys[i] - meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{Intercept: meanY}
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: meanY - slope*meanX}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	_ = n
	return fit
}

// LogLogFit fits log(y) ≈ a + b·log(x): the returned Slope is the growth
// exponent (≈1 for linear growth, ≈2 for quadratic). Points with
// non-positive or non-finite x or y are skipped — a partial series (some
// grid points lost to failed or cut-off runs) degrades to a fit over the
// surviving points; fewer than two usable points yield a zero Fit.
//
// The experiment harness uses it to verify the paper's shape claims: for
// example, the round-robin protocol of Example 1 must fit M(N) with
// exponent ≈ 2 and T(N) with exponent ≈ 1.
func LogLogFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("stats: LogLogFit with mismatched lengths")
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 && isFinite(xs[i]) && isFinite(ys[i]) {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	return LinearFit(lx, ly)
}

func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
