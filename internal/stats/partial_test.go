package stats

import (
	"math"
	"testing"
)

// Partial series — grid points lost to failed or cut-off runs arrive as
// NaN/Inf or zero medians — must degrade the fits, not poison them.

func TestLinearFitSkipsNonFinitePoints(t *testing.T) {
	xs := []float64{1, 2, math.NaN(), 3, 4}
	ys := []float64{2, 4, 100, math.Inf(1), 8}
	fit := LinearFit(xs, ys)
	if !almostEqual(fit.Slope, 2, 1e-9) || !almostEqual(fit.Intercept, 0, 1e-9) {
		t.Errorf("fit over surviving points = %v, want slope 2 intercept 0", fit)
	}
	if math.IsNaN(fit.R2) {
		t.Error("R² poisoned by a non-finite point")
	}
}

func TestLogLogFitSkipsNonFinitePoints(t *testing.T) {
	xs := []float64{10, 20, 40, 80}
	ys := []float64{100, math.Inf(1), 1600, 6400}
	fit := LogLogFit(xs, ys)
	if !almostEqual(fit.Slope, 2, 1e-9) {
		t.Errorf("exponent = %v, want 2 from the surviving points", fit.Slope)
	}
}

func TestFitsDegradeToZeroWhenNothingSurvives(t *testing.T) {
	nan := math.NaN()
	if fit := LinearFit([]float64{nan, nan}, []float64{1, 2}); fit != (Fit{}) {
		t.Errorf("all-missing series: %v, want zero Fit", fit)
	}
	if fit := LogLogFit([]float64{1, 2}, []float64{0, nan}); fit != (Fit{}) {
		t.Errorf("all-unusable series: %v, want zero Fit", fit)
	}
}
