package stats

import (
	"math"
	"testing"

	"github.com/ugf-sim/ugf/internal/xrand"
)

// TestChiSquarePKnownQuantiles pins the tail function against standard
// chi-squared table values.
func TestChiSquarePKnownQuantiles(t *testing.T) {
	cases := []struct {
		stat float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{6.635, 1, 0.01},
		{9.488, 4, 0.05},
		{18.307, 10, 0.05},
		{0, 3, 1},
		{-1, 3, 1},
		{5, 0, 1},
	}
	for _, tc := range cases {
		got := ChiSquareP(tc.stat, tc.df)
		if math.Abs(got-tc.want) > 5e-4 {
			t.Errorf("ChiSquareP(%v, %d) = %v, want ≈ %v", tc.stat, tc.df, got, tc.want)
		}
	}
}

func sample(seed uint64, n int, gen func(*xrand.RNG) float64) []float64 {
	rng := xrand.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = gen(rng)
	}
	return xs
}

// TestChiSquareTwoSample checks the discriminating power on seeded
// synthetic data: same distribution → comfortably unrejected, clearly
// shifted distribution → decisively rejected.
func TestChiSquareTwoSample(t *testing.T) {
	uniform := func(rng *xrand.RNG) float64 { return rng.Float64() }
	shifted := func(rng *xrand.RNG) float64 { return rng.Float64() + 0.8 }

	_, df, p := ChiSquareTwoSample(sample(1, 500, uniform), sample(2, 500, uniform), 8)
	if df == 0 || p < 0.01 {
		t.Errorf("same distribution rejected: df=%d p=%v", df, p)
	}

	_, df, p = ChiSquareTwoSample(sample(3, 500, uniform), sample(4, 500, shifted), 8)
	if df == 0 || p > 1e-6 {
		t.Errorf("shifted distribution not rejected: df=%d p=%v", df, p)
	}

	// Unequal sample sizes still work through the scaling factors.
	_, df, p = ChiSquareTwoSample(sample(5, 200, uniform), sample(6, 800, uniform), 8)
	if df == 0 || p < 0.01 {
		t.Errorf("unequal sizes, same distribution rejected: df=%d p=%v", df, p)
	}
}

// TestChiSquareTwoSampleDegenerate checks the no-evidence escapes.
func TestChiSquareTwoSampleDegenerate(t *testing.T) {
	for name, tc := range map[string]struct{ xs, ys []float64 }{
		"empty a":     {nil, []float64{1, 2}},
		"empty b":     {[]float64{1, 2}, nil},
		"single cell": {[]float64{5, 5, 5}, []float64{5, 5}},
	} {
		if _, df, p := ChiSquareTwoSample(tc.xs, tc.ys, 8); df != 0 || p != 1 {
			t.Errorf("%s: df=%d p=%v, want df=0 p=1", name, df, p)
		}
	}
	if _, df, p := ChiSquareTwoSample([]float64{1, 2, 3}, []float64{1, 2, 3}, 1); df != 0 || p != 1 {
		t.Errorf("bins=1: df=%d p=%v, want df=0 p=1", df, p)
	}
}
