package stats_test

import (
	"fmt"

	"github.com/ugf-sim/ugf/internal/stats"
)

func ExampleSummarize() {
	s := stats.Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	fmt.Printf("median=%.1f IQR=[%.1f, %.1f] mean=%.1f\n", s.Median, s.Q1, s.Q3, s.Mean)
	// Output:
	// median=4.5 IQR=[4.0, 5.5] mean=5.0
}

func ExampleLogLogFit() {
	// Verify a shape claim: these message counts grow quadratically.
	ns := []float64{10, 50, 100, 500}
	ms := []float64{300, 7500, 30000, 750000} // 3·N²
	fit := stats.LogLogFit(ns, ms)
	fmt.Printf("growth exponent: %.1f\n", fit.Slope)
	// Output:
	// growth exponent: 2.0
}

func ExampleMedianCI() {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	iv := stats.MedianCI(xs, 0.95, 42)
	fmt.Println(iv.Contains(stats.Median(xs)))
	// Output:
	// true
}
