package adversary

import (
	"testing"

	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/sim"
)

func TestRegistryNamesResolve(t *testing.T) {
	names := Names()
	if len(names) == 0 || names[0] != "none" {
		t.Fatalf("Names() = %v, want \"none\" first", names)
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Errorf("duplicate name %q", name)
		}
		seen[name] = true
		a, ok := ByName(name)
		if !ok {
			t.Errorf("ByName(%q) not found although listed", name)
		}
		if name == "none" {
			if a != nil {
				t.Errorf("ByName(\"none\") = %v, want nil (adversary-free mode)", a)
			}
			continue
		}
		if a == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	// Every registry entry must be listed — no hidden adversaries.
	for name := range registry {
		if !seen[name] {
			t.Errorf("registry entry %q missing from Names()", name)
		}
	}
}

func TestRegistryPaperSettings(t *testing.T) {
	// "ugf" must be the paper's fixed-exponent Section V-A3 configuration,
	// "ugf-sampled" the ζ(2)-sampling variant; they are distinct values.
	fixed := MustByName("ugf")
	sampled := MustByName("ugf-sampled")
	if fixed == sampled {
		t.Fatal("ugf and ugf-sampled configured identically")
	}
	if fixed.Name() != "ugf" || sampled.Name() != "ugf" {
		t.Errorf("both variants must report the UGF adversary name")
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, ok := ByName("no-such-adversary"); ok {
		t.Error("unknown name resolved")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName did not panic on an unknown name")
		}
	}()
	MustByName("no-such-adversary")
}

func TestRegistryAdversariesRun(t *testing.T) {
	// Every registered adversary must drive a small run to completion.
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			var adv sim.Adversary
			if name != "none" {
				adv = MustByName(name)
			}
			o, err := sim.Run(sim.Config{
				N: 12, F: 4, Protocol: gossip.PushPull{}, Adversary: adv, Seed: 9,
				MaxEvents: 2_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if o.TEnd < 0 {
				t.Fatalf("bad outcome: %+v", o)
			}
		})
	}
}
