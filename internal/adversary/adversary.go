// Package adversary provides the non-UGF adversaries the paper discusses
// around its main contribution:
//
//   - Oblivious — an adversary that commits to all its crashes before the
//     execution starts (Section VI contrasts it with adaptive adversaries;
//     [14] shows oblivious adversaries are not powerful enough to harm a
//     gossip dissemination, which the `oblivious` experiment reproduces);
//   - Omission — the Section VII future-work variant that silently drops
//     messages from the controlled set instead of delaying them.
//
// The Universal Gossip Fighter itself and its component strategies live in
// package core.
package adversary

import (
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// Oblivious crashes F uniformly chosen processes at uniformly chosen,
// pre-committed global steps. It sees nothing of the execution: victims
// and times are fixed before step 1, which is precisely what makes it
// oblivious (and, per [14], ineffective).
type Oblivious struct {
	// MaxTime bounds the crash times (uniform on [1, MaxTime]);
	// 0 means 2N.
	MaxTime sim.Step
}

// Name implements sim.Adversary.
func (Oblivious) Name() string { return "oblivious" }

// New implements sim.Adversary.
func (o Oblivious) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	maxTime := o.MaxTime
	if maxTime == 0 {
		maxTime = sim.Step(2 * n)
	}
	inst := &obliviousInstance{}
	for _, v := range rng.SampleInts(n, f) {
		inst.plan = append(inst.plan, plannedCrash{
			victim: sim.ProcID(v),
			at:     1 + sim.Step(rng.Int63n(int64(maxTime))),
		})
	}
	return inst
}

type plannedCrash struct {
	victim sim.ProcID
	at     sim.Step
}

type obliviousInstance struct {
	plan []plannedCrash
}

func (o *obliviousInstance) Init(sim.View, sim.Control) {}

// Observe executes the pre-committed plan: each victim is crashed at the
// first observed step at or after its planned time. (Steps at which
// nothing can happen are skipped by the engine; crashing a process during
// such a step would be indistinguishable from crashing it at the next
// active one.)
func (o *obliviousInstance) Observe(now sim.Step, _ []sim.SendRecord, view sim.View, ctl sim.Control) {
	for i := 0; i < len(o.plan); {
		if o.plan[i].at <= now {
			ctl.Crash(o.plan[i].victim)
			o.plan[i] = o.plan[len(o.plan)-1]
			o.plan = o.plan[:len(o.plan)-1]
			continue
		}
		i++
	}
}

func (o *obliviousInstance) Label() string { return "" }

// Omission is the stronger adversary of the paper's future-work section:
// instead of delaying the messages of the controlled set C (a uniform
// F/2-sample, as in UGF), it makes the network silently drop them. Sends
// still count toward M(O) — the processes did the work — but nothing
// arrives until the drop budget is spent, after which the network heals.
type Omission struct {
	// DropBudget is the number of messages from C to drop before the
	// attack stops; 0 means F².
	DropBudget int64
}

// Name implements sim.Adversary.
func (Omission) Name() string { return "omission" }

// New implements sim.Adversary.
func (o Omission) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	if f/2 == 0 {
		return &omissionInstance{}
	}
	budget := o.DropBudget
	if budget == 0 {
		budget = int64(f) * int64(f)
	}
	inst := &omissionInstance{budget: budget, inC: make(map[sim.ProcID]bool)}
	for _, v := range rng.SampleInts(n, f/2) {
		inst.c = append(inst.c, sim.ProcID(v))
		inst.inC[sim.ProcID(v)] = true
	}
	return inst
}

type omissionInstance struct {
	c       []sim.ProcID
	inC     map[sim.ProcID]bool
	budget  int64
	dropped int64
	healed  bool
}

func (o *omissionInstance) Init(view sim.View, ctl sim.Control) {
	for _, p := range o.c {
		ctl.SetOmitFrom(p, true)
	}
}

func (o *omissionInstance) Observe(now sim.Step, events []sim.SendRecord, view sim.View, ctl sim.Control) {
	if o.healed || len(o.c) == 0 {
		return
	}
	for _, ev := range events {
		if o.inC[ev.From] {
			o.dropped++
		}
	}
	if o.dropped >= o.budget {
		o.healed = true
		for _, p := range o.c {
			ctl.SetOmitFrom(p, false)
		}
	}
}

func (o *omissionInstance) Label() string { return "" }
