package adversary

import (
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// Rewire is the oblivious dynamic-network adversary: every Window active
// steps it spends part of a fixed edge-edit budget mutating the
// communication graph, replacing live edges with fresh ones
// (Control.RewireEdges) or — with probability Drop — deleting them
// outright. It is oblivious in the Definition II.5 sense: every choice is
// drawn from its private stream and the graph state it has itself shaped,
// never from the execution (no send records, no process state). Pure
// removals can disconnect the graph, so runs under a dropping Rewire
// should set Config.StallWindow (and, defensively, Config.MaxEvents);
// the default rewire-only instance preserves the edge count.
type Rewire struct {
	// Budget bounds the topology rewrites spent, counted exactly as
	// Stats.TopologyRewrites counts them: a removal costs one, a
	// successful rewire two. 0 means N.
	Budget int
	// Window is how many active steps separate rewiring rounds (0 means 8).
	Window sim.Step
	// PerRound is how many moves each round attempts (0 means 1). Moves
	// the graph refuses (rewire target already adjacent, no live edge at
	// the chosen process) still consume the attempt, not the budget.
	PerRound int
	// Drop is the probability a move deletes its edge instead of rewiring
	// it. The default 0 keeps the graph's edge count invariant.
	Drop float64
}

// Name implements sim.Adversary.
func (Rewire) Name() string { return "rewire" }

// New implements sim.Adversary.
func (a Rewire) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	budget, window, perRound := a.Budget, a.Window, a.PerRound
	if budget == 0 {
		budget = n
	}
	if window == 0 {
		window = 8
	}
	if perRound == 0 {
		perRound = 1
	}
	return &rewireInstance{
		n: n, budget: budget, window: window, perRound: perRound,
		drop: a.Drop, rng: rng,
	}
}

type rewireInstance struct {
	n        int
	budget   int
	window   sim.Step
	perRound int
	drop     float64
	rng      *xrand.RNG

	next  sim.Step // first step at/after which the next round runs
	spent int      // topology rewrites consumed so far
}

func (a *rewireInstance) Init(view sim.View, ctl sim.Control) {}

// Observe runs one rewiring round every Window active steps until the
// budget is gone. Rounds are timed against observed steps, like the
// partition adversary's phases: the engine skips inert steps, and an edge
// edit during one would be unobservable anyway.
func (a *rewireInstance) Observe(now sim.Step, _ []sim.SendRecord, view sim.View, ctl sim.Control) {
	if a.spent >= a.budget || now < a.next || a.n < 3 {
		return
	}
	a.next = now + a.window
	for i := 0; i < a.perRound && a.spent < a.budget; i++ {
		p := sim.ProcID(a.rng.Intn(a.n))
		b, ok := a.liveNeighbor(p, view)
		if !ok {
			continue // p is isolated; the attempt is spent, the budget is not
		}
		if a.rng.Bernoulli(a.drop) {
			if ctl.RemoveEdge(p, b) {
				a.spent++
			}
			continue
		}
		to := sim.ProcID(a.rng.IntnExcept(a.n, int(p)))
		if ctl.RewireEdges(p, b, to) {
			a.spent += 2
		}
	}
}

// liveNeighbor finds a live neighbor of p by scanning the membership from
// a random start, so sparse and complete graphs pay the same bounded cost
// and the draw order stays a pure function of the private stream.
func (a *rewireInstance) liveNeighbor(p sim.ProcID, view sim.View) (sim.ProcID, bool) {
	start := a.rng.Intn(a.n)
	for k := 0; k < a.n; k++ {
		q := sim.ProcID((start + k) % a.n)
		if q == p {
			continue
		}
		if view.EdgeLive(p, q) {
			return q, true
		}
	}
	return 0, false
}

func (a *rewireInstance) Label() string { return "" }
