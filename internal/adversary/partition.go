package adversary

import (
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// Partition is a network-partition adversary: it splits the membership
// into communication classes (the network drops every message crossing a
// class boundary at send time), holds the partition for a window of
// active steps, heals it for a gap, and repeats for a fixed number of
// cycles. After the last cycle the network stays healed, so runs under
// the registry instance always terminate; the Permanent variant — which
// never heals and therefore stalls any dissemination that needs cross-
// class traffic — exists for the stall-detection machinery and is only
// constructed directly, never served by the registry.
type Partition struct {
	// Classes is the number of partition classes (0 means 2; capped at N).
	// Processes are dealt into classes evenly — a random permutation taken
	// mod Classes, re-drawn each cycle — so every class is non-empty and
	// Classes = N isolates every process.
	Classes int
	// Window is how many active steps each partition lasts (0 means 64).
	Window sim.Step
	// Gap is how many active steps the network stays healed between
	// partitions (0 means 32).
	Gap sim.Step
	// Cycles is how many partition windows to run (0 means 2).
	Cycles int
	// Permanent partitions once at step 1 and never heals. Window, Gap
	// and Cycles are ignored. Runs that need cross-class traffic to make
	// progress will stall; pair it with Config.StallWindow.
	Permanent bool
}

// Name implements sim.Adversary.
func (Partition) Name() string { return "partition" }

// New implements sim.Adversary.
func (a Partition) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	classes, window, gap, cycles := a.Classes, a.Window, a.Gap, a.Cycles
	if classes == 0 {
		classes = 2
	}
	if window == 0 {
		window = 64
	}
	if gap == 0 {
		gap = 32
	}
	if cycles == 0 {
		cycles = 2
	}
	if classes > n {
		classes = n
	}
	return &partitionInstance{
		n: n, classes: classes, window: window, gap: gap,
		cycles: cycles, permanent: a.Permanent, rng: rng,
	}
}

type partitionInstance struct {
	n         int
	classes   int
	window    sim.Step
	gap       sim.Step
	cycles    int
	permanent bool
	rng       *xrand.RNG

	split bool     // a partition is currently in force
	next  sim.Step // first step at/after which the phase flips
	done  int      // completed partition windows
}

func (a *partitionInstance) Init(view sim.View, ctl sim.Control) {}

// Observe drives the window/gap cycle on active steps. Phases are timed
// against observed steps — the engine skips steps at which nothing can
// happen, and flipping the partition during such a step would be
// unobservable anyway.
func (a *partitionInstance) Observe(now sim.Step, _ []sim.SendRecord, view sim.View, ctl sim.Control) {
	if a.split {
		if !a.permanent && now >= a.next {
			for p := 0; p < a.n; p++ {
				ctl.SetClass(sim.ProcID(p), 0)
			}
			a.split = false
			a.done++
			a.next = now + a.gap
		}
		return
	}
	if a.done >= a.cycles && !a.permanent {
		return // permanently healed
	}
	if a.done > 0 && now < a.next {
		return // still in the gap between windows
	}
	perm := a.rng.Perm(a.n)
	for p := 0; p < a.n; p++ {
		ctl.SetClass(sim.ProcID(p), perm[p]%a.classes)
	}
	a.split = true
	a.next = now + a.window
}

func (a *partitionInstance) Label() string { return "" }

// CrashRecovery exercises the crash-recovery lifecycle: it samples up to
// ⌊F/2⌋ victims (so each crash leaves budget for its own recovery — the
// budget counts cumulative crash events), crashes each at a pre-committed
// step, and recovers it Downtime active steps later, flipping a coin per
// victim between amnesiac and retained recovery. Against Forgetter
// protocols the amnesiac half restarts dissemination from scratch.
type CrashRecovery struct {
	// MaxTime bounds the crash times (uniform on [1, MaxTime]); 0 means 2N.
	MaxTime sim.Step
	// Downtime is how many steps a victim stays down (0 means 16).
	Downtime sim.Step
}

// Name implements sim.Adversary.
func (CrashRecovery) Name() string { return "crash-recovery" }

// New implements sim.Adversary.
func (a CrashRecovery) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	maxTime := a.MaxTime
	if maxTime == 0 {
		maxTime = sim.Step(2 * n)
	}
	downtime := a.Downtime
	if downtime == 0 {
		downtime = 16
	}
	inst := &crashRecoveryInstance{}
	for _, v := range rng.SampleInts(n, f/2) {
		inst.plan = append(inst.plan, plannedOutage{
			victim:  sim.ProcID(v),
			crashAt: 1 + sim.Step(rng.Int63n(int64(maxTime))),
			down:    downtime,
			amnesia: rng.Bernoulli(0.5),
		})
	}
	return inst
}

type plannedOutage struct {
	victim    sim.ProcID
	crashAt   sim.Step
	down      sim.Step
	amnesia   bool
	crashed   bool
	recoverAt sim.Step
}

type crashRecoveryInstance struct {
	plan []plannedOutage
}

func (a *crashRecoveryInstance) Init(sim.View, sim.Control) {}

// Observe executes each outage: crash at the first observed step at or
// after the planned time, recover once the downtime has elapsed. A crash
// the budget refuses (another adversary spent it first — impossible under
// this adversary alone) retires the outage.
func (a *crashRecoveryInstance) Observe(now sim.Step, _ []sim.SendRecord, view sim.View, ctl sim.Control) {
	for i := 0; i < len(a.plan); {
		o := &a.plan[i]
		switch {
		case !o.crashed && o.crashAt <= now:
			if ctl.Crash(o.victim) {
				o.crashed = true
				o.recoverAt = now + o.down
				i++
				continue
			}
		case o.crashed && o.recoverAt <= now:
			ctl.Recover(o.victim, o.amnesia)
		default:
			i++
			continue
		}
		a.plan[i] = a.plan[len(a.plan)-1]
		a.plan = a.plan[:len(a.plan)-1]
	}
}

func (a *crashRecoveryInstance) Label() string { return "" }
