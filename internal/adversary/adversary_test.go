package adversary

import (
	"testing"

	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/sim"
)

func run(t *testing.T, cfg sim.Config) sim.Outcome {
	t.Helper()
	o, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return o
}

func TestObliviousCrashesWithinBudget(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		o := run(t, sim.Config{
			N: 30, F: 9, Protocol: gossip.EARS{}, Adversary: Oblivious{}, Seed: seed,
		})
		if o.HorizonHit {
			t.Fatalf("seed %d: horizon hit", seed)
		}
		if o.Crashed > 9 {
			t.Fatalf("seed %d: crashed %d > F", seed, o.Crashed)
		}
		if !o.Gathered {
			t.Errorf("seed %d: survivors failed to gather", seed)
		}
	}
}

func TestObliviousCrashesEventuallyHappen(t *testing.T) {
	// With MaxTime=1 all crashes land at the first active step.
	o := run(t, sim.Config{
		N: 20, F: 6, Protocol: gossip.PushPull{}, Adversary: Oblivious{MaxTime: 1}, Seed: 3,
	})
	if o.Crashed != 6 {
		t.Errorf("Crashed = %d, want 6", o.Crashed)
	}
	if o.Strategy != "" {
		t.Errorf("oblivious adversary has no strategy label, got %q", o.Strategy)
	}
}

func TestObliviousIsWeak(t *testing.T) {
	// Section VI / [14]: the oblivious adversary is not powerful enough
	// to harm the dissemination — complexities stay within a small factor
	// of the no-adversary baseline.
	const n, f = 80, 24
	var baseT, obT float64
	var baseM, obM int64
	for seed := uint64(0); seed < 5; seed++ {
		b := run(t, sim.Config{N: n, F: f, Protocol: gossip.PushPull{}, Seed: seed})
		o := run(t, sim.Config{N: n, F: f, Protocol: gossip.PushPull{}, Adversary: Oblivious{}, Seed: seed})
		baseT += b.Time
		obT += o.Time
		baseM += b.Messages
		obM += o.Messages
	}
	if obT > 3*baseT {
		t.Errorf("oblivious tripled time: %.1f vs baseline %.1f", obT, baseT)
	}
	if obM > 2*baseM {
		t.Errorf("oblivious doubled messages: %d vs baseline %d", obM, baseM)
	}
}

func TestOmissionDropsThenHeals(t *testing.T) {
	o := run(t, sim.Config{
		N: 20, F: 6, Protocol: gossip.EARS{}, Adversary: Omission{DropBudget: 50}, Seed: 1,
		MaxEvents: 5_000_000,
	})
	if o.HorizonHit {
		t.Fatal("omission run did not terminate after healing")
	}
	if !o.Gathered {
		t.Error("after the drop budget heals, gathering must complete")
	}
	if o.Crashed != 0 {
		t.Errorf("omission adversary crashed %d processes", o.Crashed)
	}
}

func TestOmissionNoBudgetIsIdle(t *testing.T) {
	// F = 1 means |C| = 0: the omission adversary degenerates to a no-op.
	base := run(t, sim.Config{N: 15, F: 1, Protocol: gossip.PushPull{}, Seed: 2})
	om := run(t, sim.Config{N: 15, F: 1, Protocol: gossip.PushPull{}, Adversary: Omission{}, Seed: 2})
	if base.Messages != om.Messages || base.TEnd != om.TEnd {
		t.Errorf("idle omission changed the run: %+v vs %+v", base, om)
	}
}

func TestOmissionCostsMessages(t *testing.T) {
	// Dropped sends are wasted work: the attacked run must send more
	// messages than the baseline to finish gathering.
	const n, f = 40, 12
	var base, attacked int64
	for seed := uint64(0); seed < 5; seed++ {
		b := run(t, sim.Config{N: n, F: f, Protocol: gossip.EARS{}, Seed: seed})
		a := run(t, sim.Config{N: n, F: f, Protocol: gossip.EARS{}, Adversary: Omission{}, Seed: seed,
			MaxEvents: 20_000_000})
		base += b.Messages
		attacked += a.Messages
	}
	if attacked <= base {
		t.Errorf("omission attack did not cost messages: %d vs %d", attacked, base)
	}
}

func TestAdversaryNames(t *testing.T) {
	if (Oblivious{}).Name() != "oblivious" {
		t.Error("oblivious name")
	}
	if (Omission{}).Name() != "omission" {
		t.Error("omission name")
	}
}
