package adversary

import (
	"fmt"

	"github.com/ugf-sim/ugf/internal/core"
	"github.com/ugf-sim/ugf/internal/sim"
)

// ByName returns the adversary with the given registry name, configured
// with the paper's experimental parameters, mirroring gossip.ByName. The
// name "none" resolves to (nil, true): a nil Adversary is the engine's
// adversary-free mode. Parameterized construction (custom exponents,
// crash schedules, …) is done by building the struct directly.
func ByName(name string) (sim.Adversary, bool) {
	if name == "none" {
		return nil, true
	}
	a, ok := registry[name]
	return a, ok
}

// Names lists the registry names, "none" first, then the paper's
// presentation order: UGF and its variants, the component strategies, the
// contrast adversaries.
func Names() []string {
	return append([]string(nil), names...)
}

// MustByName is ByName for static names; it panics on unknown ones.
func MustByName(name string) sim.Adversary {
	a, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("adversary: unknown adversary %q (have %v)", name, Names()))
	}
	return a
}

// names fixes the order Names returns; every entry except "none" has a
// registry value.
var names = []string{
	"none", "ugf", "ugf-sampled",
	"strategy-1", "strategy-2.1.0", "strategy-2.1.1",
	"oblivious", "omission", "partition", "crash-recovery",
}

// registry maps names to configured values. The strategy keys name the
// k = l = 1 instantiations the experiments use ("strategy-2.1.0",
// "strategy-2.1.1"), not the generic Name() labels ("strategy-2.k.0"),
// which describe the parameterized family.
var registry = map[string]sim.Adversary{
	// The paper's Section V-A3 setting fixes both exponents to 1; the
	// sampled variant draws them from ζ(2) as Algorithm 1 specifies.
	"ugf":                core.UGF{FixedK: 1, FixedL: 1},
	"ugf-sampled":        core.UGF{},
	"strategy-1":         core.Strategy1{},
	"strategy-2.1.0":     core.Strategy2K0{},
	"strategy-2.1.1":     core.Strategy2KL{},
	(Oblivious{}).Name(): Oblivious{},
	(Omission{}).Name():  Omission{},
	// The registry partition always heals after its cycles, so property
	// sweeps over registry names terminate; Partition{Permanent: true} is
	// only ever constructed directly.
	(Partition{}).Name():     Partition{},
	(CrashRecovery{}).Name(): CrashRecovery{},
}
