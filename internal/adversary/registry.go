package adversary

import (
	"fmt"
	"reflect"

	"github.com/ugf-sim/ugf/internal/core"
	"github.com/ugf-sim/ugf/internal/params"
	"github.com/ugf-sim/ugf/internal/sim"
)

// Entry is one registered adversary: its registry name, the configured
// default instance, and the machine-readable schemas of its tunable
// parameters — the same shape the protocol registry exposes, so the sweep
// service validates both sides of a spec identically.
type Entry struct {
	// Name is the registry name ("ugf", "strategy-2.1.0", …). "none" has
	// an Entry with a nil Adversary and no parameters.
	Name string
	// Adversary is the configured default instance (nil for "none").
	Adversary sim.Adversary
	// Params describes the entry's tunable parameters.
	Params []params.Schema
}

// ByName returns the adversary with the given registry name, configured
// with the paper's experimental parameters, mirroring gossip.ByName. The
// name "none" resolves to (nil, true): a nil Adversary is the engine's
// adversary-free mode. Parameterized construction is done with Build
// (validated, by name) or by building the struct directly.
func ByName(name string) (sim.Adversary, bool) {
	if name == "none" {
		return nil, true
	}
	e, ok := registry[name]
	if !ok {
		return nil, false
	}
	return e.Adversary, true
}

// EntryByName returns the full registry entry, schemas included; "none"
// resolves to an empty entry.
func EntryByName(name string) (Entry, bool) {
	if name == "none" {
		return Entry{Name: "none"}, true
	}
	e, ok := registry[name]
	return e, ok
}

// Names lists the registry names, "none" first, then the paper's
// presentation order: UGF and its variants, the component strategies, the
// contrast adversaries.
func Names() []string {
	return append([]string(nil), names...)
}

// Entries lists the registry entries in Names order, "none" included.
func Entries() []Entry {
	out := make([]Entry, 0, len(names))
	for _, name := range names {
		e, _ := EntryByName(name)
		out = append(out, e)
	}
	return out
}

// MustByName is ByName for static names; it panics on unknown ones.
func MustByName(name string) sim.Adversary {
	a, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("adversary: unknown adversary %q (have %v)", name, Names()))
	}
	return a
}

// Build constructs the named adversary with the given parameter overrides
// applied on top of the entry's configured default instance, validated
// against the entry's schemas. "none" accepts no parameters and builds
// nil. Unknown names and invalid parameters return an error (a
// *params.Error for parameter failures).
func Build(name string, p map[string]float64) (sim.Adversary, error) {
	if name == "none" {
		if len(p) > 0 {
			return nil, &params.Error{Msg: `adversary "none" takes no parameters`}
		}
		return nil, nil
	}
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("adversary: unknown adversary %q (have %v)", name, Names())
	}
	if len(p) == 0 {
		return e.Adversary, nil
	}
	v, err := params.Apply(e.Adversary, p, e.Params)
	if err != nil {
		return nil, err
	}
	return v.(sim.Adversary), nil
}

// Extract maps a concrete adversary value back to (registry name,
// parameter overrides): the inverse of Build, used by the spec
// canonicalizer. nil extracts to "none". Exact matches on a configured
// default win (so core.UGF{FixedK: 1, FixedL: 1} names "ugf" and
// core.UGF{} names "ugf-sampled"); tuned instances name the first
// same-type entry in Names order with the differing fields as overrides.
// ok is false for unregistered adversary types.
func Extract(a sim.Adversary) (name string, overrides map[string]float64, ok bool) {
	if a == nil {
		return "none", nil, true
	}
	bestName := ""
	var bestDiff map[string]float64
	for _, name := range names {
		if name == "none" {
			continue
		}
		e := registry[name]
		if reflect.TypeOf(e.Adversary) != reflect.TypeOf(a) {
			continue
		}
		diff := params.Diff(a, e.Adversary)
		if len(diff) == 0 {
			return name, nil, true // exact match on the configured default
		}
		if bestName == "" {
			bestName = name
			bestDiff = diff
		}
	}
	if bestName == "" {
		return "", nil, false
	}
	return bestName, bestDiff, true
}

// names fixes the order Names returns; every entry except "none" has a
// registry value.
var names = []string{
	"none", "ugf", "ugf-sampled",
	"strategy-1", "strategy-2.1.0", "strategy-2.1.1",
	"oblivious", "omission", "partition", "crash-recovery", "rewire",
}

// advBounds constrains the parameters whose domains the adversary
// implementations assume: the strategy-mix probabilities live in [0, 1],
// counts and step times are non-negative.
var advBounds = params.Bounds{
	"q1":          {0, 1},
	"q2":          {0, 1},
	"tau":         {0, 1 << 50},
	"fixedk":      {0, 64},
	"fixedl":      {0, 64},
	"maxexponent": {0, 64},
	"k":           {0, 64},
	"l":           {0, 64},
	"maxtime":     {0, 1 << 50},
	"dropbudget":  {0, 1 << 50},
	"classes":     {0, 1 << 31},
	"window":      {0, 1 << 50},
	"gap":         {0, 1 << 50},
	"cycles":      {0, 1 << 31},
	"downtime":    {0, 1 << 50},
	"budget":      {0, 1 << 31},
	"perround":    {0, 1 << 31},
	"drop":        {0, 1},
}

// registry maps names to configured entries. The strategy keys name the
// k = l = 1 instantiations the experiments use ("strategy-2.1.0",
// "strategy-2.1.1"), not the generic Name() labels ("strategy-2.k.0"),
// which describe the parameterized family.
var registry = map[string]Entry{}

func register(name string, a sim.Adversary) {
	registry[name] = Entry{Name: name, Adversary: a, Params: params.Describe(a, advBounds)}
}

func init() {
	// The paper's Section V-A3 setting fixes both exponents to 1; the
	// sampled variant draws them from ζ(2) as Algorithm 1 specifies.
	register("ugf", core.UGF{FixedK: 1, FixedL: 1})
	register("ugf-sampled", core.UGF{})
	register("strategy-1", core.Strategy1{})
	register("strategy-2.1.0", core.Strategy2K0{})
	register("strategy-2.1.1", core.Strategy2KL{})
	register((Oblivious{}).Name(), Oblivious{})
	register((Omission{}).Name(), Omission{})
	// The registry partition always heals after its cycles, so property
	// sweeps over registry names terminate; Partition{Permanent: true} is
	// only ever constructed directly (its spec encoding carries
	// permanent=1).
	register((Partition{}).Name(), Partition{})
	register((CrashRecovery{}).Name(), CrashRecovery{})
	// The registry rewire keeps Drop = 0 (edge-count-preserving), so
	// property sweeps over registry names stay likely to terminate even
	// on sparse topologies; dropping instances are built directly or via
	// Build with a drop override.
	register((Rewire{}).Name(), Rewire{})
}
