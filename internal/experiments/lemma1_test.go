package experiments

import "testing"

func TestLemma1Quick(t *testing.T) {
	rep, err := mustExp(t, "lemma1").Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Notes {
		t.Log(n)
	}
	if !hasNote(rep, "cannot distinguish the strategies before τᵏ: REPRODUCED") {
		t.Errorf("indistinguishability not reproduced; notes: %v", rep.Notes)
		for _, tbl := range rep.Tables {
			for _, row := range tbl.Rows {
				t.Log(row)
			}
		}
	}
}
