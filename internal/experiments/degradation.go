package experiments

import (
	"fmt"

	"github.com/ugf-sim/ugf/internal/adversary"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/plot"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "degradation",
		Title: "Fault-model extension — degradation under lossy links and crash-recovery",
		Run:   runDegradation,
	})
}

// degradationDrops is the omission-rate grid of the degradation sweep.
var degradationDrops = []float64{0, 0.1, 0.3, 0.5}

// runDegradation measures how gracefully Push-Pull and EARS degrade when
// the network itself is faulty — per-message omission at increasing rates,
// and a crash-recovery churn adversary — rather than under the paper's
// delay-based adversaries. The paper's model keeps the network reliable
// (Section II); this extension asks how far each protocol's redundancy
// carries it once that assumption is dropped, and doubles as the
// end-to-end exercise of the stall detector: every spec sets a stall
// window, and a stalled run must surface as a classified outcome, never a
// sweep failure.
func runDegradation(cfg Config) (*Report, error) {
	rep := &Report{
		ID:       "degradation",
		Title:    "Degradation under omission faults and crash-recovery",
		Paper:    "Extension beyond the paper's reliable-network model (Section II assumes every sent message is delivered within the delay bound).",
		Fidelity: cfg.Fidelity,
	}
	n := cfg.midN()
	f := int(0.3 * float64(n))
	protos := []sim.Protocol{gossip.PushPull{}, gossip.EARS{}}

	// The stall window is generous — several times the event count of a
	// clean run — so it only trips on genuine no-progress spinning, not on
	// slow dissemination through a lossy network.
	const stallWindow = 1 << 20

	type faultCase struct {
		name string
		drop float64
		adv  sim.Adversary
	}
	var fcases []faultCase
	for _, d := range degradationDrops {
		fcases = append(fcases, faultCase{name: fmt.Sprintf("drop=%.0f%%", 100*d), drop: d})
	}
	fcases = append(fcases, faultCase{name: "crash-recovery", adv: adversary.CrashRecovery{}})

	var specs []runner.Spec
	for _, proto := range protos {
		for _, fc := range fcases {
			base := sim.Config{
				N: n, F: f, Protocol: proto, Adversary: fc.adv,
				MaxEvents: 200_000_000, StallWindow: stallWindow,
			}
			if fc.drop > 0 {
				base.Faults = &sim.FaultPlan{Seed: cfg.seed(), Drop: fc.drop}
			}
			specs = append(specs, runner.Spec{
				Name:     proto.Name() + "/" + fc.name,
				Base:     base,
				Runs:     cfg.runs(),
				BaseSeed: cfg.seed(),
			})
		}
	}
	results, err := execute(rep, cfg, specs)
	if err != nil {
		return nil, err
	}

	table := &plot.Table{
		Title:   fmt.Sprintf("dissemination under network faults (N=%d, F=%d)", n, f),
		Columns: []string{"protocol", "fault", "median T", "median M", "gathered", "stalled", "cutoff", "failed"},
	}
	curve := map[string][]float64{}
	gathered := map[string][]float64{}
	graceful := true
	idx := 0
	for _, proto := range protos {
		for _, fc := range fcases {
			res := results[idx]
			idx++
			mT, _, _ := medianOf(res.Outcomes, runner.Times)
			mM, _, _ := medianOf(res.Outcomes, runner.Messages)
			table.AddRow(proto.Name(), fc.name, mT, mM,
				plot.FormatFloat(runner.GatheredRate(res.Outcomes)),
				plot.FormatFloat(runner.StalledRate(res.Outcomes)),
				plot.FormatFloat(runner.CutoffRate(res.Outcomes)),
				res.Failed())
			if fc.adv == nil {
				curve[proto.Name()] = append(curve[proto.Name()], mT)
				gathered[proto.Name()] = append(gathered[proto.Name()], runner.GatheredRate(res.Outcomes))
			}
			// Graceful degradation = the sweep completes every run: faults
			// shift the complexity medians but never produce an engine error,
			// and any starved run is classified as stalled, not failed.
			if res.Failed() > 0 {
				graceful = false
			}
		}
	}
	rep.Tables = append(rep.Tables, table)

	chart := plot.Chart{
		Title:  "median T vs omission rate",
		XLabel: "drop probability",
		YLabel: "time T(O)",
		Xs:     degradationDrops,
	}
	for _, proto := range protos {
		chart.Series = append(chart.Series, plot.Series{Name: proto.Name(), Ys: curve[proto.Name()]})
	}
	rep.Charts = append(rep.Charts, chart)

	annotateDegradation(rep, protos, curve, gathered, graceful)
	return rep, nil
}

// annotateDegradation records the shape findings: losses slow
// dissemination monotonically (time medians rise with the drop rate), the
// protocols' redundancy — not any retransmission logic, which none of
// them has — decides whether gathering survives the loss, and the engine
// degrades gracefully (no run errors; starvation surfaces as the Stalled
// classification).
func annotateDegradation(rep *Report, protos []sim.Protocol, curve, gathered map[string][]float64, graceful bool) {
	maxDrop := 100 * degradationDrops[len(degradationDrops)-1]
	for _, proto := range protos {
		ys := curve[proto.Name()]
		if len(ys) == 0 {
			continue
		}
		degraded := ys[len(ys)-1] >= ys[0]
		rep.Notef("%s: median T %.1f at drop=0%% → %.1f at drop=%.0f%% — redundancy absorbs losses at a time cost %s",
			proto.Name(), ys[0], ys[len(ys)-1], maxDrop, verdict(degraded))
	}
	if pp, ea := gathered[gossip.PushPull{}.Name()], gathered[gossip.EARS{}.Name()]; len(pp) > 0 && len(ea) > 0 {
		rep.Notef("observation: at drop=%.0f%% EARS still gathers %.0f%% of rumors while Push-Pull gathers %.0f%% — "+
			"EARS keeps every informed process sending until it sleeps, so lost copies are re-sent for free, "+
			"while Push-Pull's one-shot pull replies have no second chance",
			maxDrop, 100*ea[len(ea)-1], 100*pp[len(pp)-1])
	}
	rep.Notef("graceful degradation — every faulty run completes with a classified outcome (no engine errors, stalls detected): %s",
		verdict(graceful))
}
