package experiments

import (
	"fmt"

	"github.com/ugf-sim/ugf/internal/core"
	"github.com/ugf-sim/ugf/internal/plot"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "tuning",
		Title: "Section III-B — tuning q₁, q₂ with prior knowledge",
		Run:   runTuning,
	})
}

// runTuning quantifies the paper's remark that q₁ and q₂ "may be tuned …
// if there is prior knowledge about the gossip protocol to attack": a UGF
// biased toward the strategy that hurts a known protocol most beats the
// knowledge-free uniform mixture on that protocol — while the uniform
// mixture is the safe choice across all protocols.
func runTuning(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "tuning",
		Title: "Tuned vs uniform UGF",
		Paper: "\"One may tune these parameters to change the probability of applying some specific strategies, " +
			"e.g. if there is prior knowledge about the gossip protocol to attack. Without prior knowledge, the " +
			"safe choice is to make all these strategies equiprobable\" (Section III-B).",
		Fidelity: cfg.Fidelity,
	}
	n := cfg.midN()
	f := int(0.3 * float64(n))
	// Attack variants: the uniform mixture and two "informed" tunings.
	// Probability parameters live in (0,1), so "almost always" stands in
	// for "always" (the standalone strategies cover the limit case).
	const nearly = 0.999
	const rarely = 0.001
	attacks := []struct {
		name string
		adv  sim.Adversary
	}{
		{"uniform (q1=1/3, q2=1/2)", core.UGF{FixedK: 1, FixedL: 1}},
		{"tuned to time (q1≈0, q2≈1 → 2.k.0)", core.UGF{Q1: rarely, Q2: nearly, FixedK: 1, FixedL: 1}},
		{"tuned to messages (q1≈0, q2≈0 → 2.k.l)", core.UGF{Q1: rarely, Q2: rarely, FixedK: 1, FixedL: 1}},
	}
	protos := threeProtocols()

	var specs []runner.Spec
	for _, proto := range protos {
		for _, a := range attacks {
			specs = append(specs, runner.Spec{
				Name: proto.Name() + "/" + a.name,
				Base: sim.Config{N: n, F: f, Protocol: proto, Adversary: a.adv,
					MaxEvents: 100_000_000},
				Runs:     cfg.runs(),
				BaseSeed: cfg.seed(),
			})
		}
	}
	results, err := execute(rep, cfg, specs)
	if err != nil {
		return nil, err
	}

	table := &plot.Table{
		Title:   fmt.Sprintf("prior knowledge pays (N=%d, F=%d)", n, f),
		Columns: []string{"protocol", "attack", "median T", "median M"},
	}
	type cell struct{ t, m float64 }
	vals := map[string]cell{}
	idx := 0
	for _, proto := range protos {
		for _, a := range attacks {
			outs := results[idx].Outcomes
			idx++
			mT, _, _ := medianOf(outs, runner.Times)
			mM, _, _ := medianOf(outs, runner.Messages)
			vals[proto.Name()+"/"+a.name] = cell{mT, mM}
			table.AddRow(proto.Name(), a.name, mT, mM)
		}
	}
	rep.Tables = append(rep.Tables, table)

	// EARS is the protocol where the split is clearest: 2.k.0 maximizes
	// its time, 2.k.l its messages (the `strategies` experiment).
	uni := vals["ears/"+attacks[0].name]
	timeTuned := vals["ears/"+attacks[1].name]
	msgTuned := vals["ears/"+attacks[2].name]
	rep.Notef("EARS median T: uniform %.1f vs time-tuned %.1f; median M: uniform %.0f vs message-tuned %.0f",
		uni.t, timeTuned.t, uni.m, msgTuned.m)
	rep.Notef("paper claim — tuned UGF beats the uniform mixture on its target metric: %s",
		verdict(timeTuned.t > uni.t && msgTuned.m > uni.m))
	return rep, nil
}
