package experiments

import (
	"fmt"
	"reflect"

	"github.com/ugf-sim/ugf/internal/core"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/plot"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "lemma1",
		Title: "Lemmas 1–3 — strategy indistinguishability during [1, τᵏ]",
		Run:   runLemma1,
	})
}

// runLemma1 validates the indistinguishability lemmas in their strongest
// executable form. The lemmas say the actions of every ρ ∈ Π∖C during the
// global time frame [1, τᵏ] are equally likely under Strategy 1, 2.k.0
// and 2.k.l. In this simulator a run is a pure function of its random
// streams, and during [1, τᵏ] no message from C reaches Π∖C under any of
// the three strategies — so with identical seeds the distributions are
// not merely equal, the send traces of Π∖C must be *bit-identical* across
// strategies. The experiment replays every seed under each strategy pair
// and compares the exact (from, to, step) send sequences in the window.
func runLemma1(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "lemma1",
		Title: "Strategy indistinguishability during [1, τᵏ]",
		Paper: "Lemma 1: Strategies 1 and 2.k.l are indistinguishable to Π∖C on [1, τᵏ]; " +
			"Lemmas 2–3 extend this across strategy pairs. Randomization therefore prevents " +
			"the protocol from adapting before the attack has committed.",
		Fidelity: cfg.Fidelity,
	}
	n := cfg.midN()
	f := int(0.3 * float64(n))
	tau := sim.Step(f) // the experimental setting τ = F, k = 1

	advs := []struct {
		name string
		adv  sim.Adversary
	}{
		{"strategy-1", core.Strategy1{}},
		{"strategy-2.1.0", core.Strategy2K0{}},
		{"strategy-2.1.1", core.Strategy2KL{}},
	}
	protos := []sim.Protocol{gossip.PushPull{}, gossip.EARS{}, gossip.SEARS{}}

	table := &plot.Table{
		Title:   fmt.Sprintf("exact window-trace equality across strategies (N=%d, F=%d, τ=%d)", n, f, tau),
		Columns: []string{"protocol", "pair", "seeds", "identical traces"},
	}
	allEqual := true
	seeds := cfg.runs()
	for _, proto := range protos {
		// traces[a][s] is the Π∖C send trace of seed s under adversary a.
		traces := make([][][]sim.SendRecord, len(advs))
		for ai, a := range advs {
			traces[ai] = make([][]sim.SendRecord, seeds)
			for s := 0; s < seeds; s++ {
				seed := xrand.Derive(cfg.seed(), uint64(s))
				tr, err := windowTrace(proto, a.adv, n, f, seed, tau)
				if err != nil {
					return nil, err
				}
				traces[ai][s] = tr
			}
		}
		for ai := 0; ai < len(advs); ai++ {
			for aj := ai + 1; aj < len(advs); aj++ {
				matches := 0
				for s := 0; s < seeds; s++ {
					if reflect.DeepEqual(traces[ai][s], traces[aj][s]) {
						matches++
					}
				}
				table.AddRow(proto.Name(),
					advs[ai].name+" vs "+advs[aj].name,
					seeds, matches)
				if matches != seeds {
					allEqual = false
				}
			}
		}
	}
	rep.Tables = append(rep.Tables, table)
	rep.Notef("window: global steps [1, τ] with τ = F = %d; traces restricted to Π∖C", f)
	rep.Notef("paper claim — Π∖C cannot distinguish the strategies before τᵏ: %s", verdict(allEqual))
	return rep, nil
}

// windowTrace runs (proto, adv) to the τ horizon and returns the sends of
// Π∖C with SentAt ≤ τ, in engine order.
func windowTrace(proto sim.Protocol, adv sim.Adversary, n, f int, seed uint64, tau sim.Step) ([]sim.SendRecord, error) {
	inC := make(map[sim.ProcID]bool, f/2)
	for _, p := range core.ControlledSet(sim.AdversaryRNG(seed), n, f) {
		inC[p] = true
	}
	var trace []sim.SendRecord
	sink := sim.FuncSink(func(ev sim.TraceEvent) {
		if ev.Kind == sim.TraceSend && ev.Step <= tau && !inC[ev.Proc] {
			trace = append(trace, sim.SendRecord{From: ev.Proc, To: ev.Other, SentAt: ev.Step})
		}
	})
	_, err := sim.Run(sim.Config{
		N: n, F: f,
		Protocol:  proto,
		Adversary: adv,
		Seed:      seed,
		// The lemma's window ends at τ: cutting the run there makes the
		// replay cheap; the horizon cutoff is expected, not an error.
		Horizon: tau,
		Trace:   sink,
	})
	if err != nil {
		return nil, err
	}
	return trace, nil
}
