package experiments

import (
	"fmt"

	"github.com/ugf-sim/ugf/internal/core"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/plot"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/stats"
)

// Figure 3: communication complexities of Push-Pull, EARS and SEARS with
// (1) no adversary, (2) UGF, and (3) the fixed strategy with the most
// impact ("max UGF"). Experimental setting from Section V-A: F = 0.3N,
// q₁ = 1/3, q₂ = 1/2, k = l = 1, τ = F, median over 50 runs with Q1/Q3
// bands.

// metric selects what a panel measures.
type metric struct {
	name    string
	extract func([]sim.Outcome) []float64
}

var (
	timeMetric = metric{name: "time complexity", extract: runner.Times}
	msgMetric  = metric{name: "message complexity", extract: runner.Messages}
)

// fig3Panel describes one panel of Figure 3.
type fig3Panel struct {
	id       string
	figure   string
	protocol sim.Protocol
	metric   metric
	// maxAdv is the fixed strategy the paper designates as having the
	// most impact on this panel's metric.
	maxAdv   sim.Adversary
	maxLabel string
	paper    string
}

func init() {
	panels := []fig3Panel{
		{
			id: "fig3a", figure: "Figure 3a", protocol: gossip.PushPull{},
			metric: timeMetric, maxAdv: core.Strategy1{}, maxLabel: "strategy-1",
			paper: "Push-Pull time complexity: logarithmic baseline, linear under UGF; Strategy 1 is the maximal fixed strategy.",
		},
		{
			id: "fig3b", figure: "Figure 3b", protocol: gossip.EARS{},
			metric: timeMetric, maxAdv: core.Strategy2K0{}, maxLabel: "strategy-2.1.0",
			paper: "EARS time complexity: logarithmic baseline, linear under UGF; Strategy 2.1.0 is the maximal fixed strategy.",
		},
		{
			id: "fig3c", figure: "Figure 3c", protocol: gossip.PushPull{},
			metric: msgMetric, maxAdv: core.Strategy2KL{}, maxLabel: "strategy-2.1.1",
			paper: "Push-Pull message complexity: quasi-linear baseline, quadratic under UGF; Strategy 2.1.1 is the maximal fixed strategy.",
		},
		{
			id: "fig3d", figure: "Figure 3d", protocol: gossip.EARS{},
			metric: msgMetric, maxAdv: core.Strategy2KL{}, maxLabel: "strategy-2.1.1",
			paper: "EARS message complexity: quasi-linear baseline, quadratic under UGF; Strategy 2.1.1 is the maximal fixed strategy.",
		},
		{
			id: "fig3e", figure: "Figure 3e", protocol: gossip.SEARS{},
			metric: msgMetric, maxAdv: core.Strategy2KL{}, maxLabel: "strategy-2.1.1",
			paper: "SEARS message complexity: already quadratic without attack (time is constant by construction and omitted); Strategy 2.1.1 is the maximal fixed strategy.",
		},
	}
	for _, p := range panels {
		p := p
		register(Experiment{
			ID:    p.id,
			Title: fmt.Sprintf("%s — %s %s", p.figure, p.protocol.Name(), p.metric.name),
			Run:   func(cfg Config) (*Report, error) { return runFig3Panel(cfg, p) },
		})
	}
}

// fig3Series returns the three adversary series of every panel.
func fig3Series() []struct {
	name string
	adv  func(panel fig3Panel) sim.Adversary
} {
	return []struct {
		name string
		adv  func(panel fig3Panel) sim.Adversary
	}{
		{"baseline", func(fig3Panel) sim.Adversary { return nil }},
		{"ugf", func(fig3Panel) sim.Adversary { return core.UGF{FixedK: 1, FixedL: 1} }},
		{"max-ugf", func(p fig3Panel) sim.Adversary { return p.maxAdv }},
	}
}

func runFig3Panel(cfg Config, panel fig3Panel) (*Report, error) {
	rep := &Report{
		ID:       panel.id,
		Title:    fmt.Sprintf("%s — %s %s", panel.figure, panel.protocol.Name(), panel.metric.name),
		Paper:    panel.paper,
		Fidelity: cfg.Fidelity,
	}
	grid := cfg.grid()
	series := fig3Series()

	var specs []runner.Spec
	for _, n := range grid {
		f := int(0.3 * float64(n))
		for _, s := range series {
			specs = append(specs, runner.Spec{
				Name: fmt.Sprintf("%s/N=%d", s.name, n),
				Base: sim.Config{
					N: n, F: f,
					Protocol:  panel.protocol,
					Adversary: s.adv(panel),
					MaxEvents: 200_000_000,
				},
				Runs:     cfg.runs(),
				BaseSeed: cfg.seed(),
			})
		}
	}
	results, err := execute(rep, cfg, specs)
	if err != nil {
		return nil, err
	}

	table := &plot.Table{
		Title:   rep.Title,
		Columns: []string{"N", "F", "series", "median", "Q1", "Q3", "gathered", "cutoff", "failed"},
	}
	curve := map[string][]float64{}
	xs := make([]float64, 0, len(grid))
	for _, n := range grid {
		xs = append(xs, float64(n))
	}
	idx := 0
	for _, n := range grid {
		f := int(0.3 * float64(n))
		for _, s := range series {
			res := results[idx]
			idx++
			med, q1, q3 := medianOf(res.Outcomes, panel.metric.extract)
			table.AddRow(n, f, s.name, med, q1, q3,
				plot.FormatFloat(runner.GatheredRate(res.Outcomes)),
				plot.FormatFloat(runner.CutoffRate(res.Outcomes)),
				res.Failed())
			curve[s.name] = append(curve[s.name], med)
		}
	}
	rep.Tables = append(rep.Tables, table)

	chart := plot.Chart{
		Title:  rep.Title + " (median)",
		XLabel: "N",
		YLabel: panel.metric.name,
		Xs:     xs,
		LogY:   panel.metric.name == msgMetric.name,
	}
	for _, s := range series {
		chart.Series = append(chart.Series, plot.Series{Name: s.name, Ys: curve[s.name]})
	}
	rep.Charts = append(rep.Charts, chart)

	annotateFig3Shape(rep, panel, xs, curve)
	return rep, nil
}

// annotateFig3Shape records the log-log growth exponent of every series
// and states whether the panel reproduces the paper's qualitative claim.
// Claims are judged on the *tail* exponent (the upper half of the N grid):
// the attacked curves carry additive constants — the inactivity window,
// normalization offsets — that flatten small-N points without changing
// the asymptotic order.
func annotateFig3Shape(rep *Report, panel fig3Panel, xs []float64, curve map[string][]float64) {
	tail := map[string]float64{}
	for _, name := range []string{"baseline", "ugf", "max-ugf"} {
		full := stats.LogLogFit(xs, curve[name])
		half := len(xs) / 2
		tailFit := stats.LogLogFit(xs[half:], curve[name][half:])
		tail[name] = tailFit.Slope
		rep.Notef("%s growth exponent over N: %.2f full grid (R²=%.2f), %.2f on the tail",
			name, full.Slope, full.R2, tailFit.Slope)
	}
	// quadraticAt reports whether a series reaches quadratic magnitude at
	// the largest N: median M ≥ N²/4. Exponent and magnitude are judged
	// together — the attacked curves sit at 0.6–2×N² across the grid with
	// a slowly decaying coefficient, so their tail exponent reads slightly
	// below 2 even though the level is unmistakably quadratic.
	quadraticAt := func(name string) bool {
		n := xs[len(xs)-1]
		ys := curve[name]
		return ys[len(ys)-1] >= n*n/4
	}
	switch panel.metric.name {
	case timeMetric.name:
		// Paper: baseline time ~ logarithmic (tail exponent ≪ 1),
		// attacked time ~ linear (tail exponent approaching 1).
		rep.Notef("paper claim — baseline sub-linear, max-UGF linear: %s",
			verdict(tail["baseline"] < 0.55 && tail["max-ugf"] > 0.7))
	case msgMetric.name:
		if panel.id == "fig3e" {
			// SEARS is quadratic even unattacked.
			rep.Notef("paper claim — SEARS baseline already ~quadratic: %s",
				verdict(tail["baseline"] > 1.45 && quadraticAt("baseline")))
		} else {
			rep.Notef("paper claim — baseline ~quasi-linear, max-UGF ~quadratic "+
				"(tail exponent ≥ 1.45 and median M(N_max) ≥ N²/4): %s",
				verdict(tail["baseline"] < 1.45 && tail["max-ugf"] >= 1.45 && quadraticAt("max-ugf")))
		}
	}
}

func verdict(ok bool) string {
	if ok {
		return "REPRODUCED"
	}
	return "NOT reproduced"
}
