package experiments

import (
	"fmt"

	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/plot"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "topology",
		Title: "Topology extension — dissemination on sparse communication graphs",
		Run:   runTopology,
	})
}

// runTopology measures how Push-Pull and EARS degrade when the complete
// communication graph of the paper's model is replaced by sparse
// topologies: a ring (degree 2, diameter N/2), a circulant k-regular
// graph, and a seeded expander of the same degree. The protocols still
// draw partners uniformly from all N processes — they are
// topology-oblivious, as in the paper — so on a sparse graph most sends
// land on dead edges and are blocked at the send gate (Stats.
// BlockedSends); dissemination survives only through the fraction of
// draws that hit live edges. The expander row is the control: at the
// same degree as the k-regular graph, its random structure should keep
// dissemination close to it, while the ring's linear diameter stretches
// both T and M. Every sparse spec carries a stall window and an event
// cutoff — on a sparse graph a protocol can starve with neighbor
// traffic still flowing, and a starved run must classify as Stalled or
// a cutoff, never hang the sweep.
func runTopology(cfg Config) (*Report, error) {
	rep := &Report{
		ID:       "topology",
		Title:    "Dissemination on sparse communication graphs",
		Paper:    "Extension beyond the paper's complete-graph model (Section II lets every process address every other directly).",
		Fidelity: cfg.Fidelity,
	}
	n := cfg.midN()
	f := int(0.3 * float64(n))
	protos := []sim.Protocol{gossip.PushPull{}, gossip.EARS{}}

	// Generous stall window (a clean complete-graph run is far smaller)
	// plus a hard event cutoff: blocked sends still count as events, so a
	// topology-oblivious protocol spinning against dead edges terminates
	// at the cutoff even if its live-edge trickle never quiesces.
	const stallWindow = 1 << 20
	const maxEvents = 50_000_000

	type topoCase struct {
		name   string
		topo   *sim.Topology
		degree float64
	}
	tcases := []topoCase{
		{name: "ring", topo: &sim.Topology{Kind: "ring"}, degree: 2},
		{name: "k-regular,k=4", topo: &sim.Topology{Kind: "k-regular", K: 4}, degree: 4},
		{name: "expander,k=4", topo: &sim.Topology{Kind: "expander", K: 4, Seed: 9}, degree: 4},
		{name: "complete", topo: nil, degree: float64(n - 1)},
	}

	var specs []runner.Spec
	for _, proto := range protos {
		for _, tc := range tcases {
			specs = append(specs, runner.Spec{
				Name: proto.Name() + "/" + tc.name,
				Base: sim.Config{
					N: n, F: f, Protocol: proto, Topology: tc.topo,
					MaxEvents: maxEvents, StallWindow: stallWindow,
				},
				Runs:     cfg.runs(),
				BaseSeed: cfg.seed(),
			})
		}
	}
	results, err := execute(rep, cfg, specs)
	if err != nil {
		return nil, err
	}

	blockedMetric := func(outs []sim.Outcome) []float64 {
		xs := make([]float64, len(outs))
		for i := range outs {
			xs[i] = float64(outs[i].Stats.BlockedSends)
		}
		return xs
	}

	table := &plot.Table{
		Title:   fmt.Sprintf("dissemination by communication graph (N=%d, F=%d)", n, f),
		Columns: []string{"protocol", "topology", "median T", "median M", "median blocked", "gathered", "stalled", "cutoff", "failed"},
	}
	curve := map[string][]float64{}
	blocked := map[string]map[string]float64{}
	graceful := true
	idx := 0
	for _, proto := range protos {
		blocked[proto.Name()] = map[string]float64{}
		for _, tc := range tcases {
			res := results[idx]
			idx++
			mT, _, _ := medianOf(res.Outcomes, runner.Times)
			mM, _, _ := medianOf(res.Outcomes, runner.Messages)
			mB, _, _ := medianOf(res.Outcomes, blockedMetric)
			table.AddRow(proto.Name(), tc.name, mT, mM, mB,
				plot.FormatFloat(runner.GatheredRate(res.Outcomes)),
				plot.FormatFloat(runner.StalledRate(res.Outcomes)),
				plot.FormatFloat(runner.CutoffRate(res.Outcomes)),
				res.Failed())
			curve[proto.Name()] = append(curve[proto.Name()], mT)
			blocked[proto.Name()][tc.name] = mB
			if res.Failed() > 0 {
				graceful = false
			}
		}
	}
	rep.Tables = append(rep.Tables, table)

	chart := plot.Chart{
		Title:  "median T vs graph degree",
		XLabel: "edges per process",
		YLabel: "time T(O)",
	}
	for _, tc := range tcases {
		chart.Xs = append(chart.Xs, tc.degree)
	}
	for _, proto := range protos {
		chart.Series = append(chart.Series, plot.Series{Name: proto.Name(), Ys: curve[proto.Name()]})
	}
	rep.Charts = append(rep.Charts, chart)

	annotateTopology(rep, protos, tcases[0].name, curve, blocked, graceful)
	return rep, nil
}

// annotateTopology records the shape findings: sparser graphs slow
// dissemination (the complete graph is the fastest row for every
// protocol), dead-edge draws surface as blocked sends only on sparse
// graphs, and the sweep degrades gracefully — starvation classifies,
// it never errors.
func annotateTopology(rep *Report, protos []sim.Protocol, sparsest string,
	curve map[string][]float64, blocked map[string]map[string]float64, graceful bool) {
	for _, proto := range protos {
		ys := curve[proto.Name()]
		if len(ys) < 2 {
			continue
		}
		complete := ys[len(ys)-1] // tcases order: sparsest first, complete last
		worst := ys[0]
		rep.Notef("%s: median T %.1f on the complete graph → %.1f on the %s — sparse graphs cost time, never correctness %s",
			proto.Name(), complete, worst, sparsest, verdict(worst >= complete))
		rep.Notef("%s: blocked sends %.0f on the complete graph, %.0f on the %s — the send gate only ever fires off-graph %s",
			proto.Name(), blocked[proto.Name()]["complete"], blocked[proto.Name()][sparsest], sparsest,
			verdict(blocked[proto.Name()]["complete"] == 0 && blocked[proto.Name()][sparsest] > 0))
	}
	rep.Notef("graceful degradation — every sparse-graph run completes with a classified outcome (no engine errors): %s",
		verdict(graceful))
}
