package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Fidelity: Quick, Workers: 2}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3a", "fig3b", "fig3c", "fig3d", "fig3e",
		"example1", "lemma45", "lemma1", "tradeoff",
		"fsweep", "strategies", "oblivious", "adaptation", "omission",
		"tuning", "degradation", "topology",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registered %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("fig3a")
	if !ok || e.ID != "fig3a" {
		t.Fatal("fig3a not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestParseFidelity(t *testing.T) {
	for _, s := range []string{"quick", "medium", "full"} {
		f, err := ParseFidelity(s)
		if err != nil {
			t.Fatal(err)
		}
		if f.String() != s {
			t.Errorf("round trip %q -> %q", s, f.String())
		}
	}
	if _, err := ParseFidelity("bogus"); err == nil {
		t.Fatal("bogus fidelity accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.seed() != 2022 {
		t.Errorf("default seed = %d", c.seed())
	}
	if c.runs() != 8 {
		t.Errorf("quick runs = %d", c.runs())
	}
	if len(c.grid()) != 4 {
		t.Errorf("quick grid = %v", c.grid())
	}
	full := Config{Fidelity: Full}
	if full.runs() != 50 {
		t.Errorf("full runs = %d", full.runs())
	}
	if got := full.grid(); len(got) != 10 || got[0] != 10 || got[9] != 500 {
		t.Errorf("full grid = %v", got)
	}
	med := Config{Fidelity: Medium}
	if med.runs() != 15 {
		t.Errorf("medium runs = %d", med.runs())
	}
}

// TestAllExperimentsRunQuick executes every registered experiment at
// quick fidelity and validates report structure. Claim verdicts are
// asserted only where the quick grid is large enough to be reliable.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes tens of seconds")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if rep.ID != e.ID {
				t.Errorf("report id %q, want %q", rep.ID, e.ID)
			}
			if rep.Paper == "" {
				t.Error("report missing paper reference")
			}
			if len(rep.Tables) == 0 {
				t.Error("report has no tables")
			}
			for _, tbl := range rep.Tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("table %q empty", tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Columns) {
						t.Errorf("table %q: row width %d vs %d columns", tbl.Title, len(row), len(tbl.Columns))
					}
				}
			}
			if len(rep.Notes) == 0 {
				t.Error("report has no notes")
			}
		})
	}
}

func TestLemma45BoundsHoldQuick(t *testing.T) {
	rep, err := mustExp(t, "lemma45").Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !hasNote(rep, "all tail bounds hold empirically: REPRODUCED") {
		t.Errorf("lemma bounds not reproduced; notes: %v", rep.Notes)
	}
}

func TestExample1ShapeQuick(t *testing.T) {
	rep, err := mustExp(t, "example1").Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !hasNote(rep, "M quadratic and T linear: REPRODUCED") {
		t.Errorf("example 1 shape not reproduced; notes: %v", rep.Notes)
	}
}

// TestDegradationQuick checks the fault-model sweep actually exercises
// the fault machinery: the aggregated engine counters must show link
// drops (the lossy-link specs) and recoveries (the crash-recovery
// specs), and the sweep must degrade gracefully — the claim its own
// notes assert.
func TestDegradationQuick(t *testing.T) {
	rep, err := mustExp(t, "degradation").Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine.DroppedLink == 0 {
		t.Error("no link drops recorded across the lossy specs")
	}
	if rep.Engine.Recoveries == 0 {
		t.Error("no recoveries recorded across the crash-recovery specs")
	}
	if !hasNote(rep, "stalls detected): REPRODUCED") {
		t.Errorf("graceful-degradation claim not reproduced; notes: %v", rep.Notes)
	}
}

func mustExp(t *testing.T, id string) Experiment {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q missing", id)
	}
	return e
}

func hasNote(rep *Report, substr string) bool {
	for _, n := range rep.Notes {
		if strings.Contains(n, substr) {
			return true
		}
	}
	return false
}
