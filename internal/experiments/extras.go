package experiments

import (
	"fmt"

	"github.com/ugf-sim/ugf/internal/adversary"
	"github.com/ugf-sim/ugf/internal/core"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/plot"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fsweep",
		Title: "Section V-A1 — consistency across F ∈ {0.1N … 0.5N}",
		Run:   runFSweep,
	})
	register(Experiment{
		ID:    "strategies",
		Title: "Figure 3 'max UGF' designation — per-strategy impact",
		Run:   runStrategies,
	})
	register(Experiment{
		ID:    "oblivious",
		Title: "Section VI — oblivious adversaries are not powerful",
		Run:   runOblivious,
	})
	register(Experiment{
		ID:    "adaptation",
		Title: "Section IV-A ablation — randomization prevents adaptation",
		Run:   runAdaptation,
	})
	register(Experiment{
		ID:    "omission",
		Title: "Section VII — omission adversary extension",
		Run:   runOmission,
	})
}

// threeProtocols are the protocols of the paper's evaluation.
func threeProtocols() []sim.Protocol {
	return []sim.Protocol{gossip.PushPull{}, gossip.EARS{}, gossip.SEARS{}}
}

func (c Config) midN() int {
	if c.Fidelity == Quick {
		return 40
	}
	return 100
}

// runFSweep reproduces the in-text claim that the takeaway is consistent
// across F ∈ {0.1N, …, 0.5N}: the stronger the adversary (larger F), the
// higher the forced complexities, with the same qualitative picture.
func runFSweep(cfg Config) (*Report, error) {
	rep := &Report{
		ID:       "fsweep",
		Title:    "F sweep under UGF",
		Paper:    "\"The higher F, the stronger the adversary… the main takeaway is consistent across all values of F.\"",
		Fidelity: cfg.Fidelity,
	}
	n := cfg.midN()
	fractions := []float64{0.1, 0.2, 0.3, 0.4, 0.5}

	var specs []runner.Spec
	for _, proto := range threeProtocols() {
		for _, frac := range fractions {
			f := int(frac * float64(n))
			specs = append(specs, runner.Spec{
				Name: fmt.Sprintf("%s/F=%.1fN", proto.Name(), frac),
				Base: sim.Config{
					N: n, F: f, Protocol: proto,
					Adversary: core.UGF{FixedK: 1, FixedL: 1},
					MaxEvents: 100_000_000,
				},
				Runs:     cfg.runs(),
				BaseSeed: cfg.seed(),
			})
		}
	}
	results, err := execute(rep, cfg, specs)
	if err != nil {
		return nil, err
	}

	table := &plot.Table{
		Title:   fmt.Sprintf("UGF impact vs F (N=%d)", n),
		Columns: []string{"protocol", "F/N", "F", "median T", "median M", "gathered"},
	}
	idx := 0
	monotone := true
	for _, proto := range threeProtocols() {
		var firstT, lastT float64
		for fi, frac := range fractions {
			f := int(frac * float64(n))
			outs := results[idx].Outcomes
			idx++
			mT, _, _ := medianOf(outs, runner.Times)
			mM, _, _ := medianOf(outs, runner.Messages)
			table.AddRow(proto.Name(), frac, f, mT, mM, runner.GatheredRate(outs))
			if fi == 0 {
				firstT = mT
			}
			if fi == len(fractions)-1 {
				lastT = mT
			}
		}
		// "The higher F, the stronger the adversary": judged on the time
		// complexity endpoints. (SEARS message complexity is quadratic by
		// construction and nearly flat in F, so messages are reported but
		// not part of the monotonicity verdict.)
		if lastT <= firstT {
			monotone = false
		}
	}
	rep.Tables = append(rep.Tables, table)
	rep.Notef("paper claim — disruption grows with F (time-complexity endpoints per protocol): %s",
		verdict(monotone))
	return rep, nil
}

// runStrategies measures every fixed strategy against every protocol and
// identifies the per-protocol maxima that Figure 3 labels "max UGF".
func runStrategies(cfg Config) (*Report, error) {
	rep := &Report{
		ID:       "strategies",
		Title:    "Per-strategy impact breakdown",
		Paper:    "Strategy 1 is maximal for Push-Pull time, 2.1.0 for EARS time; 2.1.1 is maximal for message complexity on all three protocols.",
		Fidelity: cfg.Fidelity,
	}
	n := cfg.midN()
	f := int(0.3 * float64(n))
	advs := []struct {
		name string
		adv  sim.Adversary
	}{
		{"none", nil},
		{"strategy-1", core.Strategy1{}},
		{"strategy-2.1.0", core.Strategy2K0{}},
		{"strategy-2.1.1", core.Strategy2KL{}},
		{"ugf", core.UGF{FixedK: 1, FixedL: 1}},
	}

	var specs []runner.Spec
	for _, proto := range threeProtocols() {
		for _, a := range advs {
			specs = append(specs, runner.Spec{
				Name: proto.Name() + "/" + a.name,
				Base: sim.Config{
					N: n, F: f, Protocol: proto, Adversary: a.adv,
					MaxEvents: 100_000_000,
				},
				Runs:     cfg.runs(),
				BaseSeed: cfg.seed(),
			})
		}
	}
	results, err := execute(rep, cfg, specs)
	if err != nil {
		return nil, err
	}

	table := &plot.Table{
		Title:   fmt.Sprintf("strategy impact (N=%d, F=%d)", n, f),
		Columns: []string{"protocol", "adversary", "median T", "median M", "gathered"},
	}
	type key struct{ proto, adv string }
	medT := map[key]float64{}
	medM := map[key]float64{}
	idx := 0
	for _, proto := range threeProtocols() {
		for _, a := range advs {
			outs := results[idx].Outcomes
			idx++
			mT, _, _ := medianOf(outs, runner.Times)
			mM, _, _ := medianOf(outs, runner.Messages)
			medT[key{proto.Name(), a.name}] = mT
			medM[key{proto.Name(), a.name}] = mM
			table.AddRow(proto.Name(), a.name, mT, mM, runner.GatheredRate(outs))
		}
	}
	rep.Tables = append(rep.Tables, table)

	fixed := []string{"strategy-1", "strategy-2.1.0", "strategy-2.1.1"}
	argmax := func(proto string, m map[key]float64) string {
		best, bestV := "", -1.0
		for _, a := range fixed {
			if v := m[key{proto, a}]; v > bestV {
				best, bestV = a, v
			}
		}
		return best
	}
	for _, proto := range threeProtocols() {
		rep.Notef("%s: max-time strategy = %s, max-message strategy = %s",
			proto.Name(), argmax(proto.Name(), medT), argmax(proto.Name(), medM))
	}
	rep.Notef("paper claim — 2.1.1 is the max-message strategy for all protocols: %s",
		verdict(argmax("push-pull", medM) == "strategy-2.1.1" &&
			argmax("ears", medM) == "strategy-2.1.1" &&
			argmax("sears", medM) == "strategy-2.1.1"))
	rep.Notef("paper claim — 2.1.0 is the max-time strategy for EARS: %s",
		verdict(argmax("ears", medT) == "strategy-2.1.0"))
	rep.Notef("paper designation — strategy 1 is the max-time strategy for Push-Pull: %s "+
		"(in this reproduction 2.1.0 and 1 both force linear time; their order is sensitive to pull-response details)",
		verdict(argmax("push-pull", medT) == "strategy-1"))
	return rep, nil
}

// runOblivious contrasts the oblivious adversary with UGF, reproducing
// the Section VI point (after [14]) that obliviousness is not enough.
func runOblivious(cfg Config) (*Report, error) {
	rep := &Report{
		ID:       "oblivious",
		Title:    "Oblivious vs adaptive (UGF)",
		Paper:    "\"Oblivious adversaries are not sufficiently powerful to harm the dissemination\" ([14], recalled in Section VI).",
		Fidelity: cfg.Fidelity,
	}
	n := cfg.midN()
	f := int(0.3 * float64(n))
	advs := []struct {
		name string
		adv  sim.Adversary
	}{
		{"none", nil},
		// Crash times drawn from [1, N/4] so the oblivious crashes land
		// during the dissemination, not after it — the fairest setting
		// for the comparison; obliviousness still cannot target.
		{"oblivious", adversary.Oblivious{MaxTime: sim.Step(n / 4)}},
		{"ugf", core.UGF{FixedK: 1, FixedL: 1}},
	}
	var specs []runner.Spec
	for _, proto := range threeProtocols() {
		for _, a := range advs {
			specs = append(specs, runner.Spec{
				Name: proto.Name() + "/" + a.name,
				Base: sim.Config{N: n, F: f, Protocol: proto, Adversary: a.adv,
					MaxEvents: 100_000_000},
				Runs:     cfg.runs(),
				BaseSeed: cfg.seed(),
			})
		}
	}
	results, err := execute(rep, cfg, specs)
	if err != nil {
		return nil, err
	}
	table := &plot.Table{
		Title:   fmt.Sprintf("oblivious vs UGF (N=%d, F=%d)", n, f),
		Columns: []string{"protocol", "adversary", "median T", "median M", "gathered"},
	}
	weak := true
	idx := 0
	for _, proto := range threeProtocols() {
		var baseT, obT, ugfT, baseM, obM, ugfM float64
		for _, a := range advs {
			res := results[idx]
			idx++
			mT, _, _ := medianOf(res.Outcomes, runner.Times)
			mM, _, _ := medianOf(res.Outcomes, runner.Messages)
			table.AddRow(proto.Name(), a.name, mT, mM,
				runner.GatheredRate(res.Outcomes))
			switch a.name {
			case "none":
				baseT, baseM = mT, mM
			case "oblivious":
				obT, obM = mT, mM
			case "ugf":
				ugfT, ugfM = mT, mM
			}
		}
		// The oblivious adversary should sit near the baseline (within
		// 2.5× on both complexities — its crashes do cost some
		// re-spreading) while UGF clearly exceeds it on at least one
		// complexity for every protocol.
		if obT > 2.5*baseT+1 || obM > 2.5*baseM {
			weak = false
		}
		if ugfT < 1.3*obT && ugfM < 1.3*obM {
			weak = false
		}
	}
	rep.Tables = append(rep.Tables, table)
	rep.Notef("paper claim — oblivious ≈ baseline while UGF ≫ oblivious: %s", verdict(weak))
	return rep, nil
}

// runAdaptation is the randomization ablation: an adaptive protocol can
// beat any single fixed strategy, but not the randomized mixture.
func runAdaptation(cfg Config) (*Report, error) {
	rep := &Report{
		ID:       "adaptation",
		Title:    "Randomization prevents adaptation (ablation)",
		Paper:    "Section III-B/IV-A: a protocol could adapt to any known strategy; UGF's randomized scheme makes the strategies indistinguishable while the attack is mounted.",
		Fidelity: cfg.Fidelity,
	}
	// A strong adversary (F = 0.5N, the top of the paper's sweep) and an
	// eager defender: the give-up threshold (Θ(log N) quiet steps) must
	// undercut the Θ(F) steps the defender would otherwise waste pulling
	// crashed processes, or there is nothing to adapt away from. That
	// separation needs F/2 ≫ log N, so this experiment pins N = 100 at
	// every fidelity (quick mode reduces repetitions only).
	n := 100
	f := n / 2
	defender := gossip.Adaptive{GiveUpFactor: 1}
	advs := []struct {
		name string
		adv  sim.Adversary
	}{
		{"none", nil},
		{"strategy-1", core.Strategy1{}},
		{"strategy-2.1.0", core.Strategy2K0{}},
		{"strategy-2.1.1", core.Strategy2KL{}},
		{"ugf", core.UGF{FixedK: 1, FixedL: 1}},
	}
	protos := []sim.Protocol{defender, gossip.PushPull{}}

	var specs []runner.Spec
	for _, proto := range protos {
		for _, a := range advs {
			specs = append(specs, runner.Spec{
				Name: proto.Name() + "/" + a.name,
				Base: sim.Config{N: n, F: f, Protocol: proto, Adversary: a.adv,
					MaxEvents: 100_000_000},
				Runs:     cfg.runs(),
				BaseSeed: cfg.seed(),
			})
		}
	}
	results, err := execute(rep, cfg, specs)
	if err != nil {
		return nil, err
	}
	table := &plot.Table{
		Title:   fmt.Sprintf("adaptive defender vs fixed and randomized attacks (N=%d, F=%d)", n, f),
		Columns: []string{"protocol", "adversary", "median T", "median M", "gathered"},
	}
	vals := map[string]struct {
		t, m, g float64
	}{}
	idx := 0
	for _, proto := range protos {
		for _, a := range advs {
			outs := results[idx].Outcomes
			idx++
			mT, _, _ := medianOf(outs, runner.Times)
			mM, _, _ := medianOf(outs, runner.Messages)
			g := runner.GatheredRate(outs)
			table.AddRow(proto.Name(), a.name, mT, mM, g)
			vals[proto.Name()+"/"+a.name] = struct{ t, m, g float64 }{mT, mM, g}
		}
	}
	rep.Tables = append(rep.Tables, table)

	// The defender evades Strategy 1 (quiet processes really are crashed:
	// giving up early is safe and cheap) …
	ad1 := vals["adaptive/strategy-1"]
	pp1 := vals["push-pull/strategy-1"]
	evades := ad1.t < 0.9*pp1.t && ad1.g >= 0.9
	rep.Notef("adaptive vs fixed Strategy 1: T %.1f vs push-pull's %.1f, gathering %.0f%% — evasion %s",
		ad1.t, pp1.t, ad1.g*100, verdict(evades))
	// … but pays against the randomized mixture: under UGF the defender
	// either fails gathering on the delay strategies (it declared live
	// processes dead and stopped waiting for their gossips) or keeps an
	// elevated complexity.
	adU := vals["adaptive/ugf"]
	pays := adU.g < 0.9 || adU.t > 3*vals["adaptive/none"].t || adU.m > 3*vals["adaptive/none"].m
	rep.Notef("adaptive vs randomized UGF: gathering %.0f%%, T %.1f, M %.0f — adaptation defeated %s",
		adU.g*100, adU.t, adU.m, verdict(pays))
	rep.Notef("paper claim — randomization prevents adaptation: %s", verdict(evades && pays))
	return rep, nil
}

// runOmission explores the Section VII future-work question: does an
// adversary that drops (rather than delays) messages harm more?
func runOmission(cfg Config) (*Report, error) {
	rep := &Report{
		ID:       "omission",
		Title:    "Omission adversary (future work)",
		Paper:    "Section VII asks whether omitting messages instead of delaying them harms the dissemination even more.",
		Fidelity: cfg.Fidelity,
	}
	n := cfg.midN()
	f := int(0.3 * float64(n))
	advs := []struct {
		name string
		adv  sim.Adversary
	}{
		{"none", nil},
		{"delay (2.1.1)", core.Strategy2KL{}},
		{"omission", adversary.Omission{}},
	}
	var specs []runner.Spec
	for _, proto := range threeProtocols() {
		for _, a := range advs {
			specs = append(specs, runner.Spec{
				Name: proto.Name() + "/" + a.name,
				Base: sim.Config{N: n, F: f, Protocol: proto, Adversary: a.adv,
					MaxEvents: 200_000_000},
				Runs:     cfg.runs(),
				BaseSeed: cfg.seed(),
			})
		}
	}
	results, err := execute(rep, cfg, specs)
	if err != nil {
		return nil, err
	}
	table := &plot.Table{
		Title:   fmt.Sprintf("delaying vs dropping C's messages (N=%d, F=%d, drop budget F²)", n, f),
		Columns: []string{"protocol", "adversary", "median T", "median M", "gathered", "cutoff", "failed"},
	}
	idx := 0
	for _, proto := range threeProtocols() {
		for _, a := range advs {
			res := results[idx]
			idx++
			mT, _, _ := medianOf(res.Outcomes, runner.Times)
			mM, _, _ := medianOf(res.Outcomes, runner.Messages)
			table.AddRow(proto.Name(), a.name, mT, mM,
				runner.GatheredRate(res.Outcomes), runner.CutoffRate(res.Outcomes),
				res.Failed())
		}
	}
	rep.Tables = append(rep.Tables, table)
	rep.Notef("observation: with a finite drop budget the network heals and gathering completes; " +
		"the dropped sends are pure waste, so omission inflates message complexity at no delivery-time cost to the adversary")
	return rep, nil
}
