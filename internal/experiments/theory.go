package experiments

import (
	"fmt"
	"math"

	"github.com/ugf-sim/ugf/internal/core"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/plot"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/stats"
	"github.com/ugf-sim/ugf/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "example1",
		Title: "Example 1 — round-robin protocol has M = Θ(N²), T = Θ(N)",
		Run:   runExample1,
	})
	register(Experiment{
		ID:    "lemma45",
		Title: "Lemmas 4 & 5 — sampling-probability lower bounds",
		Run:   runLemma45,
	})
	register(Experiment{
		ID:    "tradeoff",
		Title: "Theorem 1 — time/message trade-off under UGF (α sweep)",
		Run:   runTradeoff,
	})
}

// runExample1 measures the deliberately inefficient protocol of Example 1
// and verifies its stated complexities by log-log fit.
func runExample1(cfg Config) (*Report, error) {
	rep := &Report{
		ID:       "example1",
		Title:    "Example 1 — round-robin complexities",
		Paper:    "For any outcome, M(O) = Θ(N²) and T(O) = Θ(N).",
		Fidelity: cfg.Fidelity,
	}
	grid := cfg.grid()
	var specs []runner.Spec
	for _, n := range grid {
		specs = append(specs, runner.Spec{
			Name:     fmt.Sprintf("round-robin/N=%d", n),
			Base:     sim.Config{N: n, F: 0, Protocol: gossip.RoundRobin{}},
			Runs:     1, // the protocol is deterministic
			BaseSeed: cfg.seed(),
		})
	}
	results, err := execute(rep, cfg, specs)
	if err != nil {
		return nil, err
	}
	table := &plot.Table{
		Title:   rep.Title,
		Columns: []string{"N", "M(O)", "T(O)", "gathered"},
	}
	var xs, ms, ts []float64
	for i, n := range grid {
		o := results[i].Outcomes[0]
		table.AddRow(n, o.Messages, o.Time, fmt.Sprintf("%v", o.Gathered))
		xs = append(xs, float64(n))
		ms = append(ms, float64(o.Messages))
		ts = append(ts, o.Time)
	}
	rep.Tables = append(rep.Tables, table)
	mFit := stats.LogLogFit(xs, ms)
	tFit := stats.LogLogFit(xs, ts)
	rep.Notef("M(N) exponent: %.3f (R²=%.3f) — expect ≈ 2", mFit.Slope, mFit.R2)
	rep.Notef("T(N) exponent: %.3f (R²=%.3f) — expect ≈ 1", tFit.Slope, tFit.R2)
	rep.Notef("paper claim — M quadratic and T linear: %s",
		verdict(math.Abs(mFit.Slope-2) < 0.15 && math.Abs(tFit.Slope-1) < 0.15))
	return rep, nil
}

// runLemma45 Monte-Carlos Algorithm 1's randomization scheme and checks
// the empirical strategy-tail probabilities against the telescoping lower
// bounds of Lemmas 4 and 5.
func runLemma45(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "lemma45",
		Title: "Lemmas 4 & 5 — strategy sampling tail bounds",
		Paper: "Lemma 4: P[strategy 2.k with τᵏ ≥ t] ≥ (1−q₁)·6/(π²⌈log_τ t⌉). " +
			"Lemma 5: P[2.k.l with τˡ ≥ t | 2.k] ≥ (1−q₂)·6/(π²⌈log_τ t⌉).",
		Fidelity: cfg.Fidelity,
	}
	draws := 2_000_000
	if cfg.Fidelity == Quick {
		draws = 200_000
	}
	const tau = 2 // small τ so several exponents are exercised
	// The untruncated law (MaxExponent < 0): the lemmas' bounds concern
	// the exact ζ(2) tails, which truncation deliberately undershoots.
	params := core.Params{Tau: tau, MaxExponent: -1}
	rng := xrand.New(cfg.seed())

	targets := []sim.Step{2, 4, 8, 16, 32, 64}
	countK := make(map[sim.Step]int)
	countL := make(map[sim.Step]int)
	type2 := 0
	for i := 0; i < draws; i++ {
		c := core.SampleChoice(rng, params)
		if c.Kind == core.KindStrategy1 {
			continue
		}
		tk := pow(tau, c.K)
		for _, t := range targets {
			if tk >= t {
				countK[t]++
			}
		}
		type2++
		if c.Kind == core.KindStrategy2KL {
			tl := pow(tau, c.L)
			for _, t := range targets {
				if tl >= t {
					countL[t]++
				}
			}
		}
	}

	table := &plot.Table{
		Title:   rep.Title,
		Columns: []string{"t", "lemma", "empirical", "lower bound", "holds"},
	}
	ok := true
	for _, t := range targets {
		logT := int(math.Ceil(math.Log(float64(t)) / math.Log(tau)))
		bound4 := (1 - core.DefaultQ1) * 6 / (math.Pi * math.Pi * float64(logT))
		emp4 := float64(countK[t]) / float64(draws)
		holds4 := emp4 >= bound4*0.98 // 2% slack for sampling noise
		ok = ok && holds4
		table.AddRow(int64(t), "4", emp4, bound4, fmt.Sprintf("%v", holds4))

		bound5 := (1 - core.DefaultQ2) * 6 / (math.Pi * math.Pi * float64(logT))
		// Lemma 5 conditions on "2.k was applied": normalize by type-2
		// draws and strip the q₂ split the bound already accounts for.
		emp5 := float64(countL[t]) / float64(type2)
		holds5 := emp5 >= bound5*0.98
		ok = ok && holds5
		table.AddRow(int64(t), "5", emp5, bound5, fmt.Sprintf("%v", holds5))
	}
	rep.Tables = append(rep.Tables, table)
	rep.Notef("draws: %d, τ = %d, q₁ = 1/3, q₂ = 1/2", draws, tau)
	rep.Notef("paper claim — all tail bounds hold empirically: %s", verdict(ok))
	return rep, nil
}

func pow(tau sim.Step, e int) sim.Step {
	v := sim.Step(1)
	for i := 0; i < e; i++ {
		v *= tau
	}
	return v
}

// runTradeoff sweeps the α knob of the budget-capped protocol family and
// exhibits the Theorem 1 interplay: shrinking message complexity α times
// below quadratic costs time (or rumor gathering) under UGF.
func runTradeoff(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "tradeoff",
		Title: "Theorem 1 — α trade-off under UGF",
		Paper: "Aiming for message complexity α times below quadratic forces time complexity exponential in α " +
			"(Theorem 1: E[T] = Ω(αF) or E[M] = Ω(N + F²/log²_τ(αF))).",
		Fidelity: cfg.Fidelity,
	}
	n := 100
	runs := cfg.runs() * 2
	if cfg.Fidelity == Quick {
		n = 40
	}
	f := int(0.3 * float64(n))
	alphas := []int{1, 2, 4, 8, 16}

	var specs []runner.Spec
	for _, alpha := range alphas {
		specs = append(specs, runner.Spec{
			Name: fmt.Sprintf("alpha=%d", alpha),
			Base: sim.Config{
				N: n, F: f,
				Protocol:  gossip.BudgetCapped{Alpha: alpha},
				Adversary: core.UGF{FixedK: 1, FixedL: 1},
				MaxEvents: 100_000_000,
			},
			Runs:     runs,
			BaseSeed: cfg.seed(),
		})
	}
	results, err := execute(rep, cfg, specs)
	if err != nil {
		return nil, err
	}

	table := &plot.Table{
		Title:   rep.Title + fmt.Sprintf(" (N=%d, F=%d)", n, f),
		Columns: []string{"alpha", "budget/process", "median M", "M/N²", "median T", "gathered"},
	}
	var gathered []float64
	var medM []float64
	for i, alpha := range alphas {
		outs := results[i].Outcomes
		mM, _, _ := medianOf(outs, runner.Messages)
		mT, _, _ := medianOf(outs, runner.Times)
		g := runner.GatheredRate(outs)
		gathered = append(gathered, g)
		medM = append(medM, mM)
		table.AddRow(alpha, gossip.BudgetCapped{Alpha: alpha}.Budget(n),
			mM, mM/float64(n*n), mT, g)
	}
	rep.Tables = append(rep.Tables, table)
	// The measurable projection of the theorem at fixed N: message volume
	// shrinks with α while the dissemination degrades — under UGF the
	// capped protocol increasingly fails rumor gathering (the T = Ω(αF)
	// branch is unobservable once the protocol gives up, so failure rate
	// is the honest signal).
	rep.Notef("paper claim — M decreases with α while dissemination degrades "+
		"(gathering rate drops): %s",
		verdict(medM[len(medM)-1] < medM[0] && gathered[len(gathered)-1] < gathered[0]))
	return rep, nil
}
