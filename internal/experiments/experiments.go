// Package experiments defines one reproducible experiment per figure and
// table of "The Universal Gossip Fighter" (see DESIGN.md §3 for the full
// index). Every experiment builds a batch of simulation specs, runs them
// on the parallel runner, and emits tables, ASCII charts, and shape notes
// (log-log exponents, per-strategy maxima, gathering rates) that can be
// compared directly against the paper's claims.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/ugf-sim/ugf/internal/plot"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/stats"
)

// Fidelity selects the experiment scale.
type Fidelity int

// Fidelity levels.
const (
	// Quick runs a reduced grid with few repetitions — used by tests and
	// by the testing.B bench harness. Seconds per experiment.
	Quick Fidelity = iota
	// Medium runs the paper's full N grid with 15 repetitions per point —
	// the default for regenerating EXPERIMENTS.md on a laptop.
	Medium
	// Full is the paper's setting: full grid, 50 repetitions.
	Full
)

func (f Fidelity) String() string {
	switch f {
	case Quick:
		return "quick"
	case Medium:
		return "medium"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("fidelity(%d)", int(f))
	}
}

// ParseFidelity converts a flag value into a Fidelity.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("experiments: unknown fidelity %q (quick|medium|full)", s)
	}
}

// Config parameterizes an experiment run.
type Config struct {
	Fidelity Fidelity
	// Workers bounds run-level parallelism (≤ 0: GOMAXPROCS).
	Workers int
	// Shards sets in-run commit parallelism — sim.Config.Workers — on
	// every spec (≤ 0: serial commits). Outcomes are bit-identical either
	// way; sharding trades run-level for in-run parallelism, which pays
	// off when single runs are huge (big N) rather than numerous. When
	// Workers is defaulted, the runner divides its run-level fan-out by
	// the shard count so the product stays at GOMAXPROCS.
	Shards int
	// BaseSeed makes the whole experiment deterministic; 0 means 2022
	// (the paper's year — an arbitrary but memorable default).
	BaseSeed uint64
	// Progress, when non-nil, receives per-run completion updates.
	Progress func(done, total int)
	// OnRun, when non-nil, receives the runner's rich per-run updates
	// (identity, cumulative failure counts, journal hits) — the feed behind
	// ugfbench's live status line and expvar metrics.
	OnRun func(u runner.RunUpdate)
	// Trace, when non-nil, supplies a per-run trace sink (ugfbench -trace);
	// see runner.Options.Trace for the lifecycle contract.
	Trace func(spec runner.Spec, run int) sim.TraceSink
	// Context cancels the experiment cooperatively: between runs and, via
	// the engine's event-boundary polling, inside delay-heavy runs. nil
	// means context.Background(). On cancellation Run returns the
	// context's error; with a Journal attached, completed runs are already
	// recorded and a rerun resumes where the sweep stopped.
	Context context.Context
	// Journal, when non-nil, records every finished run and serves
	// recorded ones without recomputation (ugfbench -resume).
	Journal *runner.Journal
	// MaxWall is the per-run wall-clock watchdog (0: none); runs stopped
	// by it count as cutoffs and never enter complexity statistics.
	MaxWall time.Duration
	// Faults, when non-nil, overlays a link-fault plan on every spec that
	// does not set its own (ugfbench -faults): the whole sweep runs over
	// the same lossy network. Experiments that sweep fault rates
	// themselves (degradation) keep their per-spec plans.
	Faults *sim.FaultPlan
	// StallWindow, when > 0, overlays a stall window on every spec that
	// does not set its own (ugfbench -stall-window), so fault-heavy sweeps
	// terminate with classified Stalled outcomes instead of spinning to
	// the event horizon.
	StallWindow int64
	// Topology, when non-nil, overlays a communication graph on every spec
	// that does not set its own (ugfbench -topology). Experiments that
	// sweep topologies themselves keep their per-spec graphs.
	Topology *sim.Topology
	// MaxEvents, when > 0, overlays a hard event cutoff on every spec that
	// does not set its own (ugfbench -max-events) — the termination bound
	// to pair with StallWindow on sparse topologies, where neighbor
	// traffic can keep the stall signature moving forever.
	MaxEvents int64
	// Exec, when non-nil, replaces runner.ExecuteContext as the batch
	// executor — ugfbench -coord plugs the sweep service's remote executor
	// in here. Implementations must honor the runner.Result contract
	// (ordering, error classification, journal integration) so downstream
	// artifacts stay byte-identical.
	Exec func(ctx context.Context, specs []runner.Spec, opts runner.Options) ([]runner.Result, error)
}

func (c Config) context() context.Context {
	if c.Context == nil {
		return context.Background()
	}
	return c.Context
}

func (c Config) seed() uint64 {
	if c.BaseSeed == 0 {
		return 2022
	}
	return c.BaseSeed
}

// grid returns the N values for Figure 3-style sweeps.
func (c Config) grid() []int {
	if c.Fidelity == Quick {
		return []int{10, 20, 40, 60}
	}
	// Section V-A1.
	return []int{10, 20, 30, 50, 70, 100, 200, 300, 400, 500}
}

// runs returns the repetition count per grid point.
func (c Config) runs() int {
	switch c.Fidelity {
	case Quick:
		return 8
	case Medium:
		return 15
	default:
		return 50 // Section V: "median over 50 runs"
	}
}

// Report is an experiment's output.
type Report struct {
	ID    string
	Title string
	// Paper states what the original reports for this artifact.
	Paper string
	// Tables and Charts carry the regenerated data.
	Tables []*plot.Table
	Charts []plot.Chart
	// Notes are machine-checked shape findings (fits, maxima, rates).
	Notes []string
	// Fidelity the report was generated at.
	Fidelity Fidelity
	// Engine aggregates the engine-level Stats counters over every run the
	// experiment executed (scheduler events, messages by kind, adversary
	// interventions, wall time per phase) — the data behind ugfbench
	// -stats. Journal-served runs contribute their recorded stats.
	Engine sim.Stats
	// EngineRuns is the number of outcomes aggregated into Engine.
	EngineRuns int
}

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment is a registered, named reproduction target.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Report, error)
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// canonicalOrder follows the paper's presentation: Figure 3 panels, then
// the in-text theory claims, then the secondary claims and extensions.
// Registration order is per-file and therefore arbitrary.
var canonicalOrder = map[string]int{
	"fig3a": 0, "fig3b": 1, "fig3c": 2, "fig3d": 3, "fig3e": 4,
	"example1": 5, "lemma45": 6, "lemma1": 7, "tradeoff": 8,
	"fsweep": 9, "strategies": 10, "oblivious": 11,
	"adaptation": 12, "omission": 13, "tuning": 14, "degradation": 15,
	"topology": 16,
}

// All returns every experiment in the paper's presentation order;
// experiments without a canonical rank (none today) sort last.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := canonicalOrder[out[i].ID]
		rj, jok := canonicalOrder[out[j].ID]
		if !iok {
			ri = len(canonicalOrder)
		}
		if !jok {
			rj = len(canonicalOrder)
		}
		return ri < rj
	})
	return out
}

// IDs lists the registered experiment ids in presentation order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// execute runs specs on the parallel runner with the experiment's
// cancellation, journaling, and watchdog settings, then annotates rep so
// that failed or retried runs surface in the report instead of vanishing
// silently — the statistics downstream use the surviving runs (failed
// slots carry HorizonHit placeholders, which every cutoff-aware summary
// already skips).
func execute(rep *Report, cfg Config, specs []runner.Spec) ([]runner.Result, error) {
	if cfg.Shards > 0 {
		for i := range specs {
			specs[i].Base.Workers = cfg.Shards
		}
	}
	for i := range specs {
		if cfg.Faults != nil && specs[i].Base.Faults == nil {
			specs[i].Base.Faults = cfg.Faults
		}
		if cfg.StallWindow > 0 && specs[i].Base.StallWindow == 0 {
			specs[i].Base.StallWindow = cfg.StallWindow
		}
		if cfg.Topology != nil && specs[i].Base.Topology == nil {
			specs[i].Base.Topology = cfg.Topology
		}
		if cfg.MaxEvents > 0 && specs[i].Base.MaxEvents == 0 {
			specs[i].Base.MaxEvents = cfg.MaxEvents
		}
	}
	exec := cfg.Exec
	if exec == nil {
		exec = runner.ExecuteContext
	}
	results, err := exec(cfg.context(), specs, runner.Options{
		Workers:  cfg.Workers,
		Progress: cfg.Progress,
		OnRun:    cfg.OnRun,
		Trace:    cfg.Trace,
		Journal:  cfg.Journal,
		MaxWall:  cfg.MaxWall,
	})
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		for i := range res.Outcomes {
			rep.Engine.Merge(&res.Outcomes[i].Stats)
			rep.EngineRuns++
		}
		if n := len(res.Errors); n > 0 {
			rep.Notef("PARTIAL — series %q: %d/%d runs failed and were excluded (first: %v)",
				res.Spec.Name, n, res.Spec.Runs, res.Errors[0])
		}
		if n := len(res.Flaky); n > 0 {
			rep.Notef("series %q: %d run(s) recovered by a same-seed retry (environmental failures)",
				res.Spec.Name, n)
		}
	}
	return results, nil
}

// medianOf summarizes a metric over non-cutoff outcomes, returning the
// median with the Q1/Q3 band the paper shades around its curves.
func medianOf(outs []sim.Outcome, metric func([]sim.Outcome) []float64) (median, q1, q3 float64) {
	kept := make([]sim.Outcome, 0, len(outs))
	for _, o := range outs {
		if !o.HorizonHit {
			kept = append(kept, o)
		}
	}
	xs := metric(kept)
	if len(xs) == 0 {
		return 0, 0, 0
	}
	return stats.Quantile(xs, 0.5), stats.Quantile(xs, 0.25), stats.Quantile(xs, 0.75)
}
