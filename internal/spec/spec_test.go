package spec

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/ugf-sim/ugf/internal/core"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/sim"
)

// TestFingerprintIgnoresFieldOrder: the same spec serialized with
// different JSON field orders parses to the same fingerprint — the cache
// key is content-addressed, not encoding-addressed.
func TestFingerprintIgnoresFieldOrder(t *testing.T) {
	a := `{"protocol":"ears","adversary":"ugf","n":50,"f":10,"seed":7}`
	b := `{"seed":7,"f":10,"n":50,"adversary":"ugf","protocol":"ears"}`
	sa, err := ParseSpec([]byte(a))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ParseSpec([]byte(b))
	if err != nil {
		t.Fatal(err)
	}
	if sa.Fingerprint() != sb.Fingerprint() {
		t.Errorf("field order changed the fingerprint: %s vs %s", sa.Fingerprint(), sb.Fingerprint())
	}
}

// TestFingerprintIgnoresDefaultElision: spelling out a parameter's
// default value (or the implicit "none" adversary, or version 1
// explicitly) fingerprints identically to eliding it.
func TestFingerprintIgnoresDefaultElision(t *testing.T) {
	base := Spec{Protocol: "sears", N: 50, F: 10, Seed: 3}
	defaults := gossip.MustByName("sears").(gossip.SEARS)
	spelled := Spec{
		Version:  Version,
		Protocol: "sears",
		ProtocolParams: map[string]float64{
			"c":       defaults.C,
			"epsilon": defaults.Epsilon,
		},
		Adversary: "none",
		N:         50, F: 10, Seed: 3,
	}
	if got, want := spelled.Fingerprint(), base.Fingerprint(); got != want {
		t.Errorf("default elision changed the fingerprint: %s vs %s", got, want)
	}
	cj, err := spelled.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := base.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(cj) != string(bj) {
		t.Errorf("canonical JSON differs:\n%s\n%s", cj, bj)
	}
}

// TestFingerprintMovesWithOutcomeFields: every field that changes the
// run's outcome moves the fingerprint.
func TestFingerprintMovesWithOutcomeFields(t *testing.T) {
	base := Spec{Protocol: "ears", Adversary: "ugf", N: 50, F: 10, Seed: 7}
	fp := base.Fingerprint()
	mutations := map[string]Spec{}
	add := func(name string, mut func(*Spec)) {
		s := base
		mut(&s)
		mutations[name] = s
	}
	add("protocol", func(s *Spec) { s.Protocol = "push-pull" })
	add("protocol param", func(s *Spec) { s.ProtocolParams = map[string]float64{"windowscale": 2} })
	add("adversary", func(s *Spec) { s.Adversary = "oblivious" })
	add("adversary param", func(s *Spec) { s.AdversaryParams = map[string]float64{"q1": 0.25} })
	add("n", func(s *Spec) { s.N = 51 })
	add("f", func(s *Spec) { s.F = 11 })
	add("seed", func(s *Spec) { s.Seed = 8 })
	add("horizon", func(s *Spec) { s.Horizon = 1000 })
	add("max events", func(s *Spec) { s.MaxEvents = 1 << 20 })
	add("faults", func(s *Spec) { s.Faults = "drop=0.1" })
	add("topology", func(s *Spec) { s.Topology = "ring" })
	add("topology param", func(s *Spec) { s.Topology = "k-regular,k=6" })
	add("stall window", func(s *Spec) { s.StallWindow = 4096 })
	add("stats every", func(s *Spec) { s.StatsEvery = 10 })
	add("keep per process", func(s *Spec) { s.KeepPerProcess = true })
	for name, s := range mutations {
		if err := s.Validate(); err != nil {
			t.Errorf("%s mutation invalid: %v", name, err)
			continue
		}
		if s.Fingerprint() == fp {
			t.Errorf("%s change did not move the fingerprint", name)
		}
	}
}

// TestCanonicalRoundTrip: Config ∘ FromConfig is the identity on
// registry-built configurations, and canonical specs are fixed points of
// canonicalization.
func TestCanonicalRoundTrip(t *testing.T) {
	s := Spec{
		Protocol:        "sears",
		ProtocolParams:  map[string]float64{"epsilon": 0.25},
		Adversary:       "ugf",
		AdversaryParams: map[string]float64{"tau": 100},
		N:               64, F: 8, Seed: 99,
		Faults:      "drop=0.05,seed=3",
		StallWindow: 1 << 12,
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != s.Fingerprint() {
		t.Errorf("FromConfig(Config(s)) moved the fingerprint")
	}
	canon, err := s.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	canon2, err := canon.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(canon)
	j2, _ := json.Marshal(canon2)
	if string(j1) != string(j2) {
		t.Errorf("canonicalization is not idempotent:\n%s\n%s", j1, j2)
	}
	if sears, ok := cfg.Protocol.(gossip.SEARS); !ok || sears.Epsilon != 0.25 {
		t.Errorf("protocol params not applied: %+v", cfg.Protocol)
	}
	if u, ok := cfg.Adversary.(core.UGF); !ok || u.Tau != 100 || u.FixedK != 1 {
		t.Errorf("adversary params not applied over the registry default: %+v", cfg.Adversary)
	}
}

// TestUGFVariantsExtractDistinctly: the two core.UGF registrations
// extract back to their own names, so "ugf" and "ugf-sampled" keep
// distinct cache identities.
func TestUGFVariantsExtractDistinctly(t *testing.T) {
	fixed, err := FromConfig(sim.Config{N: 10, Protocol: gossip.PushPull{}, Adversary: core.UGF{FixedK: 1, FixedL: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Adversary != "ugf" || len(fixed.AdversaryParams) != 0 {
		t.Errorf("UGF{1,1} extracted to %q %v, want ugf with no params", fixed.Adversary, fixed.AdversaryParams)
	}
	sampled, err := FromConfig(sim.Config{N: 10, Protocol: gossip.PushPull{}, Adversary: core.UGF{}})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Adversary != "ugf-sampled" || len(sampled.AdversaryParams) != 0 {
		t.Errorf("UGF{} extracted to %q %v, want ugf-sampled with no params", sampled.Adversary, sampled.AdversaryParams)
	}
	if fixed.Fingerprint() == sampled.Fingerprint() {
		t.Error("ugf and ugf-sampled share a fingerprint")
	}
}

// TestValidationErrors: malformed specs fail with structured errors
// naming the offending field (and parameter), the contract the job API's
// 400 responses rely on.
func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name        string
		json        string
		field, para string
	}{
		{"missing protocol", `{"n":10,"f":1,"seed":1}`, "protocol", ""},
		{"unknown protocol", `{"protocol":"nope","n":10,"f":1}`, "protocol", ""},
		{"unknown protocol param", `{"protocol":"ears","protocol_params":{"zap":1},"n":10,"f":1}`, "protocol_params", "zap"},
		{"out-of-bounds param", `{"protocol":"sears","protocol_params":{"epsilon":2},"n":10,"f":1}`, "protocol_params", "epsilon"},
		{"fractional int param", `{"protocol":"ears","adversary":"ugf","adversary_params":{"fixedk":1.5},"n":10,"f":1}`, "adversary_params", "fixedk"},
		{"unknown adversary", `{"protocol":"ears","adversary":"nope","n":10,"f":1}`, "adversary", ""},
		{"params on none", `{"protocol":"ears","adversary":"none","adversary_params":{"q1":1},"n":10,"f":1}`, "adversary_params", ""},
		{"n too small", `{"protocol":"ears","n":0,"f":0}`, "n", ""},
		{"f out of range", `{"protocol":"ears","n":10,"f":10}`, "f", ""},
		{"bad faults", `{"protocol":"ears","n":10,"f":1,"faults":"zap=1"}`, "faults", ""},
		{"bad topology kind", `{"protocol":"ears","n":10,"f":1,"topology":"warp"}`, "topology", ""},
		{"bad topology degree", `{"protocol":"ears","n":10,"f":1,"topology":"k-regular,k=3"}`, "topology", ""},
		{"bad version", `{"v":9,"protocol":"ears","n":10,"f":1}`, "v", ""},
		{"unknown field", `{"protocol":"ears","n":10,"f":1,"bogus":true}`, "", ""},
	}
	for _, tc := range cases {
		_, err := ParseSpec([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		se, ok := err.(*Error)
		if !ok {
			t.Errorf("%s: error is %T, want *spec.Error", tc.name, err)
			continue
		}
		if se.Field != tc.field || se.Param != tc.para {
			t.Errorf("%s: error at %q/%q, want %q/%q (%v)", tc.name, se.Field, se.Param, tc.field, tc.para, se)
		}
	}
}

// TestSeriesFingerprintFallback: configurations without a registry
// encoding (nil protocol, custom types) fingerprint through the opaque
// path, which still distinguishes everything the old journal fingerprint
// did — plus the fault/stall fields it missed.
func TestSeriesFingerprintFallback(t *testing.T) {
	base := sim.Config{N: 10, F: 1}
	fp := SeriesFingerprint("s", 5, 1, base)
	if got := SeriesFingerprint("s", 5, 1, sim.Config{N: 11, F: 1}); got == fp {
		t.Error("fallback fingerprint ignored N")
	}
	if got := SeriesFingerprint("t", 5, 1, base); got == fp {
		t.Error("fingerprint ignored the series name")
	}
	withStall := base
	withStall.StallWindow = 100
	if got := SeriesFingerprint("s", 5, 1, withStall); got == fp {
		t.Error("fallback fingerprint ignored the stall window")
	}
	withTopo := base
	withTopo.Topology = &sim.Topology{Kind: "ring"}
	if got := SeriesFingerprint("s", 5, 1, withTopo); got == fp {
		t.Error("fallback fingerprint ignored the topology")
	}
}

// TestTopologyCompleteElides: the complete graph is the default and must
// elide from canonical form — "" and "complete" fingerprint identically,
// so every pre-topology spec keeps its fingerprint (the default-elision
// rule that keeps the encoding at version 1).
func TestTopologyCompleteElides(t *testing.T) {
	base := Spec{Protocol: "ears", N: 20, F: 2, Seed: 5}
	complete := base
	complete.Topology = "complete"
	if got, want := complete.Fingerprint(), base.Fingerprint(); got != want {
		t.Errorf("explicit complete topology moved the fingerprint: %s vs %s", got, want)
	}
	cj, err := complete.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(cj), "topology") {
		t.Errorf("canonical JSON of a complete topology carries the field: %s", cj)
	}
	// Seeded kinds round-trip with defaults spelled out: parse ∘ String
	// is the identity, so elided parameters canonicalize to one form.
	short := base
	short.Topology = "expander"
	long := base
	long.Topology = "expander,k=4,seed=0"
	if short.Fingerprint() != long.Fingerprint() {
		t.Error("elided expander defaults changed the fingerprint")
	}
	canon, err := short.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if canon.Topology != "expander,k=4,seed=0" {
		t.Errorf("canonical topology = %q, want expander,k=4,seed=0", canon.Topology)
	}
}

// TestOutcomeHashShape: 16 lowercase hex digits, sensitive to content.
func TestOutcomeHashShape(t *testing.T) {
	a := OutcomeHash(sim.Outcome{N: 10, Seed: 1, Time: 3.5})
	b := OutcomeHash(sim.Outcome{N: 10, Seed: 1, Time: 3.6})
	if len(a) != 16 || strings.ToLower(a) != a {
		t.Errorf("hash %q is not 16 lowercase hex digits", a)
	}
	if a == b {
		t.Error("outcome content did not move the hash")
	}
}
