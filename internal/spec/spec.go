// Package spec defines the canonical, versioned, serializable description
// of one simulation run — the stable contract between the public API, the
// sweep service, the run journal, and the content-addressed result cache.
//
// A Spec names its protocol and adversary through the registries
// (internal/gossip, internal/adversary) with parameter overrides validated
// against the registries' schemas, and carries every Config field that
// determines the run's Outcome: N, F, seed, horizon, event cap, link-fault
// plan, stall window, and the outcome-shaping observability knobs
// (StatsEvery, KeepPerProcess). Outcome-neutral knobs — Workers/shards,
// tracing, sampling, wall-clock watchdogs — are deliberately excluded, so
// the same spec fingerprints identically however it is executed.
//
// # Canonical form and fingerprints
//
// Canonicalize resolves a spec to its canonical form: names resolved,
// parameters reduced to the minimal diff against the registry defaults,
// the fault plan re-rendered in ParseFaultPlan's normal form, the version
// pinned. CanonicalJSON marshals that form with a fixed field order and
// sorted parameter keys, and Fingerprint hashes those bytes with FNV-64a —
// the one fingerprint implementation in the codebase, shared by the run
// journal (SeriesFingerprint), the result cache, and the golden matrices
// (OutcomeHash). Two specs that build the same run — whatever field order,
// default elision, or parameter spelling their JSON arrived with —
// fingerprint identically.
//
// # Versioning rules
//
// Version 1 is the current encoding. A spec with Version 0 is read as the
// current version (the field is elided from hand-written specs);
// canonical form always pins it explicitly. Any change that alters the
// meaning of existing canonical encodings — a renamed field, a changed
// default, a new value encoding — must bump Version and keep a decoder
// for the old one; changes that only add optional fields (elided when
// zero) keep the version, because old canonical encodings remain valid
// and fingerprint-stable. Registry renames are version bumps too: the
// registry name is part of the cache key.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"github.com/ugf-sim/ugf/internal/adversary"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/params"
	"github.com/ugf-sim/ugf/internal/sim"
)

// Version is the current spec encoding version.
const Version = 1

// Spec is the canonical description of one run: a serializable, versioned,
// validated alternative to building a sim.Config by hand. The JSON field
// order below is the canonical encoding order; map-valued parameters
// marshal with sorted keys, so CanonicalJSON is deterministic.
type Spec struct {
	// Version is the encoding version; 0 is read as the current Version.
	Version int `json:"v,omitempty"`
	// Protocol is the registry name of the protocol (gossip.Names).
	Protocol string `json:"protocol"`
	// ProtocolParams overrides protocol parameters by schema name.
	ProtocolParams map[string]float64 `json:"protocol_params,omitempty"`
	// Adversary is the registry name of the adversary (adversary.Names);
	// "" is read as "none".
	Adversary string `json:"adversary,omitempty"`
	// AdversaryParams overrides adversary parameters by schema name.
	AdversaryParams map[string]float64 `json:"adversary_params,omitempty"`
	// N and F mirror sim.Config.
	N int `json:"n"`
	F int `json:"f"`
	// Seed determines every random choice of the run; a (Spec, Seed) pair
	// fully determines the Outcome, which is what makes the fingerprint a
	// cache key.
	Seed uint64 `json:"seed"`
	// Horizon and MaxEvents mirror sim.Config (0: engine defaults).
	Horizon   int64 `json:"horizon,omitempty"`
	MaxEvents int64 `json:"max_events,omitempty"`
	// Faults is the link-fault plan in sim.ParseFaultPlan syntax ("" for
	// none); canonical form re-renders it via FaultPlan.String.
	Faults string `json:"faults,omitempty"`
	// Topology is the communication graph in sim.ParseTopology syntax
	// ("ring", "k-regular,k=4", …). The complete graph — the paper's
	// default — always elides: "" and "complete" canonicalize to the
	// absent field, so every pre-topology canonical encoding (and its
	// fingerprint) is unchanged. This is the default-elision rule new
	// optional fields must follow to keep the version at 1.
	Topology string `json:"topology,omitempty"`
	// StallWindow mirrors sim.Config.StallWindow (0: off).
	StallWindow int64 `json:"stall_window,omitempty"`
	// StatsEvery and KeepPerProcess mirror sim.Config: they change the
	// Outcome's content (the interval series, the per-process counters),
	// so they are part of the run's identity.
	StatsEvery     int64 `json:"stats_every,omitempty"`
	KeepPerProcess bool  `json:"keep_per_process,omitempty"`
}

// Error is a structured spec-validation failure: the offending field, the
// offending parameter within it (when applicable), and why. The job API
// serializes it into 400 responses.
type Error struct {
	// Field names the offending Spec field ("protocol", "adversary_params",
	// "n", …).
	Field string `json:"field"`
	// Param is the offending parameter name within Field, when the failure
	// is a parameter failure.
	Param string `json:"param,omitempty"`
	// Msg describes the failure.
	Msg string `json:"msg"`
}

func (e *Error) Error() string {
	where := e.Field
	if e.Param != "" {
		where += "." + e.Param
	}
	return fmt.Sprintf("spec: %s: %s", where, e.Msg)
}

// fieldError wraps a registry/params failure with its Spec field.
func fieldError(field string, err error) *Error {
	if pe, ok := err.(*params.Error); ok {
		return &Error{Field: field, Param: pe.Param, Msg: pe.Msg}
	}
	return &Error{Field: field, Msg: err.Error()}
}

// Validate checks the spec without building it: version, system sizes,
// registry names, parameter schemas and bounds, and the fault-plan
// syntax. It returns a *Error describing the first failure.
func (s Spec) Validate() error {
	_, err := s.Config()
	return err
}

// Config resolves the spec into a runnable sim.Config — the one blessed
// path from a serialized spec to a configuration: registry lookup by
// name, schema-validated parameter overrides, parsed fault plan. The
// returned error is a *Error.
func (s Spec) Config() (sim.Config, error) {
	if s.Version != 0 && s.Version != Version {
		return sim.Config{}, &Error{Field: "v", Msg: fmt.Sprintf("unsupported spec version %d (this build speaks version %d)", s.Version, Version)}
	}
	if s.N < 1 {
		return sim.Config{}, &Error{Field: "n", Msg: fmt.Sprintf("N = %d, need N ≥ 1", s.N)}
	}
	if s.F < 0 || s.F >= s.N {
		return sim.Config{}, &Error{Field: "f", Msg: fmt.Sprintf("F = %d, need 0 ≤ F < N = %d", s.F, s.N)}
	}
	if s.Horizon < 0 {
		return sim.Config{}, &Error{Field: "horizon", Msg: fmt.Sprintf("Horizon = %d, need ≥ 0", s.Horizon)}
	}
	if s.MaxEvents < 0 {
		return sim.Config{}, &Error{Field: "max_events", Msg: fmt.Sprintf("MaxEvents = %d, need ≥ 0", s.MaxEvents)}
	}
	if s.StallWindow < 0 {
		return sim.Config{}, &Error{Field: "stall_window", Msg: fmt.Sprintf("StallWindow = %d, need ≥ 0", s.StallWindow)}
	}
	if s.StatsEvery < 0 {
		return sim.Config{}, &Error{Field: "stats_every", Msg: fmt.Sprintf("StatsEvery = %d, need ≥ 0", s.StatsEvery)}
	}
	if s.Protocol == "" {
		return sim.Config{}, &Error{Field: "protocol", Msg: "protocol is required"}
	}
	proto, err := gossip.Build(s.Protocol, s.ProtocolParams)
	if err != nil {
		return sim.Config{}, fieldError(protoField(err), err)
	}
	advName := s.Adversary
	if advName == "" {
		advName = "none"
	}
	adv, err := adversary.Build(advName, s.AdversaryParams)
	if err != nil {
		return sim.Config{}, fieldError(advField(err), err)
	}
	plan, err := sim.ParseFaultPlan(s.Faults)
	if err != nil {
		return sim.Config{}, &Error{Field: "faults", Msg: err.Error()}
	}
	topo, err := sim.ParseTopology(s.Topology)
	if err != nil {
		return sim.Config{}, &Error{Field: "topology", Msg: err.Error()}
	}
	return sim.Config{
		N: s.N, F: s.F, Protocol: proto, Adversary: adv, Seed: s.Seed,
		Horizon: sim.Step(s.Horizon), MaxEvents: s.MaxEvents,
		Faults: plan, Topology: topo, StallWindow: s.StallWindow,
		StatsEvery: sim.Step(s.StatsEvery), KeepPerProcess: s.KeepPerProcess,
	}, nil
}

// protoField routes a protocol build error to its Spec field: parameter
// failures belong to protocol_params, name failures to protocol.
func protoField(err error) string {
	if _, ok := err.(*params.Error); ok {
		return "protocol_params"
	}
	return "protocol"
}

func advField(err error) string {
	if _, ok := err.(*params.Error); ok {
		return "adversary_params"
	}
	return "adversary"
}

// FromConfig extracts the canonical Spec of a sim.Config: the inverse of
// Config, defined for configurations whose protocol and adversary are
// registry types. Custom protocol or adversary implementations have no
// spec encoding (and therefore no cache identity); FromConfig reports
// them with an error.
func FromConfig(cfg sim.Config) (Spec, error) {
	protoName, protoParams, ok := gossip.Extract(cfg.Protocol)
	if !ok {
		return Spec{}, &Error{Field: "protocol", Msg: fmt.Sprintf("protocol %T is not a registry type and has no spec encoding", cfg.Protocol)}
	}
	advName, advParams, ok := adversary.Extract(cfg.Adversary)
	if !ok {
		return Spec{}, &Error{Field: "adversary", Msg: fmt.Sprintf("adversary %T is not a registry type and has no spec encoding", cfg.Adversary)}
	}
	s := Spec{
		Version:  Version,
		Protocol: protoName, ProtocolParams: protoParams,
		Adversary: advName, AdversaryParams: advParams,
		N: cfg.N, F: cfg.F, Seed: cfg.Seed,
		Horizon: int64(cfg.Horizon), MaxEvents: cfg.MaxEvents,
		StallWindow: cfg.StallWindow,
		StatsEvery:  int64(cfg.StatsEvery), KeepPerProcess: cfg.KeepPerProcess,
	}
	if cfg.Faults.Active() {
		s.Faults = cfg.Faults.String()
	}
	if cfg.Topology.Active() {
		s.Topology = cfg.Topology.String()
	}
	return s, nil
}

// Canonicalize resolves the spec to its canonical form: the form every
// equivalent spelling of the same run reduces to. It builds the effective
// configuration and re-extracts it, so parameter maps collapse to the
// minimal diff against the registry defaults (explicitly spelling out a
// default produces the identical canonical form as eliding it), "" and
// "none" adversaries unify, inactive fault plans vanish, and the version
// is pinned. The seed survives untouched — it is part of the run's
// identity.
func (s Spec) Canonicalize() (Spec, error) {
	cfg, err := s.Config()
	if err != nil {
		return Spec{}, err
	}
	out, err := FromConfig(cfg)
	if err != nil {
		// Unreachable for specs that passed Config: registry-built
		// instances always extract.
		return Spec{}, err
	}
	return out, nil
}

// CanonicalJSON returns the canonical encoding of the spec: the
// Canonicalize form marshaled with the fixed field order of the Spec
// struct and sorted parameter keys. Specs that build the same run yield
// byte-identical canonical JSON.
func (s Spec) CanonicalJSON() ([]byte, error) {
	c, err := s.Canonicalize()
	if err != nil {
		return nil, err
	}
	return json.Marshal(c) // encoding/json sorts map keys; field order is fixed
}

// Fingerprint returns the spec's content address: the FNV-64a hash of its
// canonical JSON, in the journal's 16-hex-digit format. It is stable
// across field reordering, default elision, and parameter spelling, and
// moves with anything that changes the run's outcome. Invalid specs —
// which have no canonical form — are fingerprinted over their plain JSON
// encoding instead, so the function is total; such fingerprints never
// collide with canonical ones in practice because canonical specs always
// carry a resolvable registry name.
func (s Spec) Fingerprint() string {
	b, err := s.CanonicalJSON()
	if err != nil {
		raw, _ := json.Marshal(s)
		return sum64(append([]byte("invalid|"), raw...))
	}
	return sum64(b)
}

// ParseSpec decodes a JSON spec, rejecting unknown fields and validating
// the result. The input's field order is irrelevant: the parsed spec
// canonicalizes and fingerprints identically however it was spelled.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := unmarshalStrict(data, &s); err != nil {
		return Spec{}, &Error{Field: "", Msg: err.Error()}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// SeriesFingerprint identifies everything about a runner series — name,
// repetition plan, base seed, and the outcome-determining content of its
// base configuration — that determines its outcomes; it is the journal's
// record key. Registry-typed configurations fingerprint through their
// canonical spec encoding (seed zeroed: runs derive per-run seeds from
// the base seed and index); custom protocol or adversary types fall back
// to an opaque printed representation, which still captures tuning fields
// Name() omits. Outcome-neutral knobs — Workers, Trace, Sample, progress —
// are deliberately excluded, so a journal written at -workers 8 resumes
// cleanly at -workers 1.
func SeriesFingerprint(name string, runs int, baseSeed uint64, base sim.Config) string {
	prefix := fmt.Sprintf("series|%s|%d|%d|", name, runs, baseSeed)
	if sp, err := FromConfig(base); err == nil {
		sp.Seed = 0
		if b, err := sp.CanonicalJSON(); err == nil {
			return sum64(append([]byte(prefix), b...))
		}
	}
	// Opaque fallback: %T%+v captures the concrete type and every exported
	// field of custom protocols/adversaries. Faults and the stall window
	// joined the fingerprint with the spec encoding (they change outcomes);
	// the fallback includes them too.
	faults := ""
	if base.Faults.Active() {
		faults = base.Faults.String()
	}
	topo := ""
	if base.Topology.Active() {
		topo = base.Topology.String()
	}
	opaque := fmt.Sprintf("opaque|%d|%d|%d|%d|%T%+v|%T%+v|%s|%s|%d|%d|%v",
		base.N, base.F, base.Horizon, base.MaxEvents,
		base.Protocol, base.Protocol, base.Adversary, base.Adversary,
		faults, topo, base.StallWindow, base.StatsEvery, base.KeepPerProcess)
	return sum64([]byte(prefix + opaque))
}

// OutcomeHash is the content hash of a deterministic outcome: FNV-64a
// over the JSON encoding of o.StripWall(). Every Stats counter, the
// interval series, and the per-process counts feed the hash, so an engine
// change that shifts any of them by one moves it. The golden matrices pin
// these hashes; the sweep service uses them to assert byte-identity
// between distributed and local execution.
func OutcomeHash(o sim.Outcome) string {
	js, err := json.Marshal(o.StripWall())
	if err != nil {
		// Outcome is a plain data struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("spec: marshal outcome: %v", err))
	}
	return sum64(js)
}

// sum64 is the codebase's one fingerprint hash: FNV-64a rendered as 16
// hex digits.
func sum64(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}
