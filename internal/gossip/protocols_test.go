package gossip

import (
	"reflect"
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
)

// Cross-protocol integration tests: every protocol in the registry must
// gather and quiesce without an adversary, deterministically, and behave
// identically under parallel stepping.

func allProtocols() []sim.Protocol {
	var out []sim.Protocol
	for _, name := range Names() {
		out = append(out, MustByName(name))
	}
	// A couple of parameterized variants on top of the registry defaults.
	out = append(out,
		EARS{WindowScale: 2},
		SEARS{C: 2, Epsilon: 0.3},
		BudgetCapped{Alpha: 1},
		Adaptive{GiveUpFactor: 8},
	)
	return out
}

// gatheringProtocols are the protocols that promise rumor gathering
// without an adversary. Two registry members deliberately do not:
// BudgetCapped's hard message budget is the α knob of the Theorem 1
// trade-off experiment (trading away gathering reliability is the
// measured effect), and Push keeps no completion evidence at all — the
// textbook weakness that motivates the evidence machinery of the
// evaluated protocols (see the Push type comment).
func gatheringProtocols() []sim.Protocol {
	var out []sim.Protocol
	for _, p := range allProtocols() {
		switch p.(type) {
		case BudgetCapped, Push:
		default:
			out = append(out, p)
		}
	}
	return out
}

func TestPushGathersUsually(t *testing.T) {
	// Push-only has no spread guarantee, but at moderate N the inactivity
	// window makes premature sleep rare.
	fails := 0
	const runs = 30
	for seed := uint64(0); seed < runs; seed++ {
		o, err := sim.Run(sim.Config{N: 30, F: 10, Protocol: Push{}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if o.HorizonHit {
			t.Fatalf("seed %d: push did not quiesce", seed)
		}
		if !o.Gathered {
			fails++
		}
	}
	if fails > 3 {
		t.Errorf("push failed gathering on %d/%d adversary-free runs", fails, runs)
	}
}

func TestAllProtocolsGatherWithoutAdversary(t *testing.T) {
	for _, proto := range gatheringProtocols() {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			t.Parallel()
			fails := 0
			const runs = 30
			for seed := uint64(0); seed < runs; seed++ {
				n := 5 + int(seed%4)*15 // 5, 20, 35, 50
				o, err := sim.Run(sim.Config{
					N: n, F: n / 3, Protocol: proto, Seed: seed,
					MaxEvents: 5_000_000,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if o.HorizonHit {
					t.Fatalf("seed %d: protocol did not quiesce: %+v", seed, o)
				}
				if !o.Gathered {
					fails++
				}
				if o.Messages <= 0 && n > 1 {
					t.Errorf("seed %d: no messages sent", seed)
				}
			}
			// Timeout-based completion (EARS family) can in principle
			// fail gathering on unlucky runs; it must be rare.
			if fails > 1 {
				t.Errorf("gathering failed on %d/%d adversary-free runs", fails, runs)
			}
		})
	}
}

func TestAllProtocolsDeterministic(t *testing.T) {
	for _, proto := range allProtocols() {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := sim.Config{N: 23, F: 7, Protocol: proto, Seed: 99, KeepPerProcess: true}
			a, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.StripWall(), b.StripWall()) {
				t.Fatalf("non-deterministic outcome:\n%+v\n%+v", a, b)
			}
		})
	}
}

func TestAllProtocolsSerialParallelEquivalence(t *testing.T) {
	for _, proto := range allProtocols() {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 5; seed++ {
				base := sim.Config{N: 40, F: 12, Protocol: proto, Seed: seed, KeepPerProcess: true}
				serial := base
				serial.Workers = 1
				parallel := base
				parallel.Workers = 6
				so, err := sim.Run(serial)
				if err != nil {
					t.Fatal(err)
				}
				po, err := sim.Run(parallel)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(so.StripWall(), po.StripWall()) {
					t.Fatalf("seed %d: parallel ≠ serial:\n%+v\n%+v", seed, so, po)
				}
			}
		})
	}
}

func TestRoundRobinExactComplexities(t *testing.T) {
	// Example 1: M(O) = N(N-1) and the last send happens at step N-1.
	for _, n := range []int{2, 5, 10, 33} {
		o, err := sim.Run(sim.Config{N: n, F: 0, Protocol: RoundRobin{}, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(n * (n - 1)); o.Messages != want {
			t.Errorf("N=%d: M = %d, want %d", n, o.Messages, want)
		}
		if want := sim.Step(n - 1); o.TEnd != want {
			t.Errorf("N=%d: TEnd = %d, want %d", n, o.TEnd, want)
		}
		if !o.Gathered {
			t.Errorf("N=%d: round-robin failed to gather", n)
		}
		// T(O) = (N-1)/2: Θ(N) as Example 1 states.
		if want := float64(n-1) / 2; o.Time != want {
			t.Errorf("N=%d: T = %v, want %v", n, o.Time, want)
		}
	}
}

func TestBroadcastExactComplexities(t *testing.T) {
	for _, n := range []int{2, 10, 50} {
		o, err := sim.Run(sim.Config{N: n, F: 0, Protocol: Broadcast{}, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(n * (n - 1)); o.Messages != want {
			t.Errorf("N=%d: M = %d, want %d", n, o.Messages, want)
		}
		if o.TEnd != 1 {
			t.Errorf("N=%d: TEnd = %d, want 1", n, o.TEnd)
		}
		if !o.Gathered {
			t.Errorf("N=%d: broadcast failed to gather", n)
		}
	}
}

func TestPushPullBaselineIsSubLinear(t *testing.T) {
	// Without an adversary Push-Pull completes in logarithmic time and
	// quasi-linear messages; check generous super-bounds so the test stays
	// robust while still ruling out linear time / quadratic messages.
	const n = 200
	var worstT float64
	var worstM int64
	for seed := uint64(0); seed < 5; seed++ {
		o, err := sim.Run(sim.Config{N: n, F: 0, Protocol: PushPull{}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !o.Gathered {
			t.Fatalf("seed %d: no gathering", seed)
		}
		if o.Time > worstT {
			worstT = o.Time
		}
		if o.Messages > worstM {
			worstM = o.Messages
		}
	}
	if worstT > float64(n)/4 {
		t.Errorf("baseline Push-Pull time %v looks linear (N=%d)", worstT, n)
	}
	if worstM > int64(n*n)/4 {
		t.Errorf("baseline Push-Pull messages %d look quadratic (N=%d)", worstM, n)
	}
}

func TestEARSBaselineIsSubLinear(t *testing.T) {
	const n = 200
	for seed := uint64(0); seed < 5; seed++ {
		o, err := sim.Run(sim.Config{N: n, F: n / 3, Protocol: EARS{}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if o.Time > float64(n)/4 {
			t.Errorf("seed %d: baseline EARS time %v looks linear", seed, o.Time)
		}
		if o.Messages > int64(n*n)/4 {
			t.Errorf("seed %d: baseline EARS messages %d look quadratic", seed, o.Messages)
		}
	}
}

func TestSEARSBaselineIsFastAndMessageHeavy(t *testing.T) {
	// SEARS buys near-constant time with ~quadratic messages even without
	// an attack (Section V-B3).
	const n = 200
	o, err := sim.Run(sim.Config{N: n, F: n / 3, Protocol: SEARS{}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Gathered {
		t.Fatal("SEARS failed to gather")
	}
	if o.Time > 20 {
		t.Errorf("SEARS time %v, want near-constant", o.Time)
	}
	if o.Messages < int64(n*n)/8 {
		t.Errorf("SEARS messages %d, want near-quadratic (N²=%d)", o.Messages, n*n)
	}
}

func TestBudgetCappedNeverExceedsBudget(t *testing.T) {
	for _, alpha := range []int{1, 2, 4, 8} {
		proto := BudgetCapped{Alpha: alpha}
		o, err := sim.Run(sim.Config{
			N: 60, F: 18, Protocol: proto, Seed: 7, KeepPerProcess: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		budget := int64(proto.Budget(60))
		for p, m := range o.PerProcessMsgs {
			if m > budget {
				t.Errorf("α=%d: process %d sent %d > budget %d", alpha, p, m, budget)
			}
		}
		if o.Messages > budget*60 {
			t.Errorf("α=%d: total %d exceeds global cap", alpha, o.Messages)
		}
	}
}

func TestBudgetCappedAlphaReducesMessages(t *testing.T) {
	total := func(alpha int) int64 {
		var sum int64
		for seed := uint64(0); seed < 5; seed++ {
			o, err := sim.Run(sim.Config{N: 80, F: 24, Protocol: BudgetCapped{Alpha: alpha}, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			sum += o.Messages
		}
		return sum
	}
	if m1, m8 := total(1), total(8); m8 >= m1 {
		t.Errorf("α=8 messages (%d) not below α=1 (%d)", m8, m1)
	}
}

func TestPushPullAnswersPullsWhileAsleep(t *testing.T) {
	// Whitebox: a sleeping Push-Pull process must still answer a pull.
	envs := makeEnvs(3, 0, 42)
	procs := PushPull{}.New(envs)
	p0 := procs[0].(*pushPullProc)
	// Make process 0 knowledge-complete so it sleeps.
	p0.learn(1)
	p0.learn(2)
	if !p0.Asleep() {
		t.Fatal("knowledge-complete process not asleep")
	}
	var out sim.Outbox
	outReset(&out, 0, 3)
	p0.Step(5, []sim.Message{{From: 1, To: 0, Payload: pullPayload{}}}, &out)
	if out.Len() != 1 {
		t.Fatalf("sleeping process answered %d messages, want 1", out.Len())
	}
	if !p0.Asleep() {
		t.Error("answering a pull woke the process for good")
	}
}

func TestPushPullSleepCondition(t *testing.T) {
	envs := makeEnvs(4, 0, 42)
	procs := PushPull{}.New(envs)
	p := procs[0].(*pushPullProc)
	if p.Asleep() {
		t.Fatal("fresh process asleep")
	}
	p.learn(1)
	p.markPulled(2)
	if p.Asleep() {
		t.Fatal("asleep with process 3 neither pulled nor known")
	}
	p.markPulled(3)
	if !p.Asleep() {
		t.Fatal("not asleep although every other process is pulled-or-known")
	}
	// Re-learning and re-pulling must not corrupt the counter.
	p.learn(1)
	p.learn(3)
	if p.need != 0 {
		t.Fatalf("need = %d after redundant updates, want 0", p.need)
	}
}

// outReset gives tests access to Outbox initialization without exporting
// the engine's internals: a fresh Outbox is reset by sending through a
// one-shot fake engine… simpler: replicate reset via the exported API.
func outReset(o *sim.Outbox, from sim.ProcID, n int) {
	*o = sim.NewOutbox(from, n)
}
