package gossip

import (
	"testing"
	"testing/quick"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

func TestBitsetBasics(t *testing.T) {
	b := newBitset(130)
	if b.has(0) || b.has(129) {
		t.Fatal("fresh bitset not empty")
	}
	if !b.add(0) || !b.add(129) || !b.add(64) {
		t.Fatal("add of new element reported false")
	}
	if b.add(64) {
		t.Fatal("re-add reported true")
	}
	if b.count() != 3 || b.popcount() != 3 {
		t.Fatalf("count = %d/%d, want 3", b.count(), b.popcount())
	}
	for _, i := range []int{0, 64, 129} {
		if !b.has(i) {
			t.Errorf("missing element %d", i)
		}
	}
	if b.has(1) || b.has(128) {
		t.Error("contains element never added")
	}
}

func TestBitsetCountMatchesPopcount(t *testing.T) {
	prop := func(adds []uint16) bool {
		b := newBitset(1 << 16)
		for _, a := range adds {
			b.add(int(a))
		}
		return b.count() == b.popcount()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArena(t *testing.T) {
	a := newArena(3)
	for p := 0; p < 3; p++ {
		if got := a.len(sim.ProcID(p)); got != 1 {
			t.Fatalf("initial log length of %d = %d, want 1", p, got)
		}
		if a.logs[p][0] != sim.ProcID(p) {
			t.Fatalf("log of %d does not start with its own gossip", p)
		}
	}
	a.publish(1, []sim.ProcID{0, 2})
	if got := a.len(1); got != 3 {
		t.Fatalf("log length after publish = %d, want 3", got)
	}
	pre := a.prefix(1, 2)
	if len(pre) != 2 || pre[0] != 1 || pre[1] != 0 {
		t.Fatalf("prefix = %v, want [1 0]", pre)
	}
	a.publish(1, nil) // no-op
	if got := a.len(1); got != 3 {
		t.Fatalf("empty publish changed length to %d", got)
	}
}

func TestInactivityWindow(t *testing.T) {
	cases := []struct {
		n, f  int
		scale float64
		want  int
	}{
		{10, 3, 1, 4},   // ⌈10/7·ln 10⌉ = ⌈3.29⌉
		{10, 0, 1, 3},   // ⌈ln 10⌉ = ⌈2.30⌉
		{100, 30, 1, 7}, // ⌈100/70·ln 100⌉ = ⌈6.58⌉
		{1, 0, 1, 1},    // ln 1 = 0 clamps to 1
		{10, 3, 2, 7},   // doubled scale
		{10, 3, 0, 4},   // scale 0 means 1
	}
	for _, c := range cases {
		if got := inactivityWindow(c.n, c.f, c.scale); got != c.want {
			t.Errorf("inactivityWindow(%d, %d, %v) = %d, want %d", c.n, c.f, c.scale, got, c.want)
		}
	}
}

func TestPayloadKinds(t *testing.T) {
	kinds := map[string]sim.Payload{
		"gossips": batchPayload{},
		"pull":    pullPayload{},
		"gossip":  singlePayload{},
		"ears":    earsPayload{},
	}
	for want, p := range kinds {
		if got := p.Kind(); got != want {
			t.Errorf("Kind() = %q, want %q", got, want)
		}
	}
}

func TestSEARSFanout(t *testing.T) {
	s := SEARS{} // defaults c=1, ε=0.5
	// ⌈√100 · ln 100⌉ = ⌈10·4.605⌉ = 47.
	if got := s.Fanout(100); got != 47 {
		t.Errorf("Fanout(100) = %d, want 47", got)
	}
	// Clamped to N-1 for tiny systems.
	if got := s.Fanout(2); got != 1 {
		t.Errorf("Fanout(2) = %d, want 1", got)
	}
	big := SEARS{C: 100}
	if got := big.Fanout(10); got != 9 {
		t.Errorf("clamped Fanout = %d, want 9", got)
	}
	lin := SEARS{Epsilon: 1}
	if got, min := lin.Fanout(100), 99; got != min {
		t.Errorf("ε=1 Fanout(100) = %d, want %d (clamped)", got, min)
	}
}

func TestBudgetCappedBudget(t *testing.T) {
	cases := []struct {
		alpha, n, want int
	}{
		{1, 101, 100},
		{2, 101, 50},
		{4, 101, 25},
		{0, 11, 10},   // alpha 0 means 1
		{1000, 11, 1}, // floor at 1
	}
	for _, c := range cases {
		b := BudgetCapped{Alpha: c.alpha}
		if got := b.Budget(c.n); got != c.want {
			t.Errorf("Budget(α=%d, N=%d) = %d, want %d", c.alpha, c.n, got, c.want)
		}
	}
}

func TestAdaptiveThreshold(t *testing.T) {
	a := Adaptive{}
	// 4·⌈log₂ 101⌉ = 4·7 = 28.
	if got := a.Threshold(100); got != 28 {
		t.Errorf("Threshold(100) = %d, want 28", got)
	}
	small := Adaptive{GiveUpFactor: 1}
	if got := small.Threshold(1); got < 1 {
		t.Errorf("Threshold(1) = %d, want ≥ 1", got)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("registered name %q not found", name)
		}
		if p.Name() != name {
			t.Errorf("registry key %q maps to protocol named %q", name, p.Name())
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name found")
	}
	if MustByName("ears") == nil {
		t.Error("MustByName returned nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName on unknown name did not panic")
		}
	}()
	MustByName("nope")
}

// makeEnvs builds process environments outside the engine, for whitebox
// protocol tests.
func makeEnvs(n, f int, seed uint64) []sim.Env {
	envs := make([]sim.Env, n)
	for p := 0; p < n; p++ {
		envs[p] = sim.Env{
			ID: sim.ProcID(p), N: n, F: f,
			RNG: xrand.New(xrand.Derive(seed, 1, uint64(p))),
		}
	}
	return envs
}
