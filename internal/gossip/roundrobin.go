package gossip

import "github.com/ugf-sim/ugf/internal/sim"

// RoundRobin is the deterministic protocol of Example 1: every process
// fixes an order over the other processes (here: increasing IDs starting
// after its own) and sends its own gossip to one of them per local step,
// for N−1 steps. Any outcome has M(O) = Θ(N²) and T(O) = Θ(N) — the
// paper's working definition of an inefficient dissemination, used as a
// calibration baseline by the `example1` experiment.
type RoundRobin struct{}

// Name implements sim.Protocol.
func (RoundRobin) Name() string { return "round-robin" }

// New implements sim.Protocol.
func (RoundRobin) New(envs []sim.Env) []sim.Process {
	return sim.BuildEach(envs, func(env sim.Env) sim.Process {
		p := &roundRobinProc{env: env, known: newBitset(env.N), selfPl: singlePayload{G: env.ID}}
		p.known.add(int(env.ID))
		return p
	})
}

type roundRobinProc struct {
	env    sim.Env
	known  bitset
	selfPl sim.Payload // the one payload this process ever sends, boxed once
	next   int         // offset of the next recipient: sends to ID+1+next (mod N)
}

// Step implements sim.Process.
func (p *roundRobinProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	for _, m := range delivered {
		p.known.add(int(m.Payload.(singlePayload).G))
	}
	if p.next < p.env.N-1 {
		to := sim.ProcID((int(p.env.ID) + 1 + p.next) % p.env.N)
		out.Send(to, p.selfPl)
		p.next++
	}
}

// Asleep implements sim.Process.
func (p *roundRobinProc) Asleep() bool { return p.next >= p.env.N-1 }

// Knows implements sim.Process.
func (p *roundRobinProc) Knows(g sim.ProcID) bool { return p.known.has(int(g)) }

// Forget implements sim.Forgetter: an amnesiac recovery resets the
// process to its initial knowledge — only its own gossip — and restarts
// its send schedule from the first recipient, so it resumes awake and
// re-disseminates from scratch.
func (p *roundRobinProc) Forget() {
	p.known = newBitset(p.env.N)
	p.known.add(int(p.env.ID))
	p.next = 0
}

// Broadcast is the trivial protocol from the paper's introduction: every
// process sends its gossip to everyone in its first local step. One
// communication round, N(N−1) messages — the ceiling on useful message
// complexity that Section III-A argues makes "more than quadratic"
// pointless for an adversary to aim for.
type Broadcast struct{}

// Name implements sim.Protocol.
func (Broadcast) Name() string { return "broadcast" }

// New implements sim.Protocol.
func (Broadcast) New(envs []sim.Env) []sim.Process {
	return sim.BuildEach(envs, func(env sim.Env) sim.Process {
		p := &broadcastProc{env: env, known: newBitset(env.N), selfPl: singlePayload{G: env.ID}}
		p.known.add(int(env.ID))
		return p
	})
}

type broadcastProc struct {
	env    sim.Env
	known  bitset
	selfPl sim.Payload // the broadcast payload, boxed once and fanned out N−1 times
	done   bool
}

// Step implements sim.Process.
func (p *broadcastProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	for _, m := range delivered {
		p.known.add(int(m.Payload.(singlePayload).G))
	}
	if !p.done {
		p.done = true
		for q := 0; q < p.env.N; q++ {
			if q != int(p.env.ID) {
				out.Send(sim.ProcID(q), p.selfPl)
			}
		}
	}
}

// Asleep implements sim.Process.
func (p *broadcastProc) Asleep() bool { return p.done }

// Knows implements sim.Process.
func (p *broadcastProc) Knows(g sim.ProcID) bool { return p.known.has(int(g)) }

// Forget implements sim.Forgetter: amnesiac recovery rewinds the process
// to before its broadcast, so it fans its gossip out again.
func (p *broadcastProc) Forget() {
	p.known = newBitset(p.env.N)
	p.known.add(int(p.env.ID))
	p.done = false
}
