package gossip

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/ugf-sim/ugf/internal/live/wire"
	"github.com/ugf-sim/ugf/internal/sim"
)

// Wire codecs for the protocols' payload kinds, registered at package
// init so any program that links the protocol zoo can run it on the live
// transport (internal/live). The payload types are unexported on purpose —
// the codecs live here, next to the types, so decoding yields the exact
// concrete types the protocols' type switches match on: batchPayload and
// pullPayload and singlePayload by value, earsPayload by pointer (ears.go
// sends *earsPayload and merge asserts it back).
//
// Encodings are minimal varint forms of the knowledge-length compression
// the payloads already use in memory (gossip.go): a batch is its sender's
// log length, an EARS payload its log length plus the N-entry version
// vector. Decoders are defensive: arbitrary bytes return errors, never
// panic, and never allocate proportionally to unvalidated counts
// (FuzzWireCodec exercises them through the envelope decoder).

func init() {
	wire.RegisterPayload(wire.PayloadCodec{
		Kind:   batchPayload{}.Kind(),
		Encode: encodeBatch,
		Decode: decodeBatch,
	})
	wire.RegisterPayload(wire.PayloadCodec{
		Kind:   pullPayload{}.Kind(),
		Encode: encodePull,
		Decode: decodePull,
	})
	wire.RegisterPayload(wire.PayloadCodec{
		Kind:   singlePayload{}.Kind(),
		Encode: encodeSingle,
		Decode: decodeSingle,
	})
	wire.RegisterPayload(wire.PayloadCodec{
		Kind:   earsPayload{}.Kind(),
		Encode: encodeEars,
		Decode: decodeEars,
	})
}

func encodeBatch(dst []byte, pl sim.Payload) ([]byte, error) {
	b, ok := pl.(batchPayload)
	if !ok {
		return nil, fmt.Errorf("gossip: encode %q: payload is %T", batchPayload{}.Kind(), pl)
	}
	if b.GLen < 0 {
		return nil, fmt.Errorf("gossip: encode %q: negative GLen %d", b.Kind(), b.GLen)
	}
	return binary.AppendUvarint(dst, uint64(b.GLen)), nil
}

func decodeBatch(data []byte) (sim.Payload, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 || n != len(data) {
		return nil, fmt.Errorf("gossip: decode %q: malformed GLen", batchPayload{}.Kind())
	}
	if v > math.MaxInt32 {
		return nil, fmt.Errorf("gossip: decode %q: GLen %d out of range", batchPayload{}.Kind(), v)
	}
	return batchPayload{GLen: int32(v)}, nil
}

func encodePull(dst []byte, pl sim.Payload) ([]byte, error) {
	if _, ok := pl.(pullPayload); !ok {
		return nil, fmt.Errorf("gossip: encode %q: payload is %T", pullPayload{}.Kind(), pl)
	}
	return dst, nil
}

func decodePull(data []byte) (sim.Payload, error) {
	if len(data) != 0 {
		return nil, fmt.Errorf("gossip: decode %q: want empty payload, got %d bytes", pullPayload{}.Kind(), len(data))
	}
	return pullPayload{}, nil
}

func encodeSingle(dst []byte, pl sim.Payload) ([]byte, error) {
	s, ok := pl.(singlePayload)
	if !ok {
		return nil, fmt.Errorf("gossip: encode %q: payload is %T", singlePayload{}.Kind(), pl)
	}
	if s.G < 0 {
		return nil, fmt.Errorf("gossip: encode %q: negative gossip id %d", s.Kind(), s.G)
	}
	return binary.AppendUvarint(dst, uint64(s.G)), nil
}

func decodeSingle(data []byte) (sim.Payload, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 || n != len(data) {
		return nil, fmt.Errorf("gossip: decode %q: malformed gossip id", singlePayload{}.Kind())
	}
	if v > math.MaxInt32 {
		return nil, fmt.Errorf("gossip: decode %q: gossip id %d out of range", singlePayload{}.Kind(), v)
	}
	return singlePayload{G: sim.ProcID(v)}, nil
}

func encodeEars(dst []byte, pl sim.Payload) ([]byte, error) {
	e, ok := pl.(*earsPayload)
	if !ok {
		return nil, fmt.Errorf("gossip: encode %q: payload is %T", earsPayload{}.Kind(), pl)
	}
	if e.GLen < 0 {
		return nil, fmt.Errorf("gossip: encode %q: negative GLen %d", e.Kind(), e.GLen)
	}
	dst = binary.AppendUvarint(dst, uint64(e.GLen))
	dst = binary.AppendUvarint(dst, uint64(len(e.Ver)))
	for _, v := range e.Ver {
		if v < 0 {
			return nil, fmt.Errorf("gossip: encode %q: negative version %d", e.Kind(), v)
		}
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	return dst, nil
}

func decodeEars(data []byte) (sim.Payload, error) {
	kind := earsPayload{}.Kind()
	glen, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("gossip: decode %q: malformed GLen", kind)
	}
	if glen > math.MaxInt32 {
		return nil, fmt.Errorf("gossip: decode %q: GLen %d out of range", kind, glen)
	}
	data = data[n:]
	cnt, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("gossip: decode %q: malformed vector length", kind)
	}
	data = data[n:]
	// Each vector entry costs at least one byte, so a count beyond the
	// remaining bytes is malformed — reject before allocating for it.
	if cnt > uint64(len(data)) {
		return nil, fmt.Errorf("gossip: decode %q: vector length %d exceeds %d payload bytes", kind, cnt, len(data))
	}
	ver := make([]int32, cnt)
	for i := range ver {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("gossip: decode %q: malformed version %d", kind, i)
		}
		if v > math.MaxInt32 {
			return nil, fmt.Errorf("gossip: decode %q: version %d out of range", kind, v)
		}
		ver[i] = int32(v)
		data = data[n:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("gossip: decode %q: %d trailing bytes", kind, len(data))
	}
	return &earsPayload{GLen: int32(glen), Ver: ver}, nil
}
