package gossip

import (
	"errors"
	"reflect"
	"testing"

	"github.com/ugf-sim/ugf/internal/live/wire"
	"github.com/ugf-sim/ugf/internal/sim"
)

// TestWireCodecRoundTrip round-trips every protocol payload kind through
// its registered wire codec and through a full envelope encode/decode,
// asserting the decoded value is the exact concrete type (and value) the
// protocols' type switches match on.
func TestWireCodecRoundTrip(t *testing.T) {
	payloads := []sim.Payload{
		batchPayload{GLen: 0},
		batchPayload{GLen: 1},
		batchPayload{GLen: 1<<31 - 1},
		pullPayload{},
		singlePayload{G: 0},
		singlePayload{G: 12345},
		&earsPayload{GLen: 0, Ver: []int32{}},
		&earsPayload{GLen: 3, Ver: []int32{0, 2, 1}},
		&earsPayload{GLen: 64, Ver: make([]int32, 256)},
		&earsPayload{GLen: 1<<31 - 1, Ver: []int32{1<<31 - 1, 0, 7}},
	}
	for i, want := range payloads {
		kind := want.Kind()
		data, err := wire.EncodePayload(kind, want)
		if err != nil {
			t.Fatalf("payload %d (%s): encode: %v", i, kind, err)
		}
		got, err := wire.DecodePayload(kind, data)
		if err != nil {
			t.Fatalf("payload %d (%s): decode: %v", i, kind, err)
		}
		if reflect.TypeOf(got) != reflect.TypeOf(want) {
			t.Fatalf("payload %d (%s): decoded %T, want %T", i, kind, got, want)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("payload %d (%s): round trip:\n got  %#v\n want %#v", i, kind, got, want)
		}

		env := wire.Envelope{From: 1, To: 2, SentAt: 5, ArriveAt: 6, Seq: 9, Kind: kind, Payload: want}
		body, err := env.Encode()
		if err != nil {
			t.Fatalf("payload %d (%s): envelope encode: %v", i, kind, err)
		}
		dec, err := wire.DecodeEnvelope(body)
		if err != nil {
			t.Fatalf("payload %d (%s): envelope decode: %v", i, kind, err)
		}
		if !reflect.DeepEqual(dec.Payload, want) {
			t.Errorf("payload %d (%s): envelope round trip:\n got  %#v\n want %#v", i, kind, dec.Payload, want)
		}
	}
}

// TestWireCodecRejects pins the defensive paths: wrong concrete types on
// encode, malformed bytes on decode — always an error, never a panic or a
// huge allocation.
func TestWireCodecRejects(t *testing.T) {
	encodeCases := []struct {
		kind string
		pl   sim.Payload
	}{
		{"gossips", pullPayload{}},
		{"gossips", batchPayload{GLen: -1}},
		{"pull", batchPayload{}},
		{"gossip", pullPayload{}},
		{"gossip", singlePayload{G: -2}},
		{"ears", earsPayload{}}, // value, not pointer
		{"ears", &earsPayload{GLen: -1}},
		{"ears", &earsPayload{GLen: 1, Ver: []int32{-5}}},
	}
	for _, tc := range encodeCases {
		if _, err := wire.EncodePayload(tc.kind, tc.pl); err == nil {
			t.Errorf("encode %s %#v: no error", tc.kind, tc.pl)
		}
	}

	decodeCases := []struct {
		kind string
		data []byte
	}{
		{"gossips", nil},                                        // missing GLen
		{"gossips", []byte{0x80}},                               // truncated varint
		{"gossips", []byte{0x01, 0x02}},                         // trailing bytes
		{"gossips", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}}, // > MaxInt32
		{"pull", []byte{0x00}},                                  // non-empty
		{"gossip", nil},
		{"gossip", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}},
		{"ears", nil},                                                    // missing GLen
		{"ears", []byte{0x01}},                                           // missing vector length
		{"ears", []byte{0x01, 0x05, 0x00}},                               // count exceeds remaining bytes
		{"ears", []byte{0x01, 0x01}},                                     // count 1, no entries
		{"ears", []byte{0x01, 0x01, 0x00, 0x00}},                         // trailing byte
		{"ears", []byte{0x01, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}}, // entry > MaxInt32
	}
	for _, tc := range decodeCases {
		if _, err := wire.DecodePayload(tc.kind, tc.data); err == nil {
			t.Errorf("decode %s % x: no error", tc.kind, tc.data)
		}
	}
}

// TestWireCodecKindsRegistered pins that every payload kind the protocol
// registry can emit has a wire codec, so any registry protocol can run
// live.
func TestWireCodecKindsRegistered(t *testing.T) {
	want := []string{"ears", "gossip", "gossips", "pull"}
	have := make(map[string]bool)
	for _, k := range wire.RegisteredKinds() {
		have[k] = true
	}
	for _, k := range want {
		if !have[k] {
			t.Errorf("kind %q has no wire codec", k)
		}
	}
	if _, err := wire.EncodePayload("unregistered", batchPayload{}); !errors.Is(err, wire.ErrUnknownKind) {
		t.Errorf("unknown kind: got %v", err)
	}
}
