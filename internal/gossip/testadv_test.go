package gossip

import (
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// Scripted adversaries for protocol tests (the real adversaries live in
// internal/core and internal/adversary; tests here stay dependency-light).

// crashFirstK crashes processes 0..k-1 before step 1.
type crashFirstK struct{ k int }

func (c crashFirstK) Name() string { return "crash-first-k" }
func (c crashFirstK) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	return &crashFirstKInst{k: c.k}
}

type crashFirstKInst struct{ k int }

func (a *crashFirstKInst) Init(v sim.View, ctl sim.Control) {
	for p := 0; p < a.k; p++ {
		ctl.Crash(sim.ProcID(p))
	}
}
func (a *crashFirstKInst) Observe(sim.Step, []sim.SendRecord, sim.View, sim.Control) {}
func (a *crashFirstKInst) Label() string                                             { return "" }

// delayFirstK gives processes 0..k-1 local-step time delta and delivery
// time delay before step 1 (a fixed Strategy 2.k.l-shaped attack).
type delayFirstK struct {
	k     int
	delta sim.Step
	delay sim.Step
}

func (d delayFirstK) Name() string { return "delay-first-k" }
func (d delayFirstK) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	return &delayFirstKInst{d: d}
}

type delayFirstKInst struct{ d delayFirstK }

func (a *delayFirstKInst) Init(v sim.View, ctl sim.Control) {
	for p := 0; p < a.d.k; p++ {
		ctl.SetDelta(sim.ProcID(p), a.d.delta)
		ctl.SetDelay(sim.ProcID(p), a.d.delay)
	}
}
func (a *delayFirstKInst) Observe(sim.Step, []sim.SendRecord, sim.View, sim.Control) {}
func (a *delayFirstKInst) Label() string                                             { return "" }
