package gossip

import "github.com/ugf-sim/ugf/internal/sim"

// Doubling is deterministic recursive-doubling dissemination: in round
// r = 0, 1, …, ⌈log₂ N⌉−1, process i sends everything it knows to process
// (i + 2ʳ) mod N, then sleeps. After round r every gossip is known by a
// contiguous block of 2ʳ⁺¹ processes, so ⌈log₂ N⌉ rounds gather all rumors
// with exactly N·⌈log₂ N⌉ messages — the efficient deterministic baseline
// the paper's Example 1 alludes to when it cites the O(log³N)-time,
// O(N·log⁴N)-message protocol of [7].
//
// The price of that efficiency is fragility: the schedule has no
// redundancy, so a single crash severs every dissemination chain routed
// through the crashed process and rumor gathering fails. Doubling is a
// baseline for quantifying what crash tolerance costs; it is not a valid
// all-to-all protocol in the crash-prone model.
type Doubling struct{}

// Name implements sim.Protocol.
func (Doubling) Name() string { return "doubling" }

// Rounds returns ⌈log₂ N⌉, the number of communication rounds.
func (Doubling) Rounds(n int) int {
	r := 0
	for span := 1; span < n; span *= 2 {
		r++
	}
	return r
}

// New implements sim.Protocol.
func (d Doubling) New(envs []sim.Env) []sim.Process {
	ar := newArena(len(envs))
	rounds := d.Rounds(len(envs))
	return sim.BuildEach(envs, func(env sim.Env) sim.Process {
		return &doublingProc{
			env:    env,
			ar:     ar,
			known:  knownWithSelf(env),
			rounds: rounds,
		}
	})
}

type doublingProc struct {
	env    sim.Env
	ar     *arena
	known  bitset
	staged []sim.ProcID
	box    batchBox
	round  int
	rounds int
}

// Step implements sim.Process.
func (p *doublingProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	for _, m := range delivered {
		for _, g := range p.ar.prefix(m.From, m.Payload.(batchPayload).GLen) {
			if p.known.add(int(g)) {
				p.staged = append(p.staged, g)
			}
		}
	}
	if p.round >= p.rounds || p.env.N == 1 {
		return
	}
	to := sim.ProcID((int(p.env.ID) + (1 << p.round)) % p.env.N)
	out.Send(to, p.box.payload(p.ar.len(p.env.ID)+int32(len(p.staged))))
	p.round++
}

// Commit implements sim.Committer.
func (p *doublingProc) Commit(now sim.Step) {
	p.ar.publish(p.env.ID, p.staged)
	p.staged = p.staged[:0]
}

// Asleep implements sim.Process.
func (p *doublingProc) Asleep() bool { return p.round >= p.rounds }

// Knows implements sim.Process.
func (p *doublingProc) Knows(g sim.ProcID) bool { return p.known.has(int(g)) }
