package gossip

import (
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
)

func TestPushGathersAndTerminates(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		o, err := sim.Run(sim.Config{N: 40, F: 12, Protocol: Push{}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if o.HorizonHit {
			t.Fatalf("seed %d: push did not quiesce", seed)
		}
		if !o.Gathered {
			t.Errorf("seed %d: push failed to gather", seed)
		}
	}
}

func TestPullGathersAndTerminates(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		o, err := sim.Run(sim.Config{N: 40, F: 12, Protocol: Pull{}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if o.HorizonHit {
			t.Fatalf("seed %d: pull did not quiesce", seed)
		}
		if !o.Gathered {
			t.Errorf("seed %d: pull failed to gather", seed)
		}
	}
}

func TestPullSendsNoPushes(t *testing.T) {
	rec := &sim.Recorder{}
	_, err := sim.Run(sim.Config{N: 20, F: 0, Protocol: Pull{}, Seed: 1, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	// Every "gossips" batch must be a response to a pull request; count
	// one response per request at most (a request can be answered once).
	pulls, batches := 0, 0
	for _, ev := range rec.Events {
		if ev.Kind != sim.TraceSend {
			continue
		}
		switch ev.Payload.Kind() {
		case "pull":
			pulls++
		case "gossips":
			batches++
		}
	}
	if pulls == 0 {
		t.Fatal("pull protocol sent no pull requests")
	}
	if batches > pulls {
		t.Errorf("%d batches for %d pull requests: unsolicited pushes detected", batches, pulls)
	}
}

func TestPushSendsNoPullRequests(t *testing.T) {
	rec := &sim.Recorder{}
	_, err := sim.Run(sim.Config{N: 20, F: 0, Protocol: Push{}, Seed: 1, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range rec.Events {
		if ev.Kind == sim.TraceSend && ev.Payload.Kind() == "pull" {
			t.Fatal("push protocol sent a pull request")
		}
	}
}

func TestPushBaselineIsSubQuadratic(t *testing.T) {
	const n = 150
	o, err := sim.Run(sim.Config{N: n, F: n / 3, Protocol: Push{}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if o.Messages > int64(n*n)/2 {
		t.Errorf("push baseline messages %d approach quadratic (N²=%d)", o.Messages, n*n)
	}
	if o.Time > float64(n)/4 {
		t.Errorf("push baseline time %v looks linear", o.Time)
	}
}

func TestPullQuiescesUnderCrashes(t *testing.T) {
	// Crash a third of the system at the start (fixed strategy adversary
	// semantics, scripted inline): survivors must still terminate — the
	// pulled-or-known condition marks crashed processes as pulled.
	adv := crashFirstK{k: 10}
	o, err := sim.Run(sim.Config{N: 30, F: 10, Protocol: Pull{}, Adversary: adv, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if o.HorizonHit {
		t.Fatal("pull did not quiesce under crashes")
	}
	if !o.Gathered {
		t.Error("survivors failed to gather")
	}
}

func TestPushWakesAndRespreadsLateNews(t *testing.T) {
	// Under Strategy 2.k.l-style delays, late deliveries must wake
	// sleeping push processes (delivered via the engine's sleep/wake
	// mechanics); end-to-end this shows as gathering completing despite
	// everyone having slept before the delayed gossip arrived.
	adv := delayFirstK{k: 5, delta: 20, delay: 400}
	o, err := sim.Run(sim.Config{N: 30, F: 10, Protocol: Push{}, Adversary: adv, Seed: 3,
		MaxEvents: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if o.HorizonHit {
		t.Fatal("push did not quiesce under delays")
	}
	if !o.Gathered {
		t.Error("late news did not complete gathering")
	}
	if o.Quiescence < 400 {
		t.Errorf("quiescence at %d, before the delayed deliveries", o.Quiescence)
	}
}
