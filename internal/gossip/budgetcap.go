package gossip

import "github.com/ugf-sim/ugf/internal/sim"

// BudgetCapped is an EARS variant whose processes refuse to send more than
// ⌈(N−1)/α⌉ messages each, so a full run is capped at roughly N²/α
// messages — a protocol that "aims to achieve a message complexity α times
// less than quadratic" in the sense of Theorem 1. Once its budget is
// exhausted a process goes permanently silent but keeps absorbing
// deliveries, so late information still reaches it.
//
// The `tradeoff` experiment sweeps α and shows the Theorem 1 interplay
// empirically: under UGF, shrinking the message budget either inflates
// the time complexity or breaks rumor gathering outright.
type BudgetCapped struct {
	// Alpha is the quadratic-shrinking factor α ≥ 1; 0 means 1.
	Alpha int
	// WindowScale multiplies the EARS inactivity window; 0 means 1.
	WindowScale float64
}

// Name implements sim.Protocol.
func (b BudgetCapped) Name() string { return "budget-capped" }

// Budget returns the per-process send budget ⌈(N−1)/α⌉, at least 1.
func (b BudgetCapped) Budget(n int) int {
	alpha := b.Alpha
	if alpha < 1 {
		alpha = 1
	}
	budget := (n - 1 + alpha - 1) / alpha
	if budget < 1 {
		budget = 1
	}
	return budget
}

// New implements sim.Protocol.
func (b BudgetCapped) New(envs []sim.Env) []sim.Process {
	ar := newArena(len(envs))
	budget := b.Budget(len(envs))
	return sim.BuildEach(envs, func(env sim.Env) sim.Process {
		return &budgetProc{
			earsProc: newEarsProc(env, ar, 1, b.WindowScale),
			budget:   budget,
		}
	})
}

type budgetProc struct {
	*earsProc
	budget  int
	sent    int
	scratch sim.Outbox
}

// Step implements sim.Process: EARS behavior under a hard send budget.
// The underlying EARS step may emit several messages (a random gossip plus
// anti-entropy replies), so sends are filtered through a scratch outbox
// and cut off exactly at the budget.
func (p *budgetProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	if p.sent >= p.budget {
		// Absorb only: merge deliveries without sending — the budget is a
		// hard cap, so not even anti-entropy replies go out.
		for _, m := range delivered {
			p.merge(m.From, m.Payload.(*earsPayload))
		}
		return
	}
	p.scratch = sim.NewOutbox(p.env.ID, p.env.N)
	p.earsProc.Step(now, delivered, &p.scratch)
	for _, m := range p.scratch.Drain() {
		if p.sent >= p.budget {
			break
		}
		out.Send(m.To, m.Payload)
		p.sent++
	}
}

// Asleep implements sim.Process.
func (p *budgetProc) Asleep() bool {
	return p.sent >= p.budget || p.earsProc.Asleep()
}
