package gossip

import (
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// earsHarness drives EARS processes directly (without the engine) with a
// synchronous round-based scheduler, so the whitebox invariants of the
// version-vector encoding can be checked after every round.
type earsHarness struct {
	procs   []*earsProc
	mailbox [][]sim.Message
	now     sim.Step
}

func newEarsHarness(n, f int, seed uint64) *earsHarness {
	envs := makeEnvs(n, f, seed)
	built := EARS{}.New(envs)
	h := &earsHarness{mailbox: make([][]sim.Message, n)}
	for _, p := range built {
		h.procs = append(h.procs, p.(*earsProc))
	}
	return h
}

// round delivers all queued mail and runs one local step of every process.
func (h *earsHarness) round() {
	h.now++
	var outs []sim.Outbox
	for i, p := range h.procs {
		out := sim.NewOutbox(sim.ProcID(i), len(h.procs))
		p.Step(h.now, h.mailbox[i], &out)
		h.mailbox[i] = nil
		outs = append(outs, out)
	}
	for i, p := range h.procs {
		p.Commit(h.now)
		for _, m := range outs[i].Drain() {
			m.From = sim.ProcID(i)
			h.mailbox[m.To] = append(h.mailbox[m.To], m)
		}
	}
}

// checkInvariants cross-checks every process's incremental state against a
// brute-force recomputation from the arena logs.
func (h *earsHarness) checkInvariants(t *testing.T) {
	t.Helper()
	n := len(h.procs)
	for pi, p := range h.procs {
		ar := p.ar
		// ver bounds: a seen prefix can never exceed the published log
		// plus own staged entries.
		for b := 0; b < n; b++ {
			limit := int32(len(ar.logs[b]))
			if b == pi {
				limit += int32(len(p.staged))
			}
			if p.ver[b] < 0 || p.ver[b] > limit {
				t.Fatalf("proc %d: ver[%d] = %d outside [0, %d]", pi, b, p.ver[b], limit)
			}
		}
		// known must equal the contents of own log (+ staged).
		ownSeen := map[sim.ProcID]bool{}
		for _, g := range ar.logs[pi] {
			ownSeen[g] = true
		}
		for _, g := range p.staged {
			ownSeen[g] = true
		}
		for g := 0; g < n; g++ {
			if p.known.has(g) != ownSeen[sim.ProcID(g)] {
				t.Fatalf("proc %d: known(%d) = %v but log/staged says %v",
					pi, g, p.known.has(g), ownSeen[sim.ProcID(g)])
			}
		}
		// cnt[g] must equal the number of processes b whose seen prefix
		// contains g; missing must match its definition.
		var missing int64
		cnt := make([]int32, n)
		for b := 0; b < n; b++ {
			prefix := ar.logs[b]
			if b == pi {
				prefix = append(append([]sim.ProcID{}, prefix...), p.staged...)
			}
			for _, g := range prefix[:p.ver[b]] {
				cnt[g]++
			}
		}
		for g := 0; g < n; g++ {
			if cnt[g] != p.cnt[g] {
				t.Fatalf("proc %d: cnt[%d] = %d, brute force %d", pi, g, p.cnt[g], cnt[g])
			}
			if p.known.has(g) {
				missing += int64(n) - int64(cnt[g])
			}
		}
		if missing != p.missing {
			t.Fatalf("proc %d: missing = %d, brute force %d", pi, p.missing, missing)
		}
	}
}

func TestEARSInvariantsUnderRandomSchedules(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		h := newEarsHarness(9, 3, seed)
		h.checkInvariants(t)
		for r := 0; r < 25; r++ {
			h.round()
			h.checkInvariants(t)
		}
	}
}

func TestEARSConverges(t *testing.T) {
	// After enough rounds every process must be asleep and know every
	// gossip. Not every process can end knowledge-complete: the last
	// processes to complete have nobody left listening for their final
	// evidence — that residue is exactly what the paper's inactivity
	// window exists to absorb — but most of the system should get there.
	h := newEarsHarness(8, 0, 11)
	for r := 0; r < 200; r++ {
		h.round()
	}
	incomplete := 0
	for pi, p := range h.procs {
		if p.missing != 0 {
			incomplete++
		}
		if !p.Asleep() {
			t.Errorf("proc %d not asleep after convergence", pi)
		}
		for g := 0; g < 8; g++ {
			if !p.Knows(sim.ProcID(g)) {
				t.Errorf("proc %d does not know gossip %d", pi, g)
			}
		}
	}
	if incomplete > len(h.procs)/2 {
		t.Errorf("%d/%d processes not knowledge-complete", incomplete, len(h.procs))
	}
}

func TestEARSStarvedProcessStaysAwake(t *testing.T) {
	// The evidence quorum: a quiet process whose own gossip has provably
	// not spread (no evidence from N−F processes) must NOT complete —
	// this is what keeps UGF's isolated ρ̂ sending and makes Strategy
	// 2.k.0 force linear time.
	envs := makeEnvs(4, 1, 5)
	p := EARS{}.New(envs)[0].(*earsProc)
	for i := 0; i < 5*p.window; i++ {
		out := sim.NewOutbox(0, 4)
		p.Step(sim.Step(i+1), nil, &out)
		p.Commit(sim.Step(i + 1))
		if out.Len() == 0 {
			t.Fatalf("step %d: starved process stopped sending", i+1)
		}
	}
	if p.Asleep() {
		t.Fatal("process completed without an evidence quorum")
	}
}

func TestEARSQuorumPlusQuietSleepsAndNewsWakes(t *testing.T) {
	// Drive a 4-process system until all are asleep, then inject a
	// never-heard-from 5th... simpler: run two processes of an N=4, F=2
	// system to convergence between themselves: quorum is N−F = 2, so
	// after exchanging evidence they may sleep on the quiet window even
	// though processes 2 and 3 never speak.
	envs := makeEnvs(4, 2, 5)
	procs := EARS{}.New(envs)
	p0 := procs[0].(*earsProc)
	p1 := procs[1].(*earsProc)
	now := sim.Step(0)
	exchange := func(a, b *earsProc) {
		now++
		outA := sim.NewOutbox(a.env.ID, 4)
		a.Step(now, nil, &outA)
		a.Commit(now)
		var toB []sim.Message
		for _, m := range outA.Drain() {
			if m.To == b.env.ID {
				m.From = a.env.ID
				toB = append(toB, m)
			}
		}
		now++
		outB := sim.NewOutbox(b.env.ID, 4)
		b.Step(now, toB, &outB)
		b.Commit(now)
		var back []sim.Message
		for _, m := range outB.Drain() {
			if m.To == a.env.ID {
				m.From = b.env.ID
				back = append(back, m)
			}
		}
		now++
		outA2 := sim.NewOutbox(a.env.ID, 4)
		a.Step(now, back, &outA2)
		a.Commit(now)
	}
	for i := 0; i < 60 && !(p0.Asleep() && p1.Asleep()); i++ {
		exchange(p0, p1)
		exchange(p1, p0)
	}
	if !p0.Asleep() || !p1.Asleep() {
		t.Fatalf("pair did not complete: p0 asleep=%v (cnt=%d quiet=%d), p1 asleep=%v",
			p0.Asleep(), p0.cnt[0], p0.quiet, p1.Asleep())
	}
	// Now deliver news from process 2: p0 must wake.
	p2 := procs[2].(*earsProc)
	out2 := sim.NewOutbox(2, 4)
	p2.Step(now+1, nil, &out2)
	p2.Commit(now + 1)
	msg := out2.Drain()[0]
	msg.From = 2
	out := sim.NewOutbox(0, 4)
	p0.Step(now+2, []sim.Message{msg}, &out)
	if p0.Asleep() {
		t.Fatal("new information did not wake the sleeping process")
	}
	if !p0.Knows(2) {
		t.Error("process did not learn the delivered gossip")
	}
}

func TestEARSAntiEntropyReplyWhileAsleep(t *testing.T) {
	// A sleeping process receiving a message from a sender that is
	// evidently behind must answer that sender directly (and stay
	// asleep); this is what rescues the last process waiting for
	// completion evidence. Awake processes do not reply — they gossip at
	// full rate already.
	envs := makeEnvs(3, 2, 9) // quorum N−F = 1: own evidence suffices
	procs := EARS{}.New(envs)
	p0 := procs[0].(*earsProc)
	p1 := procs[1].(*earsProc)

	// Capture p1's initial (stale) payload.
	out1 := sim.NewOutbox(1, 3)
	p1.Step(1, nil, &out1)
	p1.Commit(1)
	m := out1.Drain()[0]
	m.From = 1

	// First delivery: news — p0 absorbs it and is awake, so no reply is
	// required by the protocol; it keeps gossiping randomly.
	now := sim.Step(1)
	out0 := sim.NewOutbox(0, 3)
	p0.Step(now, []sim.Message{m}, &out0)
	p0.Commit(now)
	if p0.Asleep() {
		t.Fatal("news should keep p0 awake")
	}

	// Starve p0 until it sleeps on the quiet window.
	for i := 0; i < p0.window; i++ {
		now++
		out := sim.NewOutbox(0, 3)
		p0.Step(now, nil, &out)
		p0.Commit(now)
	}
	if !p0.Asleep() {
		t.Fatal("p0 did not fall asleep")
	}

	// Redeliver the same stale payload: no news, p0 stays asleep, but p1
	// is evidently behind and must get a direct reply.
	now++
	out0 = sim.NewOutbox(0, 3)
	p0.Step(now, []sim.Message{m}, &out0)
	if !p0.Asleep() {
		t.Fatal("stale delivery woke p0")
	}
	msgs := out0.Drain()
	if len(msgs) != 1 || msgs[0].To != 1 {
		t.Fatalf("want exactly one reply to process 1, got %v", msgs)
	}
}

func TestEARSKnowledgeCompleteSleepsImmediately(t *testing.T) {
	// N=1: a lone process is knowledge-complete from the start.
	envs := makeEnvs(1, 0, 1)
	p := EARS{}.New(envs)[0].(*earsProc)
	if !p.Asleep() {
		t.Fatal("singleton process not asleep")
	}
	out := sim.NewOutbox(0, 1)
	p.Step(1, nil, &out)
	if out.Len() != 0 {
		t.Fatal("singleton process sent messages")
	}
}

func TestEARSPayloadSnapshotIsImmutable(t *testing.T) {
	// The version snapshot shared in a message must not change when the
	// sender later learns more.
	envs := makeEnvs(3, 0, 9)
	procs := EARS{}.New(envs)
	p0 := procs[0].(*earsProc)
	out := sim.NewOutbox(0, 3)
	p0.Step(1, nil, &out)
	p0.Commit(1)
	msg := out.Drain()[0]
	snap := msg.Payload.(*earsPayload)
	verBefore := append([]int32(nil), snap.Ver...)

	// Feed process 0 a message from process 1 so its ver changes.
	p1 := procs[1].(*earsProc)
	out1 := sim.NewOutbox(1, 3)
	p1.Step(1, nil, &out1)
	p1.Commit(1)
	m1 := out1.Drain()[0]
	m1.From = 1
	out = sim.NewOutbox(0, 3)
	p0.Step(2, []sim.Message{m1}, &out)
	p0.Commit(2)

	for i, v := range snap.Ver {
		if v != verBefore[i] {
			t.Fatalf("payload snapshot mutated at %d: %d -> %d", i, verBefore[i], v)
		}
	}
}

func TestEARSWindowUsesFAndN(t *testing.T) {
	envs := makeEnvs(10, 3, 1)
	p := EARS{}.New(envs)[0].(*earsProc)
	if p.window != inactivityWindow(10, 3, 1) {
		t.Errorf("window = %d, want %d", p.window, inactivityWindow(10, 3, 1))
	}
	scaled := EARS{WindowScale: 3}.New(envs)[0].(*earsProc)
	if scaled.window != inactivityWindow(10, 3, 3) {
		t.Errorf("scaled window = %d, want %d", scaled.window, inactivityWindow(10, 3, 3))
	}
}

func TestSEARSFanoutTargetsAreDistinctAndNotSelf(t *testing.T) {
	envs := makeEnvs(30, 0, 13)
	procs := SEARS{}.New(envs)
	p := procs[7].(*earsProc)
	out := sim.NewOutbox(7, 30)
	p.Step(1, nil, &out)
	msgs := out.Drain()
	want := (SEARS{}).Fanout(30)
	if len(msgs) != want {
		t.Fatalf("SEARS sent %d messages, want fanout %d", len(msgs), want)
	}
	seen := map[sim.ProcID]bool{}
	for _, m := range msgs {
		if m.To == 7 {
			t.Fatal("SEARS sent to itself")
		}
		if seen[m.To] {
			t.Fatalf("duplicate target %d", m.To)
		}
		seen[m.To] = true
	}
}

func TestSEARSTargetsCoverWholeRange(t *testing.T) {
	// The skip-self index mapping must reach both 0 and N-1.
	envs := makeEnvs(10, 0, 2)
	p := SEARS{C: 100}.New(envs)[5].(*earsProc) // fanout clamps to 9: all others
	out := sim.NewOutbox(5, 10)
	p.Step(1, nil, &out)
	msgs := out.Drain()
	if len(msgs) != 9 {
		t.Fatalf("full-fanout SEARS sent %d, want 9", len(msgs))
	}
	got := map[sim.ProcID]bool{}
	for _, m := range msgs {
		got[m.To] = true
	}
	for q := sim.ProcID(0); q < 10; q++ {
		if q == 5 {
			continue
		}
		if !got[q] {
			t.Errorf("target %d never addressed", q)
		}
	}
}

var _ = xrand.New // keep the import if helpers change
