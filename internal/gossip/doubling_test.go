package gossip

import (
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
)

func TestDoublingRounds(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {500, 9},
	}
	for _, c := range cases {
		if got := (Doubling{}).Rounds(c.n); got != c.want {
			t.Errorf("Rounds(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestDoublingExactComplexities(t *testing.T) {
	for _, n := range []int{2, 7, 16, 33, 100} {
		o, err := sim.Run(sim.Config{N: n, F: 0, Protocol: Doubling{}, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		rounds := (Doubling{}).Rounds(n)
		if want := int64(n * rounds); o.Messages != want {
			t.Errorf("N=%d: M = %d, want N·⌈log₂N⌉ = %d", n, o.Messages, want)
		}
		if want := sim.Step(rounds); o.TEnd != want {
			t.Errorf("N=%d: TEnd = %d, want %d", n, o.TEnd, want)
		}
		if !o.Gathered {
			t.Errorf("N=%d: doubling failed to gather without crashes", n)
		}
	}
}

func TestDoublingIsDeterministic(t *testing.T) {
	a, err := sim.Run(sim.Config{N: 24, F: 0, Protocol: Doubling{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(sim.Config{N: 24, F: 0, Protocol: Doubling{}, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	// Seed-independence: the protocol draws no randomness at all.
	if a.Messages != b.Messages || a.TEnd != b.TEnd || a.Gathered != b.Gathered {
		t.Errorf("doubling depends on the seed: %+v vs %+v", a, b)
	}
}

func TestDoublingIsFragile(t *testing.T) {
	// A single crash severs dissemination chains: rumor gathering fails.
	// This is the advertised contrast with the paper's crash-tolerant
	// protocols (see the Doubling type comment).
	adv := crashFirstK{k: 1}
	o, err := sim.Run(sim.Config{N: 16, F: 1, Protocol: Doubling{}, Adversary: adv, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if o.HorizonHit {
		t.Fatal("doubling did not terminate under a crash")
	}
	if o.Gathered {
		t.Error("gathering survived a crash — doubling should be fragile")
	}
}

func TestDoublingSingleton(t *testing.T) {
	o, err := sim.Run(sim.Config{N: 1, F: 0, Protocol: Doubling{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if o.Messages != 0 || !o.Gathered {
		t.Errorf("singleton outcome: %+v", o)
	}
}
