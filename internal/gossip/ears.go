package gossip

import (
	"math"

	"github.com/ugf-sim/ugf/internal/sim"
)

// EARS is Epidemic Asynchronous Rumor Spreading (Georgiou et al. [14],
// Section V-A2(b) of the paper).
//
// Every process ρ maintains a gossip set G(ρ) and a who-knows-what set
// I(ρ) = {(ρ′, g) : ρ′ knows g}. At each local step it sends both sets to
// one uniformly random process; receivers merge them. A process completes
// when either
//
//   - every gossip it knows is, according to I(ρ), known by every process
//     (the paper's completion test, satisfiable only in crash-free runs), or
//   - it has gained no new information for ⌈N/(N−F)·ln N⌉ consecutive
//     local steps (the paper's inactivity window) AND at least N−F
//     processes are evidenced, via I(ρ), to know ρ's own gossip.
//
// The second clause is the F-aware reading of the paper's condition: the
// literal pair test ranges over all of Π and can never be met once a
// process has crashed, so a terminating implementation must weaken it.
// Requiring an N−F evidence quorum for the process's own gossip keeps the
// property that matters for the adversarial analysis — a process whose
// gossip has provably not spread (UGF's isolated ρ̂) cannot stop — while
// letting the rest of the system complete within the inactivity window.
// The window is evaluated on new *information* rather than raw arrivals,
// and completion is implemented as falling asleep (Definition IV.2): a
// later delivery that carries news wakes the process up again. DESIGN.md
// §2 records this substitution.
type EARS struct {
	// WindowScale multiplies the inactivity window; 0 means 1.
	WindowScale float64
}

// Name implements sim.Protocol.
func (EARS) Name() string { return "ears" }

// New implements sim.Protocol.
func (e EARS) New(envs []sim.Env) []sim.Process {
	ar := newArena(len(envs))
	return sim.BuildEach(envs, func(env sim.Env) sim.Process {
		return newEarsProc(env, ar, 1, e.WindowScale)
	})
}

// SEARS is Spamming EARS (Section V-A2(c)): identical state to EARS, but
// each local step shares the sets with ⌈c·N^ε·ln N⌉ distinct uniformly
// random processes instead of one, buying (near-)constant time complexity
// at the price of an unconditionally quadratic message complexity.
type SEARS struct {
	// C is the paper's constant c; 0 means 1.
	C float64
	// Epsilon is the paper's ε ∈ [0,1]; 0 means 0.5 (the experimental
	// setting of Section V-A2).
	Epsilon float64
	// WindowScale multiplies the inactivity window; 0 means 1.
	WindowScale float64
}

// Name implements sim.Protocol.
func (SEARS) Name() string { return "sears" }

// Fanout returns the per-step recipient count ⌈c·N^ε·ln N⌉ clamped to
// [1, N-1].
func (s SEARS) Fanout(n int) int {
	c := s.C
	if c <= 0 {
		c = 1
	}
	eps := s.Epsilon
	if eps <= 0 {
		eps = 0.5
	}
	m := int(math.Ceil(c * math.Pow(float64(n), eps) * math.Log(float64(n))))
	if m < 1 {
		m = 1
	}
	if m > n-1 {
		m = n - 1
	}
	return m
}

// New implements sim.Protocol.
func (s SEARS) New(envs []sim.Env) []sim.Process {
	ar := newArena(len(envs))
	fanout := s.Fanout(len(envs))
	return sim.BuildEach(envs, func(env sim.Env) sim.Process {
		return newEarsProc(env, ar, fanout, s.WindowScale)
	})
}

// earsProc is the shared EARS/SEARS state machine. See the package comment
// for the version-vector encoding of (G, I).
type earsProc struct {
	env    sim.Env
	ar     *arena
	fanout int
	window int

	known  bitset       // G(ρ)
	staged []sim.ProcID // gossips learned this step, published in Commit
	ver    []int32      // ver[b]: entries of b's log seen — encodes I(ρ)
	cnt    []int32      // cnt[g]: #processes whose seen prefix contains g
	// missing = |{(b,g) : g ∈ G(ρ), g not in ρ's seen prefix of b}|;
	// the paper's completion test is missing == 0.
	missing int64

	// Snapshot storage for outgoing payloads: append-only chunks that the
	// boxed *earsPayload values point into. A chunk is abandoned to the
	// garbage collector when full (in-flight messages keep it alive) and a
	// fresh one is carved, so snapshotting is two allocations per
	// snapChunk snapshots rather than two per snapshot. Per-process, not
	// in the shared arena: payload() runs in the parallel Step phase.
	snapBoxes []earsPayload
	snapInts  []int32
	plBox     sim.Payload // current boxed *earsPayload, reused until dirty
	verDirty  bool
	replyTo   []sim.ProcID // anti-entropy reply targets of the current step
	quiet     int          // local steps without new information
	// quorum is the completion threshold N−F: the process may not stop
	// before that many processes (itself included) are evidenced to know
	// its own gossip. cnt[ID] is exactly the evidence count.
	quorum int32
}

func newEarsProc(env sim.Env, ar *arena, fanout int, windowScale float64) *earsProc {
	p := &earsProc{
		env:      env,
		ar:       ar,
		fanout:   fanout,
		window:   inactivityWindow(env.N, env.F, windowScale),
		known:    newBitset(env.N),
		ver:      make([]int32, env.N),
		cnt:      make([]int32, env.N),
		verDirty: true,
		quorum:   int32(env.N - env.F),
	}
	// Initial knowledge: my own gossip, and the pair (me, my gossip).
	p.learn(env.ID)
	return p
}

// learn adds g to G(ρ). The pair (ρ, g) enters I(ρ) immediately: learning
// a gossip extends ρ's own log, of which ρ has of course seen everything.
func (p *earsProc) learn(g sim.ProcID) {
	if !p.known.add(int(g)) {
		return
	}
	if g != p.env.ID {
		p.staged = append(p.staged, g)
	}
	p.missing += int64(p.env.N) - int64(p.cnt[g])
	p.see(p.env.ID, g)
	p.ver[p.env.ID]++
	p.verDirty = true
}

// see records that entry g of b's log is now inside ρ's seen prefix — the
// pair (b, g) joined I(ρ).
func (p *earsProc) see(b, g sim.ProcID) {
	p.cnt[g]++
	if p.known.has(int(g)) {
		p.missing--
	}
}

// merge incorporates (G(s), I(s)) from a received payload. It reports
// whether anything new was learned, and whether the *sender* is evidently
// behind this process's knowledge (∃b: pl.Ver[b] < ver[b]) — the trigger
// for an anti-entropy reply.
func (p *earsProc) merge(s sim.ProcID, pl *earsPayload) (news, senderBehind bool) {
	// G-merge: the sender's gossip set is its log prefix.
	for _, g := range p.ar.prefix(s, pl.GLen) {
		if !p.known.has(int(g)) {
			p.learn(g)
			news = true
		}
	}
	// I-merge: take the pointwise maximum of the version vectors,
	// accounting each newly covered log entry.
	for b := 0; b < p.env.N; b++ {
		v := pl.Ver[b]
		if v < p.ver[b] {
			senderBehind = true
		}
		if b == int(p.env.ID) || v <= p.ver[b] {
			continue
		}
		for _, g := range p.ar.logs[b][p.ver[b]:v] {
			p.see(sim.ProcID(b), g)
		}
		p.ver[b] = v
		p.verDirty = true
		news = true
	}
	return news, senderBehind
}

// Step implements sim.Process.
func (p *earsProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	news := false
	p.replyTo = p.replyTo[:0]
	for _, m := range delivered {
		n, behind := p.merge(m.From, m.Payload.(*earsPayload))
		if n {
			news = true
		}
		if behind {
			p.noteReply(m.From)
		}
	}
	if news {
		p.quiet = 0
	} else {
		p.quiet++
	}
	if p.env.N == 1 {
		return
	}
	// Anti-entropy replies: while asleep, a sender whose version vector is
	// strictly behind ours gets our sets back, once (Definition IV.2
	// allows responding without resuming — like Push-Pull's pull
	// responses). Without this, the last process waiting for completion
	// evidence would starve: its already-complete peers would absorb its
	// messages without ever answering. Awake processes skip replies — they
	// are gossiping at full rate anyway, and replying too would inflate
	// the protocol's message complexity for no informational gain.
	if p.Asleep() {
		if len(p.replyTo) > 0 {
			pl := p.payload()
			for _, q := range p.replyTo {
				out.Send(q, pl)
			}
		}
		return
	}
	pl := p.payload()
	if p.fanout == 1 {
		to := sim.ProcID(p.env.RNG.IntnExcept(p.env.N, int(p.env.ID)))
		out.Send(to, pl)
		return
	}
	for _, q := range p.env.RNG.SampleInts(p.env.N-1, p.fanout) {
		// Map [0, N-1) onto {0..N-1} \ {me}.
		if q >= int(p.env.ID) {
			q++
		}
		out.Send(sim.ProcID(q), pl)
	}
}

// snapChunk is how many snapshots one chunk of snapshot storage holds.
const snapChunk = 16

// payload snapshots the current (G, I) for sending. The boxed value is
// cached alongside the snapshot: ver[ID] only moves together with verDirty
// (learn bumps both), so while the snapshot is clean the payload contents
// are frozen and every send of a quiet stretch reuses one interface value —
// which the Outbox then dedups and the engine interns once. Snapshots are
// carved from the append-only chunks declared on earsProc; box pointers
// stay valid because a chunk is never reallocated, only replaced.
func (p *earsProc) payload() sim.Payload {
	if p.verDirty {
		n := p.env.N
		if len(p.snapInts)+n > cap(p.snapInts) {
			p.snapInts = make([]int32, 0, snapChunk*n)
		}
		start := len(p.snapInts)
		p.snapInts = append(p.snapInts, p.ver...)
		snap := p.snapInts[start : start+n : start+n]
		if len(p.snapBoxes) == cap(p.snapBoxes) {
			p.snapBoxes = make([]earsPayload, 0, snapChunk)
		}
		p.snapBoxes = append(p.snapBoxes, earsPayload{GLen: p.ver[p.env.ID], Ver: snap})
		p.plBox = &p.snapBoxes[len(p.snapBoxes)-1]
		p.verDirty = false
	}
	return p.plBox
}

// noteReply records a reply target, deduplicating within the step.
func (p *earsProc) noteReply(q sim.ProcID) {
	for _, have := range p.replyTo {
		if have == q {
			return
		}
	}
	p.replyTo = append(p.replyTo, q)
}

// Commit implements sim.Committer.
func (p *earsProc) Commit(now sim.Step) {
	p.ar.publish(p.env.ID, p.staged)
	p.staged = p.staged[:0]
}

// Asleep implements sim.Process: knowledge-complete (the paper's literal
// test, reachable only without crashes), or quiet for a full inactivity
// window with an N−F evidence quorum on the process's own gossip.
func (p *earsProc) Asleep() bool {
	if p.missing == 0 {
		return true
	}
	return p.quiet >= p.window && p.cnt[p.env.ID] >= p.quorum
}

// Knows implements sim.Process.
func (p *earsProc) Knows(g sim.ProcID) bool { return p.known.has(int(g)) }
