package gossip

import (
	"fmt"
	"reflect"
	"sort"

	"github.com/ugf-sim/ugf/internal/params"
	"github.com/ugf-sim/ugf/internal/sim"
)

// Entry is one registered protocol: its registry name, the configured
// default instance (the paper's experimental parameters), and the
// machine-readable schemas of its tunable parameters — what the sweep
// service validates submitted specs against.
type Entry struct {
	// Name is the registry name ("push-pull", "ears", …).
	Name string
	// Protocol is the configured default instance.
	Protocol sim.Protocol
	// Params describes the entry's tunable parameters (exported struct
	// fields, lowercased), with defaults and bounds.
	Params []params.Schema
}

// ByName returns the protocol with the given registry name, configured
// with the paper's experimental parameters. It reports false for unknown
// names. Parameterized construction is done with Build (validated, by
// name) or by building the struct directly.
func ByName(name string) (sim.Protocol, bool) {
	e, ok := registry[name]
	if !ok {
		return nil, false
	}
	return e.Protocol, true
}

// EntryByName returns the full registry entry, schemas included.
func EntryByName(name string) (Entry, bool) {
	e, ok := registry[name]
	return e, ok
}

// Names lists the registry names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Entries lists the registry entries in Names order.
func Entries() []Entry {
	names := Names()
	out := make([]Entry, len(names))
	for i, name := range names {
		out[i] = registry[name]
	}
	return out
}

// MustByName is ByName for static names; it panics on unknown ones.
func MustByName(name string) sim.Protocol {
	p, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("gossip: unknown protocol %q (have %v)", name, Names()))
	}
	return p
}

// Build constructs the named protocol with the given parameter overrides
// applied on top of the entry's configured default instance, validated
// against the entry's schemas. Unknown names, unknown parameters, and
// out-of-bounds or mistyped values return an error (a *params.Error for
// parameter failures) instead of a misconfigured instance.
func Build(name string, p map[string]float64) (sim.Protocol, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("gossip: unknown protocol %q (have %v)", name, Names())
	}
	if len(p) == 0 {
		return e.Protocol, nil
	}
	v, err := params.Apply(e.Protocol, p, e.Params)
	if err != nil {
		return nil, err
	}
	return v.(sim.Protocol), nil
}

// Extract maps a concrete protocol value back to (registry name,
// parameter overrides): the inverse of Build, used by the spec
// canonicalizer. The name is the entry whose default instance matches the
// value exactly, or — when parameters were tuned — the alphabetically
// first entry of the same dynamic type; the returned map holds exactly
// the fields that differ from that entry's default. ok is false for
// protocols whose type is not registered (custom protocols have no spec
// encoding and no cache identity).
func Extract(p sim.Protocol) (name string, overrides map[string]float64, ok bool) {
	if p == nil {
		return "", nil, false
	}
	return extractByType(p, func(e Entry) any { return e.Protocol })
}

// extractByType implements Extract over any registry shape: names are
// scanned in sorted order, exact instance matches win, first same-type
// entry otherwise.
func extractByType(v any, instance func(Entry) any) (string, map[string]float64, bool) {
	bestName := ""
	var bestDiff map[string]float64
	for _, name := range Names() {
		e := registry[name]
		base := instance(e)
		if reflect.TypeOf(base) != reflect.TypeOf(v) {
			continue
		}
		diff := params.Diff(v, base)
		if len(diff) == 0 {
			return name, nil, true // exact match on the configured default
		}
		if bestName == "" {
			bestName = name
			bestDiff = diff
		}
	}
	if bestName == "" {
		return "", nil, false
	}
	return bestName, bestDiff, true
}

// protoBounds constrains the parameters whose domains the protocol
// implementations assume; everything else is unbounded (zero values mean
// "use the protocol's documented default").
var protoBounds = params.Bounds{
	"windowscale":  {0, 1e6},
	"c":            {0, 1e6},
	"epsilon":      {0, 1},
	"alpha":        {0, 1 << 31},
	"giveupfactor": {0, 1 << 31},
}

func entry(name string, p sim.Protocol) Entry {
	return Entry{Name: name, Protocol: p, Params: params.Describe(p, protoBounds)}
}

var registry = map[string]Entry{}

func init() {
	for _, p := range []sim.Protocol{
		PushPull{}, Push{}, Pull{}, EARS{}, SEARS{}, RoundRobin{},
		Broadcast{}, Doubling{}, Adaptive{},
	} {
		registry[p.Name()] = entry(p.Name(), p)
	}
	// The budget-capped family registers the α = 2 instance the Theorem 1
	// trade-off experiment uses as its default.
	bc := BudgetCapped{Alpha: 2}
	registry[bc.Name()] = entry(bc.Name(), bc)
}
