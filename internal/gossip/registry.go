package gossip

import (
	"fmt"
	"sort"

	"github.com/ugf-sim/ugf/internal/sim"
)

// ByName returns the protocol with the given registry name, configured
// with the paper's experimental parameters. It reports false for unknown
// names. Parameterized construction (custom α, c, ε, …) is done by
// building the struct directly.
func ByName(name string) (sim.Protocol, bool) {
	p, ok := registry[name]
	return p, ok
}

// Names lists the registry names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MustByName is ByName for static names; it panics on unknown ones.
func MustByName(name string) sim.Protocol {
	p, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("gossip: unknown protocol %q (have %v)", name, Names()))
	}
	return p
}

var registry = map[string]sim.Protocol{
	(PushPull{}).Name():     PushPull{},
	(Push{}).Name():         Push{},
	(Pull{}).Name():         Pull{},
	(EARS{}).Name():         EARS{},
	(SEARS{}).Name():        SEARS{},
	(RoundRobin{}).Name():   RoundRobin{},
	(Broadcast{}).Name():    Broadcast{},
	(Doubling{}).Name():     Doubling{},
	(Adaptive{}).Name():     Adaptive{},
	(BudgetCapped{}).Name(): BudgetCapped{Alpha: 2},
}
