package gossip

import (
	"math"

	"github.com/ugf-sim/ugf/internal/sim"
)

// Adaptive is a Push-Pull variant that tries to beat the adversary by
// adapting — the kind of protocol UGF's randomization scheme is designed
// to defeat (Sections III-B and IV-A).
//
// It behaves like PushPull, but each process watches how long it has gone
// without learning anything new. After GiveUpFactor·⌈log₂ N⌉ quiet local
// steps it concludes that the processes it is still waiting for are
// crashed (the only cheap explanation), blasts everything it knows to
// every process it has not pushed to, and goes to sleep without waiting
// further.
//
// Against the fixed Strategy 1 this adaptation is ideal: the silent
// processes really are crashed, so giving up early is safe and both
// complexities stay low. Against randomized UGF the same move is a trap —
// under Strategy 2.k.0/2.k.l the silent processes are alive and merely
// delayed, and giving up on them either costs rumor gathering or forces
// the paid-for complexities anyway. The `adaptation` experiment measures
// exactly this.
type Adaptive struct {
	// GiveUpFactor scales the quiet threshold; 0 means 4.
	GiveUpFactor int
}

// Name implements sim.Protocol.
func (Adaptive) Name() string { return "adaptive" }

// Threshold returns the give-up threshold in local steps.
func (a Adaptive) Threshold(n int) int {
	factor := a.GiveUpFactor
	if factor <= 0 {
		factor = 4
	}
	t := factor * int(math.Ceil(math.Log2(float64(n+1))))
	if t < 1 {
		t = 1
	}
	return t
}

// New implements sim.Protocol.
func (a Adaptive) New(envs []sim.Env) []sim.Process {
	ar := newArena(len(envs))
	threshold := a.Threshold(len(envs))
	return sim.BuildEach(envs, func(env sim.Env) sim.Process {
		return &adaptiveProc{
			pushPullProc: newPushPullProc(env, ar),
			threshold:    threshold,
		}
	})
}

type adaptiveProc struct {
	*pushPullProc
	threshold int
	quiet     int
	gaveUp    bool
}

// Step implements sim.Process.
func (p *adaptiveProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	before := p.known.count()
	if p.gaveUp {
		// Keep answering pulls and absorbing, nothing more.
		for _, m := range delivered {
			switch pl := m.Payload.(type) {
			case pullPayload:
				out.Send(m.From, p.box.payload(p.knownLen()))
			case batchPayload:
				p.merge(m.From, pl.GLen)
			}
		}
		return
	}
	p.pushPullProc.Step(now, delivered, out)
	if p.known.count() > before {
		p.quiet = 0
	} else {
		p.quiet++
	}
	if p.quiet >= p.threshold && !p.pushPullProc.Asleep() {
		// Adapt: declare the laggards crashed and blast a final push to
		// everyone not yet pushed to.
		p.gaveUp = true
		for q := 0; q < p.env.N; q++ {
			if q == int(p.env.ID) || p.pushed.has(q) {
				continue
			}
			out.Send(sim.ProcID(q), p.box.payload(p.knownLen()))
			p.pushed.add(q)
		}
	}
}

// Asleep implements sim.Process.
func (p *adaptiveProc) Asleep() bool { return p.gaveUp || p.pushPullProc.Asleep() }
