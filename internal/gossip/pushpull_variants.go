package gossip

import "github.com/ugf-sim/ugf/internal/sim"

// Push and Pull are the two halves of the classic randomized
// rumor-spreading trio of Karp et al. [19], from which the paper's
// Push-Pull protocol (Section V-A2(a)) is derived. They are provided as
// additional baselines: push-only spreads fresh rumors fast but wastes
// messages once most processes are informed; pull-only is cheap late but
// cannot guarantee that an unasked-for rumor spreads — Push-Pull combines
// both, which is why the paper evaluates it.

// Push is the push-only protocol: at each local step a process sends all
// the gossips it knows to one uniformly random process, and falls asleep
// once it has learned nothing new for an inactivity window of
// ⌈N/(N−F)·ln N⌉ local steps (a delivery carrying news wakes it).
//
// Unlike EARS, push-only keeps no completion evidence at all: a process
// cannot tell whether its own gossip ever landed anywhere. That is the
// textbook weakness of the push half — under crash attacks the rumor of
// an unlucky process can die with its receivers — and it is precisely
// what the evidence machinery of the paper's evaluated protocols exists
// to prevent. Keep Push as a baseline, not as a correct-under-attack
// all-to-all protocol.
type Push struct {
	// WindowScale multiplies the inactivity window; 0 means 1.
	WindowScale float64
}

// Name implements sim.Protocol.
func (Push) Name() string { return "push" }

// New implements sim.Protocol.
func (p Push) New(envs []sim.Env) []sim.Process {
	ar := newArena(len(envs))
	return sim.BuildEach(envs, func(env sim.Env) sim.Process {
		return &pushProc{
			env:    env,
			ar:     ar,
			known:  knownWithSelf(env),
			window: inactivityWindow(env.N, env.F, p.WindowScale),
		}
	})
}

func knownWithSelf(env sim.Env) bitset {
	b := newBitset(env.N)
	b.add(int(env.ID))
	return b
}

type pushProc struct {
	env    sim.Env
	ar     *arena
	known  bitset
	staged []sim.ProcID
	box    batchBox
	quiet  int
	window int
}

func (p *pushProc) learnBatch(from sim.ProcID, gLen int32) bool {
	news := false
	for _, g := range p.ar.prefix(from, gLen) {
		if p.known.add(int(g)) {
			p.staged = append(p.staged, g)
			news = true
		}
	}
	return news
}

// Step implements sim.Process.
func (p *pushProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	news := false
	for _, m := range delivered {
		if p.learnBatch(m.From, m.Payload.(batchPayload).GLen) {
			news = true
		}
	}
	if news {
		p.quiet = 0
	} else {
		p.quiet++
	}
	if p.Asleep() || p.env.N == 1 {
		return
	}
	to := sim.ProcID(p.env.RNG.IntnExcept(p.env.N, int(p.env.ID)))
	out.Send(to, p.box.payload(p.ar.len(p.env.ID)+int32(len(p.staged))))
}

// Commit implements sim.Committer.
func (p *pushProc) Commit(now sim.Step) {
	p.ar.publish(p.env.ID, p.staged)
	p.staged = p.staged[:0]
}

// Asleep implements sim.Process.
func (p *pushProc) Asleep() bool { return p.quiet >= p.window }

// Knows implements sim.Process.
func (p *pushProc) Knows(g sim.ProcID) bool { return p.known.has(int(g)) }

// Pull is the pull-only protocol of [19]: Push-Pull's state machine with
// the push half removed. At each local step a process sends one pull
// request to a uniformly random process whose gossip it does not know and
// has not pulled from yet; requests are answered (even by sleeping
// processes) with everything the responder knows. The sleep condition is
// Push-Pull's: pulled-from or known, for every other process.
type Pull struct{}

// Name implements sim.Protocol.
func (Pull) Name() string { return "pull" }

// New implements sim.Protocol.
func (Pull) New(envs []sim.Env) []sim.Process {
	ar := newArena(len(envs))
	return sim.BuildEach(envs, func(env sim.Env) sim.Process {
		p := newPushPullProc(env, ar)
		p.noPush = true
		return p
	})
}
