// Package gossip implements the all-to-all gossip protocols evaluated in
// "The Universal Gossip Fighter" (IPPS 2022), plus the baselines its text
// refers to:
//
//   - PushPull — the pull-request/push protocol of Section V-A2(a),
//     inspired by Karp et al. [19];
//   - EARS — Epidemic Asynchronous Rumor Spreading from Georgiou et
//     al. [14], Section V-A2(b);
//   - SEARS — Spamming EARS, Section V-A2(c);
//   - RoundRobin — the deliberately inefficient deterministic protocol of
//     Example 1 (Θ(N²) messages, Θ(N) time);
//   - Broadcast — the trivial one-round protocol from the introduction
//     (N² messages, constant time);
//   - BudgetCapped — an EARS variant with a global message budget N²/α,
//     used by the Theorem 1 trade-off experiment;
//   - Adaptive — a Push-Pull variant that tries to adapt to the adversary,
//     used by the randomization-prevents-adaptation ablation.
//
// All protocols satisfy the all-to-all contract of Section II-B: rumor
// gathering when no adversary interferes, and quiescence via the
// falling-asleep semantics of Definition IV.2.
//
// # Shared knowledge arena
//
// EARS and SEARS messages carry the sender's full knowledge — its gossip
// set G(ρ) and its who-knows-what set I(ρ), the latter quadratic in N.
// Copying those sets into every message would dominate the simulation, so
// the protocols here exploit two structural facts: knowledge sets only
// grow, and every transmitted view of a process's knowledge is a prefix of
// that process's append-only learning log. A message therefore carries
// only a version vector (one integer per process) plus a log-prefix
// length; receivers resolve the referenced entries through a run-wide
// shared arena of immutable log prefixes. This is an exact representation
// of (G, I), not an approximation.
//
// Arena appends follow the engine's phase discipline (sim.Committer):
// processes stage appends during Step and publish them in Commit, which
// the engine serializes — that is what keeps parallel stepping safe.
package gossip

import (
	"math"
	"math/bits"

	"github.com/ugf-sim/ugf/internal/sim"
)

// bitset is a fixed-capacity set of small non-negative integers.
type bitset struct {
	words []uint64
	n     int // population count
}

func newBitset(capacity int) bitset {
	return bitset{words: make([]uint64, (capacity+63)/64)}
}

// add inserts i and reports whether it was newly added.
func (b *bitset) add(i int) bool {
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.n++
	return true
}

// has reports whether i is in the set.
func (b *bitset) has(i int) bool {
	return b.words[i>>6]&(uint64(1)<<uint(i&63)) != 0
}

// count returns the number of elements.
func (b *bitset) count() int { return b.n }

// popcount recomputes the population count from the words (used by tests
// to validate the incremental counter).
func (b *bitset) popcount() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// arena is the run-wide table of append-only learning logs. logs[p] lists
// the gossips process p has learned, in learning order, starting with its
// own gossip. Prefixes of a log are immutable; appends happen only inside
// sim.Committer.Commit, so any prefix length a process received in a
// message is safe to read during (possibly parallel) Step phases.
type arena struct {
	logs [][]sim.ProcID
}

func newArena(n int) *arena {
	a := &arena{logs: make([][]sim.ProcID, n)}
	for p := 0; p < n; p++ {
		log := make([]sim.ProcID, 1, 8)
		log[0] = sim.ProcID(p)
		a.logs[p] = log
	}
	return a
}

// publish appends staged entries to p's log. Call only from Commit.
func (a *arena) publish(p sim.ProcID, staged []sim.ProcID) {
	if len(staged) > 0 {
		a.logs[p] = append(a.logs[p], staged...)
	}
}

// prefix returns the immutable first length entries of p's log.
func (a *arena) prefix(p sim.ProcID, length int32) []sim.ProcID {
	return a.logs[p][:length]
}

// len returns the published length of p's log.
func (a *arena) len(p sim.ProcID) int32 { return int32(len(a.logs[p])) }

// inactivityWindow computes the EARS completion window
// ⌈scale · N/(N−F) · ln N⌉ local steps, at least 1.
func inactivityWindow(n, f int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	w := scale * float64(n) / float64(n-f) * math.Log(float64(n))
	iw := int(math.Ceil(w))
	if iw < 1 {
		iw = 1
	}
	return iw
}

// Payload types shared by the protocols.

// batchPayload carries "all the gossips the sender knew when it sent":
// the first GLen entries of the sender's arena log.
type batchPayload struct {
	GLen int32
}

func (batchPayload) Kind() string { return "gossips" }

// batchBox caches the boxed interface value of the most recently sent
// batchPayload, keyed by its GLen. Protocols send the same knowledge
// length many times in a row — every pull answer and push of a quiet
// stretch — and handing the engine one interface value instead of
// re-boxing per send is what lets the Outbox dedup fan-outs and keeps the
// steady-state hot path allocation-free. Payload *contents* are untouched,
// so outcomes are bit-identical.
type batchBox struct {
	pl   sim.Payload
	gLen int32
}

// payload returns the boxed batchPayload for knowledge length gLen,
// reusing the previous box when the length is unchanged.
func (b *batchBox) payload(gLen int32) sim.Payload {
	if b.pl == nil || b.gLen != gLen {
		b.pl = batchPayload{GLen: gLen}
		b.gLen = gLen
	}
	return b.pl
}

// pullPayload is a Push-Pull pull request.
type pullPayload struct{}

func (pullPayload) Kind() string { return "pull" }

// singlePayload carries exactly one gossip (RoundRobin, Broadcast).
type singlePayload struct {
	G sim.ProcID
}

func (singlePayload) Kind() string { return "gossip" }

// earsPayload is an exact encoding of (G(sender), I(sender)) at send time:
// GLen is the sender's log length (its gossip set), and Ver[b] says "the
// sender has seen the first Ver[b] entries of b's log" — the pair set
// I(sender) under the prefix property described in the package comment.
// Ver is an immutable snapshot shared by every send of one local step.
//
// Messages carry *earsPayload: the boxes and their Ver snapshots are
// carved from per-process append-only chunks (earsProc.payload), so
// taking a new snapshot costs two heap allocations per chunk instead of
// two per snapshot. Receivers must treat both as immutable.
type earsPayload struct {
	GLen int32
	Ver  []int32
}

func (earsPayload) Kind() string { return "ears" }
