package gossip

import "github.com/ugf-sim/ugf/internal/sim"

// PushPull is the randomized pull-request/push protocol of
// Section V-A2(a), inspired by Karp et al. [19].
//
// At each local step a process:
//
//  1. answers every delivered pull request with all the gossips it knows;
//  2. sends a pull request to one uniformly random process whose gossip it
//     does not know and which it has not pulled from yet;
//  3. pushes all the gossips it knows to one uniformly random process it
//     has not pushed to yet.
//
// A process falls asleep once, for every other process, it has either made
// a pull request to it or already knows its gossip. Sleeping processes
// still answer pull requests (Definition IV.2 lets a delivered message
// trigger activity).
type PushPull struct{}

// Name implements sim.Protocol.
func (PushPull) Name() string { return "push-pull" }

// New implements sim.Protocol.
func (PushPull) New(envs []sim.Env) []sim.Process {
	ar := newArena(len(envs))
	return sim.BuildEach(envs, func(env sim.Env) sim.Process {
		return newPushPullProc(env, ar)
	})
}

type pushPullProc struct {
	env    sim.Env
	ar     *arena
	known  bitset // gossips in G(ρ)
	pulled bitset // processes a pull request was sent to
	pushed bitset // processes that received all my gossips at least once
	staged []sim.ProcID
	box    batchBox // reusable boxed batchPayload (see gossip.go)
	// need counts processes q ≠ ρ with neither pulled(q) nor known(g_q);
	// the sleep condition is need == 0.
	need int
	// noPush disables the push half — the state machine then implements
	// the classic pull-only protocol of [19] (see Pull).
	noPush bool
}

func newPushPullProc(env sim.Env, ar *arena) *pushPullProc {
	p := &pushPullProc{
		env:    env,
		ar:     ar,
		known:  newBitset(env.N),
		pulled: newBitset(env.N),
		pushed: newBitset(env.N),
		need:   env.N - 1,
	}
	p.known.add(int(env.ID))
	return p
}

// knownLen is the number of gossips ρ knows, which is also the length its
// arena log will have once the staged entries are published.
func (p *pushPullProc) knownLen() int32 {
	return p.ar.len(p.env.ID) + int32(len(p.staged))
}

func (p *pushPullProc) learn(g sim.ProcID) {
	if !p.known.add(int(g)) {
		return
	}
	p.staged = append(p.staged, g)
	if !p.pulled.has(int(g)) {
		p.need--
	}
}

func (p *pushPullProc) markPulled(q sim.ProcID) {
	if p.pulled.add(int(q)) && !p.known.has(int(q)) {
		p.need--
	}
}

func (p *pushPullProc) merge(from sim.ProcID, gLen int32) {
	for _, g := range p.ar.prefix(from, gLen) {
		p.learn(g)
	}
}

// Step implements sim.Process.
func (p *pushPullProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	for _, m := range delivered {
		switch pl := m.Payload.(type) {
		case pullPayload:
			out.Send(m.From, p.box.payload(p.knownLen()))
			p.pushed.add(int(m.From))
		case batchPayload:
			p.merge(m.From, pl.GLen)
		}
	}
	if p.need == 0 {
		return // asleep: only pull responses above
	}
	// Pull: one uniformly random process with unknown gossip, not pulled yet.
	if target, ok := p.pickPullTarget(); ok {
		out.Send(target, pullPayload{})
		p.markPulled(target)
	}
	if p.noPush {
		return
	}
	// Push: one uniformly random process not pushed to yet.
	if target, ok := p.pickUnpushed(); ok {
		out.Send(target, p.box.payload(p.knownLen()))
		p.pushed.add(int(target))
	}
}

// pickPullTarget draws uniformly from {q ≠ ρ : ¬known(g_q) ∧ ¬pulled(q)}
// by reservoir sampling over one scan.
func (p *pushPullProc) pickPullTarget() (sim.ProcID, bool) {
	seen := 0
	choice := -1
	for q := 0; q < p.env.N; q++ {
		if q == int(p.env.ID) || p.known.has(q) || p.pulled.has(q) {
			continue
		}
		seen++
		if p.env.RNG.Intn(seen) == 0 {
			choice = q
		}
	}
	if choice < 0 {
		return 0, false
	}
	return sim.ProcID(choice), true
}

func (p *pushPullProc) pickUnpushed() (sim.ProcID, bool) {
	seen := 0
	choice := -1
	for q := 0; q < p.env.N; q++ {
		if q == int(p.env.ID) || p.pushed.has(q) {
			continue
		}
		seen++
		if p.env.RNG.Intn(seen) == 0 {
			choice = q
		}
	}
	if choice < 0 {
		return 0, false
	}
	return sim.ProcID(choice), true
}

// Commit implements sim.Committer: publish this step's newly learned
// gossips to the shared arena.
func (p *pushPullProc) Commit(now sim.Step) {
	p.ar.publish(p.env.ID, p.staged)
	p.staged = p.staged[:0]
}

// Asleep implements sim.Process.
func (p *pushPullProc) Asleep() bool { return p.need == 0 }

// Knows implements sim.Process.
func (p *pushPullProc) Knows(g sim.ProcID) bool { return p.known.has(int(g)) }
