package runner

import (
	"reflect"
	"sync"
	"testing"

	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/sim"
)

func specs() []Spec {
	return []Spec{
		{Name: "pp", Base: sim.Config{N: 12, F: 3, Protocol: gossip.PushPull{}}, Runs: 6, BaseSeed: 1},
		{Name: "rr", Base: sim.Config{N: 9, F: 0, Protocol: gossip.RoundRobin{}}, Runs: 4, BaseSeed: 2},
	}
}

func TestExecuteRunsEverything(t *testing.T) {
	results, err := Execute(specs(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if len(results[0].Outcomes) != 6 || len(results[1].Outcomes) != 4 {
		t.Fatalf("wrong outcome counts: %d, %d", len(results[0].Outcomes), len(results[1].Outcomes))
	}
	for _, res := range results {
		for i, o := range res.Outcomes {
			if o.N == 0 {
				t.Errorf("%s run %d: zero outcome", res.Spec.Name, i)
			}
		}
	}
}

// stripWall zeroes the non-deterministic wall times of every outcome so
// result sets can be compared across worker counts and reruns.
func stripWall(rs []Result) []Result {
	for i := range rs {
		for j := range rs[i].Outcomes {
			rs[i].Outcomes[j] = rs[i].Outcomes[j].StripWall()
		}
	}
	return rs
}

func TestExecuteDeterministicAcrossWorkerCounts(t *testing.T) {
	a, err := Execute(specs(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(specs(), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(a), stripWall(b)) {
		t.Fatal("worker count changed outcomes")
	}
}

func TestExecuteSeedsDiffer(t *testing.T) {
	results, err := Execute(specs()[:1], 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, o := range results[0].Outcomes {
		if seen[o.Seed] {
			t.Fatalf("duplicate seed %d", o.Seed)
		}
		seen[o.Seed] = true
	}
}

func TestExecuteProgress(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	last := 0
	_, err := Execute(specs(), 3, func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if total != 10 {
			t.Errorf("total = %d, want 10", total)
		}
		if done > last {
			last = done
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 10 || last != 10 {
		t.Errorf("progress calls = %d (last done %d), want 10", calls, last)
	}
}

func TestExecuteConfigError(t *testing.T) {
	bad := []Spec{{Name: "bad", Base: sim.Config{N: 0, Protocol: gossip.PushPull{}}, Runs: 2, BaseSeed: 1}}
	if _, err := Execute(bad, 2, nil); err == nil {
		t.Fatal("invalid config not reported")
	}
	zero := []Spec{{Name: "zero", Base: sim.Config{N: 5, Protocol: gossip.PushPull{}}, Runs: 0}}
	if _, err := Execute(zero, 2, nil); err == nil {
		t.Fatal("zero-run spec not rejected")
	}
}

func TestExtractors(t *testing.T) {
	outs := []sim.Outcome{
		{Time: 1, Messages: 10, Strategy: "1", Gathered: true},
		{Time: 2, Messages: 20, Strategy: "2.1.0", Gathered: false, HorizonHit: true},
		{Time: 3, Messages: 30, Strategy: "1", Gathered: true},
	}
	if got := Times(outs); !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Errorf("Times = %v", got)
	}
	if got := Messages(outs); !reflect.DeepEqual(got, []float64{10, 20, 30}) {
		t.Errorf("Messages = %v", got)
	}
	if got := FilterStrategy(outs, "1"); len(got) != 2 {
		t.Errorf("FilterStrategy kept %d", len(got))
	}
	if got := GatheredRate(outs); got < 0.66 || got > 0.67 {
		t.Errorf("GatheredRate = %v", got)
	}
	if got := CutoffRate(outs); got < 0.33 || got > 0.34 {
		t.Errorf("CutoffRate = %v", got)
	}
	if GatheredRate(nil) != 0 || CutoffRate(nil) != 0 {
		t.Error("empty-slice rates must be 0")
	}
}
