package runner

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// panicAdv panics while being constructed for the run whose adversary
// stream opens with Trigger — letting a test detonate exactly one chosen
// run of a batch, deterministically.
type panicAdv struct{ Trigger uint64 }

func (panicAdv) Name() string { return "panic-adv" }
func (p panicAdv) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	if rng.Uint64() == p.Trigger {
		panic("adversary exploded")
	}
	return benignAdv{}
}

type benignAdv struct{}

func (benignAdv) Init(sim.View, sim.Control)                                {}
func (benignAdv) Observe(sim.Step, []sim.SendRecord, sim.View, sim.Control) {}
func (benignAdv) Label() string                                             { return "" }

// bombProto panics at every run's first local step.
type bombProto struct{}

func (bombProto) Name() string { return "bomb" }
func (bombProto) New(envs []sim.Env) []sim.Process {
	return sim.BuildEach(envs, func(env sim.Env) sim.Process { return bombProc{} })
}

type bombProc struct{}

func (bombProc) Step(sim.Step, []sim.Message, *sim.Outbox) { panic("protocol exploded") }
func (bombProc) Asleep() bool                              { return false }
func (bombProc) Knows(sim.ProcID) bool                     { return false }

// countProto counts its constructions — a probe for how many runs actually
// executed (journal hits and short-circuited jobs never construct it).
type countProto struct{ calls *atomic.Int64 }

func (countProto) Name() string { return "count" }
func (c countProto) New(envs []sim.Env) []sim.Process {
	c.calls.Add(1)
	return gossip.PushPull{}.New(envs)
}

// flakyProto panics on its first construction ever, then behaves — the
// environmental-failure shape the same-seed retry is meant to recover.
type flakyProto struct{ armed *atomic.Bool }

func (flakyProto) Name() string { return "flaky" }
func (f flakyProto) New(envs []sim.Env) []sim.Process {
	if f.armed.CompareAndSwap(true, false) {
		panic("cosmic ray")
	}
	return gossip.PushPull{}.New(envs)
}

// TestPanicIsolatedToOneRun: one detonating run in a 50-run spec yields 49
// outcomes plus one deterministic RunError — serial and parallel — and the
// batch completes.
func TestPanicIsolatedToOneRun(t *testing.T) {
	const runs, badRun = 50, 7
	var base uint64 = 99
	badSeed := xrand.Derive(base, badRun)
	spec := Spec{
		Name: "panicky",
		Base: sim.Config{
			N: 10, F: 2,
			Protocol:  gossip.PushPull{},
			Adversary: panicAdv{Trigger: sim.AdversaryRNG(badSeed).Uint64()},
		},
		Runs:     runs,
		BaseSeed: base,
	}
	check := func(t *testing.T, res Result) {
		if len(res.Errors) != 1 {
			t.Fatalf("got %d RunErrors, want 1: %v", len(res.Errors), res.Errors)
		}
		re := res.Errors[0]
		if re.Run != badRun || re.Seed != badSeed || !re.Deterministic {
			t.Errorf("RunError = %+v, want run %d seed %d deterministic", re, badRun, badSeed)
		}
		if !strings.Contains(re.Panic, "adversary exploded") || re.Stack == "" {
			t.Errorf("RunError missing panic/stack: %+v", re)
		}
		if !res.Outcomes[badRun].HorizonHit {
			t.Error("failed slot must carry a HorizonHit placeholder")
		}
		if got := len(res.Kept()); got != runs-1 {
			t.Errorf("Kept() = %d outcomes, want %d", got, runs-1)
		}
		for i, o := range res.Outcomes {
			if i != badRun && (o.N == 0 || o.HorizonHit) {
				t.Errorf("run %d: unexpected outcome %+v", i, o)
			}
		}
	}
	var done atomic.Int64
	serial, err := ExecuteContext(context.Background(), []Spec{spec}, Options{
		Workers:  1,
		Progress: func(d, total int) { done.Store(int64(d)); _ = total },
	})
	if err != nil {
		t.Fatal(err)
	}
	check(t, serial[0])
	if done.Load() != runs {
		t.Errorf("progress reached %d, want %d (failed runs count as done)", done.Load(), runs)
	}
	parallel, err := ExecuteContext(context.Background(), []Spec{spec}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	check(t, parallel[0])
	stripWall(serial)
	stripWall(parallel)
	if !reflect.DeepEqual(serial[0].Outcomes, parallel[0].Outcomes) {
		t.Error("worker count changed the surviving outcomes")
	}
}

// TestEveryRunPanicking: a protocol that always detonates fails every run
// individually without crashing the process or aborting the batch.
func TestEveryRunPanicking(t *testing.T) {
	spec := Spec{Name: "bombs", Base: sim.Config{N: 5, Protocol: bombProto{}}, Runs: 6, BaseSeed: 3}
	results, err := ExecuteContext(context.Background(), []Spec{spec}, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if len(res.Errors) != 6 || len(res.Kept()) != 0 || res.Failed() != 6 {
		t.Fatalf("got %d errors, %d kept", len(res.Errors), len(res.Kept()))
	}
	for i, re := range res.Errors {
		if re.Run != i || !re.Deterministic {
			t.Errorf("Errors[%d] = %+v, want run %d (errors sorted by run)", i, re, i)
		}
	}
}

// TestSameSeedRetryRecoversEnvironmentalFailure: a one-off panic is healed
// by the retry; the outcome is kept and the incident lands in Flaky.
func TestSameSeedRetryRecoversEnvironmentalFailure(t *testing.T) {
	var armed atomic.Bool
	armed.Store(true)
	spec := Spec{Name: "flaky", Base: sim.Config{N: 8, Protocol: flakyProto{armed: &armed}}, Runs: 3, BaseSeed: 5}
	results, err := ExecuteContext(context.Background(), []Spec{spec}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if len(res.Errors) != 0 {
		t.Fatalf("environmental failure recorded as deterministic: %v", res.Errors)
	}
	if len(res.Flaky) != 1 || res.Flaky[0].Run != 0 || res.Flaky[0].Deterministic {
		t.Fatalf("Flaky = %+v, want one environmental entry for run 0", res.Flaky)
	}
	for i, o := range res.Outcomes {
		if o.N == 0 || o.HorizonHit {
			t.Errorf("run %d missing its recovered outcome: %+v", i, o)
		}
	}
}

// TestShortCircuitAfterBatchFailure: once a configuration error fails the
// batch, queued jobs are drained without executing (satellite fix: workers
// used to keep running every remaining run at full cost).
func TestShortCircuitAfterBatchFailure(t *testing.T) {
	var calls atomic.Int64
	specs := []Spec{
		{Name: "bad", Base: sim.Config{N: 0, Protocol: gossip.PushPull{}}, Runs: 1, BaseSeed: 1},
		{Name: "big", Base: sim.Config{N: 6, Protocol: countProto{calls: &calls}}, Runs: 200, BaseSeed: 2},
	}
	_, err := ExecuteContext(context.Background(), specs, Options{Workers: 1})
	if err == nil {
		t.Fatal("invalid config not reported")
	}
	if got := calls.Load(); got != 0 {
		t.Errorf("%d runs executed after the batch had failed, want 0", got)
	}
}

// TestCancelledContextStopsBatch: a cancelled context yields partial
// results plus the context's error, without executing the queued runs.
func TestCancelledContextStopsBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	specs := []Spec{{Name: "c", Base: sim.Config{N: 6, Protocol: countProto{calls: &calls}}, Runs: 50, BaseSeed: 4}}
	results, err := ExecuteContext(ctx, specs, Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 1 {
		t.Fatalf("partial results missing: %v", results)
	}
	if got := calls.Load(); got != 0 {
		t.Errorf("%d runs executed under a cancelled context, want 0", got)
	}
}
