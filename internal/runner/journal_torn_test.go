package runner

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
)

// tornTails is the catalogue of corrupt journal endings the loader must
// shrug off: half-written lines from a crash mid-append, binary garbage,
// and well-formed JSON of the wrong shape. It doubles as the seed corpus
// of FuzzJournalTornTail.
func tornTails() [][]byte {
	return [][]byte{
		[]byte(`{"fp":"dead","spec":"a","run":9,"outc`),             // torn mid-key
		[]byte(`{"fp":"dead","spec":"a","run":9,"outcome":{"N":5`),  // torn mid-nested-object
		[]byte(`{"fp":"dead","spec":"a","run":9,"outcome":{"N":5}`), // complete object, no newline
		[]byte("{"),                                       // minimal torn line
		[]byte("\x00\x01\x02garbage\xff\xfe"),             // binary garbage
		[]byte("null\n"),                                  // valid JSON, decodes to an empty record
		[]byte("\"just a string\"\n"),                     // valid JSON, wrong type
		[]byte("[1,2,3]\n"),                               // valid JSON, wrong shape
		[]byte(`{"fp":"dead","spec":"x","run":1}` + "\n"), // record with neither outcome nor error
		[]byte("\n\n\n"),                                  // stray blank lines
		[]byte(`{"fp":"dead","run":2,"outc` + "\n" + `{"fp":"also","ru`), // two torn lines
		{}, // empty tail
	}
}

// tornSpec is the spec the torn-tail tests journal runs under. The
// protocol may be nil: Fingerprint only formats it, and these tests never
// execute the spec.
func tornSpec() Spec {
	return Spec{Name: "torn", Base: sim.Config{N: 4, F: 1}, Runs: 2, BaseSeed: 3}
}

// writeTornJournal creates a journal holding one outcome and one
// deterministic failure for tornSpec, and returns its path plus the
// recorded values.
func writeTornJournal(t testing.TB) (path string, o sim.Outcome, re *RunError) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "runs.jsonl")
	spec := tornSpec()
	o = sim.Outcome{Protocol: "p", Adversary: "none", N: 4, F: 1, Seed: 9, TEnd: 17,
		Quiescence: 21, Messages: 33, Time: 1.75, Gathered: true}
	re = &RunError{Spec: spec.Name, Run: 1, Seed: 4, Panic: "boom", Deterministic: true}
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(spec, 0, &o, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(spec, 1, nil, re); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path, o, re
}

// checkTornResume appends tail to the journal at path and asserts that a
// resume load still serves both recorded runs, byte-identically.
func checkTornResume(t testing.TB, path string, tail []byte, o sim.Outcome, re *RunError) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(tail); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	j, err := OpenJournal(path, true)
	if err != nil {
		t.Fatalf("resume load failed on tail %q: %v", tail, err)
	}
	defer j.Close()
	spec := tornSpec()
	got, gotErr, ok := j.Lookup(spec, 0)
	if !ok || gotErr != nil {
		t.Fatalf("tail %q: run 0 lost (ok=%v err=%v)", tail, ok, gotErr)
	}
	if !reflect.DeepEqual(got, o) {
		t.Errorf("tail %q: run 0 outcome changed: got %+v want %+v", tail, got, o)
	}
	_, gotRe, ok := j.Lookup(spec, 1)
	if !ok || gotRe == nil {
		t.Fatalf("tail %q: run 1 failure lost (ok=%v)", tail, ok)
	}
	if !reflect.DeepEqual(gotRe, re) {
		t.Errorf("tail %q: run 1 error changed: got %+v want %+v", tail, gotRe, re)
	}
}

// TestJournalTornTailTable drives every catalogued corruption through the
// load path. The existing TestJournalToleratesTornTail covers the
// end-to-end ExecuteContext flow for one tail; this table pins the loader
// itself against the whole corpus that seeds the fuzz target.
func TestJournalTornTailTable(t *testing.T) {
	for i, tail := range tornTails() {
		path, o, re := writeTornJournal(t)
		checkTornResume(t, path, tail, o, re)
		_ = i
	}
}
