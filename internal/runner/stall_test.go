package runner

import (
	"testing"

	"github.com/ugf-sim/ugf/internal/adversary"
	"github.com/ugf-sim/ugf/internal/sim"
)

// chatterProto never sleeps: each process pings its neighbour at every
// local step. Under a permanent partition it spins forever without
// progress — the workload the stall detector exists for.
type chatterProto struct{}

func (chatterProto) Name() string { return "chatter" }
func (chatterProto) New(envs []sim.Env) []sim.Process {
	procs := make([]sim.Process, len(envs))
	for i, env := range envs {
		procs[i] = &chatterProc{env: env}
	}
	return procs
}

type chatterProc struct{ env sim.Env }

type pingPayload struct{}

func (pingPayload) Kind() string { return "ping" }

func (c *chatterProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	out.Send(sim.ProcID((int(c.env.ID)+1)%c.env.N), pingPayload{})
}
func (c *chatterProc) Asleep() bool            { return false }
func (c *chatterProc) Knows(g sim.ProcID) bool { return g == c.env.ID }

// TestStalledRunsAreNotFailures: a spec whose every run stalls (permanent
// partition, never-sleeping protocol, stall window set) must complete the
// batch with zero Errors and zero Flaky — stall detection is a classified
// outcome, not a fault — and StalledRate must see every run.
func TestStalledRunsAreNotFailures(t *testing.T) {
	specs := []Spec{{
		Name: "stall",
		Base: sim.Config{
			N: 6, Protocol: chatterProto{},
			Adversary:   adversary.Partition{Permanent: true, Classes: 6},
			StallWindow: 256,
		},
		Runs:     4,
		BaseSeed: 7,
	}}
	results, err := Execute(specs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if len(res.Errors) != 0 || len(res.Flaky) != 0 {
		t.Fatalf("stalled runs recorded as faults: errors=%d flaky=%d", len(res.Errors), len(res.Flaky))
	}
	stalled := 0
	for i, o := range res.Outcomes {
		if !o.HorizonHit {
			t.Errorf("run %d: stalled outcome without HorizonHit", i)
		}
		if o.Stalled {
			stalled++
		}
	}
	if stalled == 0 {
		t.Fatal("no run stalled under a permanent partition")
	}
	if got := StalledRate(res.Kept()); got != float64(stalled)/float64(len(res.Outcomes)) {
		t.Errorf("StalledRate = %v with %d/%d stalled", got, stalled, len(res.Outcomes))
	}
	if CutoffRate(res.Kept()) < StalledRate(res.Kept()) {
		t.Error("CutoffRate must include every stalled run")
	}
}
