package runner

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress turns the Options.OnRun feed into a live, single-line status
// display: completed/failed/flaky counts, the computation rate, and an ETA
// that discounts journal-served runs (a resumed sweep replays recorded
// runs near-instantly; counting them into the rate would make the ETA
// wildly optimistic). Snapshots are also available programmatically for
// expvar-style exporters.
//
// Wire it up with:
//
//	p := runner.NewProgress(os.Stderr, "fig3a")
//	opts.OnRun = p.OnRun
//	defer p.Finish()
//
// OnRun is safe for concurrent use from the runner's workers; printing is
// throttled to one line per Interval so a 10k-run sweep does not turn the
// terminal into the bottleneck.
type Progress struct {
	// W receives the status line; nil disables printing (snapshots still
	// work, for exporters that render elsewhere).
	W io.Writer
	// Label prefixes the line, usually the experiment or batch name.
	Label string
	// Interval is the minimum time between printed lines (default 200ms).
	// The final update (Done == Total) always prints.
	Interval time.Duration

	mu    sync.Mutex
	start time.Time
	last  time.Time // last print
	u     RunUpdate // most recent update
}

// NewProgress returns a Progress printing to w with the given label.
func NewProgress(w io.Writer, label string) *Progress {
	return &Progress{W: w, Label: label}
}

// OnRun records one finished run and, rate-limited, reprints the status
// line. Pass the method value as Options.OnRun.
func (p *Progress) OnRun(u RunUpdate) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if p.start.IsZero() {
		p.start = now
	}
	if u.Done > p.u.Done {
		p.u = u
	}
	if p.W == nil {
		return
	}
	interval := p.Interval
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	if u.Done < u.Total && now.Sub(p.last) < interval {
		return
	}
	p.last = now
	fmt.Fprintf(p.W, "\r%s\033[K", p.line(p.snapshotLocked(now)))
}

// Finish clears the status line; call it once the batch is done so the
// next regular output starts on a clean line.
func (p *Progress) Finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.W != nil && !p.start.IsZero() {
		fmt.Fprint(p.W, "\r\033[K")
	}
}

// Snapshot is a point-in-time view of the batch, in exportable form.
type Snapshot struct {
	Label string `json:"label"`
	// Done, Total, Failed, Flaky, Journaled mirror the latest RunUpdate.
	Done      int `json:"done"`
	Total     int `json:"total"`
	Failed    int `json:"failed,omitempty"`
	Flaky     int `json:"flaky,omitempty"`
	Journaled int `json:"journaled,omitempty"`
	// Elapsed is the wall time since the first update.
	Elapsed time.Duration `json:"elapsed_ns"`
	// RunsPerSec is the computation rate over runs that actually executed
	// (journal-served ones excluded), 0 until one completes.
	RunsPerSec float64 `json:"runs_per_sec"`
	// ETA estimates the remaining wall time from RunsPerSec; valid only
	// when ETAValid is set (a rate exists).
	ETA      time.Duration `json:"eta_ns"`
	ETAValid bool          `json:"eta_valid"`
}

// Snapshot returns the current state. Safe to call concurrently with
// OnRun, e.g. from an expvar.Func.
func (p *Progress) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked(time.Now())
}

func (p *Progress) snapshotLocked(now time.Time) Snapshot {
	s := Snapshot{
		Label:     p.Label,
		Done:      p.u.Done,
		Total:     p.u.Total,
		Failed:    p.u.Failed,
		Flaky:     p.u.Flaky,
		Journaled: p.u.Journaled,
	}
	if !p.start.IsZero() {
		s.Elapsed = now.Sub(p.start)
	}
	computed := s.Done - s.Journaled
	if computed > 0 && s.Elapsed > 0 {
		s.RunsPerSec = float64(computed) / s.Elapsed.Seconds()
		if remaining := s.Total - s.Done; remaining >= 0 && s.RunsPerSec > 0 {
			s.ETA = time.Duration(float64(remaining) / s.RunsPerSec * float64(time.Second))
			s.ETAValid = true
		}
	}
	return s
}

// line renders a snapshot as the one-line terminal status.
func (p *Progress) line(s Snapshot) string {
	var b strings.Builder
	if s.Label != "" {
		fmt.Fprintf(&b, "%s: ", s.Label)
	}
	fmt.Fprintf(&b, "%d/%d runs", s.Done, s.Total)
	var extras []string
	if s.Failed > 0 {
		extras = append(extras, fmt.Sprintf("%d failed", s.Failed))
	}
	if s.Flaky > 0 {
		extras = append(extras, fmt.Sprintf("%d flaky", s.Flaky))
	}
	if s.Journaled > 0 {
		extras = append(extras, fmt.Sprintf("%d from journal", s.Journaled))
	}
	if len(extras) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(extras, ", "))
	}
	if s.RunsPerSec > 0 {
		fmt.Fprintf(&b, "  %.1f runs/s", s.RunsPerSec)
	}
	if s.ETAValid && s.Done < s.Total {
		fmt.Fprintf(&b, "  ETA %s", formatETA(s.ETA))
	}
	return b.String()
}

// formatETA rounds the estimate to a humane precision: sub-minute ETAs to
// the second, longer ones to the minute.
func formatETA(d time.Duration) string {
	if d < time.Minute {
		return d.Round(time.Second).String()
	}
	return d.Round(time.Minute).String()
}
