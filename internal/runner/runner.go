// Package runner executes batches of simulation runs on a worker pool.
//
// The experiments of the paper are embarrassingly parallel — Figure 3
// alone is ~50 runs × 10 system sizes × 3 series × 5 panels — so the
// harness fans individual runs out across goroutines. Each run derives its
// seed deterministically from (spec base seed, run index); the outcome set
// of a batch is therefore identical regardless of worker count or
// scheduling, and every run can be reproduced in isolation from its
// recorded seed.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// Spec describes one experiment series: a configuration template repeated
// Runs times with derived seeds.
type Spec struct {
	// Name labels the series in reports ("ears/ugf", "push-pull/none", …).
	Name string
	// Base is the configuration template. Its Seed field is ignored;
	// run i uses xrand.Derive(BaseSeed, i).
	Base sim.Config
	// Runs is the number of repetitions (the paper uses 50).
	Runs int
	// BaseSeed seeds the series.
	BaseSeed uint64
}

// Result pairs a Spec with the outcomes of its runs, in run order.
type Result struct {
	Spec     Spec
	Outcomes []sim.Outcome
}

// Execute runs every spec's repetitions across workers goroutines
// (workers ≤ 0 means GOMAXPROCS). progress, when non-nil, is called after
// each completed run with the number done and the total. The first
// configuration error aborts the batch.
func Execute(specs []Spec, workers int, progress func(done, total int)) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		spec, run int
	}
	total := 0
	results := make([]Result, len(specs))
	for i, s := range specs {
		if s.Runs <= 0 {
			return nil, fmt.Errorf("runner: spec %q has Runs = %d", s.Name, s.Runs)
		}
		results[i] = Result{Spec: s, Outcomes: make([]sim.Outcome, s.Runs)}
		total += s.Runs
	}

	// Buffered so the submit loop below streams jobs without blocking on
	// worker hand-off; workers drain at their own pace.
	jobs := make(chan job, total)
	var (
		wg       sync.WaitGroup
		done     atomic.Int64
		firstErr error
		errOnce  sync.Once
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				spec := specs[j.spec]
				cfg := spec.Base
				cfg.Seed = xrand.Derive(spec.BaseSeed, uint64(j.run))
				o, err := sim.Run(cfg)
				if err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("runner: spec %q run %d: %w", spec.Name, j.run, err) })
					continue
				}
				results[j.spec].Outcomes[j.run] = o
				if progress != nil {
					progress(int(done.Add(1)), total)
				}
			}
		}()
	}
	for si := range specs {
		for r := 0; r < specs[si].Runs; r++ {
			jobs <- job{spec: si, run: r}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Times extracts T(O) from each outcome.
func Times(outs []sim.Outcome) []float64 {
	xs := make([]float64, len(outs))
	for i, o := range outs {
		xs[i] = o.Time
	}
	return xs
}

// Messages extracts M(O) from each outcome.
func Messages(outs []sim.Outcome) []float64 {
	xs := make([]float64, len(outs))
	for i, o := range outs {
		xs[i] = float64(o.Messages)
	}
	return xs
}

// FilterStrategy returns the outcomes whose adversary committed to the
// given strategy label (e.g. "2.1.0").
func FilterStrategy(outs []sim.Outcome, label string) []sim.Outcome {
	sel := make([]sim.Outcome, 0, len(outs))
	for _, o := range outs {
		if o.Strategy == label {
			sel = append(sel, o)
		}
	}
	return sel
}

// GatheredRate returns the fraction of outcomes that achieved rumor
// gathering (0 for an empty slice).
func GatheredRate(outs []sim.Outcome) float64 {
	if len(outs) == 0 {
		return 0
	}
	n := 0
	for _, o := range outs {
		if o.Gathered {
			n++
		}
	}
	return float64(n) / float64(len(outs))
}

// CutoffRate returns the fraction of outcomes cut off by the horizon or
// event limit; such outcomes must not enter complexity statistics.
func CutoffRate(outs []sim.Outcome) float64 {
	if len(outs) == 0 {
		return 0
	}
	n := 0
	for _, o := range outs {
		if o.HorizonHit {
			n++
		}
	}
	return float64(n) / float64(len(outs))
}
