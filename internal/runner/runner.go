// Package runner executes batches of simulation runs on a worker pool.
//
// The experiments of the paper are embarrassingly parallel — Figure 3
// alone is ~50 runs × 10 system sizes × 3 series × 5 panels — so the
// harness fans individual runs out across goroutines. Each run derives its
// seed deterministically from (spec base seed, run index); the outcome set
// of a batch is therefore identical regardless of worker count or
// scheduling, and every run can be reproduced in isolation from its
// recorded seed.
//
// The pool is fault-tolerant: a panic inside a protocol or adversary is
// confined to its run and recorded as a RunError (after a same-seed retry
// that classifies it as deterministic or environmental), cancellation via
// context stops batches cooperatively mid-run, and an optional Journal
// makes interrupted batches resumable without recomputation.
package runner

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// Spec describes one experiment series: a configuration template repeated
// Runs times with derived seeds.
type Spec struct {
	// Name labels the series in reports ("ears/ugf", "push-pull/none", …).
	Name string
	// Base is the configuration template. Its Seed field is ignored;
	// run i uses xrand.Derive(BaseSeed, i).
	Base sim.Config
	// Runs is the number of repetitions (the paper uses 50).
	Runs int
	// BaseSeed seeds the series.
	BaseSeed uint64
}

// RunError records a single run that panicked instead of completing — the
// blast radius of a faulty protocol or adversary is one run, never the
// batch. The triple (Spec name, Run, Seed) reproduces the failure in
// isolation: runner jobs derive the seed deterministically, so
// sim.Run(spec.Base with Seed) replays the exact execution.
type RunError struct {
	// Spec is the name of the series the run belongs to.
	Spec string
	// Run is the run index within the spec.
	Run int
	// Seed is the derived per-run seed, xrand.Derive(BaseSeed, Run).
	Seed uint64
	// Panic is the formatted panic value of the failing attempt.
	Panic string
	// Stack is the goroutine stack captured at the point of the panic.
	Stack string
	// Deterministic classifies the failure: true when the same-seed retry
	// panicked again (the fault replays from (Config, Seed) and will recur
	// on every attempt), false when the retry completed — an environmental
	// failure whose outcome was recovered.
	Deterministic bool
}

func (e *RunError) Error() string {
	class := "environmental, recovered by same-seed retry"
	if e.Deterministic {
		class = "deterministic, reproduced by same-seed retry"
	}
	return fmt.Sprintf("runner: spec %q run %d (seed %d) panicked: %v (%s)",
		e.Spec, e.Run, e.Seed, e.Panic, class)
}

// Result pairs a Spec with the outcomes of its runs, in run order.
type Result struct {
	Spec     Spec
	Outcomes []sim.Outcome
	// Errors records the runs that failed deterministically: the run and
	// its same-seed retry both panicked. The corresponding Outcomes slot
	// holds a placeholder with HorizonHit set, so every cutoff-aware
	// statistic already skips it. Sorted by Run.
	Errors []*RunError
	// Flaky records runs whose first attempt panicked but whose same-seed
	// retry completed (environmental failures). Their Outcomes slot holds
	// the retry's outcome, which entered the statistics normally. Sorted
	// by Run.
	Flaky []*RunError
}

// Failed returns the number of runs that produced no outcome.
func (r *Result) Failed() int { return len(r.Errors) }

// Kept returns the outcomes of the runs that completed, skipping the
// placeholder slots of failed runs. When nothing failed it returns
// Outcomes itself.
func (r *Result) Kept() []sim.Outcome {
	if len(r.Errors) == 0 {
		return r.Outcomes
	}
	failed := make(map[int]bool, len(r.Errors))
	for _, e := range r.Errors {
		failed[e.Run] = true
	}
	kept := make([]sim.Outcome, 0, len(r.Outcomes)-len(r.Errors))
	for i, o := range r.Outcomes {
		if !failed[i] {
			kept = append(kept, o)
		}
	}
	return kept
}

// RunUpdate describes one finished run to an Options.OnRun observer,
// together with cumulative batch counters. Counter fields are snapshots
// taken when the run finished; Done is unique and dense (1..Total across
// all updates), the cumulative counters are monotone but may appear
// out of order across concurrently delivered updates.
type RunUpdate struct {
	// Spec and Run identify the finished run; Seed is its derived seed.
	Spec string
	Run  int
	Seed uint64
	// Done and Total count finished runs (any way) against the batch size.
	Done, Total int
	// Failed and Flaky are the cumulative deterministic-failure and
	// recovered-by-retry counts so far.
	Failed, Flaky int
	// FromJournal marks a run served from the journal without
	// recomputation; Journaled is the cumulative count of such runs.
	FromJournal bool
	Journaled   int
	// Err is set when this run failed deterministically.
	Err *RunError
}

// Options parameterizes ExecuteContext beyond the spec list.
type Options struct {
	// Workers bounds run-level parallelism (≤ 0: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, is called after each finished run (completed,
	// failed, or served from the journal) with the number done and the
	// total. It may be called concurrently from several workers.
	Progress func(done, total int)
	// OnRun, when non-nil, is called after each finished run with the run's
	// identity and cumulative batch counters — the feed behind live
	// progress lines, ETA estimates, and expvar metrics. Like Progress it
	// may be called concurrently from several workers and must be fast; it
	// runs on the worker goroutine.
	OnRun func(u RunUpdate)
	// Trace, when non-nil, supplies a per-run trace sink: it is called
	// before each computed run (never for journal-served ones) and its
	// result becomes the run's Config.Trace. A nil result disables tracing
	// for that run. Sinks that implement io.Closer are closed when the run
	// finishes; a panicking run's sink is closed and a fresh one opened for
	// the same-seed retry, so a trace file never mixes two attempts.
	Trace func(spec Spec, run int) sim.TraceSink
	// Journal, when non-nil, serves previously recorded runs without
	// recomputation and records every newly finished run, making the batch
	// resumable after a crash or SIGINT. Cancelled outcomes are never
	// journaled — their stopping point depends on wall-clock time.
	Journal *Journal
	// MaxWall is the per-run wall-clock watchdog forwarded to
	// sim.Config.MaxWall (0: none). Runs stopped by the watchdog count as
	// cutoffs (HorizonHit) and are recomputed on resume.
	MaxWall time.Duration
}

// Execute runs every spec's repetitions across workers goroutines
// (workers ≤ 0 means GOMAXPROCS). progress, when non-nil, is called after
// each completed run with the number done and the total. The first
// configuration error aborts the batch.
func Execute(specs []Spec, workers int, progress func(done, total int)) ([]Result, error) {
	return ExecuteContext(context.Background(), specs, Options{Workers: workers, Progress: progress})
}

// ExecuteContext is Execute with cancellation, fault isolation, and
// optional journaling.
//
// Fault tolerance semantics:
//   - A run that panics is retried once with the same seed. If the retry
//     completes, its outcome is kept and the incident is recorded in
//     Result.Flaky; if it panics again, the failure is deterministic and
//     is recorded in Result.Errors while the rest of the batch continues.
//   - A configuration error (sim.Run returning an error) still aborts the
//     batch: it means the spec itself is wrong, and every sibling run
//     would fail identically. Workers short-circuit the remaining queued
//     jobs instead of draining them at full cost.
//   - Cancelling ctx stops the batch at the next run boundary and
//     interrupts in-flight runs at their next engine event boundary.
//     ExecuteContext then returns the partial results alongside ctx's
//     error; with a Journal attached, every completed run has already been
//     recorded, so a rerun resumes where the batch stopped.
func ExecuteContext(ctx context.Context, specs []Spec, opts Options) ([]Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		// Run-level parallelism multiplies with in-run commit sharding
		// (Spec.Base.Workers > 1): a batch of sharded runs at full
		// GOMAXPROCS run-level fan-out would oversubscribe the machine
		// shards-fold. Divide the default by the widest shard count so the
		// product stays at GOMAXPROCS; an explicit opts.Workers overrides.
		maxShards := 1
		for i := range specs {
			if w := specs[i].Base.Workers; w > maxShards {
				maxShards = w
			}
		}
		if maxShards > 1 {
			if workers /= maxShards; workers < 1 {
				workers = 1
			}
		}
	}
	type job struct {
		spec, run int
	}
	total := 0
	results := make([]Result, len(specs))
	for i, s := range specs {
		if s.Runs <= 0 {
			return nil, fmt.Errorf("runner: spec %q has Runs = %d", s.Name, s.Runs)
		}
		results[i] = Result{Spec: s, Outcomes: make([]sim.Outcome, s.Runs)}
		total += s.Runs
	}

	// Buffered so the submit loop below streams jobs without blocking on
	// worker hand-off; workers drain at their own pace.
	jobs := make(chan job, total)
	var (
		wg        sync.WaitGroup
		done      atomic.Int64
		failedCt  atomic.Int64
		flakyCt   atomic.Int64
		journaled atomic.Int64
		firstErr  error
		errOnce   sync.Once
		stopped   atomic.Bool // batch failed or cancelled: drain, don't run
		faultMu   sync.Mutex  // guards Errors/Flaky appends across workers
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stopped.Store(true)
	}
	finish := func(u RunUpdate) {
		u.Done = int(done.Add(1))
		u.Total = total
		if opts.Progress != nil {
			opts.Progress(u.Done, total)
		}
		if opts.OnRun != nil {
			u.Failed = int(failedCt.Load())
			u.Flaky = int(flakyCt.Load())
			u.Journaled = int(journaled.Load())
			opts.OnRun(u)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if stopped.Load() || ctx.Err() != nil {
					continue // short-circuit: drain the queue without running
				}
				spec := specs[j.spec]
				cfg := spec.Base
				cfg.Seed = xrand.Derive(spec.BaseSeed, uint64(j.run))
				update := RunUpdate{Spec: spec.Name, Run: j.run, Seed: cfg.Seed}
				if opts.Journal != nil {
					if o, re, ok := opts.Journal.Lookup(spec, j.run); ok {
						update.FromJournal = true
						journaled.Add(1)
						if re != nil {
							failedCt.Add(1)
							update.Err = re
							faultMu.Lock()
							results[j.spec].Errors = append(results[j.spec].Errors, re)
							faultMu.Unlock()
							results[j.spec].Outcomes[j.run] = FailedOutcome(cfg)
						} else {
							results[j.spec].Outcomes[j.run] = o
						}
						finish(update)
						continue
					}
				}
				cfg.Cancel = ctx.Done()
				cfg.MaxWall = opts.MaxWall
				var sinkFn func() sim.TraceSink
				if opts.Trace != nil {
					run := j.run
					sinkFn = func() sim.TraceSink { return opts.Trace(spec, run) }
				}
				o, re, err := Attempt(cfg, spec.Name, j.run, sinkFn)
				if err != nil {
					fail(fmt.Errorf("runner: spec %q run %d: %w", spec.Name, j.run, err))
					continue
				}
				if re != nil {
					if re.Deterministic {
						failedCt.Add(1)
						update.Err = re
						faultMu.Lock()
						results[j.spec].Errors = append(results[j.spec].Errors, re)
						faultMu.Unlock()
						results[j.spec].Outcomes[j.run] = o
						if opts.Journal != nil {
							opts.Journal.Record(spec, j.run, nil, re)
						}
						finish(update)
						continue
					}
					flakyCt.Add(1)
					faultMu.Lock()
					results[j.spec].Flaky = append(results[j.spec].Flaky, re)
					faultMu.Unlock()
				}
				results[j.spec].Outcomes[j.run] = o
				if opts.Journal != nil && !o.Cancelled {
					opts.Journal.Record(spec, j.run, &o, nil)
				}
				finish(update)
			}
		}()
	}
	for si := range specs {
		for r := 0; r < specs[si].Runs; r++ {
			jobs <- job{spec: si, run: r}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range results {
		sortByRun(results[i].Errors)
		sortByRun(results[i].Flaky)
	}
	if err := ctx.Err(); err != nil {
		// Partial results: completed runs are valid (and journaled, when a
		// journal is attached); the rest never ran or were cancelled.
		return results, err
	}
	return results, nil
}

// Attempt executes one run with the pool's fault-isolation semantics,
// outside any pool — the primitive the worker loop and the sweep
// service's lease executor share, so a run leased over HTTP fails and
// retries exactly like a local one.
//
// A panic anywhere in the protocol/adversary/engine stack triggers one
// same-seed retry: a run is a pure function of its Config, so a second
// panic classifies the fault as deterministic (the returned outcome is
// the FailedOutcome placeholder and re.Deterministic is set), while a
// completed retry means the failure was environmental — the retry's
// outcome is returned alongside a non-deterministic re recording the
// incident. sink, when non-nil, supplies a fresh trace sink per attempt
// (a retry never appends to the first attempt's trace); sinks that
// implement io.Closer are closed when their attempt finishes. A non-nil
// err is a configuration error: the spec itself is wrong, and every
// sibling run would fail identically.
func Attempt(cfg sim.Config, specName string, run int, sink func() sim.TraceSink) (o sim.Outcome, re *RunError, err error) {
	var s sim.TraceSink
	if sink != nil {
		s = sink()
		cfg.Trace = s
	}
	o, err, pan, stack := runOnce(cfg)
	if pan != nil {
		re = &RunError{
			Spec: specName, Run: run, Seed: cfg.Seed,
			Panic: fmt.Sprint(pan), Stack: string(stack),
		}
		if s != nil {
			closeSink(s)
			s = sink()
			cfg.Trace = s
		}
		o, err, pan, _ = runOnce(cfg)
		if pan != nil {
			re.Deterministic = true
			closeSink(s)
			return FailedOutcome(cfg), re, nil
		}
		if err != nil {
			// The retry surfaced a configuration error; the panic record is
			// moot — the batch aborts on err.
			re = nil
		}
	}
	closeSink(s)
	if err != nil {
		return sim.Outcome{}, nil, err
	}
	return o, re, nil
}

// closeSink closes a per-run trace sink if it is closable (file-backed
// JSONL sinks are; in-memory recorders are not). Close errors are
// deliberately non-fatal: tracing is observability, it never takes a run's
// outcome down with it.
func closeSink(s sim.TraceSink) {
	if c, ok := s.(io.Closer); ok {
		c.Close()
	}
}

// runOnce executes one simulation, converting a panic anywhere in the
// protocol/adversary/engine stack into a captured (panic value, stack)
// pair instead of crashing the batch.
func runOnce(cfg sim.Config) (o sim.Outcome, err error, pan any, stack []byte) {
	defer func() {
		if r := recover(); r != nil {
			pan, stack = r, debug.Stack()
		}
	}()
	o, err = sim.Run(cfg)
	return
}

// FailedOutcome is the placeholder stored in a failed run's Outcomes
// slot: HorizonHit is set so every cutoff-aware statistic (medians,
// rates, fits) skips the slot without special-casing failures. Exported
// so the sweep service synthesizes the identical placeholder for runs
// whose cached record is a deterministic RunError.
func FailedOutcome(cfg sim.Config) sim.Outcome {
	o := sim.Outcome{N: cfg.N, F: cfg.F, Seed: cfg.Seed, Adversary: "none", HorizonHit: true}
	if cfg.Protocol != nil {
		o.Protocol = cfg.Protocol.Name()
	}
	if cfg.Adversary != nil {
		o.Adversary = cfg.Adversary.Name()
	}
	return o
}

func sortByRun(errs []*RunError) {
	sort.Slice(errs, func(i, j int) bool { return errs[i].Run < errs[j].Run })
}

// Times extracts T(O) from each outcome.
func Times(outs []sim.Outcome) []float64 {
	xs := make([]float64, len(outs))
	for i, o := range outs {
		xs[i] = o.Time
	}
	return xs
}

// Messages extracts M(O) from each outcome.
func Messages(outs []sim.Outcome) []float64 {
	xs := make([]float64, len(outs))
	for i, o := range outs {
		xs[i] = float64(o.Messages)
	}
	return xs
}

// FilterStrategy returns the outcomes whose adversary committed to the
// given strategy label (e.g. "2.1.0").
func FilterStrategy(outs []sim.Outcome, label string) []sim.Outcome {
	sel := make([]sim.Outcome, 0, len(outs))
	for _, o := range outs {
		if o.Strategy == label {
			sel = append(sel, o)
		}
	}
	return sel
}

// GatheredRate returns the fraction of outcomes that achieved rumor
// gathering (0 for an empty slice).
func GatheredRate(outs []sim.Outcome) float64 {
	if len(outs) == 0 {
		return 0
	}
	n := 0
	for _, o := range outs {
		if o.Gathered {
			n++
		}
	}
	return float64(n) / float64(len(outs))
}

// CutoffRate returns the fraction of outcomes cut off by the horizon or
// event limit; such outcomes must not enter complexity statistics.
// Stall-detected outcomes count — Outcome.Stalled implies HorizonHit — so
// cutoff-aware statistics skip them without special-casing.
func CutoffRate(outs []sim.Outcome) float64 {
	if len(outs) == 0 {
		return 0
	}
	n := 0
	for _, o := range outs {
		if o.HorizonHit {
			n++
		}
	}
	return float64(n) / float64(len(outs))
}

// StalledRate returns the fraction of outcomes ended by stall detection
// (Outcome.Stalled): the run made no progress for Config.StallWindow
// consecutive events — a fully partitioned network, say — and terminated
// early instead of spinning to the horizon. A stalled run is a completed,
// classified outcome, not a failure: it never enters Result.Errors, and
// because Stalled implies HorizonHit it is already excluded from
// complexity statistics.
func StalledRate(outs []sim.Outcome) float64 {
	if len(outs) == 0 {
		return 0
	}
	n := 0
	for _, o := range outs {
		if o.Stalled {
			n++
		}
	}
	return float64(n) / float64(len(outs))
}
