package runner

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/sim/trace"
	"github.com/ugf-sim/ugf/internal/xrand"
)

func TestOnRunFeed(t *testing.T) {
	var mu sync.Mutex
	var updates []RunUpdate
	_, err := ExecuteContext(context.Background(), specs(), Options{
		Workers: 4,
		OnRun: func(u RunUpdate) {
			mu.Lock()
			updates = append(updates, u)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 10 {
		t.Fatalf("got %d updates, want 10", len(updates))
	}
	dones := make([]int, len(updates))
	for i, u := range updates {
		dones[i] = u.Done
		if u.Total != 10 {
			t.Errorf("update %d: Total = %d, want 10", i, u.Total)
		}
		if u.Spec != "pp" && u.Spec != "rr" {
			t.Errorf("update %d: unknown spec %q", i, u.Spec)
		}
		if u.Failed != 0 || u.Flaky != 0 || u.Journaled != 0 || u.FromJournal || u.Err != nil {
			t.Errorf("update %d: unexpected failure fields: %+v", i, u)
		}
		spec := specs()[0]
		if u.Spec == "rr" {
			spec = specs()[1]
		}
		if want := xrand.Derive(spec.BaseSeed, uint64(u.Run)); u.Seed != want {
			t.Errorf("update %d: Seed = %d, want derived %d", i, u.Seed, want)
		}
	}
	sort.Ints(dones)
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("Done values not dense 1..10: %v", dones)
		}
	}
}

func TestOnRunReportsJournalHits(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteContext(context.Background(), specs(), Options{Journal: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j, err = OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var mu sync.Mutex
	journaled, fresh := 0, 0
	var final RunUpdate
	_, err = ExecuteContext(context.Background(), specs(), Options{
		Journal: j,
		OnRun: func(u RunUpdate) {
			mu.Lock()
			defer mu.Unlock()
			if u.FromJournal {
				journaled++
			} else {
				fresh++
			}
			if u.Done == u.Total {
				final = u
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if journaled != 10 || fresh != 0 {
		t.Fatalf("resume: %d journal-served, %d computed; want 10/0", journaled, fresh)
	}
	if final.Journaled != 10 {
		t.Fatalf("final update Journaled = %d, want 10", final.Journaled)
	}
}

func TestOnRunCountsDeterministicFailures(t *testing.T) {
	bad := []Spec{{
		Name: "boom",
		Base: sim.Config{N: 6, F: 0, Protocol: panicProto{}},
		Runs: 3, BaseSeed: 5,
	}}
	var mu sync.Mutex
	var failedRuns []int
	maxFailed := 0
	results, err := ExecuteContext(context.Background(), bad, Options{
		Workers: 2,
		OnRun: func(u RunUpdate) {
			mu.Lock()
			defer mu.Unlock()
			if u.Err != nil {
				failedRuns = append(failedRuns, u.Run)
			}
			if u.Failed > maxFailed {
				maxFailed = u.Failed
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Errors) != 3 {
		t.Fatalf("want 3 deterministic failures, got %d", len(results[0].Errors))
	}
	if len(failedRuns) != 3 || maxFailed != 3 {
		t.Fatalf("OnRun saw %d failed updates (cumulative max %d), want 3/3", len(failedRuns), maxFailed)
	}
}

// panicProto panics at the first local step of process 0 — deterministic.
type panicProto struct{}

func (panicProto) Name() string { return "panic" }
func (panicProto) New(envs []sim.Env) []sim.Process {
	return sim.BuildEach(envs, func(env sim.Env) sim.Process { return panicProc{id: env.ID} })
}

type panicProc struct{ id sim.ProcID }

func (p panicProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	if p.id == 0 {
		panic("deterministic test panic")
	}
}
func (p panicProc) Asleep() bool            { return true }
func (p panicProc) Knows(g sim.ProcID) bool { return g == p.id }

func TestTraceFactoryPerRunFiles(t *testing.T) {
	dir := t.TempDir()
	sp := specs()[:1] // "pp", 6 runs
	var mu sync.Mutex
	created := 0
	results, err := ExecuteContext(context.Background(), sp, Options{
		Workers: 3,
		Trace: func(spec Spec, run int) sim.TraceSink {
			mu.Lock()
			created++
			mu.Unlock()
			jl, err := trace.Create(filepath.Join(dir, fmt.Sprintf("%s_run%d.jsonl", spec.Name, run)))
			if err != nil {
				t.Error(err)
				return nil
			}
			return jl
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if created != 6 {
		t.Fatalf("factory called %d times, want 6", created)
	}
	for run := 0; run < 6; run++ {
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf("pp_run%d.jsonl", run)))
		if err != nil {
			t.Fatal(err)
		}
		recs, err := trace.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		// The sink was closed (hence flushed) by the runner: the trace must
		// be complete, one send record per message plus the end marker.
		sends := 0
		for _, r := range recs {
			if r.Kind == "send" {
				sends++
			}
		}
		if int64(sends) != results[0].Outcomes[run].Messages {
			t.Errorf("run %d: trace has %d sends, outcome says %d",
				run, sends, results[0].Outcomes[run].Messages)
		}
		if last := recs[len(recs)-1]; last.Kind != "end" {
			t.Errorf("run %d: trace not terminated: last record %+v", run, last)
		}
	}
	// Tracing must not perturb outcomes.
	plain, err := Execute(sp, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(plain), stripWall(results)) {
		t.Fatal("per-run tracing changed outcomes")
	}
}

func TestProgressSnapshotAndLine(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "fig3a")
	p.Interval = time.Nanosecond // print every update
	p.OnRun(RunUpdate{Spec: "a", Run: 0, Done: 2, Total: 10, Failed: 1, Journaled: 1})
	time.Sleep(5 * time.Millisecond) // give the rate a nonzero time base
	p.OnRun(RunUpdate{Spec: "a", Run: 1, Done: 3, Total: 10, Failed: 1, Journaled: 2})
	s := p.Snapshot()
	if s.Done != 3 || s.Total != 10 || s.Failed != 1 || s.Journaled != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Label != "fig3a" {
		t.Fatalf("label = %q", s.Label)
	}
	// One computed run (3 done - 2 journaled) over >0 elapsed: a rate and
	// an ETA must exist.
	if s.RunsPerSec <= 0 || !s.ETAValid {
		t.Fatalf("rate/ETA missing: %+v", s)
	}
	out := buf.String()
	for _, want := range []string{"fig3a:", "3/10 runs", "1 failed", "2 from journal", "ETA"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress line %q missing %q", out, want)
		}
	}
	buf.Reset()
	p.Finish()
	if got := buf.String(); !strings.Contains(got, "\033[K") {
		t.Errorf("Finish must clear the line, wrote %q", got)
	}
}

func TestProgressStaleUpdatesIgnored(t *testing.T) {
	p := NewProgress(nil, "x")
	p.OnRun(RunUpdate{Done: 5, Total: 10})
	p.OnRun(RunUpdate{Done: 3, Total: 10}) // delivered out of order
	if s := p.Snapshot(); s.Done != 5 {
		t.Fatalf("stale update regressed Done: %+v", s)
	}
}

func TestProgressETADiscountsJournal(t *testing.T) {
	// 10 of 12 done, but 8 came from the journal: the rate must reflect the
	// 2 computed runs, so the ETA for the 2 remaining ≈ elapsed.
	p := NewProgress(nil, "")
	p.OnRun(RunUpdate{Done: 10, Total: 12, Journaled: 8})
	time.Sleep(20 * time.Millisecond)
	s := p.Snapshot()
	if !s.ETAValid {
		t.Fatal("no ETA")
	}
	if ratio := float64(s.ETA) / float64(s.Elapsed); ratio < 0.5 || ratio > 2 {
		t.Fatalf("ETA %v vs elapsed %v: journal runs not discounted (ratio %.2f)", s.ETA, s.Elapsed, ratio)
	}
}
