package runner

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
)

func journalSpecs(calls *atomic.Int64) []Spec {
	return []Spec{
		{Name: "a", Base: sim.Config{N: 8, F: 2, Protocol: countProto{calls: calls}}, Runs: 5, BaseSeed: 11},
		{Name: "b", Base: sim.Config{N: 6, F: 0, Protocol: countProto{calls: calls}}, Runs: 3, BaseSeed: 12},
	}
}

// TestJournalResumeSkipsRecordedRuns: a journaled batch replays entirely
// from the journal — identical results, zero recomputation.
func TestJournalResumeSkipsRecordedRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	var calls atomic.Int64
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ExecuteContext(context.Background(), journalSpecs(&calls), Options{Workers: 2, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 8 {
		t.Fatalf("first pass executed %d runs, want 8", calls.Load())
	}

	calls.Store(0)
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 8 {
		t.Fatalf("journal loaded %d entries, want 8", j2.Len())
	}
	second, err := ExecuteContext(context.Background(), journalSpecs(&calls), Options{Workers: 2, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Errorf("resume recomputed %d runs, want 0", calls.Load())
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("journal round trip changed the results")
	}
}

// TestJournalToleratesTornTail: a crash mid-write leaves a partial final
// line; loading skips it and the affected run is simply recomputed.
func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	var calls atomic.Int64
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteContext(context.Background(), journalSpecs(&calls), Options{Workers: 1, Journal: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"fp":"dead","spec":"a","run":9,"outc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 8 {
		t.Fatalf("torn tail corrupted the load: %d entries, want 8", j2.Len())
	}
}

// TestJournalFingerprintGuardsStaleEntries: entries recorded for a
// different spec (here: another base seed) are never served.
func TestJournalFingerprintGuardsStaleEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	var calls atomic.Int64
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteContext(context.Background(), journalSpecs(&calls), Options{Workers: 1, Journal: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	calls.Store(0)
	changed := journalSpecs(&calls)
	for i := range changed {
		changed[i].BaseSeed += 1000
	}
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, err := ExecuteContext(context.Background(), changed, Options{Workers: 1, Journal: j2}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 8 {
		t.Errorf("stale journal served a changed spec: %d fresh runs, want 8", calls.Load())
	}
}

// TestJournalServesDeterministicFailures: recorded RunErrors resume as
// RunErrors — a known-bad run is not re-detonated on every resume.
func TestJournalServesDeterministicFailures(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	spec := Spec{Name: "bombs", Base: sim.Config{N: 4, Protocol: bombProto{}}, Runs: 2, BaseSeed: 7}
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ExecuteContext(context.Background(), []Spec{spec}, Options{Workers: 1, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if j.ErrorCount() != 2 {
		t.Fatalf("ErrorCount = %d, want 2", j.ErrorCount())
	}
	j.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	second, err := ExecuteContext(context.Background(), []Spec{spec}, Options{Workers: 1, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if len(second[0].Errors) != 2 {
		t.Fatalf("resumed batch reported %d errors, want 2", len(second[0].Errors))
	}
	if !reflect.DeepEqual(first[0].Errors, second[0].Errors) {
		t.Error("journal round trip changed the recorded errors")
	}
}

// TestFingerprintSensitivity: the fingerprint must move with anything that
// determines outcomes, including adversary tuning fields Name() omits.
func TestFingerprintSensitivity(t *testing.T) {
	base := Spec{Name: "s", Base: sim.Config{N: 10, F: 3, Protocol: bombProto{}, Adversary: panicAdv{Trigger: 1}}, Runs: 5, BaseSeed: 1}
	fp := Fingerprint(base)
	mutate := map[string]func(*Spec){
		"name":      func(s *Spec) { s.Name = "t" },
		"runs":      func(s *Spec) { s.Runs = 6 },
		"seed":      func(s *Spec) { s.BaseSeed = 2 },
		"n":         func(s *Spec) { s.Base.N = 11 },
		"f":         func(s *Spec) { s.Base.F = 4 },
		"maxevents": func(s *Spec) { s.Base.MaxEvents = 77 },
		"adversary": func(s *Spec) { s.Base.Adversary = panicAdv{Trigger: 2} },
		"protocol":  func(s *Spec) { s.Base.Protocol = nil },
	}
	for what, mut := range mutate {
		s := base
		mut(&s)
		if Fingerprint(s) == fp {
			t.Errorf("fingerprint ignores %s", what)
		}
	}
	if Fingerprint(base) != fp {
		t.Error("fingerprint not stable")
	}
}
