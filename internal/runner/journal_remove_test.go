package runner

import (
	"bufio"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// TestJournalRemoveLeavesConcurrentReaderIntact: auto-remove after a
// clean sweep must not yank the file out from under a concurrent -resume
// reader. Remove renames before deleting, so a reader holding the file
// open keeps reading every complete line it had, and the original path is
// gone afterwards (no stale journal to resume from, no .removed tomb
// left behind).
func TestJournalRemoveLeavesConcurrentReaderIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	var calls atomic.Int64
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	specs := journalSpecs(&calls)
	if _, err := Execute(specs, 2, nil); err != nil {
		t.Fatal(err)
	}
	for si, s := range specs {
		for r := 0; r < s.Runs; r++ {
			o := FailedOutcome(s.Base)
			o.Seed = uint64(si*100 + r)
			if err := j.Record(s, r, &o, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := j.Len()

	// A concurrent -resume reader: opened before Remove, read after.
	reader, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	if err := j.Remove(); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("journal path still exists after Remove (err = %v)", err)
	}
	if _, err := os.Stat(path + ".removed"); !os.IsNotExist(err) {
		t.Errorf("Remove left a tombstone behind (err = %v)", err)
	}

	lines := 0
	sc := bufio.NewScanner(reader)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("concurrent reader failed mid-file: %v", err)
	}
	if lines != want {
		t.Errorf("concurrent reader saw %d lines, want %d", lines, want)
	}

	// Remove is idempotent: the second call finds nothing and reports no
	// error, the same contract Close has.
	if err := j.Remove(); err != nil {
		t.Errorf("second Remove: %v", err)
	}
}
