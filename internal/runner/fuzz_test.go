package runner

import "testing"

// FuzzJournalTornTail appends an arbitrary byte tail to a journal holding
// two valid records and asserts the resume load neither fails nor loses
// them — the journal's crash-tolerance contract says a torn final write
// costs at most the line being written, never the records before it.
// The seed corpus is the torn-tail table of journal_torn_test.go plus the
// checked-in testdata/fuzz files.
func FuzzJournalTornTail(f *testing.F) {
	for _, tail := range tornTails() {
		f.Add(tail)
	}
	f.Fuzz(func(t *testing.T, tail []byte) {
		if len(tail) > 1<<20 {
			// The loader's line buffer tops out at 16 MiB; a single
			// megaline is already far past any real torn write, and giant
			// inputs only slow the fuzzer down.
			t.Skip("tail too large")
		}
		path, o, re := writeTornJournal(t)
		checkTornResume(t, path, tail, o, re)
	})
}
