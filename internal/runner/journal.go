package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/spec"
)

// Journal is an append-only JSONL record of finished runs that makes a
// batch resumable: every completed outcome (and every deterministic
// failure) is written as one self-contained line keyed by the owning
// spec's fingerprint and the run index. An interrupted sweep — SIGINT, a
// crash, a power cut — loses at most the line being written; reopening the
// journal with resume and rerunning the identical batch serves the
// recorded runs without recomputation and produces byte-identical results,
// because a run is a pure function of (Config, Seed) and Go's JSON float
// encoding round-trips exactly.
//
// Records land in the file through a single O_APPEND write per run, so
// concurrent workers never interleave partial lines; a torn final line
// (crash mid-write) is skipped at load time. Entries whose fingerprint
// does not match any current spec are ignored, so a stale journal can
// never inject outcomes into a changed experiment.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	entries map[journalKey]journalRecord
	errs    int
}

type journalKey struct {
	fp  string
	run int
}

// journalRecord is one JSONL line. Exactly one of Outcome and Error is
// set.
type journalRecord struct {
	Fingerprint string       `json:"fp"`
	Spec        string       `json:"spec"`
	Run         int          `json:"run"`
	Outcome     *sim.Outcome `json:"outcome,omitempty"`
	Error       *RunError    `json:"error,omitempty"`
}

// Fingerprint identifies everything about a Spec that determines its
// outcomes: the series identity, repetition plan, seeds, and the
// outcome-determining content of the base configuration. It delegates to
// spec.SeriesFingerprint — the codebase's single fingerprint
// implementation, shared with the result cache and the golden matrices —
// which encodes registry-typed configurations canonically and falls back
// to printed struct representations for custom protocol/adversary types.
// Outcome-neutral knobs — Workers, Trace, Sample, progress — are
// deliberately excluded, so a journal written at -workers 8 resumes
// cleanly at -workers 1.
func Fingerprint(s Spec) string {
	return spec.SeriesFingerprint(s.Name, s.Runs, s.BaseSeed, s.Base)
}

// OpenJournal opens (or creates) the journal at path. With resume set,
// existing records are loaded and later served by Lookup; otherwise the
// file is truncated and the batch starts from scratch. The caller owns the
// returned journal and must Close it.
func OpenJournal(path string, resume bool) (*Journal, error) {
	j := &Journal{path: path, entries: map[journalKey]journalRecord{}}
	if resume {
		if err := j.load(); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	j.f = f
	return j, nil
}

func (j *Journal) load() error {
	f, err := os.Open(j.path)
	if os.IsNotExist(err) {
		return nil // first run: nothing to resume from
	}
	if err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // KeepPerProcess outcomes can be long lines
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn line from an interrupted write; recompute that run
		}
		if rec.Outcome == nil && rec.Error == nil {
			continue
		}
		j.entries[journalKey{rec.Fingerprint, rec.Run}] = rec
		if rec.Error != nil {
			j.errs++
		}
	}
	return sc.Err()
}

// Lookup returns the recorded outcome or error of the given run, if the
// journal holds one for this exact spec.
func (j *Journal) Lookup(s Spec, run int) (sim.Outcome, *RunError, bool) {
	j.mu.Lock()
	rec, ok := j.entries[journalKey{Fingerprint(s), run}]
	j.mu.Unlock()
	if !ok {
		return sim.Outcome{}, nil, false
	}
	if rec.Error != nil {
		return sim.Outcome{}, rec.Error, true
	}
	return *rec.Outcome, nil, true
}

// Record appends one finished run — an outcome or a deterministic
// RunError — as a single atomic line. Marshal or write failures are
// reported but deliberately non-fatal to the batch: the journal degrades
// to recomputing that run on resume, it never takes the sweep down.
func (j *Journal) Record(s Spec, run int, o *sim.Outcome, re *RunError) error {
	rec := journalRecord{Fingerprint: Fingerprint(s), Spec: s.Name, Run: run, Outcome: o, Error: re}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("runner: journal: record after Close")
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	j.entries[journalKey{rec.Fingerprint, run}] = rec
	if re != nil {
		j.errs++
	}
	return nil
}

// Len returns the number of runs the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// ErrorCount returns the number of recorded deterministic failures,
// loaded and newly written combined.
func (j *Journal) ErrorCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errs
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close flushes and closes the journal file. It is idempotent, so the
// usual "defer Close, Remove on success" pattern is safe.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Remove closes the journal and deletes its file — called after a sweep
// completes cleanly, when there is nothing left to resume.
//
// The deletion goes through a rename first (the same advisory path torn-
// tail handling takes): a concurrent -resume reader that already opened
// the file keeps reading its complete contents through the open
// descriptor, and a reader that races the deletion sees either the intact
// journal or a clean not-exist — never a half-deleted file reused by an
// unrelated journal at the same path.
func (j *Journal) Remove() error {
	if err := j.Close(); err != nil {
		return err
	}
	tomb := j.path + ".removed"
	if err := os.Rename(j.path, tomb); err != nil {
		if os.IsNotExist(err) {
			return nil // already removed; nothing to resume either way
		}
		return err
	}
	return os.Remove(tomb)
}
