package live

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/ugf-sim/ugf/internal/live/wire"
)

// TCPTransport carries frames over loopback TCP sockets: one listener per
// node (its inbox address), with sender-side connections dialed lazily per
// directed link on first use. Frames travel exactly as wire encodes them —
// the u32 length prefix doubles as the stream delimiter — so a packet
// capture of a live run is a sequence of wire frames.
//
// It exists to prove the runtime against a real kernel-mediated byte
// stream (socket buffering, partial reads, connection setup); the channel
// transport remains the default. N² lazy connections make it a small-N
// tool.
type TCPTransport struct {
	n     int
	lns   []net.Listener
	addrs []string

	streams []chan []byte

	connMu sync.Mutex
	conns  map[int]*tcpConn // directed link key from*n+to

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// tcpConn serializes frame writes on one directed link.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// NewTCPTransport listens on n loopback ports and starts the accept and
// read loops. The caller must Close it (the runtime does).
func NewTCPTransport(n int) (*TCPTransport, error) {
	tr := &TCPTransport{
		n:       n,
		lns:     make([]net.Listener, n),
		addrs:   make([]string, n),
		streams: make([]chan []byte, n),
		conns:   make(map[int]*tcpConn),
		done:    make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tr.Close()
			return nil, fmt.Errorf("live: listen for node %d: %w", i, err)
		}
		tr.lns[i] = ln
		tr.addrs[i] = ln.Addr().String()
		tr.streams[i] = make(chan []byte, chanBuffer)
		tr.wg.Add(1)
		go tr.acceptLoop(i, ln)
	}
	return tr, nil
}

func (tr *TCPTransport) acceptLoop(id int, ln net.Listener) {
	defer tr.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		tr.wg.Add(1)
		go tr.readLoop(id, c)
	}
}

// readLoop moves whole frames from one accepted connection into node id's
// stream, re-attaching the length prefix so the stream carries the same
// framed bytes the channel transport does.
func (tr *TCPTransport) readLoop(id int, c net.Conn) {
	defer tr.wg.Done()
	defer c.Close()
	br := bufio.NewReader(c)
	for {
		var pfx [4]byte
		if _, err := io.ReadFull(br, pfx[:]); err != nil {
			return // peer closed (clean between frames) or transport down
		}
		size := binary.BigEndian.Uint32(pfx[:])
		if size == 0 || size > wire.MaxFrameSize {
			return // poisoned stream; drop the connection
		}
		frame := make([]byte, 4+size)
		copy(frame, pfx[:])
		if _, err := io.ReadFull(br, frame[4:]); err != nil {
			return
		}
		select {
		case tr.streams[id] <- frame:
		case <-tr.done:
			return
		}
	}
}

// Send implements Transport, dialing the link's connection on first use.
func (tr *TCPTransport) Send(from, to int, frame []byte) error {
	if to < 0 || to >= tr.n {
		return fmt.Errorf("live: send to node %d of %d", to, tr.n)
	}
	select {
	case <-tr.done:
		return ErrTransportClosed
	default:
	}
	tc, err := tr.conn(from, to)
	if err != nil {
		return err
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if _, err := tc.c.Write(frame); err != nil {
		return fmt.Errorf("live: write %d→%d: %w", from, to, err)
	}
	return nil
}

func (tr *TCPTransport) conn(from, to int) (*tcpConn, error) {
	key := from*tr.n + to
	tr.connMu.Lock()
	defer tr.connMu.Unlock()
	if tc, ok := tr.conns[key]; ok {
		return tc, nil
	}
	c, err := net.Dial("tcp", tr.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("live: dial %d→%d: %w", from, to, err)
	}
	tc := &tcpConn{c: c}
	tr.conns[key] = tc
	return tc, nil
}

// Recv implements Transport.
func (tr *TCPTransport) Recv(id int) <-chan []byte { return tr.streams[id] }

// Close implements Transport.
func (tr *TCPTransport) Close() error {
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return nil
	}
	tr.closed = true
	close(tr.done)
	tr.mu.Unlock()

	var errs []error
	for _, ln := range tr.lns {
		if ln != nil {
			if err := ln.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	tr.connMu.Lock()
	for _, tc := range tr.conns {
		tc.c.Close()
	}
	tr.connMu.Unlock()
	tr.wg.Wait()
	return errors.Join(errs...)
}
