package live

import (
	"github.com/ugf-sim/ugf/internal/sim"
)

// interposer is the UGF adversary recast as a network middlebox: it sits
// on every link and decides, per message, whether the network drops,
// duplicates, corrupts, or delays it, and per (node, step) whether the
// node's sends are omitted — plus a frozen crash schedule applied by the
// coordinator. Every verdict is a pure hash of the plans' seeds and the
// message coordinates (sim.FaultRoll), never of wall-clock time or arrival
// order, so a live run's fault pattern is reproducible bit for bit and —
// for the shared link-fault plan — identical to the simulator's on the
// same seed. All methods are pure functions; node goroutines call them
// concurrently.
type interposer struct {
	faults *sim.FaultPlan
	delay  *DelayPlan
	omit   *OmitPlan
}

func newInterposer(cfg *Config) *interposer {
	itp := &interposer{}
	if cfg.Faults.Active() {
		itp.faults = cfg.Faults
	}
	if cfg.Delay != nil && cfg.Delay.Prob > 0 {
		itp.delay = cfg.Delay
	}
	if cfg.Omit != nil && cfg.Omit.Prob > 0 {
		itp.omit = cfg.Omit
	}
	return itp
}

// omitted reports whether node p's sends at step t are all suppressed,
// mirroring the simulator's per-step omission flag (Control.SetOmitFrom):
// omitted sends count in M(O) but never reach the network.
func (itp *interposer) omitted(p sim.ProcID, t sim.Step) bool {
	if itp.omit == nil {
		return false
	}
	return sim.FaultRoll(itp.omit.Seed, sim.DomainLiveOmit,
		uint64(p), uint64(t)) < itp.omit.Prob
}

// linkFault returns the fault plan's verdict for one message — the same
// FaultPlan.Roll the simulator's commit path uses, so a live and a
// simulated run with the same plan agree per message.
func (itp *interposer) linkFault(from, to sim.ProcID, sentAt sim.Step, seq int64) sim.LinkFault {
	if itp.faults == nil {
		return sim.FaultNone
	}
	return itp.faults.Roll(from, to, sentAt, seq)
}

// extraDelay returns the additional in-flight steps the interposer holds
// this message for, beyond the baseline delivery delay of 1. One roll
// decides both the gate and the magnitude: a message delayed at all gains
// a uniform 1..Max extra steps.
func (itp *interposer) extraDelay(from, to sim.ProcID, sentAt sim.Step, seq int64) sim.Step {
	if itp.delay == nil {
		return 0
	}
	x := sim.FaultRoll(itp.delay.Seed, sim.DomainLiveDelay,
		uint64(from), uint64(to), uint64(sentAt), uint64(seq))
	if x >= itp.delay.Prob {
		return 0
	}
	d := 1 + sim.Step(x/itp.delay.Prob*float64(itp.delay.Max))
	if d > itp.delay.Max {
		d = itp.delay.Max
	}
	return d
}

// corruptBit picks which payload bit a corrupt verdict flips on the real
// frame. Any deterministic function of the message coordinates works —
// the receiver detects the damage through the payload checksum, it never
// reads the value — so this is a cheap mix, not another hash roll.
func corruptBit(from, to sim.ProcID, sentAt sim.Step, seq int64) uint64 {
	return uint64(seq)*0x9e3779b97f4a7c15 ^ uint64(sentAt)<<17 ^
		uint64(from)<<9 ^ uint64(to)
}
