package live_test

import (
	"reflect"
	"strings"
	"testing"

	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/live"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/simtest"
	"github.com/ugf-sim/ugf/internal/xrand"
)

func proto(t testing.TB, name string) sim.Protocol {
	t.Helper()
	p, ok := gossip.ByName(name)
	if !ok {
		t.Fatalf("protocol %q not in registry", name)
	}
	return p
}

// TestLiveMatchesSimExactly is the oracle check at its strictest: for
// configs both runtimes cover (baseline network + link-fault plan), a
// live run over real goroutine nodes and wire frames produces the same
// Outcome as the simulator bit for bit — same TEnd, Quiescence, Messages,
// per-kind counts, per-process counters, everything up to
// simtest.Normalize (wall times and the sim-only scheduler heap
// counters, which stay zero live).
func TestLiveMatchesSimExactly(t *testing.T) {
	protocols := []string{"push-pull", "ears", "push", "doubling", "round-robin"}
	plans := []*sim.FaultPlan{
		nil,
		{Seed: 0xFA01, Drop: 0.1, Duplicate: 0.05, Corrupt: 0.03},
	}
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		protocols = []string{"push-pull", "ears"}
		seeds = []uint64{1}
	}
	for _, name := range protocols {
		for _, plan := range plans {
			for _, seed := range seeds {
				simCfg := sim.Config{
					N: 48, Protocol: proto(t, name), Seed: seed,
					Faults: plan, KeepPerProcess: true,
				}
				want, err := sim.Run(simCfg)
				if err != nil {
					t.Fatalf("%s/faults=%v/seed=%d: sim: %v", name, plan != nil, seed, err)
				}
				liveCfg, err := live.FromSimConfig(simCfg)
				if err != nil {
					t.Fatalf("%s: FromSimConfig: %v", name, err)
				}
				got, err := live.Run(liveCfg)
				if err != nil {
					t.Fatalf("%s/faults=%v/seed=%d: live: %v", name, plan != nil, seed, err)
				}
				if diffs := simtest.DiffOutcomes(got, want); len(diffs) != 0 {
					t.Errorf("%s/faults=%v/seed=%d: live diverges from sim:\n  %s",
						name, plan != nil, seed, strings.Join(diffs, "\n  "))
				}
				if got.Gathered != want.Gathered {
					t.Errorf("%s/faults=%v/seed=%d: Gathered: live=%v sim=%v",
						name, plan != nil, seed, got.Gathered, want.Gathered)
				}
			}
		}
	}
}

// TestLiveDeterministic pins that a live run is a pure function of its
// Config even with every interposer injection active: identical outcomes
// (up to wall times) and identical event streams across repeated runs,
// despite real goroutine concurrency underneath.
func TestLiveDeterministic(t *testing.T) {
	run := func() (sim.Outcome, []sim.TraceEvent) {
		var rec sim.Recorder
		o, err := live.Run(live.Config{
			N: 32, F: 4, Protocol: proto(t, "push-pull"), Seed: 77,
			Faults:  &sim.FaultPlan{Seed: 9, Drop: 0.08, Duplicate: 0.04, Corrupt: 0.04},
			Delay:   &live.DelayPlan{Seed: 11, Prob: 0.2, Max: 3},
			Omit:    &live.OmitPlan{Seed: 13, Prob: 0.1},
			Crashes: live.DeriveCrashes(15, 32, 4, 6),
			Trace:   &rec, KeepPerProcess: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return o.StripWall(), rec.Events
	}
	o1, tr1 := run()
	o2, tr2 := run()
	if !reflect.DeepEqual(o1, o2) {
		t.Errorf("outcomes differ across identical runs:\n first  %+v\n second %+v", o1, o2)
	}
	if len(tr1) != len(tr2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(tr1), len(tr2))
	}
	for i := range tr1 {
		if !reflect.DeepEqual(tr1[i], tr2[i]) {
			t.Fatalf("trace event %d differs:\n first  %+v\n second %+v", i, tr1[i], tr2[i])
		}
	}
}

// TestLiveSeedSensitivity guards against a degenerate determinism: runs
// with different seeds must not be identical.
func TestLiveSeedSensitivity(t *testing.T) {
	outs := make([]sim.Outcome, 2)
	for i, seed := range []uint64{xrand.Derive(100, 0), xrand.Derive(100, 1)} {
		o, err := live.Run(live.Config{N: 32, Protocol: proto(t, "push-pull"), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = o.StripWall()
	}
	if reflect.DeepEqual(outs[0], outs[1]) {
		t.Error("different seeds produced identical outcomes")
	}
}

func TestConfigValidate(t *testing.T) {
	pp := proto(t, "push-pull")
	cases := []struct {
		name string
		cfg  live.Config
	}{
		{"no processes", live.Config{N: 0, Protocol: pp}},
		{"negative F", live.Config{N: 4, F: -1, Protocol: pp}},
		{"F too large", live.Config{N: 4, F: 4, Protocol: pp}},
		{"nil protocol", live.Config{N: 4}},
		{"negative horizon", live.Config{N: 4, Protocol: pp, Horizon: -1}},
		{"negative max events", live.Config{N: 4, Protocol: pp, MaxEvents: -1}},
		{"bad delay plan", live.Config{N: 4, Protocol: pp, Delay: &live.DelayPlan{Prob: 0.5}}},
		{"bad omit plan", live.Config{N: 4, Protocol: pp, Omit: &live.OmitPlan{Prob: 1.5}}},
		{"crashes over budget", live.Config{N: 4, F: 0, Protocol: pp, Crashes: []live.Crash{{Proc: 1, At: 1}}}},
		{"crash of unknown process", live.Config{N: 4, F: 2, Protocol: pp, Crashes: []live.Crash{{Proc: 9, At: 1}}}},
		{"crash at step 0", live.Config{N: 4, F: 2, Protocol: pp, Crashes: []live.Crash{{Proc: 1, At: 0}}}},
		{"double crash", live.Config{N: 4, F: 2, Protocol: pp, Crashes: []live.Crash{{Proc: 1, At: 1}, {Proc: 1, At: 2}}}},
	}
	for _, tc := range cases {
		if _, err := live.Run(tc.cfg); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestFromSimConfigRejects(t *testing.T) {
	pp := proto(t, "push-pull")
	base := sim.Config{N: 16, Protocol: pp, Seed: 1}
	cases := []struct {
		name string
		mut  func(*sim.Config)
		want string
	}{
		{"adversary", func(c *sim.Config) { c.Adversary = stubAdversary{} }, "adversary"},
		{"sampling", func(c *sim.Config) { c.SampleEvery = 4 }, "sampling"},
		{"interval stats", func(c *sim.Config) { c.StatsEvery = 4 }, "interval-stats"},
		{"wall watchdog", func(c *sim.Config) { c.MaxWall = 1 }, "wall-clock"},
		{"cancel channel", func(c *sim.Config) { c.Cancel = make(chan struct{}) }, "wall-clock"},
		{"workers", func(c *sim.Config) { c.Workers = 4 }, "Workers"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		_, err := live.FromSimConfig(cfg)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// The supported subset projects through field by field.
	cfg := base
	cfg.F = 3
	cfg.Horizon = 500
	cfg.MaxEvents = 10000
	cfg.StallWindow = 64
	cfg.Faults = &sim.FaultPlan{Seed: 2, Drop: 0.1}
	cfg.KeepPerProcess = true
	got, err := live.FromSimConfig(cfg)
	if err != nil {
		t.Fatalf("supported config rejected: %v", err)
	}
	want := live.Config{
		N: 16, F: 3, Protocol: pp, Seed: 1,
		Horizon: 500, MaxEvents: 10000, StallWindow: 64,
		Faults: cfg.Faults, KeepPerProcess: true,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("projection mismatch:\n got  %+v\n want %+v", got, want)
	}
}

type stubAdversary struct{}

func (stubAdversary) Name() string                                       { return "stub" }
func (stubAdversary) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance { return nil }

func TestDeriveCrashes(t *testing.T) {
	const n, f = 40, 6
	const window = sim.Step(10)
	crashes := live.DeriveCrashes(42, n, f, window)
	if len(crashes) == 0 || len(crashes) > f {
		t.Fatalf("got %d crashes, want 1..%d", len(crashes), f)
	}
	seen := make(map[sim.ProcID]bool)
	for _, c := range crashes {
		if c.Proc < 0 || int(c.Proc) >= n {
			t.Errorf("victim %d out of range", c.Proc)
		}
		if seen[c.Proc] {
			t.Errorf("victim %d crashes twice", c.Proc)
		}
		seen[c.Proc] = true
		if c.At < 1 || c.At > window {
			t.Errorf("crash of %d at step %d outside [1, %d]", c.Proc, c.At, window)
		}
	}
	if !reflect.DeepEqual(crashes, live.DeriveCrashes(42, n, f, window)) {
		t.Error("DeriveCrashes is not deterministic")
	}
	if len(live.DeriveCrashes(42, n, 0, window)) != 0 {
		t.Error("f=0 returned crashes")
	}
}
