package live_test

import (
	"strings"
	"testing"

	"github.com/ugf-sim/ugf/internal/live"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/simtest"
)

// TestTCPTransportMatchesSim runs the live runtime over real loopback TCP
// sockets — every frame crosses the kernel's network stack — and holds
// the outcome to the same bit-exact oracle equality as the in-process
// transport. The coordinator's barrier, not the transport, is what makes
// the run deterministic; this is the test that proves it.
func TestTCPTransportMatchesSim(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback sockets in -short")
	}
	for _, name := range []string{"push-pull", "ears"} {
		for _, seed := range []uint64{1, 2} {
			simCfg := sim.Config{
				N: 12, Protocol: proto(t, name), Seed: seed,
				Faults:         &sim.FaultPlan{Seed: 5, Drop: 0.1, Duplicate: 0.05, Corrupt: 0.05},
				KeepPerProcess: true,
			}
			want, err := sim.Run(simCfg)
			if err != nil {
				t.Fatalf("%s/seed=%d: sim: %v", name, seed, err)
			}
			liveCfg, err := live.FromSimConfig(simCfg)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := live.NewTCPTransport(simCfg.N)
			if err != nil {
				t.Fatalf("%s/seed=%d: transport: %v", name, seed, err)
			}
			liveCfg.Transport = tr
			got, err := live.Run(liveCfg)
			if err != nil {
				t.Fatalf("%s/seed=%d: live over TCP: %v", name, seed, err)
			}
			if diffs := simtest.DiffOutcomes(got, want); len(diffs) != 0 {
				t.Errorf("%s/seed=%d: TCP run diverges from sim:\n  %s",
					name, seed, strings.Join(diffs, "\n  "))
			}
		}
	}
}
