package live

import (
	"errors"
	"fmt"
	"sync"
)

// Transport moves framed wire messages between live nodes. Frames are the
// length-prefixed byte strings of internal/live/wire (wire.AppendFrame);
// the transport treats them as opaque and must deliver each frame intact,
// exactly once, to the stream of its addressee. Ordering across senders is
// NOT required — the runtime's step barrier plus the envelope sort keys
// restore a deterministic delivery order — but frames from one sender to
// one receiver must not be reordered within a step (both built-in
// transports are FIFO per link, which is stronger).
//
// Send transfers ownership of the frame slice to the transport; callers
// must not reuse it. Implementations must be safe for concurrent Send
// calls from distinct senders.
type Transport interface {
	// Send routes one frame from node from to node to. It may block while
	// the receiver's stream is full; it must return an error rather than
	// block forever once Close has been called.
	Send(from, to int, frame []byte) error
	// Recv returns node id's incoming frame stream. The runtime attaches
	// exactly one reader goroutine per stream.
	Recv(id int) <-chan []byte
	// Close tears the transport down: pending and future Sends unblock
	// with ErrTransportClosed. A transport with its own reader goroutines
	// (TCP) also closes its Recv streams; the channel transport cannot
	// close a stream a blocked sender may still hold, so runtime readers
	// must additionally watch a stop signal of their own. Safe to call
	// more than once.
	Close() error
}

// ErrTransportClosed is returned by Send after Close.
var ErrTransportClosed = errors.New("live: transport closed")

// chanBuffer is the per-node stream depth of the channel transport. The
// step barrier bounds the number of unacknowledged frames, and receiver
// goroutines drain continuously, so the buffer only smooths bursts; Send
// blocking on a momentarily full channel is correct, not a deadlock.
const chanBuffer = 256

// ChanTransport is the in-process transport: one buffered channel per
// node. It is the default and the fastest — frames move by reference, no
// serialization beyond the wire encoding itself.
type ChanTransport struct {
	streams []chan []byte

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// NewChanTransport builds a channel transport for n nodes.
func NewChanTransport(n int) *ChanTransport {
	tr := &ChanTransport{
		streams: make([]chan []byte, n),
		done:    make(chan struct{}),
	}
	for i := range tr.streams {
		tr.streams[i] = make(chan []byte, chanBuffer)
	}
	return tr
}

// Send implements Transport.
func (tr *ChanTransport) Send(from, to int, frame []byte) error {
	if to < 0 || to >= len(tr.streams) {
		return fmt.Errorf("live: send to node %d of %d", to, len(tr.streams))
	}
	select {
	case tr.streams[to] <- frame:
		return nil
	case <-tr.done:
		return ErrTransportClosed
	}
}

// Recv implements Transport.
func (tr *ChanTransport) Recv(id int) <-chan []byte { return tr.streams[id] }

// Close implements Transport.
func (tr *ChanTransport) Close() error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.closed {
		return nil
	}
	tr.closed = true
	// Only the done signal closes: closing a stream while a racing Send is
	// blocked on it would panic, and the runtime's readers stop through
	// their own signal anyway.
	close(tr.done)
	return nil
}
