package live

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ugf-sim/ugf/internal/live/wire"
	"github.com/ugf-sim/ugf/internal/sim"
)

// runtime is the live coordinator: it owns the logical clock and every
// piece of global bookkeeping, and drives the node goroutines through the
// step barrier. The division of labor mirrors the engine's phase
// discipline — nodes run their protocol Steps and sending-side interposer
// concurrently; the coordinator serializes everything the engine does
// serially (crash application, commit hooks, sleep/wake transitions,
// stats, trace emission) in ascending process order, which is what keeps
// live runs deterministic and their traces auditable by the same checker.
type runtime struct {
	cfg         Config
	n           int
	horizon     sim.Step
	maxEvents   int64
	stallWindow int64

	tr    Transport
	itp   *interposer
	nodes []*node
	procs []sim.Process

	doneCh   chan *node
	notifyCh chan struct{}
	stop     chan struct{}
	recvStop chan struct{}
	nodeWG   sync.WaitGroup
	recvWG   sync.WaitGroup

	acked           atomic.Int64 // frames staged by receivers, cumulative
	framesForwarded int64        // frames handed to the transport, cumulative

	errMu    sync.Mutex
	firstErr error

	// Logical state, coordinator-owned.
	now          sim.Step
	awake        []bool
	crashStep    []sim.Step // 0 = alive; else the step the crash took effect
	crashedSnap  []bool     // immutable snapshot shipped to nodes; copy-on-write
	pendingCrash []Crash    // schedule, sorted by (At, Proc), not yet applied
	awakeCorrect int
	crashCount   int

	arrivals    arrivalHeap
	inflight    int64
	inflightTo  []int64
	inflightCor int64 // in flight to correct processes

	eventCount int64
	msgTotal   int64
	st         sim.Stats
	stallSig   int64
	stallBase  int64
	horizonHit bool
	stalled    bool

	// Per-step scratch.
	dueCnt   []int64
	dueGood  []int64 // due arrivals that passed their checksum
	touched  []sim.ProcID
	parts    []*node
	crashEv  []sim.TraceEvent
	arrMerge []mergedArr

	wall sim.WallStats
}

// mergedArr is one arrival-phase trace event with its global sort key,
// collected across participants before emission.
type mergedArr struct {
	key arrKey
	ev  sim.TraceEvent
}

// arrival is one in-flight message's delivery appointment. corrupt rides
// along because it changes participation: a corrupt arrival is dropped in
// the deliver phase and so cannot, on its own, make a sleeping receiver
// take a local step.
type arrival struct {
	at      sim.Step
	to      sim.ProcID
	corrupt bool
}

// arrivalHeap is a min-heap on (at, to): the coordinator's calendar.
type arrivalHeap []arrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].to < h[j].to
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func newRuntime(cfg Config) (*runtime, error) {
	initStart := time.Now()
	n := cfg.N
	r := &runtime{
		cfg:          cfg,
		n:            n,
		horizon:      cfg.Horizon,
		maxEvents:    cfg.MaxEvents,
		stallWindow:  cfg.StallWindow,
		itp:          newInterposer(&cfg),
		doneCh:       make(chan *node, n),
		notifyCh:     make(chan struct{}, 1),
		stop:         make(chan struct{}),
		recvStop:     make(chan struct{}),
		awake:        make([]bool, n),
		crashStep:    make([]sim.Step, n),
		inflightTo:   make([]int64, n),
		dueCnt:       make([]int64, n),
		dueGood:      make([]int64, n),
		awakeCorrect: n,
	}
	if r.horizon == 0 {
		r.horizon = sim.DefaultHorizon
	}
	if r.maxEvents == 0 {
		r.maxEvents = sim.DefaultMaxEvents
	}
	r.pendingCrash = append(r.pendingCrash, cfg.Crashes...)
	sort.Slice(r.pendingCrash, func(i, j int) bool {
		a, b := r.pendingCrash[i], r.pendingCrash[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Proc < b.Proc
	})

	envs := make([]sim.Env, n)
	for p := 0; p < n; p++ {
		r.awake[p] = true
		envs[p] = sim.Env{ID: sim.ProcID(p), N: n, F: cfg.F, RNG: sim.ProcRNG(cfg.Seed, sim.ProcID(p))}
	}
	r.procs = cfg.Protocol.New(envs)
	if len(r.procs) != n {
		return nil, fmt.Errorf("live: protocol %q built %d processes for N=%d", cfg.Protocol.Name(), len(r.procs), n)
	}

	r.tr = cfg.Transport
	if r.tr == nil {
		r.tr = NewChanTransport(n)
	}

	r.nodes = make([]*node, n)
	for p := 0; p < n; p++ {
		nd := &node{
			id:     sim.ProcID(p),
			n:      n,
			proc:   r.procs[p],
			out:    sim.NewOutbox(sim.ProcID(p), n),
			itp:    r.itp,
			tr:     r.tr,
			trace:  cfg.Trace != nil,
			stepCh: make(chan stepReq, 1),
		}
		r.nodes[p] = nd
		r.nodeWG.Add(1)
		go func() {
			defer r.nodeWG.Done()
			nd.loop(r.doneCh, r.stop)
		}()
		r.recvWG.Add(1)
		go r.receive(nd)
	}
	r.wall.Init = time.Since(initStart)
	return r, nil
}

// receive is node nd's reader goroutine: decode incoming frames, stage
// them on the node, and acknowledge each one so the coordinator's step
// barrier can observe that every forwarded frame has physically landed.
// It never blocks on anything the coordinator holds — staging is a short
// critical section and the ack is an atomic plus a non-blocking ping — so
// transports can always drain.
func (r *runtime) receive(nd *node) {
	defer r.recvWG.Done()
	stream := r.tr.Recv(int(nd.id))
	for {
		select {
		case frame, ok := <-stream:
			if !ok {
				return
			}
			r.stageFrame(nd, frame)
			r.acked.Add(1)
			select {
			case r.notifyCh <- struct{}{}:
			default:
			}
		case <-r.recvStop:
			return
		}
	}
}

// stageFrame decodes one frame and stages the arrival. A failed payload
// checksum stages the intact header as a corrupt arrival (detected loss);
// any other decode failure poisons the run — the runtime only ever sees
// its own frames, so garbage means a transport bug.
func (r *runtime) stageFrame(nd *node, frame []byte) {
	body, err := wire.ParseFrame(frame)
	if err != nil {
		r.setErr(fmt.Errorf("live: node %d received an unparsable frame: %w", nd.id, err))
		return
	}
	env, err := wire.DecodeEnvelope(body)
	corrupt := false
	switch {
	case errors.Is(err, wire.ErrPayloadChecksum):
		corrupt = true
	case err != nil:
		r.setErr(fmt.Errorf("live: node %d received an undecodable envelope: %w", nd.id, err))
		return
	}
	if env.To != nd.id {
		r.setErr(fmt.Errorf("live: node %d received a frame addressed to %d", nd.id, env.To))
		return
	}
	nd.stage(inMsg{env: env, corrupt: corrupt})
}

func (r *runtime) setErr(err error) {
	r.errMu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.errMu.Unlock()
}

func (r *runtime) getErr() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.firstErr
}

// shutdown tears the run down in deadlock-free order: stop the nodes
// (unblocking any in-flight transport Send first by closing the
// transport), then the receivers.
func (r *runtime) shutdown() {
	close(r.stop)
	r.tr.Close()
	r.nodeWG.Wait()
	close(r.recvStop)
	r.recvWG.Wait()
}

func (r *runtime) quiescent() bool {
	return r.awakeCorrect == 0 && r.inflightCor == 0
}

// nextEventTime mirrors the engine's scheduler: with any awake (hence
// correct) process the next active step is now+1; otherwise the earliest
// calendar arrival. Steps in between are provably inert.
func (r *runtime) nextEventTime() (sim.Step, bool) {
	next := sim.Step(math.MaxInt64)
	if r.awakeCorrect > 0 {
		next = r.now + 1
	}
	if len(r.arrivals) > 0 && r.arrivals[0].at < next {
		next = r.arrivals[0].at
	}
	return next, next != sim.Step(math.MaxInt64)
}

func (r *runtime) run() (sim.Outcome, error) {
	runStart := time.Now()
	for !r.quiescent() {
		ok, err := r.stepOnce()
		if err != nil {
			return sim.Outcome{}, err
		}
		if !ok {
			break
		}
	}
	if r.cfg.Trace != nil {
		note := "quiescence"
		switch {
		case r.stalled:
			note = "stalled"
		case r.horizonHit:
			note = "horizon"
		}
		r.cfg.Trace.Event(sim.TraceEvent{Kind: sim.TraceEnd, Step: r.now, Proc: -1, Other: -1, Note: note})
	}
	r.wall.Run = time.Since(runStart)
	return r.outcome(), nil
}

// stepOnce executes one active global step, engine-ordered: cutoff and
// stall checks, crash application, deliveries, concurrent local steps
// behind the ack barrier, serial commits, trace emission.
func (r *runtime) stepOnce() (bool, error) {
	t, ok := r.nextEventTime()
	if !ok {
		r.horizonHit = true
		return false, nil
	}
	if t > r.horizon || r.eventCount > r.maxEvents {
		r.horizonHit = true
		return false, nil
	}
	if r.stallWindow > 0 {
		// Same progress signature as the engine: deliveries and lifecycle
		// transitions; a full event window without one is a stall.
		sig := r.st.Deliveries + r.st.Sleeps + r.st.Wakes + r.st.Crashes
		if sig != r.stallSig {
			r.stallSig = sig
			r.stallBase = r.eventCount
		} else if r.eventCount-r.stallBase >= r.stallWindow {
			r.stalled = true
			r.horizonHit = true
			return false, nil
		}
	}
	r.now = t
	r.st.ActiveSteps++

	// Crash application — the interposer's stand-in for the adversary's
	// Observe hook: effective before this step's deliveries and sends.
	r.crashEv = r.crashEv[:0]
	for len(r.pendingCrash) > 0 && r.pendingCrash[0].At <= t {
		r.applyCrash(r.pendingCrash[0].Proc, t)
		r.pendingCrash = r.pendingCrash[1:]
	}

	// Pop this step's arrivals off the calendar; nodes hold the actual
	// bytes, the coordinator only accounts them.
	r.touched = r.touched[:0]
	for len(r.arrivals) > 0 && r.arrivals[0].at <= t {
		a := heap.Pop(&r.arrivals).(arrival)
		r.inflight--
		if r.crashStep[a.to] == 0 {
			r.inflightTo[a.to]--
			r.inflightCor--
		}
		if r.dueCnt[a.to] == 0 {
			r.touched = append(r.touched, a.to)
		}
		r.dueCnt[a.to]++
		if !a.corrupt {
			r.dueGood[a.to]++
		}
	}

	// Fan the step out to its participants: every awake correct node,
	// every correct node with arrivals due, and — as drain-only zombies —
	// crashed nodes with arrivals due.
	r.parts = r.parts[:0]
	for p := 0; p < r.n; p++ {
		crashed := r.crashStep[p] != 0
		zombie := crashed && r.dueCnt[p] > 0
		stepper := !crashed && (r.awake[p] || r.dueGood[p] > 0)
		// All-corrupt due set at a sleeping correct node: the deliver
		// phase discards it without a local step.
		drain := !crashed && !stepper && r.dueCnt[p] > 0
		if !zombie && !stepper && !drain {
			continue
		}
		r.parts = append(r.parts, r.nodes[p])
		r.nodes[p].zombie = zombie || drain
		r.nodes[p].stepCh <- stepReq{t: t, crashed: r.crashedSnap, zombie: zombie, drain: drain}
	}

	// Barrier, phase 1: every participant has finished its local step.
	for pending := len(r.parts); pending > 0; pending-- {
		<-r.doneCh
	}
	// Phase 2: every frame those steps forwarded has been staged by its
	// receiver. Only then is the next step's due-set complete.
	for _, nd := range r.parts {
		r.framesForwarded += int64(nd.report.frames)
	}
	for r.acked.Load() < r.framesForwarded {
		<-r.notifyCh
	}
	if err := r.getErr(); err != nil {
		return false, err
	}

	// Account the step from the reports, in ascending process order.
	var deliveredTotal int64
	for _, nd := range r.parts {
		rep := &nd.report
		if rep.err != nil {
			return false, rep.err
		}
		if got := rep.delivered + rep.corruptDrops + rep.crashDrops; got != r.dueCnt[nd.id] {
			return false, fmt.Errorf("live: node %d consumed %d arrivals at step %d, calendar says %d",
				nd.id, got, t, r.dueCnt[nd.id])
		}
		deliveredTotal += rep.delivered
		r.st.Deliveries += rep.delivered
		r.st.DupDeliveries += rep.dupDelivered
		r.st.CorruptDrops += rep.corruptDrops
		r.st.DroppedCrashed += rep.crashDrops + rep.dropsCrashed
		r.st.OmittedSends += rep.dropsOmit
		r.st.DroppedLink += rep.dropsLoss
		r.msgTotal += rep.sends
		r.eventCount += rep.sends
		if !nd.zombie {
			r.st.LocalSteps++
			r.eventCount++
		}
		for _, f := range nd.fw {
			heap.Push(&r.arrivals, arrival{at: f.arriveAt, to: f.to, corrupt: f.corrupt})
			r.inflight++
			r.inflightTo[f.to]++
			r.inflightCor++
		}
	}
	if r.inflight > r.st.MaxInFlight {
		r.st.MaxInFlight = r.inflight
	}
	if deliveredTotal > r.st.MaxPending {
		r.st.MaxPending = deliveredTotal
	}
	for _, p := range r.touched {
		r.dueCnt[p], r.dueGood[p] = 0, 0
	}

	// Serial commit phase, ascending process order: protocol Commit hooks
	// publish shared state, then the sleep/wake transition — exactly the
	// engine's finishOne, run by the coordinator while the nodes are
	// parked.
	for _, nd := range r.parts {
		if nd.zombie {
			continue
		}
		if c, ok := nd.proc.(sim.Committer); ok {
			c.Commit(t)
		}
		p := int(nd.id)
		asleep := nd.proc.Asleep()
		switch {
		case asleep && r.awake[p]:
			r.awake[p] = false
			r.awakeCorrect--
			r.st.Sleeps++
			if r.cfg.Trace != nil {
				nd.prcEvs = append(nd.prcEvs, sim.TraceEvent{Kind: sim.TraceSleep, Step: t, Proc: nd.id, Other: -1})
			}
		case !asleep && !r.awake[p]:
			r.awake[p] = true
			r.awakeCorrect++
			r.st.Wakes++
			if r.cfg.Trace != nil {
				nd.prcEvs = append(nd.prcEvs, sim.TraceEvent{Kind: sim.TraceWake, Step: t, Proc: nd.id, Other: -1})
			}
		}
	}

	r.emitStep()
	return true, nil
}

// applyCrash takes node p down at step t: it stops stepping, its sends
// are dropped by every sender (via the crashed snapshot), and the network
// forgets what was in flight to it.
func (r *runtime) applyCrash(p sim.ProcID, t sim.Step) {
	r.crashStep[p] = t
	r.crashCount++
	r.st.Crashes++
	if r.awake[p] {
		r.awake[p] = false
		r.awakeCorrect--
	}
	r.inflightCor -= r.inflightTo[p]
	r.inflightTo[p] = 0
	// Copy-on-write: earlier snapshots may still be in flight to nodes.
	snap := make([]bool, r.n)
	copy(snap, r.crashedSnap)
	snap[p] = true
	r.crashedSnap = snap
	if r.cfg.Trace != nil {
		r.crashEv = append(r.crashEv, sim.TraceEvent{Kind: sim.TraceCrash, Step: t, Proc: p, Other: -1})
	}
}

// emitStep publishes the step's trace in the engine's serial order:
// crash events, then every arrival-phase event in global calendar order,
// then each stepping process's block (local step, sends and send-drops,
// sleep/wake) in ascending process order.
func (r *runtime) emitStep() {
	if r.cfg.Trace == nil {
		return
	}
	sink := r.cfg.Trace
	for _, ev := range r.crashEv {
		sink.Event(ev)
	}
	r.arrMerge = r.arrMerge[:0]
	for _, nd := range r.parts {
		for i, ev := range nd.arrEvs {
			r.arrMerge = append(r.arrMerge, mergedArr{key: nd.arrKey[i], ev: ev})
		}
	}
	sort.SliceStable(r.arrMerge, func(i, j int) bool {
		return r.arrMerge[i].key.less(r.arrMerge[j].key)
	})
	for _, m := range r.arrMerge {
		sink.Event(m.ev)
	}
	for _, nd := range r.parts {
		for _, ev := range nd.prcEvs {
			sink.Event(ev)
		}
	}
}

// outcome assembles the run's Outcome with the engine's exact semantics:
// TEnd over processes correct at the end, Time normalized by δ+d = 2 (the
// live baseline), gathering by the same O(N²) Knows scan.
func (r *runtime) outcome() sim.Outcome {
	finalStart := time.Now()
	o := sim.Outcome{
		Protocol:   r.cfg.Protocol.Name(),
		Adversary:  "none",
		N:          r.n,
		F:          r.cfg.F,
		Seed:       r.cfg.Seed,
		Quiescence: r.now,
		Messages:   r.msgTotal,
		Crashed:    r.crashCount,
		HorizonHit: r.horizonHit,
		Stalled:    r.stalled,
	}
	for p := 0; p < r.n; p++ {
		if r.crashStep[p] != 0 {
			continue
		}
		if r.nodes[p].lastSend > o.TEnd {
			o.TEnd = r.nodes[p].lastSend
		}
		o.DeltaMax, o.DelayMax = 1, 1
	}
	if norm := o.DeltaMax + o.DelayMax; norm > 0 {
		o.Time = float64(o.TEnd) / float64(norm)
	}
	o.Gathered = r.gathered()
	if r.cfg.KeepPerProcess {
		o.PerProcessMsgs = make([]int64, r.n)
		for p, nd := range r.nodes {
			o.PerProcessMsgs[p] = nd.seq
		}
	}
	st := r.st
	st.Events = r.eventCount
	st.Sends = r.msgTotal
	// HeapPushes/HeapPops stay zero: they count the sim scheduler's heap,
	// which live replaces with the barrier (simtest.Normalize zeroes them
	// for comparisons anyway).
	st.MessagesByKind = r.mergeKinds()
	o.Stats = st
	r.wall.Finalize = time.Since(finalStart)
	o.Stats.Wall = r.wall
	return o
}

func (r *runtime) gathered() bool {
	for p := 0; p < r.n; p++ {
		if r.crashStep[p] != 0 {
			continue
		}
		for q := 0; q < r.n; q++ {
			if q == p || r.crashStep[q] != 0 {
				continue
			}
			if !r.procs[p].Knows(sim.ProcID(q)) {
				return false
			}
		}
	}
	return true
}

func (r *runtime) mergeKinds() []sim.KindCount {
	var kinds []sim.KindCount
	for _, nd := range r.nodes {
		for _, kc := range nd.kinds {
			found := false
			for i := range kinds {
				if kinds[i].Kind == kc.Kind {
					kinds[i].Count += kc.Count
					found = true
					break
				}
			}
			if !found {
				kinds = append(kinds, kc)
			}
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].Kind < kinds[j].Kind })
	return kinds
}
