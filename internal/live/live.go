// Package live executes protocol state machines as real networked nodes:
// N concurrent goroutines, one per process, exchanging length-prefixed
// binary wire messages (internal/live/wire) over a pluggable Transport —
// in-process channels by default, loopback TCP as the socket-backed
// implementation — with the UGF adversary recast as a programmable network
// interposer sitting on every link.
//
// The simulator (internal/sim) stays the oracle. A live run keeps the
// paper's logical-time semantics with a coordinator-driven synchronizer:
// nodes step concurrently inside a global step, physically exchange
// frames, and a barrier (every forwarded frame acknowledged by its
// receiver) separates step t from step t+1, so the run is a pure function
// of (Config, Seed) even though the message exchange is real concurrency.
// Per-process randomness comes from the same sim.ProcRNG streams, and the
// interposer's fault verdicts come from the same sim.FaultRoll hash chain
// the engine's fault plan uses — which is why a live run and a simulated
// run of the same spec agree (statistically on distributions, and in
// practice bit-for-bit on fault-plan verdicts per message). DESIGN.md §15
// records the architecture; TestLiveMatchesSimStatistically in
// internal/simtest holds the two runtimes together.
//
// Scope: live mode covers the paper's baseline network (every δ_ρ = d_ρ =
// 1) with the link-fault plan, plus live-only interposer injections —
// extra per-message delay, per-step omission, and a crash schedule.
// Delta/delay-rewriting adversaries, topologies, and recoveries remain
// simulator-only; FromSimConfig rejects configs that ask for them.
package live

import (
	"errors"
	"fmt"

	"github.com/ugf-sim/ugf/internal/sim"
)

// Config describes one live run. The zero value of every optional field
// means "off"; N, F, Protocol and Seed mirror sim.Config.
type Config struct {
	// N is the number of nodes (≥ 1).
	N int
	// F is the crash budget, 0 ≤ F < N; the interposer's crash schedule
	// may not exceed it.
	F int
	// Protocol builds the per-node state machines. Required. Every payload
	// kind the protocol sends must have a registered wire codec.
	Protocol sim.Protocol
	// Seed determines every random choice of the run, through the same
	// sim.ProcRNG streams the simulator uses.
	Seed uint64

	// Horizon, MaxEvents and StallWindow are the simulator's cutoffs with
	// identical semantics (sim.Config); zero means the same defaults.
	Horizon     sim.Step
	MaxEvents   int64
	StallWindow int64

	// Faults is the shared link-fault plan: the interposer rolls
	// sim.FaultPlan.Roll per message, so a live run and a simulated run
	// with the same plan drop, duplicate and corrupt the same messages.
	Faults *sim.FaultPlan
	// Delay, Omit and Crashes are the live-only interposer injections; see
	// their types. All are deterministic functions of their seeds.
	Delay *DelayPlan
	Omit  *OmitPlan
	// Crashes is the interposer's frozen crash schedule: each entry crashes
	// one node at the first active step ≥ At. At most F entries, one per
	// node.
	Crashes []Crash

	// Transport moves frames between nodes; nil uses the in-process
	// channel transport. The run closes the transport when it ends.
	Transport Transport

	// Trace receives the run's event stream, same shapes and ordering
	// discipline as the simulator's (deliveries before local steps, serial
	// commit order); nil disables tracing.
	Trace sim.TraceSink
	// KeepPerProcess retains per-node send counters in the Outcome.
	KeepPerProcess bool
}

// DelayPlan adds seeded extra in-flight delay on top of the baseline
// d = 1: each forwarded message independently gains 1..Max extra steps
// with probability Prob. Verdicts derive from sim.FaultRoll under
// sim.DomainLiveDelay, so they are reproducible and independent of the
// fault plan's rolls.
type DelayPlan struct {
	Seed uint64
	Prob float64
	Max  sim.Step
}

// OmitPlan suppresses all sends of a node for a step: node p at step t is
// omission-gagged with probability Prob, derived from sim.FaultRoll under
// sim.DomainLiveOmit. Omitted sends count in M(O) like the simulator's
// omission adversary.
type OmitPlan struct {
	Seed uint64
	Prob float64
}

// Crash is one entry of the interposer's crash schedule.
type Crash struct {
	Proc sim.ProcID
	At   sim.Step
}

// DeriveCrashes builds a frozen crash schedule of up to f crashes from a
// seed: victims are distinct, steps fall in [1, window]. It exists so
// tests and the CLI can ask for "some deterministic crashes" without
// hand-writing a schedule.
func DeriveCrashes(seed uint64, n, f int, window sim.Step) []Crash {
	if f <= 0 || n < 2 || window < 1 {
		return nil
	}
	crashes := make([]Crash, 0, f)
	used := make(map[sim.ProcID]bool, f)
	for i := 0; len(crashes) < f && i < 4*f+16; i++ {
		p := sim.ProcID(sim.FaultRoll(seed, sim.DomainLiveCrash, uint64(i), 0) * float64(n))
		if p < 0 || int(p) >= n || used[p] {
			continue
		}
		at := 1 + sim.Step(sim.FaultRoll(seed, sim.DomainLiveCrash, uint64(i), 1)*float64(window))
		if at > window {
			at = window
		}
		used[p] = true
		crashes = append(crashes, Crash{Proc: p, At: at})
	}
	return crashes
}

// validate checks the config, mirroring sim.newEngine's checks plus the
// interposer's own.
func (cfg *Config) validate() error {
	switch {
	case cfg.N < 1:
		return fmt.Errorf("live: N = %d, need N ≥ 1", cfg.N)
	case cfg.F < 0 || cfg.F >= cfg.N:
		return fmt.Errorf("live: F = %d, need 0 ≤ F < N = %d", cfg.F, cfg.N)
	case cfg.Protocol == nil:
		return errors.New("live: Config.Protocol is required")
	case cfg.Horizon < 0:
		return fmt.Errorf("live: Horizon = %d, need ≥ 0", cfg.Horizon)
	case cfg.MaxEvents < 0:
		return fmt.Errorf("live: MaxEvents = %d, need ≥ 0", cfg.MaxEvents)
	case cfg.StallWindow < 0:
		return fmt.Errorf("live: StallWindow = %d, need ≥ 0", cfg.StallWindow)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return err
		}
	}
	if d := cfg.Delay; d != nil {
		if d.Prob < 0 || d.Prob > 1 || (d.Prob > 0 && d.Max < 1) {
			return fmt.Errorf("live: DelayPlan prob=%v max=%d invalid", d.Prob, d.Max)
		}
	}
	if o := cfg.Omit; o != nil {
		if o.Prob < 0 || o.Prob > 1 {
			return fmt.Errorf("live: OmitPlan prob=%v invalid", o.Prob)
		}
	}
	if len(cfg.Crashes) > cfg.F {
		return fmt.Errorf("live: %d scheduled crashes exceed the crash budget F=%d", len(cfg.Crashes), cfg.F)
	}
	seen := make(map[sim.ProcID]bool, len(cfg.Crashes))
	for _, c := range cfg.Crashes {
		switch {
		case c.Proc < 0 || int(c.Proc) >= cfg.N:
			return fmt.Errorf("live: crash schedule names process %d of %d", c.Proc, cfg.N)
		case c.At < 1:
			return fmt.Errorf("live: crash of %d at step %d, need ≥ 1", c.Proc, c.At)
		case seen[c.Proc]:
			return fmt.Errorf("live: process %d crashes twice in the schedule", c.Proc)
		}
		seen[c.Proc] = true
	}
	return nil
}

// FromSimConfig projects a simulator config onto a live one, rejecting
// the features live mode does not cover with a structured error: the live
// runtime supports adversary "none" plus the link-fault plan — the
// statistical-compatibility surface the simulator oracle-checks — and
// nothing that rewrites δ/d, edits topology, or samples mid-run.
func FromSimConfig(cfg sim.Config) (Config, error) {
	switch {
	case cfg.Adversary != nil:
		return Config{}, fmt.Errorf("live: adversary %q is simulator-only; live mode supports adversary \"none\" (the interposer injects faults instead)", cfg.Adversary.Name())
	case cfg.Topology.Active():
		return Config{}, errors.New("live: topologies are simulator-only; live mode runs the complete graph")
	case cfg.Sample != nil || cfg.SampleEvery != 0:
		return Config{}, errors.New("live: dissemination-curve sampling is simulator-only")
	case cfg.StatsEvery != 0:
		return Config{}, errors.New("live: the interval-stats series is simulator-only")
	case cfg.MaxWall != 0 || cfg.Cancel != nil:
		return Config{}, errors.New("live: wall-clock watchdogs are simulator-only")
	case cfg.Workers > 1:
		return Config{}, errors.New("live: Workers shards the simulator's commit phase; live nodes are always concurrent")
	}
	return Config{
		N: cfg.N, F: cfg.F, Protocol: cfg.Protocol, Seed: cfg.Seed,
		Horizon: cfg.Horizon, MaxEvents: cfg.MaxEvents, StallWindow: cfg.StallWindow,
		Faults: cfg.Faults, Trace: cfg.Trace, KeepPerProcess: cfg.KeepPerProcess,
	}, nil
}

// Run executes one live run to quiescence (or cutoff) and returns its
// Outcome — the same shape, semantics and Stats discipline as sim.Run, so
// runner tooling, the trace auditor, and outcome hashing consume it
// unchanged. The returned error reports configuration or transport
// failures; cutoffs return a valid Outcome with HorizonHit set.
func Run(cfg Config) (sim.Outcome, error) {
	if err := cfg.validate(); err != nil {
		return sim.Outcome{}, err
	}
	r, err := newRuntime(cfg)
	if err != nil {
		return sim.Outcome{}, err
	}
	defer r.shutdown()
	return r.run()
}
