package live_test

import (
	"strings"
	"testing"

	"github.com/ugf-sim/ugf/internal/live"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/simtest/check"
)

// auditedRun executes one live run with the trace auditor attached and a
// recorder alongside, returning the outcome and the raw event stream.
func auditedRun(t *testing.T, cfg live.Config) (sim.Outcome, []sim.TraceEvent, []string) {
	t.Helper()
	snk := check.New()
	var rec sim.Recorder
	cfg.Trace = sim.FuncSink(func(ev sim.TraceEvent) {
		snk.Event(ev)
		rec.Event(ev)
	})
	o, err := live.Run(cfg)
	if err != nil {
		t.Fatalf("live.Run: %v", err)
	}
	return o, rec.Events, snk.Finish(o)
}

// TestLiveTracePassesAuditor routes live event streams through the same
// Section II-A trace validator the simulator's runs are held to: phase
// order inside a step, send/arrival/drop matching per link, crash
// silence, end-marker/Outcome reconciliation. Every interposer injection
// must keep the stream consistent.
func TestLiveTracePassesAuditor(t *testing.T) {
	pp := proto(t, "push-pull")
	cases := []struct {
		name string
		cfg  live.Config
	}{
		{"plain", live.Config{N: 40, Protocol: pp, Seed: 5}},
		{"faults", live.Config{
			N: 40, Protocol: pp, Seed: 5,
			Faults: &sim.FaultPlan{Seed: 8, Drop: 0.12, Duplicate: 0.06, Corrupt: 0.06},
		}},
		{"crashes", live.Config{
			N: 40, F: 6, Protocol: pp, Seed: 5,
			Crashes: live.DeriveCrashes(21, 40, 6, 8),
		}},
		{"delay and omit", live.Config{
			N: 40, Protocol: pp, Seed: 5,
			Delay: &live.DelayPlan{Seed: 3, Prob: 0.25, Max: 4},
			Omit:  &live.OmitPlan{Seed: 4, Prob: 0.15},
		}},
		{"everything", live.Config{
			N: 40, F: 5, Protocol: proto(t, "ears"), Seed: 5,
			Faults:  &sim.FaultPlan{Seed: 8, Drop: 0.1, Duplicate: 0.05, Corrupt: 0.05},
			Delay:   &live.DelayPlan{Seed: 3, Prob: 0.2, Max: 3},
			Omit:    &live.OmitPlan{Seed: 4, Prob: 0.1},
			Crashes: live.DeriveCrashes(21, 40, 5, 8),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, events, violations := auditedRun(t, tc.cfg)
			if len(violations) != 0 {
				t.Fatalf("auditor violations:\n  %s", strings.Join(violations, "\n  "))
			}
			if len(events) == 0 || events[len(events)-1].Kind != sim.TraceEnd {
				t.Fatal("stream missing its end marker")
			}
			if o.HorizonHit {
				t.Fatalf("run was cut off: %+v", o)
			}
		})
	}
}

// replay feeds a doctored event stream back into a fresh auditor.
func replay(events []sim.TraceEvent) *check.Sink {
	snk := check.New()
	for _, ev := range events {
		snk.Event(ev)
	}
	return snk
}

// The broken-stream tests below doctor a genuine live stream into the
// failure shapes only a real network can produce, proving the auditor
// would catch them rather than vacuously passing.

// TestAuditorCatchesReorderedArrival models a racy runtime that lets a
// frame slip into a node mid-step: an arrival re-ordered after a send of
// the same global step violates the deliveries-before-local-steps phase
// order.
func TestAuditorCatchesReorderedArrival(t *testing.T) {
	_, events, violations := auditedRun(t, live.Config{N: 24, Protocol: proto(t, "push-pull"), Seed: 9})
	if len(violations) != 0 {
		t.Fatalf("clean run not clean: %v", violations)
	}
	// Find a step with both arrivals and sends, and move its first
	// arrival after its last send (same step, so only phase order breaks).
	doctored := append([]sim.TraceEvent(nil), events...)
	moved := false
	for i, ev := range doctored {
		if ev.Kind != sim.TraceArrive {
			continue
		}
		last := -1
		for j := i + 1; j < len(doctored) && doctored[j].Step == ev.Step; j++ {
			if doctored[j].Kind == sim.TraceSend {
				last = j
			}
		}
		if last < 0 {
			continue
		}
		copy(doctored[i:last], doctored[i+1:last+1])
		doctored[last] = ev
		moved = true
		break
	}
	if !moved {
		t.Fatal("no step with an arrival before a send in the stream")
	}
	v := replay(doctored).Violations()
	if len(v) == 0 {
		t.Fatal("auditor accepted an arrival re-ordered after a send")
	}
	if !strings.Contains(strings.Join(v, "\n"), "after a send in the same step") {
		t.Errorf("unexpected violation shape: %v", v)
	}
}

// TestAuditorCatchesPhantomArrival models a transport delivering a frame
// on a link that never carried a send — a misrouted or fabricated frame.
func TestAuditorCatchesPhantomArrival(t *testing.T) {
	_, events, violations := auditedRun(t, live.Config{N: 24, Protocol: proto(t, "push-pull"), Seed: 9})
	if len(violations) != 0 {
		t.Fatalf("clean run not clean: %v", violations)
	}
	// Splice a fabricated arrival right before the end marker, on a
	// (from, to) pair chosen to have no outstanding send by picking the
	// reverse direction of the first send ever... instead, simply use a
	// self-link, which no protocol uses.
	doctored := append([]sim.TraceEvent(nil), events[:len(events)-1]...)
	end := events[len(events)-1]
	doctored = append(doctored, sim.TraceEvent{
		Kind: sim.TraceArrive, Step: end.Step, Proc: 1, Other: 1,
	}, end)
	v := replay(doctored).Violations()
	if len(v) == 0 {
		t.Fatal("auditor accepted an arrival with no matching send")
	}
	if !strings.Contains(strings.Join(v, "\n"), "without a prior matching send") {
		t.Errorf("unexpected violation shape: %v", v)
	}
}

// TestAuditorCatchesUnreconciledDrop models an interposer that discards a
// frame without accounting for it: the drop event vanishes from the
// stream while Stats still counts it, so Finish's reconciliation against
// the Outcome must flag the drop-counter mismatch.
func TestAuditorCatchesUnreconciledDrop(t *testing.T) {
	o, events, violations := auditedRun(t, live.Config{
		N: 24, Protocol: proto(t, "push-pull"), Seed: 9,
		Faults: &sim.FaultPlan{Seed: 8, Drop: 0.15},
	})
	if len(violations) != 0 {
		t.Fatalf("clean run not clean: %v", violations)
	}
	doctored := make([]sim.TraceEvent, 0, len(events)-1)
	removed := false
	for _, ev := range events {
		if !removed && ev.Kind == sim.TraceDrop && ev.Note == "loss" {
			removed = true
			continue
		}
		doctored = append(doctored, ev)
	}
	if !removed {
		t.Fatal("run produced no loss drops to remove")
	}
	v := replay(doctored).Finish(o)
	if len(v) == 0 {
		t.Fatal("auditor reconciled a stream missing a drop event")
	}
	if !strings.Contains(strings.Join(v, "\n"), "drop counters") {
		t.Errorf("missing drop-counter mismatch in: %v", v)
	}
}
