package live

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ugf-sim/ugf/internal/live/wire"
	"github.com/ugf-sim/ugf/internal/sim"
)

// stepReq is the coordinator's begin-of-step message to one node: the
// global step to execute and an immutable snapshot of the crashed set as
// of that step, shared by every participant so all senders apply the same
// crashed-receiver verdicts. zombie marks a crashed node that still has
// arrivals due — it drains and drops them without stepping, the live
// equivalent of the engine's crashed-delivery drop.
type stepReq struct {
	t       sim.Step
	crashed []bool
	zombie  bool
	// drain marks a correct node whose due arrivals are all corrupt: it
	// discards them without a local step, mirroring the engine, where a
	// corrupt message is dropped in the deliver phase and so never wakes
	// or steps a sleeping receiver.
	drain bool
}

// inMsg is one staged arrival: the decoded envelope, or — when the
// payload checksum failed — its intact header with corrupt set, the
// physical form of the fault model's "corruption is detected loss".
type inMsg struct {
	env     wire.Envelope
	corrupt bool
}

// fwRec is the node's report of one physically forwarded frame; the
// coordinator's arrival bookkeeping (heap, in-flight counters) is built
// from these.
type fwRec struct {
	to       sim.ProcID
	arriveAt sim.Step
	corrupt  bool
}

// stepReport carries everything the coordinator needs to account one
// node's step. The node writes it before signalling done; the coordinator
// reads it after — the done channel is the happens-before edge.
type stepReport struct {
	frames       int   // frames handed to the transport (ack barrier expects these)
	sends        int64 // drafts counted in M(O)
	sent         bool  // lastSend advanced to this step
	delivered    int64 // messages consumed by Step, duplicate copies included
	dupDelivered int64
	corruptDrops int64 // arrivals discarded by the payload checksum
	crashDrops   int64 // arrivals drained by a zombie
	dropsCrashed int64 // sends to receivers crashed at send time
	dropsOmit    int64 // sends suppressed by the omission interposer
	dropsLoss    int64 // sends dropped by the fault plan's loss roll
	err          error
}

// node is one live process: goroutine-driven protocol state machine plus
// its sending-side interposer. All fields below mu are owned by the node
// goroutine during a step and readable by the coordinator between steps.
type node struct {
	id    sim.ProcID
	n     int
	proc  sim.Process
	out   sim.Outbox
	itp   *interposer
	tr    Transport
	trace bool

	stepCh chan stepReq

	// staged is the receiver-side inbox: the reader goroutine appends
	// decoded arrivals as frames land, under mu — the only lock in the
	// data path, and never held across channel operations.
	mu     sync.Mutex
	staged []inMsg

	// Node-goroutine state, coordinator-readable between steps.
	seq      int64    // post-increment send counter (the engine's pt.sent[p])
	lastSend sim.Step // last step this node sent at
	kinds    []sim.KindCount
	lastKind int
	zombie   bool // coordinator's note of this step's role; nodes never read it

	fw     []fwRec
	report stepReport
	arrEvs []sim.TraceEvent // arrival-phase events, sorted by the global arrival key
	arrKey []arrKey         // sort keys parallel to arrEvs
	prcEvs []sim.TraceEvent // local-step/send-phase events, already in order

	due       []inMsg
	delivered []sim.Message
}

// arrKey orders arrival-phase trace events exactly as the engine's
// calendar bucket does: by send step, then sender, then the sender's
// sequence number, duplicates after their original.
type arrKey struct {
	sentAt sim.Step
	from   sim.ProcID
	seq    int64
	dup    bool
}

func (a arrKey) less(b arrKey) bool {
	if a.sentAt != b.sentAt {
		return a.sentAt < b.sentAt
	}
	if a.from != b.from {
		return a.from < b.from
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return !a.dup && b.dup
}

// stage appends one decoded arrival; called by the runtime's reader
// goroutine for this node.
func (nd *node) stage(m inMsg) {
	nd.mu.Lock()
	nd.staged = append(nd.staged, m)
	nd.mu.Unlock()
}

// loop is the node goroutine: execute step requests until the step
// channel closes.
func (nd *node) loop(doneCh chan<- *node, stop <-chan struct{}) {
	for {
		select {
		case req, ok := <-nd.stepCh:
			if !ok {
				return
			}
			nd.runStep(req)
			select {
			case doneCh <- nd:
			case <-stop:
				return
			}
		case <-stop:
			return
		}
	}
}

// takeDue moves every staged arrival due at or before t into nd.due,
// sorted into the engine's delivery order.
func (nd *node) takeDue(t sim.Step) {
	nd.due = nd.due[:0]
	nd.mu.Lock()
	kept := nd.staged[:0]
	for _, m := range nd.staged {
		if m.env.ArriveAt <= t {
			nd.due = append(nd.due, m)
		} else {
			kept = append(kept, m)
		}
	}
	nd.staged = kept
	nd.mu.Unlock()
	sort.SliceStable(nd.due, func(i, j int) bool {
		a, b := &nd.due[i].env, &nd.due[j].env
		ka := arrKey{a.SentAt, a.From, a.Seq, a.Dup}
		kb := arrKey{b.SentAt, b.From, b.Seq, b.Dup}
		return ka.less(kb)
	})
}

// runStep executes one global step for this node: consume due arrivals,
// run the protocol's local step, and push every surviving send through
// the interposer onto the transport. Zombies only drain.
func (nd *node) runStep(req stepReq) {
	defer func() {
		if r := recover(); r != nil {
			nd.report.err = fmt.Errorf("live: node %d panicked at step %d: %v", nd.id, req.t, r)
		}
	}()
	nd.report = stepReport{}
	nd.fw = nd.fw[:0]
	nd.arrEvs = nd.arrEvs[:0]
	nd.arrKey = nd.arrKey[:0]
	nd.prcEvs = nd.prcEvs[:0]
	nd.delivered = nd.delivered[:0]
	t := req.t

	nd.takeDue(t)
	if req.zombie {
		// Crashed receiver: the engine's deliver loop drops these with a
		// "crashed" note and no in-flight adjustment (zeroed at crash).
		for _, m := range nd.due {
			nd.report.crashDrops++
			if nd.trace {
				note := "crashed"
				if m.env.Dup {
					note = "crashed dup"
				}
				nd.pushArr(m, sim.TraceEvent{Kind: sim.TraceDrop, Step: t,
					Proc: nd.id, Other: m.env.From, Payload: m.env.Payload, Note: note})
			}
		}
		return
	}

	if req.drain {
		for _, m := range nd.due {
			if !m.corrupt {
				nd.report.err = fmt.Errorf("live: node %d asked to drain a non-corrupt arrival at step %d", nd.id, t)
				return
			}
			nd.dropCorrupt(t, m)
		}
		return
	}

	for _, m := range nd.due {
		if m.corrupt {
			nd.dropCorrupt(t, m)
			continue
		}
		nd.report.delivered++
		if m.env.Dup {
			nd.report.dupDelivered++
		}
		if nd.trace {
			note := ""
			if m.env.Dup {
				note = "dup"
			}
			nd.pushArr(m, sim.TraceEvent{Kind: sim.TraceArrive, Step: t,
				Proc: nd.id, Other: m.env.From, Payload: m.env.Payload, Note: note})
		}
		nd.delivered = append(nd.delivered, sim.Message{
			From: m.env.From, To: nd.id, SentAt: m.env.SentAt, DeliverAt: t,
			Payload: m.env.Payload,
		})
	}

	if nd.trace {
		nd.prcEvs = append(nd.prcEvs, sim.TraceEvent{Kind: sim.TraceLocalStep, Step: t, Proc: nd.id, Other: -1})
	}
	nd.proc.Step(t, nd.delivered, &nd.out)
	msgs := nd.out.Drain()
	omitted := nd.itp.omitted(nd.id, t)
	for _, msg := range msgs {
		nd.seq++
		nd.lastSend = t
		nd.report.sends++
		nd.report.sent = true
		nd.countKind(msg.Payload)
		if nd.trace {
			nd.prcEvs = append(nd.prcEvs, sim.TraceEvent{Kind: sim.TraceSend, Step: t,
				Proc: nd.id, Other: msg.To, Payload: msg.Payload})
		}
		switch {
		case req.crashed != nil && req.crashed[msg.To]:
			nd.report.dropsCrashed++
			nd.dropSend(t, msg, "crashed")
			continue
		case omitted:
			nd.report.dropsOmit++
			nd.dropSend(t, msg, "omit")
			continue
		}
		fault := nd.itp.linkFault(nd.id, msg.To, t, nd.seq)
		if fault == sim.FaultDrop {
			nd.report.dropsLoss++
			nd.dropSend(t, msg, "loss")
			continue
		}
		if msg.Payload == nil {
			// The engine tolerates nil payloads (kind "?"); the wire cannot
			// carry one. No registry protocol sends them.
			nd.report.err = fmt.Errorf("live: node %d sent a nil payload at step %d", nd.id, t)
			return
		}
		arriveAt := t + 1 + nd.itp.extraDelay(nd.id, msg.To, t, nd.seq)
		env := wire.Envelope{
			From: nd.id, To: msg.To, SentAt: t, ArriveAt: arriveAt,
			Seq: nd.seq, Kind: msg.Payload.Kind(), Payload: msg.Payload,
		}
		if err := nd.forward(&env, fault == sim.FaultCorrupt); err != nil {
			nd.report.err = err
			return
		}
		if fault == sim.FaultDuplicate {
			env.Dup = true
			if err := nd.forward(&env, false); err != nil {
				nd.report.err = err
				return
			}
		}
	}
}

// dropCorrupt discards one arrival whose payload checksum failed:
// detected loss, never a forged payload — the protocol does not see it.
func (nd *node) dropCorrupt(t sim.Step, m inMsg) {
	nd.report.corruptDrops++
	if nd.trace {
		nd.pushArr(m, sim.TraceEvent{Kind: sim.TraceDrop, Step: t,
			Proc: nd.id, Other: m.env.From, Note: "corrupt"})
	}
}

// forward encodes, optionally corrupts, frames and transmits one
// envelope, recording it for the coordinator's bookkeeping.
func (nd *node) forward(env *wire.Envelope, corrupt bool) error {
	body, err := env.Encode()
	if err != nil {
		return fmt.Errorf("live: node %d encode to %d: %w", nd.id, env.To, err)
	}
	if corrupt {
		// Flip a real payload bit on the wire; the receiver's checksum
		// detects it and discards the message at delivery.
		if err := wire.CorruptBody(body, corruptBit(env.From, env.To, env.SentAt, env.Seq)); err != nil {
			return fmt.Errorf("live: node %d corrupt to %d: %w", nd.id, env.To, err)
		}
	}
	if err := nd.tr.Send(int(nd.id), int(env.To), wire.AppendFrame(nil, body)); err != nil {
		return err
	}
	nd.fw = append(nd.fw, fwRec{to: env.To, arriveAt: env.ArriveAt, corrupt: corrupt})
	nd.report.frames++
	return nil
}

// dropSend emits the send-time drop event (engine.traceSendDrop shape:
// Proc is the receiver, Other the sender).
func (nd *node) dropSend(t sim.Step, msg sim.Message, note string) {
	if nd.trace {
		nd.prcEvs = append(nd.prcEvs, sim.TraceEvent{Kind: sim.TraceDrop, Step: t,
			Proc: msg.To, Other: nd.id, Payload: msg.Payload, Note: note})
	}
}

// countKind bumps the per-payload-kind send counter, MRU-probed like the
// engine's kindIndex.
func (nd *node) countKind(pl sim.Payload) {
	k := "?"
	if pl != nil {
		k = pl.Kind()
	}
	if nd.lastKind < len(nd.kinds) && nd.kinds[nd.lastKind].Kind == k {
		nd.kinds[nd.lastKind].Count++
		return
	}
	for i := range nd.kinds {
		if nd.kinds[i].Kind == k {
			nd.kinds[i].Count++
			nd.lastKind = i
			return
		}
	}
	nd.kinds = append(nd.kinds, sim.KindCount{Kind: k, Count: 1})
	nd.lastKind = len(nd.kinds) - 1
}

// pushArr records one arrival-phase event with its global ordering key.
func (nd *node) pushArr(m inMsg, ev sim.TraceEvent) {
	nd.arrEvs = append(nd.arrEvs, ev)
	nd.arrKey = append(nd.arrKey, arrKey{m.env.SentAt, m.env.From, m.env.Seq, m.env.Dup})
}
