package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
)

// Test payload kinds, registered once for this package's tests under
// names no protocol uses (the registry is global and permanent).
type testPayload struct{ V int64 }

func (testPayload) Kind() string { return "test-v" }

type testEmpty struct{}

func (testEmpty) Kind() string { return "test-empty" }

func init() {
	RegisterPayload(PayloadCodec{
		Kind: testPayload{}.Kind(),
		Encode: func(dst []byte, pl sim.Payload) ([]byte, error) {
			p, ok := pl.(testPayload)
			if !ok {
				return nil, fmt.Errorf("bad type %T", pl)
			}
			return append(dst, byte(p.V), byte(p.V>>8)), nil
		},
		Decode: func(data []byte) (sim.Payload, error) {
			if len(data) != 2 {
				return nil, fmt.Errorf("want 2 bytes, got %d", len(data))
			}
			return testPayload{V: int64(data[0]) | int64(data[1])<<8}, nil
		},
	})
	RegisterPayload(PayloadCodec{
		Kind: testEmpty{}.Kind(),
		Encode: func(dst []byte, pl sim.Payload) ([]byte, error) {
			if _, ok := pl.(testEmpty); !ok {
				return nil, fmt.Errorf("bad type %T", pl)
			}
			return dst, nil
		},
		Decode: func(data []byte) (sim.Payload, error) {
			if len(data) != 0 {
				return nil, fmt.Errorf("want empty, got %d bytes", len(data))
			}
			return testEmpty{}, nil
		},
	})
}

func TestEnvelopeRoundTrip(t *testing.T) {
	envs := []Envelope{
		{From: 0, To: 1, SentAt: 1, ArriveAt: 2, Seq: 1, Kind: "test-v", Payload: testPayload{V: 7}},
		{From: 3, To: 250, SentAt: 900, ArriveAt: 905, Seq: 12345, Dup: true, Kind: "test-v", Payload: testPayload{V: 300}},
		{From: 1 << 20, To: 0, SentAt: 1 << 40, ArriveAt: 1<<40 + 3, Seq: 1 << 50, Kind: "test-empty", Payload: testEmpty{}},
	}
	for i, want := range envs {
		body, err := want.Encode()
		if err != nil {
			t.Fatalf("env %d: encode: %v", i, err)
		}
		got, err := DecodeEnvelope(body)
		if err != nil {
			t.Fatalf("env %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("env %d: round trip:\n got  %+v\n want %+v", i, got, want)
		}
	}
}

func TestEncodeRejectsBadFields(t *testing.T) {
	base := Envelope{From: 0, To: 1, SentAt: 1, ArriveAt: 2, Seq: 1, Kind: "test-v", Payload: testPayload{}}
	cases := []struct {
		name string
		mut  func(*Envelope)
		want error
	}{
		{"negative from", func(e *Envelope) { e.From = -1 }, ErrFieldRange},
		{"negative seq", func(e *Envelope) { e.Seq = -1 }, ErrFieldRange},
		{"negative step", func(e *Envelope) { e.SentAt = -1 }, ErrFieldRange},
		{"oversized kind", func(e *Envelope) { e.Kind = strings.Repeat("k", 300) }, ErrFieldRange},
		{"unknown kind", func(e *Envelope) { e.Kind = "no-such-kind" }, ErrUnknownKind},
	}
	for _, tc := range cases {
		env := base
		tc.mut(&env)
		if _, err := env.Encode(); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// validBody returns a well-formed encoded body for tampering tests.
func validBody(t *testing.T) []byte {
	t.Helper()
	env := Envelope{From: 2, To: 5, SentAt: 10, ArriveAt: 11, Seq: 42, Kind: "test-v", Payload: testPayload{V: 77}}
	body, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestDecodeErrors(t *testing.T) {
	body := validBody(t)
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrFrameTooShort},
		{"truncated header", func(b []byte) []byte { return b[:3] }, ErrFrameTooShort},
		{"truncated mid-payload", func(b []byte) []byte { return b[:len(b)-5] }, ErrFrameTooShort},
		{"truncated payload crc", func(b []byte) []byte { return b[:len(b)-1] }, ErrFrameTooShort},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrBadMagic},
		{"bad version", func(b []byte) []byte { b[1] = 99; return b }, ErrBadVersion},
		{"flipped header byte", func(b []byte) []byte { b[4] ^= 0x01; return b }, ErrHeaderChecksum},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0xAA) }, ErrTrailingBytes},
		{"oversized body", func(b []byte) []byte { return make([]byte, MaxFrameSize+1) }, ErrFrameTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), body...))
			env, err := DecodeEnvelope(b)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got err %v, want %v", err, tc.want)
			}
			if !reflect.DeepEqual(env, Envelope{}) {
				t.Fatalf("unusable frame returned non-zero envelope %+v", env)
			}
		})
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	inputs := [][]byte{
		{},
		{0x00},
		{frameMagic},
		{frameMagic, Version},
		{frameMagic, Version, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		bytes.Repeat([]byte{0xFF}, 64),
		bytes.Repeat([]byte{frameMagic}, 32),
	}
	for i, in := range inputs {
		if _, err := DecodeEnvelope(in); err == nil {
			t.Errorf("input %d: garbage decoded without error", i)
		}
	}
}

func TestPayloadChecksumKeepsHeader(t *testing.T) {
	body := validBody(t)
	// Flip the last payload byte (just before the 4 CRC bytes).
	body[len(body)-5] ^= 0x80
	env, err := DecodeEnvelope(body)
	if !errors.Is(err, ErrPayloadChecksum) {
		t.Fatalf("got err %v, want ErrPayloadChecksum", err)
	}
	if env.From != 2 || env.To != 5 || env.SentAt != 10 || env.ArriveAt != 11 || env.Seq != 42 || env.Kind != "test-v" {
		t.Fatalf("header not preserved: %+v", env)
	}
	if env.Payload != nil {
		t.Fatalf("corrupt payload decoded to %+v", env.Payload)
	}
}

func TestCorruptBody(t *testing.T) {
	for _, env := range []Envelope{
		{From: 1, To: 2, SentAt: 3, ArriveAt: 4, Seq: 5, Kind: "test-v", Payload: testPayload{V: 9}},
		// Empty payload: the flip must land in the payload CRC instead.
		{From: 1, To: 2, SentAt: 3, ArriveAt: 4, Seq: 5, Kind: "test-empty", Payload: testEmpty{}},
	} {
		for bit := uint64(0); bit < 40; bit += 7 {
			body, err := env.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if err := CorruptBody(body, bit); err != nil {
				t.Fatalf("%s bit %d: %v", env.Kind, bit, err)
			}
			got, err := DecodeEnvelope(body)
			if !errors.Is(err, ErrPayloadChecksum) {
				t.Fatalf("%s bit %d: got err %v, want ErrPayloadChecksum", env.Kind, bit, err)
			}
			if got.From != env.From || got.To != env.To || got.Kind != env.Kind {
				t.Fatalf("%s bit %d: header damaged: %+v", env.Kind, bit, got)
			}
		}
	}
}

func TestFraming(t *testing.T) {
	body := validBody(t)

	var buf bytes.Buffer
	if err := WriteFrame(&buf, body); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, body); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("frame %d: body mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("got %v at stream end, want io.EOF", err)
	}

	framed := AppendFrame(nil, body)
	got, err := ParseFrame(framed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("ParseFrame body mismatch")
	}
}

func TestFramingErrors(t *testing.T) {
	body := validBody(t)
	framed := AppendFrame(nil, body)

	if _, err := ParseFrame(framed[:2]); !errors.Is(err, ErrFrameTooShort) {
		t.Errorf("short frame: got %v", err)
	}
	if _, err := ParseFrame(framed[:len(framed)-1]); !errors.Is(err, ErrFrameTooShort) {
		t.Errorf("length mismatch: got %v", err)
	}
	huge := AppendFrame(nil, nil)
	huge[0], huge[1] = 0xFF, 0xFF
	if _, err := ParseFrame(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("huge declared length: got %v", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized WriteFrame: got %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(framed[:6])); !errors.Is(err, ErrFrameTooShort) {
		t.Errorf("truncated stream: got %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("huge stream frame: got %v", err)
	}
}

func TestRegistry(t *testing.T) {
	kinds := RegisteredKinds()
	found := 0
	for _, k := range kinds {
		if k == "test-v" || k == "test-empty" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("test kinds missing from registry: %v", kinds)
	}
	if _, err := EncodePayload("no-such-kind", nil); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("encode unknown kind: got %v", err)
	}
	if _, err := DecodePayload("no-such-kind", nil); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("decode unknown kind: got %v", err)
	}
	for _, bad := range []PayloadCodec{
		{},
		{Kind: "x"},
		{Kind: "test-v", Encode: func(dst []byte, pl sim.Payload) ([]byte, error) { return dst, nil },
			Decode: func(data []byte) (sim.Payload, error) { return nil, nil }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterPayload(%+v) did not panic", bad)
				}
			}()
			RegisterPayload(bad)
		}()
	}
}
