package wire_test

import (
	"errors"
	"reflect"
	"testing"

	"github.com/ugf-sim/ugf/internal/live/wire"

	_ "github.com/ugf-sim/ugf/internal/gossip" // register the real protocol payload codecs
)

// seedBodies builds well-formed encoded envelope bodies for every
// registered protocol payload kind, by decoding hand-written payload
// bytes through the registered codecs and re-encoding full envelopes.
func seedBodies(tb testing.TB) [][]byte {
	tb.Helper()
	payloadBytes := map[string][]byte{
		"gossips": {0x05},
		"pull":    {},
		"gossip":  {0x03},
		"ears":    {0x02, 0x02, 0x01, 0x00},
	}
	var bodies [][]byte
	for kind, data := range payloadBytes {
		pl, err := wire.DecodePayload(kind, data)
		if err != nil {
			tb.Fatalf("seed payload %s: %v", kind, err)
		}
		env := wire.Envelope{From: 1, To: 2, SentAt: 3, ArriveAt: 4, Seq: 5, Kind: kind, Payload: pl}
		body, err := env.Encode()
		if err != nil {
			tb.Fatalf("seed envelope %s: %v", kind, err)
		}
		bodies = append(bodies, body)
	}
	return bodies
}

// FuzzWireCodec feeds arbitrary bytes through the frame parser and
// envelope decoder. Invariants:
//   - no input ever panics;
//   - a fully successful decode re-encodes to a body that decodes back
//     to an identical envelope (round-trip stability);
//   - a payload-checksum failure still yields an addressable header.
func FuzzWireCodec(f *testing.F) {
	for _, body := range seedBodies(f) {
		f.Add(wire.AppendFrame(nil, body))
		f.Add(body)
		corrupted := append([]byte(nil), body...)
		if err := wire.CorruptBody(corrupted, 9); err == nil {
			f.Add(corrupted)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0xD7})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Treat the input as a framed message when the prefix parses,
		// otherwise decode it directly as a bare body. Both paths must
		// be panic-free.
		body, err := wire.ParseFrame(data)
		if err != nil {
			body = data
		}
		env, err := wire.DecodeEnvelope(body)
		if err != nil {
			if errors.Is(err, wire.ErrPayloadChecksum) {
				// Detected corruption keeps the routing header but must
				// never surface a payload value.
				if env.Payload != nil {
					t.Fatalf("payload survived checksum failure: %+v", env)
				}
			}
			return
		}
		body2, err := env.Encode()
		if err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v (%+v)", err, env)
		}
		env2, err := wire.DecodeEnvelope(body2)
		if err != nil {
			t.Fatalf("re-encoded body failed to decode: %v", err)
		}
		if !reflect.DeepEqual(env, env2) {
			t.Fatalf("round trip drift:\n first  %+v\n second %+v", env, env2)
		}
	})
}
