// Package wire is the live runtime's binary wire format: a compact,
// length-prefixed, versioned envelope that carries one protocol message
// between two live nodes (internal/live), replacing the simulator's
// in-memory payload handles with bytes a real transport can move.
//
// A frame on a stream is a 4-byte big-endian length followed by the body.
// The body layout (all multi-byte integers are unsigned varints unless
// noted) is:
//
//	magic      1 byte  (0xD7)
//	version    1 byte  (Version)
//	flags      1 byte  (bit 0: duplicate copy)
//	from       uvarint (sender process id)
//	to         uvarint (receiver process id)
//	sentAt     uvarint (global send step)
//	arriveAt   uvarint (global delivery step, interposer-stamped)
//	seq        uvarint (sender's post-increment send counter)
//	kindLen    1 byte  + kind bytes (Payload.Kind())
//	headerCRC  4 bytes big-endian (CRC-32/IEEE of everything above)
//	payloadLen uvarint + payload bytes (registered codec encoding)
//	payloadCRC 4 bytes big-endian (CRC-32/IEEE of the payload bytes)
//
// The checksum is split in two on purpose: the envelope's routing header
// and its payload fail independently. A frame whose header checksum fails
// is unusable and decoding returns an error; a frame whose *payload*
// checksum fails decodes into a valid addressed envelope with a nil
// Payload and ErrPayloadChecksum — the live analogue of the simulator's
// corruption model (faults.go: corruption is detected loss, never a forged
// payload), letting the receiver account the drop at the right step
// without trusting a single corrupted byte of protocol state.
//
// Payload encodings are pluggable per kind (RegisterPayload); the gossip
// protocols register theirs in internal/gossip so decoded payloads are the
// exact concrete types the protocol type switches expect. Decoding never
// panics on arbitrary input — every malformed frame maps to a typed error
// (FuzzWireCodec pins this).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"github.com/ugf-sim/ugf/internal/sim"
)

// Version is the current body-format version; decoders reject others.
const Version = 1

// frameMagic is the body's first byte, a cheap guard against feeding a
// non-wire stream (or a misaligned one) to the decoder.
const frameMagic = 0xD7

// Size limits. MaxFrameSize bounds what ReadFrame will buffer for one
// frame (and hence what a malicious or corrupted length prefix can make a
// receiver allocate); MaxPayloadSize bounds the payload section within it.
const (
	MaxFrameSize   = 1 << 20
	MaxPayloadSize = MaxFrameSize - 64
	maxKindLen     = 255
)

// Typed decode errors. Decoders wrap these with position detail; match
// with errors.Is.
var (
	ErrFrameTooShort   = errors.New("wire: frame truncated")
	ErrFrameTooLarge   = errors.New("wire: frame exceeds size limit")
	ErrBadMagic        = errors.New("wire: bad frame magic")
	ErrBadVersion      = errors.New("wire: unsupported frame version")
	ErrHeaderChecksum  = errors.New("wire: header checksum mismatch")
	ErrPayloadChecksum = errors.New("wire: payload checksum mismatch")
	ErrTrailingBytes   = errors.New("wire: trailing bytes after frame body")
	ErrFieldRange      = errors.New("wire: field out of range")
	ErrUnknownKind     = errors.New("wire: unknown payload kind")
)

// Envelope is one decoded wire message: the routing header the interposer
// and receiver act on, plus the protocol payload.
type Envelope struct {
	From     sim.ProcID
	To       sim.ProcID
	SentAt   sim.Step
	ArriveAt sim.Step
	// Seq is the sender's post-increment send counter — the value the
	// fault plan's hash roll keys on, carried so receiver-side tooling can
	// re-derive interposer verdicts.
	Seq int64
	// Dup marks the extra copy of a duplicated delivery.
	Dup bool
	// Kind is the payload kind (Payload.Kind() of the original value).
	Kind string
	// Payload is the decoded protocol payload; nil when decoding returned
	// ErrPayloadChecksum.
	Payload sim.Payload
}

// flag bits.
const flagDup = 1 << 0

// Encode serializes the envelope into a frame body (no length prefix; see
// WriteFrame/AppendFrame for framing).
func (e *Envelope) Encode() ([]byte, error) {
	switch {
	case e.From < 0 || int64(e.From) > math.MaxInt32:
		return nil, fmt.Errorf("%w: from=%d", ErrFieldRange, e.From)
	case e.To < 0 || int64(e.To) > math.MaxInt32:
		return nil, fmt.Errorf("%w: to=%d", ErrFieldRange, e.To)
	case e.SentAt < 0 || e.ArriveAt < 0 || e.Seq < 0:
		return nil, fmt.Errorf("%w: negative step or seq", ErrFieldRange)
	case len(e.Kind) > maxKindLen:
		return nil, fmt.Errorf("%w: kind %d bytes", ErrFieldRange, len(e.Kind))
	}
	payload, err := EncodePayload(e.Kind, e.Payload)
	if err != nil {
		return nil, err
	}
	if len(payload) > MaxPayloadSize {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrFrameTooLarge, len(payload))
	}
	var flags byte
	if e.Dup {
		flags |= flagDup
	}
	body := make([]byte, 0, 32+len(e.Kind)+len(payload))
	body = append(body, frameMagic, Version, flags)
	body = binary.AppendUvarint(body, uint64(e.From))
	body = binary.AppendUvarint(body, uint64(e.To))
	body = binary.AppendUvarint(body, uint64(e.SentAt))
	body = binary.AppendUvarint(body, uint64(e.ArriveAt))
	body = binary.AppendUvarint(body, uint64(e.Seq))
	body = append(body, byte(len(e.Kind)))
	body = append(body, e.Kind...)
	body = binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	body = binary.AppendUvarint(body, uint64(len(payload)))
	body = append(body, payload...)
	body = binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(payload))
	return body, nil
}

// reader is a bounds-checked cursor over a frame body.
type reader struct {
	buf []byte
	off int
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, fmt.Errorf("%w: want %d bytes at offset %d of %d", ErrFrameTooShort, n, r.off, len(r.buf))
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) byte() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) uvarint(field string) (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: %s varint", ErrFrameTooShort, field)
	}
	r.off += n
	return v, nil
}

// uint63 reads a uvarint that must fit a non-negative int64.
func (r *reader) uint63(field string) (int64, error) {
	v, err := r.uvarint(field)
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt64 {
		return 0, fmt.Errorf("%w: %s=%d", ErrFieldRange, field, v)
	}
	return int64(v), nil
}

// decodeHeader parses the pre-checksum header section into e.
func (e *Envelope) decodeHeader(r *reader) error {
	magic, err := r.byte()
	if err != nil {
		return err
	}
	if magic != frameMagic {
		return fmt.Errorf("%w: 0x%02x", ErrBadMagic, magic)
	}
	ver, err := r.byte()
	if err != nil {
		return err
	}
	if ver != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	flags, err := r.byte()
	if err != nil {
		return err
	}
	e.Dup = flags&flagDup != 0
	from, err := r.uint63("from")
	if err != nil {
		return err
	}
	to, err := r.uint63("to")
	if err != nil {
		return err
	}
	if from > math.MaxInt32 || to > math.MaxInt32 {
		return fmt.Errorf("%w: from=%d to=%d", ErrFieldRange, from, to)
	}
	e.From, e.To = sim.ProcID(from), sim.ProcID(to)
	sentAt, err := r.uint63("sentAt")
	if err != nil {
		return err
	}
	arriveAt, err := r.uint63("arriveAt")
	if err != nil {
		return err
	}
	e.SentAt, e.ArriveAt = sim.Step(sentAt), sim.Step(arriveAt)
	if e.Seq, err = r.uint63("seq"); err != nil {
		return err
	}
	kindLen, err := r.byte()
	if err != nil {
		return err
	}
	kind, err := r.bytes(int(kindLen))
	if err != nil {
		return err
	}
	e.Kind = string(kind)
	return nil
}

// DecodeEnvelope parses a frame body produced by Encode. On
// ErrPayloadChecksum the returned envelope's header fields (From, To,
// steps, Seq, Dup, Kind) are valid and Payload is nil — the caller decides
// how to account the detected corruption. Every other error means the
// frame is unusable and the envelope is zero.
func DecodeEnvelope(body []byte) (Envelope, error) {
	var e Envelope
	if len(body) > MaxFrameSize {
		return e, fmt.Errorf("%w: body %d bytes", ErrFrameTooLarge, len(body))
	}
	r := &reader{buf: body}
	if err := e.decodeHeader(r); err != nil {
		return Envelope{}, err
	}
	headerEnd := r.off
	hcrc, err := r.bytes(4)
	if err != nil {
		return Envelope{}, err
	}
	if got, want := crc32.ChecksumIEEE(body[:headerEnd]), binary.BigEndian.Uint32(hcrc); got != want {
		return Envelope{}, fmt.Errorf("%w: got %08x want %08x", ErrHeaderChecksum, got, want)
	}
	plen, err := r.uint63("payloadLen")
	if err != nil {
		return Envelope{}, err
	}
	if plen > MaxPayloadSize {
		return Envelope{}, fmt.Errorf("%w: payload %d bytes", ErrFrameTooLarge, plen)
	}
	payload, err := r.bytes(int(plen))
	if err != nil {
		return Envelope{}, err
	}
	pcrc, err := r.bytes(4)
	if err != nil {
		return Envelope{}, err
	}
	if r.off != len(body) {
		return Envelope{}, fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(body)-r.off)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(pcrc); got != want {
		// The header checksum held, so the envelope is addressed; only the
		// payload is untrustworthy. Hand back the header for accounting.
		return e, fmt.Errorf("%w: got %08x want %08x", ErrPayloadChecksum, got, want)
	}
	pl, err := DecodePayload(e.Kind, payload)
	if err != nil {
		return Envelope{}, err
	}
	e.Payload = pl
	return e, nil
}

// CorruptBody flips one payload bit of an encoded body in place — the
// interposer's physical corruption primitive. The bit index selects among
// the payload bits (or, for an empty payload, the payload-checksum bits),
// so the damage always lands where only ErrPayloadChecksum can come back:
// the envelope stays addressable and the receiver detects the corruption
// at delivery, exactly the simulator's detected-loss semantics.
func CorruptBody(body []byte, bit uint64) error {
	var e Envelope
	r := &reader{buf: body}
	if err := e.decodeHeader(r); err != nil {
		return err
	}
	if _, err := r.bytes(4); err != nil { // header CRC
		return err
	}
	plen, err := r.uint63("payloadLen")
	if err != nil {
		return err
	}
	start := r.off
	if _, err := r.bytes(int(plen)); err != nil {
		return err
	}
	region := body[start : start+int(plen)]
	if plen == 0 {
		pc, err := r.bytes(4)
		if err != nil {
			return err
		}
		region = pc
	}
	nbits := uint64(len(region)) * 8
	i := bit % nbits
	region[i/8] ^= 1 << (i % 8)
	return nil
}

// WriteFrame writes the 4-byte big-endian length prefix and the body.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrameSize {
		return fmt.Errorf("%w: body %d bytes", ErrFrameTooLarge, len(body))
	}
	var pfx [4]byte
	binary.BigEndian.PutUint32(pfx[:], uint32(len(body)))
	if _, err := w.Write(pfx[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// AppendFrame appends the length prefix and body to dst — the in-process
// transport's allocation-friendly WriteFrame.
func AppendFrame(dst, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	return append(dst, body...)
}

// ReadFrame reads one length-prefixed frame and returns its body. An EOF
// on the prefix boundary returns io.EOF unwrapped, so stream consumers can
// end cleanly; a truncated prefix or body is ErrFrameTooShort.
func ReadFrame(r io.Reader) ([]byte, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: length prefix: %v", ErrFrameTooShort, err)
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrFrameTooShort, err)
	}
	return body, nil
}

// ParseFrame splits a framed buffer (length prefix + body, as built by
// AppendFrame) back into its body, rejecting length mismatches.
func ParseFrame(frame []byte) ([]byte, error) {
	if len(frame) < 4 {
		return nil, fmt.Errorf("%w: %d-byte frame", ErrFrameTooShort, len(frame))
	}
	n := binary.BigEndian.Uint32(frame[:4])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, n)
	}
	if int(n) != len(frame)-4 {
		return nil, fmt.Errorf("%w: declared %d bytes, have %d", ErrFrameTooShort, n, len(frame)-4)
	}
	return frame[4:], nil
}

// PayloadCodec encodes and decodes one payload kind. Encode appends the
// encoding of pl to dst; Decode must tolerate arbitrary bytes and return
// an error (never panic) on malformed input. Decode must produce the exact
// concrete type the protocols' type switches expect.
type PayloadCodec struct {
	Kind   string
	Encode func(dst []byte, pl sim.Payload) ([]byte, error)
	Decode func(data []byte) (sim.Payload, error)
}

var registry = struct {
	sync.RWMutex
	codecs map[string]PayloadCodec
}{codecs: make(map[string]PayloadCodec)}

// RegisterPayload installs a payload codec. Kinds are registered once, at
// package init time; duplicate or incomplete registrations are programmer
// errors and panic.
func RegisterPayload(c PayloadCodec) {
	if c.Kind == "" || c.Encode == nil || c.Decode == nil {
		panic("wire: RegisterPayload needs kind, encoder and decoder")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.codecs[c.Kind]; dup {
		panic("wire: payload kind registered twice: " + c.Kind)
	}
	registry.codecs[c.Kind] = c
}

// RegisteredKinds returns the payload kinds with installed codecs, in no
// particular order — the surface behind the live runtime's pre-flight
// check that a protocol's payloads can travel the wire at all.
func RegisteredKinds() []string {
	registry.RLock()
	defer registry.RUnlock()
	kinds := make([]string, 0, len(registry.codecs))
	for k := range registry.codecs {
		kinds = append(kinds, k)
	}
	return kinds
}

func lookup(kind string) (PayloadCodec, bool) {
	registry.RLock()
	defer registry.RUnlock()
	c, ok := registry.codecs[kind]
	return c, ok
}

// EncodePayload encodes a payload of the given kind via its registered
// codec.
func EncodePayload(kind string, pl sim.Payload) ([]byte, error) {
	c, ok := lookup(kind)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, kind)
	}
	return c.Encode(nil, pl)
}

// DecodePayload decodes payload bytes of the given kind via its
// registered codec.
func DecodePayload(kind string, data []byte) (sim.Payload, error) {
	c, ok := lookup(kind)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, kind)
	}
	return c.Decode(data)
}
