package simtest

import (
	"fmt"
	"sort"

	"github.com/ugf-sim/ugf/internal/adversary"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// genDomain separates the generator's derivation path from every seed
// domain the engine uses, so a generated case's run seed never aliases
// the stream that generated it.
const genDomain uint64 = 0x67656e // "gen"

// Case is one generated run configuration. Name encodes the generator
// seed and the drawn dimensions, so a failing property names the exact
// case to replay: Gen(seed) is a pure function.
type Case struct {
	Name string
	Cfg  sim.Config
}

// Gen derives a pseudo-random configuration from genSeed: system size,
// crash budget, protocol, adversary (registry strategies, a random
// Script, or none), run seed, stats interval, and occasional tight
// Horizon/MaxEvents cutoffs so the HorizonHit paths are compared too.
// The distribution leans small — differential runs cost 2× and the
// oracle is O(N) per event — while still crossing every protocol and
// adversary with crashes, rewrites, omission, and cutoff behavior.
func Gen(genSeed uint64) Case {
	r := xrand.New(xrand.Derive(genSeed, genDomain))

	var n int
	switch r.Intn(4) {
	case 0:
		n = 1 + r.Intn(4) // tiny: degenerate schedules, N=1 edge
	case 1, 2:
		n = 5 + r.Intn(20)
	default:
		n = 25 + r.Intn(16)
	}
	f := r.Intn(n)

	protoNames := gossip.Names()
	pname := protoNames[r.Intn(len(protoNames))]

	var adv sim.Adversary
	aname := "script"
	if r.Intn(3) > 0 {
		advNames := adversary.Names()
		aname = advNames[r.Intn(len(advNames))]
		adv = adversary.MustByName(aname)
	} else {
		adv = genScript(r, n)
	}

	cfg := sim.Config{
		N:              n,
		F:              f,
		Protocol:       gossip.MustByName(pname),
		Adversary:      adv,
		Seed:           r.Uint64(),
		KeepPerProcess: r.Bernoulli(0.5),
	}
	if r.Bernoulli(0.5) {
		cfg.StatsEvery = 1 << r.Intn(10)
	}
	if r.Intn(8) == 0 {
		cfg.MaxEvents = 1000 + r.Int63n(5000)
	}
	if r.Intn(8) == 0 {
		cfg.Horizon = 50 + sim.Step(r.Int63n(500))
	}

	return Case{
		Name: fmt.Sprintf("gen-%#x/%s/%s/n=%d/f=%d/seed=%#x", genSeed, pname, aname, n, f, cfg.Seed),
		Cfg:  cfg,
	}
}

// genScript draws a random deterministic action list: crashes and
// δ/d/omission rewrites at arbitrary (often never-active) trigger steps,
// with values spanning several orders of magnitude.
func genScript(r *xrand.RNG, n int) Script {
	count := r.Intn(9)
	actions := make([]Action, count)
	for i := range actions {
		a := Action{
			At: sim.Step(r.Int63n(200)),
			Op: Op(r.Intn(5)),
			P:  sim.ProcID(r.Intn(n)),
		}
		if a.Op == OpSetDelta || a.Op == OpSetDelay {
			a.V = 1 + sim.Step(r.Int63n(int64(1)<<uint(r.Intn(12))))
		}
		actions[i] = a
	}
	sort.SliceStable(actions, func(i, j int) bool { return actions[i].At < actions[j].At })
	return Script{Actions: actions}
}
