package simtest

import (
	"fmt"
	"sort"

	"github.com/ugf-sim/ugf/internal/adversary"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// genDomain separates the generator's derivation path from every seed
// domain the engine uses, so a generated case's run seed never aliases
// the stream that generated it.
const genDomain uint64 = 0x67656e // "gen"

// Case is one generated run configuration. Name encodes the generator
// seed and the drawn dimensions, so a failing property names the exact
// case to replay: Gen(seed) is a pure function.
type Case struct {
	Name string
	Cfg  sim.Config
	// Big marks a case drawn from the large-N band (genBig). Properties
	// keep their semantic checks on big cases but drop purely
	// representational extras whose cost scales with the event count —
	// today, the JSONL trace round-trip.
	Big bool
	// SkipOracle marks cases past the naive oracle's tractable bound —
	// its per-step O(N) scans make dense big-N runs quadratic — so the
	// differential property skips them and the remaining properties
	// (serial≡workers, determinism, trace audit) carry the coverage.
	SkipOracle bool
}

// Gen derives a pseudo-random configuration from genSeed: system size,
// crash budget, protocol, adversary (registry strategies, a random
// Script, or none), run seed, stats interval, and occasional tight
// Horizon/MaxEvents cutoffs so the HorizonHit paths are compared too.
// The distribution leans small — differential runs cost 2× and the
// oracle is O(N) per event — while still crossing every protocol and
// adversary with crashes, rewrites, omission, and cutoff behavior.
func Gen(genSeed uint64) Case {
	r := xrand.New(xrand.Derive(genSeed, genDomain))

	if r.Intn(12) == 0 {
		return genBig(r, genSeed)
	}

	var n int
	switch r.Intn(4) {
	case 0:
		n = 1 + r.Intn(4) // tiny: degenerate schedules, N=1 edge
	case 1, 2:
		n = 5 + r.Intn(20)
	default:
		n = 25 + r.Intn(16)
	}
	f := r.Intn(n)

	protoNames := gossip.Names()
	pname := protoNames[r.Intn(len(protoNames))]

	var adv sim.Adversary
	aname := "script"
	if r.Intn(3) > 0 {
		advNames := adversary.Names()
		aname = advNames[r.Intn(len(advNames))]
		adv = adversary.MustByName(aname)
	} else {
		adv = genScript(r, n)
	}

	cfg := sim.Config{
		N:              n,
		F:              f,
		Protocol:       gossip.MustByName(pname),
		Adversary:      adv,
		Seed:           r.Uint64(),
		KeepPerProcess: r.Bernoulli(0.5),
	}
	if r.Bernoulli(0.5) {
		cfg.StatsEvery = 1 << r.Intn(10)
	}
	if r.Intn(8) == 0 {
		cfg.MaxEvents = 1000 + r.Int63n(5000)
	}
	if r.Intn(8) == 0 {
		cfg.Horizon = 50 + sim.Step(r.Int63n(500))
	}
	if r.Intn(4) == 0 {
		cfg.Faults = &sim.FaultPlan{
			Seed:      r.Uint64(),
			Drop:      float64(r.Intn(4)) * 0.05,
			Duplicate: float64(r.Intn(4)) * 0.05,
			Corrupt:   float64(r.Intn(4)) * 0.05,
		}
	}
	tname := "complete"
	if r.Intn(4) == 0 {
		cfg.Topology = genTopology(r)
		tname = cfg.Topology.Kind
	}
	// A lossy network, a scripted partition/link drop, or a sparse
	// topology can sever the traffic a protocol is waiting for; give those
	// cases a stall window so they terminate with Outcome.Stalled in
	// bounded events instead of spinning to the horizon. Some fault-free
	// cases draw a window too, so the no-stall path of the detector is
	// differentially compared as well.
	needStall := cfg.Faults != nil || cfg.Topology != nil
	if s, ok := adv.(Script); ok {
		for _, a := range s.Actions {
			switch a.Op {
			case OpSetClass, OpDropLink, OpRemoveEdge, OpRewireEdge:
				needStall = true
			}
		}
	}
	if needStall || r.Intn(8) == 0 {
		cfg.StallWindow = 2048 + r.Int63n(4096)
	}
	// Sparse topologies keep neighbor traffic flowing even when gathering
	// is impossible, so the stall signature alone may never freeze; a
	// tight event cutoff bounds every topology case unconditionally.
	if cfg.Topology != nil && cfg.MaxEvents == 0 {
		cfg.MaxEvents = 2000 + r.Int63n(8000)
	}

	return Case{
		Name: fmt.Sprintf("gen-%#x/%s/%s/%s/n=%d/f=%d/seed=%#x", genSeed, pname, aname, tname, n, f, cfg.Seed),
		Cfg:  cfg,
	}
}

// genTopology draws a non-complete communication graph: the sparse kinds
// with degrees small enough to bite at the generator's N band. Callers
// must pair it with a stall window and an event cutoff — sparse graphs
// can make gathering impossible without quiescing.
func genTopology(r *xrand.RNG) *sim.Topology {
	switch r.Intn(4) {
	case 0:
		return &sim.Topology{Kind: "ring"}
	case 1:
		return &sim.Topology{Kind: "k-regular", K: 2 + 2*r.Intn(4)}
	case 2:
		return &sim.Topology{Kind: "expander", K: 2 + 2*r.Intn(4), Seed: r.Uint64()}
	default:
		return &sim.Topology{Kind: "radio", K: 1 + r.Intn(4), Seed: r.Uint64()}
	}
}

// oracleEventBudget bounds the naive oracle's cost on a generated case:
// activeSteps × N, the dominant term of its per-step O(N) scans. Cases
// above it set SkipOracle — at ring/50k the oracle alone would run 2.5
// billion scan iterations per differential run.
const oracleEventBudget = 60_000_000

// genBig draws a large-N case from the synthetic engine workloads
// (workload.go): N from 1k to 50k, a workload with O(1) per-process
// state, and occasionally a Script adversary so crashes, rewrites, and
// omission are exercised at scale too. KeepPerProcess stays off — an
// O(N) outcome column per case would dominate diffing, not the engine.
func genBig(r *xrand.RNG, genSeed uint64) Case {
	sizes := []int{1000, 2000, 4000, 8000, 16000, 32000, 50000}
	n := sizes[r.Intn(len(sizes))]
	proto, label, activeSteps := bigWorkload(r.Intn(3), n)

	var adv sim.Adversary
	aname := "none"
	if r.Intn(3) == 0 {
		aname = "script"
		adv = genScript(r, n)
	}

	cfg := sim.Config{
		N:         n,
		F:         r.Intn(64),
		Protocol:  proto,
		Adversary: adv,
		Seed:      r.Uint64(),
	}
	if r.Bernoulli(0.25) {
		cfg.StatsEvery = 1 << r.Intn(10)
	}

	return Case{
		Name:       fmt.Sprintf("gen-%#x/big-%s/%s/n=%d/seed=%#x", genSeed, label, aname, n, cfg.Seed),
		Cfg:        cfg,
		Big:        true,
		SkipOracle: activeSteps*int64(n) > oracleEventBudget,
	}
}

// genScript draws a random deterministic action list: crashes,
// recoveries, δ/d/omission rewrites, partition-class assignments, link
// drops/heals, and communication-graph edge edits at arbitrary (often
// never-active) trigger steps, with values spanning several orders of
// magnitude.
func genScript(r *xrand.RNG, n int) Script {
	count := r.Intn(9)
	actions := make([]Action, count)
	for i := range actions {
		a := Action{
			At: sim.Step(r.Int63n(200)),
			Op: Op(r.Intn(12)),
			P:  sim.ProcID(r.Intn(n)),
		}
		switch a.Op {
		case OpSetDelta, OpSetDelay:
			a.V = 1 + sim.Step(r.Int63n(int64(1)<<uint(r.Intn(12))))
		case OpRecover:
			a.V = sim.Step(r.Intn(2)) // retained or amnesiac
		case OpSetClass:
			a.V = sim.Step(r.Intn(3))
		case OpDropLink, OpHealLink, OpAddEdge, OpRemoveEdge:
			a.V = sim.Step(r.Intn(n))
		case OpRewireEdge:
			a.V = sim.Step(r.Intn(n))
			a.V2 = sim.Step(r.Intn(n))
		}
		actions[i] = a
	}
	sort.SliceStable(actions, func(i, j int) bool { return actions[i].At < actions[j].At })
	return Script{Actions: actions}
}
