package simtest

import (
	"github.com/ugf-sim/ugf/internal/sim"
)

// Engine-scale workloads.
//
// The gossip protocols of the paper carry Θ(N)-bit knowledge per process
// (bitsets, version vectors), so running them at N in the hundreds of
// thousands is a protocol-memory problem, not an engine problem. The
// workloads here are the complement: protocols with O(1) state per
// process and a bounded event budget, so a run's cost is pure engine
// cost — scheduling, delivery, payload interning, mailbox churn. They
// back the big-N band of the config generator (gen.go), the ring/100k
// smoke test, and the BenchmarkEngineBigN benchmarks in internal/sim.
//
// All three draw randomness exclusively from Env.RNG and keep the
// engine/oracle determinism contract, so big-N cases remain subject to
// the differential, metamorphic, and trace properties.

// Payloads are pre-boxed package singletons: sends hand the engine the
// same interface value every time, which is what lets the steady-state
// engine loop run allocation-free and the Outbox intern fan-outs once.
var (
	tokenPl sim.Payload = wlPayload{k: "token"}
	gossPl  sim.Payload = wlPayload{k: "goss"}
	pullPl  sim.Payload = wlPayload{k: "pull-req"}
	pushPl  sim.Payload = wlPayload{k: "push"}
)

type wlPayload struct{ k string }

func (p wlPayload) Kind() string { return p.k }

// Ring is a token ring: process 0 emits a token that hops to the next
// process, Laps times around. Exactly one process is active per global
// step, which makes it the sparsest possible scheduling workload —
// N·Laps events spread over N·Laps distinct steps. It is the engine
// benchmark workload of PR 1 promoted to a reusable protocol.
type Ring struct {
	// Laps is how many times the token circles the ring; 0 means 1.
	Laps int
}

// Name implements sim.Protocol.
func (Ring) Name() string { return "wl-ring" }

// New implements sim.Protocol. Process state is batch-allocated — one
// backing array, not one heap object per process — the idiom any protocol
// intended for very large N should follow.
func (r Ring) New(envs []sim.Env) []sim.Process {
	laps := r.Laps
	if laps < 1 {
		laps = 1
	}
	backing := make([]ringProc, len(envs))
	procs := make([]sim.Process, len(envs))
	for i, env := range envs {
		backing[i] = ringProc{env: env, laps: laps}
		procs[i] = &backing[i]
	}
	return procs
}

type ringProc struct {
	env    sim.Env
	laps   int
	passed int
	booted bool
}

func (p *ringProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	forward := false
	if p.env.ID == 0 && !p.booted {
		p.booted = true
		forward = true
	}
	for range delivered {
		forward = true
	}
	if forward && p.passed < p.laps && p.env.N > 1 {
		p.passed++
		out.Send(sim.ProcID((int(p.env.ID)+1)%p.env.N), tokenPl)
	}
}

func (p *ringProc) Asleep() bool            { return p.env.ID != 0 || p.booted }
func (p *ringProc) Knows(g sim.ProcID) bool { return g == p.env.ID }

// Stagger is a dense-to-sparse dissemination curve: every process sends
// one message per local step to a uniformly random peer, and process i
// stays busy for 1 + i mod Rounds local steps, so activity thins out
// step by step instead of stopping all at once. Event budget ≈
// N·(Rounds+1)/2 sends.
type Stagger struct {
	// Rounds bounds the per-process active steps; 0 means 8.
	Rounds int
}

// Name implements sim.Protocol.
func (Stagger) Name() string { return "wl-stagger" }

// New implements sim.Protocol. Batch-allocated like Ring.New.
func (s Stagger) New(envs []sim.Env) []sim.Process {
	rounds := s.Rounds
	if rounds < 1 {
		rounds = 8
	}
	backing := make([]staggerProc, len(envs))
	procs := make([]sim.Process, len(envs))
	for i, env := range envs {
		backing[i] = staggerProc{env: env, rounds: 1 + int(env.ID)%rounds}
		procs[i] = &backing[i]
	}
	return procs
}

type staggerProc struct {
	env    sim.Env
	rounds int
	done   int
}

func (p *staggerProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	if p.done < p.rounds && p.env.N > 1 {
		p.done++
		out.Send(sim.ProcID(p.env.RNG.IntnExcept(p.env.N, int(p.env.ID))), gossPl)
	}
}

func (p *staggerProc) Asleep() bool            { return p.done >= p.rounds }
func (p *staggerProc) Knows(g sim.ProcID) bool { return g == p.env.ID }

// PullServe is the engine-scale silhouette of Push-Pull: every process
// sends Pulls pull requests to uniformly random peers (one per local
// step) and answers every request it receives with a push — including
// while asleep, the same serve-after-completion semantics that makes
// real Push-Pull's sleeping processes answer pulls. It exercises the
// request/response delivery pattern, mailbox wake-ups of sleeping
// processes, and shared-payload interning, at ~4·N·Pulls events and
// O(1) state per process.
type PullServe struct {
	// Pulls is the number of pull requests each process makes; 0 means 4.
	Pulls int
}

// Name implements sim.Protocol.
func (PullServe) Name() string { return "wl-pullserve" }

// New implements sim.Protocol. Batch-allocated like Ring.New.
func (ps PullServe) New(envs []sim.Env) []sim.Process {
	pulls := ps.Pulls
	if pulls < 1 {
		pulls = 4
	}
	backing := make([]pullServeProc, len(envs))
	procs := make([]sim.Process, len(envs))
	for i, env := range envs {
		backing[i] = pullServeProc{env: env, pulls: pulls}
		procs[i] = &backing[i]
	}
	return procs
}

type pullServeProc struct {
	env   sim.Env
	pulls int
}

func (p *pullServeProc) Step(now sim.Step, delivered []sim.Message, out *sim.Outbox) {
	for _, m := range delivered {
		if m.Payload == pullPl {
			out.Send(m.From, pushPl)
		}
	}
	if p.pulls > 0 && p.env.N > 1 {
		p.pulls--
		out.Send(sim.ProcID(p.env.RNG.IntnExcept(p.env.N, int(p.env.ID))), pullPl)
	}
}

func (p *pullServeProc) Asleep() bool            { return p.pulls == 0 }
func (p *pullServeProc) Knows(g sim.ProcID) bool { return g == p.env.ID }

// bigWorkload builds one of the three workloads from a small selector,
// returning the protocol, a label for the case name, and a conservative
// estimate of the run's active-step count (what the oracle's O(N)
// per-step scans multiply against).
func bigWorkload(sel, n int) (proto sim.Protocol, label string, activeSteps int64) {
	switch sel % 3 {
	case 0:
		return Ring{Laps: 1}, "wl-ring", int64(n) + 2
	case 1:
		return Stagger{Rounds: 8}, "wl-stagger", 64
	default:
		return PullServe{Pulls: 4}, "wl-pullserve", 32
	}
}
