package check_test

import (
	"strings"
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/sim/trace"
	"github.com/ugf-sim/ugf/internal/simtest/check"
)

// feed pushes a minimal consistent prefix: p0 sends to p1 at step 1, the
// message arrives at step 2.
func feed(s *check.Sink) {
	s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 1, Proc: 0, Other: 1})
	s.Event(sim.TraceEvent{Kind: sim.TraceArrive, Step: 2, Proc: 1, Other: 0})
}

// TestSinkCatches drives deliberately broken streams through the sink
// and asserts each violation is detected — the property suite only
// proves the engine satisfies the validator, this proves the validator
// can fail.
func TestSinkCatches(t *testing.T) {
	cases := []struct {
		name string
		run  func(s *check.Sink)
		want string // substring of some violation
	}{
		{
			name: "backwards step",
			run: func(s *check.Sink) {
				feed(s)
				s.Event(sim.TraceEvent{Kind: sim.TraceLocalStep, Step: 1, Proc: 0, Other: -1})
			},
			want: "step went backwards",
		},
		{
			name: "arrival without send",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceArrive, Step: 2, Proc: 1, Other: 0})
			},
			want: "without a prior matching send",
		},
		{
			name: "send consumed twice",
			run: func(s *check.Sink) {
				feed(s)
				s.Event(sim.TraceEvent{Kind: sim.TraceArrive, Step: 3, Proc: 1, Other: 0})
			},
			want: "without a prior matching send",
		},
		{
			name: "send by crashed process",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceCrash, Step: 1, Proc: 0, Other: -1})
				s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 2, Proc: 0, Other: 1})
			},
			want: "crashed process 0",
		},
		{
			name: "delivery to crashed process",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 1, Proc: 0, Other: 1})
				s.Event(sim.TraceEvent{Kind: sim.TraceCrash, Step: 1, Proc: 1, Other: -1})
				s.Event(sim.TraceEvent{Kind: sim.TraceArrive, Step: 2, Proc: 1, Other: 0})
			},
			want: "delivery to crashed process 1",
		},
		{
			name: "local step by crashed process",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceCrash, Step: 1, Proc: 2, Other: -1})
				s.Event(sim.TraceEvent{Kind: sim.TraceLocalStep, Step: 2, Proc: 2, Other: -1})
			},
			want: "step by crashed process 2",
		},
		{
			name: "double crash",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceCrash, Step: 1, Proc: 0, Other: -1})
				s.Event(sim.TraceEvent{Kind: sim.TraceCrash, Step: 2, Proc: 0, Other: -1})
			},
			want: "crashed twice",
		},
		{
			name: "arrival after send in same step",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 1, Proc: 0, Other: 1})
				s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 2, Proc: 0, Other: 1})
				s.Event(sim.TraceEvent{Kind: sim.TraceArrive, Step: 2, Proc: 1, Other: 0})
			},
			want: "deliveries must precede local steps",
		},
		{
			name: "event after end",
			run: func(s *check.Sink) {
				feed(s)
				s.Event(sim.TraceEvent{Kind: sim.TraceEnd, Step: 2, Proc: -1, Other: -1, Note: "quiescence"})
				s.Event(sim.TraceEvent{Kind: sim.TraceLocalStep, Step: 3, Proc: 0, Other: -1})
			},
			want: "after the end marker",
		},
		{
			name: "end without note",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceEnd, Step: 1, Proc: -1, Other: -1})
			},
			want: "without a reason note",
		},
		{
			name: "dropped send arrives anyway",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 1, Proc: 0, Other: 1})
				s.Event(sim.TraceEvent{Kind: sim.TraceDrop, Step: 1, Proc: 1, Other: 0, Note: "loss"})
				s.Event(sim.TraceEvent{Kind: sim.TraceArrive, Step: 2, Proc: 1, Other: 0})
			},
			want: "without a prior matching send",
		},
		{
			name: "drop without send",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceDrop, Step: 1, Proc: 1, Other: 0, Note: "link"})
			},
			want: "drop at 1 from 0 without a prior matching send",
		},
		{
			name: "drop without note",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 1, Proc: 0, Other: 1})
				s.Event(sim.TraceEvent{Kind: sim.TraceDrop, Step: 1, Proc: 1, Other: 0})
			},
			want: "drop at 1 without a reason note",
		},
		{
			name: "duplicate arrival on a silent link",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceArrive, Step: 2, Proc: 1, Other: 0, Note: "dup"})
			},
			want: "duplicate arrival at 1 from 0 on a link that never sent",
		},
		{
			name: "duplicate drop on a silent link",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceDrop, Step: 2, Proc: 1, Other: 0, Note: "crashed dup"})
			},
			want: "duplicate drop at 1 from 0 on a link that never sent",
		},
		{
			name: "recovery of a process that never crashed",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceRecover, Step: 1, Proc: 0, Other: -1, Note: "retain"})
			},
			want: "recovery of process 0, which is not crashed",
		},
		{
			name: "topology drop on a live edge",
			run: func(s *check.Sink) {
				s.UseTopology(&sim.Topology{Kind: "ring"}, 4)
				s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 1, Proc: 0, Other: 1})
				s.Event(sim.TraceEvent{Kind: sim.TraceDrop, Step: 1, Proc: 1, Other: 0, Note: "topology"})
			},
			want: "the edge was live at send",
		},
		{
			name: "addedge that changes nothing",
			run: func(s *check.Sink) {
				// Lazy complete base: 0–1 is already live, so the engine
				// would never have traced this edit.
				s.Event(sim.TraceEvent{Kind: sim.TraceAdversary, Step: 1, Proc: 0, Other: 1, Note: "addedge"})
			},
			want: "addedge 0–1 did not change the graph",
		},
		{
			name: "removeedge that changes nothing",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceAdversary, Step: 1, Proc: 0, Other: 1, Note: "removeedge"})
				s.Event(sim.TraceEvent{Kind: sim.TraceAdversary, Step: 2, Proc: 0, Other: 1, Note: "removeedge"})
			},
			want: "removeedge 0–1 did not change the graph",
		},
		{
			name: "edge edit without an endpoint",
			run: func(s *check.Sink) {
				s.Event(sim.TraceEvent{Kind: sim.TraceAdversary, Step: 1, Proc: 0, Other: -1, Note: "removeedge"})
			},
			want: "without an edge endpoint",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := check.New()
			tc.run(s)
			found := false
			for _, v := range s.Violations() {
				if strings.Contains(v, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("want a violation containing %q, got %q", tc.want, s.Violations())
			}
		})
	}
}

// TestFinishReconciliation checks the Outcome reconciliation arm: a
// clean stream against Stats counters that do not match it must fail,
// and against matching counters must pass.
func TestFinishReconciliation(t *testing.T) {
	good := sim.Outcome{Quiescence: 2}
	good.Stats.Sends = 1
	good.Stats.Deliveries = 1

	s := check.New()
	feed(s)
	s.Event(sim.TraceEvent{Kind: sim.TraceEnd, Step: 2, Proc: -1, Other: -1, Note: "quiescence"})
	if vs := s.Finish(good); len(vs) != 0 {
		t.Errorf("clean stream against matching outcome: %q", vs)
	}

	bad := good
	bad.Stats.Sends = 5
	vs := s.Finish(bad)
	if len(vs) == 0 {
		t.Error("stream with 1 send accepted against Stats.Sends=5")
	}

	noEnd := check.New()
	feed(noEnd)
	if vs := noEnd.Finish(good); len(vs) == 0 {
		t.Error("stream without end marker accepted")
	}

	wrongEnd := good
	wrongEnd.Quiescence = 99
	if vs := s.Finish(wrongEnd); len(vs) == 0 {
		t.Error("end marker at t=2 accepted against Quiescence=99")
	}
}

// TestRecoveryLifecycle drives a legal crash → recover → send → crash
// stream and asserts it is accepted: recovery revives the process for
// every purpose, including crashing it again.
func TestRecoveryLifecycle(t *testing.T) {
	s := check.New()
	s.Event(sim.TraceEvent{Kind: sim.TraceCrash, Step: 1, Proc: 0, Other: -1})
	s.Event(sim.TraceEvent{Kind: sim.TraceRecover, Step: 2, Proc: 0, Other: -1, Note: "amnesia"})
	s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 3, Proc: 0, Other: 1})
	s.Event(sim.TraceEvent{Kind: sim.TraceArrive, Step: 4, Proc: 1, Other: 0})
	s.Event(sim.TraceEvent{Kind: sim.TraceCrash, Step: 5, Proc: 0, Other: -1})
	if vs := s.Violations(); len(vs) != 0 {
		t.Errorf("legal crash/recover/crash stream rejected: %q", vs)
	}

	o := sim.Outcome{Quiescence: 6, Crashed: 1}
	o.Stats.Sends, o.Stats.Deliveries = 1, 1
	o.Stats.Crashes, o.Stats.Recoveries = 2, 1
	s.Event(sim.TraceEvent{Kind: sim.TraceEnd, Step: 6, Proc: -1, Other: -1, Note: "quiescence"})
	if vs := s.Finish(o); len(vs) != 0 {
		t.Errorf("matching recovery outcome rejected: %q", vs)
	}
	bad := o
	bad.Stats.Recoveries = 0
	if vs := s.Finish(bad); len(vs) == 0 {
		t.Error("stream with 1 recovery accepted against Stats.Recoveries=0")
	}
}

// TestFaultReconciliation pins the drop and duplicate arms of Finish: a
// stream with one traced drop and one duplicated delivery must reconcile
// only against counters that account for both.
func TestFaultReconciliation(t *testing.T) {
	s := check.New()
	s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 1, Proc: 0, Other: 1})
	s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 1, Proc: 0, Other: 2})
	s.Event(sim.TraceEvent{Kind: sim.TraceDrop, Step: 1, Proc: 2, Other: 0, Note: "loss"})
	s.Event(sim.TraceEvent{Kind: sim.TraceArrive, Step: 2, Proc: 1, Other: 0})
	s.Event(sim.TraceEvent{Kind: sim.TraceArrive, Step: 2, Proc: 1, Other: 0, Note: "dup"})
	s.Event(sim.TraceEvent{Kind: sim.TraceEnd, Step: 2, Proc: -1, Other: -1, Note: "quiescence"})
	if vs := s.Violations(); len(vs) != 0 {
		t.Fatalf("legal lossy/dup stream rejected: %q", vs)
	}

	o := sim.Outcome{Quiescence: 2}
	o.Stats.Sends, o.Stats.Deliveries = 2, 2
	o.Stats.DroppedLink, o.Stats.DupDeliveries = 1, 1
	if vs := s.Finish(o); len(vs) != 0 {
		t.Errorf("matching fault outcome rejected: %q", vs)
	}

	noDrop := o
	noDrop.Stats.DroppedLink = 0
	if vs := s.Finish(noDrop); len(vs) == 0 {
		t.Error("stream with a traced drop accepted against zero drop counters")
	}
	noDup := o
	noDup.Stats.DupDeliveries = 0
	if vs := s.Finish(noDup); len(vs) == 0 {
		t.Error("stream with a duplicate arrival accepted against Stats.DupDeliveries=0")
	}
}

// TestTopologyReconciliation pins the edge-liveness arm: a ring run where
// 0 sends off-graph to 2 (blocked) and on-graph to 1 (delivered), plus one
// adversary edge removal, must reconcile only against counters accounting
// for the blocked send and the rewrite — and a dead-edge send the stream
// never drops must surface at Finish.
func TestTopologyReconciliation(t *testing.T) {
	ring := &sim.Topology{Kind: "ring"}
	s := check.New()
	s.UseTopology(ring, 4)
	s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 1, Proc: 0, Other: 2})
	s.Event(sim.TraceEvent{Kind: sim.TraceDrop, Step: 1, Proc: 2, Other: 0, Note: "topology"})
	s.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 1, Proc: 0, Other: 1})
	s.Event(sim.TraceEvent{Kind: sim.TraceArrive, Step: 2, Proc: 1, Other: 0})
	s.Event(sim.TraceEvent{Kind: sim.TraceAdversary, Step: 3, Proc: 1, Other: 2, Note: "removeedge"})
	s.Event(sim.TraceEvent{Kind: sim.TraceEnd, Step: 3, Proc: -1, Other: -1, Note: "quiescence"})
	if vs := s.Violations(); len(vs) != 0 {
		t.Fatalf("legal topology stream rejected: %q", vs)
	}

	o := sim.Outcome{Quiescence: 3}
	o.Stats.Sends, o.Stats.Deliveries = 2, 1
	o.Stats.BlockedSends, o.Stats.TopologyRewrites = 1, 1
	if vs := s.Finish(o); len(vs) != 0 {
		t.Errorf("matching topology outcome rejected: %q", vs)
	}
	noBlock := o
	noBlock.Stats.BlockedSends = 0
	if vs := s.Finish(noBlock); len(vs) == 0 {
		t.Error("stream with a topology drop accepted against Stats.BlockedSends=0")
	}
	noRewrite := o
	noRewrite.Stats.TopologyRewrites = 0
	if vs := s.Finish(noRewrite); len(vs) == 0 {
		t.Error("stream with an edge edit accepted against Stats.TopologyRewrites=0")
	}

	// A dead-edge send the stream never topology-drops is caught by the
	// end-of-run sweep even though no single event violated anything.
	leak := check.New()
	leak.UseTopology(ring, 4)
	leak.Event(sim.TraceEvent{Kind: sim.TraceSend, Step: 1, Proc: 0, Other: 2})
	leak.Event(sim.TraceEvent{Kind: sim.TraceArrive, Step: 2, Proc: 2, Other: 0})
	leak.Event(sim.TraceEvent{Kind: sim.TraceEnd, Step: 2, Proc: -1, Other: -1, Note: "quiescence"})
	lo := sim.Outcome{Quiescence: 2}
	lo.Stats.Sends, lo.Stats.Deliveries = 1, 1
	found := false
	for _, v := range leak.Finish(lo) {
		if strings.Contains(v, "never topology-dropped") {
			found = true
		}
	}
	if !found {
		t.Errorf("delivered dead-edge send not caught: %q", leak.Finish(lo))
	}
}

// TestReplayPreservesEdgeEndpoints pins the Replay special case: edge-edit
// adversary events keep their decoded peer, so a replayed stream drives
// the validator's graph mirror exactly like the live one.
func TestReplayPreservesEdgeEndpoints(t *testing.T) {
	recs := []trace.Record{
		{Kind: "adversary", Step: 1, Proc: 0, Other: 1, Note: "removeedge"},
		{Kind: "adversary", Step: 2, Proc: 0, Other: 1, Note: "removeedge"},
	}
	s, err := check.Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range s.Violations() {
		if strings.Contains(v, "removeedge 0–1 did not change the graph") {
			found = true
		}
	}
	if !found {
		t.Errorf("replayed duplicate removeedge not caught: %q", s.Violations())
	}
}

// TestReplayRejectsUnknownKind pins Replay's only hard error.
func TestReplayRejectsUnknownKind(t *testing.T) {
	_, err := check.Replay([]trace.Record{{Kind: "teleport", Step: 1, Proc: 0}})
	if err == nil {
		t.Error("record with unknown kind replayed without error")
	}
}
