package check

import (
	"fmt"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/sim/trace"
)

// replayPayload stands in for a run's real payloads during replay: a
// JSONL record keeps only the payload kind, which is also all the
// validator needs.
type replayPayload string

// Kind implements sim.Payload.
func (p replayPayload) Kind() string { return string(p) }

// Replay feeds a decoded JSONL trace stream (trace.Read) through a fresh
// Sink and returns it, so recorded runs can be validated after the fact
// exactly like live ones. It fails only on records that cannot be mapped
// back to trace events (unknown kind); invariant violations are reported
// through the returned sink, not the error.
func Replay(recs []trace.Record) (*Sink, error) {
	s := New()
	return s, ReplayInto(s, recs)
}

// ReplayInto feeds the stream through an existing sink — the Replay
// variant for validators that need priming first (UseTopology) — with the
// same error contract.
func ReplayInto(s *Sink, recs []trace.Record) error {
	for i, rec := range recs {
		k, ok := sim.ParseTraceKind(rec.Kind)
		if !ok {
			return fmt.Errorf("check: record %d: unknown kind %q", i, rec.Kind)
		}
		ev := sim.TraceEvent{
			Kind:  k,
			Step:  sim.Step(rec.Step),
			Proc:  sim.ProcID(rec.Proc),
			Other: sim.ProcID(rec.Other),
			Note:  rec.Note,
		}
		if !k.IsMessage() && k != sim.TraceAdversary {
			// The encoder omits negative peers; restore the -1 the engine uses
			// for run-level and single-process events. Adversary events keep
			// their decoded peer: edge edits (addedge/removeedge) carry the
			// edge's other endpoint there, and the validator replays them.
			ev.Other = -1
		}
		if rec.Payload != "" {
			ev.Payload = replayPayload(rec.Payload)
		}
		s.Event(ev)
	}
	return nil
}
