// Package check validates engine trace streams against the execution
// invariants of Section II-A. Sink implements sim.TraceSink, so it can
// watch a run online (attach it via Config.Trace, possibly behind
// trace.Multi), and Replay feeds it a decoded JSONL stream after the
// fact — the same invariants either way:
//
//   - steps are monotone: no event carries a smaller step than one before
//   - every arrival is backed by a prior unconsumed send between the same
//     (from, to) pair, and within one global step all arrivals precede all
//     sends (the engine delivers before it runs local steps)
//   - every drop likewise consumes a prior send on its link — a dropped
//     message is gone: no later arrival can match the same send — except
//     the drop of a duplicated delivery's extra copy (note "dup"), which
//     like a duplicate arrival only needs evidence the link ever carried a
//     send
//   - crashed processes are silent: after a crash event, the victim takes
//     no local steps, sends nothing, never sleeps or wakes, and receives
//     nothing (messages it sent earlier may still arrive at others;
//     adversary rewrites may still name it); after a recovery event the
//     process is alive again and may do all of those, including crash
//     anew
//   - recoveries only revive crashed processes
//   - with a topology primed (UseTopology), sends cross only live edges
//     of the communication graph — a dead-edge send must be consumed by a
//     "topology" drop, a "topology" drop must follow a dead-edge send,
//     and the stream's edge-edit events replay onto the graph mirror
//     without no-ops
//   - the end marker appears exactly once, last
//
// Finish then reconciles the stream with the run's Outcome: per-kind
// event counts must equal the Stats counters (drops against the drop
// counters, recoveries against Stats.Recoveries, duplicate arrivals
// against Stats.DupDeliveries, topology drops against Stats.BlockedSends,
// edge edits against Stats.TopologyRewrites), and the sends never matched
// by an arrival or a drop must account exactly for the sends still in
// flight when the run ended.
package check

import (
	"fmt"
	"strings"

	"github.com/ugf-sim/ugf/internal/sim"
)

// maxViolations caps the recorded violation list so a badly broken run
// reports its first hundred problems instead of building an O(events)
// slice of them.
const maxViolations = 100

type pair struct{ from, to sim.ProcID }

// Sink is an online trace validator. The zero value is not ready; use New.
type Sink struct {
	violations []string
	dropped    int64 // violations beyond maxViolations

	events      int64
	lastStep    sim.Step
	ended       bool
	endStep     sim.Step
	crashed     map[sim.ProcID]sim.Step
	outstanding map[pair]int64
	everSent    map[pair]int64 // all sends ever, never consumed: dup evidence
	dupArrivals int64
	dupDrops    int64
	sendsAt     sim.Step // last step with a send: arrivals at it violate phase order
	haveSend    bool
	counts      [sim.NumTraceKinds]int64

	// graph mirrors the run's live communication graph: primed by
	// UseTopology, lazily created complete on the first edge-edit event,
	// and replayed forward through the stream's addedge/removeedge
	// adversary events. nil means no topology knowledge: edge invariants
	// are skipped until an edit appears.
	graph *sim.Graph
	// offEdge counts sends observed on dead edges, per link; each must be
	// consumed by a "topology" drop.
	offEdge   map[pair]int64
	topoDrops int64 // drops with note "topology"
	edgeEdits int64 // addedge/removeedge adversary events
}

// New returns an empty validator.
func New() *Sink {
	return &Sink{
		crashed:     make(map[sim.ProcID]sim.Step),
		outstanding: make(map[pair]int64),
		everSent:    make(map[pair]int64),
		offEdge:     make(map[pair]int64),
	}
}

// UseTopology primes the validator with the run's initial communication
// graph (Config.Topology over n processes), enabling the edge-liveness
// invariants: a send on a dead edge must be consumed by a "topology"
// drop, a "topology" drop must follow a dead-edge send, and the graph is
// replayed forward through the stream's edge-edit adversary events. Call
// it before the first event. Runs without a topology need no priming —
// the validator lazily assumes a complete graph at the first edge edit.
func (s *Sink) UseTopology(t *sim.Topology, n int) {
	s.graph = sim.NewGraph(t, n)
}

func (s *Sink) violate(format string, args ...any) {
	if len(s.violations) >= maxViolations {
		s.dropped++
		return
	}
	s.violations = append(s.violations, fmt.Sprintf(format, args...))
}

// Event implements sim.TraceSink.
func (s *Sink) Event(ev sim.TraceEvent) {
	s.events++
	if int(ev.Kind) < len(s.counts) {
		s.counts[ev.Kind]++
	} else {
		s.violate("event %d: unknown kind %d", s.events, ev.Kind)
		return
	}
	if s.ended {
		s.violate("t=%d %s: event after the end marker", ev.Step, ev.Kind)
	}
	if ev.Step < s.lastStep {
		s.violate("t=%d %s: step went backwards (previous event at t=%d)", ev.Step, ev.Kind, s.lastStep)
	}
	s.lastStep = ev.Step

	switch ev.Kind {
	case sim.TraceSend:
		if at, dead := s.crashed[ev.Proc]; dead {
			s.violate("t=%d: crashed process %d (crashed at t=%d) sent to %d", ev.Step, ev.Proc, at, ev.Other)
		}
		s.outstanding[pair{ev.Proc, ev.Other}]++
		s.everSent[pair{ev.Proc, ev.Other}]++
		s.sendsAt, s.haveSend = ev.Step, true
		if s.graph != nil && !s.graph.Live(ev.Proc, ev.Other) {
			s.offEdge[pair{ev.Proc, ev.Other}]++
		}
	case sim.TraceArrive:
		if at, dead := s.crashed[ev.Proc]; dead {
			s.violate("t=%d: delivery to crashed process %d (crashed at t=%d)", ev.Step, ev.Proc, at)
		}
		if s.haveSend && s.sendsAt == ev.Step {
			s.violate("t=%d: arrival at %d after a send in the same step (deliveries must precede local steps)", ev.Step, ev.Proc)
		}
		p := pair{ev.Other, ev.Proc}
		if ev.Note == "dup" {
			// The extra copy of a duplicated delivery: its send was already
			// consumed by the original copy, so it only needs evidence the
			// link ever carried a send.
			s.dupArrivals++
			if s.everSent[p] == 0 {
				s.violate("t=%d: duplicate arrival at %d from %d on a link that never sent", ev.Step, ev.Proc, ev.Other)
			}
		} else if s.outstanding[p] <= 0 {
			s.violate("t=%d: arrival at %d from %d without a prior matching send", ev.Step, ev.Proc, ev.Other)
		} else {
			s.outstanding[p]--
		}
	case sim.TraceDrop:
		// A drop disposes of a send as finally as an arrival does: once
		// dropped, no later arrival may match the same send.
		if ev.Note == "" {
			s.violate("t=%d: drop at %d without a reason note", ev.Step, ev.Proc)
		}
		p := pair{ev.Other, ev.Proc}
		if strings.Contains(ev.Note, "dup") {
			s.dupDrops++
			if s.everSent[p] == 0 {
				s.violate("t=%d: duplicate drop at %d from %d on a link that never sent", ev.Step, ev.Proc, ev.Other)
			}
		} else if s.outstanding[p] <= 0 {
			s.violate("t=%d: drop at %d from %d without a prior matching send", ev.Step, ev.Proc, ev.Other)
		} else {
			s.outstanding[p]--
		}
		if ev.Note == "topology" {
			// An off-graph block: the matching send must have crossed a
			// dead edge. Deliveries along live edges are the complement —
			// a send the graph allowed is never topology-dropped.
			s.topoDrops++
			if s.offEdge[p] > 0 {
				s.offEdge[p]--
			} else {
				s.violate("t=%d: topology drop at %d from %d but the edge was live at send", ev.Step, ev.Proc, ev.Other)
			}
		}
	case sim.TraceRecover:
		if _, dead := s.crashed[ev.Proc]; !dead {
			s.violate("t=%d: recovery of process %d, which is not crashed", ev.Step, ev.Proc)
		} else {
			delete(s.crashed, ev.Proc)
		}
	case sim.TraceLocalStep, sim.TraceSleep, sim.TraceWake:
		if at, dead := s.crashed[ev.Proc]; dead {
			s.violate("t=%d: %s by crashed process %d (crashed at t=%d)", ev.Step, ev.Kind, ev.Proc, at)
		}
	case sim.TraceCrash:
		if at, dead := s.crashed[ev.Proc]; dead {
			s.violate("t=%d: process %d crashed twice (first at t=%d)", ev.Step, ev.Proc, at)
		} else {
			s.crashed[ev.Proc] = ev.Step
		}
	case sim.TraceAdversary:
		// Rewrites may legitimately name crashed processes; nothing to
		// check beyond monotonicity — except edge edits, which the
		// validator replays onto its graph mirror. Engines trace an edit
		// only when it changed the graph, so a no-op replay means the
		// mirror and the engine have diverged.
		if ev.Note == "addedge" || ev.Note == "removeedge" {
			s.edgeEdits++
			if s.graph == nil {
				s.graph = sim.NewGraph(nil, 0) // lazy complete base, like the engines
			}
			switch {
			case ev.Other < 0:
				s.violate("t=%d: %s at %d without an edge endpoint", ev.Step, ev.Note, ev.Proc)
			case ev.Note == "addedge" && !s.graph.Add(ev.Proc, ev.Other):
				s.violate("t=%d: addedge %d–%d did not change the graph", ev.Step, ev.Proc, ev.Other)
			case ev.Note == "removeedge" && !s.graph.Remove(ev.Proc, ev.Other):
				s.violate("t=%d: removeedge %d–%d did not change the graph", ev.Step, ev.Proc, ev.Other)
			}
		}
	case sim.TraceEnd:
		if ev.Note == "" {
			s.violate("t=%d: end marker without a reason note", ev.Step)
		}
		s.ended = true
		s.endStep = ev.Step
	}
}

// Violations returns the invariant violations observed so far. Empty
// means the stream is consistent (so far).
func (s *Sink) Violations() []string {
	v := s.violations
	if s.dropped > 0 {
		v = append(v[:len(v):len(v)], fmt.Sprintf("… and %d more violations", s.dropped))
	}
	return v
}

// Count returns the number of events of the given kind seen.
func (s *Sink) Count(kind sim.TraceKind) int64 {
	if int(kind) >= len(s.counts) {
		return 0
	}
	return s.counts[kind]
}

// Finish runs the end-of-run reconciliation against the run's Outcome
// and returns the full violation list, stream-level and reconciliation
// both. It does not mutate the sink; it may be called once the run that
// fed the sink has returned.
func (s *Sink) Finish(o sim.Outcome) []string {
	v := append([]string(nil), s.Violations()...)
	add := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	if !s.ended {
		add("stream has no end marker")
	} else if s.endStep != o.Quiescence {
		add("end marker at t=%d, Outcome.Quiescence=%d", s.endStep, o.Quiescence)
	}
	type pairCount struct {
		kind sim.TraceKind
		want int64
		name string
	}
	for _, pc := range []pairCount{
		{sim.TraceSend, o.Stats.Sends, "Stats.Sends"},
		{sim.TraceArrive, o.Stats.Deliveries, "Stats.Deliveries"},
		{sim.TraceLocalStep, o.Stats.LocalSteps, "Stats.LocalSteps"},
		{sim.TraceSleep, o.Stats.Sleeps, "Stats.Sleeps"},
		{sim.TraceWake, o.Stats.Wakes, "Stats.Wakes"},
		{sim.TraceCrash, o.Stats.Crashes, "Stats.Crashes"},
		{sim.TraceRecover, o.Stats.Recoveries, "Stats.Recoveries"},
		{sim.TraceDrop, o.Stats.DroppedCrashed + o.Stats.OmittedSends + o.Stats.DroppedLink + o.Stats.CorruptDrops + o.Stats.BlockedSends, "drop counters"},
		{sim.TraceAdversary, o.Stats.DeltaRewrites + o.Stats.DelayRewrites + o.Stats.OmitRewrites + o.Stats.LinkRewrites + o.Stats.TopologyRewrites, "rewrite counters"},
	} {
		if got := s.Count(pc.kind); got != pc.want {
			add("%d %s events, %s=%d", got, pc.kind, pc.name, pc.want)
		}
	}
	if s.dupArrivals != o.Stats.DupDeliveries {
		add("%d duplicate arrivals in trace, Stats.DupDeliveries=%d", s.dupArrivals, o.Stats.DupDeliveries)
	}
	if s.topoDrops != o.Stats.BlockedSends {
		add("%d topology drops in trace, Stats.BlockedSends=%d", s.topoDrops, o.Stats.BlockedSends)
	}
	if s.edgeEdits != o.Stats.TopologyRewrites {
		add("%d edge-edit events in trace, Stats.TopologyRewrites=%d", s.edgeEdits, o.Stats.TopologyRewrites)
	}
	var offOutstanding int64
	for _, c := range s.offEdge {
		offOutstanding += c
	}
	if offOutstanding != 0 {
		add("%d dead-edge sends were never topology-dropped", offOutstanding)
	}
	var undelivered int64
	for _, c := range s.outstanding {
		undelivered += c
	}
	// Every send ends as exactly one non-dup arrival, one non-dup drop, or
	// stays in flight when the run ends (pre-crash residue whose delivery
	// step the run never reached, or a cutoff). Dup copies are network
	// artifacts on top of a send that is accounted by its original copy.
	want := o.Stats.Sends - (o.Stats.Deliveries - o.Stats.DupDeliveries) - (s.Count(sim.TraceDrop) - s.dupDrops)
	if undelivered != want {
		add("%d sends never arrived nor dropped, expected %d from Sends-arrivals-drops", undelivered, want)
	}
	if got := int64(len(s.crashed)); got != int64(o.Crashed) {
		add("%d processes crashed at stream end, Outcome.Crashed=%d", got, o.Crashed)
	}
	return v
}
