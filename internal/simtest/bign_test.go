package simtest

import (
	"runtime"
	"testing"
	"time"

	"github.com/ugf-sim/ugf/internal/sim"
)

// TestRing100kSmoke runs the engine at N=100,000 — three orders of
// magnitude past the generated differential band — and holds it to a
// wall-clock and allocation budget. The budgets are deliberately loose
// (the rewrite runs this in tens of milliseconds and tens of megabytes);
// they are tripwires for catastrophic regressions — an accidental O(N)
// scan per step or per-message boxing creeping back into the hot path —
// not performance assertions, which live in the bench gate.
//
// Skipped under -short: tier-1 quick runs stay flat.
func TestRing100kSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-process smoke run skipped under -short")
	}
	const n = 100_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	o, err := sim.Run(sim.Config{N: n, Protocol: Ring{Laps: 1}, Seed: 0x100c})
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if o.HorizonHit {
		t.Fatal("ring/100k hit the event horizon instead of quiescing")
	}
	if o.Messages != n {
		t.Errorf("Messages = %d, want %d (one token pass per process)", o.Messages, n)
	}
	allocMB := float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
	t.Logf("ring/100k: %v wall, %.1f MB allocated, %d events", elapsed, allocMB, o.Stats.Events)
	if wallBudget := 60 * time.Second; elapsed > wallBudget {
		t.Errorf("wall clock %v exceeds budget %v", elapsed, wallBudget)
	}
	if allocBudget := 256.0; allocMB > allocBudget {
		t.Errorf("allocated %.1f MB exceeds budget %.0f MB", allocMB, allocBudget)
	}
}
