package simtest

import (
	"bytes"
	"os"
	"reflect"
	"strconv"
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/sim/oracle"
	"github.com/ugf-sim/ugf/internal/sim/trace"
	"github.com/ugf-sim/ugf/internal/simtest/check"
)

// genSeedBase anchors the generated-case seeds. Every property sweeps
// the same seed range, so one failing case can be cross-examined under
// every property by its seed.
const genSeedBase uint64 = 0x516f0000

// configCount is how many generated configurations each property sweeps:
// trimmed under -short to keep tier-1 time flat, 224 by default (the
// acceptance bar is 200+), and overridable via UGF_PROPERTY_CONFIGS —
// scripts/verify.sh raises it, and a CI soak can raise it much further.
func configCount(t *testing.T) int {
	if s := os.Getenv("UGF_PROPERTY_CONFIGS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad UGF_PROPERTY_CONFIGS=%q: %v", s, err)
		}
		return n
	}
	if testing.Short() {
		return 48
	}
	return 224
}

// TestPropertyEngineMatchesOracle is the differential property: the
// production engine and the naive reference engine in sim/oracle agree,
// bit for bit up to Normalize, on every generated configuration the
// oracle can afford (big-N cases beyond its O(N)-per-step budget set
// SkipOracle and are carried by the other three properties).
func TestPropertyEngineMatchesOracle(t *testing.T) {
	for i := 0; i < configCount(t); i++ {
		c := Gen(genSeedBase + uint64(i))
		if c.SkipOracle {
			continue
		}
		got, err := sim.Run(c.Cfg)
		if err != nil {
			t.Fatalf("%s: engine: %v", c.Name, err)
		}
		want, err := oracle.Run(c.Cfg)
		if err != nil {
			t.Fatalf("%s: oracle: %v", c.Name, err)
		}
		if diffs := DiffOutcomes(got, want); len(diffs) != 0 {
			t.Errorf("%s: engine and oracle diverge:", c.Name)
			for _, d := range diffs {
				t.Errorf("  %s", d)
			}
		}
	}
}

// TestPropertyParallelMatchesSerial is the metamorphic workers property:
// Workers is a speed knob, never a semantics knob, so serial and
// 4-worker runs of the same configuration produce byte-identical
// Outcomes — including the scheduler's heap counters, which Normalize
// would forgive but this property does not.
func TestPropertyParallelMatchesSerial(t *testing.T) {
	for i := 0; i < configCount(t); i++ {
		c := Gen(genSeedBase + uint64(i))
		serial, err := sim.Run(c.Cfg)
		if err != nil {
			t.Fatalf("%s: serial: %v", c.Name, err)
		}
		pcfg := c.Cfg
		pcfg.Workers = 4
		parallel, err := sim.Run(pcfg)
		if err != nil {
			t.Fatalf("%s: workers=4: %v", c.Name, err)
		}
		if !reflect.DeepEqual(serial.StripWall(), parallel.StripWall()) {
			t.Errorf("%s: serial and workers=4 outcomes differ:", c.Name)
			for _, d := range DiffOutcomes(serial, parallel) {
				t.Errorf("  %s", d)
			}
		}
	}
}

// TestPropertyShardsMatchSerial is the sharded-commit twin of the workers
// property: the shard count partitions each due set into different
// contiguous process ranges, each with its own payload table, calendar
// lanes, and counter deltas, and the merge must erase every trace of the
// partition. Serial, 2-shard, and 8-shard runs of the same configuration
// must produce byte-identical Outcomes — Stats included, down to the
// scheduler's heap counters. scripts/verify.sh and CI additionally run
// this property under -race on a reduced config band, which is what
// actually exercises the lanes' no-shared-mutable-state claim.
func TestPropertyShardsMatchSerial(t *testing.T) {
	for i := 0; i < configCount(t); i++ {
		c := Gen(genSeedBase + uint64(i))
		serial, err := sim.Run(c.Cfg)
		if err != nil {
			t.Fatalf("%s: serial: %v", c.Name, err)
		}
		for _, shards := range []int{2, 8} {
			scfg := c.Cfg
			scfg.Workers = shards
			sharded, err := sim.Run(scfg)
			if err != nil {
				t.Fatalf("%s: shards=%d: %v", c.Name, shards, err)
			}
			if !reflect.DeepEqual(serial.StripWall(), sharded.StripWall()) {
				t.Errorf("%s: serial and shards=%d outcomes differ:", c.Name, shards)
				for _, d := range DiffOutcomes(serial, sharded) {
					t.Errorf("  %s", d)
				}
			}
		}
	}
}

// TestPropertySameSeedDeterminism: a run is a pure function of its
// Config — rerunning the identical configuration reproduces the Outcome
// exactly (up to wall times).
func TestPropertySameSeedDeterminism(t *testing.T) {
	for i := 0; i < configCount(t); i++ {
		c := Gen(genSeedBase + uint64(i))
		first, err := sim.Run(c.Cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		second, err := sim.Run(c.Cfg)
		if err != nil {
			t.Fatalf("%s: rerun: %v", c.Name, err)
		}
		if !reflect.DeepEqual(first.StripWall(), second.StripWall()) {
			t.Errorf("%s: same config, different outcomes:", c.Name)
			for _, d := range DiffOutcomes(first, second) {
				t.Errorf("  %s", d)
			}
		}
	}
}

// TestPropertyTraceInvariants validates the full event stream of every
// generated run twice: online, with a check.Sink attached directly to
// the engine, and offline, by round-tripping the same stream through the
// JSONL encoder and check.Replay. Both must report zero violations and
// reconcile exactly with the run's Outcome.Stats. Big-N cases keep the
// online audit but skip the JSONL round-trip — encoding a million-event
// stream tests the encoder's throughput, not the engine, and the encoder
// is already covered by the hundreds of small cases.
func TestPropertyTraceInvariants(t *testing.T) {
	for i := 0; i < configCount(t); i++ {
		c := Gen(genSeedBase + uint64(i))
		live := check.New()
		if c.Cfg.Topology != nil {
			live.UseTopology(c.Cfg.Topology, c.Cfg.N)
		}
		var buf bytes.Buffer
		cfg := c.Cfg
		var jsonl *trace.JSONL
		if c.Big {
			cfg.Trace = live
		} else {
			jsonl = trace.NewJSONL(&buf)
			cfg.Trace = trace.Multi(live, jsonl)
		}
		o, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if vs := live.Finish(o); len(vs) != 0 {
			t.Errorf("%s: online trace validation failed:", c.Name)
			for _, v := range vs {
				t.Errorf("  %s", v)
			}
			continue
		}
		if jsonl == nil {
			if live.Count(sim.TraceEnd) != 1 {
				t.Errorf("%s: want exactly one end marker, got live=%d",
					c.Name, live.Count(sim.TraceEnd))
			}
			continue
		}
		if err := jsonl.Flush(); err != nil {
			t.Fatalf("%s: flush: %v", c.Name, err)
		}
		recs, err := trace.Read(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.Name, err)
		}
		replayed := check.New()
		if c.Cfg.Topology != nil {
			replayed.UseTopology(c.Cfg.Topology, c.Cfg.N)
		}
		if err := check.ReplayInto(replayed, recs); err != nil {
			t.Fatalf("%s: replay: %v", c.Name, err)
		}
		if vs := replayed.Finish(o); len(vs) != 0 {
			t.Errorf("%s: JSONL replay validation failed:", c.Name)
			for _, v := range vs {
				t.Errorf("  %s", v)
			}
		}
		if live.Count(sim.TraceEnd) != 1 || replayed.Count(sim.TraceEnd) != 1 {
			t.Errorf("%s: want exactly one end marker, got live=%d replay=%d",
				c.Name, live.Count(sim.TraceEnd), replayed.Count(sim.TraceEnd))
		}
	}
}
