package simtest

import (
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// Op identifies one scripted adversary intervention.
type Op uint8

// The scripted interventions: every write operation of Definition II.5
// that the Control surface exposes, plus the fault-model extensions
// (recovery, partition classes, link drops).
const (
	OpCrash Op = iota
	OpSetDelta
	OpSetDelay
	OpOmitOn
	OpOmitOff
	OpRecover    // V ≠ 0: amnesiac recovery
	OpSetClass   // V: the partition class
	OpDropLink   // V: the link's destination process
	OpHealLink   // V: the link's destination process
	OpAddEdge    // V: the edge's other endpoint
	OpRemoveEdge // V: the edge's other endpoint
	OpRewireEdge // V: the removed edge's other endpoint; V2: the new one
)

// Action is one scripted intervention: at the first observed step ≥ At,
// apply Op to process P (with value V for the rewrites; see the Op
// constants for V's meaning on the fault ops). Crash requests that the
// budget or an earlier crash makes impossible are silently skipped, like
// any adversary's failed Crash call, and so are Recover requests on
// processes that are not down.
type Action struct {
	At sim.Step
	Op Op
	P  sim.ProcID
	V  sim.Step
	// V2 is the second value of the three-endpoint ops (OpRewireEdge's
	// new endpoint); zero elsewhere.
	V2 sim.Step
}

// Script is a deterministic adversary that replays a fixed action list,
// in order, as its trigger steps are reached. Actions with At = 0 are
// applied during Init, before the first global step. It exists for the
// property suite: unlike the strategy adversaries it exercises arbitrary
// crash/rewrite timings, including ones no strategy would choose.
//
// Because adversaries observe only active steps, an action scheduled at
// an inert step is applied at the next active step — identically in
// every engine implementation, which is what the differential properties
// need.
type Script struct {
	Actions []Action
}

// Name implements sim.Adversary.
func (s Script) Name() string { return "script" }

// New implements sim.Adversary. The script draws no randomness; the RNG
// is accepted and ignored so Script satisfies the standard contract.
func (s Script) New(n, f int, rng *xrand.RNG) sim.AdversaryInstance {
	return &scriptInstance{actions: s.Actions}
}

type scriptInstance struct {
	actions []Action
	idx     int
}

func (si *scriptInstance) Init(view sim.View, ctl sim.Control) {
	si.apply(0, ctl)
}

func (si *scriptInstance) Observe(now sim.Step, events []sim.SendRecord, view sim.View, ctl sim.Control) {
	si.apply(now, ctl)
}

func (si *scriptInstance) Label() string { return "" }

func (si *scriptInstance) apply(now sim.Step, ctl sim.Control) {
	for si.idx < len(si.actions) && si.actions[si.idx].At <= now {
		a := si.actions[si.idx]
		si.idx++
		switch a.Op {
		case OpCrash:
			ctl.Crash(a.P)
		case OpSetDelta:
			ctl.SetDelta(a.P, a.V)
		case OpSetDelay:
			ctl.SetDelay(a.P, a.V)
		case OpOmitOn:
			ctl.SetOmitFrom(a.P, true)
		case OpOmitOff:
			ctl.SetOmitFrom(a.P, false)
		case OpRecover:
			ctl.Recover(a.P, a.V != 0)
		case OpSetClass:
			ctl.SetClass(a.P, int(a.V))
		case OpDropLink:
			ctl.DropLink(a.P, sim.ProcID(a.V))
		case OpHealLink:
			ctl.HealLink(a.P, sim.ProcID(a.V))
		case OpAddEdge:
			ctl.AddEdge(a.P, sim.ProcID(a.V))
		case OpRemoveEdge:
			ctl.RemoveEdge(a.P, sim.ProcID(a.V))
		case OpRewireEdge:
			ctl.RewireEdges(a.P, sim.ProcID(a.V), sim.ProcID(a.V2))
		}
	}
}
