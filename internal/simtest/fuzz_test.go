package simtest

import (
	"testing"

	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/sim/oracle"
)

// FuzzEngineVsOracle feeds generator seeds to Gen and differentially
// tests the production engine against the reference engine on each drawn
// configuration. The deterministic property suite sweeps a fixed seed
// range; the fuzzer explores the generator's input space beyond it and,
// thanks to coverage guidance, gravitates toward configurations that
// exercise rare engine paths. A crashing input is a generator seed, so a
// failure reproduces as simply as Gen(seed) + sim.Run/oracle.Run.
func FuzzEngineVsOracle(f *testing.F) {
	for i := uint64(0); i < 8; i++ {
		f.Add(genSeedBase + i)
	}
	f.Add(uint64(0))
	f.Add(^uint64(0))
	// Seeds whose generated configs carry an active FaultPlan (and the
	// stall window Gen pairs with it), so the fault pipeline is in the
	// corpus from the start rather than waiting on coverage guidance.
	for _, s := range []uint64{0x516f1002, 0x516f1008, 0x516f100a, 0x516f100b, 0x516f1013, 0x516f1016} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, genSeed uint64) {
		c := Gen(genSeed)
		got, err := sim.Run(c.Cfg)
		if err != nil {
			t.Fatalf("%s: engine: %v", c.Name, err)
		}
		want, err := oracle.Run(c.Cfg)
		if err != nil {
			t.Fatalf("%s: oracle: %v", c.Name, err)
		}
		if diffs := DiffOutcomes(got, want); len(diffs) != 0 {
			t.Errorf("%s: engine and oracle diverge:", c.Name)
			for _, d := range diffs {
				t.Errorf("  %s", d)
			}
		}
	})
}

// FuzzFaultPlan attacks the fault-plan surface from the string side:
// arbitrary specs through ParseFaultPlan, with every accepted plan held
// to two contracts — the String round-trip reproduces the plan exactly,
// and a small run under the plan is bit-identical between the production
// engine and the oracle (serial and sharded). Malformed specs must be
// rejected with an error, never a panic.
func FuzzFaultPlan(f *testing.F) {
	for _, spec := range []string{
		"",
		"drop=0.1",
		"dup=1",
		"drop=0.1,dup=0.05,corrupt=0.01,seed=7",
		"corrupt=0.3,seed=0xdeadbeef",
		"drop=NaN",
		"drop=1,dup=1",
		"warp=0.1",
	} {
		f.Add(spec, uint64(1))
	}
	f.Fuzz(func(t *testing.T, spec string, runSeed uint64) {
		fp, err := sim.ParseFaultPlan(spec)
		if err != nil {
			return // rejection is the contract for malformed specs
		}
		if fp == nil {
			return // blank spec: no faults
		}
		again, err := sim.ParseFaultPlan(fp.String())
		if err != nil {
			t.Fatalf("%q: String() %q does not reparse: %v", spec, fp.String(), err)
		}
		if *again != *fp {
			t.Fatalf("%q: round trip changed the plan: %+v → %q → %+v", spec, fp, fp.String(), again)
		}
		cfg := sim.Config{
			N: 6, F: 2, Protocol: gossip.PushPull{}, Seed: runSeed,
			Faults: fp, StallWindow: 2048,
		}
		got, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("%q: engine: %v", spec, err)
		}
		want, err := oracle.Run(cfg)
		if err != nil {
			t.Fatalf("%q: oracle: %v", spec, err)
		}
		if diffs := DiffOutcomes(got, want); len(diffs) != 0 {
			t.Errorf("%q: engine and oracle diverge under the plan:", spec)
			for _, d := range diffs {
				t.Errorf("  %s", d)
			}
		}
		scfg := cfg
		scfg.Workers = 4
		sharded, err := sim.Run(scfg)
		if err != nil {
			t.Fatalf("%q: workers=4: %v", spec, err)
		}
		if diffs := DiffOutcomes(got, sharded); len(diffs) != 0 {
			t.Errorf("%q: serial and sharded diverge under the plan:", spec)
			for _, d := range diffs {
				t.Errorf("  %s", d)
			}
		}
	})
}

// FuzzTopologySpec attacks the communication-graph surface from the
// string side, mirroring FuzzFaultPlan's contract: arbitrary specs
// through ParseTopology, every accepted topology must survive the
// String round-trip exactly, and a small run on the graph must be
// bit-identical between the production engine and the oracle, serial
// and sharded. Malformed specs must be rejected with an error, never a
// panic. The run carries a stall window and a tight event cutoff —
// sparse graphs can make gathering impossible while neighbor traffic
// keeps flowing, so MaxEvents is what bounds every accepted input.
func FuzzTopologySpec(f *testing.F) {
	for _, spec := range []string{
		"",
		"complete",
		"ring",
		"k-regular,k=4",
		"expander,k=4,seed=9",
		"expander",
		"radio,k=3,seed=2",
		"k-regular,k=3",
		"ring,k=nan",
		"warp=1",
	} {
		f.Add(spec, uint64(1))
	}
	f.Fuzz(func(t *testing.T, spec string, runSeed uint64) {
		topo, err := sim.ParseTopology(spec)
		if err != nil {
			return // rejection is the contract for malformed specs
		}
		if topo == nil {
			return // blank spec: complete graph
		}
		again, err := sim.ParseTopology(topo.String())
		if err != nil {
			t.Fatalf("%q: String() %q does not reparse: %v", spec, topo.String(), err)
		}
		if *again != *topo {
			t.Fatalf("%q: round trip changed the topology: %+v → %q → %+v", spec, topo, topo.String(), again)
		}
		cfg := sim.Config{
			N: 7, F: 2, Protocol: gossip.PushPull{}, Seed: runSeed,
			Topology: topo, StallWindow: 2048, MaxEvents: 4000,
		}
		got, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("%q: engine: %v", spec, err)
		}
		want, err := oracle.Run(cfg)
		if err != nil {
			t.Fatalf("%q: oracle: %v", spec, err)
		}
		if diffs := DiffOutcomes(got, want); len(diffs) != 0 {
			t.Errorf("%q: engine and oracle diverge on the graph:", spec)
			for _, d := range diffs {
				t.Errorf("  %s", d)
			}
		}
		scfg := cfg
		scfg.Workers = 4
		sharded, err := sim.Run(scfg)
		if err != nil {
			t.Fatalf("%q: workers=4: %v", spec, err)
		}
		if diffs := DiffOutcomes(got, sharded); len(diffs) != 0 {
			t.Errorf("%q: serial and sharded diverge on the graph:", spec)
			for _, d := range diffs {
				t.Errorf("  %s", d)
			}
		}
	})
}
