package simtest

import (
	"testing"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/sim/oracle"
)

// FuzzEngineVsOracle feeds generator seeds to Gen and differentially
// tests the production engine against the reference engine on each drawn
// configuration. The deterministic property suite sweeps a fixed seed
// range; the fuzzer explores the generator's input space beyond it and,
// thanks to coverage guidance, gravitates toward configurations that
// exercise rare engine paths. A crashing input is a generator seed, so a
// failure reproduces as simply as Gen(seed) + sim.Run/oracle.Run.
func FuzzEngineVsOracle(f *testing.F) {
	for i := uint64(0); i < 8; i++ {
		f.Add(genSeedBase + i)
	}
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, genSeed uint64) {
		c := Gen(genSeed)
		got, err := sim.Run(c.Cfg)
		if err != nil {
			t.Fatalf("%s: engine: %v", c.Name, err)
		}
		want, err := oracle.Run(c.Cfg)
		if err != nil {
			t.Fatalf("%s: oracle: %v", c.Name, err)
		}
		if diffs := DiffOutcomes(got, want); len(diffs) != 0 {
			t.Errorf("%s: engine and oracle diverge:", c.Name)
			for _, d := range diffs {
				t.Errorf("  %s", d)
			}
		}
	})
}
