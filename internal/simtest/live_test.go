package simtest

import (
	"testing"

	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/live"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/stats"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// TestLiveMatchesSimStatistically is the statistical half of the live
// oracle check. The exact half (internal/live's TestLiveMatchesSimExactly)
// proves live ≡ sim bit for bit at equal seeds; this test proves the two
// runtimes induce the same *distributions* when the seeds are disjoint —
// the property that makes the simulator a valid oracle for live behavior
// in general, not just a replay of it. For each spec it runs K seeds
// through each runtime (different derivation branches, so no run is
// shared), then requires:
//
//   - mean completion time (TEnd) and mean message count within a
//     relative tolerance, and
//   - a two-sample chi-squared test on the TEnd distributions that fails
//     to reject "same distribution" at a conservative threshold.
//
// Everything is seeded, so the test is deterministic: it either holds for
// these seed sets or marks a genuine semantic divergence.
func TestLiveMatchesSimStatistically(t *testing.T) {
	type spec struct {
		name     string
		protocol string
		n        int
		faults   *sim.FaultPlan
	}
	specs := []spec{
		{"push-pull/n=64", "push-pull", 64, nil},
		{"push-pull/n=64/faults", "push-pull", 64, &sim.FaultPlan{Seed: 31, Drop: 0.1, Duplicate: 0.05, Corrupt: 0.05}},
		{"ears/n=64", "ears", 64, nil},
		{"ears/n=256/faults", "ears", 256, &sim.FaultPlan{Seed: 37, Drop: 0.08, Duplicate: 0.04, Corrupt: 0.04}},
	}
	k := 16
	if testing.Short() {
		// The reduced band scripts/verify.sh runs under -race.
		k = 6
		specs = specs[:3]
	}

	for _, sp := range specs {
		sp := sp
		t.Run(sp.name, func(t *testing.T) {
			t.Parallel()
			protocol, ok := gossip.ByName(sp.protocol)
			if !ok {
				t.Fatalf("protocol %q not registered", sp.protocol)
			}
			var simT, liveT, simM, liveM []float64
			for i := 0; i < k; i++ {
				simSeed := xrand.Derive(0x51A7, uint64(i))
				liveSeed := xrand.Derive(0x11FE, uint64(i))

				so, err := sim.Run(sim.Config{N: sp.n, Protocol: protocol, Seed: simSeed, Faults: sp.faults})
				if err != nil {
					t.Fatalf("sim seed %d: %v", simSeed, err)
				}
				lo, err := live.Run(live.Config{N: sp.n, Protocol: protocol, Seed: liveSeed, Faults: sp.faults})
				if err != nil {
					t.Fatalf("live seed %d: %v", liveSeed, err)
				}
				if so.HorizonHit || lo.HorizonHit {
					t.Fatalf("seed pair %d: cut off (sim=%v live=%v)", i, so.HorizonHit, lo.HorizonHit)
				}
				simT = append(simT, float64(so.TEnd))
				liveT = append(liveT, float64(lo.TEnd))
				simM = append(simM, float64(so.Messages))
				liveM = append(liveM, float64(lo.Messages))
			}

			relDiff := func(a, b float64) float64 {
				if m := max(a, b); m > 0 {
					return abs(a-b) / m
				}
				return 0
			}
			if d := relDiff(stats.Mean(simT), stats.Mean(liveT)); d > 0.20 {
				t.Errorf("mean TEnd diverges by %.1f%%: sim=%v live=%v",
					100*d, stats.Mean(simT), stats.Mean(liveT))
			}
			if d := relDiff(stats.Mean(simM), stats.Mean(liveM)); d > 0.15 {
				t.Errorf("mean Messages diverges by %.1f%%: sim=%v live=%v",
					100*d, stats.Mean(simM), stats.Mean(liveM))
			}
			if chi, df, p := stats.ChiSquareTwoSample(simT, liveT, 4); p < 0.001 {
				t.Errorf("TEnd distributions differ: chi²=%v df=%d p=%v (sim=%v live=%v)",
					chi, df, p, simT, liveT)
			}
		})
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
