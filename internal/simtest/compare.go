// Package simtest is the correctness-tooling layer of the simulator: a
// seeded random-config generator (gen.go), outcome comparison against the
// naive reference engine in sim/oracle (compare.go), a scripted adversary
// for targeted scenarios (script.go), and the property suite plus fuzz
// targets that tie them together (properties_test.go, fuzz_test.go).
package simtest

import (
	"fmt"
	"reflect"

	"github.com/ugf-sim/ugf/internal/sim"
)

// Normalize projects an Outcome onto the fields every conforming engine
// implementation must agree on. Two groups of Stats fields are zeroed:
// the wall times (host-dependent by definition) and the scheduler heap
// counters HeapPushes/HeapPops, which count traffic on the production
// engine's event-index heap — an implementation artifact of PR 1's
// scheduler, not part of the Section II-A semantics. The reference engine
// in sim/oracle has no heap and leaves them zero. Everything else,
// including every remaining Stats counter and the full interval series,
// must match bit for bit.
func Normalize(o sim.Outcome) sim.Outcome {
	o.Stats = o.Stats.StripWall()
	o.Stats.HeapPushes = 0
	o.Stats.HeapPops = 0
	return o
}

// DiffOutcomes reports the differences between two outcomes after
// Normalize, one "field: a=… b=…" line per differing field (Stats and its
// interval series are broken out per subfield). An empty slice means the
// outcomes are bit-identical up to Normalize — the equivalence the
// differential and metamorphic properties assert.
func DiffOutcomes(a, b sim.Outcome) []string {
	var diffs []string
	diffValue(&diffs, "", reflect.ValueOf(Normalize(a)), reflect.ValueOf(Normalize(b)))
	return diffs
}

// diffValue descends through structs so that a mismatch is reported at
// the leaf field that actually differs, not as two giant %+v dumps.
func diffValue(diffs *[]string, path string, a, b reflect.Value) {
	if a.Kind() == reflect.Struct {
		for i := 0; i < a.NumField(); i++ {
			name := a.Type().Field(i).Name
			if path != "" {
				name = path + "." + name
			}
			diffValue(diffs, name, a.Field(i), b.Field(i))
		}
		return
	}
	if a.Kind() == reflect.Slice && a.Len() == b.Len() && a.Len() > 0 && a.Index(0).Kind() == reflect.Struct {
		for i := 0; i < a.Len(); i++ {
			diffValue(diffs, fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))
		}
		return
	}
	if !reflect.DeepEqual(a.Interface(), b.Interface()) {
		*diffs = append(*diffs, fmt.Sprintf("%s: a=%+v b=%+v", path, a.Interface(), b.Interface()))
	}
}
