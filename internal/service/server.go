package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"github.com/ugf-sim/ugf/internal/adversary"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/params"
	"github.com/ugf-sim/ugf/internal/spec"
)

// Register mounts the sweep service's job API onto mux — the same mux the
// -debugaddr server already serves expvar and pprof from, so one listener
// carries both observability and jobs.
//
//	POST /v1/sweeps               submit a spec grid            → SubmitResponse
//	GET  /v1/sweeps/{id}          progress/ETA                  → SweepStatus
//	GET  /v1/sweeps/{id}/results  streaming result feed (JSONL) → ResultEvent per line
//	GET  /v1/runs/{fp}            cached run by fingerprint     → Record
//	GET  /v1/registry             protocol/adversary schemas    → registryResponse
//	POST /v1/leases               acquire a run (long poll)     → Lease | 204
//	POST /v1/leases/{id}          complete a leased run         ← CompleteRequest
//	GET  /v1/counters             coordinator lifetime counters → Counters
//
// Validation failures are structured: a 400 whose body is
// {"error": {"field", "param", "msg"}} straight from the registries'
// schema checks, never a bare 500.
func Register(mux *http.ServeMux, c *Coordinator) {
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, &spec.Error{Msg: "malformed request body: " + err.Error()})
			return
		}
		resp, err := c.Submit(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := c.Status(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, &spec.Error{Msg: fmt.Sprintf("unknown sweep %q", r.PathValue("id"))})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		from := 0
		if q := r.URL.Query().Get("from"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, &spec.Error{Field: "from", Msg: "want a non-negative integer"})
				return
			}
			from = n
		}
		id := r.PathValue("id")
		if _, ok := c.Status(id); !ok {
			writeError(w, http.StatusNotFound, &spec.Error{Msg: fmt.Sprintf("unknown sweep %q", id)})
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		c.Stream(r.Context(), id, from, func(ev ResultEvent) error {
			if err := enc.Encode(ev); err != nil {
				return err
			}
			// Flush per event so clients see results as they land, not
			// when the chunk buffer happens to fill.
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
	})
	mux.HandleFunc("GET /v1/runs/{fp}", func(w http.ResponseWriter, r *http.Request) {
		rec, ok := c.Run(r.PathValue("fp"))
		if !ok {
			writeError(w, http.StatusNotFound, &spec.Error{Msg: fmt.Sprintf("no cached run %q", r.PathValue("fp"))})
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})
	mux.HandleFunc("GET /v1/registry", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, registrySnapshot())
	})
	mux.HandleFunc("POST /v1/leases", func(w http.ResponseWriter, r *http.Request) {
		lease, err := c.Acquire(r.Context())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if lease == nil {
			w.WriteHeader(http.StatusNoContent) // idle long poll: come back
			return
		}
		writeJSON(w, http.StatusOK, lease)
	})
	mux.HandleFunc("POST /v1/leases/{id}", func(w http.ResponseWriter, r *http.Request) {
		var res CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
			writeError(w, http.StatusBadRequest, &spec.Error{Msg: "malformed request body: " + err.Error()})
			return
		}
		if err := c.Complete(r.PathValue("id"), res); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/counters", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Counters())
	})
}

// NewServer returns a standalone handler serving only the job API — what
// tests mount on httptest and ugfbench -serve mounts when no -debugaddr
// mux exists yet.
func NewServer(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	Register(mux, c)
	return mux
}

// errorBody is the wire form of every non-200: a structured spec error
// under "error".
type errorBody struct {
	Error spec.Error `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	var body errorBody
	var se *spec.Error
	if errors.As(err, &se) {
		body.Error = *se
	} else {
		var pe *params.Error
		if errors.As(err, &pe) {
			body.Error = spec.Error{Param: pe.Param, Msg: pe.Msg}
		} else {
			body.Error = spec.Error{Msg: err.Error()}
		}
	}
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// registryEntry is one protocol or adversary in the registry listing.
type registryEntry struct {
	Name   string          `json:"name"`
	Params []params.Schema `json:"params,omitempty"`
}

type registryResponse struct {
	SpecVersion int             `json:"spec_version"`
	Protocols   []registryEntry `json:"protocols"`
	Adversaries []registryEntry `json:"adversaries"`
}

// registrySnapshot lists every registered protocol and adversary with its
// parameter schemas — the data a client needs to construct valid specs
// without guessing.
func registrySnapshot() registryResponse {
	resp := registryResponse{SpecVersion: spec.Version}
	for _, e := range gossip.Entries() {
		resp.Protocols = append(resp.Protocols, registryEntry{Name: e.Name, Params: e.Params})
	}
	for _, e := range adversary.Entries() {
		resp.Adversaries = append(resp.Adversaries, registryEntry{Name: e.Name, Params: e.Params})
	}
	return resp
}
