package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Cache is the content-addressed result store: one immutable Record per
// canonical spec fingerprint. A run is a pure function of its canonical
// spec (which includes the seed), so a fingerprint's record never needs
// invalidation — the cache is write-once per key, shared safely across
// sweeps, processes, and machines.
//
// Records live in memory and, when the cache is opened with a directory,
// one JSON file per fingerprint under it. Files are written atomically
// (temp file + rename in the same directory), so a concurrent reader — a
// second coordinator sharing the directory, say — sees either the
// complete record or none. Reads fall through memory to disk lazily, so
// reopening a cache directory costs nothing until fingerprints are
// actually asked for.
type Cache struct {
	mu   sync.Mutex
	dir  string // "" = memory only
	mem  map[string]Record
	hits int
	puts int
}

// NewCache opens a cache. dir, when non-empty, is created if needed and
// holds one <fingerprint>.json file per record, surviving coordinator
// restarts; "" keeps records in memory only.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache: %w", err)
		}
	}
	return &Cache{dir: dir, mem: map[string]Record{}}, nil
}

// Get returns the record cached under fp, checking memory first and the
// cache directory second. Disk hits are promoted into memory.
func (c *Cache) Get(fp string) (Record, bool) {
	if !validFingerprint(fp) {
		return Record{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec, ok := c.mem[fp]; ok {
		c.hits++
		return rec, true
	}
	if c.dir == "" {
		return Record{}, false
	}
	data, err := os.ReadFile(c.file(fp))
	if err != nil {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil || rec.Fingerprint != fp {
		// A corrupt or misfiled record is treated as a miss: the run
		// recomputes and the record is rewritten.
		return Record{}, false
	}
	c.mem[fp] = rec
	c.hits++
	return rec, true
}

// Put stores a record under its fingerprint. Write failures to the cache
// directory are reported but leave the in-memory record in place: the
// cache degrades to per-process, it never takes a sweep down.
func (c *Cache) Put(rec Record) error {
	if !validFingerprint(rec.Fingerprint) {
		return fmt.Errorf("service: cache: invalid fingerprint %q", rec.Fingerprint)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[rec.Fingerprint] = rec
	c.puts++
	if c.dir == "" {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: cache: %w", err)
	}
	return atomicWriteFile(c.file(rec.Fingerprint), data)
}

// Len returns the number of records in memory (disk-resident records not
// yet read are not counted).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Hits returns the number of Get calls answered from the cache.
func (c *Cache) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

func (c *Cache) file(fp string) string {
	return filepath.Join(c.dir, fp+".json")
}

// validFingerprint gates keys to the 16-hex-digit form sum64 emits: cache
// keys become file names, so nothing path-like may pass.
func validFingerprint(fp string) bool {
	if len(fp) != 16 {
		return false
	}
	return strings.IndexFunc(fp, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}

// atomicWriteFile writes data to path via a temp file and rename, so
// concurrent readers never observe a partial record.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".cache-*")
	if err != nil {
		return fmt.Errorf("service: cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: cache: %w", err)
	}
	return nil
}
