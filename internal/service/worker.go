package service

import (
	"context"
	"sync"
	"time"

	"github.com/ugf-sim/ugf/internal/runner"
)

// Backend is the worker's view of a coordinator: lease runs, report
// results. Coordinator implements it in-process; Client implements it
// over HTTP — a worker cannot tell the difference.
type Backend interface {
	// Acquire blocks until a run is available or ctx ends; (nil, nil)
	// means ctx ended with nothing to do.
	Acquire(ctx context.Context) (*Lease, error)
	// Complete reports a leased run's result.
	Complete(leaseID string, res CompleteRequest) error
}

// WorkerOptions parameterizes RunWorker.
type WorkerOptions struct {
	// Concurrency is the number of runs executed at once (≤ 0: 1).
	Concurrency int
	// Poll bounds one Acquire long-poll (default 10s); between polls the
	// worker checks ctx and retries, so a worker pointed at an idle
	// coordinator just waits for work.
	Poll time.Duration
	// OnRun, when non-nil, observes each completed lease (after Complete
	// was attempted). Called from worker goroutines.
	OnRun func(lease *Lease, res CompleteRequest)
}

// RunWorker executes leased runs against a backend until ctx is
// cancelled: acquire, run with the pool's exact fault-isolation semantics
// (runner.Attempt — same-seed retry, deterministic/environmental
// classification), complete, repeat. It returns ctx.Err() on shutdown;
// transient backend errors (a coordinator restarting, say) back the
// worker off rather than killing it.
func RunWorker(ctx context.Context, b Backend, opts WorkerOptions) error {
	workers := opts.Concurrency
	if workers <= 0 {
		workers = 1
	}
	poll := opts.Poll
	if poll <= 0 {
		poll = 10 * time.Second
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				pollCtx, cancel := context.WithTimeout(ctx, poll)
				lease, err := b.Acquire(pollCtx)
				cancel()
				if err != nil {
					// Backend trouble: back off and retry until ctx ends.
					select {
					case <-ctx.Done():
					case <-time.After(time.Second):
					}
					continue
				}
				if lease == nil {
					continue // idle poll; loop re-checks ctx
				}
				res := executeLease(ctx, lease)
				b.Complete(lease.ID, res)
				if opts.OnRun != nil {
					opts.OnRun(lease, res)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// executeLease runs one leased spec through the runner's attempt
// primitive. The spec was validated at submit time, so a build failure
// here is version skew between worker and coordinator — reported as a
// ConfigError, which the coordinator treats as deterministic.
func executeLease(ctx context.Context, lease *Lease) CompleteRequest {
	cfg, err := lease.Spec.Config()
	if err != nil {
		return CompleteRequest{ConfigError: err.Error()}
	}
	cfg.Cancel = ctx.Done()
	o, re, err := runner.Attempt(cfg, lease.Fingerprint, 0, nil)
	if err != nil {
		return CompleteRequest{ConfigError: err.Error()}
	}
	if re != nil && re.Deterministic {
		return CompleteRequest{Err: re}
	}
	return CompleteRequest{Outcome: &o, Err: re}
}
