package service

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/ugf-sim/ugf/internal/core"
	"github.com/ugf-sim/ugf/internal/gossip"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/spec"
)

// testSpecs is a small registry-typed grid: 2 series × 5 runs.
func testSpecs() []runner.Spec {
	return []runner.Spec{
		{Name: "push-pull/none", Base: sim.Config{N: 16, F: 2, Protocol: gossip.PushPull{}}, Runs: 5, BaseSeed: 11},
		{Name: "ears/ugf", Base: sim.Config{N: 12, F: 3, Protocol: gossip.EARS{}, Adversary: core.UGF{FixedK: 1, FixedL: 1}}, Runs: 5, BaseSeed: 12},
	}
}

// startWorkers runs n in-process workers against b until the returned
// stop function is called.
func startWorkers(t *testing.T, b Backend, n int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			RunWorker(ctx, b, WorkerOptions{Poll: 50 * time.Millisecond})
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// stripWalls projects results onto their deterministic content: every
// outcome field except Stats.Wall is a pure function of (Config, Seed),
// so this is the equality under which "byte-identical artifacts" holds.
func stripWalls(results []runner.Result) []runner.Result {
	out := make([]runner.Result, len(results))
	for i, r := range results {
		out[i] = r
		out[i].Outcomes = make([]sim.Outcome, len(r.Outcomes))
		for j, o := range r.Outcomes {
			out[i].Outcomes[j] = o.StripWall()
		}
	}
	return out
}

// TestCoordinatorWorkersMatchSerial: the same batch executed through a
// coordinator with two in-process workers returns results deeply equal to
// the local pool's — outcomes, error sets, order (modulo wall times, the
// one host-dependent field). Byte-identical downstream artifacts follow,
// because the CSV writers are deterministic functions of these results.
func TestCoordinatorWorkersMatchSerial(t *testing.T) {
	serial, err := runner.ExecuteContext(context.Background(), testSpecs(), runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator(Options{})
	stop := startWorkers(t, coord, 2)
	defer stop()
	distributed, err := ExecuteSpecs(context.Background(), coord, testSpecs(), runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWalls(serial), stripWalls(distributed)) {
		t.Error("distributed execution changed the results")
	}
	if ct := coord.Counters(); ct.Computed != 10 {
		t.Errorf("computed %d runs, want 10", ct.Computed)
	}
}

// TestResubmitServesEntirelyFromCache: a second submission of an already
// computed sweep — to a fresh coordinator sharing only the cache
// directory, as after a coordinator crash — completes instantly with
// zero recomputed runs and identical results.
func TestResubmitServesEntirelyFromCache(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	cacheA, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	coordA := NewCoordinator(Options{Cache: cacheA})
	stop := startWorkers(t, coordA, 2)
	first, err := ExecuteSpecs(context.Background(), coordA, testSpecs(), runner.Options{})
	stop()
	if err != nil {
		t.Fatal(err)
	}

	// "Kill" coordinator A: build a fresh one over the same directory and
	// resubmit with no workers at all — the cache must answer everything.
	cacheB, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	coordB := NewCoordinator(Options{Cache: cacheB})
	second, err := ExecuteSpecs(context.Background(), coordB, testSpecs(), runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ct := coordB.Counters()
	if ct.Computed != 0 || ct.Queued != 0 || ct.Leased != 0 {
		t.Errorf("resubmit recomputed work: %+v", ct)
	}
	if ct.CacheHits != 10 {
		t.Errorf("resubmit served %d runs from cache, want 10", ct.CacheHits)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cache round trip changed the results")
	}
	// Byte-level check on the run records themselves.
	fj, _ := json.Marshal(first)
	sj, _ := json.Marshal(second)
	if string(fj) != string(sj) {
		t.Error("cache round trip changed the serialized results")
	}
}

// TestInFlightDedup: two sweeps over the same grid submitted before any
// worker runs share every task — the second sweep's runs are all dedup
// hits, each distinct run is computed once, and both sweeps complete.
func TestInFlightDedup(t *testing.T) {
	coord := NewCoordinator(Options{})
	grid := []spec.Spec{}
	for seed := uint64(0); seed < 8; seed++ {
		grid = append(grid, spec.Spec{Protocol: "push-pull", N: 12, F: 1, Seed: seed})
	}
	a, err := coord.Submit(SweepRequest{Name: "a", Specs: grid})
	if err != nil {
		t.Fatal(err)
	}
	b, err := coord.Submit(SweepRequest{Name: "b", Specs: grid})
	if err != nil {
		t.Fatal(err)
	}
	if a.DedupHits != 0 || b.DedupHits != len(grid) {
		t.Errorf("dedup hits: first %d, second %d; want 0 and %d", a.DedupHits, b.DedupHits, len(grid))
	}
	stop := startWorkers(t, coord, 2)
	defer stop()
	for _, id := range []string{a.ID, b.ID} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		n := 0
		if err := coord.Stream(ctx, id, 0, func(ResultEvent) error { n++; return nil }); err != nil {
			t.Fatalf("sweep %s: %v", id, err)
		}
		cancel()
		if n != len(grid) {
			t.Errorf("sweep %s delivered %d events, want %d", id, n, len(grid))
		}
	}
	if ct := coord.Counters(); ct.Computed != len(grid) {
		t.Errorf("computed %d distinct runs, want %d", ct.Computed, len(grid))
	}
}

// TestRunsExpansionMatchesLocalSeeds: SweepRequest.Runs derives the same
// seed set runner.ExecuteContext derives, so the two execution paths
// share cache entries.
func TestRunsExpansionMatchesLocalSeeds(t *testing.T) {
	coord := NewCoordinator(Options{})
	stop := startWorkers(t, coord, 2)
	defer stop()

	// Run locally first, through the executor (which derives seeds the
	// runner's way), populating the cache...
	if _, err := ExecuteSpecs(context.Background(), coord, []runner.Spec{
		{Name: "s", Base: sim.Config{N: 10, F: 1, Protocol: gossip.PushPull{}}, Runs: 4, BaseSeed: 77},
	}, runner.Options{}); err != nil {
		t.Fatal(err)
	}
	// ...then submit the same series via the HTTP-style Runs expansion:
	// every run must be a cache hit.
	resp, err := coord.Submit(SweepRequest{
		Specs: []spec.Spec{{Protocol: "push-pull", N: 10, F: 1, Seed: 77}},
		Runs:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHits != 4 {
		t.Errorf("Runs expansion hit %d/4 cached runs; seed derivation diverged", resp.CacheHits)
	}
}

// TestLeaseExpiryRequeuesThenExhausts: a leased run whose worker vanishes
// is requeued until MaxAttempts, then failed with an environmental (non-
// deterministic, uncached) error.
func TestLeaseExpiryRequeuesThenExhausts(t *testing.T) {
	coord := NewCoordinator(Options{LeaseTTL: time.Minute, MaxAttempts: 2})
	now := time.Unix(1000, 0)
	coord.now = func() time.Time { return now }
	resp, err := coord.Submit(SweepRequest{Specs: []spec.Spec{{Protocol: "push-pull", N: 8, F: 1, Seed: 1}}})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	l1, err := coord.Acquire(ctx)
	if err != nil || l1 == nil {
		t.Fatalf("first acquire: %v, %v", l1, err)
	}
	if l1.Attempt != 0 {
		t.Errorf("first lease attempt = %d, want 0", l1.Attempt)
	}
	now = now.Add(2 * time.Minute) // worker died; TTL expired
	l2, err := coord.Acquire(ctx)
	if err != nil || l2 == nil {
		t.Fatalf("second acquire: %v, %v", l2, err)
	}
	if l2.Fingerprint != l1.Fingerprint || l2.Attempt != 1 {
		t.Errorf("requeue handed out %+v, want same run at attempt 1", l2)
	}
	// Completing with the stale first lease is a no-op, not an error.
	if err := coord.Complete(l1.ID, CompleteRequest{Outcome: &sim.Outcome{}}); err != nil {
		t.Errorf("stale complete: %v", err)
	}
	now = now.Add(2 * time.Minute) // second worker died too: attempts exhausted
	pollCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	l3, err := coord.Acquire(pollCtx)
	cancel()
	if err != nil || l3 != nil {
		t.Fatalf("third acquire after exhaustion: %+v, %v", l3, err)
	}
	st, ok := coord.Status(resp.ID)
	if !ok || !st.Finished || st.Failed != 1 {
		t.Errorf("sweep after exhaustion: %+v", st)
	}
	var evs []ResultEvent
	coord.Stream(ctx, resp.ID, 0, func(ev ResultEvent) error { evs = append(evs, ev); return nil })
	if len(evs) != 1 || evs[0].Err == nil || evs[0].Err.Deterministic {
		t.Fatalf("events after exhaustion: %+v", evs)
	}
	// Environmental failures are not cached: a fresh submission queues the
	// run again instead of replaying the failure.
	if _, ok := coord.Run(l1.Fingerprint); ok {
		t.Error("environmental failure was cached")
	}
}

// TestDeterministicFailureFlow: a deterministic failure reported by a
// worker finishes the sweep, enters the cache, and resubmission serves
// the failure without recomputation.
func TestDeterministicFailureFlow(t *testing.T) {
	coord := NewCoordinator(Options{})
	resp, err := coord.Submit(SweepRequest{Specs: []spec.Spec{{Protocol: "push-pull", N: 8, F: 1, Seed: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	lease, err := coord.Acquire(context.Background())
	if err != nil || lease == nil {
		t.Fatal(err)
	}
	re := &runner.RunError{Spec: lease.Fingerprint, Seed: lease.Spec.Seed, Panic: "boom", Deterministic: true}
	if err := coord.Complete(lease.ID, CompleteRequest{Err: re}); err != nil {
		t.Fatal(err)
	}
	st, _ := coord.Status(resp.ID)
	if !st.Finished || st.Failed != 1 {
		t.Errorf("status after deterministic failure: %+v", st)
	}
	resp2, err := coord.Submit(SweepRequest{Specs: []spec.Spec{{Protocol: "push-pull", N: 8, F: 1, Seed: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.CacheHits != 1 {
		t.Errorf("deterministic failure not served from cache: %+v", resp2)
	}
}
