// Package service turns the simulator into a sweep service: a
// content-addressed result cache keyed by canonical spec fingerprints, an
// HTTP job API for submitting and observing sweeps, and a
// coordinator/worker runtime that partitions a (spec, seed) grid across
// worker processes while folding results through the same stats/journal
// pipeline a local run uses — so the artifacts of a distributed sweep are
// byte-identical to a purely local one.
//
// The package splits along deployment lines. Coordinator owns all sweep
// state and implements the whole protocol in-process (its methods are the
// API); Server exposes the coordinator over HTTP (ugfbench -serve);
// Client speaks that HTTP surface and satisfies the same interfaces, so
// everything downstream — workers, the executor, the facade — is
// indifferent to whether the coordinator is in-process or across the
// network. RunWorker drives the lease loop (ugfbench -worker), and
// ExecuteSpecs adapts a sweep backend to the runner's result contract
// (ugfbench -coord).
package service

import (
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/spec"
)

// SweepRequest submits a grid of runs. Each spec describes one run; Runs,
// when > 1, expands every spec into Runs runs whose seeds derive from the
// spec's Seed exactly as the local runner derives them
// (xrand.Derive(seed, i)), so a distributed sweep computes the identical
// seed set a local batch would.
type SweepRequest struct {
	// Name labels the sweep in status output (optional).
	Name string `json:"name,omitempty"`
	// Specs is the grid. Every spec is validated against the registries at
	// submit time; the first invalid spec rejects the whole request.
	Specs []spec.Spec `json:"specs"`
	// Runs expands each spec into this many derived-seed repetitions
	// (0 and 1 both mean "one run per spec, as given").
	Runs int `json:"runs,omitempty"`
}

// SubmitResponse acknowledges a submitted sweep.
type SubmitResponse struct {
	// ID names the sweep for Status/Stream.
	ID string `json:"id"`
	// Total is the number of runs in the sweep after expansion.
	Total int `json:"total"`
	// CacheHits is how many of them were served from the result cache at
	// submit time — those results are already in the event feed.
	CacheHits int `json:"cache_hits"`
	// DedupHits is how many joined tasks already queued or leased for
	// another sweep (or an earlier index of this one) instead of enqueuing
	// duplicate work.
	DedupHits int `json:"dedup_hits"`
}

// SweepStatus reports a sweep's progress.
type SweepStatus struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Done, Total, Failed, CacheHits, DedupHits count runs.
	Done      int `json:"done"`
	Total     int `json:"total"`
	Failed    int `json:"failed"`
	CacheHits int `json:"cache_hits"`
	DedupHits int `json:"dedup_hits"`
	// Finished is true once every run has a result.
	Finished bool `json:"finished"`
	// Progress is the runner's progress snapshot — rate and ETA computed
	// exactly as the local -progress line computes them, with cache-served
	// runs discounted the way journal-served runs are.
	Progress runner.Snapshot `json:"progress"`
}

// ResultEvent is one entry of a sweep's result feed: the outcome (or
// deterministic failure) of the run at Index in the sweep's task order.
// Events are retained for the sweep's lifetime, so a stream can always
// resubscribe from any index.
type ResultEvent struct {
	// Index is the run's position in the sweep (spec-major, run-minor).
	Index int `json:"index"`
	// Fingerprint is the run's canonical spec fingerprint — its cache key.
	Fingerprint string `json:"fp"`
	// Spec is the canonical spec of the run.
	Spec spec.Spec `json:"spec"`
	// Outcome is the run's outcome; nil when the run failed with no
	// recovered outcome (Err is then non-nil).
	Outcome *sim.Outcome `json:"outcome,omitempty"`
	// Err records a failure. Deterministic failures carry no outcome;
	// an environmental (flaky, recovered-by-retry) failure accompanies the
	// retry's outcome.
	Err *runner.RunError `json:"error,omitempty"`
	// Cached marks a result served from the content-addressed cache
	// without recomputation.
	Cached bool `json:"cached,omitempty"`
}

// Failed reports whether the event's run produced no outcome.
func (ev ResultEvent) Failed() bool {
	return ev.Err != nil && (ev.Err.Deterministic || ev.Outcome == nil)
}

// Lease hands one run to a worker. The worker must Complete it before the
// coordinator's lease TTL expires, or the run is requeued for another
// worker (the existing RunError classification still applies: a
// deterministic failure reported inside the TTL is final and cached, only
// vanished workers trigger the retry path).
type Lease struct {
	// ID names the lease for Complete.
	ID string `json:"id"`
	// Fingerprint and Spec identify the run.
	Fingerprint string    `json:"fp"`
	Spec        spec.Spec `json:"spec"`
	// Attempt counts prior leases of this run (0 for the first).
	Attempt int `json:"attempt"`
	// TTLSeconds is the coordinator's lease TTL, so workers can bound
	// their per-run wall clock below it.
	TTLSeconds float64 `json:"ttl_seconds"`
}

// CompleteRequest reports a leased run's result. Exactly one of the
// following shapes is valid: an Outcome (success; Err optionally records
// a recovered flaky incident), an Err with Deterministic set (the run
// and its same-seed retry both panicked), or a ConfigError (the spec
// failed to build or run on the worker — version skew between worker and
// coordinator).
type CompleteRequest struct {
	Outcome *sim.Outcome     `json:"outcome,omitempty"`
	Err     *runner.RunError `json:"error,omitempty"`
	// ConfigError is sim.Run's configuration error text, fatal for the
	// run: every retry would fail identically.
	ConfigError string `json:"config_error,omitempty"`
}

// Record is one cached run: the canonical spec and its outcome or
// deterministic failure. Both are pure functions of the fingerprint, so a
// record is immutable once written.
type Record struct {
	Fingerprint string           `json:"fp"`
	Spec        spec.Spec        `json:"spec"`
	Outcome     *sim.Outcome     `json:"outcome,omitempty"`
	Err         *runner.RunError `json:"error,omitempty"`
}

// Counters aggregates the coordinator's lifetime counters.
type Counters struct {
	// Computed counts runs executed by workers to completion.
	Computed int `json:"computed"`
	// CacheHits counts runs served from the result cache at submit time.
	CacheHits int `json:"cache_hits"`
	// DedupHits counts submitted runs that joined in-flight tasks.
	DedupHits int `json:"dedup_hits"`
	// Requeued counts leases reaped after TTL expiry and requeued.
	Requeued int `json:"requeued"`
	// Queued and Leased are the current queue depths.
	Queued int `json:"queued"`
	Leased int `json:"leased"`
}
