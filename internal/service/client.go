package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Client speaks the job API of a remote coordinator, satisfying the same
// Backend and SweepBackend interfaces the in-process Coordinator does —
// workers and executors are indifferent to which one they hold.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the coordinator at baseURL (the address
// ugfbench -serve printed, e.g. "http://host:6060"). The underlying
// http.Client has no global timeout: leases long-poll and result streams
// run for the sweep's lifetime, so deadlines belong to contexts.
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
}

// Submit posts a sweep request.
func (c *Client) Submit(req SweepRequest) (SubmitResponse, error) {
	var resp SubmitResponse
	err := c.post(context.Background(), "/v1/sweeps", req, &resp)
	return resp, err
}

// Status fetches a sweep's progress.
func (c *Client) Status(id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.get("/v1/sweeps/"+url.PathEscape(id), &st)
	return st, err
}

// Run fetches the cached record of one fingerprint.
func (c *Client) Run(fp string) (Record, error) {
	var rec Record
	err := c.get("/v1/runs/"+url.PathEscape(fp), &rec)
	return rec, err
}

// Counters fetches the coordinator's lifetime counters.
func (c *Client) Counters() (Counters, error) {
	var ct Counters
	err := c.get("/v1/counters", &ct)
	return ct, err
}

// Stream consumes a sweep's JSONL result feed from event index from,
// delivering each event to fn until the sweep finishes, ctx ends, or fn
// returns an error.
func (c *Client) Stream(ctx context.Context, id string, from int, fn func(ResultEvent) error) error {
	u := c.base + "/v1/sweeps/" + url.PathEscape(id) + "/results?from=" + strconv.Itoa(from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("service: client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("service: client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // KeepPerProcess outcomes can be long lines
	for sc.Scan() {
		var ev ResultEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("service: client: bad event line: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("service: client: %w", err)
	}
	return ctx.Err()
}

// Acquire long-polls for a lease. (nil, nil) means the poll came back
// empty — the coordinator had nothing inside the context's deadline.
func (c *Client) Acquire(ctx context.Context) (*Lease, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/leases", nil)
	if err != nil {
		return nil, fmt.Errorf("service: client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil // deadline hit mid-poll: the idle answer
		}
		return nil, fmt.Errorf("service: client: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var lease Lease
		if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
			return nil, fmt.Errorf("service: client: %w", err)
		}
		return &lease, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, apiError(resp)
	}
}

// Complete reports a leased run's result.
func (c *Client) Complete(leaseID string, res CompleteRequest) error {
	return c.post(context.Background(), "/v1/leases/"+url.PathEscape(leaseID), res, nil)
}

func (c *Client) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("service: client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("service: client: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("service: client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("service: client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiError decodes a non-200 response's structured error body, falling
// back to the raw text for non-API failures (a proxy's HTML 502, say).
func apiError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var body errorBody
	if err := json.Unmarshal(data, &body); err == nil && body.Error.Msg != "" {
		return fmt.Errorf("service: %s: %w", resp.Status, &body.Error)
	}
	return fmt.Errorf("service: %s: %s", resp.Status, strings.TrimSpace(string(data)))
}
