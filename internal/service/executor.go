package service

import (
	"context"
	"fmt"
	"sort"

	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/spec"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// SweepBackend is the executor's view of a coordinator: submit a grid,
// stream its results. Coordinator implements it in-process; Client
// implements it over HTTP.
type SweepBackend interface {
	Submit(req SweepRequest) (SubmitResponse, error)
	Stream(ctx context.Context, id string, from int, fn func(ResultEvent) error) error
}

// ExecuteSpecs runs a batch of runner specs through a sweep backend
// instead of the local worker pool, folding the service's result feed
// back into the runner's exact result contract — same Outcomes order,
// same Errors/Flaky classification, same journal and OnRun integration —
// so everything downstream (stats, tables, CSV writers) produces
// byte-identical artifacts whether the runs were computed locally, by
// remote workers, or served from the content-addressed cache.
//
// Requirements beyond runner.ExecuteContext: every spec's protocol and
// adversary must be registry types (custom implementations have no spec
// encoding to ship over the wire), and opts.Trace must be nil (traces
// are local-only). opts.Workers and opts.MaxWall are execution-placement
// knobs with no meaning here and are ignored. A journal still works
// exactly as it does locally — recorded runs are served without
// re-submitting, and every streamed result (cache-served ones included)
// is recorded, so an interrupted -coord sweep resumes locally or
// remotely alike.
func ExecuteSpecs(ctx context.Context, be SweepBackend, specs []runner.Spec, opts runner.Options) ([]runner.Result, error) {
	if opts.Trace != nil {
		return nil, fmt.Errorf("service: per-run tracing is local-only; run without -coord to trace")
	}
	type slot struct{ si, run int }
	total := 0
	results := make([]runner.Result, len(specs))
	for i, s := range specs {
		if s.Runs <= 0 {
			return nil, fmt.Errorf("runner: spec %q has Runs = %d", s.Name, s.Runs)
		}
		results[i] = runner.Result{Spec: s, Outcomes: make([]sim.Outcome, s.Runs)}
		total += s.Runs
	}

	var (
		done, failed, flaky, journaled int
	)
	finish := func(sl slot, seed uint64, fromCache bool, re *runner.RunError) {
		done++
		if opts.Progress != nil {
			opts.Progress(done, total)
		}
		if opts.OnRun != nil {
			opts.OnRun(runner.RunUpdate{
				Spec: specs[sl.si].Name, Run: sl.run, Seed: seed,
				Done: done, Total: total, Failed: failed, Flaky: flaky,
				FromJournal: fromCache, Journaled: journaled, Err: re,
			})
		}
	}
	seedOf := func(sl slot) uint64 {
		return xrand.Derive(specs[sl.si].BaseSeed, uint64(sl.run))
	}
	cfgOf := func(sl slot) sim.Config {
		cfg := specs[sl.si].Base
		cfg.Seed = seedOf(sl)
		return cfg
	}
	// rewrite re-addresses a service RunError (which identifies the run by
	// fingerprint) to the series coordinates the runner contract uses.
	rewrite := func(re *runner.RunError, sl slot) *runner.RunError {
		if re == nil {
			return nil
		}
		cp := *re
		cp.Spec = specs[sl.si].Name
		cp.Run = sl.run
		cp.Seed = seedOf(sl)
		return &cp
	}
	fail := func(sl slot, re *runner.RunError) {
		failed++
		results[sl.si].Errors = append(results[sl.si].Errors, re)
		results[sl.si].Outcomes[sl.run] = runner.FailedOutcome(cfgOf(sl))
	}

	// Journal pre-pass: recorded runs never reach the service, exactly as
	// they never reach the local pool.
	var (
		grid  []spec.Spec
		slots []slot
	)
	for si, s := range specs {
		for r := 0; r < s.Runs; r++ {
			sl := slot{si, r}
			if opts.Journal != nil {
				if o, re, ok := opts.Journal.Lookup(s, r); ok {
					journaled++
					if re != nil {
						fail(sl, re)
					} else {
						results[si].Outcomes[r] = o
					}
					finish(sl, seedOf(sl), true, re)
					continue
				}
			}
			sp, err := spec.FromConfig(cfgOf(sl))
			if err != nil {
				return nil, fmt.Errorf("service: spec %q is not service-executable: %w", s.Name, err)
			}
			grid = append(grid, sp)
			slots = append(slots, sl)
		}
	}

	if len(grid) > 0 {
		resp, err := be.Submit(SweepRequest{Name: "exec", Specs: grid})
		if err != nil {
			return nil, fmt.Errorf("service: submit: %w", err)
		}
		err = be.Stream(ctx, resp.ID, 0, func(ev ResultEvent) error {
			if ev.Index < 0 || ev.Index >= len(slots) {
				return fmt.Errorf("service: event index %d outside sweep of %d runs", ev.Index, len(slots))
			}
			sl := slots[ev.Index]
			if ev.Cached {
				// Cache-served runs play the journal-served role in the
				// update feed: no local compute, discounted from the ETA.
				journaled++
			}
			re := rewrite(ev.Err, sl)
			if ev.Failed() {
				fail(sl, re)
				if opts.Journal != nil && re.Deterministic {
					opts.Journal.Record(specs[sl.si], sl.run, nil, re)
				}
			} else {
				if re != nil {
					flaky++
					results[sl.si].Flaky = append(results[sl.si].Flaky, re)
				}
				results[sl.si].Outcomes[sl.run] = *ev.Outcome
				if opts.Journal != nil && !ev.Outcome.Cancelled {
					opts.Journal.Record(specs[sl.si], sl.run, ev.Outcome, nil)
				}
			}
			var errField *runner.RunError
			if ev.Failed() {
				errField = re
			}
			finish(sl, seedOf(sl), ev.Cached, errField)
			return nil
		})
		if err != nil {
			if ctx.Err() != nil {
				// Partial results, runner-style: completed runs are valid
				// and journaled; the rest never arrived.
				return results, ctx.Err()
			}
			return nil, err
		}
	}

	for i := range results {
		byRun := func(errs []*runner.RunError) {
			sort.Slice(errs, func(a, b int) bool { return errs[a].Run < errs[b].Run })
		}
		byRun(results[i].Errors)
		byRun(results[i].Flaky)
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}
