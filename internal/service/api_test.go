package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/spec"
)

// TestAPISurface drives every endpoint of the job API over real HTTP:
// submit, status, streaming results, cached-run lookup, the registry
// listing, the lease protocol (via workers speaking only the Client), and
// the counters — plus a structured validation failure per endpoint that
// can produce one.
func TestAPISurface(t *testing.T) {
	coord := NewCoordinator(Options{})
	srv := httptest.NewServer(NewServer(coord))
	defer srv.Close()
	client := NewClient(srv.URL)

	// POST /v1/sweeps — valid submission.
	grid := []spec.Spec{
		{Protocol: "push-pull", N: 12, F: 1, Seed: 1},
		{Protocol: "ears", Adversary: "ugf", N: 12, F: 2, Seed: 2},
	}
	resp, err := client.Submit(SweepRequest{Name: "api", Specs: grid})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Total != 2 || resp.ID == "" {
		t.Fatalf("submit response %+v", resp)
	}

	// GET /v1/sweeps/{id} — pending status.
	st, err := client.Status(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 0 || st.Total != 2 || st.Finished {
		t.Errorf("pending status %+v", st)
	}

	// Workers over HTTP: the Client satisfies Backend, so the lease
	// endpoints get exercised end to end.
	stop := startWorkers(t, client, 2)
	defer stop()

	// GET /v1/sweeps/{id}/results — stream to completion.
	var events []ResultEvent
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := client.Stream(ctx, resp.ID, 0, func(ev ResultEvent) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("streamed %d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev.Outcome == nil || ev.Err != nil {
			t.Errorf("event %+v: want clean outcome", ev)
		}
	}

	// Streaming with ?from= resumes mid-feed.
	var tail []ResultEvent
	if err := client.Stream(ctx, resp.ID, 1, func(ev ResultEvent) error {
		tail = append(tail, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || !reflect.DeepEqual(tail[0], events[1]) {
		t.Errorf("from=1 stream returned %+v", tail)
	}

	// GET /v1/runs/{fp} — cached run by fingerprint.
	rec, err := client.Run(events[0].Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fingerprint != events[0].Fingerprint || rec.Outcome == nil {
		t.Errorf("run record %+v", rec)
	}
	if !reflect.DeepEqual(*rec.Outcome, *events[0].Outcome) {
		t.Error("cached outcome differs from streamed outcome")
	}

	// Finished status carries progress and counters.
	st, err = client.Status(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finished || st.Done != 2 || st.Progress.Done != 2 {
		t.Errorf("finished status %+v", st)
	}

	// GET /v1/counters.
	ct, err := client.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if ct.Computed != 2 {
		t.Errorf("counters %+v, want 2 computed", ct)
	}

	// GET /v1/registry — schemas for both sides of a spec.
	var reg struct {
		SpecVersion int `json:"spec_version"`
		Protocols   []struct {
			Name   string            `json:"name"`
			Params []json.RawMessage `json:"params"`
		} `json:"protocols"`
		Adversaries []struct {
			Name string `json:"name"`
		} `json:"adversaries"`
	}
	hres, err := http.Get(srv.URL + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hres.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if reg.SpecVersion != spec.Version || len(reg.Protocols) == 0 || len(reg.Adversaries) == 0 {
		t.Errorf("registry listing: version %d, %d protocols, %d adversaries",
			reg.SpecVersion, len(reg.Protocols), len(reg.Adversaries))
	}
	foundSEARS := false
	for _, p := range reg.Protocols {
		if p.Name == "sears" && len(p.Params) > 0 {
			foundSEARS = true
		}
	}
	if !foundSEARS {
		t.Error("registry listing misses sears or its parameter schemas")
	}
}

// TestAPIValidationFailures: malformed requests come back as structured
// 400s naming the offending field and parameter — never a 500.
func TestAPIValidationFailures(t *testing.T) {
	coord := NewCoordinator(Options{})
	srv := httptest.NewServer(NewServer(coord))
	defer srv.Close()

	post := func(t *testing.T, body string) (int, errorBody) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, eb
	}

	cases := []struct {
		name, body   string
		field, param string
	}{
		{"bad json", `{"specs": [`, "", ""},
		{"unknown request field", `{"specs":[],"bogus":1}`, "", ""},
		{"empty grid", `{"specs":[]}`, "specs", ""},
		{"unknown protocol", `{"specs":[{"protocol":"nope","n":10,"f":1}]}`, "protocol", ""},
		{"bad param", `{"specs":[{"protocol":"sears","protocol_params":{"epsilon":7},"n":10,"f":1}]}`, "protocol_params", "epsilon"},
		{"bad n", `{"specs":[{"protocol":"ears","n":0,"f":0}]}`, "n", ""},
	}
	for _, tc := range cases {
		status, eb := post(t, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, status)
			continue
		}
		if eb.Error.Msg == "" {
			t.Errorf("%s: no structured error body", tc.name)
			continue
		}
		if eb.Error.Field != tc.field || eb.Error.Param != tc.param {
			t.Errorf("%s: error at %q/%q, want %q/%q (%s)",
				tc.name, eb.Error.Field, eb.Error.Param, tc.field, tc.param, eb.Error.Msg)
		}
	}

	// Unknown sweep and run IDs are structured 404s.
	for _, path := range []string{"/v1/sweeps/s999", "/v1/sweeps/s999/results", "/v1/runs/0123456789abcdef", "/v1/runs/../etc"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// Idle lease long-poll answers 204, not an error.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/leases", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Errorf("idle lease poll: status %d, want 204", resp.StatusCode)
		}
	}

	// ?from= validation.
	sub, err := coord.Submit(SweepRequest{Specs: []spec.Spec{{Protocol: "push-pull", N: 8, F: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	badFrom, err := http.Get(srv.URL + "/v1/sweeps/" + sub.ID + "/results?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	badFrom.Body.Close()
	if badFrom.StatusCode != http.StatusBadRequest {
		t.Errorf("from=-1: status %d, want 400", badFrom.StatusCode)
	}
}

// TestWorkerCancelledRunRequeues: a worker shut down mid-run reports a
// cancelled outcome, which the coordinator requeues rather than caches —
// the next worker computes it fresh.
func TestWorkerCancelledRunRequeues(t *testing.T) {
	coord := NewCoordinator(Options{})
	if _, err := coord.Submit(SweepRequest{Specs: []spec.Spec{{Protocol: "push-pull", N: 8, F: 1, Seed: 9}}}); err != nil {
		t.Fatal(err)
	}
	lease, err := coord.Acquire(context.Background())
	if err != nil || lease == nil {
		t.Fatal(err)
	}
	if err := coord.Complete(lease.ID, CompleteRequest{Outcome: &sim.Outcome{Cancelled: true}}); err != nil {
		t.Fatal(err)
	}
	lease2, err := coord.Acquire(context.Background())
	if err != nil || lease2 == nil {
		t.Fatal("cancelled run was not requeued")
	}
	if lease2.Fingerprint != lease.Fingerprint {
		t.Errorf("requeued fingerprint %s, want %s", lease2.Fingerprint, lease.Fingerprint)
	}
	if _, ok := coord.Run(lease.Fingerprint); ok {
		t.Error("cancelled outcome was cached")
	}
}
