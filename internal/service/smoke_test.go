package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/ugf-sim/ugf/internal/sim"
	"github.com/ugf-sim/ugf/internal/spec"
)

// smokeGrid is the CI service-smoke sweep: 40 configurations crossing
// protocols, adversaries, sizes, and seeds — wide enough to exercise the
// lease queue under two workers, small enough to finish in seconds.
func smokeGrid() []spec.Spec {
	var grid []spec.Spec
	for _, proto := range []string{"push-pull", "push", "ears", "sears"} {
		for _, adv := range []string{"", "ugf"} {
			for _, n := range []int{10, 14} {
				for seed := uint64(1); seed <= 5; seed += 2 {
					if len(grid) == 40 {
						return grid
					}
					grid = append(grid, spec.Spec{
						Protocol: proto, Adversary: adv,
						N: n, F: n / 4, Seed: seed,
					})
				}
			}
		}
	}
	return grid
}

// TestServiceSmoke is the CI service-smoke job: a coordinator with two
// in-process workers runs a 40-config sweep submitted twice (the second
// submission rides entirely on in-flight dedup), the distributed results
// match serial execution byte for byte, and a post-completion resubmit is
// served 100% from the cache with zero recomputation.
func TestServiceSmoke(t *testing.T) {
	grid := smokeGrid()
	if len(grid) != 40 {
		t.Fatalf("smoke grid has %d configs, want 40", len(grid))
	}

	// Serial reference: every spec through the blessed Config path,
	// straight into sim.Run.
	serial := make([]sim.Outcome, len(grid))
	for i, sp := range grid {
		cfg, err := sp.Config()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		o, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		serial[i] = o.StripWall()
	}

	// Coordinator over real HTTP; everything below speaks the job API.
	coord := NewCoordinator(Options{})
	srv := httptest.NewServer(NewServer(coord))
	defer srv.Close()
	client := NewClient(srv.URL)

	// Submit twice before any worker exists: the second sweep must share
	// every in-flight task with the first.
	a, err := client.Submit(SweepRequest{Name: "smoke-a", Specs: grid})
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Submit(SweepRequest{Name: "smoke-b", Specs: grid})
	if err != nil {
		t.Fatal(err)
	}
	if b.DedupHits != len(grid) {
		t.Fatalf("second submission dedup hits = %d, want %d", b.DedupHits, len(grid))
	}

	stop := startWorkers(t, client, 2)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, id := range []string{a.ID, b.ID} {
		got := make([]sim.Outcome, len(grid))
		if err := client.Stream(ctx, id, 0, func(ev ResultEvent) error {
			if ev.Failed() {
				t.Errorf("sweep %s spec %d failed: %+v", id, ev.Index, ev.Err)
				return nil
			}
			got[ev.Index] = ev.Outcome.StripWall()
			return nil
		}); err != nil {
			t.Fatalf("sweep %s: %v", id, err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("sweep %s diverged from serial execution", id)
			continue
		}
		sj, _ := json.Marshal(serial)
		gj, _ := json.Marshal(got)
		if string(sj) != string(gj) {
			t.Errorf("sweep %s: serialized outcomes differ from serial execution", id)
		}
	}
	if ct := coord.Counters(); ct.Computed != len(grid) {
		t.Errorf("computed %d distinct runs, want %d", ct.Computed, len(grid))
	}

	// Resubmission after completion: zero recomputation, all cache.
	before := coord.Counters()
	c, err := client.Submit(SweepRequest{Name: "smoke-c", Specs: grid})
	if err != nil {
		t.Fatal(err)
	}
	if c.CacheHits != len(grid) {
		t.Fatalf("resubmit cache hits = %d, want %d", c.CacheHits, len(grid))
	}
	st, err := client.Status(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finished || st.Done != len(grid) {
		t.Errorf("resubmitted sweep not instantly finished: %+v", st)
	}
	if after := coord.Counters(); after.Computed != before.Computed {
		t.Errorf("resubmit recomputed %d runs", after.Computed-before.Computed)
	}
}
