package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/spec"
	"github.com/ugf-sim/ugf/internal/xrand"
)

// Options parameterizes a Coordinator.
type Options struct {
	// Cache is the result store; nil opens a fresh in-memory cache.
	Cache *Cache
	// LeaseTTL is how long a worker holds a leased run before the
	// coordinator reaps and requeues it (default 2 minutes). Deterministic
	// failures reported inside the TTL are final; only vanished workers
	// trigger the requeue path.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many leases one run may consume before the
	// coordinator fails it with an environmental RunError (default 3).
	MaxAttempts int
}

// Coordinator owns the sweep service's state: the task queue partitioning
// submitted (spec, seed) grids across workers, the lease table, the
// per-sweep result feeds, and the content-addressed cache. All its
// methods are safe for concurrent use; Server exposes them over HTTP, and
// in-process workers call them directly — the two deployments share every
// line of dispatch logic.
//
// Deduplication happens at two levels. A submitted run whose fingerprint
// is already cached is answered immediately without queueing; one whose
// fingerprint is already queued or leased (for any sweep) joins that
// in-flight task, so concurrent sweeps over overlapping grids compute
// each distinct run exactly once.
type Coordinator struct {
	cache       *Cache
	leaseTTL    time.Duration
	maxAttempts int

	mu     sync.Mutex
	wake   *sync.Cond // broadcast on every event append / sweep completion
	notify chan struct{}
	sweeps map[string]*sweepState
	tasks  map[string]*task // queued or leased, by fingerprint
	queue  []*task          // FIFO of queued tasks
	leases map[string]*task // by lease ID
	nextID int64

	computed, cacheHits, dedupHits, requeued int

	now func() time.Time // test hook
}

// sub points one task at one slot of one sweep; a task completing fills
// every slot subscribed to it.
type sub struct {
	sw    *sweepState
	index int
}

type task struct {
	fp       string
	sp       spec.Spec
	attempts int    // leases consumed so far
	leaseID  string // "" while queued
	expiry   time.Time
	subs     []sub
}

type sweepState struct {
	id, name             string
	specs                []spec.Spec // canonical, one per run, in sweep order
	fps                  []string
	events               []ResultEvent // completion order; retained for streaming
	done, failed         int
	cacheHits, dedupHits int
	prog                 *runner.Progress
}

// NewCoordinator builds a coordinator with the given options.
func NewCoordinator(opts Options) *Coordinator {
	cache := opts.Cache
	if cache == nil {
		cache, _ = NewCache("")
	}
	ttl := opts.LeaseTTL
	if ttl <= 0 {
		ttl = 2 * time.Minute
	}
	attempts := opts.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	c := &Coordinator{
		cache:       cache,
		leaseTTL:    ttl,
		maxAttempts: attempts,
		notify:      make(chan struct{}, 1),
		sweeps:      map[string]*sweepState{},
		tasks:       map[string]*task{},
		leases:      map[string]*task{},
		now:         time.Now,
	}
	c.wake = sync.NewCond(&c.mu)
	return c
}

// Cache returns the coordinator's result cache.
func (c *Coordinator) Cache() *Cache { return c.cache }

// Submit validates and enqueues a sweep: every spec canonicalized and
// fingerprinted, cached results answered immediately, the rest deduped
// against in-flight tasks or queued for workers. The first invalid spec
// rejects the whole request with a *spec.Error — a sweep is all-or-
// nothing, so a half-submitted grid never leaves orphan tasks behind.
func (c *Coordinator) Submit(req SweepRequest) (SubmitResponse, error) {
	if len(req.Specs) == 0 {
		return SubmitResponse{}, &spec.Error{Field: "specs", Msg: "empty sweep: need at least one spec"}
	}
	runs := req.Runs
	if runs <= 0 {
		runs = 1
	}
	// Validate and canonicalize everything before touching shared state.
	grid := make([]spec.Spec, 0, len(req.Specs)*runs)
	for i, sp := range req.Specs {
		for r := 0; r < runs; r++ {
			one := sp
			if runs > 1 {
				// The same derivation the local runner uses, so distributed
				// and local sweeps compute the identical seed set.
				one.Seed = xrand.Derive(sp.Seed, uint64(r))
			}
			canon, err := one.Canonicalize()
			if err != nil {
				if se, ok := err.(*spec.Error); ok {
					return SubmitResponse{}, &spec.Error{Field: se.Field, Param: se.Param,
						Msg: fmt.Sprintf("specs[%d]: %s", i, se.Msg)}
				}
				return SubmitResponse{}, err
			}
			grid = append(grid, canon)
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	sw := &sweepState{
		id:    fmt.Sprintf("s%d", c.nextID),
		name:  req.Name,
		specs: grid,
		fps:   make([]string, len(grid)),
		prog:  &runner.Progress{Label: req.Name},
	}
	c.sweeps[sw.id] = sw
	resp := SubmitResponse{ID: sw.id, Total: len(grid)}
	for i, canon := range grid {
		fp := canon.Fingerprint()
		sw.fps[i] = fp
		if rec, ok := c.cache.Get(fp); ok {
			sw.cacheHits++
			c.cacheHits++
			c.emitLocked(sw, i, rec, true)
			continue
		}
		if t, ok := c.tasks[fp]; ok {
			sw.dedupHits++
			c.dedupHits++
			t.subs = append(t.subs, sub{sw, i})
			continue
		}
		t := &task{fp: fp, sp: canon, subs: []sub{{sw, i}}}
		c.tasks[fp] = t
		c.queue = append(c.queue, t)
	}
	resp.CacheHits = sw.cacheHits
	resp.DedupHits = sw.dedupHits
	c.kick()
	c.wake.Broadcast()
	return resp, nil
}

// emitLocked appends a result event for slot index of sw and updates the
// sweep's counters and progress feed.
func (c *Coordinator) emitLocked(sw *sweepState, index int, rec Record, cached bool) {
	ev := ResultEvent{
		Index:       index,
		Fingerprint: rec.Fingerprint,
		Spec:        rec.Spec,
		Outcome:     rec.Outcome,
		Err:         rec.Err,
		Cached:      cached,
	}
	sw.events = append(sw.events, ev)
	sw.done++
	if ev.Failed() {
		sw.failed++
	}
	u := runner.RunUpdate{
		Spec: sw.name, Done: sw.done, Total: len(sw.fps), Failed: sw.failed,
		// Cache-served runs play the journal-served role in the snapshot:
		// discounted from the rate, so the ETA reflects actual compute.
		FromJournal: cached, Journaled: sw.cacheHits,
	}
	if ev.Outcome != nil {
		u.Seed = ev.Outcome.Seed
	}
	sw.prog.OnRun(u)
	c.wake.Broadcast()
}

// Status reports a sweep's progress; ok is false for unknown IDs.
func (c *Coordinator) Status(id string) (SweepStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[id]
	if !ok {
		return SweepStatus{}, false
	}
	return SweepStatus{
		ID: sw.id, Name: sw.name,
		Done: sw.done, Total: len(sw.fps), Failed: sw.failed,
		CacheHits: sw.cacheHits, DedupHits: sw.dedupHits,
		Finished: sw.done == len(sw.fps),
		Progress: sw.prog.Snapshot(),
	}, true
}

// Stream delivers a sweep's result events to fn in completion order,
// starting at event index from (not run index: events are retained, so
// reconnecting clients pass the count they already have). It blocks until
// the sweep finishes, ctx is cancelled, or fn returns an error.
func (c *Coordinator) Stream(ctx context.Context, id string, from int, fn func(ResultEvent) error) error {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.wake.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	sw, ok := c.sweeps[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("service: unknown sweep %q", id)
	}
	if from < 0 {
		from = 0
	}
	i := from
	for {
		for i < len(sw.events) {
			ev := sw.events[i]
			i++
			c.mu.Unlock()
			if err := fn(ev); err != nil {
				return err
			}
			c.mu.Lock()
		}
		if sw.done == len(sw.fps) {
			c.mu.Unlock()
			return nil
		}
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return err
		}
		c.wake.Wait()
	}
}

// Run returns the cached record of one fingerprint.
func (c *Coordinator) Run(fp string) (Record, bool) {
	return c.cache.Get(fp)
}

// Acquire leases the next queued run to a worker, blocking until one is
// available or ctx ends. A nil lease with a nil error means ctx expired
// with nothing to hand out — the long-poll idle answer, not a failure.
func (c *Coordinator) Acquire(ctx context.Context) (*Lease, error) {
	for {
		c.mu.Lock()
		c.reapLocked()
		if t := c.popLocked(); t != nil {
			c.nextID++
			t.leaseID = fmt.Sprintf("l%d", c.nextID)
			t.expiry = c.now().Add(c.leaseTTL)
			c.leases[t.leaseID] = t
			lease := &Lease{
				ID: t.leaseID, Fingerprint: t.fp, Spec: t.sp,
				Attempt: t.attempts, TTLSeconds: c.leaseTTL.Seconds(),
			}
			t.attempts++
			c.mu.Unlock()
			return lease, nil
		}
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, nil
		case <-c.notify:
		case <-time.After(200 * time.Millisecond):
			// The periodic wake doubles as the lease reaper's clock: an
			// otherwise idle coordinator still requeues expired leases.
		}
	}
}

// popLocked removes and returns the first queued task, nil when the queue
// is empty.
func (c *Coordinator) popLocked() *task {
	for len(c.queue) > 0 {
		t := c.queue[0]
		c.queue = c.queue[1:]
		if t.leaseID == "" && c.tasks[t.fp] == t {
			return t
		}
	}
	return nil
}

// reapLocked requeues (or, past MaxAttempts, fails) tasks whose lease
// TTL expired — the worker died or lost its network. Reaping happens on
// every Acquire/Complete call plus the acquire loop's periodic wake, so
// no background goroutine is needed and tests control time exactly.
func (c *Coordinator) reapLocked() {
	now := c.now()
	for id, t := range c.leases {
		if now.Before(t.expiry) {
			continue
		}
		delete(c.leases, id)
		t.leaseID = ""
		c.requeued++
		if t.attempts >= c.maxAttempts {
			// Environmental exhaustion: no worker finished the run inside
			// the TTL, MaxAttempts times over. Classified non-deterministic
			// and NOT cached — a later submission retries fresh.
			re := &runner.RunError{
				Spec: t.fp, Seed: t.sp.Seed, Deterministic: false,
				Panic: fmt.Sprintf("lease expired %d times (TTL %s); worker lost or run exceeds TTL", t.attempts, c.leaseTTL),
			}
			c.finishLocked(t, Record{Fingerprint: t.fp, Spec: t.sp, Err: re}, false)
			continue
		}
		c.queue = append(c.queue, t)
	}
	if len(c.queue) > 0 {
		c.kick()
	}
}

// Complete reports a leased run's result. Stale lease IDs — expired and
// requeued, or already completed by a twin — are ignored without error:
// completion is idempotent, first writer wins.
func (c *Coordinator) Complete(leaseID string, res CompleteRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	t, ok := c.leases[leaseID]
	if !ok {
		return nil // stale: reaped, requeued, or finished elsewhere
	}
	delete(c.leases, leaseID)
	t.leaseID = ""
	switch {
	case res.ConfigError != "":
		// The spec cannot run: deterministic by construction, every retry
		// fails identically. Cached so resubmissions answer instantly.
		re := &runner.RunError{
			Spec: t.fp, Seed: t.sp.Seed, Deterministic: true,
			Panic: "configuration error: " + res.ConfigError,
		}
		c.finishLocked(t, Record{Fingerprint: t.fp, Spec: t.sp, Err: re}, true)
	case res.Outcome != nil && res.Outcome.Cancelled:
		// The worker was shut down mid-run; the outcome's stopping point is
		// wall-clock-dependent, never cacheable. Requeue.
		c.queue = append(c.queue, t)
		c.kick()
	case res.Outcome != nil:
		c.computed++
		c.finishLocked(t, Record{Fingerprint: t.fp, Spec: t.sp, Outcome: res.Outcome, Err: res.Err}, true)
	case res.Err != nil && res.Err.Deterministic:
		c.computed++
		c.finishLocked(t, Record{Fingerprint: t.fp, Spec: t.sp, Err: res.Err}, true)
	default:
		return fmt.Errorf("service: lease %s completed with neither outcome nor deterministic error", leaseID)
	}
	return nil
}

// finishLocked resolves a task: optionally caches its record, removes it
// from the in-flight table, and emits an event into every subscribed
// sweep slot.
func (c *Coordinator) finishLocked(t *task, rec Record, cache bool) {
	if cache {
		c.cache.Put(rec)
	}
	delete(c.tasks, t.fp)
	for _, s := range t.subs {
		c.emitLocked(s.sw, s.index, rec, false)
	}
}

// Counters returns the coordinator's lifetime counters.
func (c *Coordinator) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Counters{
		Computed: c.computed, CacheHits: c.cacheHits, DedupHits: c.dedupHits,
		Requeued: c.requeued, Queued: len(c.queue), Leased: len(c.leases),
	}
}

// kick nudges one blocked Acquire without blocking the caller.
func (c *Coordinator) kick() {
	select {
	case c.notify <- struct{}{}:
	default:
	}
}
