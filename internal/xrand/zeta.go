package xrand

import "math"

// The ζ(2) distribution from Algorithm 1 / Remark 2 of the paper:
//
//	P(K = k) = 6/(π² k²),  k = 1, 2, 3, …
//
// UGF samples the delay exponents k and l from this law. The paper notes
// (Remark 2) that any infinite sequence summing to 1 would do; the 1/k²
// shape is what makes the indistinguishability lemmas (Lemmas 4 and 5) give
// a 1/⌈log_τ t⌉ lower bound on the probability of drawing a large delay.

// zetaNorm is 6/π², the normalizing constant of the ζ(2) law.
const zetaNorm = 6 / (math.Pi * math.Pi)

// Zeta2PMF returns P(K = k) = 6/(π²k²) for k ≥ 1 and 0 otherwise.
func Zeta2PMF(k int) float64 {
	if k < 1 {
		return 0
	}
	kk := float64(k)
	return zetaNorm / (kk * kk)
}

// Zeta2TailLowerBound is the paper's telescoping lower bound
// (proofs of Lemmas 4 and 5):
//
//	P(K ≥ k) ≥ 6/(π² k)  for k ≥ 1.
//
// It is exposed so the lemma-validation experiment can compare the
// empirical tail against the exact bound used in the analysis.
func Zeta2TailLowerBound(k int) float64 {
	if k < 1 {
		return 1
	}
	return zetaNorm / float64(k)
}

// Zeta2 draws from the untruncated ζ(2) law by sequential inversion:
// walk k upward accumulating mass until the uniform draw is covered.
//
// The walk terminates with probability 1 but the law is heavy-tailed
// (E[K] = ∞), so simulations that turn k into a delay τᵏ should use
// Zeta2Capped instead; Zeta2 exists for the sampler-validation experiments
// where the exact law matters.
func (r *RNG) Zeta2() int {
	u := r.Float64()
	acc := 0.0
	for k := 1; ; k++ {
		acc += Zeta2PMF(k)
		if u < acc {
			return k
		}
		// Floating-point accumulation cannot quite reach 1; once the
		// remaining mass is below the representable slack, return the
		// current k. P(K > 1e8) < 6.1e-9, so this is unreachable in
		// practice and exists only to make termination unconditional.
		if k >= 1<<30 {
			return k
		}
	}
}

// Zeta2Capped draws K from the ζ(2) law conditioned on K ≤ maxK
// (that is, the truncated and renormalized law). It panics if maxK < 1.
//
// The simulator uses the capped sampler because the drawn exponent k turns
// into a delay of τᵏ global steps: an unbounded k would make a single
// outcome astronomically long. Truncation keeps every strategy 2.k.l
// realizable within a finite horizon while preserving the 1/k² shape on
// the retained support; the cap and its effect are reported in the outcome
// so experiments can account for it.
func (r *RNG) Zeta2Capped(maxK int) int {
	if maxK < 1 {
		panic("xrand: Zeta2Capped with maxK < 1")
	}
	if maxK == 1 {
		return 1
	}
	total := 0.0
	for k := 1; k <= maxK; k++ {
		total += Zeta2PMF(k)
	}
	u := r.Float64() * total
	acc := 0.0
	for k := 1; k < maxK; k++ {
		acc += Zeta2PMF(k)
		if u < acc {
			return k
		}
	}
	return maxK
}
