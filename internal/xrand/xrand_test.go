package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: same seed diverged: %d != %d", i, av, bv)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from distinct seeds collide too often: %d/1000", same)
	}
}

func TestDeriveDeterministicAndPathSensitive(t *testing.T) {
	if Derive(7, 1, 2) != Derive(7, 1, 2) {
		t.Fatal("Derive is not deterministic")
	}
	if Derive(7, 1, 2) == Derive(7, 2, 1) {
		t.Fatal("Derive ignores path order")
	}
	if Derive(7, 1) == Derive(8, 1) {
		t.Fatal("Derive ignores base seed")
	}
	if Derive(7) == Derive(7, 0) {
		t.Fatal("Derive ignores path length")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// The child's stream must not be a shifted copy of the parent's.
	parentVals := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		parentVals[parent.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 200; i++ {
		if parentVals[child.Uint64()] {
			collisions++
		}
	}
	if collisions > 1 {
		t.Fatalf("child stream overlaps parent stream: %d collisions", collisions)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want about %.0f", v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nRange(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(13)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(1.0 / 3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-1.0/3) > 0.01 {
		t.Fatalf("Bernoulli(1/3) rate %.4f, want ~0.3333", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	prop := func(nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermZero(t *testing.T) {
	if p := New(1).Perm(0); len(p) != 0 {
		t.Fatalf("Perm(0) = %v, want empty", p)
	}
}

func TestSampleIntsDistinctAndInRange(t *testing.T) {
	r := New(23)
	prop := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%50 + 1
		k := int(kRaw) % (n + 1)
		s := r.SampleInts(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIntsUniform(t *testing.T) {
	// Each element of [0,n) must appear in a k-sample with probability k/n.
	r := New(29)
	const n, k, draws = 10, 3, 60000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		for _, v := range r.SampleInts(n, k) {
			counts[v]++
		}
	}
	want := float64(draws) * k / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d sampled %d times, want about %.0f", v, c, want)
		}
	}
}

func TestSampleIntsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleInts(3, 4) did not panic")
		}
	}()
	New(1).SampleInts(3, 4)
}

func TestIntnExcept(t *testing.T) {
	r := New(31)
	for i := 0; i < 5000; i++ {
		v := r.IntnExcept(10, 4)
		if v < 0 || v >= 10 || v == 4 {
			t.Fatalf("IntnExcept(10, 4) = %d", v)
		}
	}
	// except outside the domain means plain Intn.
	for i := 0; i < 100; i++ {
		if v := r.IntnExcept(3, -1); v < 0 || v >= 3 {
			t.Fatalf("IntnExcept(3, -1) = %d", v)
		}
	}
}

func TestIntnExceptUniform(t *testing.T) {
	r := New(37)
	const n, except, draws = 8, 2, 70000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.IntnExcept(n, except)]++
	}
	if counts[except] != 0 {
		t.Fatalf("excluded value drawn %d times", counts[except])
	}
	want := float64(draws) / (n - 1)
	for v, c := range counts {
		if v == except {
			continue
		}
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want about %.0f", v, c, want)
		}
	}
}

func TestIntnExceptPanicsOnEmptyDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntnExcept(1, 0) did not panic")
		}
	}()
	New(1).IntnExcept(1, 0)
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(41)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost by Shuffle: %v", i, xs)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(43)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %.4f, want ~1", variance)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= r.Intn(1000)
	}
	_ = sink
}
