package xrand

import "testing"

// FuzzZetaSampler hammers the ζ(2) samplers with arbitrary seeds and
// caps, asserting the hard contracts that hold for every input: draws
// land in the legal support ([1, ∞) uncapped, [1, maxK] capped), equal
// seeds reproduce equal draw sequences, and the PMF stays a valid,
// monotonically decreasing probability sequence.
func FuzzZetaSampler(f *testing.F) {
	f.Add(uint64(1), uint8(8))
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(0xDEADBEEF), uint8(1))
	f.Add(^uint64(0), uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, capRaw uint8) {
		maxK := int(capRaw)%64 + 1

		r := New(seed)
		for i := 0; i < 64; i++ {
			if k := r.Zeta2Capped(maxK); k < 1 || k > maxK {
				t.Fatalf("Zeta2Capped(%d) = %d, outside [1, %d]", maxK, k, maxK)
			}
		}
		for i := 0; i < 16; i++ {
			if k := r.Zeta2(); k < 1 {
				t.Fatalf("Zeta2() = %d, want ≥ 1", k)
			}
		}

		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			ka, kb := a.Zeta2Capped(maxK), b.Zeta2Capped(maxK)
			if ka != kb {
				t.Fatalf("draw %d: same seed diverged: %d vs %d", i, ka, kb)
			}
		}

		for k := 1; k <= maxK; k++ {
			p, next := Zeta2PMF(k), Zeta2PMF(k+1)
			if p <= 0 || p > 1 {
				t.Fatalf("Zeta2PMF(%d) = %v, not a probability", k, p)
			}
			if next >= p {
				t.Fatalf("Zeta2PMF not strictly decreasing at k=%d: %v then %v", k, p, next)
			}
		}
		if Zeta2PMF(0) != 0 || Zeta2PMF(-int(capRaw)-1) != 0 {
			t.Fatal("Zeta2PMF outside the support must be 0")
		}
	})
}
