package xrand

import (
	"math"
	"testing"
)

func TestZeta2PMFNormalization(t *testing.T) {
	// The PMF must sum to 1; with a finite sum we check it approaches 1
	// from below at the 1/k tail rate.
	sum := 0.0
	const upTo = 1 << 20
	for k := 1; k <= upTo; k++ {
		sum += Zeta2PMF(k)
	}
	tail := zetaNorm / float64(upTo) // ~ remaining mass
	if sum >= 1 {
		t.Fatalf("partial PMF sum %.12f ≥ 1", sum)
	}
	if 1-sum > 2*tail {
		t.Fatalf("partial PMF sum %.12f leaves %.2e mass, want ≤ %.2e", sum, 1-sum, 2*tail)
	}
}

func TestZeta2PMFOutOfSupport(t *testing.T) {
	if Zeta2PMF(0) != 0 || Zeta2PMF(-3) != 0 {
		t.Fatal("PMF nonzero outside support")
	}
	if got, want := Zeta2PMF(1), 6/(math.Pi*math.Pi); math.Abs(got-want) > 1e-15 {
		t.Fatalf("PMF(1) = %v, want %v", got, want)
	}
}

func TestZeta2EmpiricalMatchesPMF(t *testing.T) {
	r := New(101)
	const draws = 200000
	counts := map[int]int{}
	for i := 0; i < draws; i++ {
		counts[r.Zeta2()]++
	}
	for k := 1; k <= 5; k++ {
		want := Zeta2PMF(k) * draws
		got := float64(counts[k])
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("k=%d drawn %.0f times, want about %.0f", k, got, want)
		}
	}
}

func TestZeta2TailBoundHolds(t *testing.T) {
	// Empirical P(K ≥ k) must respect the telescoping lower bound 6/(π²k)
	// used in the proofs of Lemmas 4 and 5 (up to sampling noise).
	r := New(103)
	const draws = 200000
	tail := make([]int, 64)
	for i := 0; i < draws; i++ {
		v := r.Zeta2()
		for k := 1; k < len(tail); k++ {
			if v >= k {
				tail[k]++
			}
		}
	}
	for k := 1; k <= 20; k++ {
		emp := float64(tail[k]) / draws
		bound := Zeta2TailLowerBound(k)
		// Allow 4-sigma slack below the bound.
		slack := 4 * math.Sqrt(bound*(1-bound)/draws)
		if emp < bound-slack {
			t.Errorf("P(K≥%d) = %.5f below bound %.5f", k, emp, bound)
		}
	}
}

// TestZeta2ChiSquared is the distributional assertion for the Remark 2
// sampler: a chi-squared goodness-of-fit test of the empirical draw
// counts against P(K = k) = 6/(π²k²) over the first 50 buckets, with
// everything above 50 pooled into one tail bucket. With a fixed seed the
// statistic is deterministic, so the bound can sit at the χ²(50)
// α ≈ 0.001 critical value (~86.7) with headroom and still fail loudly
// for any systematic sampler defect — a wrong normalizer, an off-by-one
// in the inversion walk, or a biased uniform source all blow the
// statistic up by orders of magnitude.
func TestZeta2ChiSquared(t *testing.T) {
	const (
		draws   = 200000
		buckets = 50 // per-k cells; expected count at k=50 is ~49 ≫ 5
		bound   = 100.0
	)
	r := New(113)
	counts := make([]float64, buckets+2) // 1..buckets, tail at buckets+1
	for i := 0; i < draws; i++ {
		k := r.Zeta2()
		if k > buckets {
			k = buckets + 1
		}
		counts[k]++
	}
	tailMass := 1.0
	chi2 := 0.0
	for k := 1; k <= buckets; k++ {
		p := Zeta2PMF(k)
		tailMass -= p
		want := p * draws
		d := counts[k] - want
		chi2 += d * d / want
	}
	wantTail := tailMass * draws
	d := counts[buckets+1] - wantTail
	chi2 += d * d / wantTail
	if chi2 > bound {
		t.Errorf("chi-squared statistic %.1f over %d cells exceeds %.0f: sampler does not fit 6/(π²k²)",
			chi2, buckets+1, bound)
	}
}

func TestZeta2CappedSupport(t *testing.T) {
	r := New(107)
	for _, maxK := range []int{1, 2, 3, 8} {
		for i := 0; i < 2000; i++ {
			if v := r.Zeta2Capped(maxK); v < 1 || v > maxK {
				t.Fatalf("Zeta2Capped(%d) = %d out of support", maxK, v)
			}
		}
	}
}

func TestZeta2CappedRenormalized(t *testing.T) {
	// With cap 3, P(1):P(2):P(3) must remain 1 : 1/4 : 1/9.
	r := New(109)
	const draws = 300000
	counts := [4]int{}
	for i := 0; i < draws; i++ {
		counts[r.Zeta2Capped(3)]++
	}
	total := 1.0 + 1.0/4 + 1.0/9
	for k := 1; k <= 3; k++ {
		want := (1 / float64(k*k)) / total * draws
		got := float64(counts[k])
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("capped k=%d drawn %.0f times, want about %.0f", k, got, want)
		}
	}
}

func TestZeta2CappedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zeta2Capped(0) did not panic")
		}
	}()
	New(1).Zeta2Capped(0)
}

func TestZeta2TailLowerBoundEdge(t *testing.T) {
	if Zeta2TailLowerBound(0) != 1 {
		t.Fatal("tail bound for k<1 must be the trivial bound 1")
	}
}

func BenchmarkZeta2(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= r.Zeta2()
	}
	_ = sink
}

func BenchmarkZeta2Capped(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= r.Zeta2Capped(8)
	}
	_ = sink
}
