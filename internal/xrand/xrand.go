// Package xrand provides the deterministic random-number machinery used by
// the UGF simulator.
//
// Every run of the simulator must be a pure function of (configuration,
// seed): results must not depend on goroutine scheduling, map iteration
// order, or the Go version's math/rand internals. To that end this package
// implements a small, self-contained generator (xoshiro256** seeded through
// SplitMix64) together with
//
//   - cheap stream derivation (Derive, Split) so that every process in a
//     simulation owns an independent generator — the property that makes
//     deterministic parallel stepping possible, and
//   - the samplers the paper needs, most notably the ζ(2) distribution
//     P(K=k) = 6/(π²k²) used by Algorithm 1 to pick the exponents k and l
//     (see zeta.go).
//
// The generator is intentionally not cryptographic; it is a simulation
// PRNG chosen for speed, statistical quality, and reproducibility.
package xrand

import "math"

// RNG is a deterministic pseudo-random generator (xoshiro256**).
//
// The zero value is not usable; construct with New or Derive. RNG is not
// safe for concurrent use — hand each goroutine its own stream instead
// (that is the whole point of Split/Derive).
type RNG struct {
	s [4]uint64
}

// splitMix64 advances *x by the SplitMix64 sequence and returns the next
// output. It is used for seeding and for stream derivation because every
// distinct input produces a well-scrambled, distinct output.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds yield
// independent-looking streams; the same seed always yields the same stream.
func New(seed uint64) *RNG {
	r := new(RNG)
	r.Seed(seed)
	return r
}

// Seed reinitializes r in place to the exact stream New(seed) produces. It
// is the allocation-free form of New, for callers that batch-allocate
// generator arrays — a simulation with a million processes seeds a million
// generators, and one []RNG backing beats a million boxed RNGs.
func (r *RNG) Seed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitMix64(&x)
	}
	// xoshiro256** requires a nonzero state. SplitMix64 cannot emit four
	// zeros in a row, but keep the guard so the invariant is local.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Derive deterministically combines a base seed with a path of identifiers
// (for example run index, then process index) into a new seed. It is the
// pure-function counterpart of Split: calling Derive with the same
// arguments always yields the same seed, regardless of any generator state.
func Derive(seed uint64, path ...uint64) uint64 {
	x := seed
	out := splitMix64(&x)
	for _, p := range path {
		x = out ^ (p + 0x9e3779b97f4a7c15)
		out = splitMix64(&x)
	}
	return out
}

// Split returns a fresh generator whose stream is statistically independent
// of the parent's future output. The parent advances by one step, so
// repeated Splits yield distinct children.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method (no modulo bias).
func (r *RNG) boundedUint64(n uint64) uint64 {
	// Fast path: multiply-high, rejecting the biased low fringe.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t&mask + aLo*bHi
	hi = aHi*bHi + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, exactly as
// math/rand.Shuffle does.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleInts returns k distinct uniform values from [0, n), in random
// order. It panics if k > n or k < 0.
func (r *RNG) SampleInts(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: SampleInts with k out of range")
	}
	if k == 0 {
		return nil
	}
	// Partial Fisher–Yates over an index table. O(n) memory, O(n + k) time;
	// n is the process count, so this is always small.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}

// IntnExcept returns a uniform int in [0, n) \ {except}. It panics when the
// domain is empty (n < 2, or n == 1 with except == 0).
func (r *RNG) IntnExcept(n, except int) int {
	if except < 0 || except >= n {
		return r.Intn(n)
	}
	if n < 2 {
		panic("xrand: IntnExcept with empty domain")
	}
	v := r.Intn(n - 1)
	if v >= except {
		v++
	}
	return v
}

// NormFloat64 returns a standard normal variate (polar Marsaglia method).
// Used only by the statistics helpers (bootstrap smoothing), not by the
// simulation itself.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
