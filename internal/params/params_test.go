package params

import (
	"math"
	"reflect"
	"testing"
)

type knobs struct {
	Rate    float64
	Window  int
	Enabled bool

	hidden int // unexported: never a parameter
}

func schemas() []Schema {
	return Describe(knobs{Rate: 0.5, Window: 8, Enabled: true}, Bounds{"rate": {0, 1}})
}

func TestDescribe(t *testing.T) {
	got := schemas()
	want := []Schema{
		{Name: "rate", Kind: Float, Default: 0.5, Min: 0, Max: 1},
		{Name: "window", Kind: Int, Default: 8, Min: 1, Max: 0},
		{Name: "enabled", Kind: Bool, Default: 1, Min: 0, Max: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Describe = %+v, want %+v", got, want)
	}
	if got[0].Bounded() != true || got[1].Bounded() != false {
		t.Error("Bounded verdicts wrong")
	}
}

func TestApplyAndDiffRoundTrip(t *testing.T) {
	base := knobs{Rate: 0.5, Window: 8, Enabled: true}
	p := map[string]float64{"rate": 0.25, "enabled": 0}
	applied, err := Apply(base, p, schemas())
	if err != nil {
		t.Fatal(err)
	}
	want := knobs{Rate: 0.25, Window: 8, Enabled: false}
	if applied != any(want) {
		t.Errorf("Apply = %+v, want %+v", applied, want)
	}
	if d := Diff(applied, base); !reflect.DeepEqual(d, p) {
		t.Errorf("Diff(Apply(base, p), base) = %v, want %v", d, p)
	}
	if d := Diff(base, base); d != nil {
		t.Errorf("Diff(base, base) = %v, want nil", d)
	}
}

func TestApplyErrors(t *testing.T) {
	cases := []struct {
		name string
		p    map[string]float64
	}{
		{"unknown", map[string]float64{"zap": 1}},
		{"nan", map[string]float64{"rate": math.NaN()}},
		{"inf", map[string]float64{"rate": math.Inf(1)}},
		{"fractional int", map[string]float64{"window": 1.5}},
		{"non-bool", map[string]float64{"enabled": 2}},
		{"out of bounds", map[string]float64{"rate": 1.5}},
	}
	for _, tc := range cases {
		_, err := Apply(knobs{}, tc.p, schemas())
		pe, ok := err.(*Error)
		if !ok || pe.Param == "" {
			t.Errorf("%s: error %v, want *Error naming the parameter", tc.name, err)
		}
	}
	// The first error is deterministic: sorted parameter order.
	_, err := Apply(knobs{}, map[string]float64{"window": 1.5, "enabled": 2}, schemas())
	if pe, ok := err.(*Error); !ok || pe.Param != "enabled" {
		t.Errorf("multi-error apply reported %v, want the alphabetically first", err)
	}
}
