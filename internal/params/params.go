// Package params gives the protocol and adversary registries a typed,
// machine-readable parameter surface. A registry entry pairs a configured
// default instance (a plain struct such as gossip.SEARS or core.UGF) with
// a Schema per exported field; the job API uses the schemas to validate a
// submitted spec's parameters — rejecting unknown names, non-integral
// values for integer fields, and out-of-bounds values with a structured
// error instead of a 500 — and the spec canonicalizer uses Diff/Apply to
// turn a concrete instance into its minimal parameter map and back.
//
// All parameter values travel as float64 (the JSON number type): integer
// and Step-valued fields must hold integral values, booleans are 0 or 1.
// Every field of every registered protocol and adversary is numeric or
// boolean today, which is what licenses the uniform encoding; a future
// string-valued field would need a schema extension, bumping the spec
// version.
package params

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
)

// Kind classifies a parameter's value domain.
type Kind int

// Parameter kinds.
const (
	// Float accepts any finite value.
	Float Kind = iota
	// Int accepts integral values only (the field is int/int64/sim.Step).
	Int
	// Bool accepts 0 (false) and 1 (true).
	Bool
)

func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Schema describes one parameter of a registry entry.
type Schema struct {
	// Name is the parameter's wire name: the struct field name lowercased
	// ("windowscale", "fixedk").
	Name string `json:"name"`
	// Kind is the value domain.
	Kind Kind `json:"kind"`
	// Default is the value the registry's configured instance carries; a
	// spec that omits the parameter gets this value.
	Default float64 `json:"default"`
	// Min and Max bound accepted values inclusively. Min > Max means
	// unbounded.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Bounded reports whether the schema constrains its values.
func (s Schema) Bounded() bool { return s.Min <= s.Max }

// Error is a structured parameter-validation failure: which parameter,
// and why. The job API serializes it into 400 responses.
type Error struct {
	// Param is the offending parameter name ("" when the failure is not
	// attributable to one parameter).
	Param string
	// Msg describes the failure.
	Msg string
}

func (e *Error) Error() string {
	if e.Param == "" {
		return "params: " + e.Msg
	}
	return fmt.Sprintf("params: %s: %s", e.Param, e.Msg)
}

// Bounds is an optional per-parameter [min, max] override table passed to
// Describe, keyed by wire name.
type Bounds map[string][2]float64

// Unbounded is the Min > Max sentinel pair of an unconstrained schema.
var unbounded = [2]float64{1, 0}

// Describe derives the parameter schemas of a registered instance by
// reflection over its exported fields: one Schema per field, named by the
// lowercased field name, defaulting to the field's value in the instance.
// bounds overrides the per-parameter range (absent entries are unbounded,
// except Bool parameters, which are always [0, 1]). Describe panics on
// field types outside the numeric/bool encoding — registries are static,
// so the panic fires at init, not in request handling.
func Describe(instance any, bounds Bounds) []Schema {
	v := reflect.ValueOf(instance)
	if v.Kind() != reflect.Struct {
		panic(fmt.Sprintf("params: Describe wants a struct, got %T", instance))
	}
	t := v.Type()
	var out []Schema
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := strings.ToLower(f.Name)
		kind, def, ok := encode(v.Field(i))
		if !ok {
			panic(fmt.Sprintf("params: %T.%s: unsupported parameter type %s", instance, f.Name, f.Type))
		}
		s := Schema{Name: name, Kind: kind, Default: def, Min: unbounded[0], Max: unbounded[1]}
		if kind == Bool {
			s.Min, s.Max = 0, 1
		}
		if b, ok := bounds[name]; ok {
			s.Min, s.Max = b[0], b[1]
		}
		out = append(out, s)
	}
	return out
}

// encode reads one struct field as (kind, float64 value).
func encode(v reflect.Value) (Kind, float64, bool) {
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		return Float, v.Float(), true
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return Int, float64(v.Int()), true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return Int, float64(v.Uint()), true
	case reflect.Bool:
		val := 0.0
		if v.Bool() {
			val = 1
		}
		return Bool, val, true
	default:
		return 0, 0, false
	}
}

// Diff returns the parameters on which v differs from base, as absolute
// values keyed by wire name. v and base must share a dynamic struct type.
// The result is the minimal parameter map that Apply(base, …) needs to
// rebuild v.
func Diff(v, base any) map[string]float64 {
	rv, rb := reflect.ValueOf(v), reflect.ValueOf(base)
	if rv.Type() != rb.Type() {
		panic(fmt.Sprintf("params: Diff type mismatch: %T vs %T", v, base))
	}
	t := rv.Type()
	var out map[string]float64
	for i := 0; i < t.NumField(); i++ {
		if !t.Field(i).IsExported() {
			continue
		}
		_, vv, ok := encode(rv.Field(i))
		if !ok {
			continue
		}
		_, bv, _ := encode(rb.Field(i))
		if vv != bv {
			if out == nil {
				out = map[string]float64{}
			}
			out[strings.ToLower(t.Field(i).Name)] = vv
		}
	}
	return out
}

// Apply returns a copy of base with the given parameters set, validated
// against the schemas: unknown names, NaN/Inf values, kind mismatches
// (fractional value for an Int parameter, non-0/1 for a Bool), and
// out-of-bounds values all return a *Error. Parameters absent from p keep
// base's values.
func Apply(base any, p map[string]float64, schemas []Schema) (any, error) {
	rb := reflect.ValueOf(base)
	out := reflect.New(rb.Type()).Elem()
	out.Set(rb)
	// Validate in sorted order so the first error is deterministic.
	names := make([]string, 0, len(p))
	for name := range p {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		val := p[name]
		schema, ok := findSchema(schemas, name)
		if !ok {
			return nil, &Error{Param: name, Msg: fmt.Sprintf("unknown parameter (have %s)", strings.Join(Names(schemas), ", "))}
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return nil, &Error{Param: name, Msg: fmt.Sprintf("value %v is not finite", val)}
		}
		switch schema.Kind {
		case Int:
			if val != math.Trunc(val) {
				return nil, &Error{Param: name, Msg: fmt.Sprintf("value %v is not an integer (%s parameter)", val, schema.Kind)}
			}
		case Bool:
			if val != 0 && val != 1 {
				return nil, &Error{Param: name, Msg: fmt.Sprintf("value %v is not a bool (want 0 or 1)", val)}
			}
		}
		if schema.Bounded() && (val < schema.Min || val > schema.Max) {
			return nil, &Error{Param: name, Msg: fmt.Sprintf("value %v outside [%v, %v]", val, schema.Min, schema.Max)}
		}
		field := out.FieldByNameFunc(func(f string) bool { return strings.ToLower(f) == name })
		if !field.IsValid() {
			// A schema exists but the field does not: registry mismatch.
			return nil, &Error{Param: name, Msg: "schema/field mismatch in registry"}
		}
		setEncoded(field, val)
	}
	return out.Interface(), nil
}

// setEncoded writes a float64-encoded value into a struct field.
func setEncoded(field reflect.Value, val float64) {
	switch field.Kind() {
	case reflect.Float64, reflect.Float32:
		field.SetFloat(val)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		field.SetInt(int64(val))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		field.SetUint(uint64(val))
	case reflect.Bool:
		field.SetBool(val != 0)
	}
}

// findSchema looks a schema up by wire name.
func findSchema(schemas []Schema, name string) (Schema, bool) {
	for _, s := range schemas {
		if s.Name == name {
			return s, true
		}
	}
	return Schema{}, false
}

// Names lists the schema names in declaration order.
func Names(schemas []Schema) []string {
	out := make([]string, len(schemas))
	for i, s := range schemas {
		out[i] = s.Name
	}
	return out
}
