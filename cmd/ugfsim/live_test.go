package main

import (
	"errors"
	"strings"
	"testing"

	"github.com/ugf-sim/ugf/internal/cliflags"
)

// TestLiveMatchesSimOutput runs the same scenario through -live and the
// simulator: the printed outcome lines must be identical, the CLI-level
// restatement of the oracle equality the live test band proves.
func TestLiveMatchesSimOutput(t *testing.T) {
	args := []string{"-protocol", "push-pull", "-n", "24", "-seed", "5",
		"-faults", "drop=0.1,dup=0.05,seed=7"}
	want, err := runCLI(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runCLI(t, append([]string{"-live"}, args...)...)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("live output differs from sim:\n live %s sim  %s", got, want)
	}
}

// TestLiveSpec drives live mode from a canonical spec, the same way the
// sweep service would describe the run.
func TestLiveSpec(t *testing.T) {
	out, err := runCLI(t, "-live",
		"-spec", `{"protocol":"ears","n":20,"f":6,"seed":9}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ears vs none") || !strings.Contains(out, "N=20") {
		t.Errorf("unexpected live spec output:\n%s", out)
	}
}

// TestLiveMultiRun checks serial live repetitions share the runner's
// per-run seed derivation: the summary is present and, run for run, the
// outcome lines match a simulated multi-run of the same scenario.
func TestLiveMultiRun(t *testing.T) {
	args := []string{"-protocol", "push-pull", "-n", "20", "-seed", "4", "-runs", "3"}
	want, err := runCLI(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runCLI(t, append([]string{"-live"}, args...)...)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("live multi-run output differs from sim:\n--- live\n%s--- sim\n%s", got, want)
	}
	if !strings.Contains(got, "time T(O)") {
		t.Errorf("summary table missing:\n%s", got)
	}
}

// TestLiveRejectsSimOnlyFlags pins the structured conflict errors: flags
// that configure simulator machinery must be rejected with -live, not
// silently ignored.
func TestLiveRejectsSimOnlyFlags(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		flag string
	}{
		{"shards", []string{"-live", "-shards", "2", "-n", "10"}, "shards"},
		{"workers", []string{"-live", "-runs", "4", "-workers", "2", "-n", "10"}, "workers"},
	} {
		_, err := runCLI(t, tc.args...)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		var conflict *cliflags.ConflictError
		if !errors.As(err, &conflict) {
			t.Errorf("%s: error %T %q is not a ConflictError", tc.name, err, err)
			continue
		}
		if conflict.Flag != tc.flag || conflict.Mode != "-live" {
			t.Errorf("%s: conflict names flag %q mode %q", tc.name, conflict.Flag, conflict.Mode)
		}
	}

	// Simulator-only run features are rejected too, with plain errors
	// naming the feature.
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"adversary", []string{"-live", "-adversary", "ugf", "-n", "10"}, "simulator-only"},
		{"topology", []string{"-live", "-topology", "ring", "-n", "10"}, "simulator-only"},
		{"curve", []string{"-live", "-curve", "-n", "10"}, "simulator-only"},
	} {
		_, err := runCLI(t, tc.args...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
}

// TestLiveDefaultShardsAllowed checks the conflict detection only fires
// on flags the command line actually set: default values are not
// conflicts.
func TestLiveDefaultShardsAllowed(t *testing.T) {
	if _, err := runCLI(t, "-live", "-protocol", "push-pull", "-n", "12", "-q"); err != nil {
		t.Fatalf("plain -live run rejected: %v", err)
	}
}
