package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSpecFlagMatchesEquivalentFlags: a run described by -spec produces
// the same outcome line as the equivalent -protocol/-n/-f/-seed flags —
// the spec path routes through the same blessed Config construction.
func TestSpecFlagMatchesEquivalentFlags(t *testing.T) {
	byFlags, err := runCLI(t, "-protocol", "ears", "-adversary", "ugf", "-n", "30", "-f", "9", "-seed", "4")
	if err != nil {
		t.Fatal(err)
	}
	bySpec, err := runCLI(t, "-spec", `{"protocol":"ears","adversary":"ugf","n":30,"f":9,"seed":4}`)
	if err != nil {
		t.Fatal(err)
	}
	if byFlags != bySpec {
		t.Errorf("spec run diverged from flag run:\n%s\n%s", byFlags, bySpec)
	}
}

// TestSpecFlagFromFile: @file loads the spec from disk, and parameter
// overlays apply.
func TestSpecFlagFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(`{"protocol":"sears","protocol_params":{"epsilon":0.25},"n":20,"f":5,"seed":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-spec", "@"+path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sears") {
		t.Errorf("spec file run output:\n%s", out)
	}
}

// TestSpecFlagErrors: invalid specs and conflicting flags are rejected
// with pointed messages.
func TestSpecFlagErrors(t *testing.T) {
	if _, err := runCLI(t, "-spec", `{"protocol":"nope","n":10,"f":1}`); err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Errorf("unknown protocol in spec: %v", err)
	}
	if _, err := runCLI(t, "-spec", `{"protocol":"ears","n":10,"f":1}`, "-n", "20"); err == nil || !strings.Contains(err.Error(), "-spec replaces -n") {
		t.Errorf("conflicting -n: %v", err)
	}
	if _, err := runCLI(t, "-spec", "@/does/not/exist.json"); err == nil {
		t.Error("missing spec file accepted")
	}
}
