// Command ugfsim runs single gossip-dissemination scenarios under attack
// by the Universal Gossip Fighter (or any other adversary of the library)
// and reports the paper's complexity measures.
//
// Scenarios can also be given as canonical specs (-spec), the same
// serializable run descriptions the sweep service caches and exchanges:
// parameterized protocols and adversaries, fault plans, and stall windows
// in one JSON value, validated against the registries' schemas.
//
// Examples:
//
//	ugfsim -protocol ears -adversary ugf -n 100 -f 30
//	ugfsim -protocol push-pull -adversary strategy-2.1.1 -n 200 -f 60 -runs 20
//	ugfsim -protocol sears -n 50 -f 15 -trace
//	ugfsim -spec '{"protocol":"sears","protocol_params":{"epsilon":0.25},"n":50,"f":15,"seed":7}'
//	ugfsim -spec @scenario.json -runs 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/ugf-sim/ugf"
	"github.com/ugf-sim/ugf/internal/cliflags"
	"github.com/ugf-sim/ugf/internal/live"
	"github.com/ugf-sim/ugf/internal/plot"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/stats"
	"github.com/ugf-sim/ugf/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ugfsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ugfsim", flag.ContinueOnError)
	var common cliflags.Common
	common.Register(fs)
	var (
		protoName = fs.String("protocol", "push-pull",
			"gossip protocol: "+strings.Join(ugf.ProtocolNames(), "|"))
		advName = fs.String("adversary", "none",
			"adversary: "+strings.Join(ugf.AdversaryNames(), "|"))
		n          = fs.Int("n", 100, "number of processes N")
		f          = fs.Int("f", -1, "crash budget F (default 0.3N)")
		seed       = fs.Uint64("seed", 1, "random seed")
		specArg    = fs.String("spec", "", "canonical run spec (inline JSON or @file); replaces -protocol/-adversary/-n/-f/-seed/-faults/-stall-window")
		liveMode   = fs.Bool("live", false, "execute as real networked nodes (live-transport runtime) instead of the simulator")
		runs       = fs.Int("runs", 1, "repetitions (summary statistics when > 1)")
		workers    = fs.Int("workers", 0, "parallel runs (0: GOMAXPROCS)")
		trace      = fs.Bool("trace", false, "stream the event trace as text (runs=1 only)")
		traceOut   = fs.String("traceout", "", "stream the event trace to this JSONL file (runs=1 only)")
		quiet      = fs.Bool("q", false, "print outcome line(s) only")
		asJSON     = fs.Bool("json", false, "emit outcomes as JSON lines instead of text")
		curve      = fs.Bool("curve", false, "print the dissemination curve (runs=1 only)")
		curveEvery = fs.Int64("curve-every", 1, "global steps between curve samples")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	common.Warn(fs, os.Stderr)
	if err := common.Validate(*trace || *traceOut != ""); err != nil {
		return err
	}
	if *liveMode {
		if err := cliflags.ValidateLiveMode(fs); err != nil {
			return err
		}
		if *curve {
			return fmt.Errorf("-curve is simulator-only: the live runtime has no snapshot sampler")
		}
	}

	var cfg ugf.Config
	var seriesName string
	if *specArg != "" {
		replaced := map[string]bool{
			"protocol": true, "adversary": true, "n": true, "f": true, "seed": true,
			"faults": true, "topology": true, "stall-window": true, "stallwindow": true,
			"max-events": true,
		}
		var conflict string
		fs.Visit(func(fl *flag.Flag) {
			if replaced[fl.Name] {
				conflict = fl.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-spec replaces -%s; put the value in the spec instead", conflict)
		}
		data := []byte(*specArg)
		if strings.HasPrefix(*specArg, "@") {
			var err error
			data, err = os.ReadFile((*specArg)[1:])
			if err != nil {
				return err
			}
		}
		sp, err := ugf.ParseSpec(data)
		if err != nil {
			return err
		}
		cfg, err = sp.Config()
		if err != nil {
			return err
		}
		adversaryLabel := sp.Adversary
		if adversaryLabel == "" {
			adversaryLabel = "none"
		}
		seriesName = sp.Protocol + "/" + adversaryLabel
		*seed = cfg.Seed
	} else {
		proto, ok := ugf.ProtocolByName(*protoName)
		if !ok {
			return fmt.Errorf("unknown protocol %q (have %s)", *protoName, strings.Join(ugf.ProtocolNames(), ", "))
		}
		adv, ok := ugf.AdversaryByName(*advName)
		if !ok {
			return fmt.Errorf("unknown adversary %q (have %s)", *advName, strings.Join(ugf.AdversaryNames(), ", "))
		}
		if *n < 1 {
			return fmt.Errorf("n = %d, need ≥ 1", *n)
		}
		budget := *f
		if budget < 0 {
			budget = int(0.3 * float64(*n))
		}
		plan, err := common.FaultPlan()
		if err != nil {
			return err
		}
		topo, err := common.Topology()
		if err != nil {
			return err
		}
		cfg = ugf.Config{
			N: *n, F: budget, Protocol: proto, Adversary: adv, Seed: *seed,
			Faults: plan, Topology: topo, StallWindow: common.StallWindow,
			MaxEvents: common.MaxEvents,
		}
		seriesName = *protoName + "/" + *advName
	}
	cfg.Workers = common.Shards

	emit := func(o ugf.Outcome) error {
		if *asJSON {
			return json.NewEncoder(out).Encode(o)
		}
		_, err := fmt.Fprintln(out, o)
		return err
	}

	kinds, err := common.KindMask()
	if err != nil {
		return err
	}

	if *runs <= 1 {
		// Traces stream as the engine produces them — text to stdout, JSONL
		// to -traceout — so even huge runs never buffer events in memory.
		var sinks []ugf.TraceSink
		if *trace {
			sinks = append(sinks, ugf.FuncSink(func(ev ugf.TraceEvent) {
				fmt.Fprintln(out, ev)
			}))
		}
		if *traceOut != "" {
			jl, err := ugf.CreateJSONLTrace(*traceOut)
			if err != nil {
				return err
			}
			sinks = append(sinks, jl)
		}
		if len(sinks) > 0 {
			var sink ugf.TraceSink = ugf.MultiTrace(sinks...)
			if kinds != 0 {
				sink = ugf.TraceFilter{Kinds: kinds}.Sink(sink)
			}
			cfg.Trace = sink
		}
		if *curve {
			cfg.SampleEvery = ugf.Step(*curveEvery)
			cfg.Sample = func(s ugf.Snapshot) {
				fmt.Fprintf(out, "t=%-8d coverage=%.3f awake=%-4d M=%d\n",
					s.Now, s.Coverage, s.AwakeCorrect, s.Messages)
			}
		}
		o, err := runOnce(cfg, *liveMode)
		if err != nil {
			return err
		}
		if cfg.Trace != nil {
			if cerr := ugf.CloseTrace(cfg.Trace); cerr != nil {
				return cerr
			}
		}
		if common.Stats {
			printStats(out, o.Stats)
		}
		return emit(o)
	}

	if *trace || *traceOut != "" || common.Stats {
		return fmt.Errorf("-trace, -traceout and -stats need runs=1 (got -runs %d)", *runs)
	}
	var outs []ugf.Outcome
	if *liveMode {
		// Live repetitions run serially — each one is a real networked
		// system of goroutine nodes — with the runner's per-run seed
		// derivation, so run i of a scenario is the same execution a
		// simulated sweep would label run i.
		outs = make([]ugf.Outcome, *runs)
		for i := range outs {
			rcfg := cfg
			rcfg.Seed = xrand.Derive(*seed, uint64(i))
			o, err := runOnce(rcfg, true)
			if err != nil {
				return err
			}
			outs[i] = o
		}
	} else {
		specs := []runner.Spec{{
			Name: seriesName,
			Base: cfg,
			Runs: *runs, BaseSeed: *seed,
		}}
		results, err := runner.Execute(specs, *workers, nil)
		if err != nil {
			return err
		}
		outs = results[0].Outcomes
	}
	if !*quiet {
		for _, o := range outs {
			if err := emit(o); err != nil {
				return err
			}
		}
	}
	if *asJSON {
		return nil // JSON mode emits machine-readable lines only
	}
	table := &plot.Table{
		Title:   fmt.Sprintf("%s: N=%d F=%d, %d runs", seriesName, cfg.N, cfg.F, *runs),
		Columns: []string{"metric", "median", "Q1", "Q3", "mean", "min", "max"},
	}
	for _, m := range []struct {
		name string
		xs   []float64
	}{
		{"time T(O)", runner.Times(outs)},
		{"messages M(O)", runner.Messages(outs)},
	} {
		s := stats.Summarize(m.xs)
		table.AddRow(m.name, s.Median, s.Q1, s.Q3, s.Mean, s.Min, s.Max)
	}
	if err := table.Text(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "rumor gathering: %.0f%%   cutoffs: %.0f%%   stalls: %.0f%%\n",
		100*runner.GatheredRate(outs), 100*runner.CutoffRate(outs), 100*runner.StalledRate(outs))
	labels := map[string]int{}
	for _, o := range outs {
		if o.Strategy != "" {
			labels[o.Strategy]++
		}
	}
	if len(labels) > 0 {
		fmt.Fprintf(out, "strategies drawn: ")
		first := true
		for _, o := range []string{"1", "2.1.0", "2.1.1"} {
			if c, ok := labels[o]; ok {
				if !first {
					fmt.Fprint(out, ", ")
				}
				fmt.Fprintf(out, "%s×%d", o, c)
				first = false
				delete(labels, o)
			}
		}
		for lbl, c := range labels {
			if !first {
				fmt.Fprint(out, ", ")
			}
			fmt.Fprintf(out, "%s×%d", lbl, c)
			first = false
		}
		fmt.Fprintln(out)
	}
	return nil
}

// runOnce dispatches one configured run to the simulator or, under
// -live, to the live-transport runtime through the config projection
// (which rejects simulator-only features with a structured error).
func runOnce(cfg ugf.Config, liveMode bool) (ugf.Outcome, error) {
	if !liveMode {
		return ugf.Run(cfg)
	}
	lc, err := live.FromSimConfig(cfg)
	if err != nil {
		return ugf.Outcome{}, err
	}
	return live.Run(lc)
}

// printStats renders the run's engine statistics block (-stats).
func printStats(w io.Writer, s ugf.Stats) {
	fmt.Fprintf(w, "engine stats:\n")
	fmt.Fprintf(w, "  scheduler: %d events, %d heap pushes, %d pops, %d active steps\n",
		s.Events, s.HeapPushes, s.HeapPops, s.ActiveSteps)
	fmt.Fprintf(w, "  messages:  %d sent, %d delivered, %d dropped at crashed procs, %d omitted\n",
		s.Sends, s.Deliveries, s.DroppedCrashed, s.OmittedSends)
	if s.DroppedLink != 0 || s.DupDeliveries != 0 || s.CorruptDrops != 0 {
		fmt.Fprintf(w, "  faults:    %d dropped on links, %d duplicate deliveries, %d corrupt discards\n",
			s.DroppedLink, s.DupDeliveries, s.CorruptDrops)
	}
	if s.BlockedSends != 0 || s.TopologyRewrites != 0 {
		fmt.Fprintf(w, "  topology:  %d sends blocked off-graph, %d edge rewrites\n",
			s.BlockedSends, s.TopologyRewrites)
	}
	for _, kc := range s.MessagesByKind {
		fmt.Fprintf(w, "             %s×%d\n", kc.Kind, kc.Count)
	}
	fmt.Fprintf(w, "  pressure:  max %d in flight, max %d pending in mailboxes\n",
		s.MaxInFlight, s.MaxPending)
	fmt.Fprintf(w, "  lifecycle: %d local steps, %d sleeps, %d wakes, %d crashes, %d recoveries\n",
		s.LocalSteps, s.Sleeps, s.Wakes, s.Crashes, s.Recoveries)
	fmt.Fprintf(w, "  adversary: %d delta / %d delay / %d omission / %d link rewrites\n",
		s.DeltaRewrites, s.DelayRewrites, s.OmitRewrites, s.LinkRewrites)
	fmt.Fprintf(w, "  wall time: init %v, run %v, finalize %v\n",
		s.Wall.Init, s.Wall.Run, s.Wall.Finalize)
	if len(s.Wall.ShardCommit) > 0 {
		fmt.Fprintf(w, "  shards:    %d commit lane(s) %v, merge %v, imbalance ×%.2f\n",
			len(s.Wall.ShardCommit), s.Wall.ShardCommit, s.Wall.ShardMerge, s.Wall.ShardImbalance)
	}
}
