package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ugf-sim/ugf"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestSingleRun(t *testing.T) {
	out, err := runCLI(t, "-protocol", "push-pull", "-n", "20", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "push-pull vs none") {
		t.Errorf("missing outcome line:\n%s", out)
	}
	if !strings.Contains(out, "gathered=true") {
		t.Errorf("baseline run failed gathering:\n%s", out)
	}
}

func TestDefaultFIsThirtyPercent(t *testing.T) {
	out, err := runCLI(t, "-protocol", "ears", "-adversary", "strategy-1", "-n", "40")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "F=12") {
		t.Errorf("expected F=12 for N=40:\n%s", out)
	}
}

func TestMultiRunSummary(t *testing.T) {
	out, err := runCLI(t, "-protocol", "ears", "-adversary", "ugf", "-n", "30", "-f", "9", "-runs", "6", "-q")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"time T(O)", "messages M(O)", "rumor gathering", "strategies drawn"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ears vs ugf[") {
		t.Error("-q must suppress per-run outcome lines")
	}
}

func TestTrace(t *testing.T) {
	out, err := runCLI(t, "-protocol", "broadcast", "-n", "3", "-trace")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "send") || !strings.Contains(out, "arrive") {
		t.Errorf("trace missing events:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	out, err := runCLI(t, "-protocol", "ears", "-n", "10", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var o struct {
		Protocol string
		N        int
		Gathered bool
	}
	if err := json.Unmarshal([]byte(out), &o); err != nil {
		t.Fatalf("invalid JSON %q: %v", out, err)
	}
	if o.Protocol != "ears" || o.N != 10 {
		t.Errorf("unexpected JSON outcome: %+v", o)
	}
}

func TestJSONMultiRun(t *testing.T) {
	out, err := runCLI(t, "-protocol", "ears", "-n", "10", "-runs", "3", "-json")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 JSON lines, got %d:\n%s", len(lines), out)
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Errorf("invalid JSON line %q", line)
		}
	}
}

func TestCurveOutput(t *testing.T) {
	out, err := runCLI(t, "-protocol", "push-pull", "-n", "8", "-curve")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "coverage=") {
		t.Fatalf("no curve samples:\n%s", out)
	}
	if !strings.Contains(out, "coverage=1.000") {
		t.Errorf("curve never reached full coverage:\n%s", out)
	}
}

func TestTraceOutWritesJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	out, err := runCLI(t, "-protocol", "push-pull", "-n", "15", "-seed", "4",
		"-traceout", path, "-json")
	if err != nil {
		t.Fatal(err)
	}
	var o struct{ Messages int }
	if err := json.Unmarshal([]byte(out), &o); err != nil {
		t.Fatalf("invalid JSON outcome %q: %v", out, err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ugf.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	sends := 0
	for _, r := range recs {
		if r.Kind == "send" {
			sends++
		}
	}
	if sends != o.Messages {
		t.Errorf("trace holds %d sends, outcome says %d", sends, o.Messages)
	}
	if last := recs[len(recs)-1]; last.Kind != "end" {
		t.Errorf("trace not terminated: last record %+v", last)
	}
}

func TestTraceKindsFiltersJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if _, err := runCLI(t, "-protocol", "ears", "-n", "15",
		"-traceout", path, "-tracekinds", "send,crash", "-q"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ugf.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("filter kept nothing")
	}
	for _, r := range recs {
		if r.Kind != "send" && r.Kind != "crash" {
			t.Fatalf("kind %q escaped the -tracekinds send,crash filter", r.Kind)
		}
	}
}

func TestStatsFlag(t *testing.T) {
	out, err := runCLI(t, "-protocol", "push-pull", "-n", "20", "-stats")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"engine stats:", "scheduler:", "messages:", "pressure:",
		"lifecycle:", "adversary:", "wall time:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "scheduler: 0 events,") {
		t.Errorf("-stats reports an empty scheduler:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-protocol", "bogus"},
		{"-adversary", "bogus"},
		{"-n", "0"},
		{"-definitely-not-a-flag"},
		{"-tracekinds", "bogus"},
		// The streaming-observability flags are single-run only.
		{"-runs", "3", "-stats"},
		{"-runs", "3", "-trace"},
		{"-runs", "3", "-traceout", "x.jsonl"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v: no error", args)
		}
	}
}
