package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestSingleRun(t *testing.T) {
	out, err := runCLI(t, "-protocol", "push-pull", "-n", "20", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "push-pull vs none") {
		t.Errorf("missing outcome line:\n%s", out)
	}
	if !strings.Contains(out, "gathered=true") {
		t.Errorf("baseline run failed gathering:\n%s", out)
	}
}

func TestDefaultFIsThirtyPercent(t *testing.T) {
	out, err := runCLI(t, "-protocol", "ears", "-adversary", "strategy-1", "-n", "40")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "F=12") {
		t.Errorf("expected F=12 for N=40:\n%s", out)
	}
}

func TestMultiRunSummary(t *testing.T) {
	out, err := runCLI(t, "-protocol", "ears", "-adversary", "ugf", "-n", "30", "-f", "9", "-runs", "6", "-q")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"time T(O)", "messages M(O)", "rumor gathering", "strategies drawn"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ears vs ugf[") {
		t.Error("-q must suppress per-run outcome lines")
	}
}

func TestTrace(t *testing.T) {
	out, err := runCLI(t, "-protocol", "broadcast", "-n", "3", "-trace")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "send") || !strings.Contains(out, "arrive") {
		t.Errorf("trace missing events:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	out, err := runCLI(t, "-protocol", "ears", "-n", "10", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var o struct {
		Protocol string
		N        int
		Gathered bool
	}
	if err := json.Unmarshal([]byte(out), &o); err != nil {
		t.Fatalf("invalid JSON %q: %v", out, err)
	}
	if o.Protocol != "ears" || o.N != 10 {
		t.Errorf("unexpected JSON outcome: %+v", o)
	}
}

func TestJSONMultiRun(t *testing.T) {
	out, err := runCLI(t, "-protocol", "ears", "-n", "10", "-runs", "3", "-json")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 JSON lines, got %d:\n%s", len(lines), out)
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Errorf("invalid JSON line %q", line)
		}
	}
}

func TestCurveOutput(t *testing.T) {
	out, err := runCLI(t, "-protocol", "push-pull", "-n", "8", "-curve")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "coverage=") {
		t.Fatalf("no curve samples:\n%s", out)
	}
	if !strings.Contains(out, "coverage=1.000") {
		t.Errorf("curve never reached full coverage:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-protocol", "bogus"},
		{"-adversary", "bogus"},
		{"-n", "0"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v: no error", args)
		}
	}
}
