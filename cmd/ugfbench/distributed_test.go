package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/ugf-sim/ugf/internal/service"
)

// TestCoordWorkerMatchesLocal is the end-to-end distributed check through
// the CLI surface: an experiment executed with -coord against a
// coordinator drained by a -worker invocation produces artifacts
// byte-identical to the local pool's, and rerunning it recomputes nothing
// — every run is a cache hit.
func TestCoordWorkerMatchesLocal(t *testing.T) {
	coord := service.NewCoordinator(service.Options{})
	srv := httptest.NewServer(service.NewServer(coord))
	defer srv.Close()

	// A worker exactly as the CLI runs one, shut down via ctx like SIGINT.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := runWorker(ctx, srv.URL, 2); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	defer wg.Wait()
	defer cancel()

	localDir, coordDir := t.TempDir(), t.TempDir()
	if _, err := runCLI(t, "-exp", "example1", "-out", localDir, "-progress=false"); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "-exp", "example1", "-out", coordDir, "-coord", srv.URL, "-progress=false"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"example1.md", "example1_0.csv"} {
		local, err := os.ReadFile(filepath.Join(localDir, name))
		if err != nil {
			t.Fatal(err)
		}
		remote, err := os.ReadFile(filepath.Join(coordDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(local) != string(remote) {
			t.Errorf("%s differs between local and -coord execution", name)
		}
	}
	before := coord.Counters()
	if before.Computed == 0 {
		t.Fatal("coordinator computed nothing; -coord did not route through it")
	}

	// Resubmission of the same experiment recomputes nothing.
	if _, err := runCLI(t, "-exp", "example1", "-coord", srv.URL, "-progress=false"); err != nil {
		t.Fatal(err)
	}
	after := coord.Counters()
	if after.Computed != before.Computed {
		t.Errorf("rerun recomputed %d runs, want 0", after.Computed-before.Computed)
	}
	if after.CacheHits == before.CacheHits {
		t.Error("rerun did not hit the cache")
	}
}

// TestServiceFlagValidation: the service-mode flags reject nonsensical
// combinations with actionable messages.
func TestServiceFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-serve"}, "-debugaddr"},
		{[]string{"-serve", "-debugaddr", ":0", "-worker", "http://x"}, "mutually exclusive"},
		{[]string{"-worker", "http://x", "-coord", "http://x"}, "mutually exclusive"},
		{[]string{"-cachedir", "x"}, "-serve"},
	}
	for _, tc := range cases {
		_, err := runCLI(t, tc.args...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("args %v: error %v, want mention of %q", tc.args, err, tc.want)
		}
	}
}
